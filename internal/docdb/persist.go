package docdb

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
	"repro/internal/relstore"
)

// Generation-coordinated durability for the whole station store. The
// relational engine checkpoints itself (relstore's snap-<gen> /
// wal-<gen> layout); the BLOB layer's bytes are not in the WAL, so the
// document store writes them as a blobs-<gen> sidecar inside the same
// write-quiescent window, renamed before the relational snapshot. A
// visible snap-<gen> therefore always has its matching BLOB sidecar —
// a SIGKILL at any instant loses nothing that was checkpointed, which
// the old write-only-on-SIGTERM sidecar could not promise.

func blobFileName(gen uint64) string   { return fmt.Sprintf("blobs-%010d", gen) }
func searchFileName(gen uint64) string { return fmt.Sprintf("search-%010d", gen) }

// Checkpoint writes one coordinated checkpoint generation — BLOB
// sidecar plus relational snapshot plus rotated WAL tail, and the
// content-index sidecar when an index is attached — into dir (the
// attached durability directory when dir is empty).
//
// Ordering: the BLOB sidecar renames before the snapshot (a visible
// snap-<gen> always has its media bytes), while the search sidecar is
// *captured* inside the write-quiescent window but *installed* after
// the snapshot rename. The index is a rebuildable cache, so the
// weaker ordering is safe — a crash between the snapshot install and
// the search-<gen> install leaves a generation without its index
// sidecar, and recovery rebuilds the index from the restored rows.
func (s *Store) Checkpoint(dir string) (*relstore.CheckpointInfo, error) {
	target := dir
	if target == "" {
		target = s.durDir
	}
	if target == "" {
		return nil, fmt.Errorf("docdb: no durability directory attached; pass one to Checkpoint")
	}
	ix := s.ContentIndex()
	var encodeSearch func() ([]byte, error)
	info, err := s.rel.CheckpointWith(target, func(gen uint64) error {
		err := atomicio.WriteFile(filepath.Join(target, blobFileName(gen)), func(w io.Writer) error {
			return s.blobs.Snapshot(w)
		})
		if err != nil || ix == nil {
			return err
		}
		// Captured inside the window — so the token streams cut history
		// exactly where the relational snapshot does — but serialized
		// after it, so writers stall only for a map copy.
		encodeSearch = ix.CaptureCheckpoint()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ix != nil {
		searchImage, err := encodeSearch()
		if err != nil {
			return info, fmt.Errorf("docdb: encoding search sidecar: %w", err)
		}
		err = atomicio.WriteFile(filepath.Join(target, searchFileName(info.Gen)), func(w io.Writer) error {
			_, werr := w.Write(searchImage)
			return werr
		})
		if err != nil {
			// The checkpoint generation itself is installed and
			// complete; a restart without this sidecar just rebuilds
			// the index. Surface the failure so the operator knows.
			return info, fmt.Errorf("docdb: writing search sidecar: %w", err)
		}
	}
	pruneBlobSidecars(target, info.Gen)
	relstore.PruneGenerationFiles(target, "search-", info.Gen)
	return info, nil
}

// CheckpointNow checkpoints into the directory Recover attached — the
// form the station RPC and the daemon's background checkpointer use.
func (s *Store) CheckpointNow() (*relstore.CheckpointInfo, error) {
	return s.Checkpoint("")
}

// Recover restores the store from a durability directory: the BLOB
// sidecar of the generation the relational recovery selects, the
// relational snapshot plus its WAL tail chain, and the ID counter
// resynced past every restored row. It attaches the directory for
// subsequent WAL appends and checkpoints. Call it once, before the
// store serves traffic.
func (s *Store) Recover(dir string) (*relstore.RecoverInfo, error) {
	info, err := s.rel.OpenDurable(dir)
	if err != nil {
		return nil, err
	}
	if info.Gen > 0 {
		f, err := os.Open(filepath.Join(dir, blobFileName(info.Gen)))
		if err != nil {
			// The checkpoint protocol renames the sidecar before the
			// snapshot, so this only happens for a relstore-only
			// checkpoint or a hand-pruned directory: recover the rows
			// and carry on with an empty BLOB store rather than refuse
			// to start.
			if !os.IsNotExist(err) {
				return nil, fmt.Errorf("docdb: opening BLOB sidecar: %w", err)
			}
		} else {
			rerr := s.blobs.Restore(f)
			f.Close()
			if rerr != nil {
				return nil, fmt.Errorf("docdb: restoring BLOB sidecar: %w", rerr)
			}
		}
	}
	if err := s.SyncIDs(); err != nil {
		return nil, err
	}
	if ix := s.ContentIndex(); ix != nil {
		// The sidecar is advisory: RecoverCheckpoint loads it only when
		// it provably matches the restored rows (right generation, no
		// tail replayed on top) and rebuilds from the tables otherwise —
		// including the crash window where snap-<gen> landed but
		// search-<gen> did not.
		var sidecar []byte
		if info.Gen > 0 {
			if b, rerr := os.ReadFile(filepath.Join(dir, searchFileName(info.Gen))); rerr == nil {
				sidecar = b
			}
		}
		if err := ix.RecoverCheckpoint(sidecar, s.rel, info.Applied); err != nil {
			return nil, fmt.Errorf("docdb: recovering content index: %w", err)
		}
	}
	s.durDir = dir
	return info, nil
}

// DurableDir reports the durability directory Recover attached ("" for
// an in-memory store).
func (s *Store) DurableDir() string { return s.durDir }

// pruneBlobSidecars removes sidecars older than the kept generation,
// by the same rule relstore applies to its own checkpoint files.
func pruneBlobSidecars(dir string, keep uint64) {
	relstore.PruneGenerationFiles(dir, "blobs-", keep)
}
