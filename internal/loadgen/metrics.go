package loadgen

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// The collector keeps every successful-op latency sample per op class
// rather than bucketed histograms: a compressed day issues thousands
// of ops, not millions, and exact percentiles make SLO verdicts
// reproducible to the nanosecond for the determinism tests.

// slowExemplarsPerPhase bounds how many slow-op exemplars a phase
// keeps — enough to hand an investigator a few trace IDs, small enough
// that reports stay readable.
const slowExemplarsPerPhase = 3

// Collector aggregates op outcomes across all phase workers.
type Collector struct {
	mu      sync.Mutex
	classes map[string]*opClass
	slow    map[string][]SlowTrace // per phase, slowest-first, bounded
}

// SlowTrace is one exemplar slow op: its phase, op class, latency and
// the distributed trace ID that reconstructs it (`webdocctl trace`).
type SlowTrace struct {
	Phase     string  `json:"phase"`
	Op        string  `json:"op"`
	TraceID   string  `json:"trace_id"`
	LatencyMs float64 `json:"latency_ms"`
}

type opClass struct {
	count     int64
	errors    int64
	conflicts int64
	bytes     int64
	lag       time.Duration // total start lag behind the paced schedule
	samples   []time.Duration
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{classes: map[string]*opClass{}, slow: map[string][]SlowTrace{}}
}

func (c *Collector) class(op string) *opClass {
	cl := c.classes[op]
	if cl == nil {
		cl = &opClass{}
		c.classes[op] = cl
	}
	return cl
}

// Record notes one completed op. Conflicts (checkout contention) are a
// workload outcome, not a failure, so they are tallied separately and
// excluded from the error rate. Latency samples only cover successes —
// a fast error must not improve a percentile. A successful op carrying
// a trace ID competes for the phase's slow-exemplar slots, so every
// report hands the investigator trace IDs for its worst ops.
func (c *Collector) Record(op, phase string, latency time.Duration, bytes int64, lag time.Duration, trace uint64, err error, conflict bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.class(op)
	cl.count++
	cl.lag += lag
	switch {
	case conflict:
		cl.conflicts++
	case err != nil:
		cl.errors++
	default:
		cl.bytes += bytes
		cl.samples = append(cl.samples, latency)
		if trace != 0 {
			c.noteSlow(SlowTrace{Phase: phase, Op: op, TraceID: obs.FormatTraceID(trace), LatencyMs: ms(latency)})
		}
	}
}

// noteSlow keeps the phase's slowest exemplars (mu held).
func (c *Collector) noteSlow(st SlowTrace) {
	slot := c.slow[st.Phase]
	slot = append(slot, st)
	sort.Slice(slot, func(i, j int) bool { return slot[i].LatencyMs > slot[j].LatencyMs })
	if len(slot) > slowExemplarsPerPhase {
		slot = slot[:slowExemplarsPerPhase]
	}
	c.slow[st.Phase] = slot
}

// SlowTraces lists every phase's slow-op exemplars, grouped by phase
// name and slowest-first within a phase.
func (c *Collector) SlowTraces() []SlowTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	phases := make([]string, 0, len(c.slow))
	for name := range c.slow {
		phases = append(phases, name)
	}
	sort.Strings(phases)
	var out []SlowTrace
	for _, name := range phases {
		out = append(out, c.slow[name]...)
	}
	return out
}

// OpSummary is one op class's aggregate, JSON-shaped for the report.
type OpSummary struct {
	Count     int64 `json:"count"`
	Errors    int64 `json:"errors"`
	Conflicts int64 `json:"conflicts,omitempty"`
	Bytes     int64 `json:"bytes"`

	ErrorRate     float64 `json:"error_rate"`
	WallOpsPerSec float64 `json:"throughput_wall_ops_per_sec"`
	SimOpsPerSec  float64 `json:"throughput_sim_ops_per_sec"`

	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`

	// MeanLagMs is how far behind the paced schedule ops started on
	// average — the harness's own health signal: a large lag means the
	// driver could not sustain the profile's rate and latency numbers
	// describe a slower effective load.
	MeanLagMs float64 `json:"mean_sched_lag_ms"`
}

// Summarize folds the samples into per-class aggregates. wall is the
// measured run time, sim the profile's simulated span.
func (c *Collector) Summarize(wall, sim time.Duration) map[string]OpSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]OpSummary, len(c.classes))
	for op, cl := range c.classes {
		s := OpSummary{
			Count:     cl.count,
			Errors:    cl.errors,
			Conflicts: cl.conflicts,
			Bytes:     cl.bytes,
		}
		if cl.count > 0 {
			s.ErrorRate = float64(cl.errors) / float64(cl.count)
			s.MeanLagMs = ms(cl.lag / time.Duration(cl.count))
		}
		if wall > 0 {
			s.WallOpsPerSec = float64(cl.count) / wall.Seconds()
		}
		if sim > 0 {
			s.SimOpsPerSec = float64(cl.count) / sim.Seconds()
		}
		if n := len(cl.samples); n > 0 {
			sorted := make([]time.Duration, n)
			copy(sorted, cl.samples)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			var total time.Duration
			for _, d := range sorted {
				total += d
			}
			s.P50Ms = ms(percentile(sorted, 0.50))
			s.P95Ms = ms(percentile(sorted, 0.95))
			s.P99Ms = ms(percentile(sorted, 0.99))
			s.MaxMs = ms(sorted[n-1])
			s.MeanMs = ms(total / time.Duration(n))
		}
		out[op] = s
	}
	return out
}

// percentile is the nearest-rank percentile of a sorted sample set.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
