package loadgen

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

const sampleProfile = `
name: sample
seed: 9
time-scale: 120
fabric:
  stations: 5
  m: 2
  watermark: 2
courses:
  count: 6
  pages: 8
  extra-links: 3
  images-per-page: 1
phases:
  - name: push
    op: broadcast
    start: 0s
    duration: 1m
    rate: 0.1
    clients: 1
    refs-only: true
  - name: storm
    op: resolve
    start: 1m
    duration: 3m
    rate: 0.5
    clients: 3
slos:
  - op: resolve
    p95: 800ms
    max-error-rate: 0.01
    min-throughput: 0.1
`

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile([]byte(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sample" || p.Seed != 9 || p.TimeScale != 120 {
		t.Errorf("header = %q/%d/%g", p.Name, p.Seed, p.TimeScale)
	}
	if p.Fabric != (FabricSpec{Stations: 5, M: 2, Watermark: 2}) {
		t.Errorf("fabric = %+v", p.Fabric)
	}
	if p.Courses != (CourseLoad{Count: 6, Pages: 8, ExtraLinks: 3, ImagesPerPage: 1}) {
		t.Errorf("courses = %+v", p.Courses)
	}
	if len(p.Phases) != 2 {
		t.Fatalf("phases = %d", len(p.Phases))
	}
	want := Phase{Name: "push", Op: "broadcast", Duration: time.Minute,
		Rate: 0.1, Clients: 1, RefsOnly: true, TopK: 10}
	if p.Phases[0] != want {
		t.Errorf("phases[0] = %+v, want %+v", p.Phases[0], want)
	}
	if p.Phases[1].Clients != 3 || p.Phases[1].Start != time.Minute {
		t.Errorf("phases[1] = %+v", p.Phases[1])
	}
	if len(p.SLOs) != 1 {
		t.Fatalf("slos = %d", len(p.SLOs))
	}
	slo := SLO{Op: "resolve", P95: 800 * time.Millisecond, MaxErrorRate: 0.01, MinThroughput: 0.1}
	if p.SLOs[0] != slo {
		t.Errorf("slos[0] = %+v, want %+v", p.SLOs[0], slo)
	}
	if got := p.SimDuration(); got != 4*time.Minute {
		t.Errorf("SimDuration = %v", got)
	}
}

// TestProfileRoundTrip pins ParseProfile(EncodeProfile(p)) == p.
func TestProfileRoundTrip(t *testing.T) {
	p, err := ParseProfile([]byte(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseProfile(EncodeProfile(p))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, EncodeProfile(p))
	}
	if !reflect.DeepEqual(p, again) {
		t.Errorf("round trip changed the profile:\nbefore %+v\nafter  %+v", p, again)
	}
}

func TestProfileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown-top", "bogus: 1\nphases:\n  - op: broadcast\n    duration: 1s\n    rate: 1", "unknown profile key"},
		{"unknown-phase", "phases:\n  - op: broadcast\n    duration: 1s\n    rate: 1\n    warmup: 2", "unknown phases[0] key"},
		{"bad-op", "phases:\n  - op: teleport\n    duration: 1s\n    rate: 1", "unknown op"},
		{"no-phases", "name: x", "no phases"},
		{"bad-rate", "phases:\n  - op: broadcast\n    duration: 1s\n    rate: zero", "bad number"},
		{"bad-duration", "phases:\n  - op: broadcast\n    duration: fortnight\n    rate: 1", "bad duration"},
		{"orphan-slo", "phases:\n  - op: broadcast\n    duration: 1s\n    rate: 1\nslos:\n  - op: resolve\n    p95: 1s", "no traffic phase"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseProfile([]byte(c.src))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestExampleProfilesParse keeps the shipped profiles loadable — the
// CI smoke job and the README walkthrough both depend on them.
func TestExampleProfilesParse(t *testing.T) {
	for _, name := range []string{"ci-smoke.yaml", "semester-day.yaml"} {
		p, err := LoadProfile(filepath.Join("..", "..", "examples", "loadprofiles", name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(p.Phases) == 0 || len(p.SLOs) == 0 {
			t.Errorf("%s: %d phases, %d slos", name, len(p.Phases), len(p.SLOs))
		}
	}
}
