package transport

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTraceRidesEnvelope proves the envelope carries trace context to
// the server, the server opens a span parented to the caller's hop,
// and every dispatch — traced or not — lands in the method histogram.
func TestTraceRidesEnvelope(t *testing.T) {
	srv := NewServer()
	o := obs.NewObserver(64)
	o.SetPos(3)
	srv.SetObserver(o)

	var seen obs.TraceContext
	srv.HandleCtx("Echo", func(ctx *Ctx, decode func(any) error) (any, error) {
		var s string
		if err := decode(&s); err != nil {
			return nil, err
		}
		seen = ctx.Trace()
		ctx.Annotate("hop note %d", 1)
		return s, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tc := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: 42}
	var out string
	if err := c.CallTrace("Echo", "hi", &out, tc, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if out != "hi" {
		t.Fatalf("echo = %q", out)
	}
	if seen.TraceID != tc.TraceID {
		t.Fatalf("handler saw trace %x, want %x", seen.TraceID, tc.TraceID)
	}
	if seen.SpanID == 0 || seen.SpanID == tc.SpanID {
		t.Fatalf("handler context should expose the server span, got %+v", seen)
	}

	spans := o.ForTrace(tc.TraceID)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Method != "Echo" || sp.Parent != 42 || sp.Station != 3 || sp.Err != "" {
		t.Fatalf("span = %+v", sp)
	}
	if sp.Bytes <= 0 {
		t.Fatalf("span bytes = %d", sp.Bytes)
	}
	if len(sp.Notes) != 1 || sp.Notes[0] != "hop note 1" {
		t.Fatalf("notes = %v", sp.Notes)
	}

	// An untraced call records no span but still hits the histogram.
	if err := c.Call("Echo", "again", &out); err != nil {
		t.Fatal(err)
	}
	if got := len(o.ForTrace(tc.TraceID)); got != 1 {
		t.Fatalf("untraced call leaked a span: %d", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if o.Metrics.Summaries()["Echo"].Count == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("histogram count = %+v, want 2 calls", o.Metrics.Summaries()["Echo"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolCallTrace checks the pooled path threads trace context too.
func TestPoolCallTrace(t *testing.T) {
	srv := NewServer()
	o := obs.NewObserver(64)
	srv.SetObserver(o)
	srv.Handle("Ping", func(decode func(any) error) (any, error) { return "pong", nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := NewPool(addr, 2, 5*time.Second)
	defer p.Close()
	tc := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: 7}
	var out string
	if err := p.CallTrace("Ping", struct{}{}, &out, tc, 0); err != nil {
		t.Fatal(err)
	}
	spans := o.ForTrace(tc.TraceID)
	if len(spans) != 1 || spans[0].Parent != 7 {
		t.Fatalf("spans = %+v", spans)
	}
}
