package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TraceCall guards the federation's tracing invariant (PR 7): one
// TraceID stitches a whole m-ary tree traversal because every traced
// scope hands its context to the next hop via CallTrace. A bare
// pool.Call or CallWithTimeout inside such a scope silently severs
// the trace — the downstream hop records an orphan span or none at
// all, and `webdocctl trace` shows a truncated tree with no hint why.
//
// Traced scopes are:
//   - any function with a *transport.Ctx or obs.TraceContext
//     parameter (it was handed a context to propagate),
//   - any function or literal registered with HandleCtx (the server
//     opened a span for it), and
//   - every method of a type that registers HandleCtx handlers — the
//     fabric's server type. Its RPC surface is the traced data plane,
//     so an untraced call from any of its methods is either a bug or
//     a deliberate control-plane exception worth one written line:
//     //lint:ignore tracecall <why this RPC must not carry a trace>.
var TraceCall = &Analyzer{
	Name: "tracecall",
	Doc:  "traced handler scopes must propagate trace context via CallTrace",
	Run:  runTraceCall,
}

func runTraceCall(p *Pass) {
	scopeFuncs := make(map[*types.Func]bool) // HandleCtx-registered functions
	scopeLits := make(map[*ast.FuncLit]bool) // HandleCtx-registered literals
	traceAware := make(map[*types.TypeName]bool)

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "HandleCtx" {
				return true
			}
			for _, arg := range call.Args {
				switch a := arg.(type) {
				case *ast.FuncLit:
					scopeLits[a] = true
				case *ast.SelectorExpr: // s.handlePush — a method value
					if fn, ok := p.ObjectOf(a.Sel).(*types.Func); ok {
						scopeFuncs[fn] = true
						if tn := receiverTypeName(fn); tn != nil {
							traceAware[tn] = true
						}
					}
				case *ast.Ident:
					if fn, ok := p.ObjectOf(a).(*types.Func); ok {
						scopeFuncs[fn] = true
					}
				}
			}
			return true
		})
	}

	reported := make(map[token.Pos]bool)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			inScope := scopeFuncs[fn] || hasTraceParam(fn)
			if !inScope {
				if tn := receiverTypeName(fn); tn != nil && traceAware[tn] {
					inScope = true
				}
			}
			if inScope {
				checkUntracedCalls(p, fd.Body, reported)
			}
		}
	}
	for lit := range scopeLits {
		checkUntracedCalls(p, lit.Body, reported)
	}
}

// checkUntracedCalls reports Pool/Client calls in body that drop the
// trace context.
func checkUntracedCalls(p *Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || reported[call.Pos()] {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Call" && sel.Sel.Name != "CallWithTimeout") {
			return true
		}
		fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "transport" {
			return true
		}
		tn := receiverTypeName(fn)
		if tn == nil || (tn.Name() != "Pool" && tn.Name() != "Client") {
			return true
		}
		reported[call.Pos()] = true
		p.Reportf(call.Pos(), "%s.%s inside a traced scope drops the trace context; use CallTrace, or annotate why this RPC is deliberately untraced", lowerFirst(tn.Name()), sel.Sel.Name)
		return true
	})
}

// hasTraceParam reports whether fn's parameters (not receiver)
// include a *transport.Ctx or obs.TraceContext.
func hasTraceParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			continue
		}
		pkg, name := named.Obj().Pkg().Name(), named.Obj().Name()
		if (pkg == "transport" && name == "Ctx") || (pkg == "obs" && name == "TraceContext") {
			return true
		}
	}
	return false
}

// receiverTypeName returns the defining TypeName of fn's receiver
// base type, nil for plain functions and interface methods.
func receiverTypeName(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]|0x20) + s[1:]
}
