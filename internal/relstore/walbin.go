package relstore

import (
	"fmt"

	"repro/internal/wire"
)

// Binary WAL record payload. A committed transaction frames one of
// these through wire.AppendRecord:
//
//	[uvarint Seq][flags][uvarint nrecs]
//	  per rec: [op][table string][PK value]
//	           [row? nrow {name string, value}...]
//	           [ddl? {name, key, cols{name, type, notnull}, fks{col, ref}}]
//
// Values use the wire tagged-value codec, so a document body is its
// raw bytes on disk — never a base64 blowup inside a JSON object, and
// never touched by reflection on replay.

const walFlagCommit = 1 << 0

// WAL op codes. The string names survive in walRec for the legacy JSON
// decode path; on the wire an op is one byte.
const (
	walOpInsert = 1
	walOpUpdate = 2
	walOpDelete = 3
	walOpCreate = 4
	walOpDrop   = 5
)

var walOpCode = map[string]byte{
	"insert": walOpInsert,
	"update": walOpUpdate,
	"delete": walOpDelete,
	"create": walOpCreate,
	"drop":   walOpDrop,
}

var walOpName = map[byte]string{
	walOpInsert: "insert",
	walOpUpdate: "update",
	walOpDelete: "delete",
	walOpCreate: "create",
	walOpDrop:   "drop",
}

// appendWalLine encodes one committed transaction after dst.
func appendWalLine(dst []byte, line *walLine) ([]byte, error) {
	dst = wire.AppendUvarint(dst, line.Seq)
	var flags byte
	if line.Commit {
		flags |= walFlagCommit
	}
	dst = append(dst, flags)
	dst = wire.AppendUvarint(dst, uint64(len(line.Recs)))
	for _, rec := range line.Recs {
		op, ok := walOpCode[rec.Op]
		if !ok {
			return nil, fmt.Errorf("relstore: unknown WAL op %q", rec.Op)
		}
		dst = append(dst, op)
		dst = wire.AppendString(dst, rec.Table)
		var err error
		if dst, err = wire.AppendValue(dst, rec.PK); err != nil {
			return nil, fmt.Errorf("relstore: WAL %s PK: %w", rec.Table, err)
		}
		if rec.Row == nil {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			dst = wire.AppendUvarint(dst, uint64(len(rec.Row)))
			// Sorted column order keeps the encoding deterministic, so
			// identical transactions produce identical bytes.
			cols := make([]string, 0, len(rec.Row))
			for k := range rec.Row {
				cols = append(cols, k)
			}
			sortStrings(cols)
			for _, k := range cols {
				dst = wire.AppendString(dst, k)
				if dst, err = wire.AppendValue(dst, rec.Row[k]); err != nil {
					return nil, fmt.Errorf("relstore: WAL %s.%s: %w", rec.Table, k, err)
				}
			}
		}
		if rec.DDL == nil {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			dst = appendSchema(dst, rec.DDL)
		}
	}
	return dst, nil
}

// decodeWalLine reverses appendWalLine.
func decodeWalLine(payload []byte) (walLine, error) {
	r := wire.NewReader(payload)
	line := walLine{Seq: r.Uvarint()}
	line.Commit = r.Byte()&walFlagCommit != 0
	n := int(r.Uvarint())
	if r.Err() == nil && n > r.Len() {
		// Each record costs several bytes; a count past the remaining
		// payload is structural corruption, caught before allocating.
		return line, fmt.Errorf("relstore: corrupt WAL record: %d recs in %d bytes", n, r.Len())
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		var rec walRec
		op := r.Byte()
		rec.Op = walOpName[op]
		if rec.Op == "" && r.Err() == nil {
			return line, fmt.Errorf("relstore: corrupt WAL record: op byte %d", op)
		}
		rec.Table = r.String()
		rec.PK = r.Value()
		if r.Byte() == 1 {
			ncol := int(r.Uvarint())
			if r.Err() == nil && ncol > r.Len() {
				return line, fmt.Errorf("relstore: corrupt WAL record: %d columns in %d bytes", ncol, r.Len())
			}
			rec.Row = make(Row, ncol)
			for j := 0; j < ncol && r.Err() == nil; j++ {
				rec.Row[r.String()] = r.Value()
			}
		}
		if r.Byte() == 1 {
			s := readSchema(r)
			rec.DDL = &s
		}
		line.Recs = append(line.Recs, rec)
	}
	if r.Err() != nil {
		return line, fmt.Errorf("relstore: corrupt WAL record: %w", r.Err())
	}
	if r.Len() != 0 {
		return line, fmt.Errorf("relstore: corrupt WAL record: %d trailing bytes", r.Len())
	}
	return line, nil
}

func appendSchema(dst []byte, s *Schema) []byte {
	dst = wire.AppendString(dst, s.Name)
	dst = wire.AppendString(dst, s.Key)
	dst = wire.AppendUvarint(dst, uint64(len(s.Columns)))
	for _, c := range s.Columns {
		dst = wire.AppendString(dst, c.Name)
		dst = wire.AppendUvarint(dst, uint64(c.Type))
		if c.NotNull {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	dst = wire.AppendUvarint(dst, uint64(len(s.ForeignKeys)))
	for _, fk := range s.ForeignKeys {
		dst = wire.AppendString(dst, fk.Column)
		dst = wire.AppendString(dst, fk.RefTable)
	}
	return dst
}

func readSchema(r *wire.Reader) Schema {
	s := Schema{Name: r.String(), Key: r.String()}
	ncol := int(r.Uvarint())
	for i := 0; i < ncol && r.Err() == nil; i++ {
		s.Columns = append(s.Columns, Column{
			Name:    r.String(),
			Type:    ColType(r.Uvarint()),
			NotNull: r.Byte() == 1,
		})
	}
	nfk := int(r.Uvarint())
	for i := 0; i < nfk && r.Err() == nil; i++ {
		s.ForeignKeys = append(s.ForeignKeys, ForeignKey{
			Column:   r.String(),
			RefTable: r.String(),
		})
	}
	return s
}
