package relstore

import (
	"fmt"
	"sort"
	"sync"
)

// table is the in-memory storage of one relation.
type table struct {
	// mu guards rows, indexes and ordered. Writers (transactions that
	// mutate the table) hold it exclusively; queries and foreign-key
	// checks from transactions on referencing tables hold it shared.
	// See lock.go for the acquisition order.
	mu sync.RWMutex

	schema  Schema
	rows    map[string]Row    // encoded pk -> canonical row
	indexes map[string]*index // indexed column -> hash index

	// ordered holds the ordered (range) indexes, keyed by column; nil
	// until CreateOrderedIndex is used.
	ordered map[string]*orderedIndex

	// Sorted-key cache for deterministic scans, rebuilt lazily: writers
	// (who hold the table write lock) mark it dirty; readers rebuild
	// it on demand under cacheMu so concurrent scans stay safe.
	cacheMu   sync.Mutex
	sortedPKs []string
	dirty     bool
}

// index is a hash index mapping an encoded column value to the set of
// encoded primary keys holding it.
type index struct {
	column  string
	buckets map[string]map[string]struct{}
}

func newIndex(column string) *index {
	return &index{column: column, buckets: make(map[string]map[string]struct{})}
}

func (ix *index) add(val any, pk string) {
	k := encodeKey(val)
	b := ix.buckets[k]
	if b == nil {
		b = make(map[string]struct{})
		ix.buckets[k] = b
	}
	b[pk] = struct{}{}
}

func (ix *index) remove(val any, pk string) {
	k := encodeKey(val)
	if b := ix.buckets[k]; b != nil {
		delete(b, pk)
		if len(b) == 0 {
			delete(ix.buckets, k)
		}
	}
}

func (ix *index) lookup(val any) []string {
	b := ix.buckets[encodeKey(val)]
	if len(b) == 0 {
		return nil
	}
	pks := make([]string, 0, len(b))
	for pk := range b {
		pks = append(pks, pk)
	}
	sort.Strings(pks)
	return pks
}

// DB is an embedded relational database with per-table concurrency
// control: each table carries its own reader/writer lock, so queries
// and transactions proceed in parallel as long as they touch disjoint
// tables, and any number of readers share a table between writes. All
// methods are safe for concurrent use. Higher-level (document-object)
// concurrency control remains the job of the document-layer lock
// manager, as in the paper.
type DB struct {
	// metaMu freezes the table set, the schemas and the WAL attachment:
	// held shared by every query and transaction for its duration,
	// exclusively by DDL. See lock.go for the full locking story.
	metaMu sync.RWMutex
	tables map[string]*table
	wal    *WAL // nil when WAL logging is disabled

	// lastSeq is the WAL sequence high-water observed outside an
	// attached log (latest replay, last CloseWAL); guarded by metaMu.
	lastSeq uint64

	// ckptMu serializes checkpoints and guards the durability state
	// below (see checkpoint.go).
	ckptMu sync.Mutex
	dir    string // durability directory attached by OpenDurable
	gen    uint64 // generation of the newest installed checkpoint
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*table)}
}

// CreateTable registers a new relation.
func (db *DB) CreateTable(s Schema) error {
	if err := s.validate(); err != nil {
		return err
	}
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	if _, ok := db.tables[s.Name]; ok {
		return fmt.Errorf("%w: %s", ErrTableExists, s.Name)
	}
	t := &table{
		schema:  s,
		rows:    make(map[string]Row),
		indexes: make(map[string]*index),
	}
	// Foreign-key columns are always indexed so referential checks and
	// reverse lookups stay O(1), the way the SQL server would index them.
	for _, fk := range s.ForeignKeys {
		if _, ok := t.indexes[fk.Column]; !ok {
			t.indexes[fk.Column] = newIndex(fk.Column)
		}
	}
	db.tables[s.Name] = t
	db.logDDL(s)
	return nil
}

// DropTable removes a relation and its rows. It fails if rows of other
// tables still reference it through a foreign key.
func (db *DB) DropTable(name string) error {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	for _, other := range db.tables {
		if other == t {
			continue
		}
		for _, fk := range other.schema.ForeignKeys {
			if fk.RefTable != name {
				continue
			}
			for _, row := range other.rows {
				if row[fk.Column] != nil {
					return fmt.Errorf("%w: table %s still referenced by %s.%s",
						ErrFK, name, other.schema.Name, fk.Column)
				}
			}
		}
	}
	delete(db.tables, name)
	db.logDrop(name)
	return nil
}

// CreateIndex adds a hash index over one column of a table. Indexing an
// already-indexed column is a no-op.
func (db *DB) CreateIndex(tableName, column string) error {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	if _, ok := t.schema.column(column); !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoColumn, tableName, column)
	}
	if _, ok := t.indexes[column]; ok {
		return nil
	}
	ix := newIndex(column)
	for pk, row := range t.rows {
		ix.add(row[column], pk)
	}
	t.indexes[column] = ix
	return nil
}

// Tables returns the sorted names of all relations.
func (db *DB) Tables() []string {
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SchemaOf returns the schema of a table.
func (db *DB) SchemaOf(name string) (Schema, error) {
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return Schema{}, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t.schema, nil
}

// Count returns the number of rows in a table.
func (db *DB) Count(name string) (int, error) {
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows), nil
}

// normalizeRow coerces every supplied value, checks NOT NULL columns and
// rejects unknown columns. The returned row contains only canonical
// representations.
func (t *table) normalizeRow(r Row, requireAll bool) (Row, error) {
	out := make(Row, len(r))
	for name, v := range r {
		col, ok := t.schema.column(name)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, t.schema.Name, name)
		}
		cv, err := coerce(col.Type, v)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: %w", t.schema.Name, name, err)
		}
		out[name] = cv
	}
	if requireAll {
		for _, col := range t.schema.Columns {
			if col.NotNull && out[col.Name] == nil {
				return nil, fmt.Errorf("%w: %s.%s", ErrNull, t.schema.Name, col.Name)
			}
		}
	}
	return out, nil
}

// checkFKs verifies every non-NULL foreign-key value in the row exists
// as a primary key of the referenced table. Caller holds (at least)
// read locks on every referenced table, or metaMu exclusively.
func (db *DB) checkFKs(t *table, row Row) error {
	for _, fk := range t.schema.ForeignKeys {
		v := row[fk.Column]
		if v == nil {
			continue
		}
		ref, ok := db.tables[fk.RefTable]
		if !ok {
			return fmt.Errorf("%w: %s.%s references missing table %s",
				ErrFK, t.schema.Name, fk.Column, fk.RefTable)
		}
		if _, ok := ref.rows[encodeKey(v)]; !ok {
			return fmt.Errorf("%w: %s.%s=%v has no match in %s",
				ErrFK, t.schema.Name, fk.Column, v, fk.RefTable)
		}
	}
	return nil
}

// referencers returns (table, column) pairs of rows referencing the
// given primary key of the given table. Caller holds (at least) read
// locks on every table referencing the named one, or metaMu
// exclusively.
func (db *DB) referencers(name string, pkVal any) []string {
	var hits []string
	for _, other := range db.tables {
		for _, fk := range other.schema.ForeignKeys {
			if fk.RefTable != name {
				continue
			}
			ix := other.indexes[fk.Column]
			if ix == nil {
				continue // FK columns are always indexed at CreateTable
			}
			if pks := ix.lookup(pkVal); len(pks) > 0 {
				hits = append(hits, fmt.Sprintf("%s.%s(%d rows)", other.schema.Name, fk.Column, len(pks)))
			}
		}
	}
	sort.Strings(hits)
	return hits
}

// insertLocked adds the normalized row. Caller holds the table's write
// lock plus read locks on its referenced tables (or metaMu
// exclusively).
func (db *DB) insertLocked(t *table, row Row) (string, error) {
	if err := db.checkFKs(t, row); err != nil {
		return "", err
	}
	return db.insertRawLocked(t, row)
}

// insertRawLocked adds the normalized row without foreign-key checks.
// Only snapshot restore, which verifies integrity afterwards and runs
// on a private database, may use it.
func (db *DB) insertRawLocked(t *table, row Row) (string, error) {
	pkVal := row[t.schema.Key]
	if pkVal == nil {
		return "", fmt.Errorf("%w: %s.%s", ErrNull, t.schema.Name, t.schema.Key)
	}
	pk := encodeKey(pkVal)
	if _, exists := t.rows[pk]; exists {
		return "", fmt.Errorf("%w: %s[%v]", ErrDuplicate, t.schema.Name, pkVal)
	}
	t.rows[pk] = row
	t.dirty = true
	for _, ix := range t.indexes {
		ix.add(row[ix.column], pk)
	}
	t.orderedAdd(row, pk)
	return pk, nil
}

// verifyAllFKs checks every foreign key of every row, returning the
// first violation found.
func (db *DB) verifyAllFKs() error {
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	names := db.tableNamesLocked()
	for _, n := range names {
		db.tables[n].mu.RLock()
	}
	defer func() {
		for i := len(names) - 1; i >= 0; i-- {
			db.tables[names[i]].mu.RUnlock()
		}
	}()
	for _, t := range db.tables {
		if len(t.schema.ForeignKeys) == 0 {
			continue
		}
		for _, row := range t.rows {
			if err := db.checkFKs(t, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// deleteLocked removes the row with the encoded pk. Caller holds the
// table's write lock plus read locks on every table referencing it (or
// metaMu exclusively).
func (db *DB) deleteLocked(t *table, pk string) (Row, error) {
	row, ok := t.rows[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, t.schema.Name)
	}
	if refs := db.referencers(t.schema.Name, row[t.schema.Key]); len(refs) > 0 {
		return nil, fmt.Errorf("%w: %s[%v] still referenced by %v",
			ErrFK, t.schema.Name, row[t.schema.Key], refs)
	}
	delete(t.rows, pk)
	t.dirty = true
	for _, ix := range t.indexes {
		ix.remove(row[ix.column], pk)
	}
	t.orderedRemove(row, pk)
	return row, nil
}

// Insert adds a row, auto-committing. Use Begin for multi-row atomicity
// or Apply for batched writes.
func (db *DB) Insert(tableName string, r Row) error {
	tx, err := db.Begin(tableName)
	if err != nil {
		return err
	}
	if err := tx.Insert(tableName, r); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Get fetches the row with the given primary-key value.
func (db *DB) Get(tableName string, pkVal any) (Row, error) {
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getLocked(pkVal)
}

// getLocked fetches a row by primary key. Caller holds the table lock
// in either mode.
func (t *table) getLocked(pkVal any) (Row, error) {
	col, _ := t.schema.column(t.schema.Key)
	cv, err := coerce(col.Type, pkVal)
	if err != nil {
		return nil, err
	}
	row, ok := t.rows[encodeKey(cv)]
	if !ok {
		return nil, fmt.Errorf("%w: %s[%v]", ErrNotFound, t.schema.Name, pkVal)
	}
	return row.Clone(), nil
}

// Exists reports whether a row with the given primary key exists.
func (db *DB) Exists(tableName string, pkVal any) bool {
	_, err := db.Get(tableName, pkVal)
	return err == nil
}

// Update merges the supplied column changes into the row with the given
// primary key, auto-committing.
func (db *DB) Update(tableName string, pkVal any, changes Row) error {
	tx, err := db.Begin(tableName)
	if err != nil {
		return err
	}
	if err := tx.Update(tableName, pkVal, changes); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Delete removes the row with the given primary key, auto-committing.
// Deleting a row still referenced through a foreign key fails with ErrFK.
func (db *DB) Delete(tableName string, pkVal any) error {
	tx, err := db.Begin(tableName)
	if err != nil {
		return err
	}
	if err := tx.Delete(tableName, pkVal); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// sortedKeysLocked returns the table's primary keys in sorted order,
// rebuilding the cache when the table changed. Caller holds at least
// the table's read lock (so no writer mutates rows concurrently);
// cacheMu serializes the rebuild among concurrent readers.
func (t *table) sortedKeysLocked() []string {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	if !t.dirty && t.sortedPKs != nil {
		return t.sortedPKs
	}
	pks := make([]string, 0, len(t.rows))
	for pk := range t.rows {
		pks = append(pks, pk)
	}
	sort.Strings(pks)
	t.sortedPKs = pks
	t.dirty = false
	return pks
}
