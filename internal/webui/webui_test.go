package webui

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/library"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/search"
)

// newServer builds the UI over a two-course library with a content
// index attached, as webdocd wires it.
func newServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := search.Attach(store); err != nil {
		t.Fatal(err)
	}
	base := time.Date(1999, 4, 21, 8, 0, 0, 0, time.UTC)
	tick := 0
	store.Now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Minute)
	}
	if err := store.CreateDatabase(docdb.Database{Name: "mmu"}); err != nil {
		t.Fatal(err)
	}
	courses := []docdb.Script{
		{Name: "cs101", DBName: "mmu", Author: "Shih", Keywords: []string{"computer", "engineering"},
			Description: "Introduction to Computer Engineering"},
		{Name: "mm201", DBName: "mmu", Author: "Ma", Keywords: []string{"multimedia"},
			Description: "Introduction to Multimedia Computing"},
	}
	lib := library.New(store)
	lib.RegisterInstructor("Shih")
	for i, c := range courses {
		if err := store.CreateScript(c); err != nil {
			t.Fatal(err)
		}
		if err := lib.Add(c.Name, []string{"CS-101", "MM-201"}[i], "Shih"); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.AddImplementation(docdb.Implementation{StartingURL: "http://mmu/cs101/v1", ScriptName: "cs101"}); err != nil {
		t.Fatal(err)
	}
	if err := store.PutHTML("http://mmu/cs101/v1", "index.html", []byte("<html><title>x</title></html>")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.AttachImplMedia("http://mmu/cs101/v1", "clip.mpg", blob.KindVideo, []byte("video")); err != nil {
		t.Fatal(err)
	}
	srv := New(lib, store)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func postForm(t *testing.T, target string, vals url.Values) (int, string) {
	t.Helper()
	resp, err := http.PostForm(target, vals)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHomeListsCatalog(t *testing.T) {
	_, ts := newServer(t)
	code, body := get(t, ts.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(body, "cs101") || !strings.Contains(body, "mm201") {
		t.Errorf("catalog missing courses:\n%s", body)
	}
	if !strings.Contains(body, `action="/search"`) {
		t.Error("search form missing")
	}
}

func TestSearchByKeywordAndInstructor(t *testing.T) {
	_, ts := newServer(t)
	code, body := get(t, ts.URL+"/search?kw=multimedia")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(body, "mm201") || strings.Contains(body, "cs101") {
		t.Errorf("keyword search body:\n%s", body)
	}
	_, body = get(t, ts.URL+"/search?instructor=Shih")
	if !strings.Contains(body, "cs101") {
		t.Errorf("instructor search body:\n%s", body)
	}
	_, body = get(t, ts.URL+"/search?course=MM-201")
	if !strings.Contains(body, "mm201") {
		t.Errorf("course search body:\n%s", body)
	}
	_, body = get(t, ts.URL+"/search?kw=nonexistentterm")
	if !strings.Contains(body, "0 hit(s)") {
		t.Errorf("empty search body:\n%s", body)
	}
}

func TestDocPageShowsFilesAndMedia(t *testing.T) {
	_, ts := newServer(t)
	code, body := get(t, ts.URL+"/doc/cs101")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	for _, want := range []string{"index.html", "clip.mpg", "video", "Check out"} {
		if !strings.Contains(body, want) {
			t.Errorf("doc page missing %q", want)
		}
	}
	code, _ = get(t, ts.URL+"/doc/ghost")
	if code != http.StatusNotFound {
		t.Errorf("ghost doc code = %d", code)
	}
}

func TestCheckoutCheckinAssessFlow(t *testing.T) {
	_, ts := newServer(t)
	code, body := postForm(t, ts.URL+"/checkout", url.Values{"doc": {"cs101"}, "student": {"alice"}})
	if code != http.StatusOK {
		t.Fatalf("checkout code = %d: %s", code, body)
	}
	ticketRe := regexp.MustCompile(`<code>(lco-\d+)</code>`)
	m := ticketRe.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("no ticket in body:\n%s", body)
	}
	code, body = postForm(t, ts.URL+"/checkin", url.Values{"ticket": {m[1]}})
	if code != http.StatusOK {
		t.Fatalf("checkin code = %d: %s", code, body)
	}
	// Double check-in fails.
	code, _ = postForm(t, ts.URL+"/checkin", url.Values{"ticket": {m[1]}})
	if code != http.StatusBadRequest {
		t.Errorf("double checkin code = %d", code)
	}
	code, body = get(t, ts.URL+"/assess?student=alice")
	if code != http.StatusOK {
		t.Fatalf("assess code = %d", code)
	}
	if !strings.Contains(body, "<td>1</td><td>1</td><td>0</td>") {
		t.Errorf("assessment table:\n%s", body)
	}
}

func TestCheckoutValidation(t *testing.T) {
	_, ts := newServer(t)
	code, _ := postForm(t, ts.URL+"/checkout", url.Values{"doc": {"ghost"}, "student": {"bob"}})
	if code != http.StatusBadRequest {
		t.Errorf("unknown doc code = %d", code)
	}
	code, _ = postForm(t, ts.URL+"/checkout", url.Values{"doc": {"cs101"}})
	if code != http.StatusBadRequest {
		t.Errorf("missing student code = %d", code)
	}
	resp, err := http.Get(ts.URL + "/checkout")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET checkout code = %d", resp.StatusCode)
	}
}

func TestAssessRequiresStudent(t *testing.T) {
	_, ts := newServer(t)
	code, _ := get(t, ts.URL+"/assess")
	if code != http.StatusBadRequest {
		t.Errorf("code = %d", code)
	}
}

func TestEscapingAgainstInjection(t *testing.T) {
	_, ts := newServer(t)
	_, body := get(t, ts.URL+"/search?kw="+url.QueryEscape("<script>alert(1)</script>"))
	if strings.Contains(body, "<script>alert") {
		t.Error("unescaped query echoed into HTML")
	}
}

// TestHostileScriptNameEscapedEverywhere is the regression test for
// the raw-interpolation bug: a script name full of HTML and URL
// metacharacters must render inert on the home page and in search
// results, and the generated link must round-trip back to the doc
// page.
func TestHostileScriptNameEscapedEverywhere(t *testing.T) {
	srv, ts := newServer(t)
	hostile := `pwn"><script>alert(1)</script> a/b?c#d`
	if err := srv.Store.CreateScript(docdb.Script{
		Name: hostile, DBName: "mmu", Author: "Shih",
		Description: "Hostile <title> & co", Keywords: []string{"hostile"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Library.Add(hostile, "XX-666", "Shih"); err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"/", "/search?kw=hostile"} {
		code, body := get(t, ts.URL+target)
		if code != http.StatusOK {
			t.Fatalf("%s code = %d", target, code)
		}
		if strings.Contains(body, "<script>alert") {
			t.Errorf("%s: hostile script name escaped the HTML context:\n%s", target, body)
		}
		if strings.Contains(body, `href="/doc/pwn"`) {
			t.Errorf("%s: hostile name truncated the href attribute", target)
		}
	}
	// The link the catalog renders must reach the document page intact:
	// path-escaped, so the '/', '?' and '#' survive routing.
	_, body := get(t, ts.URL+"/")
	re := regexp.MustCompile(`href="(/doc/[^"]*pwn[^"]*)"`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("no catalog link for the hostile script:\n%s", body)
	}
	href := strings.ReplaceAll(m[1], "&amp;", "&")
	code, docBody := get(t, ts.URL+href)
	if code != http.StatusOK {
		t.Fatalf("hostile doc link %s -> %d", href, code)
	}
	if !strings.Contains(docBody, "Hostile &lt;title&gt; &amp; co") {
		t.Errorf("doc page did not render the escaped description:\n%s", docBody)
	}
	if strings.Contains(docBody, "<script>alert") {
		t.Error("doc page leaked the hostile name unescaped")
	}
}

func TestFullTextSearchModeWithSnippets(t *testing.T) {
	srv, ts := newServer(t)
	if err := srv.Store.PutHTML("http://mmu/cs101/v1", "lecture2.html",
		[]byte("<html><body>the watermark frequency decides when replication pays off</body></html>")); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.URL+"/search?mode=content&kw=watermark")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(body, "lecture2.html") {
		t.Errorf("full-text hit missing:\n%s", body)
	}
	if !strings.Contains(body, "the watermark frequency decides when") {
		t.Errorf("snippet missing:\n%s", body)
	}
	// Catalog metadata rides in the same index: the script hit links to
	// its doc page.
	_, body = get(t, ts.URL+"/search?mode=content&kw=multimedia")
	if !strings.Contains(body, `href="/doc/mm201"`) {
		t.Errorf("script hit not linked:\n%s", body)
	}
	// Phrase mode narrows.
	_, body = get(t, ts.URL+"/search?mode=content&phrase=1&kw="+url.QueryEscape("watermark frequency"))
	if !strings.Contains(body, "1 hit(s)") {
		t.Errorf("phrase search body:\n%s", body)
	}
	_, body = get(t, ts.URL+"/search?mode=content&phrase=1&kw="+url.QueryEscape("frequency watermark"))
	if !strings.Contains(body, "0 hit(s)") {
		t.Errorf("reversed phrase body:\n%s", body)
	}
	// The form exposes the phrase control and keeps it checked on the
	// results page, so resubmission preserves the constraint.
	if !strings.Contains(body, `name="phrase" value="1" checked`) {
		t.Errorf("phrase checkbox not rendered checked:\n%s", body)
	}
	_, body = get(t, ts.URL+"/search?mode=content&kw=watermark")
	if !strings.Contains(body, `name="phrase" value="1">`) || strings.Contains(body, "checked") {
		t.Errorf("phrase checkbox state wrong for non-phrase query:\n%s", body)
	}
}

func TestFederatedSearchModeUsesHook(t *testing.T) {
	srv, ts := newServer(t)
	srv.Federated = func(q search.Query) ([]search.Hit, error) {
		return []search.Hit{{
			Key: "html:u#p.html", Kind: search.KindHTML, URL: "u", Path: "p.html",
			Score: 1, Station: 7, Snippet: "remote snippet <b>",
		}}, nil
	}
	code, body := get(t, ts.URL+"/search?mode=federated&kw=anything")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(body, "@station 7") || !strings.Contains(body, "remote snippet &lt;b&gt;") {
		t.Errorf("federated body:\n%s", body)
	}
	// Without the hook the mode is refused.
	srv.Federated = nil
	code, _ = get(t, ts.URL+"/search?mode=federated&kw=x")
	if code != http.StatusNotFound {
		t.Errorf("federated without fabric code = %d", code)
	}
}

func TestUnknownPathIs404(t *testing.T) {
	_, ts := newServer(t)
	code, _ := get(t, ts.URL+"/nope")
	if code != http.StatusNotFound {
		t.Errorf("code = %d", code)
	}
}

func TestDebugPageRendersTracesAndLatency(t *testing.T) {
	srv, ts := newServer(t)

	// Without an observer the page degrades gracefully.
	code, body := get(t, ts.URL+"/debug")
	if code != http.StatusOK || !strings.Contains(body, "disabled") {
		t.Fatalf("debug without observer: code=%d body:\n%s", code, body)
	}

	// With an observer: one finished root span, its histogram entry,
	// and a journal event on the timeline.
	o := obs.NewObserver(0)
	o.SetPos(3)
	sp := o.BeginLocal("Fabric.Broadcast")
	sp.Annotate("grafted dead child 5: station down")
	sp.End(nil)
	o.Observe("Fabric.Broadcast", 42*time.Millisecond, false)
	ev := obs.NewEvent("down-declared", "pos", 5, "fails", 2)
	ev.TraceID = sp.Context().TraceID
	o.Emit(ev)
	srv.Observer = o

	_, body = get(t, ts.URL+"/debug")
	id := obs.FormatTraceID(sp.Context().TraceID)
	for _, want := range []string{
		id, "Fabric.Broadcast", "grafted dead child 5", "Per-method latency", "webdocctl trace",
		"Recent events", "event=down-declared pos=5 fails=2", "webdocctl events",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("debug page missing %q:\n%s", want, body)
		}
	}
}
