package integrity

import (
	"fmt"

	"repro/internal/docdb"
	"repro/internal/relstore"
	"repro/internal/schema"
)

// Default builds the paper's referential integrity diagram over the Web
// document object kinds: a script update alerts its implementations,
// which alert their one-or-more HTML files, zero-or-more program files
// and zero-or-more multimedia resources; test records chain to bug
// reports; annotations hang off scripts and implementations.
func Default() *Diagram {
	d := NewDiagram()
	for _, k := range []string{
		schema.KindScript, schema.KindImplementation, schema.KindHTMLFile,
		schema.KindProgramFile, schema.KindMedia, schema.KindTestRecord,
		schema.KindBugReport, schema.KindAnnotation,
	} {
		d.AddNode(k)
	}
	links := []Link{
		{From: schema.KindScript, To: schema.KindImplementation, Label: "implements", Mult: Plus,
			Message: "script %s updated; re-validate implementation %s"},
		{From: schema.KindImplementation, To: schema.KindHTMLFile, Label: "contains-html", Mult: Plus,
			Message: "implementation %s updated; review HTML file %s"},
		{From: schema.KindImplementation, To: schema.KindProgramFile, Label: "contains-program", Mult: Star,
			Message: "implementation %s updated; review control program %s"},
		{From: schema.KindImplementation, To: schema.KindMedia, Label: "uses-media", Mult: Star,
			Message: "implementation %s updated; review multimedia resource %s"},
		{From: schema.KindScript, To: schema.KindTestRecord, Label: "tested-by", Mult: Star,
			Message: "script %s updated; test record %s may be stale"},
		{From: schema.KindImplementation, To: schema.KindTestRecord, Label: "tested-by", Mult: Star,
			Message: "implementation %s updated; re-run test record %s"},
		{From: schema.KindTestRecord, To: schema.KindBugReport, Label: "reports", Mult: Star,
			Message: "test record %s updated; re-check bug report %s"},
		{From: schema.KindScript, To: schema.KindAnnotation, Label: "annotated-by", Mult: Star,
			Message: "script %s updated; annotation %s may no longer apply"},
		{From: schema.KindImplementation, To: schema.KindAnnotation, Label: "annotated-by", Mult: Star,
			Message: "implementation %s updated; annotation %s may no longer apply"},
	}
	for _, l := range links {
		if err := d.AddLink(l); err != nil {
			// The default diagram is static; a failure here is a
			// programming error.
			panic(err)
		}
	}
	return d
}

// DocResolver resolves diagram dependents against a document store.
type DocResolver struct {
	Store *docdb.Store
}

// Dependents implements Resolver over the docdb tables.
func (r DocResolver) Dependents(kind, id, targetKind string) ([]string, error) {
	rel := r.Store.Rel()
	switch {
	case kind == schema.KindScript && targetKind == schema.KindImplementation:
		return pkList(rel, schema.TableImpls, "script_name", id, "starting_url")
	case kind == schema.KindImplementation && targetKind == schema.KindHTMLFile:
		return pkList(rel, schema.TableHTMLFiles, "starting_url", id, "file_id")
	case kind == schema.KindImplementation && targetKind == schema.KindProgramFile:
		return pkList(rel, schema.TableProgFiles, "starting_url", id, "file_id")
	case kind == schema.KindImplementation && targetKind == schema.KindMedia:
		return pkList(rel, schema.TableImplMedia, "starting_url", id, "res_id")
	case kind == schema.KindScript && targetKind == schema.KindTestRecord:
		return pkList(rel, schema.TableTestRecords, "script_name", id, "test_name")
	case kind == schema.KindImplementation && targetKind == schema.KindTestRecord:
		return pkList(rel, schema.TableTestRecords, "starting_url", id, "test_name")
	case kind == schema.KindTestRecord && targetKind == schema.KindBugReport:
		return pkList(rel, schema.TableBugReports, "test_name", id, "bug_name")
	case kind == schema.KindScript && targetKind == schema.KindAnnotation:
		return pkList(rel, schema.TableAnnotations, "script_name", id, "ann_name")
	case kind == schema.KindImplementation && targetKind == schema.KindAnnotation:
		return pkList(rel, schema.TableAnnotations, "starting_url", id, "ann_name")
	default:
		return nil, fmt.Errorf("integrity: no resolver from %s to %s", kind, targetKind)
	}
}

// pkList collects one column from an indexed equality lookup.
func pkList(rel *relstore.DB, table, col, val, out string) ([]string, error) {
	rows, err := rel.Lookup(table, col, val)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(rows))
	for _, r := range rows {
		if s, ok := r[out].(string); ok {
			ids = append(ids, s)
		}
	}
	return ids, nil
}
