// Command webdocload replays a time-compressed semester day against a
// distribution fabric and judges the run against the profile's latency
// SLOs.
//
//	webdocload -profile examples/loadprofiles/semester-day.yaml
//	webdocload -profile day.yaml -addr 127.0.0.1:7070   # existing fabric
//
// Without -addr the harness self-hosts the profile's fabric in-process
// (loopback TCP, real sockets) and seeds the course corpus first. The
// run always writes BENCH_load_<profile>.json and exits non-zero when
// any SLO fails, so CI can gate on it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		profilePath = flag.String("profile", "", "load profile YAML (required)")
		addr        = flag.String("addr", "", "root address of an existing fabric (default: self-host)")
		out         = flag.String("out", "", "report path (default BENCH_load_<profile>.json)")
		outDir      = flag.String("out-dir", ".", "directory for the default report path")
		seed        = flag.Int64("seed", 0, "override the profile's seed (0 = keep)")
		timeScale   = flag.Float64("time-scale", 0, "override the profile's time-scale (0 = keep)")
		jsonOut     = flag.Bool("json", false, "print the report JSON to stdout")
		dump        = flag.Bool("dump-profile", false, "print the parsed profile (defaults applied) and exit")
		quiet       = flag.Bool("q", false, "suppress progress output")
		wait        = flag.Duration("wait", 30*time.Second, "how long to wait for an existing fabric's roster")
	)
	flag.Parse()
	if *profilePath == "" {
		fmt.Fprintln(os.Stderr, "usage: webdocload -profile <file.yaml> [-addr host:port] [-out report.json] [-json]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	logf := loadgen.Logf(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if *quiet {
		logf = nil
	}

	profile, err := loadgen.LoadProfile(*profilePath)
	if err != nil {
		fail(err)
	}
	if *seed != 0 {
		profile.Seed = *seed
	}
	if *timeScale != 0 {
		profile.TimeScale = *timeScale
	}
	if *dump {
		os.Stdout.Write(loadgen.EncodeProfile(profile))
		return
	}

	plan := loadgen.BuildPlan(profile)

	rootAddr := *addr
	if rootAddr == "" {
		host, err := loadgen.StartHost(profile, logf)
		if err != nil {
			fail(err)
		}
		defer host.Close()
		rootAddr = host.RootAddr()
	}
	target, err := loadgen.DialFabric(rootAddr, profile.Fabric.Stations, *wait)
	if err != nil {
		fail(err)
	}
	defer target.Close()

	col, wall, err := loadgen.Run(profile, plan, target, logf)
	if err != nil {
		fail(err)
	}
	stats, err := target.Stats()
	if err != nil {
		fail(fmt.Errorf("scraping station stats: %w", err))
	}
	report := loadgen.BuildReport(profile, col, wall, stats)
	if !report.Pass && len(report.SlowTraces) > 0 {
		// The run failed an SLO: resolve the slow exemplars' hop trees
		// and correlated journal events while the fabric is still up,
		// so the report ships the debugging evidence, not just IDs.
		if logf != nil {
			logf("resolving %d slow-trace exemplar(s) before teardown", len(report.SlowTraces))
		}
		report.ResolvedTraces = loadgen.ResolveSlowTraces(target, report.SlowTraces)
	}

	path := *out
	if path == "" {
		path = filepath.Join(*outDir, loadgen.ReportFileName(profile.Name))
	}
	if err := loadgen.WriteReport(path, report); err != nil {
		fail(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(report)
	} else {
		printSummary(report, path)
	}
	if !report.Pass {
		os.Exit(1)
	}
}

func printSummary(r *loadgen.Report, path string) {
	fmt.Printf("profile %s: %d stations (m=%d), %.0fs simulated in %.1fs wall\n",
		r.Profile, r.Stations, r.M, r.SimSeconds, r.WallSeconds)
	for _, op := range []string{"broadcast", "resolve", "search", "checkout", "migrate"} {
		s, ok := r.Ops[op]
		if !ok {
			continue
		}
		fmt.Printf("  %-9s %5d ops  %6.1f ops/s  p50 %7.1fms  p95 %7.1fms  p99 %7.1fms  errs %d\n",
			op, s.Count, s.WallOpsPerSec, s.P50Ms, s.P95Ms, s.P99Ms, s.Errors)
	}
	for _, v := range r.SLOs {
		mark := "PASS"
		if !v.Pass {
			mark = "FAIL"
		}
		fmt.Printf("  SLO %-9s %-20s threshold %10.2f  actual %10.2f  %s\n",
			v.Op, v.Metric, v.Threshold, v.Actual, mark)
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Printf("verdict: %s  (report: %s)\n", verdict, path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "webdocload:", err)
	os.Exit(1)
}
