// Package cluster implements the distributed station layer of section 4
// of the paper: N workstations join the Web document database in linear
// order and are arranged into a full m-ary tree. Course material
// authored on the instructor station (station 1, the root) is
// pre-broadcast down the tree as document instances, or pulled on
// demand up the parent route; a watermark frequency decides when a
// remote station's repeated retrievals justify copying the physical
// BLOBs; and after a lecture the duplicated instances migrate back to
// references, reclaiming the buffer space.
//
// Transfers run over the netsim discrete-event simulator, so broadcast
// completion times, stall times and disk usage are measured in
// controlled simulated time.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/htmlmini"
	"repro/internal/mtree"
	"repro/internal/netsim"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/workload"
)

// referenceBytes approximates the size of a broadcast document
// reference (metadata mirror of an instance).
const referenceBytes = 1024

// Cluster errors.
var (
	ErrBadConfig  = errors.New("cluster: invalid configuration")
	ErrNoStation  = errors.New("cluster: no such station")
	ErrNoInstance = errors.New("cluster: no station on the path holds an instance")
)

// Config sizes a simulated deployment.
type Config struct {
	Stations  int
	M         int // distribution tree degree
	UplinkBps float64
	Latency   time.Duration
	// Watermark is the paper's watermark frequency: a station that has
	// fetched a document more than Watermark times materializes a local
	// instance (copies the BLOBs). Negative means never replicate.
	Watermark int
	Mode      netsim.Mode
}

// Station is one workstation: its own document database and BLOB store
// plus the distribution bookkeeping. Every station carries a content
// index (internal/search) kept current by the store's write hooks, so
// the simulator can model federation-wide full-text queries.
type Station struct {
	Pos     int
	Store   *docdb.Store
	Index   *search.Index
	fetches map[string]int // starting URL -> remote retrievals so far
}

// Fetches returns how many times this station has pulled the document
// from a remote holder.
func (s *Station) Fetches(url string) int { return s.fetches[url] }

// Cluster is the simulated deployment.
type Cluster struct {
	cfg      Config
	sim      *netsim.Sim
	ids      []int // netsim node ids, index = station position - 1
	stations []*Station
	down     map[int]bool // failed stations (see extensions.go)
}

// New builds a cluster of cfg.Stations stations joined in linear order.
func New(cfg Config) (*Cluster, error) {
	if cfg.Stations < 1 {
		return nil, fmt.Errorf("%w: %d stations", ErrBadConfig, cfg.Stations)
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("%w: degree %d", ErrBadConfig, cfg.M)
	}
	sim := netsim.New(cfg.Mode)
	c := &Cluster{cfg: cfg, sim: sim}
	c.ids = sim.AddNodes(cfg.Stations, cfg.UplinkBps, cfg.Latency)
	base := time.Date(1999, 4, 21, 8, 0, 0, 0, time.UTC)
	for pos := 1; pos <= cfg.Stations; pos++ {
		store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
		if err != nil {
			return nil, err
		}
		store.Now = func() time.Time { return base.Add(sim.Now()) }
		idx, err := search.Attach(store)
		if err != nil {
			return nil, err
		}
		c.stations = append(c.stations, &Station{
			Pos:     pos,
			Store:   store,
			Index:   idx,
			fetches: make(map[string]int),
		})
	}
	return c, nil
}

// Station returns the station at a linear position (1-based).
func (c *Cluster) Station(pos int) (*Station, error) {
	if pos < 1 || pos > len(c.stations) {
		return nil, fmt.Errorf("%w: %d", ErrNoStation, pos)
	}
	return c.stations[pos-1], nil
}

// Size returns the number of joined stations.
func (c *Cluster) Size() int { return len(c.stations) }

// M returns the distribution tree degree.
func (c *Cluster) M() int { return c.cfg.M }

// Now returns the current simulated time.
func (c *Cluster) Now() time.Duration { return c.sim.Now() }

// WireBytes returns the total bytes moved between stations so far.
func (c *Cluster) WireBytes() int64 { return c.sim.Stats().TotalBytes }

// AuthorCourse builds a course on the instructor station (station 1),
// records the persistent instance, and declares its reusable class —
// the shared workload generator's authoring sequence, so simulated
// and deployed corpora match.
func (c *Cluster) AuthorCourse(spec workload.CourseSpec) (workload.Course, docdb.DocObject, error) {
	return workload.AuthorCourse(c.stations[0].Store, spec)
}

// BroadcastReferences mirrors the new instance to every station as a
// document reference, flowing small metadata messages down the m-ary
// tree: "references to the instance are broadcasted and stored in many
// remote stations."
func (c *Cluster) BroadcastReferences(url string) error {
	root := c.stations[0]
	impl, err := root.Store.Implementation(url)
	if err != nil {
		return err
	}
	script, err := root.Store.Script(impl.ScriptName)
	if err != nil {
		return err
	}
	var failure error
	var forward func(pos int)
	forward = func(pos int) {
		kids, err := mtree.Children(pos, c.cfg.M, c.Size())
		if err != nil {
			failure = err
			return
		}
		for _, kid := range kids {
			kid := kid
			err := c.sim.Transfer(c.ids[pos-1], c.ids[kid-1], referenceBytes, func(time.Duration) {
				st := c.stations[kid-1]
				if err := installReference(st, script, impl, kid); err != nil {
					failure = err
					return
				}
				forward(kid)
			})
			if err != nil {
				failure = err
				return
			}
		}
	}
	forward(1)
	c.sim.Run()
	return failure
}

// installReference records the metadata scaffolding (database, script,
// implementation rows) plus a reference object on a station.
func installReference(st *Station, script docdb.Script, impl docdb.Implementation, pos int) error {
	_, err := st.Store.ImportReference(script, impl, pos, 1)
	return err
}

// PreBroadcast pushes the full lecture bundle down the m-ary tree with
// store-and-forward relaying: a station forwards to its children only
// after it has fully received (and imported) the bundle. It returns the
// per-station completion offsets (index = position - 1; the root is 0)
// and the bundle size.
func (c *Cluster) PreBroadcast(url string) ([]time.Duration, int64, error) {
	root := c.stations[0]
	bundle, err := root.Store.ExportBundle(url)
	if err != nil {
		return nil, 0, err
	}
	size := bundle.TotalBytes()
	start := c.sim.Now()
	times := make([]time.Duration, c.Size())
	var failure error
	var forward func(pos int)
	forward = func(pos int) {
		kids, err := mtree.Children(pos, c.cfg.M, c.Size())
		if err != nil {
			failure = err
			return
		}
		for _, kid := range kids {
			kid := kid
			err := c.sim.Transfer(c.ids[pos-1], c.ids[kid-1], size, func(at time.Duration) {
				st := c.stations[kid-1]
				if _, err := st.Store.ImportBundle(bundle, kid, false); err != nil {
					failure = err
					return
				}
				times[kid-1] = at - start
				forward(kid)
			})
			if err != nil {
				failure = err
				return
			}
		}
	}
	forward(1)
	c.sim.Run()
	return times, size, failure
}

// holderOnPath returns the nearest station on the requester's ancestor
// path (including itself) holding a physical instance of the document.
func (c *Cluster) holderOnPath(pos int, url string) (*Station, error) {
	path, err := mtree.AncestorPath(pos, c.cfg.M)
	if err != nil {
		return nil, err
	}
	for _, p := range path {
		st := c.stations[p-1]
		obj, err := st.Store.ObjectByURL(url)
		if err != nil {
			continue
		}
		if obj.Form == schema.FormInstance || obj.Form == schema.FormClass {
			return st, nil
		}
	}
	return nil, fmt.Errorf("%w: %s from station %d", ErrNoInstance, url, pos)
}

// FetchResult reports one on-demand retrieval.
type FetchResult struct {
	Latency    time.Duration
	ServedBy   int  // position of the station that supplied the data
	Local      bool // the document was already resident
	Replicated bool // this fetch crossed the watermark and materialized a copy
	Bytes      int64
}

// FetchOnDemand retrieves a document for a station that wants to review
// it: served locally when an instance is resident, otherwise pulled
// from the nearest holding ancestor. Crossing the watermark frequency
// replicates the physical data onto the requesting station.
func (c *Cluster) FetchOnDemand(pos int, url string) (FetchResult, error) {
	st, err := c.Station(pos)
	if err != nil {
		return FetchResult{}, err
	}
	if obj, err := st.Store.ObjectByURL(url); err == nil && obj.Form != schema.FormReference {
		return FetchResult{Local: true, ServedBy: pos}, nil
	}
	holder, err := c.holderOnPath(pos, url)
	if err != nil {
		return FetchResult{}, err
	}
	bundle, err := holder.Store.ExportBundle(url)
	if err != nil {
		return FetchResult{}, err
	}
	size := bundle.TotalBytes()
	start := c.sim.Now()
	var finished time.Duration
	if err := c.sim.Transfer(c.ids[holder.Pos-1], c.ids[pos-1], size, func(at time.Duration) {
		finished = at
	}); err != nil {
		return FetchResult{}, err
	}
	c.sim.Run()

	st.fetches[url]++
	res := FetchResult{
		Latency:  finished - start,
		ServedBy: holder.Pos,
		Bytes:    size,
	}
	if c.cfg.Watermark >= 0 && st.fetches[url] > c.cfg.Watermark {
		if _, err := st.Store.ImportBundle(bundle, pos, false); err != nil {
			return FetchResult{}, err
		}
		res.Replicated = true
	}
	return res, nil
}

// EndLecture migrates every non-persistent instance of the document
// back to a reference, freeing the buffer space: "after a lecture is
// presented, duplicated document instances migrate to document
// references." It returns the total bytes reclaimed across stations.
func (c *Cluster) EndLecture(url string) (int64, error) {
	var freed int64
	for _, st := range c.stations {
		obj, err := st.Store.ObjectByURL(url)
		if err != nil || obj.Form != schema.FormInstance || obj.Persistent {
			continue
		}
		before := st.Store.Blobs().Stats().PhysicalBytes
		if err := st.Store.MigrateToReference(obj.ID, 1); err != nil {
			return freed, err
		}
		st.fetches[url] = 0
		freed += before - st.Store.Blobs().Stats().PhysicalBytes
	}
	return freed, nil
}

// DiskUsage returns each station's physical BLOB bytes (index =
// position - 1).
func (c *Cluster) DiskUsage() []int64 {
	out := make([]int64, c.Size())
	for i, st := range c.stations {
		out[i] = st.Store.Blobs().Stats().PhysicalBytes
	}
	return out
}

// PlaybackReport summarizes a simulated lecture playback.
type PlaybackReport struct {
	Pages      int
	Stalls     int           // pages that had to wait for remote media
	StallTime  time.Duration // total waiting time
	FetchBytes int64         // bytes pulled during playback
}

// Playback simulates a student at the station viewing the lecture page
// by page (one page per pageTime). Media already resident plays
// immediately; missing media must be pulled from the instructor station
// before the page can show, stalling the playback — the real-time
// demonstration problem that pre-broadcast solves.
func (c *Cluster) Playback(pos int, url string, pageTime time.Duration) (PlaybackReport, error) {
	st, err := c.Station(pos)
	if err != nil {
		return PlaybackReport{}, err
	}
	root := c.stations[0]
	pages, err := root.Store.HTMLFiles(url)
	if err != nil {
		return PlaybackReport{}, err
	}
	rootMedia, err := root.Store.ImplMedia(url)
	if err != nil {
		return PlaybackReport{}, err
	}
	refByName := make(map[string]blob.Ref, len(rootMedia))
	for _, m := range rootMedia {
		refByName[m.Name] = m.Ref
	}
	var rep PlaybackReport
	for _, page := range pages {
		rep.Pages++
		doc := htmlmini.Parse(page.Content)
		var missingBytes int64
		for _, asset := range doc.Assets {
			ref, ok := refByName[htmlmini.Normalize(asset)]
			if !ok {
				continue
			}
			if !st.Store.Blobs().Has(ref) {
				missingBytes += ref.Size
			}
		}
		if missingBytes == 0 {
			continue
		}
		// Pull the page's media from the instructor station and wait.
		start := c.sim.Now()
		var finished time.Duration
		if err := c.sim.Transfer(c.ids[0], c.ids[pos-1], missingBytes, func(at time.Duration) {
			finished = at
		}); err != nil {
			return rep, err
		}
		c.sim.Run()
		rep.Stalls++
		rep.StallTime += finished - start
		rep.FetchBytes += missingBytes
		_ = pageTime // page viewing advances wall-clock, not sim transfers
	}
	return rep, nil
}
