package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"repro/internal/wire"
)

// Frame codec. A frame is a 4-byte big-endian length prefix followed
// by the payload:
//
//	[len u32][magic 0xB7][ver][flags][uvarint ID]
//	  [method string]?[err string]?[uvarint TraceID uvarint Parent]?
//	  [body bytes]?[crc32c u32]
//
// The CRC32C trailer covers every payload byte before it. Optional
// fields are present when their flag bit is set, so a Ping costs nine
// bytes of framing, not a gob type descriptor. The first payload byte
// of a legacy gob frame can never be 0xB7 (gob segment lengths start
// < 0x80 or in [0xF8, 0xFF]), so readFrame sniffs one byte to accept
// frames from pre-overhaul peers; everything this process sends is
// binary.

// Envelope flag bits.
const (
	flagIsResp = 1 << 0
	flagMore   = 1 << 1
	flagErr    = 1 << 2
	flagTrace  = 1 << 3
	flagMethod = 1 << 4
	flagBody   = 1 << 5
)

// appendEnvelope encodes env after dst (the frame payload, without
// the length prefix), including the CRC trailer.
func appendEnvelope(dst []byte, env *envelope) []byte {
	start := len(dst)
	var flags byte
	if env.IsResp {
		flags |= flagIsResp
	}
	if env.More {
		flags |= flagMore
	}
	if env.Err != "" {
		flags |= flagErr
	}
	if env.TraceID != 0 || env.Parent != 0 {
		flags |= flagTrace
	}
	if env.Method != "" {
		flags |= flagMethod
	}
	if len(env.Body) != 0 {
		flags |= flagBody
	}
	dst = append(dst, wire.FrameMagic, wire.Version, flags)
	dst = wire.AppendUvarint(dst, env.ID)
	if flags&flagMethod != 0 {
		dst = wire.AppendString(dst, env.Method)
	}
	if flags&flagErr != 0 {
		dst = wire.AppendString(dst, env.Err)
	}
	if flags&flagTrace != 0 {
		dst = wire.AppendUvarint(dst, env.TraceID)
		dst = wire.AppendUvarint(dst, env.Parent)
	}
	if flags&flagBody != 0 {
		dst = wire.AppendBytes(dst, env.Body)
	}
	return wire.AppendUint32(dst, wire.Checksum(dst[start:]))
}

// decodeEnvelope decodes a binary frame payload (magic byte already
// sniffed). Strings and the body are copied out of p, which belongs
// to a recycled read buffer. Structural failures are ErrBadHeader,
// integrity failures ErrChecksum.
func decodeEnvelope(p []byte) (*envelope, error) {
	if len(p) < 8 {
		return nil, fmt.Errorf("%w: %d-byte frame", ErrBadHeader, len(p))
	}
	if p[1] != wire.Version {
		return nil, fmt.Errorf("%w: frame version %d", ErrBadHeader, p[1])
	}
	body, crc := p[:len(p)-4], binary.LittleEndian.Uint32(p[len(p)-4:])
	if wire.Checksum(body) != crc {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrChecksum, len(p))
	}
	r := wire.NewReader(body)
	r.Byte() // magic
	r.Byte() // version
	flags := r.Byte()
	env := &envelope{
		ID:     r.Uvarint(),
		IsResp: flags&flagIsResp != 0,
		More:   flags&flagMore != 0,
	}
	if flags&flagMethod != 0 {
		env.Method = r.String()
	}
	if flags&flagErr != 0 {
		env.Err = r.String()
	}
	if flags&flagTrace != 0 {
		env.TraceID = r.Uvarint()
		env.Parent = r.Uvarint()
	}
	if flags&flagBody != 0 {
		env.Body = r.Bytes()
	}
	if r.Err() != nil || r.Len() != 0 {
		return nil, fmt.Errorf("%w: malformed frame fields", ErrBadHeader)
	}
	return env, nil
}

// writeFrame sends one envelope: length prefix and payload coalesced
// into a single Write, so a frame is one syscall and a peer never
// observes a header whose body died in a second write. The scratch
// buffer is pooled; steady-state framing allocates nothing beyond the
// body the caller already built.
func writeFrame(w io.Writer, env *envelope) error {
	buf := wire.GetBuf()
	buf = append(buf, 0, 0, 0, 0)
	buf = appendEnvelope(buf, env)
	if len(buf)-4 > MaxFrame {
		wire.PutBuf(buf)
		return ErrTooLarge
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	_, err := w.Write(buf)
	wire.PutBuf(buf)
	return err
}

// readBufPool recycles the per-frame read buffers.
var readBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readFrame receives one envelope. The payload is read incrementally
// rather than allocated up front from the header's length field, so a
// hostile or corrupt header claiming a near-MaxFrame size costs only
// the bytes the peer actually sends. Binary frames verify their CRC
// trailer (ErrChecksum on mismatch); a payload starting like a gob
// stream takes the legacy decode path, keeping old peers and old fuzz
// corpora readable.
func readFrame(r io.Reader) (*envelope, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(head[:])
	if n > MaxFrame {
		return nil, ErrTooLarge
	}
	buf := readBufPool.Get().(*bytes.Buffer)
	defer readBufPool.Put(buf)
	buf.Reset()
	buf.Grow(int(min(n, 1<<20)))
	if _, err := io.CopyN(buf, r, int64(n)); err != nil {
		return nil, err
	}
	p := buf.Bytes()
	if wire.IsImage(wire.FrameMagic, p) {
		return decodeEnvelope(p)
	}
	// Legacy gob envelope. There is no checksum to verify; a decode
	// failure means the body bytes are corrupt.
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&env); err != nil {
		return nil, fmt.Errorf("%w: legacy gob frame: %v", ErrChecksum, err)
	}
	if len(env.Body) > 0 {
		// gob may alias the buffer; the envelope outlives it.
		owned := make([]byte, len(env.Body))
		copy(owned, env.Body)
		env.Body = owned
	}
	return &env, nil
}
