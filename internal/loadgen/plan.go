package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Plan generation is split from execution so op counts and parameters
// are a pure function of the profile: every op's simulated issue time,
// target station and arguments are drawn up front from per-phase
// seeded streams. The paced executor then only decides WHEN wall-clock
// ops fire, never WHAT they are — the same profile and seed always
// replay the identical op sequence, which is what the determinism
// tests pin down.

// Op is one planned operation.
type Op struct {
	ID       int           // unique across the plan
	Phase    string        // owning phase name
	Kind     string        // broadcast | resolve | search | checkout | migrate
	At       time.Duration // simulated issue time
	Station  int           // 0-based station index; 0 is the root
	Course   int           // course index into the seeded corpus
	Terms    []string      // search terms
	TopK     int
	Phrase   bool
	RefsOnly bool
	User     string // checkout user
	ObjectID string // checkout target
}

// Plan is the full scripted day.
type Plan struct {
	Ops    [][]Op // per phase, in issue order
	Phases []Phase
	Total  int
}

// searchTermPool are words the course generator actually emits (page
// bodies say "Lecture material for course-NNN, page i of N"; keywords
// are virtual/university/topicN), so planned queries hit real postings
// instead of measuring the empty-result fast path.
var searchTermPool = []string{
	"lecture", "material", "course", "page",
	"virtual", "university",
	"topic0", "topic1", "topic2", "topic3", "topic4", "topic5", "topic6",
}

// BuildPlan scripts the profile's phases into concrete ops.
func BuildPlan(p *Profile) *Plan {
	plan := &Plan{Phases: p.Phases}
	id := 0
	for pi, ph := range p.Phases {
		// One stream per phase: adding a phase never perturbs the
		// draws of the others.
		rng := rand.New(rand.NewSource(p.Seed<<16 + int64(pi)))
		count := int(math.Round(ph.Rate * ph.Duration.Seconds()))
		if count < 1 {
			count = 1
		}
		// Courses are picked Zipf-style: a few hot lectures dominate,
		// matching the paper's lecture-hour access skew.
		var zipf *rand.Zipf
		if p.Courses.Count > 1 {
			zipf = rand.NewZipf(rng, 1.3, 1, uint64(p.Courses.Count-1))
		}
		course := func() int {
			if zipf == nil {
				return 0
			}
			return int(zipf.Uint64())
		}
		// Non-root station, uniformly: leaf traffic in the tree.
		leaf := func() int {
			if p.Fabric.Stations < 2 {
				return 0
			}
			return 1 + rng.Intn(p.Fabric.Stations-1)
		}
		ops := make([]Op, 0, count)
		spacing := ph.Duration / time.Duration(count)
		for i := 0; i < count; i++ {
			op := Op{
				ID:    id,
				Phase: ph.Name,
				Kind:  ph.Op,
				// Issue times spread evenly across the window; the
				// first op fires one spacing in so a phase never
				// lands exactly on its predecessor's end tick.
				At:     ph.Start + time.Duration(i)*spacing + spacing/2,
				Course: course(),
			}
			switch ph.Op {
			case "broadcast", "migrate":
				op.Station = 0 // tree-wide ops run from the root
			case "resolve":
				op.Station = leaf()
			case "search":
				op.Station = leaf()
				op.TopK = ph.TopK
				op.Phrase = ph.Phrase
				n := 1 + rng.Intn(2)
				for t := 0; t < n; t++ {
					op.Terms = append(op.Terms, searchTermPool[rng.Intn(len(searchTermPool))])
				}
			case "checkout":
				op.Station = leaf()
				op.User = fmt.Sprintf("instructor-%d", rng.Intn(8))
				// Contend on a small pool of course documents so some
				// checkouts genuinely collide, like real co-editing.
				op.ObjectID = fmt.Sprintf("load-%03d", course())
			}
			op.RefsOnly = ph.RefsOnly
			ops = append(ops, op)
			id++
		}
		sort.SliceStable(ops, func(a, b int) bool { return ops[a].At < ops[b].At })
		plan.Ops = append(plan.Ops, ops)
		plan.Total += len(ops)
	}
	return plan
}

// OpCounts tallies planned ops per kind — the determinism tests
// compare these across independent BuildPlan calls.
func (pl *Plan) OpCounts() map[string]int {
	out := map[string]int{}
	for _, ops := range pl.Ops {
		for _, op := range ops {
			out[op.Kind]++
		}
	}
	return out
}
