package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mtree"
	"repro/internal/netsim"
	"repro/internal/schema"
	"repro/internal/workload"
)

const mbps10 = 1.25e6

func testConfig(stations, m, watermark int) Config {
	return Config{
		Stations:  stations,
		M:         m,
		UplinkBps: mbps10,
		Latency:   5 * time.Millisecond,
		Watermark: watermark,
		Mode:      netsim.Sequential,
	}
}

func smallCourse(n int) workload.CourseSpec {
	spec := workload.DefaultSpec(n)
	spec.Pages = 6
	spec.ExtraLinks = 3
	spec.ImagesPerPage = 1
	spec.VideoEvery = 3
	spec.AudioEvery = 0
	spec.MediaScaleDown = 16384
	return spec
}

// newBroadcastCluster authors a course on station 1 and mirrors the
// references everywhere.
func newBroadcastCluster(t *testing.T, stations, m, watermark int) (*Cluster, workload.CourseSpec) {
	t.Helper()
	c, err := New(testConfig(stations, m, watermark))
	if err != nil {
		t.Fatal(err)
	}
	spec := smallCourse(1)
	if _, _, err := c.AuthorCourse(spec); err != nil {
		t.Fatal(err)
	}
	if err := c.BroadcastReferences(spec.URL); err != nil {
		t.Fatal(err)
	}
	return c, spec
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(testConfig(0, 2, 0)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("0 stations: %v", err)
	}
	if _, err := New(testConfig(4, 0, 0)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("degree 0: %v", err)
	}
	c, err := New(testConfig(4, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Station(0); !errors.Is(err, ErrNoStation) {
		t.Errorf("station 0: %v", err)
	}
	if _, err := c.Station(5); !errors.Is(err, ErrNoStation) {
		t.Errorf("station 5: %v", err)
	}
}

func TestBroadcastReferencesReachesEveryStation(t *testing.T) {
	c, spec := newBroadcastCluster(t, 13, 3, 0)
	for pos := 2; pos <= c.Size(); pos++ {
		st, _ := c.Station(pos)
		obj, err := st.Store.ObjectByURL(spec.URL)
		if err != nil {
			t.Fatalf("station %d: %v", pos, err)
		}
		if obj.Form != schema.FormReference {
			t.Errorf("station %d form = %s", pos, obj.Form)
		}
		if obj.Origin != 1 {
			t.Errorf("station %d origin = %d", pos, obj.Origin)
		}
	}
	// References carry no BLOB bytes.
	usage := c.DiskUsage()
	for pos := 2; pos <= c.Size(); pos++ {
		if usage[pos-1] != 0 {
			t.Errorf("station %d holds %d bytes after reference broadcast", pos, usage[pos-1])
		}
	}
}

func TestPreBroadcastDeliversContentEverywhere(t *testing.T) {
	c, spec := newBroadcastCluster(t, 13, 3, 0)
	times, size, err := c.PreBroadcast(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatal("bundle size must be positive")
	}
	if times[0] != 0 {
		t.Errorf("root completion = %v", times[0])
	}
	for pos := 2; pos <= c.Size(); pos++ {
		if times[pos-1] <= 0 {
			t.Errorf("station %d completion = %v", pos, times[pos-1])
		}
		st, _ := c.Station(pos)
		obj, err := st.Store.ObjectByURL(spec.URL)
		if err != nil {
			t.Fatal(err)
		}
		if obj.Form != schema.FormInstance || obj.Persistent {
			t.Errorf("station %d obj = %+v", pos, obj)
		}
		if resident, _ := st.Store.ResidentBytes(spec.URL); resident == 0 {
			t.Errorf("station %d has no resident content", pos)
		}
	}
	// Deeper stations complete later (store-and-forward).
	d2, _ := mtree.Depth(2, 3)
	d13, _ := mtree.Depth(13, 3)
	if d13 <= d2 {
		t.Fatal("test setup: station 13 should be deeper")
	}
	if times[12] <= times[1] {
		t.Errorf("deeper station finished earlier: %v <= %v", times[12], times[1])
	}
}

func TestPreBroadcastTreeFasterThanChain(t *testing.T) {
	last := func(m int) time.Duration {
		c, err := New(testConfig(15, m, 0))
		if err != nil {
			t.Fatal(err)
		}
		spec := smallCourse(2)
		if _, _, err := c.AuthorCourse(spec); err != nil {
			t.Fatal(err)
		}
		if err := c.BroadcastReferences(spec.URL); err != nil {
			t.Fatal(err)
		}
		times, _, err := c.PreBroadcast(spec.URL)
		if err != nil {
			t.Fatal(err)
		}
		var max time.Duration
		for _, tt := range times {
			if tt > max {
				max = tt
			}
		}
		return max
	}
	chain := last(1)
	tree := last(3)
	star := last(14)
	if tree >= chain {
		t.Errorf("tree %v not faster than chain %v", tree, chain)
	}
	if tree >= star {
		t.Errorf("tree %v not faster than star %v", tree, star)
	}
}

func TestFetchOnDemandFromRoot(t *testing.T) {
	c, spec := newBroadcastCluster(t, 7, 2, 1)
	res, err := c.FetchOnDemand(5, spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Local {
		t.Error("first fetch reported local")
	}
	if res.ServedBy != 1 {
		t.Errorf("served by %d, want 1 (only the root holds an instance)", res.ServedBy)
	}
	if res.Latency <= 0 {
		t.Errorf("latency = %v", res.Latency)
	}
	if res.Replicated {
		t.Error("replicated below watermark")
	}
	st, _ := c.Station(5)
	if st.Fetches(spec.URL) != 1 {
		t.Errorf("fetches = %d", st.Fetches(spec.URL))
	}
}

func TestWatermarkReplication(t *testing.T) {
	c, spec := newBroadcastCluster(t, 7, 2, 1)
	// Watermark 1: the second fetch replicates.
	if _, err := c.FetchOnDemand(5, spec.URL); err != nil {
		t.Fatal(err)
	}
	res, err := c.FetchOnDemand(5, spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replicated {
		t.Fatal("second fetch should cross watermark 1")
	}
	// Third access is local.
	res, err = c.FetchOnDemand(5, spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Local || res.Latency != 0 {
		t.Errorf("post-replication fetch = %+v", res)
	}
	st, _ := c.Station(5)
	if st.Store.Blobs().Stats().PhysicalBytes == 0 {
		t.Error("no bytes resident after replication")
	}
}

func TestWatermarkNeverReplicates(t *testing.T) {
	c, spec := newBroadcastCluster(t, 7, 2, -1)
	for i := 0; i < 5; i++ {
		res, err := c.FetchOnDemand(5, spec.URL)
		if err != nil {
			t.Fatal(err)
		}
		if res.Replicated || res.Local {
			t.Fatalf("fetch %d = %+v with watermark -1", i, res)
		}
	}
	st, _ := c.Station(5)
	if st.Store.Blobs().Stats().PhysicalBytes != 0 {
		t.Error("bytes resident despite watermark -1")
	}
}

func TestFetchServedByNearestHoldingAncestor(t *testing.T) {
	c, spec := newBroadcastCluster(t, 7, 2, 0)
	// Station 2 (parent of 5) replicates first (watermark 0: first
	// fetch replicates).
	if _, err := c.FetchOnDemand(2, spec.URL); err != nil {
		t.Fatal(err)
	}
	res, err := c.FetchOnDemand(5, spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != 2 {
		t.Errorf("served by %d, want the parent station 2", res.ServedBy)
	}
}

func TestEndLectureMigratesAndFrees(t *testing.T) {
	c, spec := newBroadcastCluster(t, 7, 2, 0)
	if _, _, err := c.PreBroadcast(spec.URL); err != nil {
		t.Fatal(err)
	}
	usage := c.DiskUsage()
	if usage[3] == 0 {
		t.Fatal("expected resident bytes before EndLecture")
	}
	freed, err := c.EndLecture(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if freed <= 0 {
		t.Errorf("freed = %d", freed)
	}
	usage = c.DiskUsage()
	for pos := 2; pos <= c.Size(); pos++ {
		if usage[pos-1] != 0 {
			t.Errorf("station %d still holds %d bytes", pos, usage[pos-1])
		}
		st, _ := c.Station(pos)
		obj, err := st.Store.ObjectByURL(spec.URL)
		if err != nil {
			t.Fatal(err)
		}
		if obj.Form != schema.FormReference {
			t.Errorf("station %d form = %s", pos, obj.Form)
		}
	}
	// The instructor station keeps its persistent instance.
	if usage[0] == 0 {
		t.Error("instructor station lost its persistent instance")
	}
	root, _ := c.Station(1)
	obj, err := root.Store.ObjectByURL(spec.URL)
	if err != nil || obj.Form != schema.FormInstance {
		t.Errorf("root obj = %+v, err %v", obj, err)
	}
}

func TestPlaybackPreloadedHasNoStalls(t *testing.T) {
	c, spec := newBroadcastCluster(t, 7, 2, 0)
	if _, _, err := c.PreBroadcast(spec.URL); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Playback(5, spec.URL, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pages != 6 {
		t.Errorf("pages = %d", rep.Pages)
	}
	if rep.Stalls != 0 || rep.StallTime != 0 {
		t.Errorf("preloaded playback stalled: %+v", rep)
	}
}

func TestPlaybackRemoteStalls(t *testing.T) {
	c, spec := newBroadcastCluster(t, 7, 2, -1)
	rep, err := c.Playback(5, spec.URL, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalls == 0 || rep.StallTime == 0 {
		t.Errorf("remote playback did not stall: %+v", rep)
	}
	if rep.FetchBytes == 0 {
		t.Error("no bytes fetched during stalled playback")
	}
}

func TestFetchNoInstanceAnywhere(t *testing.T) {
	c, err := New(testConfig(3, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchOnDemand(2, "http://ghost"); !errors.Is(err, ErrNoInstance) {
		t.Errorf("err = %v", err)
	}
}

func TestWireBytesAccounting(t *testing.T) {
	c, spec := newBroadcastCluster(t, 7, 2, 0)
	before := c.WireBytes()
	_, size, err := c.PreBroadcast(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	moved := c.WireBytes() - before
	if moved != size*int64(c.Size()-1) {
		t.Errorf("wire bytes = %d, want %d (bundle to each of %d stations)", moved, size*int64(c.Size()-1), c.Size()-1)
	}
}
