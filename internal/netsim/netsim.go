// Package netsim is a discrete-event network simulator used to evaluate
// the paper's course distribution mechanism under controlled conditions.
// It substitutes for the campus LAN / late-90s Internet the authors ran
// on: stations have an uplink bandwidth and a per-transfer latency, and
// transfers are store-and-forward (a station can relay a lecture bundle
// only after fully receiving it, matching the paper's duplication of
// document instances along the m-ary tree).
//
// Two uplink scheduling modes are provided:
//
//   - Sequential: a station sends one transfer at a time at full uplink
//     rate; additional sends queue FIFO. This is the model behind the
//     paper's broadcast vector, where a parent serves its m children one
//     after another.
//   - FairShare: a station's uplink is divided equally among its active
//     flows (a fluid approximation of concurrent TCP streams), used for
//     the root-unicasts-to-everyone baseline.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Mode selects the uplink scheduling discipline.
type Mode int

// Scheduling modes.
const (
	Sequential Mode = iota
	FairShare
)

// event is one scheduled simulator callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event  { return h[0] }

// node is one simulated station's network interface.
type node struct {
	id        int
	uplinkBps float64
	latency   time.Duration

	// Sequential mode state.
	queue   []*flow
	sending bool

	// FairShare mode state.
	active map[*flow]struct{}

	bytesSent int64
	bytesRecv int64
}

// flow is one in-progress transfer.
type flow struct {
	from, to  int
	size      int64
	remaining float64 // bytes left (fluid)
	done      func(at time.Duration)
}

// Sim is the simulator. It is not safe for concurrent use; experiments
// drive it from a single goroutine, as discrete-event simulations do.
type Sim struct {
	mode   Mode
	now    time.Duration
	seq    uint64
	events eventHeap
	nodes  map[int]*node
	nextID int

	// FairShare bookkeeping.
	lastAdvance time.Duration
	flowGen     uint64 // invalidates stale completion scans

	totalBytes int64
	transfers  int64
}

// New returns an empty simulation in the given mode.
func New(mode Mode) *Sim {
	return &Sim{mode: mode, nodes: make(map[int]*node)}
}

// AddNode creates a station interface with the given uplink bandwidth
// (bytes per second) and per-transfer latency, returning its id.
// Station ids are assigned 1, 2, 3, ... in joining order, matching the
// paper's linear join sequence.
func (s *Sim) AddNode(uplinkBps float64, latency time.Duration) int {
	s.nextID++
	id := s.nextID
	s.nodes[id] = &node{id: id, uplinkBps: uplinkBps, latency: latency, active: make(map[*flow]struct{})}
	return id
}

// AddNodes creates n identical stations and returns their ids.
func (s *Sim) AddNodes(n int, uplinkBps float64, latency time.Duration) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = s.AddNode(uplinkBps, latency)
	}
	return ids
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn to run at the given absolute simulated time (clamped
// to now).
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run after a simulated delay.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Transfer moves size bytes from one station to another; done (optional)
// runs at the simulated completion time. Transfers from a station to
// itself complete immediately (local disk copy).
func (s *Sim) Transfer(from, to int, size int64, done func(at time.Duration)) error {
	nf, ok := s.nodes[from]
	if !ok {
		return fmt.Errorf("netsim: unknown sender %d", from)
	}
	if _, ok := s.nodes[to]; !ok {
		return fmt.Errorf("netsim: unknown receiver %d", to)
	}
	s.transfers++
	if from == to || size <= 0 {
		s.After(0, func() {
			if done != nil {
				done(s.now)
			}
		})
		return nil
	}
	f := &flow{from: from, to: to, size: size, remaining: float64(size), done: done}
	switch s.mode {
	case Sequential:
		nf.queue = append(nf.queue, f)
		s.pumpSequential(nf)
	case FairShare:
		// The flow becomes active after the per-transfer latency.
		s.After(nf.latency, func() {
			s.advanceFlows()
			nf.active[f] = struct{}{}
			s.rescheduleFlows()
		})
	}
	return nil
}

// pumpSequential starts the next queued transfer when the uplink is
// idle.
func (s *Sim) pumpSequential(n *node) {
	if n.sending || len(n.queue) == 0 {
		return
	}
	f := n.queue[0]
	n.queue = n.queue[1:]
	n.sending = true
	dur := n.latency
	if n.uplinkBps > 0 {
		dur += time.Duration(float64(f.size) / n.uplinkBps * float64(time.Second))
	}
	s.After(dur, func() {
		n.sending = false
		s.finishFlow(f)
		s.pumpSequential(n)
	})
}

// advanceFlows drains bytes from every active flow up to the current
// simulated time (FairShare mode).
func (s *Sim) advanceFlows() {
	dt := (s.now - s.lastAdvance).Seconds()
	s.lastAdvance = s.now
	if dt <= 0 {
		return
	}
	for _, n := range s.nodes {
		if len(n.active) == 0 {
			continue
		}
		rate := n.uplinkBps / float64(len(n.active))
		for f := range n.active {
			f.remaining -= rate * dt
		}
	}
}

// rescheduleFlows computes the next flow completion and schedules a
// completion scan for it (FairShare mode).
func (s *Sim) rescheduleFlows() {
	s.flowGen++
	gen := s.flowGen
	next := time.Duration(math.MaxInt64)
	found := false
	for _, n := range s.nodes {
		if len(n.active) == 0 || n.uplinkBps <= 0 {
			continue
		}
		rate := n.uplinkBps / float64(len(n.active))
		for f := range n.active {
			eta := s.now + time.Duration(f.remaining/rate*float64(time.Second))
			if eta < next {
				next = eta
				found = true
			}
		}
	}
	if !found {
		return
	}
	s.At(next, func() {
		if gen != s.flowGen {
			return // a newer reschedule superseded this scan
		}
		s.advanceFlows()
		s.completeDrainedFlows()
	})
}

// completeDrainedFlows finishes every flow whose bytes ran out, then
// reschedules.
func (s *Sim) completeDrainedFlows() {
	const epsilon = 1e-6
	for _, n := range s.nodes {
		for f := range n.active {
			if f.remaining <= epsilon*float64(f.size)+1e-9 {
				delete(n.active, f)
				s.finishFlow(f)
			}
		}
	}
	s.rescheduleFlows()
}

// finishFlow accounts for and reports one completed transfer.
func (s *Sim) finishFlow(f *flow) {
	s.nodes[f.from].bytesSent += f.size
	s.nodes[f.to].bytesRecv += f.size
	s.totalBytes += f.size
	if f.done != nil {
		f.done(s.now)
	}
}

// Run processes events until none remain, returning the final simulated
// time.
func (s *Sim) Run() time.Duration {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// RunUntil processes events up to and including the given time; later
// events stay queued.
func (s *Sim) RunUntil(t time.Duration) time.Duration {
	for len(s.events) > 0 && s.events.Peek().at <= t {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fn()
	}
	if s.now < t {
		s.now = t
	}
	return s.now
}

// Stats describe the traffic observed by the simulation so far.
type Stats struct {
	TotalBytes int64
	Transfers  int64
}

// Stats returns cumulative traffic counters.
func (s *Sim) Stats() Stats {
	return Stats{TotalBytes: s.totalBytes, Transfers: s.transfers}
}

// BytesSent returns the bytes a station has finished sending.
func (s *Sim) BytesSent(id int) int64 {
	if n, ok := s.nodes[id]; ok {
		return n.bytesSent
	}
	return 0
}

// BytesReceived returns the bytes a station has finished receiving.
func (s *Sim) BytesReceived(id int) int64 {
	if n, ok := s.nodes[id]; ok {
		return n.bytesRecv
	}
	return 0
}
