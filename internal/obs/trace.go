package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceContext is what rides the transport envelope: which trace this
// request belongs to, and the span of the hop that sent it (so the
// receiving hop's span can name its parent). A zero TraceID means the
// request is untraced and no span is recorded for it.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// idSeq is a process-wide Weyl sequence seeded randomly once: IDs are
// unique within a process by construction and collide across stations
// only with ordinary 64-bit-random probability, without paying a
// crypto/rand read per span on the RPC hot path.
var idSeq atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		idSeq.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idSeq.Store(uint64(time.Now().UnixNano()))
	}
}

// NewTraceID returns a non-zero identifier usable as a TraceID or
// SpanID.
func NewTraceID() uint64 {
	// splitmix64 finalizer over a Weyl step: well-mixed, never repeats
	// within a process.
	x := idSeq.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Span is one hop's record of work done for a trace: which station
// served which method, when, for how long, how many wire bytes moved,
// and anything noteworthy that happened on the way (a grafted dead
// child, a watermark pull). Spans are assembled fabric-wide by the
// Trace RPC and stitched into a hop tree by Parent links.
type Span struct {
	TraceID  uint64
	SpanID   uint64
	Parent   uint64 // SpanID of the calling hop; 0 at the trace root
	Method   string
	Station  int // tree position of the station that served the hop
	Start    time.Time
	Duration time.Duration
	Bytes    int64 // request + response body bytes for the hop
	Err      string
	Notes    []string
}

// SpanRing is a bounded, concurrent-safe ring of completed spans:
// recent traces stay inspectable, memory stays fixed, old spans fall
// off the back. A small reservoir biases retention toward the spans
// worth keeping: pure FIFO eviction loses exactly the interesting
// evidence — one slow or failed hop drowned by thousands of fast ones
// — so errors and the slowest spans seen are pinned past eviction.
type SpanRing struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	full    bool
	notable []Span // top-K by (has-error, duration); survives FIFO
}

// DefaultSpanCap is the per-station span ring size: enough for several
// full broadcasts across a large fabric.
const DefaultSpanCap = 4096

// NewSpanRing builds a ring holding up to capacity spans (<= 0 selects
// DefaultSpanCap).
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	notableCap := capacity / 64
	if notableCap < 16 {
		notableCap = 16
	}
	return &SpanRing{
		buf:     make([]Span, capacity),
		notable: make([]Span, 0, notableCap),
	}
}

// notableFloor is the duration above which a successful span competes
// for a reservoir slot. Fabric RPCs complete in well under a
// millisecond on a healthy station, so anything past the floor is
// evidence worth keeping; failed spans qualify at any duration.
const notableFloor = 10 * time.Millisecond

// outranks reports whether a deserves a reservoir slot over b: errors
// before successes, then the longer duration.
func outranks(a, b *Span) bool {
	if (a.Err != "") != (b.Err != "") {
		return a.Err != ""
	}
	return a.Duration > b.Duration
}

// Add records a completed span, evicting the oldest when full. Slow
// and failed spans also compete for a reservoir slot, displacing the
// weakest holder, so the one interesting span stays inspectable
// through any flood of fast ones; routine spans ride the FIFO only.
func (r *SpanRing) Add(sp Span) {
	r.mu.Lock()
	r.buf[r.next] = sp
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	if sp.Err != "" || sp.Duration >= notableFloor {
		if len(r.notable) < cap(r.notable) {
			r.notable = append(r.notable, sp)
		} else if len(r.notable) > 0 {
			weakest := 0
			for i := range r.notable {
				if outranks(&r.notable[weakest], &r.notable[i]) {
					weakest = i
				}
			}
			if outranks(&sp, &r.notable[weakest]) {
				r.notable[weakest] = sp
			}
		}
	}
	r.mu.Unlock()
}

// Snapshot returns every retained span — ring plus reservoir, deduped
// by span ID — oldest first.
func (r *SpanRing) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	if len(r.notable) > 0 {
		seen := make(map[uint64]bool, len(out))
		for i := range out {
			seen[out[i].SpanID] = true
		}
		merged := false
		for _, sp := range r.notable {
			if !seen[sp.SpanID] {
				out = append(out, sp)
				merged = true
			}
		}
		if merged {
			SortSpans(out)
		}
	}
	return out
}

// ForTrace returns the retained spans belonging to one trace, oldest
// first.
func (r *SpanRing) ForTrace(id uint64) []Span {
	if id == 0 {
		return nil
	}
	var out []Span
	for _, sp := range r.Snapshot() {
		if sp.TraceID == id {
			out = append(out, sp)
		}
	}
	return out
}

// Observer is a station's observability state: the per-method latency
// histograms, the span ring and the event journal, plus the station's
// current tree position (stamped onto spans and events as they
// complete). A nil *Observer is valid everywhere and records nothing.
type Observer struct {
	Metrics Metrics
	ring    *SpanRing
	events  atomic.Pointer[EventRing]
	pos     atomic.Int64
}

// NewObserver builds an observer with a span ring of the given
// capacity (<= 0 selects DefaultSpanCap) and an event journal of
// DefaultEventCap.
func NewObserver(spanCap int) *Observer {
	o := &Observer{ring: NewSpanRing(spanCap)}
	o.events.Store(NewEventRing(0))
	return o
}

// DisableEventJournal detaches the event journal: subsequent Emit
// calls record nothing. Race-safe against concurrent emitters — the
// ops/bench knob for measuring the journal's cost.
func (o *Observer) DisableEventJournal() {
	if o != nil {
		o.events.Store(nil)
	}
}

// Emit stamps the event with this station's position, admits it to
// the journal, and returns the stamped (Seq-assigned) copy. Nil-safe;
// with no observer or a disabled journal the event passes through
// unstamped.
func (o *Observer) Emit(e Event) Event {
	if o == nil {
		return e
	}
	e.Station = o.Pos()
	if r := o.events.Load(); r != nil {
		e = r.Add(e)
	}
	return e
}

// Events returns this station's retained journal events passing the
// filter, in sequence order.
func (o *Observer) Events(f EventFilter) []Event {
	if o == nil {
		return nil
	}
	if r := o.events.Load(); r != nil {
		return r.Select(f)
	}
	return nil
}

// EventSeq returns the journal's latest sequence number — the cursor
// a poller resumes from.
func (o *Observer) EventSeq() uint64 {
	if o == nil {
		return 0
	}
	if r := o.events.Load(); r != nil {
		return r.LastSeq()
	}
	return 0
}

// EventCounts returns total journal admissions per category.
func (o *Observer) EventCounts() map[string]int64 {
	if o == nil {
		return nil
	}
	if r := o.events.Load(); r != nil {
		return r.CategoryCounts()
	}
	return nil
}

// SetPos records the station's tree position for span attribution.
func (o *Observer) SetPos(pos int) {
	if o != nil {
		o.pos.Store(int64(pos))
	}
}

// Pos returns the last recorded tree position.
func (o *Observer) Pos() int {
	if o == nil {
		return 0
	}
	return int(o.pos.Load())
}

// Observe records one method call in the latency histograms.
func (o *Observer) Observe(method string, d time.Duration, failed bool) {
	if o != nil {
		o.Metrics.Observe(method, d, failed)
	}
}

// ForTrace returns this station's retained spans for a trace.
func (o *Observer) ForTrace(id uint64) []Span {
	if o == nil || o.ring == nil {
		return nil
	}
	return o.ring.ForTrace(id)
}

// RecentSpans returns up to n most recent completed spans, newest
// first.
func (o *Observer) RecentSpans(n int) []Span {
	if o == nil || o.ring == nil {
		return nil
	}
	all := o.ring.Snapshot()
	for i, j := 0, len(all)-1; i < j; i, j = i+1, j-1 {
		all[i], all[j] = all[j], all[i]
	}
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// Begin opens a span for a traced request arriving with the given
// context. It returns nil — which every ActiveSpan method tolerates —
// when the request is untraced or the observer absent, so call sites
// need no conditionals.
func (o *Observer) Begin(parent TraceContext, method string) *ActiveSpan {
	if o == nil || parent.TraceID == 0 {
		return nil
	}
	return &ActiveSpan{
		o: o,
		sp: Span{
			TraceID: parent.TraceID,
			SpanID:  NewTraceID(),
			Parent:  parent.SpanID,
			Method:  method,
			Start:   time.Now(),
		},
	}
}

// BeginLocal opens a root span for an operation originating at this
// station (no incoming trace context): a fresh TraceID is minted.
func (o *Observer) BeginLocal(method string) *ActiveSpan {
	if o == nil {
		return nil
	}
	return o.Begin(TraceContext{TraceID: NewTraceID()}, method)
}

// ActiveSpan is a span under construction. All methods are safe on a
// nil receiver and for concurrent use (tree fan-out annotates from
// per-child goroutines).
type ActiveSpan struct {
	o  *Observer
	mu sync.Mutex
	sp Span
}

// Context returns the trace context downstream hops should carry: the
// span's trace with this span as parent. Zero on a nil span, which
// keeps downstream calls untraced.
func (a *ActiveSpan) Context() TraceContext {
	if a == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: a.sp.TraceID, SpanID: a.sp.SpanID}
}

// Annotate appends a formatted note to the span.
func (a *ActiveSpan) Annotate(format string, args ...any) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.sp.Notes = append(a.sp.Notes, fmt.Sprintf(format, args...))
	a.mu.Unlock()
}

// AddBytes accounts wire bytes moved for this hop.
func (a *ActiveSpan) AddBytes(n int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.sp.Bytes += n
	a.mu.Unlock()
}

// End completes the span and commits it to the observer's ring. The
// station position is read at end time, after join/rejoin has settled
// it. End is idempotent-enough for its single-caller use; call once.
func (a *ActiveSpan) End(err error) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.sp.Duration = time.Since(a.sp.Start)
	a.sp.Station = a.o.Pos()
	if err != nil {
		a.sp.Err = err.Error()
	}
	sp := a.sp
	a.mu.Unlock()
	if a.o.ring != nil {
		a.o.ring.Add(sp)
	}
}

// SortSpans orders spans for rendering: by start time, then span ID
// for determinism between equal clocks.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// FormatTraceID renders a trace or span ID the way the CLI accepts it
// back: zero-padded hex.
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }
