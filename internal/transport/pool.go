package transport

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// Pool defaults.
const (
	// DefaultPoolSize bounds the connections (and therefore the
	// concurrent calls) a pool opens to one server.
	DefaultPoolSize = 4
	// DefaultCallTimeout is the per-call deadline a pool applies when
	// the caller does not choose one.
	DefaultCallTimeout = 30 * time.Second

	dialAttempts = 3
	dialBackoff  = 10 * time.Millisecond

	// DefaultFailThreshold and DefaultFailCooldown configure the
	// dead-peer breaker: after this many consecutive dial failures
	// (each already a full retry-with-backoff cycle) the pool marks
	// the peer down, evicts its idle connections, and fails calls
	// fast with ErrPeerDown until the cooldown elapses — so a tree
	// fan-out hitting a dead station pays the dial cost once, not on
	// every branch.
	DefaultFailThreshold = 2
	DefaultFailCooldown  = 250 * time.Millisecond
)

// Pool is a bounded set of client connections to one server address
// with lazy dialing, reconnect-with-backoff and a per-call timeout.
// A single Client serializes nothing (calls are correlated), but one
// TCP stream still carries every frame; a pool lets bulk fan-out —
// the fabric pushing bundles to m children at once — use parallel
// streams while capping the sockets held per peer. Call is safe for
// concurrent use; calls beyond the pool size queue for a free slot.
type Pool struct {
	addr    string
	timeout time.Duration
	slots   chan struct{}

	mu        sync.Mutex
	idle      []*Client
	closed    bool
	dialFails int       // consecutive failed dial cycles
	downUntil time.Time // breaker open until this instant
	threshold int
	cooldown  time.Duration
}

// NewPool builds a pool for one server address. size <= 0 selects
// DefaultPoolSize; timeout <= 0 selects DefaultCallTimeout. No
// connection is opened until the first Call.
func NewPool(addr string, size int, timeout time.Duration) *Pool {
	if size <= 0 {
		size = DefaultPoolSize
	}
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	return &Pool{
		addr:      addr,
		timeout:   timeout,
		slots:     make(chan struct{}, size),
		threshold: DefaultFailThreshold,
		cooldown:  DefaultFailCooldown,
	}
}

// Addr returns the server address the pool dials.
func (p *Pool) Addr() string { return p.addr }

// SetFailFast tunes the dead-peer breaker: threshold consecutive dial
// failures open it for the cooldown. A threshold <= 0 disables the
// breaker entirely (every call dials a dead peer at full cost).
func (p *Pool) SetFailFast(threshold int, cooldown time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.threshold = threshold
	p.cooldown = cooldown
	p.downUntil = time.Time{}
	p.dialFails = 0
}

// Down reports whether the breaker is currently open (the peer was
// recently undialable and calls are failing fast).
func (p *Pool) Down() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Now().Before(p.downUntil)
}

// Call invokes a method through a pooled connection, dialing lazily
// when no idle connection exists. A connection that suffered a
// transport-level failure (closed, timed out, write error) is
// discarded; if that connection came from the idle set — it may simply
// have gone stale while parked, e.g. across a peer restart — the call
// retries once on a freshly dialed connection. Timed-out calls are
// never retried (the server may still be executing them). Server-side
// errors travel back as ordinary errors and keep the connection
// pooled.
//
// The stale-idle retry is deliberately at-least-once: a parked
// connection that dies mid-call cannot prove whether the server saw
// the request, and refusing to retry would strand every first call
// across a peer restart. Callers whose methods are not idempotent
// must dedupe server-side — the fabric's install/migrate handlers
// are idempotent by construction for exactly this reason.
func (p *Pool) Call(method string, req, resp any) error {
	return p.CallTrace(method, req, resp, obs.TraceContext{}, p.timeout)
}

// CallWithTimeout is Call with a per-call deadline overriding the
// pool's default — liveness probes want a much shorter timeout than
// the bundle transfers sharing the same peer pool.
func (p *Pool) CallWithTimeout(method string, req, resp any, d time.Duration) error {
	return p.CallTrace(method, req, resp, obs.TraceContext{}, d)
}

// CallTrace is CallWithTimeout carrying a trace context downstream
// (see Client.CallTrace); the fabric's tree RPCs use it so one TraceID
// stitches a whole traversal. d <= 0 selects the pool's default
// timeout.
func (p *Pool) CallTrace(method string, req, resp any, tc obs.TraceContext, d time.Duration) error {
	if d <= 0 {
		d = p.timeout
	}
	p.slots <- struct{}{}
	defer func() { <-p.slots }()
	c, fromIdle, err := p.get()
	if err != nil {
		return err
	}
	err, reusable := c.do(method, req, resp, d, tc)
	if reusable {
		p.put(c)
		return err
	}
	c.Close()
	if !fromIdle || errors.Is(err, ErrTimeout) {
		return err
	}
	fresh, dialErr := p.dial()
	if dialErr != nil {
		return dialErr
	}
	err, reusable = fresh.do(method, req, resp, d, tc)
	if reusable {
		p.put(fresh)
	} else {
		fresh.Close()
	}
	return err
}

// CallStream invokes a streamed-response method (the server handler
// returned an io.Reader) through a pooled connection, writing the
// chunks to w and returning the byte count. The pool's timeout bounds
// each frame's arrival, not the whole transfer, so a multi-gigabyte
// catch-up stream survives as long as bytes keep flowing. A stale idle
// connection is retried once, but only while nothing has been written
// to w yet — a partial stream is never silently restarted.
func (p *Pool) CallStream(method string, req any, w io.Writer) (int64, error) {
	p.slots <- struct{}{}
	defer func() { <-p.slots }()
	c, fromIdle, err := p.get()
	if err != nil {
		return 0, err
	}
	n, err, reusable := c.doStream(method, req, w, p.timeout)
	if reusable {
		p.put(c)
		return n, err
	}
	c.Close()
	if !fromIdle || n > 0 || errors.Is(err, ErrTimeout) {
		return n, err
	}
	fresh, dialErr := p.dial()
	if dialErr != nil {
		return n, dialErr
	}
	n, err, reusable = fresh.doStream(method, req, w, p.timeout)
	if reusable {
		p.put(fresh)
	} else {
		fresh.Close()
	}
	return n, err
}

// get pops an idle connection (reporting that it did) or dials a fresh
// one. While the breaker is open it fails fast with ErrPeerDown
// instead of dialing.
func (p *Pool) get() (*Client, bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, ErrClosed
	}
	if time.Now().Before(p.downUntil) {
		p.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %s", ErrPeerDown, p.addr)
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, true, nil
	}
	p.mu.Unlock()
	c, err := p.dial()
	return c, false, err
}

// dial opens a fresh connection, retrying a cold peer a few times with
// exponential backoff (a station that is restarting comes back within
// the window). A fully failed cycle counts against the breaker; enough
// consecutive failures open it and evict any idle connections, which
// are stale by the same evidence.
func (p *Pool) dial() (*Client, error) {
	backoff := dialBackoff
	var lastErr error
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 4
		}
		c, err := Dial(p.addr)
		if err == nil {
			p.mu.Lock()
			p.dialFails = 0
			p.downUntil = time.Time{}
			p.mu.Unlock()
			return c, nil
		}
		lastErr = err
	}
	p.mu.Lock()
	p.dialFails++
	var evict []*Client
	if p.threshold > 0 && p.dialFails >= p.threshold {
		p.downUntil = time.Now().Add(p.cooldown)
		evict = p.idle
		p.idle = nil
	}
	p.mu.Unlock()
	for _, c := range evict {
		c.Close()
	}
	return nil, lastErr
}

func (p *Pool) put(c *Client) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
}

// Close discards every idle connection; subsequent calls fail with
// ErrClosed. Connections busy in a call close when their call returns.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}
