package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/schema"
)

func TestMarkDownValidation(t *testing.T) {
	c, _ := newBroadcastCluster(t, 7, 2, 0)
	if err := c.MarkDown(1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("root failure: %v", err)
	}
	if err := c.MarkDown(99); !errors.Is(err, ErrNoStation) {
		t.Errorf("unknown station: %v", err)
	}
	if err := c.MarkDown(3); err != nil {
		t.Fatal(err)
	}
	if !c.Down(3) {
		t.Error("station 3 not marked down")
	}
	if err := c.MarkUp(3); err != nil {
		t.Fatal(err)
	}
	if c.Down(3) {
		t.Error("station 3 still down after MarkUp")
	}
}

func TestLiveChildrenGraftsAroundFailure(t *testing.T) {
	c, _ := newBroadcastCluster(t, 7, 2, 0)
	// Under m=2: children of 1 are 2 and 3; children of 3 are 6 and 7.
	if err := c.MarkDown(3); err != nil {
		t.Fatal(err)
	}
	kids, err := c.liveChildren(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 6, 7}
	if len(kids) != len(want) {
		t.Fatalf("live children = %v, want %v", kids, want)
	}
	for i := range want {
		if kids[i] != want[i] {
			t.Fatalf("live children = %v, want %v", kids, want)
		}
	}
}

func TestResilientBroadcastSkipsFailedStation(t *testing.T) {
	c, spec := newBroadcastCluster(t, 7, 2, 0)
	if err := c.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	times, _, err := c.PreBroadcastResilient(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Failed station receives nothing.
	st2, _ := c.Station(2)
	if resident, _ := st2.Store.ResidentBytes(spec.URL); resident != 0 {
		t.Errorf("failed station holds %d bytes", resident)
	}
	// Its children (4 and 5 under m=2) still receive, grafted onto the root.
	for _, pos := range []int{3, 4, 5, 6, 7} {
		st, _ := c.Station(pos)
		obj, err := st.Store.ObjectByURL(spec.URL)
		if err != nil {
			t.Fatalf("station %d: %v", pos, err)
		}
		if obj.Form != schema.FormInstance {
			t.Errorf("station %d form = %s", pos, obj.Form)
		}
		if times[pos-1] <= 0 {
			t.Errorf("station %d completion = %v", pos, times[pos-1])
		}
	}
}

func TestResilientFetchSkipsDeadHolder(t *testing.T) {
	c, spec := newBroadcastCluster(t, 7, 2, 0)
	// Station 2 holds a replica, then fails; station 5 (child of 2)
	// must be served by the root instead.
	if _, err := c.FetchOnDemand(2, spec.URL); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	res, err := c.FetchOnDemandResilient(5, spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != 1 {
		t.Errorf("served by %d, want the root", res.ServedBy)
	}
	// A down requester is refused outright.
	if _, err := c.FetchOnDemandResilient(2, spec.URL); !errors.Is(err, ErrNoStation) {
		t.Errorf("down requester: %v", err)
	}
}

func TestChunkedBroadcastDeliversEverywhere(t *testing.T) {
	c, spec := newBroadcastCluster(t, 13, 3, 0)
	times, size, err := c.PreBroadcastChunked(spec.URL, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatal("empty bundle")
	}
	for pos := 2; pos <= c.Size(); pos++ {
		st, _ := c.Station(pos)
		obj, err := st.Store.ObjectByURL(spec.URL)
		if err != nil {
			t.Fatalf("station %d: %v", pos, err)
		}
		if obj.Form != schema.FormInstance {
			t.Errorf("station %d form = %s", pos, obj.Form)
		}
		if times[pos-1] <= 0 {
			t.Errorf("station %d completion = %v", pos, times[pos-1])
		}
		if resident, _ := st.Store.ResidentBytes(spec.URL); resident == 0 {
			t.Errorf("station %d holds nothing", pos)
		}
	}
}

func TestChunkedFasterThanStoreAndForwardOnDeepTree(t *testing.T) {
	run := func(chunked bool) time.Duration {
		// Zero latency isolates the pipelining effect: chunking pays one
		// extra latency per chunk, which would otherwise mask the win on
		// this small test bundle.
		cfg := testConfig(15, 2, 0)
		cfg.Latency = 0
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec := smallCourse(3)
		if _, _, err := c.AuthorCourse(spec); err != nil {
			t.Fatal(err)
		}
		if err := c.BroadcastReferences(spec.URL); err != nil {
			t.Fatal(err)
		}
		var times []time.Duration
		if chunked {
			times, _, err = c.PreBroadcastChunked(spec.URL, 1024)
		} else {
			times, _, err = c.PreBroadcast(spec.URL)
		}
		if err != nil {
			t.Fatal(err)
		}
		var max time.Duration
		for _, tt := range times {
			if tt > max {
				max = tt
			}
		}
		return max
	}
	sf := run(false)
	ch := run(true)
	if ch >= sf {
		t.Errorf("chunked %v not faster than store-and-forward %v", ch, sf)
	}
}

func TestChunkedRejectsBadChunkSize(t *testing.T) {
	c, spec := newBroadcastCluster(t, 3, 2, 0)
	if _, _, err := c.PreBroadcastChunked(spec.URL, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestChunkedRoutesAroundFailure(t *testing.T) {
	c, spec := newBroadcastCluster(t, 7, 2, 0)
	if err := c.MarkDown(3); err != nil {
		t.Fatal(err)
	}
	times, _, err := c.PreBroadcastChunked(spec.URL, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{2, 4, 5, 6, 7} {
		if times[pos-1] <= 0 {
			t.Errorf("station %d completion = %v", pos, times[pos-1])
		}
	}
	if times[2] != 0 {
		t.Errorf("failed station completed at %v", times[2])
	}
}
