package analysis

import (
	"go/ast"
	"go/types"
)

// RouteAround guards the tree-repair invariant (PR 10): fanOutTree's
// routeAround callback decides which failed child calls are repaired
// by grafting the child's subtree onto the caller. That decision is
// only safe when it is grounded in transport.Unreachable — grafting
// on an application error double-delivers to a subtree whose relay
// already ran, and refusing to classify unreachability at all turns
// every dead interior station into a lost subtree. Every classifier
// handed to fanOutTree must therefore consult transport.Unreachable:
// directly, through a named predicate that does (canRouteAround), or
// by passing through a parameter whose own call sites were checked.
// A deliberately different policy takes a reasoned
// //lint:ignore routearound <why>.
var RouteAround = &Analyzer{
	Name: "routearound",
	Doc:  "fanOutTree route-around classifiers must consult transport.Unreachable",
	Run:  runRouteAround,
}

func runRouteAround(p *Pass) {
	// Same-package function bodies, for verifying named classifiers.
	bodies := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					bodies[fn] = fd
				}
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeName(call) != "fanOutTree" {
				return true
			}
			arg := classifierArg(p, call)
			if arg == nil {
				return true
			}
			if !classifiesUnreachable(p, bodies, arg) {
				p.Reportf(arg.Pos(), "fanOutTree route-around classifier never consults transport.Unreachable; grafting on other errors re-delivers to subtrees whose relay already ran")
			}
			return true
		})
	}
}

// calleeName extracts the called function's bare name.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// classifierArg finds the call's func(error) bool argument — the
// route-around classifier, whatever its position.
func classifierArg(p *Pass, call *ast.CallExpr) ast.Expr {
	for _, arg := range call.Args {
		tv, ok := p.Info.Types[arg]
		if !ok {
			continue
		}
		sig, ok := tv.Type.(*types.Signature)
		if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
			continue
		}
		if !types.Identical(sig.Params().At(0).Type(), types.Universe.Lookup("error").Type()) {
			continue
		}
		res, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
		if ok && res.Kind() == types.Bool {
			return arg
		}
	}
	return nil
}

// classifiesUnreachable reports whether the classifier expression is
// grounded in transport.Unreachable.
func classifiesUnreachable(p *Pass, bodies map[*types.Func]*ast.FuncDecl, arg ast.Expr) bool {
	if lit, ok := arg.(*ast.FuncLit); ok {
		return referencesUnreachable(p, lit.Body)
	}
	var obj types.Object
	switch a := arg.(type) {
	case *ast.Ident:
		obj = p.ObjectOf(a)
	case *ast.SelectorExpr:
		obj = p.ObjectOf(a.Sel)
	}
	switch o := obj.(type) {
	case *types.Var:
		// A pass-through: the classifier was chosen by this function's
		// caller, and that call site carries its own check.
		return true
	case *types.Func:
		if isUnreachableFunc(o) {
			return true
		}
		if fd := bodies[o]; fd != nil {
			return referencesUnreachable(p, fd.Body)
		}
	}
	return false
}

// referencesUnreachable reports whether the body mentions
// transport.Unreachable anywhere.
func referencesUnreachable(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := p.ObjectOf(sel.Sel).(*types.Func); ok && isUnreachableFunc(fn) {
			found = true
		}
		return !found
	})
	return found
}

// isUnreachableFunc recognizes transport.Unreachable itself.
func isUnreachableFunc(fn *types.Func) bool {
	return fn.Name() == "Unreachable" && fn.Pkg() != nil && fn.Pkg().Name() == "transport"
}
