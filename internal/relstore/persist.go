package relstore

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/wire"
)

func init() {
	gob.Register(time.Time{})
}

// snapshot is the gob-serializable image of the whole database.
type snapshot struct {
	Schemas []Schema
	Rows    map[string][]Row // table name -> rows
	Indexed map[string][]string
	Ordered map[string][]string
}

// Snapshot writes a point-in-time image of the database as a
// CRC-sealed binary image. The capture holds every table's read lock,
// so it is consistent across tables; the encode itself runs after the
// locks are released, which is safe because stored rows are immutable
// — every mutation installs a fresh Row map (see Tx.Update) rather
// than editing one in place.
func (db *DB) Snapshot(w io.Writer) error {
	db.metaMu.RLock()
	names := db.lockAllTablesShared()
	snap := db.captureLocked()
	db.unlockAllTablesShared(names)
	db.metaMu.RUnlock()
	img := ckptImage{Snap: snap}
	payload, err := appendCkptImage(wire.GetBuf(), &img)
	if err != nil {
		return err
	}
	sealed := wire.SealImage(wire.SnapMagic, payload)
	wire.PutBuf(payload)
	_, err = w.Write(sealed)
	return err
}

// lockAllTablesShared read-locks every table in sorted order and
// returns the locked names. Caller holds metaMu in either mode.
func (db *DB) lockAllTablesShared() []string {
	names := db.tableNamesLocked()
	for _, n := range names {
		db.tables[n].mu.RLock()
	}
	return names
}

// unlockAllTablesShared releases the locks lockAllTablesShared took.
func (db *DB) unlockAllTablesShared(names []string) {
	for i := len(names) - 1; i >= 0; i-- {
		db.tables[names[i]].mu.RUnlock()
	}
}

// captureLocked builds the snapshot value. Caller holds metaMu (in
// either mode) and at least a read lock on every table. The returned
// snapshot references the live Row maps, which are never mutated in
// place, so it stays valid after the locks are dropped.
func (db *DB) captureLocked() snapshot {
	snap := snapshot{
		Rows:    make(map[string][]Row, len(db.tables)),
		Indexed: make(map[string][]string, len(db.tables)),
		Ordered: make(map[string][]string, len(db.tables)),
	}
	for _, name := range db.tableNamesLocked() {
		t := db.tables[name]
		snap.Schemas = append(snap.Schemas, t.schema)
		rows := make([]Row, 0, len(t.rows))
		for _, pk := range t.sortedKeysLocked() {
			rows = append(rows, t.rows[pk])
		}
		snap.Rows[name] = rows
		for col := range t.indexes {
			snap.Indexed[name] = append(snap.Indexed[name], col)
		}
		for col := range t.ordered {
			snap.Ordered[name] = append(snap.Ordered[name], col)
		}
	}
	return snap
}

// Restore replaces the database contents with a snapshot previously
// written by Snapshot — the binary image or, one last time, the
// legacy gob encoding (a gob stream's first byte can never be
// SnapMagic, so one byte decides).
func (db *DB) Restore(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("relstore: reading snapshot: %w", err)
	}
	if wire.IsImage(wire.SnapMagic, data) {
		payload, err := wire.OpenImage(wire.SnapMagic, data)
		if err != nil {
			return fmt.Errorf("relstore: decoding snapshot: %w", err)
		}
		img, err := decodeCkptImage(payload)
		if err != nil {
			return fmt.Errorf("relstore: decoding snapshot: %w", err)
		}
		return db.installSnapshot(&img.Snap)
	}
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("relstore: decoding snapshot: %w", err)
	}
	return db.installSnapshot(&snap)
}

// installSnapshot rebuilds the table set from a decoded snapshot and
// swaps it in.
func (db *DB) installSnapshot(snap *snapshot) error {
	fresh := NewDB()
	for _, s := range snap.Schemas {
		if err := fresh.CreateTable(s); err != nil {
			return err
		}
	}
	// Rows are loaded with foreign-key checks deferred: tables restore in
	// name order, which need not be dependency order. The sorted-key
	// caches rebuild lazily on first scan.
	for _, s := range snap.Schemas {
		t := fresh.tables[s.Name]
		for _, row := range snap.Rows[s.Name] {
			norm, err := t.normalizeRow(row, true)
			if err != nil {
				return fmt.Errorf("relstore: snapshot row in %s: %w", s.Name, err)
			}
			if _, err := fresh.insertRawLocked(t, norm); err != nil {
				return fmt.Errorf("relstore: snapshot row in %s: %w", s.Name, err)
			}
		}
		for _, col := range snap.Indexed[s.Name] {
			if err := fresh.CreateIndex(s.Name, col); err != nil {
				return err
			}
		}
		for _, col := range snap.Ordered[s.Name] {
			if err := fresh.CreateOrderedIndex(s.Name, col); err != nil {
				return err
			}
		}
	}
	if err := fresh.verifyAllFKs(); err != nil {
		return fmt.Errorf("relstore: snapshot violates referential integrity: %w", err)
	}
	db.metaMu.Lock()
	db.tables = fresh.tables
	db.metaMu.Unlock()
	return nil
}

func (db *DB) tableNamesLocked() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// WAL is a write-ahead log of committed transactions. Each committed
// transaction appends one CRC-framed binary record (see walbin.go)
// carrying its redo entries and a commit marker; Replay applies only
// fully committed transactions, so a crash mid-append never replays a
// torn one. Logs written by the pre-binary format — JSON lines — are
// still replayed through a per-record sniff, so one file may hold a
// legacy prefix with binary records appended after an upgrade.
type WAL struct {
	mu    sync.Mutex
	w     *bufio.Writer
	f     *os.File
	seq   uint64
	bytes int64 // bytes appended to the current tail file
}

type walLine struct {
	Seq    uint64   `json:"seq"`
	Commit bool     `json:"commit,omitempty"`
	Recs   []walRec `json:"recs,omitempty"`
}

// OpenWAL attaches a write-ahead log file to the database. Subsequent
// committed transactions append to it. Attaching over an
// already-attached log fails with ErrWALOpen — silently replacing it
// would leak the old handle with its unflushed buffer and split the
// committed history across two files. The sequence counter resumes
// from the high-water mark of the latest replay, so a restarted
// station appends strictly increasing Seq values instead of starting
// over at 1.
func (db *DB) OpenWAL(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("relstore: opening WAL: %w", err)
	}
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	if db.wal != nil {
		f.Close()
		return fmt.Errorf("%w: %s", ErrWALOpen, path)
	}
	wal := &WAL{f: f, w: bufio.NewWriter(f), seq: db.lastSeq}
	if fi, err := f.Stat(); err == nil {
		wal.bytes = fi.Size()
	}
	db.wal = wal
	return nil
}

// CloseWAL flushes and detaches the log, recording the sequence
// high-water so a later OpenWAL continues the numbering.
func (db *DB) CloseWAL() error {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	wal := db.wal
	if wal == nil {
		return nil
	}
	db.wal = nil
	wal.mu.Lock()
	defer wal.mu.Unlock()
	if wal.seq > db.lastSeq {
		db.lastSeq = wal.seq
	}
	if err := wal.w.Flush(); err != nil {
		wal.f.Close()
		return err
	}
	return wal.f.Close()
}

// WALTailBytes reports how many bytes the attached log's current tail
// file holds — the size a background checkpointer watches to bound
// restart cost.
func (db *DB) WALTailBytes() int64 {
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	if db.wal == nil {
		return 0
	}
	db.wal.mu.Lock()
	defer db.wal.mu.Unlock()
	return db.wal.bytes
}

// LastSeq returns the highest WAL sequence number the database has
// seen, whether appended through the attached log or observed during
// replay.
func (db *DB) LastSeq() uint64 {
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	if db.wal != nil {
		db.wal.mu.Lock()
		defer db.wal.mu.Unlock()
		if db.wal.seq > db.lastSeq {
			return db.wal.seq
		}
	}
	return db.lastSeq
}

// noteReplaySeq folds a replay's high-water sequence into the counter
// the next OpenWAL resumes from.
func (db *DB) noteReplaySeq(seq uint64) {
	db.metaMu.Lock()
	if seq > db.lastSeq {
		db.lastSeq = seq
	}
	db.metaMu.Unlock()
}

// walEncodeValue wraps values whose Go type JSON would erase ([]byte,
// time.Time) in tagged one-key objects so replay can restore them.
func walEncodeValue(v any) any {
	switch x := v.(type) {
	case []byte:
		return map[string]any{"$b": base64.StdEncoding.EncodeToString(x)}
	case time.Time:
		return map[string]any{"$t": x.Format(time.RFC3339Nano)}
	default:
		return v
	}
}

// walDecodeValue reverses walEncodeValue.
func walDecodeValue(v any) (any, error) {
	m, ok := v.(map[string]any)
	if !ok || len(m) != 1 {
		return v, nil
	}
	if s, ok := m["$b"].(string); ok {
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("relstore: corrupt WAL bytes value: %w", err)
		}
		return b, nil
	}
	if s, ok := m["$t"].(string); ok {
		ts, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return nil, fmt.Errorf("relstore: corrupt WAL time value: %w", err)
		}
		return ts, nil
	}
	return v, nil
}

func walEncodeRow(r Row) Row {
	if r == nil {
		return nil
	}
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = walEncodeValue(v)
	}
	return out
}

func walDecodeRow(r Row) (Row, error) {
	if r == nil {
		return nil, nil
	}
	out := make(Row, len(r))
	for k, v := range r {
		dv, err := walDecodeValue(v)
		if err != nil {
			return nil, err
		}
		out[k] = dv
	}
	return out, nil
}

// append writes one committed transaction to the log as a CRC-framed
// binary record. Row values are encoded natively by the wire codec —
// a document body goes to disk as its raw bytes, never through JSON.
// Both scratch buffers are pooled, so steady-state appends allocate
// only what the bufio writer flushes.
func (w *WAL) append(recs []walRec) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	line := walLine{Seq: w.seq, Commit: true, Recs: recs}
	payload := wire.GetBuf()
	payload, err := appendWalLine(payload, &line)
	if err != nil {
		wire.PutBuf(payload)
		return err
	}
	framed := wire.GetBuf()
	framed = wire.AppendRecord(framed, payload)
	wire.PutBuf(payload)
	n, err := w.w.Write(framed)
	w.bytes += int64(n)
	wire.PutBuf(framed)
	if err != nil {
		return err
	}
	return w.w.Flush()
}

// ReplayWAL applies a write-ahead log produced by a previous process
// to the database and reports the committed transactions applied plus
// the high-water sequence number observed (which OpenWAL resumes
// from). Unknown tables fail the replay.
//
// Each record is sniffed by its first byte: wire.RecordMagic selects
// the CRC-verified binary decode, '{' the legacy JSON-line decode
// (a gob segment or a binary record can never start with '{', and a
// JSON line can never start with 0xB9, so the sniff is unambiguous).
// One file may mix both — a legacy prefix with binary appends after an
// upgrade. A truncated final record is tolerated as the torn tail a
// crash mid-append leaves behind; a complete record that fails its CRC
// or parse still fails the replay.
func (db *DB) ReplayWAL(r io.Reader) (applied int, maxSeq uint64, err error) {
	defer func() { db.noteReplaySeq(maxSeq) }()
	br := bufio.NewReaderSize(r, 1<<20)
	for {
		line, done, err := readWalLine(br)
		if done || err != nil {
			return applied, maxSeq, err
		}
		if line.Seq > maxSeq {
			maxSeq = line.Seq
		}
		if !line.Commit {
			continue
		}
		if isDDL(line.Recs) {
			if err := db.applyDDL(line.Recs[0]); err != nil {
				return applied, maxSeq, err
			}
			applied++
			continue
		}
		// Declare every table the committed transaction touches so the
		// replay transaction locks them in sorted order regardless of
		// the order the original wrote them in.
		tx, err := db.Begin(recTables(line.Recs)...)
		if err != nil {
			return applied, maxSeq, err
		}
		if err := applyRecs(tx, line.Recs); err != nil {
			tx.Rollback()
			return applied, maxSeq, err
		}
		if err := tx.Commit(); err != nil {
			return applied, maxSeq, err
		}
		applied++
	}
}

// readWalLine reads the next committed-transaction record in either
// format. done reports a clean or torn end of log.
func readWalLine(br *bufio.Reader) (line walLine, done bool, err error) {
	first, err := br.Peek(1)
	if err != nil {
		// A partial read at the very first byte can only be EOF from a
		// bufio.Reader over a file.
		return line, true, nil
	}
	switch {
	case first[0] == wire.RecordMagic:
		payload, err := wire.ReadRecord(br, 0)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return line, true, nil // torn binary tail
		}
		if err != nil {
			return line, false, fmt.Errorf("relstore: corrupt WAL record: %w", err)
		}
		line, err = decodeWalLine(payload)
		return line, false, err
	case first[0] == '{':
		// Legacy JSON line. json.Marshal never emits a raw newline, so
		// the line boundary is reliable.
		raw, rerr := br.ReadBytes('\n')
		if jerr := json.Unmarshal(raw, &line); jerr != nil {
			if rerr != nil {
				return line, true, nil // torn legacy tail: no newline, no parse
			}
			return line, false, fmt.Errorf("relstore: corrupt WAL line: %w", jerr)
		}
		for i := range line.Recs {
			if line.Recs[i].Row, err = walDecodeRow(line.Recs[i].Row); err != nil {
				return line, false, err
			}
			if line.Recs[i].PK, err = walDecodeValue(line.Recs[i].PK); err != nil {
				return line, false, err
			}
		}
		return line, false, nil
	default:
		return line, false, fmt.Errorf("relstore: corrupt WAL: unrecognized record byte 0x%02x", first[0])
	}
}

func isDDL(recs []walRec) bool {
	return len(recs) == 1 && (recs[0].Op == "create" || recs[0].Op == "drop")
}

// recTables returns the distinct tables a committed transaction's redo
// records touch.
func recTables(recs []walRec) []string {
	seen := make(map[string]bool, 2)
	var names []string
	for _, rec := range recs {
		if !seen[rec.Table] {
			seen[rec.Table] = true
			names = append(names, rec.Table)
		}
	}
	return names
}

func (db *DB) applyDDL(rec walRec) error {
	switch rec.Op {
	case "create":
		if rec.DDL == nil {
			return fmt.Errorf("relstore: WAL create record for %s without schema", rec.Table)
		}
		return db.CreateTable(*rec.DDL)
	case "drop":
		return db.DropTable(rec.Table)
	default:
		return fmt.Errorf("relstore: unknown WAL DDL op %q", rec.Op)
	}
}

// applyRecs re-executes a committed transaction's redo records. Rows
// arrive with native value types — readWalLine already unwrapped the
// legacy JSON tagging, and the binary codec never erases types.
func applyRecs(tx *Tx, recs []walRec) error {
	for _, rec := range recs {
		switch rec.Op {
		case "insert":
			if err := tx.Insert(rec.Table, rec.Row); err != nil {
				return err
			}
		case "update":
			if err := tx.Update(rec.Table, rec.PK, rec.Row); err != nil {
				return err
			}
		case "delete":
			if err := tx.Delete(rec.Table, rec.PK); err != nil {
				return err
			}
		default:
			return fmt.Errorf("relstore: unknown WAL op %q", rec.Op)
		}
	}
	return nil
}

// logDDL and logDrop record schema changes. DDL statements are logged as
// standalone committed transactions. Caller holds metaMu exclusively.
func (db *DB) logDDL(s Schema) {
	if db.wal == nil {
		return
	}
	db.wal.append([]walRec{{Op: "create", Table: s.Name, DDL: &s}})
}

func (db *DB) logDrop(name string) {
	if db.wal == nil {
		return
	}
	db.wal.append([]walRec{{Op: "drop", Table: name}})
}
