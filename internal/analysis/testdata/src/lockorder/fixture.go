// Fixture for the lockorder analyzer: statically-known table lists
// declared to relstore Begin must be sorted ascending; dynamic lists
// are out of static reach.
package lo

import (
	"repro/internal/relstore"
	"repro/internal/schema"
)

func bad(db *relstore.DB) {
	db.Begin("versions", "checkouts")                     // want `tables declared to Begin out of order: "checkouts" sorts before "versions"`
	db.Begin(schema.TableVersions, schema.TableCheckouts) // want `tables declared to Begin out of order`
	db.Begin("checkouts", "checkouts")                    // want `duplicate table "checkouts"`
	db.Begin("checkouts", "scripts", "implementations")   // want `"implementations" sorts before "scripts"`
}

func good(db *relstore.DB, tables []string, t string) {
	db.Begin()
	db.Begin("checkouts")
	db.Begin("checkouts", "versions")
	db.Begin(schema.TableCheckouts, schema.TableVersions)
	db.Begin(tables...)      // spread: list not statically known
	db.Begin("checkouts", t) // non-constant member hides the order
	db.Begin(t, "aaa")       // ditto, even when a constant sorts first
}
