package cluster

import (
	"fmt"
	"time"

	"repro/internal/search"
)

// Simulated federation-wide full-text search: the discrete-event model
// of the live fabric's scatter-gather (fabric.Station.Search), so the
// real implementation's results can be pinned against controlled
// simulated time — the same methodology PRs 2–4 used for broadcast,
// resolve, migration and catch-up. The requesting station sends the
// query to the root (one transfer), the root scatters it down the
// m-ary tree (one small request transfer per edge), every station
// answers from its local content index, and each hop merges its
// subtree's hits into one bounded top-k set before the reply travels
// back up — so an edge carries at most TopK hits no matter how large
// the subtree below it is. Down stations are grafted around with the
// same liveChildren rule the resilient broadcast uses: their subtrees
// stay covered, their local hits are lost until they rejoin.

// Cost model of one scatter-gather hop: a query is a small fixed
// message; a reply costs a fixed overhead plus a bounded per-hit
// share.
const (
	searchRequestBytes = 256
	searchHitBytes     = 256
)

// searchReplyBytes sizes a reply message carrying n hits.
func searchReplyBytes(n int) int64 {
	return searchRequestBytes + int64(n)*searchHitBytes
}

// SearchReport summarizes one simulated federation query.
type SearchReport struct {
	Hits []search.Hit
	// Latency is the simulated time from issuing the query at the
	// requesting station to the merged reply arriving back there.
	Latency time.Duration
	// Answered counts the stations whose local index contributed to the
	// gather (down stations are covered but cannot answer).
	Answered int
	// WireBytes is the total traffic the query moved.
	WireBytes int64
}

// localHits queries one simulated station's index, stamping the
// station position into the hits.
func (st *Station) localHits(q search.Query) []search.Hit {
	hits := st.Index.Search(q)
	for i := range hits {
		hits[i].Station = st.Pos
	}
	return hits
}

// SearchFederated answers a full-text query issued at a station,
// modeling the scatter-gather over the simulated network. The
// requesting station must be live; the root cannot fail (the same
// assumption the rest of the simulator makes).
func (c *Cluster) SearchFederated(pos int, q search.Query) (*SearchReport, error) {
	st, err := c.Station(pos)
	if err != nil {
		return nil, err
	}
	if c.down[pos] {
		return nil, fmt.Errorf("%w: station %d is down", ErrNoStation, pos)
	}
	// Term-less queries match nothing; skip the scatter entirely, as
	// the live fabric does.
	if len(search.NormalizeTerms(q.Terms)) == 0 {
		return &SearchReport{}, nil
	}
	start := c.sim.Now()
	bytesBefore := c.sim.Stats().TotalBytes
	rep := &SearchReport{}
	var failure error

	// gather answers for one station and its (live-grafted) subtree,
	// delivering the merged top-k set and the completion time.
	var gather func(p int, done func(hits []search.Hit, at time.Duration))
	gather = func(p int, done func([]search.Hit, time.Duration)) {
		local := c.stations[p-1].localHits(q)
		rep.Answered++
		kids, err := c.liveChildren(p)
		if err != nil {
			failure = err
			done(nil, c.sim.Now())
			return
		}
		if len(kids) == 0 {
			done(local, c.sim.Now())
			return
		}
		lists := [][]search.Hit{local}
		pending := len(kids)
		var latest time.Duration
		for _, kid := range kids {
			kid := kid
			err := c.sim.Transfer(c.ids[p-1], c.ids[kid-1], searchRequestBytes, func(time.Duration) {
				gather(kid, func(kidHits []search.Hit, _ time.Duration) {
					err := c.sim.Transfer(c.ids[kid-1], c.ids[p-1], searchReplyBytes(len(kidHits)), func(at time.Duration) {
						lists = append(lists, kidHits)
						if at > latest {
							latest = at
						}
						pending--
						if pending == 0 {
							done(search.Merge(q.TopK, lists...), latest)
						}
					})
					if err != nil {
						failure = err
					}
				})
			})
			if err != nil {
				failure = err
				return
			}
		}
	}

	finish := func(hits []search.Hit, at time.Duration) {
		rep.Hits = hits
		rep.Latency = at - start
	}
	if pos == 1 {
		gather(1, finish)
	} else {
		// The query rides to the root first: any station can issue a
		// federation query for the cost of one round trip to the root
		// plus the tree's O(depth) scatter-gather.
		err := c.sim.Transfer(c.ids[st.Pos-1], c.ids[0], searchRequestBytes, func(time.Duration) {
			gather(1, func(hits []search.Hit, _ time.Duration) {
				err := c.sim.Transfer(c.ids[0], c.ids[st.Pos-1], searchReplyBytes(len(hits)), func(at time.Duration) {
					finish(hits, at)
				})
				if err != nil {
					failure = err
				}
			})
		})
		if err != nil {
			return nil, err
		}
	}
	c.sim.Run()
	if failure != nil {
		return nil, failure
	}
	rep.WireBytes = c.sim.Stats().TotalBytes - bytesBefore
	return rep, nil
}
