package integrity

import (
	"errors"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/relstore"
	"repro/internal/schema"
)

// mapResolver is a hand-built dependency fixture.
type mapResolver map[string][]string

func (m mapResolver) Dependents(kind, id, targetKind string) ([]string, error) {
	return m[kind+"/"+id+"->"+targetKind], nil
}

func TestAddLinkValidation(t *testing.T) {
	d := NewDiagram()
	d.AddNode("a")
	if err := d.AddLink(Link{From: "a", To: "b", Label: "x"}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("unknown target: %v", err)
	}
	if err := d.AddLink(Link{From: "z", To: "a", Label: "x"}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("unknown source: %v", err)
	}
	d.AddNode("b")
	if err := d.AddLink(Link{From: "a", To: "b", Label: "x", Mult: Plus}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddLink(Link{From: "a", To: "b", Label: "x", Mult: Star}); !errors.Is(err, ErrDupLink) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestPropagateTwoLevels(t *testing.T) {
	d := NewDiagram()
	for _, k := range []string{"script", "impl", "html"} {
		d.AddNode(k)
	}
	d.AddLink(Link{From: "script", To: "impl", Label: "implements", Mult: Plus})
	d.AddLink(Link{From: "impl", To: "html", Label: "contains", Mult: Plus})
	r := mapResolver{
		"script/s1->impl": {"u1", "u2"},
		"impl/u1->html":   {"f1", "f2"},
		"impl/u2->html":   {"f3"},
	}
	alerts, err := d.Propagate(r, "script", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 5 {
		t.Fatalf("alerts = %d, want 5 (2 impls + 3 html files)", len(alerts))
	}
	depths := map[int]int{}
	for _, a := range alerts {
		depths[a.Depth]++
	}
	if depths[1] != 2 || depths[2] != 3 {
		t.Errorf("depth histogram = %v", depths)
	}
}

func TestPropagateSharedDependentVisitedOnce(t *testing.T) {
	d := NewDiagram()
	for _, k := range []string{"a", "b", "c"} {
		d.AddNode(k)
	}
	d.AddLink(Link{From: "a", To: "b", Label: "l1", Mult: Star})
	d.AddLink(Link{From: "a", To: "c", Label: "l2", Mult: Star})
	d.AddLink(Link{From: "b", To: "c", Label: "l3", Mult: Star})
	// c1 is reachable directly and via b1 — it must be alerted once.
	r := mapResolver{
		"a/a1->b": {"b1"},
		"a/a1->c": {"c1"},
		"b/b1->c": {"c1"},
	}
	alerts, err := d.Propagate(r, "a", "a1")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, a := range alerts {
		if a.TargetID == "c1" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("c1 alerted %d times, want 1", count)
	}
}

func TestPropagateCycleTerminates(t *testing.T) {
	d := NewDiagram()
	d.AddNode("a")
	d.AddNode("b")
	d.AddLink(Link{From: "a", To: "b", Label: "f", Mult: Star})
	d.AddLink(Link{From: "b", To: "a", Label: "g", Mult: Star})
	r := mapResolver{
		"a/x->b": {"y"},
		"b/y->a": {"x"}, // cycle back to the origin
	}
	alerts, err := d.Propagate(r, "a", "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestPropagateUnknownKind(t *testing.T) {
	d := NewDiagram()
	if _, err := d.Propagate(mapResolver{}, "nope", "x"); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyPlusViolation(t *testing.T) {
	d := NewDiagram()
	d.AddNode("script")
	d.AddNode("impl")
	d.AddLink(Link{From: "script", To: "impl", Label: "implements", Mult: Plus})
	violations, err := d.Verify(mapResolver{}, "script", "lonely")
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 {
		t.Fatalf("violations = %v", violations)
	}
	if violations[0].Link.Label != "implements" || violations[0].Count != 0 {
		t.Errorf("violation = %+v", violations[0])
	}
	if violations[0].String() == "" {
		t.Error("violation must render")
	}
	// Satisfied constraint produces no violation.
	r := mapResolver{"script/ok->impl": {"u"}}
	violations, err = d.Verify(r, "script", "ok")
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations = %v", violations)
	}
}

func TestQueuePushPendingAck(t *testing.T) {
	q := NewQueue()
	q.Push("shih", []Alert{{Message: "m1"}, {Message: "m2"}})
	q.Push("ma", []Alert{{Message: "m3"}})
	p := q.Pending("shih")
	if len(p) != 2 || p[0].ID == 0 {
		t.Fatalf("pending = %+v", p)
	}
	if !q.Ack("shih", p[0].ID) {
		t.Error("ack failed")
	}
	if q.Ack("shih", p[0].ID) {
		t.Error("double ack succeeded")
	}
	if len(q.Pending("shih")) != 1 {
		t.Errorf("pending after ack = %d", len(q.Pending("shih")))
	}
	if n := q.AckAll("ma"); n != 1 {
		t.Errorf("AckAll = %d", n)
	}
	if len(q.Pending("ma")) != 0 {
		t.Error("queue not cleared")
	}
}

func TestMultiplicityString(t *testing.T) {
	if One.String() != "1" || Plus.String() != "+" || Star.String() != "*" {
		t.Error("multiplicity rendering broken")
	}
}

// buildDocStore seeds a docdb with the canonical course shape.
func buildDocStore(t *testing.T) *docdb.Store {
	t.Helper()
	s, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	s.Now = func() time.Time { return time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC) }
	if err := s.CreateDatabase(docdb.Database{Name: "mmu"}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateScript(docdb.Script{Name: "s1", DBName: "mmu"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddImplementation(docdb.Implementation{StartingURL: "u1", ScriptName: "s1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutHTML("u1", "index.html", []byte("<html>1</html>")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutHTML("u1", "p2.html", []byte("<html>2</html>")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutProgram("u1", "a.java", "java", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttachImplMedia("u1", "v.mpg", blob.KindVideo, []byte("vid")); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordTest(docdb.TestRecord{Name: "t1", ScriptName: "s1", StartingURL: "u1", Scope: "local"}); err != nil {
		t.Fatal(err)
	}
	if err := s.FileBugReport(docdb.BugReport{Name: "b1", TestName: "t1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveAnnotation(docdb.Annotation{Name: "a1", ScriptName: "s1", StartingURL: "u1", Author: "ma"}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultDiagramOverDocDB(t *testing.T) {
	store := buildDocStore(t)
	d := Default()
	r := DocResolver{Store: store}

	alerts, err := d.Propagate(r, schema.KindScript, "s1")
	if err != nil {
		t.Fatal(err)
	}
	// Direct: impl u1, test t1, annotation a1. Via u1: 2 html, 1
	// program, 1 media, (t1 and a1 already seen). Via t1: bug b1.
	byKind := map[string]int{}
	for _, a := range alerts {
		byKind[a.TargetKind]++
	}
	want := map[string]int{
		schema.KindImplementation: 1,
		schema.KindTestRecord:     1,
		schema.KindAnnotation:     1,
		schema.KindHTMLFile:       2,
		schema.KindProgramFile:    1,
		schema.KindMedia:          1,
		schema.KindBugReport:      1,
	}
	for k, n := range want {
		if byKind[k] != n {
			t.Errorf("alerts for %s = %d, want %d (all: %v)", k, byKind[k], n, byKind)
		}
	}
	if len(alerts) != 8 {
		t.Errorf("total alerts = %d, want 8", len(alerts))
	}
}

func TestDefaultDiagramVerify(t *testing.T) {
	store := buildDocStore(t)
	d := Default()
	r := DocResolver{Store: store}
	// s1 has an implementation: no violations.
	v, err := d.Verify(r, schema.KindScript, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Errorf("violations = %v", v)
	}
	// A fresh script with no implementation violates the "+" link.
	if err := store.CreateScript(docdb.Script{Name: "empty", DBName: "mmu"}); err != nil {
		t.Fatal(err)
	}
	v, err = d.Verify(r, schema.KindScript, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 {
		t.Errorf("violations = %v", v)
	}
}

func TestDocResolverUnknownPair(t *testing.T) {
	store := buildDocStore(t)
	r := DocResolver{Store: store}
	if _, err := r.Dependents(schema.KindBugReport, "b1", schema.KindScript); err == nil {
		t.Error("expected error for unresolvable pair")
	}
}
