// Command webdocd runs one Web document database station as a network
// daemon: the deployed form of a station in the paper's three-tier
// architecture. It hosts the embedded relational engine, the BLOB store
// and the document layer, and serves the station RPC protocol (Ping,
// Bundle, Import, SQL) over TCP.
//
// Stations can run standalone or join a live distribution fabric (the
// m-ary tree of the paper's section 4):
//
//	webdocd -addr 127.0.0.1:7070 -root -m 2 -seed-course 40
//	webdocd -addr 127.0.0.1:7071 -join 127.0.0.1:7070
//	webdocd -addr 127.0.0.1:7072 -join 127.0.0.1:7070
//	webdocd -wal station1.wal   # persist committed transactions
//
// A -root station is the instructor station (position 1) and the join
// authority; -join stations contact it, are assigned the next linear
// position, and serve broadcast/resolve/migrate traffic along the tree.
// With -seed-course N the daemon authors a synthetic N-page course on
// startup so a fresh deployment has something to serve.
//
// The root heartbeats every joined station (-heartbeat tunes the
// probe interval; 0 disables) and routes broadcasts and resolves
// around stations it declares dead. A station that was killed and
// restarted rejoins with
//
//	webdocd -addr 127.0.0.1:7072 -join 127.0.0.1:7070 -rejoin -pos 3
//
// asking for its old position back (-pos; same-address restarts get it
// back automatically) and then catching up on the broadcasts it missed
// — reference scaffolds first, full bundles via the parent route under
// the watermark policy.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/docdb"
	"repro/internal/fabric"
	"repro/internal/library"
	"repro/internal/relstore"
	"repro/internal/webui"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		httpAddr   = flag.String("http", "", "serve the Web-savvy virtual library UI on this address (empty disables)")
		pos        = flag.Int("pos", 1, "station position in the linear joining order (standalone mode; with -rejoin: the position to reclaim)")
		walPath    = flag.String("wal", "", "write-ahead log path (empty disables persistence)")
		seedCourse = flag.Int("seed-course", 0, "author a synthetic course with this many pages on startup")
		root       = flag.Bool("root", false, "act as the distribution fabric root (instructor station, position 1)")
		joinAddr   = flag.String("join", "", "join the distribution fabric via this root address")
		rejoin     = flag.Bool("rejoin", false, "with -join: reclaim the previous position (-pos) and catch up on missed broadcasts")
		degree     = flag.Int("m", 2, "distribution tree degree (root mode)")
		watermark  = flag.Int("watermark", 1, "watermark frequency: fetches beyond this replicate locally (root mode; negative never replicates)")
		heartbeat  = flag.Duration("heartbeat", fabric.DefaultHeartbeatInterval, "root mode: probe joined stations this often and declare the unresponsive ones dead (0 disables)")
	)
	flag.Parse()
	if *root && *joinAddr != "" {
		log.Fatal("webdocd: -root and -join are mutually exclusive")
	}
	if *rejoin && *joinAddr == "" {
		log.Fatal("webdocd: -rejoin requires -join")
	}
	if *rejoin && *pos < 2 {
		log.Fatal("webdocd: -rejoin requires -pos >= 2 (the position to reclaim)")
	}

	rel := relstore.NewDB()
	blobs := blob.NewStore()
	store, err := docdb.Open(rel, blobs)
	if err != nil {
		log.Fatalf("webdocd: opening store: %v", err)
	}
	blobSnapPath := *walPath + ".blobs"
	if *walPath != "" {
		// BLOB bytes are not in the WAL; they come back from the
		// sidecar snapshot written at shutdown.
		if f, err := os.Open(blobSnapPath); err == nil {
			if err := blobs.Restore(f); err != nil {
				log.Fatalf("webdocd: restoring BLOB snapshot: %v", err)
			}
			f.Close()
		}
		if f, err := os.Open(*walPath); err == nil {
			// Replay an existing log into the live engine (its schema is
			// already installed by docdb.Open) before attaching the log
			// for appends, so a restarted station serves its old data.
			if n, err := rel.ReplayWAL(f); err != nil {
				log.Fatalf("webdocd: replaying WAL: %v", err)
			} else if n > 0 {
				log.Printf("webdocd: replayed %d committed transactions", n)
			}
			f.Close()
		}
		// Restored rows carry generated IDs; move the counter past them
		// so new IDs cannot collide.
		if err := store.SyncIDs(); err != nil {
			log.Fatalf("webdocd: syncing ID counter: %v", err)
		}
		if err := rel.OpenWAL(*walPath); err != nil {
			log.Fatalf("webdocd: opening WAL: %v", err)
		}
	}

	lib := library.New(store)
	lib.RegisterInstructor("instructor")

	// Start serving. In fabric mode the socket must be up before the
	// join handshake (the root pushes bundles back to it); standalone
	// stations seed first, serve after, like the original daemon.
	var (
		bound      string
		stationPos int
		stop       func() error
	)
	switch {
	case *root:
		// The root is position 1 and needs no peer to seed, so the
		// course exists before the banner appears and the first
		// broadcast can never race the seeding.
		seed(store, lib, 1, *seedCourse)
		st, err := fabric.NewRoot(store, *addr, *degree, *watermark)
		if err != nil {
			log.Fatalf("webdocd: starting fabric root: %v", err)
		}
		if *heartbeat > 0 {
			if err := st.StartHeartbeat(*heartbeat, 0); err != nil {
				log.Fatalf("webdocd: starting heartbeat: %v", err)
			}
		}
		bound, stationPos, stop = st.Addr(), st.Pos(), st.Close
		fmt.Printf("webdocd: station %d serving on %s (fabric root, m=%d, watermark=%d)\n",
			stationPos, bound, *degree, *watermark)
	case *joinAddr != "":
		var st *fabric.Station
		var err error
		if *rejoin {
			st, err = fabric.Rejoin(store, *addr, *joinAddr, *pos)
		} else {
			st, err = fabric.Join(store, *addr, *joinAddr)
		}
		if err != nil {
			log.Fatalf("webdocd: joining fabric: %v", err)
		}
		// A joiner learns its position from the root, so it can only
		// seed after the handshake; the banner waits for the seed.
		seed(store, lib, st.Pos(), *seedCourse)
		if *rejoin {
			// Reconcile with whatever was broadcast while this station
			// was dark, before announcing readiness.
			res, err := st.CatchUp()
			if err != nil {
				log.Printf("webdocd: catch-up incomplete: %v", err)
			} else {
				log.Printf("webdocd: caught up: %d reference(s) imported, %d broadcast(s) re-pulled, %d stale instance(s) reclaimed",
					res.References, len(res.Resolved), res.Migrated)
			}
		}
		bound, stationPos, stop = st.Addr(), st.Pos(), st.Close
		fmt.Printf("webdocd: station %d serving on %s (joined fabric via %s)\n",
			stationPos, bound, *joinAddr)
	default:
		stationPos = *pos
		seed(store, lib, stationPos, *seedCourse)
		node := cluster.NewNode(stationPos, store)
		b, err := node.Start(*addr)
		if err != nil {
			log.Fatalf("webdocd: listen: %v", err)
		}
		bound, stop = b, node.Close
		fmt.Printf("webdocd: station %d serving on %s\n", stationPos, bound)
	}

	if *httpAddr != "" {
		ui := webui.New(lib, store)
		go func() {
			log.Printf("webdocd: virtual library UI on http://%s/", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, ui); err != nil {
				log.Fatalf("webdocd: http: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("webdocd: shutting down")
	// Orderly shutdown: stop serving, flush the BLOB sidecar snapshot,
	// then close the WAL — a kill-and-restart cycle must preserve both
	// the relational rows and the media bytes they point at.
	if err := stop(); err != nil {
		log.Printf("webdocd: closing station: %v", err)
	}
	if *walPath != "" {
		if f, err := os.Create(blobSnapPath); err != nil {
			log.Printf("webdocd: writing BLOB snapshot: %v", err)
		} else {
			if err := blobs.Snapshot(f); err != nil {
				log.Printf("webdocd: writing BLOB snapshot: %v", err)
			}
			f.Close()
		}
		rel.CloseWAL()
	}
}

// seed authors the synthetic startup course (pages > 0) unless the WAL
// replay already brought it back.
func seed(store *docdb.Store, lib *library.Library, pos, pages int) {
	if pages <= 0 {
		return
	}
	spec := workload.DefaultSpec(pos)
	spec.Pages = pages
	spec.MediaScaleDown = 4096
	if _, err := store.Script(spec.ScriptName); err == nil {
		// The course came back with the WAL replay; re-seeding
		// would collide with the restored rows.
		log.Printf("webdocd: %s already present, skipping seed", spec.ScriptName)
		if err := lib.Add(spec.ScriptName, fmt.Sprintf("MMU-%03d", pos), "instructor"); err != nil {
			log.Fatalf("webdocd: cataloging course: %v", err)
		}
		return
	}
	course, err := workload.BuildCourse(store, spec)
	if err != nil {
		log.Fatalf("webdocd: seeding course: %v", err)
	}
	if _, err := store.NewInstance(spec.URL, pos, true); err != nil {
		log.Fatalf("webdocd: recording instance: %v", err)
	}
	if err := lib.Add(spec.ScriptName, fmt.Sprintf("MMU-%03d", pos), "instructor"); err != nil {
		log.Fatalf("webdocd: cataloging course: %v", err)
	}
	log.Printf("webdocd: seeded %s (%d pages, %d media, %d bytes)",
		spec.ScriptName, course.PageCount, course.MediaCount, course.MediaBytes)
}
