// Command webdocctl is the administrative client for webdocd stations:
// the class administrator front end of the paper's three-tier
// architecture, speaking the station RPC protocol.
//
// Usage:
//
//	webdocctl -addr 127.0.0.1:7070 ping
//	webdocctl -addr 127.0.0.1:7070 stats
//	webdocctl -addr 127.0.0.1:7070 sql "SELECT * FROM scripts"
//	webdocctl -addr 127.0.0.1:7070 tables
//	webdocctl -addr 127.0.0.1:7070 checkpoint
//	webdocctl -addr 127.0.0.1:7070 pull http://mmu/course-001/v1 127.0.0.1:7071
//	webdocctl -addr 127.0.0.1:7070 topology
//	webdocctl -addr 127.0.0.1:7070 broadcast http://mmu/course-001/v1
//	webdocctl -addr 127.0.0.1:7072 resolve http://mmu/course-001/v1
//	webdocctl -addr 127.0.0.1:7070 migrate http://mmu/course-001/v1
//	webdocctl -addr 127.0.0.1:7070 health
//	webdocctl -addr 127.0.0.1:7070 evict 3
//	webdocctl -addr 127.0.0.1:7072 -k 5 search watermark frequency
//	webdocctl -addr 127.0.0.1:7070 trace 4a1f93c2d07b6e55
//	webdocctl -addr 127.0.0.1:7070 events
//	webdocctl -addr 127.0.0.1:7070 -severity error -follow events
//	webdocctl -addr 127.0.0.1:7070 top
//
// Every verb takes the station through the global -addr flag and
// supports -json, which prints the station's raw typed reply as
// indented JSON — the machine-readable surface scripts and the load
// harness build on. Field names match the RPC reply structs.
//
// "pull URL TARGET" copies a document bundle from the -addr station to
// the TARGET station (pre-broadcast of a single document by hand). The
// topology/broadcast/resolve/migrate verbs drive a live distribution
// fabric: broadcast and migrate address the root station, resolve makes
// the addressed station pull the document up its parent route.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/mtree"
	"repro/internal/obs"
)

// jsonOut switches every verb from human rendering to indented JSON.
var jsonOut bool

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "station address")
	refsOnly := flag.Bool("refs", false, "broadcast: push document references instead of full instances")
	topK := flag.Int("k", 10, "search: maximum hits to return")
	phrase := flag.Bool("phrase", false, "search: require the terms as a consecutive phrase")
	var ef eventFlags
	flag.Uint64Var(&ef.sinceSeq, "since-seq", 0, "events: only events with a per-station sequence past this cursor")
	flag.StringVar(&ef.category, "category", "", "events: only this category (health, repair, membership, checkpoint)")
	flag.StringVar(&ef.severity, "severity", "", "events: minimum severity (info, warn, error)")
	flag.StringVar(&ef.trace, "trace", "", "events: only events correlated to this hex trace ID")
	flag.BoolVar(&ef.follow, "follow", false, "events: poll the fabric and stream new events as they happen")
	flag.BoolVar(&jsonOut, "json", false, "print the raw typed reply as indented JSON")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// The fabric verbs use the typed administrative client; everything
	// else speaks the base station protocol.
	switch args[0] {
	case "topology", "broadcast", "resolve", "migrate", "health", "evict", "search", "trace", "events":
		runFabric(*addr, args, *refsOnly, *topK, *phrase, ef)
		return
	}

	rs, err := cluster.DialStation(*addr)
	if err != nil {
		fail("dial %s: %v", *addr, err)
	}
	defer rs.Close()

	switch args[0] {
	case "ping":
		info, err := rs.Ping()
		if err != nil {
			fail("ping: %v", err)
		}
		if emit(info) {
			return
		}
		fmt.Printf("station %d: %d tables, %d document objects\n", info.Pos, len(info.Tables), info.Objects)
	case "stats":
		reply, err := rs.Stats()
		if err != nil {
			fail("stats: %v", err)
		}
		if emit(reply) {
			return
		}
		printStats(reply)
	case "tables":
		info, err := rs.Ping()
		if err != nil {
			fail("ping: %v", err)
		}
		if emit(info.Tables) {
			return
		}
		for _, t := range info.Tables {
			fmt.Println(t)
		}
	case "sql":
		if len(args) < 2 {
			usage()
		}
		reply, err := rs.SQL(strings.Join(args[1:], " "))
		if err != nil {
			fail("sql: %v", err)
		}
		if emit(reply) {
			return
		}
		printSQL(reply)
	case "top":
		reply, err := rs.Stats()
		if err != nil {
			fail("stats: %v", err)
		}
		if emit(reply.Latency) {
			return
		}
		printTop(reply)
	case "checkpoint":
		reply, err := rs.Checkpoint()
		if err != nil {
			fail("checkpoint: %v", err)
		}
		if emit(reply) {
			return
		}
		fmt.Printf("checkpoint generation %d: %d snapshot bytes, wal seq %d\n", reply.Gen, reply.Bytes, reply.Seq)
	case "pull":
		if len(args) != 3 {
			usage()
		}
		url, target := args[1], args[2]
		bundle, err := rs.FetchBundle(url)
		if err != nil {
			fail("fetch bundle: %v", err)
		}
		dst, err := cluster.DialStation(target)
		if err != nil {
			fail("dial target %s: %v", target, err)
		}
		defer dst.Close()
		reply, err := dst.Import(bundle, false)
		if err != nil {
			fail("import: %v", err)
		}
		if emit(struct {
			URL      string
			Target   string
			ObjectID string
			Form     string
			Bytes    int64
		}{url, target, reply.ObjectID, reply.Form, bundle.TotalBytes()}) {
			return
		}
		fmt.Printf("pulled %s to %s: object %s (%s), %d bytes\n",
			url, target, reply.ObjectID, reply.Form, bundle.TotalBytes())
	default:
		usage()
	}
}

// eventFlags carries the `events` verb's filter and polling options.
type eventFlags struct {
	sinceSeq uint64
	category string
	severity string
	trace    string
	follow   bool
}

// filter translates the flags into the RPC's typed filter.
func (ef eventFlags) filter() obs.EventFilter {
	f := obs.EventFilter{
		SinceSeq:    ef.sinceSeq,
		Category:    ef.category,
		MinSeverity: obs.ParseSeverity(ef.severity),
	}
	if ef.trace != "" {
		id, err := strconv.ParseUint(ef.trace, 16, 64)
		if err != nil || id == 0 {
			fail("events: bad trace ID %q (want the hex ID an op reply printed)", ef.trace)
		}
		f.TraceID = id
	}
	return f
}

// runFabric executes one distribution-fabric verb against a station.
func runFabric(addr string, args []string, refsOnly bool, topK int, phrase bool, ef eventFlags) {
	admin := fabric.DialAdmin(addr)
	defer admin.Close()
	switch args[0] {
	case "search":
		if len(args) < 2 {
			usage()
		}
		res, err := admin.Search(args[1:], phrase, topK)
		if err != nil {
			fail("search: %v", err)
		}
		if emit(res) {
			return
		}
		dead := 0
		for _, sr := range res.Stations {
			if sr.Err != "" {
				dead++
			}
		}
		fmt.Printf("%d hit(s) from %d station(s), %d unreachable (trace %s)\n",
			len(res.Hits), len(res.Stations)-dead, dead, obs.FormatTraceID(res.TraceID))
		for _, h := range res.Hits {
			switch h.Kind {
			case "script":
				fmt.Printf("  %-8d catalog  %s @station %d\n", h.Score, h.Path, h.Station)
			default:
				fmt.Printf("  %-8d %-8s %s %s @station %d\n", h.Score, h.Kind, h.URL, h.Path, h.Station)
			}
			if h.Snippet != "" {
				fmt.Printf("           ... %s ...\n", h.Snippet)
			}
		}
		for _, sr := range res.Stations {
			if sr.Err != "" {
				fmt.Printf("  station %-3d UNREACHABLE %s\n", sr.Pos, sr.Err)
			}
		}
	case "topology":
		top, err := admin.Topology()
		if err != nil {
			fail("topology: %v", err)
		}
		if emit(top) {
			return
		}
		role := "station"
		if top.IsRoot {
			role = "root"
		}
		fmt.Printf("%s %d of %d, m=%d, watermark=%d\n", role, top.Pos, top.N, top.M, top.Watermark)
		positions := make([]int, 0, len(top.Roster))
		for pos := range top.Roster {
			positions = append(positions, pos)
		}
		sort.Ints(positions)
		for _, pos := range positions {
			parent := "-"
			if p, err := mtree.Parent(pos, top.M); err == nil {
				parent = fmt.Sprint(p)
			}
			fmt.Printf("  station %-3d %-21s parent %s\n", pos, top.Roster[pos], parent)
		}
	case "broadcast":
		if len(args) < 2 {
			usage()
		}
		// Several URLs ride one batched traversal: one coalesced frame
		// per tree edge instead of one broadcast per document.
		var res fabric.BroadcastResult
		var err error
		if len(args) == 2 {
			res, err = admin.Broadcast(args[1], refsOnly)
		} else {
			res, err = admin.BroadcastAll(args[1:], refsOnly)
		}
		if err != nil {
			fail("broadcast: %v", err)
		}
		if emit(res) {
			return
		}
		what := "instances"
		if res.RefOnly {
			what = "references"
		}
		name := res.URL
		if len(res.URLs) > 1 {
			name = fmt.Sprintf("%d documents", len(res.URLs))
		}
		fmt.Printf("broadcast %s: %d bytes/copy as %s (trace %s)\n",
			name, res.Bytes, what, obs.FormatTraceID(res.TraceID))
		for _, sr := range res.Stations {
			doc := ""
			if len(res.URLs) > 1 {
				doc = " " + sr.URL
			}
			if sr.Err != "" {
				fmt.Printf("  station %-3d ERROR%s %s\n", sr.Pos, doc, sr.Err)
				continue
			}
			fmt.Printf("  station %-3d %s%s\n", sr.Pos, sr.Form, doc)
		}
	case "resolve":
		if len(args) != 2 {
			usage()
		}
		res, err := admin.Fetch(args[1])
		if err != nil {
			fail("resolve: %v", err)
		}
		if emit(res) {
			return
		}
		switch {
		case res.Local:
			fmt.Printf("resolved %s locally\n", res.URL)
		case res.Replicated:
			fmt.Printf("resolved %s via station %d: %d bytes, fetch %d crossed the watermark, instance materialized\n",
				res.URL, res.ServedBy, res.Bytes, res.Fetches)
		default:
			fmt.Printf("resolved %s via station %d: %d bytes, fetch %d below the watermark\n",
				res.URL, res.ServedBy, res.Bytes, res.Fetches)
		}
		fmt.Printf("  trace %s\n", obs.FormatTraceID(res.TraceID))
	case "migrate":
		if len(args) != 2 {
			usage()
		}
		res, err := admin.EndLecture(args[1])
		if err != nil {
			fail("migrate: %v", err)
		}
		if emit(res) {
			return
		}
		fmt.Printf("migrated %d station(s), reclaimed %d bytes (trace %s)\n",
			len(res.Stations), res.Freed, obs.FormatTraceID(res.TraceID))
		for _, sr := range res.Stations {
			if sr.Err != "" {
				fmt.Printf("  station %-3d ERROR %s\n", sr.Pos, sr.Err)
				continue
			}
			fmt.Printf("  station %-3d -> %s (%d bytes freed)\n", sr.Pos, sr.Form, sr.Freed)
		}
	case "trace":
		if len(args) != 2 {
			usage()
		}
		id, err := strconv.ParseUint(args[1], 16, 64)
		if err != nil || id == 0 {
			fail("trace: bad trace ID %q (want the hex ID an op reply printed)", args[1])
		}
		res, err := admin.Trace(id)
		if err != nil {
			fail("trace: %v", err)
		}
		// Best-effort: the journal events correlated to this trace
		// (grafts mid-broadcast, mostly) interleave into the hop tree.
		var events []obs.Event
		if evs, err := admin.Events(obs.EventFilter{TraceID: id}); err == nil {
			events = evs.Events
		}
		if jsonOut {
			emit(struct {
				Trace  fabric.TraceReply
				Events []obs.Event
			}{res, events})
			return
		}
		printTrace(res, events)
	case "events":
		runEvents(admin, ef)
	case "health":
		health, err := admin.Health()
		if err != nil {
			fail("health: %v", err)
		}
		if emit(health) {
			return
		}
		printHealth(health)
	case "evict":
		if len(args) != 2 {
			usage()
		}
		pos, err := strconv.Atoi(args[1])
		if err != nil {
			fail("evict: bad position %q", args[1])
		}
		health, err := admin.Evict(pos)
		if err != nil {
			fail("evict: %v", err)
		}
		if emit(health) {
			return
		}
		fmt.Printf("station %d evicted\n", pos)
		printHealth(health)
	}
}

// emit prints v as indented JSON when -json is set, reporting whether
// it handled the output.
func emit(v any) bool {
	if !jsonOut {
		return false
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail("encoding json: %v", err)
	}
	return true
}

// printStats renders the unified station snapshot.
func printStats(s cluster.StatsReply) {
	fmt.Printf("station %d: %d tables, %d document objects\n", s.Pos, s.Tables, s.Objects)
	fmt.Printf("  wire      %d bytes in, %d bytes out\n", s.BytesIn, s.BytesOut)
	if len(s.Ops) > 0 {
		methods := make([]string, 0, len(s.Ops))
		for m := range s.Ops {
			methods = append(methods, m)
		}
		sort.Strings(methods)
		fmt.Printf("  ops       ")
		for i, m := range methods {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s=%d", m, s.Ops[m])
		}
		fmt.Println()
	}
	if s.Durable {
		fmt.Printf("  wal       checkpoint gen %d, seq %d, %d tail bytes\n", s.CheckpointGen, s.WALSeq, s.WALTailBytes)
	} else {
		fmt.Printf("  wal       in-memory (no durability directory)\n")
	}
	fmt.Printf("  blobs     %d objects, %d physical bytes (%d logical)\n", s.BlobObjects, s.PhysicalBytes, s.LogicalBytes)
	if s.Indexed {
		fmt.Printf("  index     %d docs, %d terms, %d postings\n", s.IndexDocs, s.IndexTerms, s.IndexPostings)
	} else {
		fmt.Printf("  index     none attached\n")
	}
	if len(s.Latency) > 0 {
		fmt.Printf("  latency   %d method(s) instrumented; hottest:\n", len(s.Latency))
		methods := obs.MethodsByTotal(s.Latency)
		if len(methods) > 3 {
			methods = methods[:3]
		}
		for _, m := range methods {
			sum := s.Latency[m]
			fmt.Printf("    %-24s n=%-6d p50=%.2fms p99=%.2fms max=%.2fms\n",
				m, sum.Count, sum.P50Ms, sum.P99Ms, sum.MaxMs)
		}
	}
}

// eventsFollowInterval paces the `events -follow` polling loop.
const eventsFollowInterval = time.Second

// runEvents executes the events verb: one merged fabric-wide timeline
// query, or — with -follow — a polling loop that streams only news.
func runEvents(admin *fabric.Admin, ef eventFlags) {
	f := ef.filter()
	if !ef.follow {
		res, err := admin.Events(f)
		if err != nil {
			fail("events: %v", err)
		}
		if emit(res) {
			return
		}
		printEvents(res)
		return
	}
	// Follow mode polls with the flag's cursor and advances a
	// per-station cursor client-side: each station's journal has its
	// own monotonic sequence, so one fabric-wide floor cannot express
	// "everything I have not seen yet" (and a rejoined station restarts
	// its sequence from 1). The journals are bounded rings, so
	// re-reading them each poll is cheap.
	cursors := make(map[int]uint64)
	for {
		res, err := admin.Events(f)
		if err != nil {
			fail("events: %v", err)
		}
		var fresh []obs.Event
		for _, e := range res.Events {
			if cur, ok := cursors[e.Station]; !ok || e.Seq > cur {
				fresh = append(fresh, e)
			}
		}
		obs.SortEvents(fresh)
		for _, e := range fresh {
			if e.Seq > cursors[e.Station] {
				cursors[e.Station] = e.Seq
			}
			fmt.Println(formatEvent(e))
		}
		time.Sleep(eventsFollowInterval)
	}
}

// formatEvent renders one journal event as a timeline line.
func formatEvent(e obs.Event) string {
	line := fmt.Sprintf("%s  station %-3d #%-5d %-5s %-10s %s",
		e.Time.Format("15:04:05.000000"), e.Station, e.Seq, e.Severity, e.Category,
		strings.TrimPrefix(e.Line(), "event="))
	if e.TraceID != 0 {
		line += "  (trace " + obs.FormatTraceID(e.TraceID) + ")"
	}
	return line
}

// printEvents renders a merged fabric-wide timeline.
func printEvents(res fabric.EventsReply) {
	dead := 0
	for _, sr := range res.Stations {
		if sr.Err != "" {
			dead++
		}
	}
	fmt.Printf("%d event(s) from %d station(s), %d unreachable\n",
		len(res.Events), len(res.Stations)-dead, dead)
	for _, e := range res.Events {
		fmt.Println("  " + formatEvent(e))
	}
	for _, sr := range res.Stations {
		if sr.Err != "" {
			fmt.Printf("  station %-3d UNREACHABLE %s\n", sr.Pos, sr.Err)
		}
	}
}

// printTrace renders a collected trace as its hop tree: spans indexed
// by SpanID, children nested under their parent hop, orphans (parent
// span lost to ring eviction or a dead station) promoted to roots.
// Journal events correlated to the trace interleave under the hop
// whose station and time window they fall in; the rest (for example an
// event on a station whose span was evicted) trail the tree.
func printTrace(res fabric.TraceReply, events []obs.Event) {
	fmt.Printf("trace %s: %d span(s)\n", obs.FormatTraceID(res.ID), len(res.Spans))
	byID := make(map[uint64]obs.Span, len(res.Spans))
	for _, sp := range res.Spans {
		byID[sp.SpanID] = sp
	}
	children := make(map[uint64][]obs.Span, len(res.Spans))
	var roots []obs.Span
	for _, sp := range res.Spans {
		if _, ok := byID[sp.Parent]; sp.Parent != 0 && ok {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	consumed := make([]bool, len(events))
	var render func(sp obs.Span, depth int)
	render = func(sp obs.Span, depth int) {
		indent := strings.Repeat("  ", depth+1)
		line := fmt.Sprintf("%sstation %-3d %-20s %8s  %d bytes",
			indent, sp.Station, sp.Method, sp.Duration.Round(10*time.Microsecond), sp.Bytes)
		if sp.Err != "" {
			line += "  ERROR " + sp.Err
		}
		fmt.Println(line)
		for _, note := range sp.Notes {
			fmt.Printf("%s  ! %s\n", indent, note)
		}
		end := sp.Start.Add(sp.Duration)
		for i, e := range events {
			if consumed[i] || e.Station != sp.Station || e.Time.Before(sp.Start) || e.Time.After(end) {
				continue
			}
			consumed[i] = true
			fmt.Printf("%s  * event %s %s\n", indent, e.Name,
				strings.TrimPrefix(e.Line(), "event="+e.Name))
		}
		for _, kid := range children[sp.SpanID] {
			render(kid, depth+1)
		}
	}
	for _, sp := range roots {
		render(sp, 0)
	}
	var leftovers []obs.Event
	for i, e := range events {
		if !consumed[i] {
			leftovers = append(leftovers, e)
		}
	}
	if len(leftovers) > 0 {
		fmt.Println("  correlated events outside the collected hops:")
		for _, e := range leftovers {
			fmt.Println("  " + formatEvent(e))
		}
	}
	for _, sr := range res.Stations {
		if sr.Err != "" {
			fmt.Printf("  station %-3d UNREACHABLE %s\n", sr.Pos, sr.Err)
		}
	}
}

// printTop renders the station's per-method latency histograms hottest
// first — the quick "where is the time going" view.
func printTop(s cluster.StatsReply) {
	fmt.Printf("station %d: %d instrumented method(s)\n", s.Pos, len(s.Latency))
	if len(s.Latency) == 0 {
		fmt.Println("  no latency histograms recorded (observability disabled or no traffic yet)")
		return
	}
	fmt.Printf("  %-24s %8s %6s %9s %9s %9s %9s %10s\n",
		"method", "count", "errs", "p50", "p95", "p99", "max", "total")
	for _, m := range obs.MethodsByTotal(s.Latency) {
		sum := s.Latency[m]
		fmt.Printf("  %-24s %8d %6d %8.2fms %8.2fms %8.2fms %8.2fms %9.1fms\n",
			m, sum.Count, sum.Errors, sum.P50Ms, sum.P95Ms, sum.P99Ms, sum.MaxMs, sum.TotalMs)
	}
}

// printHealth renders a liveness view: one line per roster entry with
// its up/down/suspect state.
func printHealth(h fabric.HealthReply) {
	role := "station"
	if h.IsRoot {
		role = "root"
	}
	fmt.Printf("%s %d of %d, epoch %d, %d down\n", role, h.Pos, h.N, h.Epoch, len(h.Down))
	down := make(map[int]bool, len(h.Down))
	for _, pos := range h.Down {
		down[pos] = true
	}
	suspect := make(map[int]bool, len(h.Suspect))
	for _, pos := range h.Suspect {
		suspect[pos] = true
	}
	positions := make([]int, 0, len(h.Roster))
	for pos := range h.Roster {
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	for _, pos := range positions {
		state := "up"
		switch {
		case down[pos]:
			state = "DOWN"
		case suspect[pos]:
			state = "suspect"
		}
		fmt.Printf("  station %-3d %-21s %s\n", pos, h.Roster[pos], state)
	}
}

func printSQL(reply cluster.SQLReply) {
	if reply.Msg != "" {
		fmt.Println(reply.Msg)
		return
	}
	if reply.Columns == nil {
		fmt.Printf("%d row(s) affected\n", reply.Affected)
		return
	}
	widths := make([]int, len(reply.Columns))
	for i, c := range reply.Columns {
		widths[i] = len(c)
	}
	for _, row := range reply.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, c := range reply.Columns {
		fmt.Printf("%-*s  ", widths[i], c)
	}
	fmt.Println()
	for i := range reply.Columns {
		fmt.Print(strings.Repeat("-", widths[i]), "  ")
	}
	fmt.Println()
	for _, row := range reply.Rows {
		for i, cell := range row {
			fmt.Printf("%-*s  ", widths[i], cell)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(reply.Rows))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: webdocctl [-addr host:port] [-json] [-refs] [-k N] [-phrase] COMMAND
commands:
  ping                 station status
  stats                unified station accounting (ops, bytes, WAL, blobs, index)
  tables               list relational tables
  sql "STATEMENT"      run a minisql statement
  checkpoint           write a checkpoint generation now (compacts the WAL tail)
  pull URL TARGET      copy a document bundle to another station
  topology             show the distribution fabric (any joined station)
  broadcast URL...     push course(s) down the m-ary tree (root; -refs for references;
                       several URLs share one batched traversal)
  resolve URL          make the station pull the document up its parent route
  migrate URL          post-lecture migration back to references (root)
  health               show per-station liveness (root view is authoritative)
  evict POS            force-mark a station dead on the root (heartbeats revive it if it still answers)
  search TERM...       federation-wide full-text query ([-k N] hits, [-phrase] exact phrase)
  trace HEXID          reconstruct an op's hop tree fabric-wide, with correlated journal
                       events interleaved (ID printed by broadcast/resolve/migrate/search)
  events               merged fabric-wide event timeline from every live station's journal
                       ([-since-seq N] [-category C] [-severity S] [-trace HEXID] filters;
                       [-follow] polls and streams only new events)
  top                  per-method latency histograms on the station, hottest first
flags apply to every command; -json prints the raw typed reply as indented JSON`)
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "webdocctl: "+format+"\n", args...)
	os.Exit(1)
}
