package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/workload"
)

// startNode builds a station store with a course and serves it on a
// loopback socket.
func startNode(t *testing.T, pos int, withCourse bool) (*Node, string, workload.CourseSpec) {
	t.Helper()
	store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	store.Now = func() time.Time { return time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC) }
	spec := smallCourse(pos)
	if withCourse {
		if _, err := workload.BuildCourse(store, spec); err != nil {
			t.Fatal(err)
		}
		if _, err := store.NewInstance(spec.URL, pos, true); err != nil {
			t.Fatal(err)
		}
	}
	n := NewNode(pos, store)
	addr, err := n.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n, addr, spec
}

func TestTCPPing(t *testing.T) {
	_, addr, _ := startNode(t, 1, true)
	rs, err := DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	info, err := rs.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if info.Pos != 1 || len(info.Tables) == 0 || info.Objects != 1 {
		t.Errorf("info = %+v", info)
	}
}

func TestTCPBundleTransferBetweenStations(t *testing.T) {
	_, addr1, spec := startNode(t, 1, true)
	node2, addr2, _ := startNode(t, 2, false)

	// Station 2 pulls the lecture from station 1 over real sockets.
	src, err := DialStation(addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	bundle, err := src.FetchBundle(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.HTML) != 6 || len(bundle.Media) == 0 {
		t.Fatalf("bundle = %d html, %d media", len(bundle.HTML), len(bundle.Media))
	}

	dst, err := DialStation(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	reply, err := dst.Import(bundle, false)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Form != schema.FormInstance {
		t.Errorf("form = %s", reply.Form)
	}
	// The content is now resident on station 2.
	resident, err := node2.Store.ResidentBytes(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resident == 0 {
		t.Error("nothing resident after import")
	}
	// Byte-identical page content across stations.
	got, err := node2.Store.HTML(spec.URL, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("empty page after transfer")
	}
}

func TestTCPFetchUnknownBundle(t *testing.T) {
	_, addr, _ := startNode(t, 1, true)
	rs, err := DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.FetchBundle("http://ghost"); err == nil {
		t.Error("expected error for unknown URL")
	}
}

// TestTCPCheckpointVerb drives the operator checkpoint RPC: a durable
// station writes a generation on request; an in-memory one refuses.
func TestTCPCheckpointVerb(t *testing.T) {
	store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Recover(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.BuildCourse(store, smallCourse(1)); err != nil {
		t.Fatal(err)
	}
	n := NewNode(1, store)
	addr, err := n.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	rs, err := DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	reply, err := rs.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Gen != 1 || reply.Bytes == 0 {
		t.Errorf("checkpoint reply = %+v", reply)
	}
	// Idempotent escalation: a second checkpoint is the next generation.
	reply2, err := rs.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if reply2.Gen != 2 {
		t.Errorf("second checkpoint generation = %d, want 2", reply2.Gen)
	}

	// A station running without persistence answers with an error, not
	// a crash.
	_, memAddr, _ := startNode(t, 2, false)
	mem, err := DialStation(memAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if _, err := mem.Checkpoint(); err == nil {
		t.Error("checkpoint of an in-memory station succeeded")
	}
}

func TestTCPSQL(t *testing.T) {
	_, addr, spec := startNode(t, 1, true)
	rs, err := DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	reply, err := rs.SQL("SELECT script_name, author FROM scripts")
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Rows) != 1 || reply.Rows[0][0] != spec.ScriptName {
		t.Errorf("reply = %+v", reply)
	}
	reply, err = rs.SQL("SELECT file_id FROM html_files ORDER BY file_id LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Rows) != 2 {
		t.Errorf("rows = %d", len(reply.Rows))
	}
	// Errors travel back as errors.
	if _, err := rs.SQL("SELEKT nonsense"); err == nil || !strings.Contains(err.Error(), "minisql") {
		t.Errorf("err = %v", err)
	}
	// Bytes render as placeholders.
	reply, err = rs.SQL("SELECT content FROM html_files LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reply.Rows[0][0], "bytes>") {
		t.Errorf("bytes cell = %q", reply.Rows[0][0])
	}
}
