package schema

import (
	"errors"
	"testing"

	"repro/internal/relstore"
)

func TestCreateInstallsAllTables(t *testing.T) {
	db := relstore.NewDB()
	if err := Create(db); err != nil {
		t.Fatal(err)
	}
	want := []string{
		TableAnnotations, TableBugReports, TableCheckouts, TableDatabases,
		TableDocObjects, TableHTMLFiles, TableImplMedia, TableImpls,
		TableProgFiles, TableScriptMedia, TableScripts, TableTestRecords,
		TableVersions,
	}
	got := db.Tables()
	if len(got) != len(want) {
		t.Fatalf("tables = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("table[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestCreateIsNotIdempotent(t *testing.T) {
	db := relstore.NewDB()
	if err := Create(db); err != nil {
		t.Fatal(err)
	}
	if err := Create(db); !errors.Is(err, relstore.ErrTableExists) {
		t.Fatalf("second Create: err = %v", err)
	}
}

func TestForeignKeyChainEnforced(t *testing.T) {
	db := relstore.NewDB()
	if err := Create(db); err != nil {
		t.Fatal(err)
	}
	// A script cannot exist without its database.
	err := db.Insert(TableScripts, relstore.Row{"script_name": "s", "db_name": "missing"})
	if !errors.Is(err, relstore.ErrFK) {
		t.Fatalf("err = %v", err)
	}
	if err := db.Insert(TableDatabases, relstore.Row{"db_name": "course-db"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(TableScripts, relstore.Row{"script_name": "s", "db_name": "course-db"}); err != nil {
		t.Fatal(err)
	}
	// An implementation cannot exist without its script.
	err = db.Insert(TableImpls, relstore.Row{"starting_url": "u", "script_name": "nope"})
	if !errors.Is(err, relstore.ErrFK) {
		t.Fatalf("err = %v", err)
	}
	if err := db.Insert(TableImpls, relstore.Row{"starting_url": "u", "script_name": "s"}); err != nil {
		t.Fatal(err)
	}
	// Deleting the script while the implementation lives is restricted.
	if err := db.Delete(TableScripts, "s"); !errors.Is(err, relstore.ErrFK) {
		t.Fatalf("restrict err = %v", err)
	}
}

func TestJoinSplitListRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{"one"},
		{"a", "b", "c"},
		{"http://x/y", "http://z"},
	}
	for _, c := range cases {
		got := SplitList(JoinList(c))
		if len(got) != len(c) {
			t.Errorf("round trip of %v = %v", c, got)
			continue
		}
		for i := range c {
			if got[i] != c[i] {
				t.Errorf("round trip of %v = %v", c, got)
			}
		}
	}
}

func TestSplitListEmpty(t *testing.T) {
	if got := SplitList(""); got != nil {
		t.Errorf("SplitList(\"\") = %v, want nil", got)
	}
}

func TestSchemasValidateIndividually(t *testing.T) {
	for _, s := range All() {
		db := relstore.NewDB()
		// Create parent tables first so FK targets resolve; here we just
		// check the schema structure is self-consistent.
		if s.Key == "" {
			t.Errorf("table %s has no key", s.Name)
		}
		found := false
		for _, c := range s.Columns {
			if c.Name == s.Key {
				found = true
				if !c.NotNull {
					t.Errorf("table %s primary key %s should be NOT NULL", s.Name, s.Key)
				}
			}
		}
		if !found {
			t.Errorf("table %s key %s is not a column", s.Name, s.Key)
		}
		_ = db
	}
}
