package obs

import (
	"fmt"
	"sync"
	"testing"
)

// A trailing key with no value is an emission-site bug worth seeing,
// not worth hiding: it must render as <key>=<missing> instead of being
// silently dropped (the old formatter's behavior).
func TestEventOddKeyValueRendersMissing(t *testing.T) {
	e := NewEvent("down-declared", "pos", 3, "cause")
	if got, want := e.Line(), "event=down-declared pos=3 cause=<missing>"; got != want {
		t.Fatalf("odd kv line = %q, want %q", got, want)
	}
	if len(e.KV) != 4 || e.KV[2] != "cause" || e.KV[3] != MissingValue {
		t.Fatalf("odd kv pairs = %q", e.KV)
	}
	// Even argument lists are unaffected.
	if got := NewEvent("revived", "pos", 3).Line(); got != "event=revived pos=3" {
		t.Fatalf("even kv line = %q", got)
	}
}

func TestClassifyKnownAndUnknownNames(t *testing.T) {
	cases := []struct {
		name string
		sev  Severity
		cat  string
	}{
		{"suspect", SevWarn, "health"},
		{"suspicion-refuted", SevInfo, "health"},
		{"down-declared", SevError, "health"},
		{"down-confirmed", SevError, "health"},
		{"revived", SevInfo, "health"},
		{"graft", SevWarn, "repair"},
		{"rejoin-grant", SevInfo, "membership"},
		{"checkpoint-install", SevInfo, "checkpoint"},
		{"something-new", SevInfo, "fabric"},
	}
	for _, c := range cases {
		sev, cat := Classify(c.name)
		if sev != c.sev || cat != c.cat {
			t.Errorf("Classify(%q) = %v/%q, want %v/%q", c.name, sev, cat, c.sev, c.cat)
		}
	}
}

func TestSeverityRoundTrip(t *testing.T) {
	for _, s := range []Severity{SevInfo, SevWarn, SevError} {
		if got := ParseSeverity(s.String()); got != s {
			t.Errorf("ParseSeverity(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if ParseSeverity("nonsense") != SevInfo {
		t.Error("unknown severity string should floor to info")
	}
	b, err := SevError.MarshalJSON()
	if err != nil || string(b) != `"error"` {
		t.Errorf("MarshalJSON = %s, %v", b, err)
	}
	var s Severity
	if err := s.UnmarshalJSON([]byte(`"warn"`)); err != nil || s != SevWarn {
		t.Errorf("UnmarshalJSON = %v, %v", s, err)
	}
}

func TestEventRingSeqMonotonicAndFIFO(t *testing.T) {
	r := NewEventRing(64)
	for i := 0; i < 100; i++ {
		e := r.Add(NewEvent("revived", "i", i))
		if e.Seq != uint64(i+1) {
			t.Fatalf("admission %d got seq %d", i, e.Seq)
		}
	}
	if r.LastSeq() != 100 {
		t.Fatalf("LastSeq = %d", r.LastSeq())
	}
	snap := r.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("snapshot holds %d events, ring capacity 64", len(snap))
	}
	// Oldest retained is admission 37 (100-64+1): pure FIFO for info
	// events.
	if snap[0].Seq != 37 || snap[len(snap)-1].Seq != 100 {
		t.Fatalf("snapshot seq range [%d, %d], want [37, 100]", snap[0].Seq, snap[len(snap)-1].Seq)
	}
}

// The reservoir is the journal's whole point: one error event must
// survive a flood of routine info events that wash the FIFO many
// times over.
func TestEventRingErrorSurvivesInfoFlood(t *testing.T) {
	r := NewEventRing(64)
	down := r.Add(NewEvent("down-declared", "pos", 7))
	for i := 0; i < 10*64; i++ {
		r.Add(NewEvent("revived", "i", i))
	}
	var found bool
	for _, e := range r.Snapshot() {
		if e.Seq == down.Seq {
			found = true
			if e.Name != "down-declared" {
				t.Fatalf("reservoir kept seq %d as %q", e.Seq, e.Name)
			}
		}
	}
	if !found {
		t.Fatal("error event evicted by info flood")
	}
	// And errors outrank warns when the reservoir itself floods.
	r2 := NewEventRing(64) // reservoir cap 16
	for i := 0; i < 40; i++ {
		r2.Add(NewEvent("graft", "i", i)) // warn
	}
	err1 := r2.Add(NewEvent("down-confirmed", "pos", 2))
	for i := 0; i < 10*64; i++ {
		r2.Add(NewEvent("revived", "i", i))
	}
	found = false
	for _, e := range r2.Snapshot() {
		if e.Seq == err1.Seq {
			found = true
		}
	}
	if !found {
		t.Fatal("error event lost a reservoir slot to warns")
	}
}

func TestEventFilterSelect(t *testing.T) {
	r := NewEventRing(256)
	r.Add(NewEvent("suspect", "pos", 2))
	down := r.Add(NewEvent("down-declared", "pos", 2))
	traced := NewEvent("graft", "child", 2)
	traced.TraceID = 0xabcd
	r.Add(traced)
	r.Add(NewEvent("rejoin-grant", "pos", 2))

	if got := len(r.Select(EventFilter{})); got != 4 {
		t.Fatalf("unfiltered select = %d events", got)
	}
	if got := r.Select(EventFilter{SinceSeq: down.Seq}); len(got) != 2 || got[0].Name != "graft" {
		t.Fatalf("since-seq select = %+v", got)
	}
	if got := r.Select(EventFilter{Category: "health"}); len(got) != 2 {
		t.Fatalf("category select = %+v", got)
	}
	if got := r.Select(EventFilter{MinSeverity: SevError}); len(got) != 1 || got[0].Name != "down-declared" {
		t.Fatalf("severity select = %+v", got)
	}
	if got := r.Select(EventFilter{TraceID: 0xabcd}); len(got) != 1 || got[0].Name != "graft" {
		t.Fatalf("trace select = %+v", got)
	}
	counts := r.CategoryCounts()
	if counts["health"] != 2 || counts["repair"] != 1 || counts["membership"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestObserverEmitStampsStationAndJournal(t *testing.T) {
	o := NewObserver(0)
	o.SetPos(7)
	e := NewEvent("graft", "child", 9)
	e.TraceID = 42
	got := o.Emit(e)
	if got.Station != 7 || got.Seq != 1 || got.TraceID != 42 {
		t.Fatalf("emitted = %+v", got)
	}
	evs := o.Events(EventFilter{})
	if len(evs) != 1 || evs[0].Station != 7 {
		t.Fatalf("journal = %+v", evs)
	}
	if o.EventSeq() != 1 {
		t.Fatalf("EventSeq = %d", o.EventSeq())
	}
	if c := o.EventCounts(); c["repair"] != 1 {
		t.Fatalf("counts = %v", c)
	}

	// Disabled journal: Emit passes through, nothing is recorded.
	o.DisableEventJournal()
	if after := o.Emit(NewEvent("revived")); after.Seq != 0 {
		t.Fatalf("disabled journal stamped seq %d", after.Seq)
	}
	if o.Events(EventFilter{}) != nil || o.EventSeq() != 0 {
		t.Fatal("disabled journal still answers queries")
	}

	// Nil observer: everything is a no-op.
	var nilObs *Observer
	nilObs.Emit(NewEvent("revived"))
	if nilObs.Events(EventFilter{}) != nil || nilObs.EventSeq() != 0 || nilObs.EventCounts() != nil {
		t.Fatal("nil observer recorded something")
	}
	nilObs.DisableEventJournal()
}

// The journal takes writes from every RPC goroutine while pollers
// read it; this test exists to run under -race.
func TestEventRingConcurrent(t *testing.T) {
	o := NewObserver(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				o.Emit(NewEvent("graft", "worker", w, "i", i))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var cursor uint64
		for i := 0; i < 100; i++ {
			for _, e := range o.Events(EventFilter{SinceSeq: cursor}) {
				if e.Seq > cursor {
					cursor = e.Seq
				}
			}
			o.EventCounts()
		}
	}()
	wg.Wait()
	if got := o.EventSeq(); got != 1600 {
		t.Fatalf("EventSeq = %d, want 1600", got)
	}
}

func TestSortEventsOrdersTimeline(t *testing.T) {
	a := NewEvent("suspect")
	b := NewEvent("graft")
	c := NewEvent("down-confirmed")
	a.Station, a.Seq = 2, 5
	b.Station, b.Seq = 1, 9
	c.Station, c.Seq = 2, 6
	b.Time = a.Time
	c.Time = a.Time.Add(1) // strictly later
	events := []Event{c, a, b}
	SortEvents(events)
	got := fmt.Sprintf("%s/%d %s/%d %s/%d",
		events[0].Name, events[0].Station,
		events[1].Name, events[1].Station,
		events[2].Name, events[2].Station)
	if got != "graft/1 suspect/2 down-confirmed/2" {
		t.Fatalf("order = %s", got)
	}
}
