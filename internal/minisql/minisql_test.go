package minisql

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/relstore"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession(relstore.NewDB())
	mustExec(t, s, `CREATE TABLE scripts (
		script_name TEXT NOT NULL,
		author TEXT,
		version INT,
		pct FLOAT,
		archived BOOL,
		PRIMARY KEY (script_name))`)
	mustExec(t, s, `CREATE TABLE impls (
		starting_url TEXT NOT NULL,
		script_name TEXT,
		PRIMARY KEY (starting_url),
		FOREIGN KEY (script_name) REFERENCES scripts)`)
	return s
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	r, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return r
}

func TestCreateInsertSelect(t *testing.T) {
	s := newSession(t)
	r := mustExec(t, s, `INSERT INTO scripts (script_name, author, version, pct, archived)
		VALUES ('intro', 'Shih', 1, 10.5, TRUE), ('quiz', 'Ma', 2, 0, FALSE)`)
	if r.Affected != 2 {
		t.Fatalf("affected = %d", r.Affected)
	}
	r = mustExec(t, s, `SELECT script_name, version FROM scripts ORDER BY version DESC`)
	if len(r.Rows) != 2 || r.Rows[0][0] != "quiz" || r.Rows[0][1] != int64(2) {
		t.Fatalf("rows = %+v", r.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `INSERT INTO scripts (script_name) VALUES ('x')`)
	r := mustExec(t, s, `SELECT * FROM scripts`)
	if len(r.Columns) != 5 {
		t.Fatalf("columns = %v", r.Columns)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestWhereConjunction(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `INSERT INTO scripts (script_name, author, version) VALUES
		('a', 'Shih', 1), ('b', 'Shih', 2), ('c', 'Ma', 2)`)
	r := mustExec(t, s, `SELECT script_name FROM scripts WHERE author = 'Shih' AND version >= 2`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "b" {
		t.Fatalf("rows = %+v", r.Rows)
	}
}

func TestWhereOperators(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `INSERT INTO scripts (script_name, version) VALUES
		('a', 1), ('b', 2), ('c', 3), ('d', 4)`)
	cases := []struct {
		sql  string
		want int
	}{
		{`SELECT * FROM scripts WHERE version < 3`, 2},
		{`SELECT * FROM scripts WHERE version <= 3`, 3},
		{`SELECT * FROM scripts WHERE version > 3`, 1},
		{`SELECT * FROM scripts WHERE version != 2`, 3},
		{`SELECT * FROM scripts WHERE version <> 2`, 3},
		{`SELECT * FROM scripts WHERE script_name PREFIX 'a'`, 1},
		{`SELECT * FROM scripts WHERE script_name CONTAINS 'b'`, 1},
	}
	for _, c := range cases {
		r := mustExec(t, s, c.sql)
		if len(r.Rows) != c.want {
			t.Errorf("%s: %d rows, want %d", c.sql, len(r.Rows), c.want)
		}
	}
}

func TestUpdateAndDelete(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `INSERT INTO scripts (script_name, version) VALUES ('a', 1), ('b', 1)`)
	r := mustExec(t, s, `UPDATE scripts SET version = 9 WHERE script_name = 'a'`)
	if r.Affected != 1 {
		t.Fatalf("affected = %d", r.Affected)
	}
	r = mustExec(t, s, `SELECT version FROM scripts WHERE script_name = 'a'`)
	if r.Rows[0][0] != int64(9) {
		t.Fatalf("version = %v", r.Rows[0][0])
	}
	r = mustExec(t, s, `DELETE FROM scripts WHERE version = 1`)
	if r.Affected != 1 {
		t.Fatalf("delete affected = %d", r.Affected)
	}
	r = mustExec(t, s, `SELECT * FROM scripts`)
	if len(r.Rows) != 1 {
		t.Fatalf("remaining = %d", len(r.Rows))
	}
}

func TestInsertAtomicity(t *testing.T) {
	s := newSession(t)
	_, err := s.Exec(`INSERT INTO scripts (script_name) VALUES ('a'), ('a')`)
	if !errors.Is(err, relstore.ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
	r := mustExec(t, s, `SELECT * FROM scripts`)
	if len(r.Rows) != 0 {
		t.Fatal("partial insert leaked")
	}
}

func TestForeignKeyThroughSQL(t *testing.T) {
	s := newSession(t)
	_, err := s.Exec(`INSERT INTO impls (starting_url, script_name) VALUES ('u', 'ghost')`)
	if !errors.Is(err, relstore.ErrFK) {
		t.Fatalf("err = %v", err)
	}
	mustExec(t, s, `INSERT INTO scripts (script_name) VALUES ('real')`)
	mustExec(t, s, `INSERT INTO impls (starting_url, script_name) VALUES ('u', 'real')`)
	_, err = s.Exec(`DELETE FROM scripts WHERE script_name = 'real'`)
	if !errors.Is(err, relstore.ErrFK) {
		t.Fatalf("restrict err = %v", err)
	}
}

func TestShowTablesAndDescribe(t *testing.T) {
	s := newSession(t)
	r := mustExec(t, s, `SHOW TABLES`)
	if len(r.Rows) != 2 {
		t.Fatalf("tables = %v", r.Rows)
	}
	r = mustExec(t, s, `DESCRIBE impls`)
	if len(r.Rows) != 2 {
		t.Fatalf("describe rows = %v", r.Rows)
	}
	foundFK := false
	for _, row := range r.Rows {
		if strings.Contains(row[2].(string), "REFERENCES scripts") {
			foundFK = true
		}
	}
	if !foundFK {
		t.Error("DESCRIBE lost the foreign key")
	}
}

func TestCreateIndexStatement(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE INDEX ON scripts (author)`)
	mustExec(t, s, `INSERT INTO scripts (script_name, author) VALUES ('a', 'x'), ('b', 'x'), ('c', 'y')`)
	r := mustExec(t, s, `SELECT * FROM scripts WHERE author = 'x'`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestDropTable(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `DROP TABLE impls`)
	if _, err := s.Exec(`SELECT * FROM impls`); !errors.Is(err, relstore.ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestStringEscapes(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `INSERT INTO scripts (script_name, author) VALUES ('o''clock', 'a')`)
	r := mustExec(t, s, `SELECT author FROM scripts WHERE script_name = 'o''clock'`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestNullLiteral(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `INSERT INTO scripts (script_name, author) VALUES ('a', NULL)`)
	r := mustExec(t, s, `SELECT author FROM scripts WHERE script_name = 'a'`)
	if r.Rows[0][0] != nil {
		t.Fatalf("author = %v", r.Rows[0][0])
	}
}

func TestNegativeAndFloatLiterals(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `INSERT INTO scripts (script_name, version, pct) VALUES ('a', -3, 1.5e2)`)
	r := mustExec(t, s, `SELECT version, pct FROM scripts WHERE script_name = 'a'`)
	if r.Rows[0][0] != int64(-3) || r.Rows[0][1] != 150.0 {
		t.Fatalf("row = %v", r.Rows[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELEKT * FROM t`,
		`SELECT FROM t`,
		`SELECT * FROM`,
		`INSERT INTO t VALUES (1)`,
		`INSERT INTO t (a) VALUES (1, 2)`,
		`CREATE TABLE t (a WIBBLE, PRIMARY KEY (a))`,
		`SELECT * FROM t WHERE a ** 1`,
		`SELECT * FROM t LIMIT x`,
		`SELECT * FROM t; garbage`,
		`UPDATE t SET WHERE a = 1`,
		`'unterminated`,
		`SELECT * FROM t WHERE a = @`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse(`SELECT * FROM t WHERE a ** 1`)
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v", err, err)
	}
	if pe.Pos <= 0 {
		t.Errorf("pos = %d, want > 0", pe.Pos)
	}
}

func TestFormatTable(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `INSERT INTO scripts (script_name, version) VALUES ('a', 1)`)
	r := mustExec(t, s, `SELECT script_name, version FROM scripts`)
	out := r.Format()
	if !strings.Contains(out, "script_name") || !strings.Contains(out, "(1 rows)") {
		t.Errorf("Format output:\n%s", out)
	}
	r = mustExec(t, s, `UPDATE scripts SET version = 2 WHERE script_name = 'a'`)
	if !strings.Contains(r.Format(), "1 row(s) affected") {
		t.Errorf("affected format: %q", r.Format())
	}
}

func TestUpdateWithoutWhereTouchesAll(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `INSERT INTO scripts (script_name, version) VALUES ('a', 1), ('b', 2)`)
	r := mustExec(t, s, `UPDATE scripts SET version = 0`)
	if r.Affected != 2 {
		t.Fatalf("affected = %d", r.Affected)
	}
}

func TestMultiRowInsertThenAggregateScan(t *testing.T) {
	s := newSession(t)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO scripts (script_name, version) VALUES `)
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(`('s` + string(rune('0'+i/10%10)) + string(rune('0'+i%10)) + `', 1)`)
	}
	mustExec(t, s, sb.String())
	r := mustExec(t, s, `SELECT * FROM scripts LIMIT 7`)
	if len(r.Rows) != 7 {
		t.Fatalf("limit rows = %d", len(r.Rows))
	}
}

func TestCountStar(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `INSERT INTO scripts (script_name, version) VALUES ('a', 1), ('b', 2), ('c', 2)`)
	r := mustExec(t, s, `SELECT COUNT(*) FROM scripts`)
	if len(r.Rows) != 1 || r.Rows[0][0] != int64(3) {
		t.Fatalf("count = %+v", r.Rows)
	}
	r = mustExec(t, s, `SELECT COUNT(*) FROM scripts WHERE version = 2`)
	if r.Rows[0][0] != int64(2) {
		t.Fatalf("filtered count = %+v", r.Rows)
	}
	if r.Columns[0] != "count" {
		t.Errorf("columns = %v", r.Columns)
	}
	// COUNT on an empty result.
	r = mustExec(t, s, `SELECT COUNT(*) FROM scripts WHERE version = 99`)
	if r.Rows[0][0] != int64(0) {
		t.Fatalf("empty count = %+v", r.Rows)
	}
	// Malformed COUNT forms fail to parse.
	for _, bad := range []string{
		`SELECT COUNT(* FROM scripts`,
		`SELECT COUNT * ) FROM scripts`,
		`SELECT COUNT() FROM scripts`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestIsNullOperators(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `INSERT INTO scripts (script_name, author) VALUES ('a', NULL), ('b', 'Ma'), ('c', NULL)`)
	r := mustExec(t, s, `SELECT script_name FROM scripts WHERE author IS NULL`)
	if len(r.Rows) != 2 {
		t.Fatalf("IS NULL rows = %+v", r.Rows)
	}
	r = mustExec(t, s, `SELECT script_name FROM scripts WHERE author IS NOT NULL`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "b" {
		t.Fatalf("IS NOT NULL rows = %+v", r.Rows)
	}
	// Combined with another conjunct.
	r = mustExec(t, s, `SELECT script_name FROM scripts WHERE author IS NULL AND script_name PREFIX 'c'`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "c" {
		t.Fatalf("combined rows = %+v", r.Rows)
	}
	// IS NULL last in a conjunction.
	r = mustExec(t, s, `SELECT script_name FROM scripts WHERE script_name PREFIX 'a' AND author IS NULL`)
	if len(r.Rows) != 1 {
		t.Fatalf("trailing IS NULL rows = %+v", r.Rows)
	}
	for _, bad := range []string{
		`SELECT * FROM scripts WHERE author IS`,
		`SELECT * FROM scripts WHERE author IS NOT`,
		`SELECT * FROM scripts WHERE author IS MISSING`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestCreateOrderedIndexStatement(t *testing.T) {
	s := newSession(t)
	r := mustExec(t, s, `CREATE ORDERED INDEX ON scripts (version)`)
	if !strings.Contains(r.Msg, "ordered index") {
		t.Fatalf("msg = %q", r.Msg)
	}
	mustExec(t, s, `INSERT INTO scripts (script_name, version) VALUES
		('a', 1), ('b', 5), ('c', 9), ('d', 3)`)
	r = mustExec(t, s, `SELECT script_name FROM scripts WHERE version >= 4 ORDER BY script_name`)
	if len(r.Rows) != 2 || r.Rows[0][0] != "b" || r.Rows[1][0] != "c" {
		t.Fatalf("rows = %+v", r.Rows)
	}
	if _, err := Parse(`CREATE ORDERED TABLE t (a INT, PRIMARY KEY (a))`); err == nil {
		t.Error("CREATE ORDERED TABLE should fail")
	}
}
