package minisql

import (
	"strconv"
	"strings"

	"repro/internal/relstore"
)

// Statement is the parsed form of one SQL statement.
type Statement interface{ stmtNode() }

// CreateTableStmt mirrors relstore.Schema.
type CreateTableStmt struct {
	Schema relstore.Schema
}

// CreateIndexStmt adds a secondary index; Ordered selects a range
// (ordered) index instead of the default hash index.
type CreateIndexStmt struct {
	Table   string
	Column  string
	Ordered bool
}

// DropTableStmt removes a table.
type DropTableStmt struct {
	Table string
}

// InsertStmt adds one or more rows.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]any
}

// SelectStmt is a single-table selection. CountStar selects the
// aggregate row count instead of columns.
type SelectStmt struct {
	Table     string
	Columns   []string // nil means *
	CountStar bool
	Where     []relstore.Cond
	OrderBy   string
	Desc      bool
	Limit     int
}

// UpdateStmt merges column assignments into matching rows.
type UpdateStmt struct {
	Table string
	Set   map[string]any
	Where []relstore.Cond
}

// DeleteStmt removes matching rows.
type DeleteStmt struct {
	Table string
	Where []relstore.Cond
}

// ShowTablesStmt lists relations.
type ShowTablesStmt struct{}

// DescribeStmt reports a table's schema.
type DescribeStmt struct {
	Table string
}

func (*CreateTableStmt) stmtNode() {}
func (*CreateIndexStmt) stmtNode() {}
func (*DropTableStmt) stmtNode()   {}
func (*InsertStmt) stmtNode()      {}
func (*SelectStmt) stmtNode()      {}
func (*UpdateStmt) stmtNode()      {}
func (*DeleteStmt) stmtNode()      {}
func (*ShowTablesStmt) stmtNode()  {}
func (*DescribeStmt) stmtNode()    {}

type parser struct {
	toks []token
	i    int
}

// Parse turns one SQL statement into its AST. A trailing semicolon is
// allowed.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if p.cur().kind != tokEOF {
		return nil, errf(p.cur().pos, "unexpected trailing input %q", p.cur().text)
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) accept(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	if kind == tokIdent && !strings.EqualFold(t.text, text) {
		return false
	}
	if kind == tokPunct && t.text != text {
		return false
	}
	p.i++
	return true
}

func (p *parser) expectKeyword(kw string) error {
	if !p.accept(tokIdent, kw) {
		return errf(p.cur().pos, "expected %s, found %q", strings.ToUpper(kw), p.cur().text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	if !p.accept(tokPunct, s) {
		return errf(p.cur().pos, "expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", errf(t.pos, "expected identifier, found %q", t.text)
	}
	p.i++
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	t := p.cur()
	switch {
	case isKeyword(t, "CREATE"):
		p.i++
		if isKeyword(p.cur(), "TABLE") {
			p.i++
			return p.createTable()
		}
		if isKeyword(p.cur(), "INDEX") {
			p.i++
			return p.createIndex(false)
		}
		if isKeyword(p.cur(), "ORDERED") {
			p.i++
			if err := p.expectKeyword("INDEX"); err != nil {
				return nil, err
			}
			return p.createIndex(true)
		}
		return nil, errf(p.cur().pos, "expected TABLE, INDEX or ORDERED INDEX after CREATE")
	case isKeyword(t, "DROP"):
		p.i++
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Table: name}, nil
	case isKeyword(t, "INSERT"):
		p.i++
		return p.insert()
	case isKeyword(t, "SELECT"):
		p.i++
		return p.selectStmt()
	case isKeyword(t, "UPDATE"):
		p.i++
		return p.update()
	case isKeyword(t, "DELETE"):
		p.i++
		return p.deleteStmt()
	case isKeyword(t, "SHOW"):
		p.i++
		if err := p.expectKeyword("TABLES"); err != nil {
			return nil, err
		}
		return &ShowTablesStmt{}, nil
	case isKeyword(t, "DESCRIBE"):
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DescribeStmt{Table: name}, nil
	default:
		return nil, errf(t.pos, "unknown statement %q", t.text)
	}
}

// createTable parses:
//
//	CREATE TABLE t (col TYPE [NOT NULL], ...,
//	                PRIMARY KEY (col),
//	                [FOREIGN KEY (col) REFERENCES other, ...])
func (p *parser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	s := relstore.Schema{Name: name}
	for {
		switch {
		case isKeyword(p.cur(), "PRIMARY"):
			p.i++
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			s.Key = col
		case isKeyword(p.cur(), "FOREIGN"):
			p.i++
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("REFERENCES"); err != nil {
				return nil, err
			}
			ref, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.ForeignKeys = append(s.ForeignKeys, relstore.ForeignKey{Column: col, RefTable: ref})
		default:
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			typTok := p.cur()
			typName, err := p.ident()
			if err != nil {
				return nil, err
			}
			ct, err := relstore.ParseColType(strings.ToUpper(typName))
			if err != nil {
				return nil, errf(typTok.pos, "%v", err)
			}
			c := relstore.Column{Name: col, Type: ct}
			if isKeyword(p.cur(), "NOT") {
				p.i++
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				c.NotNull = true
			}
			s.Columns = append(s.Columns, c)
		}
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Schema: s}, nil
}

// createIndex parses: CREATE [ORDERED] INDEX ON t (col)
func (p *parser) createIndex(ordered bool) (Statement, error) {
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Table: table, Column: col, Ordered: ordered}, nil
}

// insert parses: INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')
func (p *parser) insert() (Statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]any
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var vals []any
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if len(vals) != len(cols) {
			return nil, errf(p.cur().pos, "row has %d values for %d columns", len(vals), len(cols))
		}
		rows = append(rows, vals)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	return &InsertStmt{Table: table, Columns: cols, Rows: rows}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	st := &SelectStmt{}
	if p.accept(tokPunct, "*") {
		st.Columns = nil
	} else if isKeyword(p.cur(), "COUNT") {
		p.i++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectPunct("*"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		st.CountStar = true
	} else {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if isKeyword(p.cur(), "WHERE") {
		p.i++
		conds, err := p.whereConds()
		if err != nil {
			return nil, err
		}
		st.Where = conds
	}
	if isKeyword(p.cur(), "ORDER") {
		p.i++
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.OrderBy = col
		if isKeyword(p.cur(), "DESC") {
			p.i++
			st.Desc = true
		} else if isKeyword(p.cur(), "ASC") {
			p.i++
		}
	}
	if isKeyword(p.cur(), "LIMIT") {
		p.i++
		t := p.cur()
		if t.kind != tokNumber {
			return nil, errf(t.pos, "expected number after LIMIT")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errf(t.pos, "bad LIMIT %q", t.text)
		}
		p.i++
		st.Limit = n
	}
	return st, nil
}

func (p *parser) update() (Statement, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	set := make(map[string]any)
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		set[col] = v
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	st := &UpdateStmt{Table: table, Set: set}
	if isKeyword(p.cur(), "WHERE") {
		p.i++
		conds, err := p.whereConds()
		if err != nil {
			return nil, err
		}
		st.Where = conds
	}
	return st, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if isKeyword(p.cur(), "WHERE") {
		p.i++
		conds, err := p.whereConds()
		if err != nil {
			return nil, err
		}
		st.Where = conds
	}
	return st, nil
}

// whereConds parses: col OP literal [AND col OP literal ...]
func (p *parser) whereConds() ([]relstore.Cond, error) {
	var conds []relstore.Cond
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		opTok := p.cur()
		var op relstore.CmpOp
		switch {
		case p.accept(tokPunct, "="):
			op = relstore.OpEq
		case p.accept(tokPunct, "!="), p.accept(tokPunct, "<>"):
			op = relstore.OpNe
		case p.accept(tokPunct, "<="):
			op = relstore.OpLe
		case p.accept(tokPunct, ">="):
			op = relstore.OpGe
		case p.accept(tokPunct, "<"):
			op = relstore.OpLt
		case p.accept(tokPunct, ">"):
			op = relstore.OpGt
		case isKeyword(opTok, "CONTAINS"):
			p.i++
			op = relstore.OpContains
		case isKeyword(opTok, "PREFIX"):
			p.i++
			op = relstore.OpPrefix
		case isKeyword(opTok, "IS"):
			p.i++
			if isKeyword(p.cur(), "NOT") {
				p.i++
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				conds = append(conds, relstore.Cond{Col: col, Op: relstore.OpNotNull})
			} else {
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				conds = append(conds, relstore.Cond{Col: col, Op: relstore.OpIsNull})
			}
			if isKeyword(p.cur(), "AND") {
				p.i++
				continue
			}
			return conds, nil
		default:
			return nil, errf(opTok.pos, "expected comparison operator, found %q", opTok.text)
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		conds = append(conds, relstore.Cond{Col: col, Op: op, Val: v})
		if isKeyword(p.cur(), "AND") {
			p.i++
			continue
		}
		break
	}
	return conds, nil
}

// literal parses a number, string, TRUE/FALSE or NULL token.
func (p *parser) literal() (any, error) {
	t := p.cur()
	switch {
	case t.kind == tokString:
		p.i++
		return t.text, nil
	case t.kind == tokNumber:
		p.i++
		if !strings.ContainsAny(t.text, ".eE") {
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return n, nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.pos, "bad number %q", t.text)
		}
		return f, nil
	case isKeyword(t, "TRUE"):
		p.i++
		return true, nil
	case isKeyword(t, "FALSE"):
		p.i++
		return false, nil
	case isKeyword(t, "NULL"):
		p.i++
		return nil, nil
	default:
		return nil, errf(t.pos, "expected literal, found %q", t.text)
	}
}
