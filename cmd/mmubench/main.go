// Command mmubench regenerates the evaluation tables (E1–E11 in
// DESIGN.md) of the distributed Web document database reproduction.
//
// Usage:
//
//	mmubench              # run every experiment at full scale
//	mmubench -e e4        # run one experiment (e1..e11)
//	mmubench -scale small # the fast sizes used by the unit tests
//	mmubench -e e8 -json  # emit the table(s) as JSON for scripts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("e", "", "experiment id (e1..e11); empty runs all")
		scale   = flag.String("scale", "full", "experiment scale: small or full")
		jsonOut = flag.Bool("json", false, "print tables as indented JSON instead of text")
	)
	flag.Parse()

	sc := experiments.Full
	switch *scale {
	case "full":
	case "small":
		sc = experiments.Small
	default:
		fmt.Fprintf(os.Stderr, "mmubench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *exp != "" {
		run, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mmubench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		table, err := run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmubench: %v\n", err)
			os.Exit(1)
		}
		output([]*experiments.Table{table}, *jsonOut)
		return
	}

	tables, err := experiments.All(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmubench: %v\n", err)
		os.Exit(1)
	}
	output(tables, *jsonOut)
}

// output renders tables as text or, with -json, as one JSON array —
// the machine-readable surface shared with webdocctl -json.
func output(tables []*experiments.Table, jsonOut bool) {
	if !jsonOut {
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tables); err != nil {
		fmt.Fprintf(os.Stderr, "mmubench: %v\n", err)
		os.Exit(1)
	}
}
