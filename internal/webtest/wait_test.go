package webtest

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestPollReturnsOnCondition(t *testing.T) {
	var n atomic.Int64
	start := time.Now()
	ok := Poll(5*time.Second, func() bool { return n.Add(1) >= 3 })
	if !ok {
		t.Fatal("Poll gave up before the condition held")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("Poll took %v for a near-immediate condition", d)
	}
}

func TestPollTimesOut(t *testing.T) {
	start := time.Now()
	if Poll(30*time.Millisecond, func() bool { return false }) {
		t.Fatal("Poll reported success on a never-true condition")
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("Poll gave up after only %v", d)
	}
}

func TestEventuallyPasses(t *testing.T) {
	hit := false
	Eventually(t, time.Second, "flag flip", func() bool {
		hit = true
		return true
	})
	if !hit {
		t.Fatal("condition never ran")
	}
}
