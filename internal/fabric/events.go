package fabric

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// Fabric-wide event collection. Every station keeps a bounded journal
// of structured fault-path events (internal/obs EventRing); answering
// "what did station 7 see before it went down?" means asking every
// live station for its matching events and merging them into one
// timeline. The collection reuses the trace/search scatter-gather
// shape exactly: a client entry is forwarded to the root, which stamps
// the topology and scatters down the distribution tree, each hop
// contributing its filtered local journal and relaying to its children
// with the shared grafting rule. Collection is read-only and
// idempotent, so — like trace and search — even timed-out hops are
// safe to graft around: a re-covered subtree at worst re-returns
// events the root deduplicates by (Station, Seq).
//
// Like trace collection, the Events RPC is deliberately untraced:
// polling the journal (webdocctl events -follow) must not write spans
// into the rings beside it.

// EventsRequest asks for the journal events passing Filter. Client
// entries leave Scatter false; scatter hops carry the epoch-numbered
// roster like every other tree RPC. The filter's SinceSeq cursor is
// applied per station: each station's journal has its own monotonic
// sequence, so a poller resuming from the max Seq it saw may re-see
// events from stations that were already past that number — the
// (Station, Seq) identity makes re-seen events droppable client-side.
type EventsRequest struct {
	Filter    obs.EventFilter
	Scatter   bool
	M         int
	N         int
	Watermark int
	Epoch     int
	Roster    map[int]string
	Down      map[int]bool
}

// EventsReply aggregates a subtree's matching events, plus one result
// entry per station covered (Err set for dead hops).
type EventsReply struct {
	Events   []obs.Event
	Stations []StationResult
}

// Events collects the fabric-wide event timeline matching the filter
// from this station: forwarded to the root, which scatters the
// collection over the distribution tree.
func (s *Station) Events(f obs.EventFilter) (*EventsReply, error) {
	v := s.view()
	if v.pos == 0 {
		return nil, ErrNotJoined
	}
	if v.isRoot {
		reply := s.scatterEvents(v, f)
		return &reply, nil
	}
	rootAddr := v.roster[1]
	if rootAddr == "" {
		return nil, fmt.Errorf("fabric: no root address in roster")
	}
	var reply EventsReply
	//lint:ignore tracecall event collection is deliberately untraced so polling the journal never writes spans into the rings beside it (see scatterEvents)
	if err := s.pool(rootAddr).Call(methodEvents, EventsRequest{Filter: f}, &reply); err != nil {
		return nil, fmt.Errorf("fabric: forwarding event collection to root: %w", err)
	}
	return &reply, nil
}

// handleEvents serves both roles of the collection RPC: a client entry
// is forwarded via Station.Events's protocol, a scatter hop folds the
// carried topology in and gathers its subtree.
func (s *Station) handleEvents(decode func(any) error) (any, error) {
	var req EventsRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	if !req.Scatter {
		reply, err := s.Events(req.Filter)
		if err != nil {
			return nil, err
		}
		return *reply, nil
	}
	s.mu.Lock()
	s.applyTopology(req.M, req.N, req.Watermark, req.Epoch, req.Roster, req.Down)
	pos := s.pos
	s.mu.Unlock()
	if pos == 0 {
		return nil, ErrNotJoined
	}
	return s.gatherEventsSubtree(pos, req), nil
}

// scatterEvents runs the root's side of a collection: stamp the
// topology into the scatter request, gather the whole tree and put the
// merged timeline in wire order (events by time, stations by
// position).
func (s *Station) scatterEvents(v view, f obs.EventFilter) EventsReply {
	req := EventsRequest{
		Filter: f, Scatter: true,
		M: v.m, N: v.n, Watermark: v.watermark,
		Epoch: v.epoch, Roster: v.roster, Down: v.down,
	}
	reply := s.gatherEventsSubtree(v.pos, req)
	reply.Events = dedupeEvents(reply.Events)
	obs.SortEvents(reply.Events)
	sortResults(reply.Stations)
	return reply
}

// dedupeEvents drops repeated (Station, Seq) pairs: a grafted or
// retried collection hop may cover a subtree twice, and the journal
// contents it re-reads are identical.
func dedupeEvents(events []obs.Event) []obs.Event {
	type key struct {
		station int
		seq     uint64
	}
	seen := make(map[key]bool, len(events))
	out := events[:0]
	for _, e := range events {
		k := key{e.Station, e.Seq}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}

// gatherEventsSubtree answers for one station and everything below it:
// the local journal's matching events plus the children's, collected
// through the repairing fan-out. A gather is bounded by the journals
// themselves — each station contributes at most its ring capacity.
func (s *Station) gatherEventsSubtree(pos int, req EventsRequest) EventsReply {
	local := s.observer().Events(req.Filter)
	agg := s.eventsFanOut(pos, req)
	return EventsReply{
		Events:   append(local, agg.Events...),
		Stations: append([]StationResult{{Pos: pos}}, agg.Stations...),
	}
}

// eventsFanOut relays the collection to every child subtree. Like
// trace and search (and unlike pushes), timed-out children are grafted
// around too: the read is idempotent, and a wedged station must not
// hold a post-incident query hostage. The fan-out itself runs
// unspanned — see the package comment above.
func (s *Station) eventsFanOut(pos int, req EventsRequest) treeAgg {
	return s.fanOutTree(nil, pos, req.M, req.N, req.Roster, transport.Unreachable, func(addr string) (treeAgg, error) {
		var reply EventsReply
		if err := s.callEventsCollect(addr, req, &reply); err != nil {
			return treeAgg{}, err
		}
		return treeAgg{Stations: reply.Stations, Events: reply.Events}, nil
	})
}

// callEventsCollect is callWithRetry with the search rules: the short
// per-hop timeout and retries for every unreachable classification.
func (s *Station) callEventsCollect(addr string, req EventsRequest, reply *EventsReply) error {
	var err error
	for attempt := 0; attempt < pushAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(pushRetryDelay)
		}
		//lint:ignore tracecall event collection is deliberately untraced so polling the journal never writes spans into the rings beside it (see scatterEvents)
		err = s.pool(addr).CallWithTimeout(methodEvents, req, reply, searchCallTimeout)
		if err == nil || !transport.Unreachable(err) {
			return err
		}
	}
	return err
}
