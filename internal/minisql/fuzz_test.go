package minisql

import (
	"errors"
	"testing"
)

// FuzzParse drives the lexer and parser with arbitrary statement text:
// any input may be rejected with an error, but none may panic, hang,
// or return a nil statement without an error. The seed corpus covers
// every statement form the dialect accepts plus the classic breakage
// shapes (unterminated strings, stray punctuation, huge numbers).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM scripts",
		"SELECT name, author FROM scripts WHERE author = 'shih' ORDER BY name LIMIT 3",
		"SELECT res_id FROM impl_media WHERE size >= 1024 AND size < 1048576",
		"CREATE TABLE t (id INT PRIMARY KEY, name CHAR(40) NOT NULL, size INT)",
		"CREATE INDEX idx_name ON t (name)",
		"CREATE ORDERED INDEX idx_size ON t (size)",
		"DROP TABLE t",
		"INSERT INTO t (id, name) VALUES (1, 'lecture''s notes')",
		"UPDATE t SET name = 'x', size = 2 WHERE id = 1",
		"DELETE FROM t WHERE id != 7",
		"SHOW TABLES",
		"DESCRIBE scripts",
		"select lower from mixed_Case where a <> b",
		"",
		"   ",
		";",
		"SELECT",
		"SELECT * FROM",
		"INSERT INTO t VALUES",
		"'unterminated",
		"SELECT * FROM t WHERE a = 'it''s'",
		"SELECT * FROM t LIMIT 99999999999999999999",
		"CREATE TABLE ((((",
		"DROP TABLE t; DROP TABLE u",
		"SELECT \x00 FROM t",
		"ＳＥＬＥＣＴ * ＦＲＯＭ t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned neither a statement nor an error", src)
		}
		if err != nil {
			var perr *Error
			if !errors.As(err, &perr) {
				t.Fatalf("Parse(%q) returned a non-positional error: %v", src, err)
			}
		}
	})
}
