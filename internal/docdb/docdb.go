// Package docdb implements the Web document database of the paper on top
// of the relational engine (relstore) and the BLOB layer (blob): the
// document-layer objects of section 3 (scripts, implementations, test
// records, bug reports, annotations, HTML and program files), the
// software-configuration-management check-in/check-out of course
// components, and the class / instance / reference object forms with
// prototype-based reuse described in section 4.
package docdb

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/blob"
	"repro/internal/relstore"
	"repro/internal/schema"
)

// Store errors.
var (
	ErrCheckedOut    = errors.New("docdb: object is already checked out")
	ErrNotCheckedOut = errors.New("docdb: object is not checked out")
	ErrWrongForm     = errors.New("docdb: object has the wrong form for this operation")
	ErrNotResident   = errors.New("docdb: document content is not resident on this station")
)

// Store is one workstation's Web document database.
type Store struct {
	rel   *relstore.DB
	blobs *blob.Store
	seq   atomic.Uint64

	// idx holds the attached ContentIndex (nil until SetContentIndex).
	idx atomic.Value

	// durDir is the durability directory Recover attached ("" for an
	// in-memory store); set once at startup, before the store serves.
	durDir string

	// Now supplies timestamps; replace it in tests for determinism.
	Now func() time.Time
}

// ContentIndex is the full-text hook surface a station's search index
// (internal/search) implements. The store notifies it after every
// committed content write — PutHTML/PutProgram, bundle and reference
// imports, the structure copies behind Instantiate, and the drops
// behind migration and deletes — and couples it into the checkpoint
// protocol: CaptureCheckpoint runs inside the write-quiescent window
// (the bytes land as a search-<gen> sidecar after the snapshot
// installs) and RecoverCheckpoint runs after a relational recovery
// with whatever sidecar survived, so the index either restores or
// rebuilds from the tables. The methods must be safe for concurrent
// use; the index is a cache and must never fail a write.
type ContentIndex interface {
	IndexHTML(url, path string, content []byte)
	IndexProgram(url, path, language string, content []byte)
	IndexScript(name, description, author string, keywords []string)
	RemoveContent(url string)
	RemoveScript(name string)
	// CaptureCheckpoint snapshots the index cheaply (the call runs
	// inside the write-quiescent window, so it must not stall writers
	// longer than a map copy); the returned closure serializes the
	// captured state and is invoked after the window closes.
	CaptureCheckpoint() func() ([]byte, error)
	RecoverCheckpoint(sidecar []byte, rel *relstore.DB, tailApplied int) error
}

// SetContentIndex attaches the station's content index. Attach once,
// before the store serves traffic and before Recover (so recovery can
// restore the index beside the rows).
func (s *Store) SetContentIndex(ix ContentIndex) error {
	if ix == nil {
		return errors.New("docdb: nil content index")
	}
	if !s.idx.CompareAndSwap(nil, ix) {
		return errors.New("docdb: content index already attached")
	}
	return nil
}

// ContentIndex returns the attached content index, nil when none.
func (s *Store) ContentIndex() ContentIndex {
	ix, _ := s.idx.Load().(ContentIndex)
	return ix
}

// noteScript tells the index about a created (or imported) script.
// Call it from a CommitThen/ApplyThen hook, so the indexing is atomic
// with the commit.
func (s *Store) noteScript(sc Script) {
	if ix := s.ContentIndex(); ix != nil {
		ix.IndexScript(sc.Name, sc.Description, sc.Author, sc.Keywords)
	}
}

// Open wires a document store over a relational engine and a BLOB
// store, installing the schema when the engine is empty.
func Open(rel *relstore.DB, blobs *blob.Store) (*Store, error) {
	installed := false
	for _, t := range rel.Tables() {
		if t == schema.TableScripts {
			installed = true
			break
		}
	}
	if !installed {
		if err := schema.Create(rel); err != nil {
			return nil, err
		}
	}
	return &Store{rel: rel, blobs: blobs, Now: time.Now}, nil
}

// Rel exposes the underlying relational engine (for the SQL front end).
func (s *Store) Rel() *relstore.DB { return s.rel }

// Blobs exposes the underlying BLOB store.
func (s *Store) Blobs() *blob.Store { return s.blobs }

// nextID generates a process-unique identifier with a kind prefix.
func (s *Store) nextID(prefix string) string {
	return fmt.Sprintf("%s-%06d", prefix, s.seq.Add(1))
}

// NewID generates a store-unique identifier with the given prefix, for
// subsystems (like the virtual library) that keep their own rows in the
// shared tables.
func (s *Store) NewID(prefix string) string { return s.nextID(prefix) }

// SyncIDs advances the ID counter past every generated identifier
// already present in the engine. Call it after restoring state from a
// WAL or snapshot, where the rows survive but the process-local counter
// restarts at zero; without it freshly generated IDs collide with
// restored primary keys.
func (s *Store) SyncIDs() error {
	var max uint64
	for table, pkCol := range map[string]string{
		schema.TableCheckouts:   "co_id",
		schema.TableVersions:    "ver_id",
		schema.TableImplMedia:   "res_id",
		schema.TableScriptMedia: "res_id",
		schema.TableDocObjects:  "obj_id",
	} {
		err := s.rel.Scan(table, func(r relstore.Row) bool {
			id := rowString(r, pkCol)
			if i := strings.LastIndexByte(id, '-'); i >= 0 {
				if n, err := strconv.ParseUint(id[i+1:], 10, 64); err == nil && n > max {
					max = n
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	for {
		cur := s.seq.Load()
		if cur >= max || s.seq.CompareAndSwap(cur, max) {
			return nil
		}
	}
}

// Database is a Database-layer object.
type Database struct {
	Name     string
	Keywords []string
	Author   string
	Version  int64
	Created  time.Time
}

// CreateDatabase registers a new course database.
func (s *Store) CreateDatabase(d Database) error {
	if d.Version == 0 {
		d.Version = 1
	}
	return s.rel.Insert(schema.TableDatabases, relstore.Row{
		"db_name":  d.Name,
		"keywords": schema.JoinList(d.Keywords),
		"author":   d.Author,
		"version":  d.Version,
		"created":  s.Now(),
	})
}

// Database fetches a Database-layer object.
func (s *Store) Database(name string) (Database, error) {
	row, err := s.rel.Get(schema.TableDatabases, name)
	if err != nil {
		return Database{}, err
	}
	return Database{
		Name:     rowString(row, "db_name"),
		Keywords: schema.SplitList(rowString(row, "keywords")),
		Author:   rowString(row, "author"),
		Version:  rowInt(row, "version"),
		Created:  rowTime(row, "created"),
	}, nil
}

// Script is a Script-table object: the specification of one Web
// document (course material or quiz).
type Script struct {
	Name               string
	DBName             string
	Keywords           []string
	Author             string
	Version            int64
	Created            time.Time
	Description        string
	ExpectedCompletion time.Time
	PctComplete        float64
}

// CreateScript stores a new script under its database.
func (s *Store) CreateScript(sc Script) error {
	if sc.Version == 0 {
		sc.Version = 1
	}
	row := relstore.Row{
		"script_name":  sc.Name,
		"db_name":      sc.DBName,
		"keywords":     schema.JoinList(sc.Keywords),
		"author":       sc.Author,
		"version":      sc.Version,
		"created":      s.Now(),
		"description":  sc.Description,
		"pct_complete": sc.PctComplete,
	}
	if !sc.ExpectedCompletion.IsZero() {
		row["expected_completion"] = sc.ExpectedCompletion
	}
	// One-row batch for the commit-atomic index hook (see PutHTML).
	var b relstore.Batch
	b.Insert(schema.TableScripts, row)
	return s.rel.ApplyThen(&b, func() { s.noteScript(sc) })
}

// Script fetches one script by name.
func (s *Store) Script(name string) (Script, error) {
	row, err := s.rel.Get(schema.TableScripts, name)
	if err != nil {
		return Script{}, err
	}
	return scriptFromRow(row), nil
}

func scriptFromRow(row relstore.Row) Script {
	return Script{
		Name:               rowString(row, "script_name"),
		DBName:             rowString(row, "db_name"),
		Keywords:           schema.SplitList(rowString(row, "keywords")),
		Author:             rowString(row, "author"),
		Version:            rowInt(row, "version"),
		Created:            rowTime(row, "created"),
		Description:        rowString(row, "description"),
		ExpectedCompletion: rowTime(row, "expected_completion"),
		PctComplete:        rowFloat(row, "pct_complete"),
	}
}

// Scripts lists the scripts of a database in name order.
func (s *Store) Scripts(dbName string) ([]Script, error) {
	rows, err := s.rel.Lookup(schema.TableScripts, "db_name", dbName)
	if err != nil {
		return nil, err
	}
	out := make([]Script, len(rows))
	for i, r := range rows {
		out[i] = scriptFromRow(r)
	}
	return out, nil
}

// SetProgress updates the percentage-of-completion status attribute.
func (s *Store) SetProgress(scriptName string, pct float64) error {
	return s.rel.Update(schema.TableScripts, scriptName, relstore.Row{"pct_complete": pct})
}

// Implementation is an Implementation-table object: one try of
// implementing a script, identified by its starting URL.
type Implementation struct {
	StartingURL string
	ScriptName  string
	Author      string
	Created     time.Time
}

// AddImplementation stores a new implementation of a script.
func (s *Store) AddImplementation(im Implementation) error {
	return s.rel.Insert(schema.TableImpls, relstore.Row{
		"starting_url": im.StartingURL,
		"script_name":  im.ScriptName,
		"author":       im.Author,
		"created":      s.Now(),
	})
}

// Implementation fetches one implementation by starting URL.
func (s *Store) Implementation(url string) (Implementation, error) {
	row, err := s.rel.Get(schema.TableImpls, url)
	if err != nil {
		return Implementation{}, err
	}
	return Implementation{
		StartingURL: rowString(row, "starting_url"),
		ScriptName:  rowString(row, "script_name"),
		Author:      rowString(row, "author"),
		Created:     rowTime(row, "created"),
	}, nil
}

// Implementations lists the tries recorded for a script.
func (s *Store) Implementations(scriptName string) ([]Implementation, error) {
	rows, err := s.rel.Lookup(schema.TableImpls, "script_name", scriptName)
	if err != nil {
		return nil, err
	}
	out := make([]Implementation, len(rows))
	for i, r := range rows {
		out[i] = Implementation{
			StartingURL: rowString(r, "starting_url"),
			ScriptName:  rowString(r, "script_name"),
			Author:      rowString(r, "author"),
			Created:     rowTime(r, "created"),
		}
	}
	return out, nil
}

// File is an HTML or program file belonging to an implementation.
type File struct {
	ID          string
	StartingURL string
	Path        string
	Language    string // program files only
	Content     []byte
}

func fileID(url, path string) string { return url + "#" + path }

// queueHTML appends an insert-or-replace of one HTML file row to the
// batch; it is the single place the html_files row shape lives.
func (s *Store) queueHTML(b *relstore.Batch, url, path string, content []byte) {
	id := fileID(url, path)
	if s.rel.Exists(schema.TableHTMLFiles, id) {
		b.Update(schema.TableHTMLFiles, id, relstore.Row{"content": content})
		return
	}
	b.Insert(schema.TableHTMLFiles, relstore.Row{
		"file_id":      id,
		"starting_url": url,
		"path":         path,
		"content":      content,
	})
}

// queueProgram is queueHTML's counterpart for program files.
func (s *Store) queueProgram(b *relstore.Batch, url, path, language string, content []byte) {
	id := fileID(url, path)
	if s.rel.Exists(schema.TableProgFiles, id) {
		b.Update(schema.TableProgFiles, id, relstore.Row{"content": content, "language": language})
		return
	}
	b.Insert(schema.TableProgFiles, relstore.Row{
		"file_id":      id,
		"starting_url": url,
		"path":         path,
		"language":     language,
		"content":      content,
	})
}

// PutHTML stores (or replaces) an HTML file of an implementation. The
// content-index hook runs inside the commit (before the file tables'
// locks release), so a checkpoint can never capture the index between
// a committed write and its indexing.
func (s *Store) PutHTML(url, path string, content []byte) error {
	var b relstore.Batch
	s.queueHTML(&b, url, path, content)
	return s.rel.ApplyThen(&b, func() {
		if ix := s.ContentIndex(); ix != nil {
			ix.IndexHTML(url, path, content)
		}
	})
}

// HTML fetches the content of one HTML file.
func (s *Store) HTML(url, path string) ([]byte, error) {
	row, err := s.rel.Get(schema.TableHTMLFiles, fileID(url, path))
	if err != nil {
		return nil, err
	}
	b, _ := row["content"].([]byte)
	return b, nil
}

// HTMLFiles lists the HTML files of an implementation in path order.
func (s *Store) HTMLFiles(url string) ([]File, error) {
	rows, err := s.rel.Lookup(schema.TableHTMLFiles, "starting_url", url)
	if err != nil {
		return nil, err
	}
	out := make([]File, len(rows))
	for i, r := range rows {
		c, _ := r["content"].([]byte)
		out[i] = File{
			ID:          rowString(r, "file_id"),
			StartingURL: rowString(r, "starting_url"),
			Path:        rowString(r, "path"),
			Content:     c,
		}
	}
	return out, nil
}

// PutProgram stores (or replaces) an add-on control program file, with
// the same commit-atomic index hook as PutHTML.
func (s *Store) PutProgram(url, path, language string, content []byte) error {
	var b relstore.Batch
	s.queueProgram(&b, url, path, language, content)
	return s.rel.ApplyThen(&b, func() {
		if ix := s.ContentIndex(); ix != nil {
			ix.IndexProgram(url, path, language, content)
		}
	})
}

// ProgramFiles lists the program files of an implementation.
func (s *Store) ProgramFiles(url string) ([]File, error) {
	rows, err := s.rel.Lookup(schema.TableProgFiles, "starting_url", url)
	if err != nil {
		return nil, err
	}
	out := make([]File, len(rows))
	for i, r := range rows {
		c, _ := r["content"].([]byte)
		out[i] = File{
			ID:          rowString(r, "file_id"),
			StartingURL: rowString(r, "starting_url"),
			Path:        rowString(r, "path"),
			Language:    rowString(r, "language"),
			Content:     c,
		}
	}
	return out, nil
}

// MediaRef is a document-layer file descriptor pointing at a BLOB-layer
// resource.
type MediaRef struct {
	ResID string
	Owner string // script name or starting URL
	Name  string
	Kind  blob.Kind
	Ref   blob.Ref
}

// AttachImplMedia stores a multimedia resource in the BLOB layer and
// records the implementation's descriptor. Identical content already on
// the station is shared, not duplicated.
func (s *Store) AttachImplMedia(url, name string, kind blob.Kind, data []byte) (MediaRef, error) {
	ref := s.blobs.Put(name, kind, data)
	m := MediaRef{ResID: s.nextID("res"), Owner: url, Name: name, Kind: kind, Ref: ref}
	err := s.rel.Insert(schema.TableImplMedia, relstore.Row{
		"res_id":       m.ResID,
		"starting_url": url,
		"name":         name,
		"kind":         int64(kind),
		"blob_hash":    ref.Hash,
		"size":         ref.Size,
	})
	if err != nil {
		s.blobs.Release(ref)
		return MediaRef{}, err
	}
	return m, nil
}

// ShareImplMedia attaches an already-resident BLOB to another
// implementation without copying bytes (BLOB-layer sharing of section
// 4).
func (s *Store) ShareImplMedia(url, name string, ref blob.Ref) (MediaRef, error) {
	if err := s.blobs.Retain(ref); err != nil {
		return MediaRef{}, err
	}
	m := MediaRef{ResID: s.nextID("res"), Owner: url, Name: name, Kind: ref.Kind, Ref: ref}
	err := s.rel.Insert(schema.TableImplMedia, relstore.Row{
		"res_id":       m.ResID,
		"starting_url": url,
		"name":         name,
		"kind":         int64(ref.Kind),
		"blob_hash":    ref.Hash,
		"size":         ref.Size,
	})
	if err != nil {
		s.blobs.Release(ref)
		return MediaRef{}, err
	}
	return m, nil
}

// AttachScriptMedia stores a script-level resource (e.g. the verbal
// description of section 3).
func (s *Store) AttachScriptMedia(scriptName, name string, kind blob.Kind, data []byte) (MediaRef, error) {
	ref := s.blobs.Put(name, kind, data)
	m := MediaRef{ResID: s.nextID("res"), Owner: scriptName, Name: name, Kind: kind, Ref: ref}
	err := s.rel.Insert(schema.TableScriptMedia, relstore.Row{
		"res_id":      m.ResID,
		"script_name": scriptName,
		"name":        name,
		"kind":        int64(kind),
		"blob_hash":   ref.Hash,
		"size":        ref.Size,
	})
	if err != nil {
		s.blobs.Release(ref)
		return MediaRef{}, err
	}
	return m, nil
}

// ImplMedia lists the media descriptors of an implementation.
func (s *Store) ImplMedia(url string) ([]MediaRef, error) {
	rows, err := s.rel.Lookup(schema.TableImplMedia, "starting_url", url)
	if err != nil {
		return nil, err
	}
	out := make([]MediaRef, len(rows))
	for i, r := range rows {
		out[i] = MediaRef{
			ResID: rowString(r, "res_id"),
			Owner: rowString(r, "starting_url"),
			Name:  rowString(r, "name"),
			Kind:  blob.Kind(rowInt(r, "kind")),
			Ref:   blob.Ref{Hash: rowString(r, "blob_hash"), Size: rowInt(r, "size"), Kind: blob.Kind(rowInt(r, "kind"))},
		}
	}
	return out, nil
}

// ScriptMedia lists the media descriptors of a script.
func (s *Store) ScriptMedia(scriptName string) ([]MediaRef, error) {
	rows, err := s.rel.Lookup(schema.TableScriptMedia, "script_name", scriptName)
	if err != nil {
		return nil, err
	}
	out := make([]MediaRef, len(rows))
	for i, r := range rows {
		out[i] = MediaRef{
			ResID: rowString(r, "res_id"),
			Owner: rowString(r, "script_name"),
			Name:  rowString(r, "name"),
			Kind:  blob.Kind(rowInt(r, "kind")),
			Ref:   blob.Ref{Hash: rowString(r, "blob_hash"), Size: rowInt(r, "size"), Kind: blob.Kind(rowInt(r, "kind"))},
		}
	}
	return out, nil
}

// row accessors tolerate NULLs.
func rowString(r relstore.Row, col string) string {
	s, _ := r[col].(string)
	return s
}

func rowInt(r relstore.Row, col string) int64 {
	n, _ := r[col].(int64)
	return n
}

func rowFloat(r relstore.Row, col string) float64 {
	f, _ := r[col].(float64)
	return f
}

func rowTime(r relstore.Row, col string) time.Time {
	t, _ := r[col].(time.Time)
	return t
}

func rowBool(r relstore.Row, col string) bool {
	b, _ := r[col].(bool)
	return b
}
