package relstore

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// courseSchema builds the pair of tables used across the tests: a
// script table and an implementation table referencing it, mirroring the
// paper's document layer.
func courseSchemas() (Schema, Schema) {
	scripts := Schema{
		Name: "scripts",
		Columns: []Column{
			{Name: "script_name", Type: TText, NotNull: true},
			{Name: "author", Type: TText},
			{Name: "version", Type: TInt},
			{Name: "created", Type: TTime},
			{Name: "pct_complete", Type: TFloat},
			{Name: "archived", Type: TBool},
		},
		Key: "script_name",
	}
	impls := Schema{
		Name: "impls",
		Columns: []Column{
			{Name: "starting_url", Type: TText, NotNull: true},
			{Name: "script_name", Type: TText},
			{Name: "payload", Type: TBytes},
		},
		Key:         "starting_url",
		ForeignKeys: []ForeignKey{{Column: "script_name", RefTable: "scripts"}},
	}
	return scripts, impls
}

func newCourseDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	s, i := courseSchemas()
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(i); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB()
	cases := []Schema{
		{},
		{Name: "t"},
		{Name: "t", Columns: []Column{{Name: "a", Type: TInt}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: TInt}}, Key: "b"},
		{Name: "t", Columns: []Column{{Name: "a", Type: TInt}, {Name: "a", Type: TInt}}, Key: "a"},
		{Name: "t", Columns: []Column{{Name: "a", Type: 99}}, Key: "a"},
		{Name: "t", Columns: []Column{{Name: "a", Type: TInt}}, Key: "a",
			ForeignKeys: []ForeignKey{{Column: "zz", RefTable: "x"}}},
	}
	for i, s := range cases {
		if err := db.CreateTable(s); !errors.Is(err, ErrSchema) {
			t.Errorf("case %d: err = %v, want ErrSchema", i, err)
		}
	}
}

func TestCreateTableDuplicate(t *testing.T) {
	db := newCourseDB(t)
	s, _ := courseSchemas()
	if err := db.CreateTable(s); !errors.Is(err, ErrTableExists) {
		t.Fatalf("err = %v, want ErrTableExists", err)
	}
}

func TestInsertGetRoundTrip(t *testing.T) {
	db := newCourseDB(t)
	created := time.Date(1999, 4, 21, 10, 0, 0, 0, time.UTC)
	row := Row{
		"script_name":  "intro-mm",
		"author":       "Shih",
		"version":      int64(3),
		"created":      created,
		"pct_complete": 62.5,
		"archived":     false,
	}
	if err := db.Insert("scripts", row); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get("scripts", "intro-mm")
	if err != nil {
		t.Fatal(err)
	}
	if got["author"] != "Shih" || got["version"] != int64(3) || got["pct_complete"] != 62.5 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if !got["created"].(time.Time).Equal(created) {
		t.Errorf("time mismatch: %v", got["created"])
	}
}

func TestInsertWidensSmallInts(t *testing.T) {
	db := newCourseDB(t)
	if err := db.Insert("scripts", Row{"script_name": "s", "version": 7}); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get("scripts", "s")
	if err != nil {
		t.Fatal(err)
	}
	if got["version"] != int64(7) {
		t.Errorf("version = %#v, want int64(7)", got["version"])
	}
}

func TestInsertTypeMismatch(t *testing.T) {
	db := newCourseDB(t)
	err := db.Insert("scripts", Row{"script_name": "s", "version": "three"})
	if !errors.Is(err, ErrType) {
		t.Fatalf("err = %v, want ErrType", err)
	}
}

func TestInsertUnknownColumn(t *testing.T) {
	db := newCourseDB(t)
	err := db.Insert("scripts", Row{"script_name": "s", "nope": 1})
	if !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v, want ErrNoColumn", err)
	}
}

func TestInsertNullPrimaryKey(t *testing.T) {
	db := newCourseDB(t)
	err := db.Insert("scripts", Row{"author": "x"})
	if !errors.Is(err, ErrNull) {
		t.Fatalf("err = %v, want ErrNull", err)
	}
}

func TestInsertDuplicatePK(t *testing.T) {
	db := newCourseDB(t)
	if err := db.Insert("scripts", Row{"script_name": "s"}); err != nil {
		t.Fatal(err)
	}
	err := db.Insert("scripts", Row{"script_name": "s"})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestForeignKeyEnforcedOnInsert(t *testing.T) {
	db := newCourseDB(t)
	err := db.Insert("impls", Row{"starting_url": "http://u", "script_name": "ghost"})
	if !errors.Is(err, ErrFK) {
		t.Fatalf("err = %v, want ErrFK", err)
	}
	if err := db.Insert("scripts", Row{"script_name": "ghost"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("impls", Row{"starting_url": "http://u", "script_name": "ghost"}); err != nil {
		t.Fatalf("insert with satisfied FK: %v", err)
	}
}

func TestForeignKeyNullAllowed(t *testing.T) {
	db := newCourseDB(t)
	if err := db.Insert("impls", Row{"starting_url": "http://u"}); err != nil {
		t.Fatalf("NULL FK should be allowed: %v", err)
	}
}

func TestDeleteRestrictedWhileReferenced(t *testing.T) {
	db := newCourseDB(t)
	if err := db.Insert("scripts", Row{"script_name": "s"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("impls", Row{"starting_url": "u", "script_name": "s"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("scripts", "s"); !errors.Is(err, ErrFK) {
		t.Fatalf("delete referenced row: err = %v, want ErrFK", err)
	}
	if err := db.Delete("impls", "u"); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("scripts", "s"); err != nil {
		t.Fatalf("delete after dereference: %v", err)
	}
}

func TestUpdateMergesAndValidates(t *testing.T) {
	db := newCourseDB(t)
	if err := db.Insert("scripts", Row{"script_name": "s", "author": "a", "version": 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("scripts", "s", Row{"version": 2}); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Get("scripts", "s")
	if got["version"] != int64(2) || got["author"] != "a" {
		t.Errorf("merged row = %+v", got)
	}
	if err := db.Update("scripts", "missing", Row{"version": 9}); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing: err = %v", err)
	}
	if err := db.Update("scripts", "s", Row{"script_name": "renamed"}); !errors.Is(err, ErrKeyChange) {
		t.Errorf("pk change: err = %v", err)
	}
	if err := db.Update("scripts", "s", Row{"script_name": "s"}); err != nil {
		t.Errorf("no-op pk touch should be fine: %v", err)
	}
}

func TestUpdateForeignKeyRecheck(t *testing.T) {
	db := newCourseDB(t)
	if err := db.Insert("scripts", Row{"script_name": "s"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("impls", Row{"starting_url": "u", "script_name": "s"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("impls", "u", Row{"script_name": "ghost"}); !errors.Is(err, ErrFK) {
		t.Fatalf("err = %v, want ErrFK", err)
	}
}

func TestTransactionRollbackRestoresExactState(t *testing.T) {
	db := newCourseDB(t)
	if err := db.Insert("scripts", Row{"script_name": "keep", "version": 1}); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("scripts", Row{"script_name": "new"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("scripts", "keep", Row{"version": 99}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("scripts", "new"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("scripts", Row{"script_name": "other"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("scripts"); n != 1 {
		t.Fatalf("count after rollback = %d, want 1", n)
	}
	got, err := db.Get("scripts", "keep")
	if err != nil {
		t.Fatal(err)
	}
	if got["version"] != int64(1) {
		t.Errorf("version after rollback = %v, want 1", got["version"])
	}
	if db.Exists("scripts", "new") || db.Exists("scripts", "other") {
		t.Error("rolled-back inserts survived")
	}
}

func TestTransactionCommitKeepsState(t *testing.T) {
	db := newCourseDB(t)
	tx, _ := db.Begin()
	for n := 0; n < 10; n++ {
		if err := tx.Insert("scripts", Row{"script_name": fmt.Sprintf("s%d", n)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("scripts"); n != 10 {
		t.Fatalf("count = %d, want 10", n)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit: err = %v", err)
	}
	if err := tx.Insert("scripts", Row{"script_name": "late"}); !errors.Is(err, ErrTxDone) {
		t.Errorf("insert after commit: err = %v", err)
	}
}

func TestDropTableRestrict(t *testing.T) {
	db := newCourseDB(t)
	if err := db.Insert("scripts", Row{"script_name": "s"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("impls", Row{"starting_url": "u", "script_name": "s"}); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("scripts"); !errors.Is(err, ErrFK) {
		t.Fatalf("drop referenced table: err = %v, want ErrFK", err)
	}
	if err := db.DropTable("impls"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("scripts"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("scripts"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("double drop: err = %v", err)
	}
}

func TestTablesSorted(t *testing.T) {
	db := newCourseDB(t)
	got := db.Tables()
	if len(got) != 2 || got[0] != "impls" || got[1] != "scripts" {
		t.Fatalf("Tables() = %v", got)
	}
}

func TestSchemaOf(t *testing.T) {
	db := newCourseDB(t)
	s, err := db.SchemaOf("scripts")
	if err != nil {
		t.Fatal(err)
	}
	if s.Key != "script_name" || len(s.Columns) != 6 {
		t.Errorf("SchemaOf = %+v", s)
	}
	if _, err := db.SchemaOf("nope"); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing table: err = %v", err)
	}
}

func TestGetClonesRows(t *testing.T) {
	db := newCourseDB(t)
	if err := db.Insert("scripts", Row{"script_name": "s", "author": "a"}); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Get("scripts", "s")
	got["author"] = "mutated"
	again, _ := db.Get("scripts", "s")
	if again["author"] != "a" {
		t.Error("mutating a returned row leaked into the store")
	}
}

func TestBytesColumnsRoundTrip(t *testing.T) {
	db := newCourseDB(t)
	if err := db.Insert("scripts", Row{"script_name": "s"}); err != nil {
		t.Fatal(err)
	}
	payload := []byte{0x00, 0x01, 0xFE, 0xFF}
	if err := db.Insert("impls", Row{"starting_url": "u", "script_name": "s", "payload": payload}); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Get("impls", "u")
	b := got["payload"].([]byte)
	if len(b) != 4 || b[2] != 0xFE {
		t.Errorf("payload = %v", b)
	}
}

func TestTimeCoercionFromString(t *testing.T) {
	db := newCourseDB(t)
	if err := db.Insert("scripts", Row{"script_name": "s", "created": "1999-04-21T10:00:00Z"}); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Get("scripts", "s")
	ts := got["created"].(time.Time)
	if ts.Year() != 1999 || ts.Month() != 4 {
		t.Errorf("created = %v", ts)
	}
}
