package loadgen

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// fakeTarget counts ops in memory so driver tests run without sockets.
type fakeTarget struct {
	mu       sync.Mutex
	stations int
	calls    map[string]int
	failOp   string // ops of this kind error
}

func newFakeTarget(stations int) *fakeTarget {
	return &fakeTarget{stations: stations, calls: map[string]int{}}
}

func (f *fakeTarget) note(kind string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[kind]++
	if kind == f.failOp {
		return errors.New("injected failure")
	}
	return nil
}

func (f *fakeTarget) Stations() int { return f.stations }
func (f *fakeTarget) Broadcast(url string, refsOnly bool) (int64, uint64, error) {
	return 100, 0xabc, f.note("broadcast")
}
func (f *fakeTarget) Migrate(url string) (uint64, error) { return 0xabc, f.note("migrate") }
func (f *fakeTarget) Resolve(station int, url string) (int64, uint64, error) {
	return 10, 0xabc, f.note("resolve")
}
func (f *fakeTarget) Search(station int, terms []string, phrase bool, topK int) (int, uint64, error) {
	return 1, 0xabc, f.note("search")
}
func (f *fakeTarget) Checkout(station int, kind, objectID, user string) error {
	return f.note("checkout")
}
func (f *fakeTarget) Stats() ([]cluster.StatsReply, error) {
	return []cluster.StatsReply{{Pos: 1}}, nil
}
func (f *fakeTarget) CollectTrace(id uint64) ([]obs.Span, []obs.Event, error) {
	f.note("collect")
	return []obs.Span{{TraceID: id, SpanID: 1, Method: "Fabric.Broadcast"}},
		[]obs.Event{{Seq: 1, Name: "graft", TraceID: id}}, nil
}
func (f *fakeTarget) Close() {}

func fastProfile(t *testing.T) *Profile {
	t.Helper()
	p, err := ParseProfile([]byte(`
name: fast
seed: 3
time-scale: 600
fabric:
  stations: 3
  m: 3
  watermark: 2
courses:
  count: 4
  pages: 4
phases:
  - name: push
    op: broadcast
    start: 0s
    duration: 1m
    rate: 0.1
  - name: storm
    op: resolve
    start: 0s
    duration: 2m
    rate: 0.3
    clients: 2
  - name: lookups
    op: search
    start: 1m
    duration: 1m
    rate: 0.2
    clients: 2
  - name: edits
    op: checkout
    start: 0s
    duration: 2m
    rate: 0.1
slos:
  - op: resolve
    p99: 10s
    max-error-rate: 0
`))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBuildPlanDeterminism: two independent plans from the same
// profile are identical, op for op.
func TestBuildPlanDeterminism(t *testing.T) {
	p := fastProfile(t)
	a, b := BuildPlan(p), BuildPlan(p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("plans from the same profile differ")
	}
	if a.Total == 0 {
		t.Fatal("empty plan")
	}
	// A different seed must change the drawn parameters (here: some
	// op's station or course assignment) without changing the counts.
	p2 := fastProfile(t)
	p2.Seed = 4
	c := BuildPlan(p2)
	if !reflect.DeepEqual(a.OpCounts(), c.OpCounts()) {
		t.Errorf("op counts moved with the seed: %v vs %v", a.OpCounts(), c.OpCounts())
	}
	if reflect.DeepEqual(a, c) {
		t.Error("plans identical across different seeds")
	}
}

// TestRunExecutesExactPlan: the paced executor performs every planned
// op exactly once, whatever the timing — the determinism the report
// schema depends on.
func TestRunExecutesExactPlan(t *testing.T) {
	p := fastProfile(t)
	plan := BuildPlan(p)
	for run := 0; run < 2; run++ {
		tgt := newFakeTarget(p.Fabric.Stations)
		col, wall, err := Run(p, plan, tgt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tgt.calls, plan.OpCounts()) {
			t.Errorf("run %d executed %v, plan says %v", run, tgt.calls, plan.OpCounts())
		}
		sums := col.Summarize(wall, p.SimDuration())
		for kind, want := range plan.OpCounts() {
			if got := sums[kind].Count; got != int64(want) {
				t.Errorf("run %d: recorded %d %s ops, want %d", run, got, kind, want)
			}
			if sums[kind].Errors != 0 {
				t.Errorf("run %d: %s errors = %d", run, kind, sums[kind].Errors)
			}
		}
	}
}

func TestRunRejectsSmallTarget(t *testing.T) {
	p := fastProfile(t)
	if _, _, err := Run(p, BuildPlan(p), newFakeTarget(1), nil); err == nil {
		t.Fatal("want error for a target with fewer stations than the profile")
	}
}

// TestSLOEvaluation drives failures through the verdict logic: an
// injected error rate must fail max-error-rate and flip the overall
// verdict.
func TestSLOEvaluation(t *testing.T) {
	p := fastProfile(t)
	plan := BuildPlan(p)
	tgt := newFakeTarget(p.Fabric.Stations)
	tgt.failOp = "resolve"
	col, wall, err := Run(p, plan, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	report := BuildReport(p, col, wall, nil)
	if report.Pass {
		t.Error("report passed despite injected resolve failures")
	}
	var sawErrRate bool
	for _, v := range report.SLOs {
		if v.Op == "resolve" && v.Metric == "error_rate" {
			sawErrRate = true
			if v.Pass || v.Actual != 1 {
				t.Errorf("error_rate verdict = %+v", v)
			}
		}
	}
	if !sawErrRate {
		t.Error("no error_rate verdict in the report")
	}
}

// TestReportSchema pins the JSON keys CI consumers read.
func TestReportSchema(t *testing.T) {
	p := fastProfile(t)
	plan := BuildPlan(p)
	tgt := newFakeTarget(p.Fabric.Stations)
	col, wall, err := Run(p, plan, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := tgt.Stats()
	report := BuildReport(p, col, wall, stats)
	if !report.Pass {
		t.Fatalf("clean run failed SLOs: %+v", report.SLOs)
	}
	path := filepath.Join(t.TempDir(), ReportFileName(p.Name))
	if err := WriteReport(path, report); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"profile", "seed", "time_scale", "stations", "m",
		"sim_seconds", "wall_seconds", "ops", "slos", "pass", "station_stats",
		"slow_traces"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report missing key %q", key)
		}
	}
	// Every traced op competes for its phase's exemplar slots; the fake
	// target stamps trace 0xabc on everything, so exemplars must be
	// bounded per phase and carry the formatted ID.
	if len(report.SlowTraces) == 0 {
		t.Fatal("no slow-trace exemplars in a run with traced ops")
	}
	perPhase := map[string]int{}
	for _, st := range report.SlowTraces {
		perPhase[st.Phase]++
		if st.TraceID != "0000000000000abc" {
			t.Errorf("exemplar trace ID = %q", st.TraceID)
		}
		if st.LatencyMs < 0 || st.Op == "" || st.Phase == "" {
			t.Errorf("malformed exemplar %+v", st)
		}
	}
	for phase, n := range perPhase {
		if n > slowExemplarsPerPhase {
			t.Errorf("phase %s kept %d exemplars, cap is %d", phase, n, slowExemplarsPerPhase)
		}
	}
	ops, _ := decoded["ops"].(map[string]any)
	res, _ := ops["resolve"].(map[string]any)
	for _, key := range []string{"count", "errors", "error_rate", "p50_ms", "p95_ms",
		"p99_ms", "throughput_wall_ops_per_sec", "throughput_sim_ops_per_sec"} {
		if _, ok := res[key]; !ok {
			t.Errorf("ops.resolve missing key %q", key)
		}
	}
}

// TestPercentiles pins the nearest-rank definition.
func TestPercentiles(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := percentile(samples, 0.50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := percentile(samples, 0.99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := percentile(samples[:1], 0.99); got != time.Millisecond {
		t.Errorf("p99 of one sample = %v", got)
	}
}
