package webtest

import (
	"fmt"
	"testing"
	"time"
)

// Readiness polling for the multi-process and multi-station tests.
// Fixed sleeps either flake on a loaded CI machine or idle on a fast
// one; Poll re-checks a condition with exponential backoff (1ms up to
// 50ms between probes) so a test proceeds the moment the system
// settles and still survives slow schedulers.

// Poll runs cond until it returns true or the timeout elapses,
// reporting whether the condition was met. It never fails the test
// itself — use Eventually for that.
func Poll(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	interval := time.Millisecond
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(interval)
		if interval < 50*time.Millisecond {
			interval *= 2
		}
	}
}

// Eventually polls cond until it returns true, failing the test with
// the description when the timeout elapses first.
func Eventually(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	if !Poll(timeout, cond) {
		t.Fatalf("timed out after %v waiting for %s", timeout, what)
	}
}

// PollErr is Poll for process orchestration outside tests (the load
// harness waiting for a fabric roster to fill, a driver waiting for a
// daemon socket): cond reports done, or a hard error that aborts the
// wait immediately. A timeout yields an error naming what was waited
// for.
func PollErr(timeout time.Duration, what string, cond func() (bool, error)) error {
	deadline := time.Now().Add(timeout)
	interval := time.Millisecond
	for {
		done, err := cond()
		if err != nil {
			return fmt.Errorf("waiting for %s: %w", what, err)
		}
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(interval)
		if interval < 50*time.Millisecond {
			interval *= 2
		}
	}
}
