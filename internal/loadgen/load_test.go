package loadgen

import (
	"testing"
	"time"
)

// The full harness path over real sockets: self-host a small fabric,
// replay a compressed profile through the FabricTarget, and judge the
// report — the in-process twin of `make load-smoke`.
func TestHarnessAgainstSelfHostedFabric(t *testing.T) {
	p, err := ParseProfile([]byte(`
name: harness-e2e
seed: 11
time-scale: 300
fabric:
  stations: 4
  m: 3
  watermark: 2
courses:
  count: 3
  pages: 4
  extra-links: 1
  images-per-page: 1
phases:
  - name: push
    op: broadcast
    start: 0s
    duration: 1m
    rate: 0.05
  - name: storm
    op: resolve
    start: 1m
    duration: 2m
    rate: 0.15
    clients: 2
  - name: lookups
    op: search
    start: 2m
    duration: 1m
    rate: 0.1
    top-k: 5
  - name: edits
    op: checkout
    start: 0s
    duration: 3m
    rate: 0.05
  - name: wrap-up
    op: migrate
    start: 3m
    duration: 1m
    rate: 0.02
slos:
  - op: resolve
    p99: 30s
    max-error-rate: 0
  - op: search
    p99: 30s
    max-error-rate: 0
  - op: broadcast
    max-error-rate: 0
`))
	if err != nil {
		t.Fatal(err)
	}
	host, err := StartHost(p, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	target, err := DialFabric(host.RootAddr(), p.Fabric.Stations, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	plan := BuildPlan(p)
	col, wall, err := Run(p, plan, target, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := target.Stats()
	if err != nil {
		t.Fatal(err)
	}
	report := BuildReport(p, col, wall, stats)
	if !report.Pass {
		t.Fatalf("harness run failed its SLOs: %+v", report.SLOs)
	}
	for kind, want := range plan.OpCounts() {
		if got := report.Ops[kind].Count; got != int64(want) {
			t.Errorf("report counts %d %s ops, plan has %d", got, kind, want)
		}
	}
	if report.Ops["resolve"].Errors != 0 || report.Ops["search"].Errors != 0 {
		t.Errorf("unexpected errors: %+v", report.Ops)
	}
	// The scrape covers every station, and the traffic left footprints:
	// the root served broadcasts, somebody answered searches.
	if len(report.StationStats) != p.Fabric.Stations {
		t.Fatalf("scraped %d stations, fabric has %d", len(report.StationStats), p.Fabric.Stations)
	}
	var rpcs int64
	for _, st := range report.StationStats {
		for _, n := range st.Ops {
			rpcs += n
		}
	}
	if rpcs == 0 {
		t.Error("station stats recorded no RPC activity at all")
	}
	if report.StationStats[0].Pos != 1 {
		t.Errorf("first scraped station is pos %d, want the root", report.StationStats[0].Pos)
	}
}

// TestFailedSLORunResolvesSlowTraces is the trace-driven SLO debugging
// loop end-to-end: a run judged against an impossible p99 fails its
// verdict, and resolving the slow exemplars against the still-live
// fabric yields hop trees (and any correlated journal events) ready to
// embed in the report — webdocload's exact path on a failed run.
func TestFailedSLORunResolvesSlowTraces(t *testing.T) {
	p, err := ParseProfile([]byte(`
name: slo-debug
seed: 7
time-scale: 600
fabric:
  stations: 3
  m: 3
  watermark: 2
courses:
  count: 2
  pages: 3
  images-per-page: 1
phases:
  - name: push
    op: broadcast
    start: 0s
    duration: 1m
    rate: 0.1
  - name: storm
    op: resolve
    start: 0s
    duration: 2m
    rate: 0.2
slos:
  - op: resolve
    p99: 1us
`))
	if err != nil {
		t.Fatal(err)
	}
	host, err := StartHost(p, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	target, err := DialFabric(host.RootAddr(), p.Fabric.Stations, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	plan := BuildPlan(p)
	col, wall, err := Run(p, plan, target, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := target.Stats()
	if err != nil {
		t.Fatal(err)
	}
	report := BuildReport(p, col, wall, stats)
	if report.Pass {
		t.Fatal("a 1µs p99 SLO passed; the impossible verdict is the test's premise")
	}
	if len(report.SlowTraces) == 0 {
		t.Fatal("failed run recorded no slow-trace exemplars")
	}
	report.ResolvedTraces = ResolveSlowTraces(target, report.SlowTraces)
	if len(report.ResolvedTraces) != len(report.SlowTraces) {
		t.Fatalf("resolved %d of %d exemplars", len(report.ResolvedTraces), len(report.SlowTraces))
	}
	withSpans := 0
	for _, rt := range report.ResolvedTraces {
		if rt.Err != "" {
			t.Errorf("exemplar %s failed to resolve: %s", rt.TraceID, rt.Err)
			continue
		}
		if len(rt.Spans) > 0 {
			withSpans++
		}
	}
	if withSpans == 0 {
		t.Fatal("no resolved exemplar carries a hop tree")
	}
}
