package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The expectation harness: fixture packages under testdata/src carry
// trailing comments of the form
//
//	// want `regexp` `another regexp`
//
// and the test requires the analyzer diagnostics on that line to
// match those regexps one-to-one — no missing findings, no extras
// anywhere in the fixture.

var wantRx = regexp.MustCompile("`([^`]+)`")

type wantKey struct {
	file string
	line int
}

// loadFixtureLoader builds one loader rooted at the repo for all
// fixture tests (type-checked stdlib and module packages are cached
// across cases, so the harness pays the source-importer cost once).
var fixtureLoader *Loader

func loaderFor(t *testing.T) *Loader {
	t.Helper()
	if fixtureLoader == nil {
		l, err := NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		fixtureLoader = l
	}
	return fixtureLoader
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := loaderFor(t).LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// collectWants scans the fixture sources for want comments.
func collectWants(t *testing.T, pkg *Package) map[wantKey][]string {
	t.Helper()
	wants := make(map[wantKey][]string)
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(c.Text[idx:], -1) {
					key := wantKey{file: pos.Filename, line: pos.Line}
					wants[key] = append(wants[key], m[1])
				}
			}
		}
	}
	return wants
}

func checkFixture(t *testing.T, fixture string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	diags := Run([]*Package{pkg}, analyzers)
	wants := collectWants(t, pkg)

	for _, d := range diags {
		key := wantKey{file: d.File, line: d.Line}
		rxs := wants[key]
		matched := -1
		for i, rx := range rxs {
			ok, err := regexp.MatchString(rx, d.Message)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", d.File, d.Line, rx, err)
			}
			if ok {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic %s", d)
			continue
		}
		wants[key] = append(rxs[:matched], rxs[matched+1:]...)
		if len(wants[key]) == 0 {
			delete(wants, key)
		}
	}
	for key, rxs := range wants {
		for _, rx := range rxs {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, rx)
		}
	}
}

func TestAtomicWriteFixture(t *testing.T)  { checkFixture(t, "atomicwrite", []*Analyzer{AtomicWrite}) }
func TestAtomicioExemption(t *testing.T)   { checkFixture(t, "atomicio", []*Analyzer{AtomicWrite}) }
func TestLockOrderFixture(t *testing.T)    { checkFixture(t, "lockorder", []*Analyzer{LockOrder}) }
func TestRouteAroundFixture(t *testing.T)  { checkFixture(t, "routearound", []*Analyzer{RouteAround}) }
func TestSentinelErrFixture(t *testing.T)  { checkFixture(t, "sentinelerr", []*Analyzer{SentinelErr}) }
func TestTraceCallFixture(t *testing.T)    { checkFixture(t, "tracecall", []*Analyzer{TraceCall}) }
func TestWireTagFixture(t *testing.T)      { checkFixture(t, "wiretag", []*Analyzer{WireTag}) }
func TestSuppressionsFixture(t *testing.T) { checkFixture(t, "suppress", []*Analyzer{AtomicWrite}) }

// TestMalformedSuppressions pins the suppression system's own
// diagnostics: missing analyzer, missing reason, unknown analyzer.
func TestMalformedSuppressions(t *testing.T) {
	pkg := loadFixture(t, "suppressbad")
	diags := Run([]*Package{pkg}, All())
	var got []string
	for _, d := range diags {
		if d.Analyzer != "suppression" {
			t.Errorf("unexpected non-suppression diagnostic: %s", d)
			continue
		}
		got = append(got, d.Message)
	}
	want := []string{
		"malformed suppression: want //lint:ignore <analyzer> <reason>",
		"malformed suppression: want //lint:ignore <analyzer> <reason>",
		`suppression names unknown analyzer "nosuchanalyzer"`,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d suppression diagnostics %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestDiagnosticRendering pins the one-line and JSON-facing shapes.
func TestDiagnosticRendering(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 7, Col: 3, Analyzer: "atomicwrite", Message: "boom"}
	if got, want := d.String(), "a/b.go:7:3: boom (atomicwrite)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestPackageDirsSkipsFixtures ensures the ./... expansion never
// descends into testdata — fixture packages violate invariants on
// purpose and must not turn make lint red.
func TestPackageDirsSkipsFixtures(t *testing.T) {
	loader := loaderFor(t)
	dirs, err := PackageDirs(loader.ModRoot)
	if err != nil {
		t.Fatalf("PackageDirs: %v", err)
	}
	var sawAnalysis bool
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("PackageDirs descended into %s", d)
		}
		if strings.HasSuffix(d, filepath.Join("internal", "analysis")) {
			sawAnalysis = true
		}
	}
	if !sawAnalysis {
		t.Error("PackageDirs missed internal/analysis itself")
	}
}

// TestRepoSelfClean runs every analyzer over every package of the
// module — the linter's own acceptance gate, as a tier-1 test: the
// codebase must stay self-clean, with every deliberate exception
// carrying a reasoned //lint:ignore.
func TestRepoSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader := loaderFor(t)
	dirs, err := PackageDirs(loader.ModRoot)
	if err != nil {
		t.Fatalf("PackageDirs: %v", err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s", d)
	}
}

// TestLoaderErrors pins the loader's failure modes.
func TestLoaderErrors(t *testing.T) {
	loader := loaderFor(t)
	if _, err := loader.LoadDir(os.TempDir()); err == nil {
		t.Error("LoadDir outside the module should fail")
	}
	empty := t.TempDir() // inside /tmp, also outside the module
	if _, err := loader.LoadDir(empty); err == nil {
		t.Error("LoadDir of a non-module dir should fail")
	}
}

func ExampleDiagnostic() {
	d := Diagnostic{File: "internal/fabric/trace.go", Line: 67, Col: 12, Analyzer: "tracecall", Message: "pool.Call drops the trace context"}
	fmt.Println(d)
	// Output: internal/fabric/trace.go:67:12: pool.Call drops the trace context (tracecall)
}
