// Fixture for the wiretag analyzer, standing in for internal/wire
// (the analyzer keys on the package name): every tag constant needs
// both an Append-side reference and a Read-side switch arm.
package wire

const (
	tagComplete   = 1 // appended and decoded: clean
	tagEncodeOnly = 2 // want `wire tag tagEncodeOnly has no decode arm`
	tagDecodeOnly = 3 // want `wire tag tagDecodeOnly is never written`
	tagOrphan     = 4 // want `wire tag tagOrphan is never written` `wire tag tagOrphan has no decode arm`
)

// AppendThing writes the encode side. The case arms of its kind
// switch are encode dispatch, not decode coverage.
func AppendThing(dst []byte, kind int) []byte {
	switch kind {
	case 0:
		dst = append(dst, tagComplete)
	case 1:
		dst = append(dst, tagEncodeOnly)
	}
	return dst
}

// Reader mirrors wire.Reader's shape.
type Reader struct{ buf []byte }

// Value dispatches on the tag byte — the decode side the analyzer
// looks for.
func (r *Reader) Value() int {
	switch r.buf[0] {
	case tagComplete:
		return 0
	case tagDecodeOnly:
		return 1
	}
	return -1
}
