package obs

import (
	"fmt"
	"strings"
)

// EventSink consumes structured one-line event records. Fault paths in
// the fabric (heartbeat suspicion, down confirmation, grafts, rejoin
// grants, checkpoint installs) emit through a sink when one is
// configured and stay silent otherwise — the quiet default.
type EventSink func(line string)

// Event formats a structured one-line record: "event=<name> k=v ...".
// Values render with %v; any value whose rendering contains a space or
// quote is %q-quoted so lines stay machine-splittable on spaces.
func Event(name string, kv ...any) string {
	var b strings.Builder
	b.WriteString("event=")
	b.WriteString(name)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v=", kv[i])
		val := fmt.Sprintf("%v", kv[i+1])
		if strings.ContainsAny(val, " \t\"") || val == "" {
			val = fmt.Sprintf("%q", val)
		}
		b.WriteString(val)
	}
	return b.String()
}
