package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// EventSink consumes rendered one-line event records. Fault paths in
// the fabric (heartbeat suspicion, down confirmation, grafts, rejoin
// grants, checkpoint installs) emit through a sink when one is
// configured and stay silent otherwise — the quiet default. The
// structured journal (EventRing) records the same events regardless of
// whether a sink is attached; the sink is the log-tail view, the ring
// is the queryable one.
type EventSink func(line string)

// Severity ranks an event's operational weight. The journal's
// reservoir keeps Warn+ events past FIFO eviction so a flood of
// routine Info events cannot wash away the evidence of a fault.
type Severity int8

const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

// String renders the severity the way filters accept it back.
func (s Severity) String() string {
	switch s {
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	default:
		return "info"
	}
}

// ParseSeverity maps a filter string to a Severity; unknown strings
// (and "") select SevInfo, the no-op floor.
func ParseSeverity(s string) Severity {
	switch strings.ToLower(s) {
	case "warn", "warning":
		return SevWarn
	case "error", "err":
		return SevError
	default:
		return SevInfo
	}
}

// MarshalJSON renders severities as strings in reports and CLI output.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the string form back.
func (s *Severity) UnmarshalJSON(data []byte) error {
	*s = ParseSeverity(strings.Trim(string(data), `"`))
	return nil
}

// Event is one structured journal record: what happened, where, when,
// how bad, and — when emitted inside a traced scope — which trace it
// belongs to. Seq is a per-station monotonic counter assigned at
// journal admission; (Station, Seq) uniquely identifies an event
// fabric-wide and orders events per station even when wall clocks
// disagree.
type Event struct {
	Seq      uint64
	Time     time.Time
	Severity Severity
	Category string
	Name     string
	Station  int
	TraceID  uint64 // 0 when emitted outside any traced scope
	KV       []string
}

// eventClass maps known event names to their severity and category.
// Unknown names default to info/fabric so new emission sites degrade
// gracefully instead of being dropped or misfiled as errors.
var eventClass = map[string]struct {
	sev Severity
	cat string
}{
	"suspect":            {SevWarn, "health"},
	"suspicion-refuted":  {SevInfo, "health"},
	"down-declared":      {SevError, "health"},
	"down-confirmed":     {SevError, "health"},
	"revived":            {SevInfo, "health"},
	"graft":              {SevWarn, "repair"},
	"rejoin-grant":       {SevInfo, "membership"},
	"checkpoint-install": {SevInfo, "checkpoint"},
}

// Classify returns the severity and category for an event name.
func Classify(name string) (Severity, string) {
	if c, ok := eventClass[name]; ok {
		return c.sev, c.cat
	}
	return SevInfo, "fabric"
}

// MissingValue is rendered as the value of a trailing key that arrived
// without one: a k/v slip at an emission site should surface in the
// journal, not silently drop the key.
const MissingValue = "<missing>"

// NewEvent builds a structured event from a name and alternating
// key/value arguments (rendered with %v). A trailing key with no value
// is kept with MissingValue as its value rather than dropped. Station,
// Seq and TraceID are stamped later — by Observer.Emit and the ring.
func NewEvent(name string, kv ...any) Event {
	sev, cat := Classify(name)
	e := Event{
		Time:     time.Now(),
		Severity: sev,
		Category: cat,
		Name:     name,
	}
	if len(kv) > 0 {
		e.KV = make([]string, 0, len(kv)+len(kv)%2)
		for i := 0; i < len(kv); i += 2 {
			e.KV = append(e.KV, fmt.Sprintf("%v", kv[i]))
			if i+1 < len(kv) {
				e.KV = append(e.KV, fmt.Sprintf("%v", kv[i+1]))
			} else {
				e.KV = append(e.KV, MissingValue)
			}
		}
	}
	return e
}

// Line renders the event in the legacy sink format: "event=<name>
// k=v ...". Values containing a space, tab or quote (or empty) are
// %q-quoted so lines stay machine-splittable on spaces.
func (e Event) Line() string {
	var b strings.Builder
	b.WriteString("event=")
	b.WriteString(e.Name)
	for i := 0; i+1 < len(e.KV); i += 2 {
		b.WriteByte(' ')
		b.WriteString(e.KV[i])
		b.WriteByte('=')
		val := e.KV[i+1]
		if strings.ContainsAny(val, " \t\"") || val == "" {
			val = fmt.Sprintf("%q", val)
		}
		b.WriteString(val)
	}
	return b.String()
}

// EventFilter selects journal events. The zero value selects
// everything. SinceSeq is a strict cursor: only events with
// Seq > SinceSeq match, so a poller can hand back the last Seq it saw
// and receive only news.
type EventFilter struct {
	SinceSeq    uint64
	Category    string
	MinSeverity Severity
	TraceID     uint64
}

// matches reports whether an event passes the filter.
func (f EventFilter) matches(e *Event) bool {
	if e.Seq <= f.SinceSeq {
		return false
	}
	if f.Category != "" && e.Category != f.Category {
		return false
	}
	if e.Severity < f.MinSeverity {
		return false
	}
	if f.TraceID != 0 && e.TraceID != f.TraceID {
		return false
	}
	return true
}

// EventRing is a bounded, concurrent-safe journal of events with
// severity-biased retention: recent events ride a FIFO ring, and
// Warn+ events also compete for a small reservoir that survives FIFO
// eviction — the same shape as the span ring's slow/error reservoir,
// because the failure mode is the same (one down-declaration drowned
// by thousands of routine records). The ring owns the per-station
// monotonic Seq counter and per-category admission counts.
type EventRing struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	notable []Event // Warn+ reservoir; survives FIFO eviction
	seq     uint64
	counts  map[string]int64 // admissions per category, never evicted
}

// DefaultEventCap is the per-station journal size: fault narratives
// are tens of events, so this holds many incidents of history.
const DefaultEventCap = 1024

// NewEventRing builds a journal holding up to capacity events (<= 0
// selects DefaultEventCap).
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	notableCap := capacity / 64
	if notableCap < 16 {
		notableCap = 16
	}
	return &EventRing{
		buf:     make([]Event, capacity),
		notable: make([]Event, 0, notableCap),
		counts:  make(map[string]int64),
	}
}

// outranksEvent reports whether a deserves a reservoir slot over b:
// higher severity first, then the newer event (higher seq) — within a
// severity class, recency is the tiebreak worth keeping.
func outranksEvent(a, b *Event) bool {
	if a.Severity != b.Severity {
		return a.Severity > b.Severity
	}
	return a.Seq > b.Seq
}

// Add stamps the event with the next sequence number, records it, and
// returns the stamped copy. Warn+ events also compete for a reservoir
// slot, displacing the weakest holder.
func (r *EventRing) Add(e Event) Event {
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	r.counts[e.Category]++
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	if e.Severity >= SevWarn {
		if len(r.notable) < cap(r.notable) {
			r.notable = append(r.notable, e)
		} else if len(r.notable) > 0 {
			weakest := 0
			for i := range r.notable {
				if outranksEvent(&r.notable[weakest], &r.notable[i]) {
					weakest = i
				}
			}
			if outranksEvent(&e, &r.notable[weakest]) {
				r.notable[weakest] = e
			}
		}
	}
	r.mu.Unlock()
	return e
}

// Snapshot returns every retained event — ring plus reservoir, deduped
// by Seq — in sequence order.
func (r *EventRing) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *EventRing) snapshotLocked() []Event {
	var out []Event
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	if len(r.notable) > 0 {
		seen := make(map[uint64]bool, len(out))
		for i := range out {
			seen[out[i].Seq] = true
		}
		for _, e := range r.notable {
			if !seen[e.Seq] {
				out = append(out, e)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	}
	return out
}

// Select returns the retained events passing the filter, in sequence
// order.
func (r *EventRing) Select(f EventFilter) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.snapshotLocked() {
		if f.matches(&e) {
			out = append(out, e)
		}
	}
	return out
}

// LastSeq returns the sequence number of the most recently admitted
// event — the cursor a poller should resume from.
func (r *EventRing) LastSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// CategoryCounts returns total admissions per category since the ring
// was created. Counts survive eviction: they answer "how many grafts
// has this station done", not "how many are still retained".
func (r *EventRing) CategoryCounts() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// SortEvents orders a merged fabric-wide timeline for rendering: by
// wall time, then station, then sequence — stations' clocks break the
// tie only between stations, never within one.
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		if !events[i].Time.Equal(events[j].Time) {
			return events[i].Time.Before(events[j].Time)
		}
		if events[i].Station != events[j].Station {
			return events[i].Station < events[j].Station
		}
		return events[i].Seq < events[j].Seq
	})
}
