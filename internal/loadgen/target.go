package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/webtest"
)

// Target is what the driver replays traffic against: a set of fabric
// stations addressed by index (0 = root). FabricTarget talks to a live
// fabric over its admin and station RPC surfaces; tests substitute an
// in-memory fake to exercise the driver without sockets.
type Target interface {
	// Stations reports how many stations are addressable.
	Stations() int
	// Broadcast pushes one course tree-wide from the root, returning
	// the bundle transfer size and the operation's trace ID (0 when the
	// target records no traces).
	Broadcast(url string, refsOnly bool) (int64, uint64, error)
	// Migrate runs the end-of-lecture migration from the root.
	Migrate(url string) (uint64, error)
	// Resolve makes a station fetch a course for itself, returning the
	// transfer size (0 when already resident).
	Resolve(station int, url string) (int64, uint64, error)
	// Search runs a federation-wide query through a station.
	Search(station int, terms []string, phrase bool, topK int) (int, uint64, error)
	// Checkout opens and immediately closes a checkout on a station's
	// configuration-management ledger.
	Checkout(station int, kind, objectID, user string) error
	// Stats scrapes every station's unified accounting snapshot.
	Stats() ([]cluster.StatsReply, error)
	// CollectTrace reconstructs one trace fabric-wide: its spans (the
	// hop tree) and the journal events correlated to it. Targets
	// without tracing return empty slices.
	CollectTrace(id uint64) ([]obs.Span, []obs.Event, error)
	Close()
}

// FabricTarget drives a live fabric: one admin client per station for
// distribution verbs, one station client per station for the base RPCs
// (checkout, stats).
type FabricTarget struct {
	admins   []*fabric.Admin
	stations []*cluster.RemoteStation
	addrs    []string
}

// DialFabric connects to the fabric rooted at rootAddr, waiting up to
// wait for the roster to reach want stations (0 = take the roster as
// found). Station index i maps to the i-th lowest live position.
func DialFabric(rootAddr string, want int, wait time.Duration) (*FabricTarget, error) {
	root := fabric.DialAdmin(rootAddr)
	defer root.Close()
	var top fabric.TopologyReply
	err := webtest.PollErr(wait, fmt.Sprintf("fabric roster to reach %d stations", want), func() (bool, error) {
		t, err := root.Topology()
		if err != nil {
			// The root may still be binding; keep polling.
			return false, nil
		}
		top = t
		return want == 0 || t.N >= want, nil
	})
	if err != nil {
		return nil, err
	}
	positions := make([]int, 0, len(top.Roster))
	for pos := range top.Roster {
		if !top.Down[pos] {
			positions = append(positions, pos)
		}
	}
	sort.Ints(positions)
	if want > 0 && len(positions) > want {
		positions = positions[:want]
	}
	t := &FabricTarget{}
	for _, pos := range positions {
		addr := top.Roster[pos]
		st, err := cluster.DialStation(addr)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("dial station %d at %s: %w", pos, addr, err)
		}
		t.admins = append(t.admins, fabric.DialAdmin(addr))
		t.stations = append(t.stations, st)
		t.addrs = append(t.addrs, addr)
	}
	return t, nil
}

// Stations reports the number of dialed stations.
func (t *FabricTarget) Stations() int { return len(t.stations) }

// Addrs lists the dialed station addresses, index-aligned.
func (t *FabricTarget) Addrs() []string { return t.addrs }

// Broadcast pushes one course tree-wide from the root.
func (t *FabricTarget) Broadcast(url string, refsOnly bool) (int64, uint64, error) {
	res, err := t.admins[0].Broadcast(url, refsOnly)
	if err != nil {
		return 0, 0, err
	}
	return res.Bytes, res.TraceID, nil
}

// Migrate runs the end-of-lecture migration from the root.
func (t *FabricTarget) Migrate(url string) (uint64, error) {
	res, err := t.admins[0].EndLecture(url)
	if err != nil {
		return 0, err
	}
	return res.TraceID, nil
}

// Resolve makes one station pull a course for itself.
func (t *FabricTarget) Resolve(station int, url string) (int64, uint64, error) {
	res, err := t.admins[station].Fetch(url)
	if err != nil {
		return 0, 0, err
	}
	return res.Bytes, res.TraceID, nil
}

// Search runs a federated query through one station.
func (t *FabricTarget) Search(station int, terms []string, phrase bool, topK int) (int, uint64, error) {
	res, err := t.admins[station].Search(terms, phrase, topK)
	if err != nil {
		return 0, 0, err
	}
	return len(res.Hits), res.TraceID, nil
}

// Checkout exercises the station's transactional checkout ledger:
// check out, check straight back in. A single-winner conflict comes
// back as an error wrapping docdb.ErrCheckedOut.
func (t *FabricTarget) Checkout(station int, kind, objectID, user string) error {
	id, err := t.stations[station].CheckOut(kind, objectID, user)
	if err != nil {
		return err
	}
	return t.stations[station].CheckIn(id, "load run")
}

// Stats scrapes every station's snapshot.
func (t *FabricTarget) Stats() ([]cluster.StatsReply, error) {
	out := make([]cluster.StatsReply, 0, len(t.stations))
	for i, st := range t.stations {
		s, err := st.Stats()
		if err != nil {
			return nil, fmt.Errorf("stats from station %d: %w", i, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// CollectTrace gathers one trace's spans and correlated journal
// events fabric-wide through the root's scatter-gather collection —
// the call webdocload makes for each slow exemplar before tearing a
// failed run's fabric down.
func (t *FabricTarget) CollectTrace(id uint64) ([]obs.Span, []obs.Event, error) {
	rep, err := t.admins[0].Trace(id)
	if err != nil {
		return nil, nil, err
	}
	var events []obs.Event
	if evs, err := t.admins[0].Events(obs.EventFilter{TraceID: id}); err == nil {
		events = evs.Events
	}
	return rep.Spans, events, nil
}

// Close releases all connections.
func (t *FabricTarget) Close() {
	for _, a := range t.admins {
		a.Close()
	}
	for _, s := range t.stations {
		s.Close()
	}
}

// IsConflict recognizes checkout contention (the single-winner ledger
// refusing a second checkout) from its wire form — errors cross the
// transport as strings, so the sentinel cannot be matched by value.
func IsConflict(err error) bool {
	return err != nil && strings.Contains(err.Error(), "checked out")
}
