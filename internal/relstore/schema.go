// Package relstore is an embedded relational storage engine. It stands in
// for the off-the-rack relational DBMS (MS SQL Server behind ODBC/JDBC)
// that the paper uses underneath its Web document database: typed
// schemas, single-column primary keys, hash secondary indexes, foreign
// keys, transactions with undo, and snapshot + write-ahead-log
// persistence — the narrow slice of SQL-server behaviour the document
// layer in section 3 of the paper actually relies on.
package relstore

import (
	"errors"
	"fmt"
	"time"
)

// ColType enumerates the column types supported by the engine.
type ColType int

// Supported column types. TTime values are time.Time, TBytes are []byte,
// TInt are int64 (smaller integer types are widened on insert).
const (
	TInt ColType = iota + 1
	TFloat
	TText
	TBytes
	TBool
	TTime
)

// String returns the SQL-ish name of the type.
func (t ColType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TText:
		return "TEXT"
	case TBytes:
		return "BYTES"
	case TBool:
		return "BOOL"
	case TTime:
		return "TIME"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// ParseColType converts a SQL-ish type name to a ColType.
func ParseColType(s string) (ColType, error) {
	switch s {
	case "INT", "INTEGER":
		return TInt, nil
	case "FLOAT", "REAL", "DOUBLE":
		return TFloat, nil
	case "TEXT", "VARCHAR", "STRING":
		return TText, nil
	case "BYTES", "BLOB":
		return TBytes, nil
	case "BOOL", "BOOLEAN":
		return TBool, nil
	case "TIME", "DATETIME", "TIMESTAMP":
		return TTime, nil
	default:
		return 0, fmt.Errorf("relstore: unknown column type %q", s)
	}
}

// Column describes one attribute of a table.
type Column struct {
	Name    string
	Type    ColType
	NotNull bool
}

// ForeignKey declares that a column holds primary-key values of another
// table, mirroring the "foreign key to the ... table" attributes in the
// paper's Script/Implementation/TestRecord/BugReport/Annotation tables.
type ForeignKey struct {
	Column   string // local column holding the reference
	RefTable string // table whose primary key is referenced
}

// Schema is the definition of one table.
type Schema struct {
	Name        string
	Columns     []Column
	Key         string // name of the primary-key column
	ForeignKeys []ForeignKey
}

// Row maps column names to values. Missing columns read as NULL (nil).
type Row map[string]any

// Clone returns a shallow copy of the row ([]byte values are shared).
func (r Row) Clone() Row {
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// Engine-level errors. Errors wrapping these can be tested with
// errors.Is.
var (
	ErrNoTable     = errors.New("relstore: no such table")
	ErrTableExists = errors.New("relstore: table already exists")
	ErrNoColumn    = errors.New("relstore: no such column")
	ErrDuplicate   = errors.New("relstore: duplicate primary key")
	ErrNotFound    = errors.New("relstore: row not found")
	ErrType        = errors.New("relstore: value does not match column type")
	ErrNull        = errors.New("relstore: NULL in NOT NULL column")
	ErrFK          = errors.New("relstore: foreign key violation")
	ErrSchema      = errors.New("relstore: invalid schema")
	ErrTxDone      = errors.New("relstore: transaction already finished")
	ErrKeyChange   = errors.New("relstore: primary key of a row cannot be updated")
	ErrLockOrder   = errors.New("relstore: table locks must be acquired in sorted order")
	ErrWALOpen     = errors.New("relstore: a write-ahead log is already attached")
)

// validate checks the schema for structural problems.
func (s *Schema) validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: empty table name", ErrSchema)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("%w: table %s has no columns", ErrSchema, s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("%w: table %s has an unnamed column", ErrSchema, s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: table %s repeats column %s", ErrSchema, s.Name, c.Name)
		}
		if c.Type < TInt || c.Type > TTime {
			return fmt.Errorf("%w: table %s column %s has invalid type", ErrSchema, s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if s.Key == "" {
		return fmt.Errorf("%w: table %s has no primary key", ErrSchema, s.Name)
	}
	if !seen[s.Key] {
		return fmt.Errorf("%w: table %s primary key %s is not a column", ErrSchema, s.Name, s.Key)
	}
	for _, fk := range s.ForeignKeys {
		if !seen[fk.Column] {
			return fmt.Errorf("%w: table %s foreign key on unknown column %s", ErrSchema, s.Name, fk.Column)
		}
		if fk.RefTable == "" {
			return fmt.Errorf("%w: table %s foreign key on %s has no target", ErrSchema, s.Name, fk.Column)
		}
	}
	return nil
}

// column returns the declared column, if any.
func (s *Schema) column(name string) (Column, bool) {
	for _, c := range s.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// coerce normalizes a caller-supplied value to the canonical in-engine
// representation for the column type (int64, float64, string, []byte,
// bool, time.Time), or reports ErrType.
func coerce(t ColType, v any) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case TInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case int32:
			return int64(x), nil
		case uint32:
			return int64(x), nil
		case float64:
			// JSON round-trips integers as float64; accept exact ones.
			if x == float64(int64(x)) {
				return int64(x), nil
			}
		}
	case TFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case float32:
			return float64(x), nil
		case int:
			return float64(x), nil
		case int64:
			return float64(x), nil
		}
	case TText:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case TBytes:
		if x, ok := v.([]byte); ok {
			return x, nil
		}
		if x, ok := v.(string); ok {
			return []byte(x), nil
		}
	case TBool:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	case TTime:
		switch x := v.(type) {
		case time.Time:
			return x, nil
		case string:
			ts, err := time.Parse(time.RFC3339Nano, x)
			if err == nil {
				return ts, nil
			}
		case int64:
			return time.Unix(0, x).UTC(), nil
		}
	}
	return nil, fmt.Errorf("%w: %T is not %s", ErrType, v, t)
}
