// Package analysis is the engine behind webdoclint: a small static
// analysis framework built entirely on the standard library's go/ast,
// go/parser and go/types, with no dependency on x/tools.
//
// A Loader type-checks packages from source — module-internal import
// paths resolve straight to their directories under the module root,
// everything else goes through the compiler's source importer — so the
// analyzers see fully resolved types and can tell os.Rename from a
// local helper of the same name.
//
// An Analyzer is a name, a doc string and a Run function over a Pass;
// a Pass bundles one package's syntax, type information and a
// position-tagged diagnostic sink. Run applies a set of analyzers to a
// set of packages and returns the merged, position-sorted diagnostics.
//
// The six project analyzers encode invariants the rest of the
// codebase relies on but go vet cannot see:
//
//   - atomicwrite: no raw os.Create, os.WriteFile or os.Rename outside
//     internal/atomicio — file installation is temp, fsync, rename.
//   - lockorder: statically-known table lists passed to relstore's
//     Begin are sorted ascending, mirroring the runtime lock hierarchy
//     so deadlock-shaped declarations are caught before they run.
//   - routearound: every route-around classifier handed to the
//     fabric's fanOutTree is grounded in transport.Unreachable —
//     grafting on any other error class re-delivers to subtrees whose
//     relay already ran.
//   - sentinelerr: comparisons against the module's Err* sentinels use
//     errors.Is, not == or !=, so wrapped errors keep matching.
//   - tracecall: inside traced scopes (CtxHandler registrations,
//     functions carrying a trace context, and the method set of any
//     type that registers CtxHandlers) RPCs go through CallTrace, not
//     Call or CallWithTimeout, so distributed traces never silently
//     lose a hop.
//   - wiretag: every tag constant in a wire package is referenced by
//     an Append-side function and has a case arm in a Read-side
//     switch, keeping the codec's encode and decode tables in lockstep.
//
// Deliberate exceptions are waived in place with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above. The reason is mandatory, the
// analyzer name must exist, and a suppression that suppresses nothing
// is itself reported — waivers cannot silently outlive the code they
// excuse.
//
// Fixture packages under testdata/src pin each analyzer's positive and
// negative cases with // want expectation comments; see want_test.go.
package analysis
