// Fixture for the atomicwrite analyzer: raw os writes are flagged,
// the atomicio path and non-destructive os calls are not.
package aw

import (
	"io"
	"os"

	"repro/internal/atomicio"
)

func bad(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want `os\.WriteFile truncates the destination`
		return err
	}
	f, err := os.Create(path) // want `os\.Create truncates the destination`
	if err != nil {
		return err
	}
	f.Close()
	return os.Rename(path+".tmp", path) // want `os\.Rename installs a file outside`
}

func good(path string, data []byte) error {
	if err := atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}); err != nil {
		return err
	}
	// Reads, appends and temp files are out of scope: only the three
	// destructive-install calls are banned.
	if _, err := os.ReadFile(path); err != nil {
		return err
	}
	if f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644); err == nil {
		f.Close()
	}
	tmp, err := os.CreateTemp("", "fixture-*")
	if err != nil {
		return err
	}
	tmp.Close()
	return os.Remove(tmp.Name())
}
