package cluster

import (
	"fmt"
	"time"
)

// Simulated fabric-wide trace collection: the discrete-event model of
// fabric.Station.Trace's scatter-gather, so the live implementation's
// collection cost can be pinned against controlled simulated time the
// same way search, broadcast and resolve are. The shape is search's —
// ride to the root, scatter one small request per tree edge, gather
// replies up the live-grafted tree — with one structural difference in
// the cost model: span sets concatenate instead of merging to a
// bounded top-k, so an edge near the root carries its whole subtree's
// spans. Collection traffic therefore grows with the traced
// operation's footprint, not with a fixed k — the price of a complete
// reconstruction, and the reason rings bound what a station can hold.

// Cost model of one collection hop: a request names a TraceID (small,
// fixed); a reply costs a fixed overhead plus a per-span share (a
// span's method name, timing, byte counts and annotations).
const (
	traceRequestBytes = 128
	traceSpanBytes    = 192
)

// traceReplyBytes sizes a reply message carrying n spans.
func traceReplyBytes(n int) int64 {
	return traceRequestBytes + int64(n)*traceSpanBytes
}

// TraceCollectReport summarizes one simulated collection.
type TraceCollectReport struct {
	// Spans is the total number of spans gathered (down stations'
	// contributions are lost until they rejoin).
	Spans int
	// Covered counts the stations that answered the scatter.
	Covered int
	// Latency is the simulated time from issuing the collection at the
	// requesting station to the concatenated reply arriving back.
	Latency time.Duration
	// WireBytes is the total traffic the collection moved.
	WireBytes int64
}

// CollectTrace models collecting one trace's spans fabric-wide from a
// requesting station. spanCount reports how many spans each station's
// ring holds for the trace (the simulator has no real rings; the
// caller supplies the footprint of the operation being reconstructed).
// The requesting station must be live; the root cannot fail.
func (c *Cluster) CollectTrace(pos int, spanCount func(p int) int) (*TraceCollectReport, error) {
	st, err := c.Station(pos)
	if err != nil {
		return nil, err
	}
	if c.down[pos] {
		return nil, fmt.Errorf("%w: station %d is down", ErrNoStation, pos)
	}
	start := c.sim.Now()
	bytesBefore := c.sim.Stats().TotalBytes
	rep := &TraceCollectReport{}
	var failure error

	// gather collects one station's spans and its (live-grafted)
	// subtree's, delivering the concatenated count and completion time.
	var gather func(p int, done func(spans int, at time.Duration))
	gather = func(p int, done func(int, time.Duration)) {
		local := spanCount(p)
		rep.Covered++
		kids, err := c.liveChildren(p)
		if err != nil {
			failure = err
			done(0, c.sim.Now())
			return
		}
		if len(kids) == 0 {
			done(local, c.sim.Now())
			return
		}
		total := local
		pending := len(kids)
		var latest time.Duration
		for _, kid := range kids {
			kid := kid
			err := c.sim.Transfer(c.ids[p-1], c.ids[kid-1], traceRequestBytes, func(time.Duration) {
				gather(kid, func(kidSpans int, _ time.Duration) {
					err := c.sim.Transfer(c.ids[kid-1], c.ids[p-1], traceReplyBytes(kidSpans), func(at time.Duration) {
						total += kidSpans
						if at > latest {
							latest = at
						}
						pending--
						if pending == 0 {
							done(total, latest)
						}
					})
					if err != nil {
						failure = err
					}
				})
			})
			if err != nil {
				failure = err
				return
			}
		}
	}

	finish := func(spans int, at time.Duration) {
		rep.Spans = spans
		rep.Latency = at - start
	}
	if pos == 1 {
		gather(1, finish)
	} else {
		// The collection rides to the root first, like every federation
		// query.
		err := c.sim.Transfer(c.ids[st.Pos-1], c.ids[0], traceRequestBytes, func(time.Duration) {
			gather(1, func(spans int, _ time.Duration) {
				err := c.sim.Transfer(c.ids[0], c.ids[st.Pos-1], traceReplyBytes(spans), func(at time.Duration) {
					finish(spans, at)
				})
				if err != nil {
					failure = err
				}
			})
		})
		if err != nil {
			return nil, err
		}
	}
	c.sim.Run()
	if failure != nil {
		return nil, failure
	}
	rep.WireBytes = c.sim.Stats().TotalBytes - bytesBefore
	return rep, nil
}
