// Fixture for the sentinelerr analyzer: module sentinels must be
// matched with errors.Is; nil checks, local variables and foreign
// sentinels keep their ==.
package se

import (
	"errors"
	"os"

	"repro/internal/relstore"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrLocal is a sentinel of this (module-internal) fixture package.
var ErrLocal = errors.New("se: local sentinel")

func bad(err error) bool {
	if err == transport.ErrTimeout { // want `comparison == ErrTimeout misses wrapped errors; use errors\.Is\(err, transport\.ErrTimeout\)`
		return true
	}
	if wire.ErrChecksum == err { // want `comparison == ErrChecksum misses wrapped errors`
		return true
	}
	if err != relstore.ErrNoTable { // want `comparison != ErrNoTable misses wrapped errors`
		return false
	}
	return err == ErrLocal // want `comparison == ErrLocal misses wrapped errors`
}

func good(err error) bool {
	if err == nil || errors.Is(err, transport.ErrTimeout) {
		return true
	}
	if err == os.ErrNotExist { // foreign module: its own idioms apply
		return true
	}
	var local error
	return err == local // not a package-level sentinel
}
