package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[uint64]bool, 10000)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id")
		}
		if seen[id] {
			t.Fatalf("duplicate id %x after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestSpanRingWrapAndForTrace(t *testing.T) {
	r := NewSpanRing(4)
	for i := 1; i <= 6; i++ {
		r.Add(Span{TraceID: uint64(i%2 + 1), SpanID: uint64(i)})
	}
	all := r.Snapshot()
	if len(all) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(all))
	}
	// Oldest-first: spans 3,4,5,6 survive.
	if all[0].SpanID != 3 || all[3].SpanID != 6 {
		t.Fatalf("ring order = %v..%v", all[0].SpanID, all[3].SpanID)
	}
	// Trace 1 owns even i (i%2+1==1): spans 4 and 6 retained.
	got := r.ForTrace(1)
	if len(got) != 2 || got[0].SpanID != 4 || got[1].SpanID != 6 {
		t.Fatalf("ForTrace(1) = %+v", got)
	}
	if r.ForTrace(0) != nil {
		t.Fatal("ForTrace(0) must return nothing")
	}
}

func TestObserverSpanLifecycle(t *testing.T) {
	o := NewObserver(16)
	o.SetPos(5)

	if sp := o.Begin(TraceContext{}, "Fabric.Push"); sp != nil {
		t.Fatal("untraced request must yield a nil span")
	}

	parent := TraceContext{TraceID: 77, SpanID: 11}
	sp := o.Begin(parent, "Fabric.Push")
	if sp == nil {
		t.Fatal("traced request must yield a span")
	}
	child := sp.Context()
	if child.TraceID != 77 || child.SpanID == 0 || child.SpanID == parent.SpanID {
		t.Fatalf("child context = %+v", child)
	}
	sp.Annotate("grafted dead child %d", 5)
	sp.AddBytes(128)
	sp.End(errors.New("boom"))

	spans := o.ForTrace(77)
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	got := spans[0]
	if got.Parent != 11 || got.Station != 5 || got.Bytes != 128 || got.Err != "boom" {
		t.Fatalf("span = %+v", got)
	}
	if len(got.Notes) != 1 || got.Notes[0] != "grafted dead child 5" {
		t.Fatalf("notes = %v", got.Notes)
	}
	if got.Duration < 0 {
		t.Fatalf("duration = %v", got.Duration)
	}
}

func TestNilObserverAndSpanSafe(t *testing.T) {
	var o *Observer
	o.SetPos(3)
	o.Observe("m", time.Millisecond, false)
	if o.Pos() != 0 || o.ForTrace(1) != nil || o.RecentSpans(5) != nil {
		t.Fatal("nil observer must be inert")
	}
	sp := o.Begin(TraceContext{TraceID: 9}, "m")
	if sp != nil {
		t.Fatal("nil observer must yield nil span")
	}
	// Every ActiveSpan method tolerates nil.
	sp.Annotate("x %d", 1)
	sp.AddBytes(10)
	sp.End(nil)
	if ctx := sp.Context(); ctx.TraceID != 0 {
		t.Fatalf("nil span context = %+v", ctx)
	}
}

func TestRecentSpansNewestFirst(t *testing.T) {
	o := NewObserver(8)
	for i := 1; i <= 3; i++ {
		sp := o.Begin(TraceContext{TraceID: uint64(i)}, "m")
		sp.End(nil)
	}
	recent := o.RecentSpans(2)
	if len(recent) != 2 || recent[0].TraceID != 3 || recent[1].TraceID != 2 {
		t.Fatalf("recent = %+v", recent)
	}
}

func TestEventFormat(t *testing.T) {
	line := Event("graft", "parent", 2, "child", 5, "err", "dial tcp: connection refused")
	if !strings.HasPrefix(line, "event=graft parent=2 child=5 err=") {
		t.Fatalf("line = %q", line)
	}
	if !strings.Contains(line, `"dial tcp: connection refused"`) {
		t.Fatalf("spacey value not quoted: %q", line)
	}
	if got := Event("rejoin", "pos", 4); got != "event=rejoin pos=4" {
		t.Fatalf("got %q", got)
	}
}
