package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/workload"
)

// TestNodeConcurrentImportAndSQL hammers one station node with
// concurrent Import, SQL and Ping RPCs from multiple connections — the
// traffic shape a fabric station sees when a broadcast lands while
// administrators query it. Run it under -race: it is the distributed
// counterpart of the relstore/docdb concurrency suites.
func TestNodeConcurrentImportAndSQL(t *testing.T) {
	_, addr, _ := startNode(t, 1, false)

	// Pre-build one distinct bundle per importer on scratch stores.
	const importers = 6
	bundles := make([]*docdb.Bundle, importers)
	for i := 0; i < importers; i++ {
		src, err := docdb.Open(relstore.NewDB(), blob.NewStore())
		if err != nil {
			t.Fatal(err)
		}
		src.Now = func() time.Time { return time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC) }
		spec := smallCourse(10 + i)
		if _, err := workload.BuildCourse(src, spec); err != nil {
			t.Fatal(err)
		}
		if _, err := src.NewInstance(spec.URL, 1, true); err != nil {
			t.Fatal(err)
		}
		b, err := src.ExportBundle(spec.URL)
		if err != nil {
			t.Fatal(err)
		}
		bundles[i] = b
	}

	var wg sync.WaitGroup
	errs := make(chan error, importers*4)

	// Importers: each pushes its own bundle, then re-imports it (the
	// no-op resident path) a few times.
	for i := 0; i < importers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, err := DialStation(addr)
			if err != nil {
				errs <- err
				return
			}
			defer rs.Close()
			for k := 0; k < 3; k++ {
				reply, err := rs.Import(bundles[i], false)
				if err != nil {
					errs <- fmt.Errorf("import %d: %w", i, err)
					return
				}
				if reply.Form != schema.FormInstance {
					errs <- fmt.Errorf("import %d: form %s", i, reply.Form)
					return
				}
			}
		}()
	}

	// Readers: SQL scans and pings interleaved with the imports.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, err := DialStation(addr)
			if err != nil {
				errs <- err
				return
			}
			defer rs.Close()
			for k := 0; k < 10; k++ {
				if _, err := rs.SQL("SELECT script_name FROM scripts"); err != nil {
					errs <- fmt.Errorf("sql: %w", err)
					return
				}
				if _, err := rs.SQL("SELECT file_id FROM html_files LIMIT 5"); err != nil {
					errs <- fmt.Errorf("sql files: %w", err)
					return
				}
				if _, err := rs.Ping(); err != nil {
					errs <- fmt.Errorf("ping: %w", err)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every bundle landed exactly once.
	rs, err := DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	info, err := rs.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if info.Objects != importers {
		t.Errorf("document objects = %d, want %d", info.Objects, importers)
	}
}
