// Package locking implements the object-locking compatibility table of
// the paper (section 3) for hierarchical Web document objects, enabling
// collaborative course editing: "if a container has a read lock by a
// user, its components (and itself) can have the read access by another
// user, but not the write access. However, the parent objects of the
// container can have both read and write access by another user."
//
// Objects form a containment tree addressed by paths (database /
// script / implementation / file). The rules, as a compatibility table
// between a held lock and a request by a different user:
//
//	held \ request        R same   W same   R component   W component   R parent   W parent
//	Read  on container      yes      no        yes            no           yes        yes
//	Write on container      no       no        no             no           yes        yes
//
// A lock on a container covers its components (the "component" columns
// describe requests inside a locked container's subtree), while parent
// objects of the container stay both readable and writable, exactly as
// the paper's table prescribes. Locks held by the same user never
// conflict with that user's own requests. The manager blocks
// conflicting requests, detects deadlocks through a wait-for graph, and
// honours context cancellation.
//
// This manager expresses user-visible, document-level policy only.
// Storage-level isolation is no longer its job: the relational
// substrate (internal/relstore) runs per-table reader/writer locking
// with transactional undo, so row access under a granted document lock
// is already consistent without funnelling every operation through this
// manager.
package locking

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Read Mode = iota + 1
	Write
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Relation describes where a held lock sits relative to a requested
// node.
type Relation int

// Relations between the held lock's node and the requested node.
const (
	// Same: the request addresses exactly the locked object.
	Same Relation = iota + 1
	// HeldIsAncestor: the request addresses a component inside the
	// locked container.
	HeldIsAncestor
	// HeldIsDescendant: the request addresses a parent of the locked
	// container.
	HeldIsDescendant
	// Unrelated: disjoint subtrees.
	Unrelated
)

// Compatible is the paper's compatibility table as a pure function:
// would a lock held by one user in the given relation allow another
// user's request?
func Compatible(held Mode, request Mode, rel Relation) bool {
	switch rel {
	case Unrelated:
		return true
	case HeldIsDescendant:
		// "The parent objects of the container can have both read and
		// write access by another user."
		return true
	case Same, HeldIsAncestor:
		// The container and its components: readable under a read
		// lock, untouchable under a write lock.
		return held == Read && request == Read
	default:
		return false
	}
}

// Path addresses one object in the containment hierarchy.
type Path []string

// String joins the path with slashes.
func (p Path) String() string { return strings.Join(p, "/") }

// Manager errors.
var (
	ErrDeadlock = errors.New("locking: deadlock detected")
	ErrReleased = errors.New("locking: lock already released")
	ErrEmpty    = errors.New("locking: empty path")
)

// holder is one granted lock.
type holder struct {
	id   uint64
	user string
	mode Mode
	path Path
}

// node is one object in the containment tree.
type node struct {
	children map[string]*node
	holders  map[uint64]*holder
}

func newNode() *node {
	return &node{children: make(map[string]*node), holders: make(map[uint64]*holder)}
}

// Manager grants and releases hierarchical locks.
type Manager struct {
	mu      sync.Mutex
	root    *node
	nextID  uint64
	waitCh  chan struct{}
	waiting map[string]map[string]bool // waiting user -> users blocking it
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		root:    newNode(),
		waitCh:  make(chan struct{}),
		waiting: make(map[string]map[string]bool),
	}
}

// Lock is a granted lock handle.
type Lock struct {
	m    *Manager
	id   uint64
	user string
	mode Mode
	path Path
	done bool
}

// User returns the lock owner.
func (l *Lock) User() string { return l.user }

// Mode returns the granted mode.
func (l *Lock) Mode() Mode { return l.mode }

// Path returns the locked object path.
func (l *Lock) Path() Path { return l.path }

// walk returns the chain of nodes from the root to the path's node,
// creating nodes as needed. Caller holds m.mu.
func (m *Manager) walk(p Path, create bool) []*node {
	chain := []*node{m.root}
	cur := m.root
	for _, seg := range p {
		next, ok := cur.children[seg]
		if !ok {
			if !create {
				return chain
			}
			next = newNode()
			cur.children[seg] = next
		}
		chain = append(chain, next)
		cur = next
	}
	return chain
}

// conflictingUsers returns the set of other users whose held locks
// forbid the request, empty when the request can be granted now. Per
// the paper's table only locks at the requested object itself or at its
// ancestors (containers holding it) can conflict; locks strictly below
// the requested node leave their parents fully accessible. Caller
// holds m.mu.
func (m *Manager) conflictingUsers(user string, p Path, mode Mode) map[string]bool {
	conflicts := make(map[string]bool)
	chain := m.walk(p, true)
	target := chain[len(chain)-1]
	for _, n := range chain[:len(chain)-1] {
		for _, h := range n.holders {
			if h.user != user && !Compatible(h.mode, mode, HeldIsAncestor) {
				conflicts[h.user] = true
			}
		}
	}
	for _, h := range target.holders {
		if h.user != user && !Compatible(h.mode, mode, Same) {
			conflicts[h.user] = true
		}
	}
	return conflicts
}

// grant installs the lock. Caller holds m.mu.
func (m *Manager) grant(user string, p Path, mode Mode) *Lock {
	m.nextID++
	h := &holder{id: m.nextID, user: user, mode: mode, path: p}
	chain := m.walk(p, true)
	chain[len(chain)-1].holders[h.id] = h
	return &Lock{m: m, id: h.id, user: user, mode: mode, path: p}
}

// wouldDeadlock reports whether blocking `user` on `blockers` closes a
// cycle in the wait-for graph. Caller holds m.mu.
func (m *Manager) wouldDeadlock(user string, blockers map[string]bool) bool {
	var visit func(u string, seen map[string]bool) bool
	visit = func(u string, seen map[string]bool) bool {
		if u == user {
			return true
		}
		if seen[u] {
			return false
		}
		seen[u] = true
		for next := range m.waiting[u] {
			if visit(next, seen) {
				return true
			}
		}
		return false
	}
	seen := make(map[string]bool)
	for b := range blockers {
		if visit(b, seen) {
			return true
		}
	}
	return false
}

// TryAcquire grants the lock immediately or reports the blocking users
// (sorted) without waiting.
func (m *Manager) TryAcquire(user string, p Path, mode Mode) (*Lock, []string, error) {
	if len(p) == 0 {
		return nil, nil, ErrEmpty
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	conflicts := m.conflictingUsers(user, p, mode)
	if len(conflicts) == 0 {
		return m.grant(user, p, mode), nil, nil
	}
	users := make([]string, 0, len(conflicts))
	for u := range conflicts {
		users = append(users, u)
	}
	sort.Strings(users)
	return nil, users, nil
}

// Acquire blocks until the lock can be granted, the context is
// cancelled, or granting would deadlock with other waiting users.
func (m *Manager) Acquire(ctx context.Context, user string, p Path, mode Mode) (*Lock, error) {
	if len(p) == 0 {
		return nil, ErrEmpty
	}
	for {
		m.mu.Lock()
		conflicts := m.conflictingUsers(user, p, mode)
		if len(conflicts) == 0 {
			delete(m.waiting, user)
			lk := m.grant(user, p, mode)
			m.mu.Unlock()
			return lk, nil
		}
		if m.wouldDeadlock(user, conflicts) {
			delete(m.waiting, user)
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: %s requesting %s on %s", ErrDeadlock, user, mode, p)
		}
		m.waiting[user] = conflicts
		ch := m.waitCh
		m.mu.Unlock()
		select {
		case <-ch:
			// A release happened; retry.
		case <-ctx.Done():
			m.mu.Lock()
			delete(m.waiting, user)
			m.mu.Unlock()
			return nil, ctx.Err()
		}
	}
}

// Release returns the lock. Releasing twice fails with ErrReleased.
func (l *Lock) Release() error {
	m := l.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if l.done {
		return ErrReleased
	}
	l.done = true
	chain := m.walk(l.path, false)
	delete(chain[len(chain)-1].holders, l.id)
	// Wake every waiter to re-check.
	close(m.waitCh)
	m.waitCh = make(chan struct{})
	return nil
}

// HeldLock describes one granted lock for introspection.
type HeldLock struct {
	User string
	Mode Mode
	Path string
}

// Held lists all granted locks sorted by path then user, for the
// instructor workstation's lock table display.
func (m *Manager) Held() []HeldLock {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []HeldLock
	var dfs func(n *node)
	dfs = func(n *node) {
		for _, h := range n.holders {
			out = append(out, HeldLock{User: h.user, Mode: h.mode, Path: h.path.String()})
		}
		keys := make([]string, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			dfs(n.children[k])
		}
	}
	dfs(m.root)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].User < out[j].User
	})
	return out
}

// TableString renders the compatibility table, matching the package
// documentation; useful for the administrative CLI.
func TableString() string {
	var sb strings.Builder
	sb.WriteString("held \\ request   R same  W same  R comp  W comp  R parent  W parent\n")
	for _, held := range []Mode{Read, Write} {
		fmt.Fprintf(&sb, "%-16s", held.String()+" on container")
		for _, rel := range []struct {
			r Relation
			m Mode
		}{
			{Same, Read}, {Same, Write},
			{HeldIsAncestor, Read}, {HeldIsAncestor, Write},
			{HeldIsDescendant, Read}, {HeldIsDescendant, Write},
		} {
			if Compatible(held, rel.m, rel.r) {
				sb.WriteString(" yes    ")
			} else {
				sb.WriteString(" no     ")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
