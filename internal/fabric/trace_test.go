package fabric

import (
	"strings"
	"testing"

	"repro/internal/mtree"
	"repro/internal/obs"
)

// expectedParents derives the tree's parent map from the same
// arithmetic the fan-out uses, so the tests verify reconstruction
// against mtree rather than re-deriving positions by hand.
func expectedParents(t *testing.T, m, n int) map[int]int {
	t.Helper()
	parents := make(map[int]int)
	for pos := 1; pos <= n; pos++ {
		kids, err := mtree.Children(pos, m, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, kid := range kids {
			parents[kid] = pos
		}
	}
	return parents
}

// spansByStation indexes a trace's spans, enforcing the acceptance
// rule on the way: every station contributes exactly one span per hop
// it served.
func spansByStation(t *testing.T, spans []obs.Span, id uint64) map[int][]obs.Span {
	t.Helper()
	by := make(map[int][]obs.Span)
	for _, sp := range spans {
		if sp.TraceID != id {
			t.Fatalf("collected span %x carries trace %x, want %x", sp.SpanID, sp.TraceID, id)
		}
		if sp.Duration <= 0 {
			t.Errorf("span %x at station %d has duration %v", sp.SpanID, sp.Station, sp.Duration)
		}
		by[sp.Station] = append(by[sp.Station], sp)
	}
	return by
}

func TestTraceReconstructsBroadcastHopTree(t *testing.T) {
	stations := newFabric(t, 13, 3, 1)
	root := stations[0]
	spec := authorCourse(t, root, 13)

	admin := DialAdmin(root.Addr())
	defer admin.Close()
	res, err := admin.Broadcast(spec.URL, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == 0 {
		t.Fatal("broadcast result carries no trace ID")
	}

	trace, err := admin.Trace(res.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Spans) != 13 {
		t.Fatalf("collected %d spans, want 13 (one hop per station)", len(trace.Spans))
	}
	by := spansByStation(t, trace.Spans, res.TraceID)
	spanAt := make(map[int]obs.Span, 13)
	for pos := 1; pos <= 13; pos++ {
		got := by[pos]
		if len(got) != 1 {
			t.Fatalf("station %d contributed %d spans, want exactly 1", pos, len(got))
		}
		spanAt[pos] = got[0]
	}
	if spanAt[1].Method != methodBroadcast {
		t.Errorf("root span method = %q, want %q", spanAt[1].Method, methodBroadcast)
	}

	// The reconstructed hop tree must be the distribution tree: every
	// push span's parent is the span its mtree parent recorded.
	parents := expectedParents(t, 3, 13)
	for pos := 2; pos <= 13; pos++ {
		sp := spanAt[pos]
		if sp.Method != methodPush {
			t.Errorf("station %d span method = %q, want %q", pos, sp.Method, methodPush)
		}
		want := spanAt[parents[pos]].SpanID
		if sp.Parent != want {
			t.Errorf("station %d span parent = %x, want station %d's span %x",
				pos, sp.Parent, parents[pos], want)
		}
	}
}

func TestTraceReconstructsSearchScatter(t *testing.T) {
	stations := newFabric(t, 13, 3, 1)
	root := stations[0]
	spec := authorCourse(t, root, 13)
	admin := DialAdmin(root.Addr())
	defer admin.Close()
	if _, err := admin.Broadcast(spec.URL, false); err != nil {
		t.Fatal(err)
	}

	// Enter at a leaf station: its entry hop, the root hop and every
	// scatter hop must share one TraceID.
	entry := DialAdmin(stations[5].Addr())
	defer entry.Close()
	reply, err := entry.Search([]string{"lecture"}, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if reply.TraceID == 0 {
		t.Fatal("search reply carries no trace ID")
	}

	trace, err := admin.Trace(reply.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	// One scatter hop per station, plus the entry hop at station 6.
	if len(trace.Spans) != 14 {
		t.Fatalf("collected %d spans, want 14 (13 scatter hops + 1 entry hop)", len(trace.Spans))
	}
	by := spansByStation(t, trace.Spans, reply.TraceID)
	for pos := 1; pos <= 13; pos++ {
		want := 1
		if pos == 6 {
			want = 2 // the entry hop and its own scatter hop
		}
		if len(by[pos]) != want {
			t.Fatalf("station %d contributed %d spans, want %d", pos, len(by[pos]), want)
		}
	}

	// The entry hop is the root of the reconstruction; the root
	// station's span hangs off it, and every first-level scatter hop
	// hangs off the root's.
	spans := append(by[6], by[1]...)
	var entrySpan, rootSpan obs.Span
	for _, sp := range spans {
		switch sp.Station {
		case 6:
			if sp.Parent == 0 {
				entrySpan = sp
			}
		case 1:
			rootSpan = sp
		}
	}
	if entrySpan.SpanID == 0 {
		t.Fatal("no parentless entry span at station 6")
	}
	if rootSpan.Parent != entrySpan.SpanID {
		t.Errorf("root span parent = %x, want entry span %x", rootSpan.Parent, entrySpan.SpanID)
	}
	parents := expectedParents(t, 3, 13)
	for pos := 2; pos <= 13; pos++ {
		for _, sp := range by[pos] {
			if sp.SpanID == entrySpan.SpanID {
				continue
			}
			want := spanAtStation(by, parents[pos], sp.Parent)
			if !want {
				t.Errorf("station %d scatter span parent %x not among station %d's spans",
					pos, sp.Parent, parents[pos])
			}
		}
	}
}

// spanAtStation reports whether any of a station's spans has the given
// SpanID.
func spanAtStation(by map[int][]obs.Span, pos int, id uint64) bool {
	for _, sp := range by[pos] {
		if sp.SpanID == id {
			return true
		}
	}
	return false
}

func TestTraceRecordsGraftAroundDeadStation(t *testing.T) {
	stations := newFabric(t, 13, 3, 1)
	root := stations[0]
	spec := authorCourse(t, root, 13)

	// Kill interior station 2 (children 5, 6, 7) and let the failure
	// detector declare it dead before broadcasting.
	stations[1].Close()
	probeUntilDown(t, root, 2)

	admin := DialAdmin(root.Addr())
	defer admin.Close()
	res, err := admin.Broadcast(spec.URL, false)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := admin.Trace(res.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	// 12 live stations, one hop each — the dead one contributes
	// nothing, and the trace collection itself routes around it.
	if len(trace.Spans) != 12 {
		t.Fatalf("collected %d spans, want 12 (dead station contributes none)", len(trace.Spans))
	}
	by := spansByStation(t, trace.Spans, res.TraceID)
	if len(by[2]) != 0 {
		t.Fatalf("dead station 2 contributed %d spans", len(by[2]))
	}

	// The root's hop grafted the dead child: annotated on its span, and
	// the orphaned children hang directly off the root's span.
	rootSpan := by[1][0]
	grafted := false
	for _, note := range rootSpan.Notes {
		if strings.Contains(note, "grafted dead child 2") {
			grafted = true
		}
	}
	if !grafted {
		t.Errorf("root span notes %q lack the graft annotation", rootSpan.Notes)
	}
	for _, pos := range []int{5, 6, 7} {
		if len(by[pos]) != 1 {
			t.Fatalf("station %d contributed %d spans, want 1", pos, len(by[pos]))
		}
		if by[pos][0].Parent != rootSpan.SpanID {
			t.Errorf("orphan station %d span parent = %x, want the grafting root span %x",
				pos, by[pos][0].Parent, rootSpan.SpanID)
		}
	}
}
