package docdb

import (
	"fmt"
	"time"

	"repro/internal/relstore"
	"repro/internal/schema"
)

// TestRecord mirrors the paper's TestRecord table: one testing session
// over an implementation, with the windowing messages that drove the Web
// document traversal.
type TestRecord struct {
	Name        string
	ScriptName  string
	StartingURL string
	Scope       string // "local" or "global"
	Messages    []string
	Created     time.Time
}

// RecordTest stores a test record.
func (s *Store) RecordTest(tr TestRecord) error {
	row := relstore.Row{
		"test_name":   tr.Name,
		"script_name": tr.ScriptName,
		"scope":       tr.Scope,
		"messages":    schema.JoinList(tr.Messages),
		"created":     s.Now(),
	}
	if tr.StartingURL != "" {
		row["starting_url"] = tr.StartingURL
	}
	return s.rel.Insert(schema.TableTestRecords, row)
}

// TestRecords lists the test records of a script.
func (s *Store) TestRecords(scriptName string) ([]TestRecord, error) {
	rows, err := s.rel.Lookup(schema.TableTestRecords, "script_name", scriptName)
	if err != nil {
		return nil, err
	}
	out := make([]TestRecord, len(rows))
	for i, r := range rows {
		out[i] = TestRecord{
			Name:        rowString(r, "test_name"),
			ScriptName:  rowString(r, "script_name"),
			StartingURL: rowString(r, "starting_url"),
			Scope:       rowString(r, "scope"),
			Messages:    schema.SplitList(rowString(r, "messages")),
			Created:     rowTime(r, "created"),
		}
	}
	return out, nil
}

// BugReport mirrors the paper's BugReport table.
type BugReport struct {
	Name             string
	TestName         string
	QAEngineer       string
	Procedure        string
	Description      string
	BadURLs          []string
	MissingObjects   []string
	Inconsistency    string
	RedundantObjects []string
	Created          time.Time
}

// FileBugReport stores a bug report against a test record.
func (s *Store) FileBugReport(br BugReport) error {
	return s.rel.Insert(schema.TableBugReports, relstore.Row{
		"bug_name":          br.Name,
		"test_name":         br.TestName,
		"qa_engineer":       br.QAEngineer,
		"procedure":         br.Procedure,
		"description":       br.Description,
		"bad_urls":          schema.JoinList(br.BadURLs),
		"missing_objects":   schema.JoinList(br.MissingObjects),
		"inconsistency":     br.Inconsistency,
		"redundant_objects": schema.JoinList(br.RedundantObjects),
		"created":           s.Now(),
	})
}

// BugReports lists the bug reports filed against a test record.
func (s *Store) BugReports(testName string) ([]BugReport, error) {
	rows, err := s.rel.Lookup(schema.TableBugReports, "test_name", testName)
	if err != nil {
		return nil, err
	}
	out := make([]BugReport, len(rows))
	for i, r := range rows {
		out[i] = BugReport{
			Name:             rowString(r, "bug_name"),
			TestName:         rowString(r, "test_name"),
			QAEngineer:       rowString(r, "qa_engineer"),
			Procedure:        rowString(r, "procedure"),
			Description:      rowString(r, "description"),
			BadURLs:          schema.SplitList(rowString(r, "bad_urls")),
			MissingObjects:   schema.SplitList(rowString(r, "missing_objects")),
			Inconsistency:    rowString(r, "inconsistency"),
			RedundantObjects: schema.SplitList(rowString(r, "redundant_objects")),
			Created:          rowTime(r, "created"),
		}
	}
	return out, nil
}

// Annotation mirrors the paper's Annotation table: a per-instructor
// overlay (lines, text, simple graphics) on an implementation, stored as
// an encoded annotation file.
type Annotation struct {
	Name        string
	ScriptName  string
	StartingURL string
	Author      string
	Version     int64
	Created     time.Time
	File        []byte // encoded by the annotate package
}

// SaveAnnotation stores an annotation object.
func (s *Store) SaveAnnotation(a Annotation) error {
	if a.Version == 0 {
		a.Version = 1
	}
	row := relstore.Row{
		"ann_name":    a.Name,
		"script_name": a.ScriptName,
		"author":      a.Author,
		"version":     a.Version,
		"created":     s.Now(),
		"file":        a.File,
	}
	if a.StartingURL != "" {
		row["starting_url"] = a.StartingURL
	}
	return s.rel.Insert(schema.TableAnnotations, row)
}

// ReplaceAnnotation overwrites an existing annotation's file and bumps
// its version — an instructor revising their overlay between lectures.
func (s *Store) ReplaceAnnotation(name string, file []byte) error {
	row, err := s.rel.Get(schema.TableAnnotations, name)
	if err != nil {
		return err
	}
	return s.rel.Update(schema.TableAnnotations, name, relstore.Row{
		"file":    file,
		"version": rowInt(row, "version") + 1,
		"created": s.Now(),
	})
}

// Annotations lists the annotations over an implementation, one per
// instructor in the paper's usage.
func (s *Store) Annotations(url string) ([]Annotation, error) {
	rows, err := s.rel.Lookup(schema.TableAnnotations, "starting_url", url)
	if err != nil {
		return nil, err
	}
	out := make([]Annotation, len(rows))
	for i, r := range rows {
		f, _ := r["file"].([]byte)
		out[i] = Annotation{
			Name:        rowString(r, "ann_name"),
			ScriptName:  rowString(r, "script_name"),
			StartingURL: rowString(r, "starting_url"),
			Author:      rowString(r, "author"),
			Version:     rowInt(r, "version"),
			Created:     rowTime(r, "created"),
			File:        f,
		}
	}
	return out, nil
}

// Checkout is one row of the check-in/check-out ledger.
type Checkout struct {
	ID         string
	ObjectKind string
	ObjectID   string
	User       string
	OutTime    time.Time
	InTime     time.Time // zero while still out
}

// Version is one row of the configuration-management history.
type Version struct {
	ID         string
	ObjectKind string
	ObjectID   string
	Version    int64
	Author     string
	Comment    string
	Created    time.Time
}

// CheckOut opens a checkout of a course component for a user. A
// component may be checked out by only one user at a time (the paper's
// configuration management of course components); a second attempt
// fails with ErrCheckedOut. The availability check and the ledger
// insert run in one relstore transaction holding the checkouts table,
// so two users racing for the same component cannot both win. Returns
// the checkout id used by CheckIn.
func (s *Store) CheckOut(kind, objectID, user string) (string, error) {
	tx, err := s.rel.Begin(schema.TableCheckouts)
	if err != nil {
		return "", err
	}
	open, err := openCheckoutTx(tx, kind, objectID)
	if err != nil {
		tx.Rollback()
		return "", err
	}
	if open != nil {
		tx.Rollback()
		return "", fmt.Errorf("%w: %s %s by %s", ErrCheckedOut, kind, objectID, open.User)
	}
	id := s.nextID("co")
	err = tx.Insert(schema.TableCheckouts, relstore.Row{
		"co_id":       id,
		"object_kind": kind,
		"object_id":   objectID,
		"user":        user,
		"out_time":    s.Now(),
	})
	if err != nil {
		tx.Rollback()
		return "", err
	}
	if err := tx.Commit(); err != nil {
		return "", err
	}
	return id, nil
}

// openCheckoutTx returns the open checkout of an object as seen inside
// the transaction, nil when none.
func openCheckoutTx(tx *relstore.Tx, kind, objectID string) (*Checkout, error) {
	rows, err := tx.Select(relstore.Query{
		Table: schema.TableCheckouts,
		Conds: []relstore.Cond{{Col: "object_id", Op: relstore.OpEq, Val: objectID}},
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if rowString(r, "object_kind") != kind {
			continue
		}
		if _, closed := r["in_time"].(time.Time); !closed {
			co := checkoutFromRow(r)
			return &co, nil
		}
	}
	return nil, nil
}

func checkoutFromRow(r relstore.Row) Checkout {
	return Checkout{
		ID:         rowString(r, "co_id"),
		ObjectKind: rowString(r, "object_kind"),
		ObjectID:   rowString(r, "object_id"),
		User:       rowString(r, "user"),
		OutTime:    rowTime(r, "out_time"),
		InTime:     rowTime(r, "in_time"),
	}
}

// CheckIn closes a checkout and records a new version of the component
// in the history, bumping the version counter. The close and the
// version bump run in one relstore transaction over the checkouts and
// versions tables, so concurrent check-ins of different components
// proceed in parallel yet never race a version number.
func (s *Store) CheckIn(checkoutID, comment string) error {
	tx, err := s.rel.Begin(schema.TableCheckouts, schema.TableVersions)
	if err != nil {
		return err
	}
	row, err := tx.Get(schema.TableCheckouts, checkoutID)
	if err != nil {
		tx.Rollback()
		return err
	}
	if _, closed := row["in_time"].(time.Time); closed {
		tx.Rollback()
		return fmt.Errorf("%w: checkout %s already closed", ErrNotCheckedOut, checkoutID)
	}
	co := checkoutFromRow(row)
	if err := tx.Update(schema.TableCheckouts, checkoutID, relstore.Row{"in_time": s.Now()}); err != nil {
		tx.Rollback()
		return err
	}
	history, err := tx.Select(relstore.Query{
		Table: schema.TableVersions,
		Conds: []relstore.Cond{
			{Col: "object_id", Op: relstore.OpEq, Val: co.ObjectID},
			{Col: "object_kind", Op: relstore.OpEq, Val: co.ObjectKind},
		},
	})
	if err != nil {
		tx.Rollback()
		return err
	}
	next := int64(1)
	for _, v := range history {
		if ver := rowInt(v, "version"); ver >= next {
			next = ver + 1
		}
	}
	err = tx.Insert(schema.TableVersions, relstore.Row{
		"ver_id":      s.nextID("ver"),
		"object_kind": co.ObjectKind,
		"object_id":   co.ObjectID,
		"version":     next,
		"author":      co.User,
		"comment":     comment,
		"created":     s.Now(),
	})
	if err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// History lists the recorded versions of a component, oldest first.
func (s *Store) History(kind, objectID string) ([]Version, error) {
	rows, err := s.rel.Select(relstore.Query{
		Table: schema.TableVersions,
		Conds: []relstore.Cond{
			{Col: "object_id", Op: relstore.OpEq, Val: objectID},
			{Col: "object_kind", Op: relstore.OpEq, Val: kind},
		},
		OrderBy: "version",
	})
	if err != nil {
		return nil, err
	}
	out := make([]Version, len(rows))
	for i, r := range rows {
		out[i] = Version{
			ID:         rowString(r, "ver_id"),
			ObjectKind: rowString(r, "object_kind"),
			ObjectID:   rowString(r, "object_id"),
			Version:    rowInt(r, "version"),
			Author:     rowString(r, "author"),
			Comment:    rowString(r, "comment"),
			Created:    rowTime(r, "created"),
		}
	}
	return out, nil
}

// Outstanding lists a user's open checkouts.
func (s *Store) Outstanding(user string) ([]Checkout, error) {
	rows, err := s.rel.Lookup(schema.TableCheckouts, "user", user)
	if err != nil {
		return nil, err
	}
	var out []Checkout
	for _, r := range rows {
		if _, closed := r["in_time"].(time.Time); !closed {
			out = append(out, checkoutFromRow(r))
		}
	}
	return out, nil
}

// CheckoutsOf lists every checkout (open and closed) of one object,
// feeding the virtual library's assessment criteria.
func (s *Store) CheckoutsOf(kind, objectID string) ([]Checkout, error) {
	rows, err := s.rel.Lookup(schema.TableCheckouts, "object_id", objectID)
	if err != nil {
		return nil, err
	}
	var out []Checkout
	for _, r := range rows {
		if rowString(r, "object_kind") == kind {
			out = append(out, checkoutFromRow(r))
		}
	}
	return out, nil
}
