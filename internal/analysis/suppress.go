package analysis

import (
	"fmt"
	"strings"
)

// Suppressions: a comment of the form
//
//	//lint:ignore <analyzer> <reason>
//
// silences diagnostics from that one analyzer on the comment's own
// line (trailing form) or the line immediately below it (standalone
// form). The reason is mandatory — an unexplained suppression is
// itself a diagnostic — and so is actually suppressing something: a
// suppression that matches no diagnostic is reported as unused, so
// stale annotations cannot outlive the code they excused.
const suppressPrefix = "//lint:ignore"

// suppressionAnalyzer names the pseudo-analyzer that owns diagnostics
// about the suppressions themselves. It cannot be suppressed.
const suppressionAnalyzer = "suppression"

type suppression struct {
	file     string
	line     int
	col      int
	analyzer string
	reason   string
	used     bool
}

// collectSuppressions scans a package's comments for lint:ignore
// markers.
func collectSuppressions(pkg *Package) []*suppression {
	var sups []*suppression
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, suppressPrefix) {
					continue
				}
				tail := c.Text[len(suppressPrefix):]
				if tail != "" && tail[0] != ' ' && tail[0] != '\t' {
					continue // some other lint: directive
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(tail)
				s := &suppression{file: pos.Filename, line: pos.Line, col: pos.Column}
				if rest != "" {
					s.analyzer = strings.Fields(rest)[0]
					s.reason = strings.TrimSpace(strings.TrimPrefix(rest, s.analyzer))
				}
				sups = append(sups, s)
			}
		}
	}
	return sups
}

// applySuppressions drops suppressed diagnostics and appends the
// suppression system's own findings: malformed markers, markers
// naming unknown analyzers, and markers that suppressed nothing.
func applySuppressions(diags []Diagnostic, sups []*suppression) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	valid := make([]*suppression, 0, len(sups))
	var out []Diagnostic
	for _, s := range sups {
		switch {
		case s.analyzer == "" || s.reason == "":
			out = append(out, suppressionDiag(s, "malformed suppression: want //lint:ignore <analyzer> <reason>"))
		case !known[s.analyzer]:
			out = append(out, suppressionDiag(s, "suppression names unknown analyzer %q", s.analyzer))
		default:
			valid = append(valid, s)
		}
	}
	for _, d := range diags {
		if s := matchSuppression(valid, d); s != nil {
			s.used = true
			continue
		}
		out = append(out, d)
	}
	for _, s := range valid {
		if !s.used {
			out = append(out, suppressionDiag(s, "unused suppression for %s: no diagnostic on this or the next line", s.analyzer))
		}
	}
	return out
}

func matchSuppression(sups []*suppression, d Diagnostic) *suppression {
	for _, s := range sups {
		if s.analyzer == d.Analyzer && s.file == d.File && (d.Line == s.line || d.Line == s.line+1) {
			return s
		}
	}
	return nil
}

func suppressionDiag(s *suppression, format string, args ...any) Diagnostic {
	return Diagnostic{
		File:     s.file,
		Line:     s.line,
		Col:      s.col,
		Analyzer: suppressionAnalyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}
