package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects a type-checked package
// through its Pass and reports findings with Pass.Reportf; it never
// mutates the package.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:ignore
	Doc  string // one-line description for -list and the README catalog
	Run  func(*Pass)
}

// Pass hands one analyzer one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, position-tagged for editors and CI.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the go-vet-style one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ObjectOf resolves an identifier to its object (uses first, then
// defs), nil when the type-checker recorded neither.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// All returns the full analyzer set in catalog order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicWrite,
		LockOrder,
		RouteAround,
		SentinelErr,
		TraceCall,
		WireTag,
	}
}

// Run applies every analyzer to every package, applies //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by
// position. Unused and malformed suppressions come back as
// diagnostics themselves (analyzer "suppression").
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var sups []*suppression
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			})
		}
		sups = append(sups, collectSuppressions(pkg)...)
	}
	diags = applySuppressions(diags, sups)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
