package cluster

import (
	"fmt"
	"sync/atomic"

	"repro/internal/docdb"
	"repro/internal/minisql"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/transport"
)

// Node exposes one station's document database over TCP — the deployed
// (non-simulated) form of a station, used by the webdocd daemon and the
// multi-node integration tests. The same docdb semantics run under both
// fabrics; netsim measures time, Node moves real bytes.
type Node struct {
	pos   atomic.Int64
	Store *docdb.Store
	srv   *transport.Server
	sql   *minisql.Session
	check atomic.Value // func() error, see SetLivenessCheck
}

// PingReply describes a station to administrative clients.
type PingReply struct {
	Pos     int
	Tables  []string
	Objects int64
}

// BundleRequest asks for a document's transferable closure.
type BundleRequest struct {
	URL string
}

// ImportRequest installs a bundle on the receiving station.
type ImportRequest struct {
	Bundle     docdb.Bundle
	Persistent bool
}

// ImportReply reports the resulting document object.
type ImportReply struct {
	ObjectID string
	Form     string
}

// SQLRequest carries one minisql statement.
type SQLRequest struct {
	Stmt string
}

// SearchLocalRequest queries one station's content index.
type SearchLocalRequest struct {
	Terms  []string
	Phrase bool
	TopK   int
}

// SearchLocalReply carries the station's ranked hits.
type SearchLocalReply struct {
	Hits []search.Hit
}

// CheckOutRequest opens a checkout of a course component on the
// station's configuration-management ledger.
type CheckOutRequest struct {
	Kind     string
	ObjectID string
	User     string
}

// CheckOutReply carries the checkout id CheckIn closes.
type CheckOutReply struct {
	CheckoutID string
}

// CheckInRequest closes a checkout, recording a new component version.
type CheckInRequest struct {
	CheckoutID string
	Comment    string
}

// CheckpointReply reports a checkpoint generation the station wrote on
// request.
type CheckpointReply struct {
	Gen      uint64
	Seq      uint64
	Bytes    int64
	Snapshot string
}

// SQLReply carries a rendered result set (values are formatted, so the
// reply is gob-stable regardless of column types).
type SQLReply struct {
	Columns  []string
	Rows     [][]string
	Affected int
	Msg      string
}

// NewNode wraps a station store in an RPC service. Every node carries
// an observer from birth: per-method latency histograms plus the span
// ring that the fabric's Trace RPC collects from.
func NewNode(pos int, store *docdb.Store) *Node {
	n := &Node{Store: store, sql: minisql.NewSession(store.Rel())}
	n.pos.Store(int64(pos))
	n.srv = transport.NewServer()
	o := obs.NewObserver(0)
	o.SetPos(pos)
	n.srv.SetObserver(o)
	n.srv.Handle("Ping", n.handlePing)
	n.srv.Handle("Bundle", n.handleBundle)
	n.srv.Handle("Import", n.handleImport)
	n.srv.Handle("SQL", n.handleSQL)
	n.srv.Handle("Checkpoint", n.handleCheckpoint)
	n.srv.Handle("SearchLocal", n.handleSearchLocal)
	n.srv.Handle("Stats", n.handleStats)
	n.srv.Handle("CheckOut", n.handleCheckOut)
	n.srv.Handle("CheckIn", n.handleCheckIn)
	return n
}

// Pos returns the station's linear position in the joining order.
func (n *Node) Pos() int { return int(n.pos.Load()) }

// SetPos records the linear position once it is known. A station that
// joins a live distribution fabric learns its position from the root
// after its RPC service is already up, so the field must be safe to
// set while handlers run. The observer follows, so spans recorded
// after a join/rejoin carry the settled position.
func (n *Node) SetPos(pos int) {
	n.pos.Store(int64(pos))
	n.srv.Observer().SetPos(pos)
}

// Observer returns the node's observability state (nil when disabled
// via SetObserver(nil) — every obs method tolerates that).
func (n *Node) Observer() *obs.Observer { return n.srv.Observer() }

// SetObserver replaces (or with nil disables) the node's observer —
// the switch the tracing-overhead benchmark flips.
func (n *Node) SetObserver(o *obs.Observer) {
	o.SetPos(n.Pos())
	n.srv.SetObserver(o)
}

// Handle registers an additional RPC method on the node's server —
// the extension point the distribution fabric uses to add its
// join/broadcast/resolve protocol beside the base station methods.
// Like transport.Server.Handle it must be called before Start.
func (n *Node) Handle(method string, h transport.Handler) { n.srv.Handle(method, h) }

// HandleCtx registers a trace-aware RPC method (see
// transport.CtxHandler) — used by fabric methods that propagate trace
// context further down the tree.
func (n *Node) HandleCtx(method string, h transport.CtxHandler) { n.srv.HandleCtx(method, h) }

// SetLivenessCheck installs a health predicate consulted by liveness
// probes — the fabric's heartbeat handler reports the check's error to
// the root, which treats an unhealthy station like an unreachable one
// (its subtree is grafted onto live ancestors until the check clears).
// A nil check (the default) means the station is healthy whenever it
// answers at all. Safe to call while the node is serving.
func (n *Node) SetLivenessCheck(check func() error) {
	n.check.Store(&check)
}

// LivenessCheck runs the installed health predicate, reporting nil
// when none is installed.
func (n *Node) LivenessCheck() error {
	p, _ := n.check.Load().(*func() error)
	if p == nil || *p == nil {
		return nil
	}
	return (*p)()
}

// Start begins serving on the address and returns the bound address.
func (n *Node) Start(addr string) (string, error) {
	return n.srv.Listen(addr)
}

// Close stops the service.
func (n *Node) Close() error { return n.srv.Close() }

func (n *Node) handlePing(decode func(any) error) (any, error) {
	var req struct{}
	if err := decode(&req); err != nil {
		return nil, err
	}
	var objects int64
	if count, err := n.Store.Rel().Count("doc_objects"); err == nil {
		objects = int64(count)
	}
	return PingReply{Pos: n.Pos(), Tables: n.Store.Rel().Tables(), Objects: objects}, nil
}

func (n *Node) handleBundle(decode func(any) error) (any, error) {
	var req BundleRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	b, err := n.Store.ExportBundle(req.URL)
	if err != nil {
		return nil, err
	}
	return *b, nil
}

func (n *Node) handleImport(decode func(any) error) (any, error) {
	var req ImportRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	obj, err := n.Store.ImportBundle(&req.Bundle, n.Pos(), req.Persistent)
	if err != nil {
		return nil, err
	}
	return ImportReply{ObjectID: obj.ID, Form: obj.Form}, nil
}

// handleCheckpoint writes a checkpoint generation on operator request
// (the webdocctl checkpoint verb). Stations running without a
// durability directory answer with an error.
func (n *Node) handleCheckpoint(decode func(any) error) (any, error) {
	var req struct{}
	if err := decode(&req); err != nil {
		return nil, err
	}
	info, err := n.Store.CheckpointNow()
	if err != nil {
		return nil, err
	}
	return CheckpointReply{Gen: info.Gen, Seq: info.Seq, Bytes: info.Bytes, Snapshot: info.Snapshot}, nil
}

// handleSearchLocal answers a full-text query from this station's
// content index alone — the base-station extension point the
// distribution fabric's scatter-gather search builds on, also useful
// for administrative "what does THIS station hold" queries. The index
// arrives through docdb's ContentIndex attachment (search.Attach); a
// station running without one answers with an error.
func (n *Node) handleSearchLocal(decode func(any) error) (any, error) {
	var req SearchLocalRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	ix, ok := n.Store.ContentIndex().(search.Searcher)
	if !ok {
		return nil, fmt.Errorf("cluster: station %d has no content index attached", n.Pos())
	}
	hits := ix.Search(search.Query{Terms: req.Terms, Phrase: req.Phrase, TopK: req.TopK})
	for i := range hits {
		hits[i].Station = n.Pos()
	}
	return SearchLocalReply{Hits: hits}, nil
}

// handleCheckOut opens a checkout on the station's ledger — the wire
// form of docdb.CheckOut, so remote class administrators (and the
// load harness's editing traffic) contend on the same transactional
// single-winner semantics as local callers.
func (n *Node) handleCheckOut(decode func(any) error) (any, error) {
	var req CheckOutRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	id, err := n.Store.CheckOut(req.Kind, req.ObjectID, req.User)
	if err != nil {
		return nil, err
	}
	return CheckOutReply{CheckoutID: id}, nil
}

// handleCheckIn closes a checkout, bumping the component version.
func (n *Node) handleCheckIn(decode func(any) error) (any, error) {
	var req CheckInRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	if err := n.Store.CheckIn(req.CheckoutID, req.Comment); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

func (n *Node) handleSQL(decode func(any) error) (any, error) {
	var req SQLRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	res, err := n.sql.Exec(req.Stmt)
	if err != nil {
		return nil, err
	}
	reply := SQLReply{Columns: res.Columns, Affected: res.Affected, Msg: res.Msg}
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			switch x := v.(type) {
			case nil:
				cells[i] = "NULL"
			case []byte:
				cells[i] = fmt.Sprintf("<%d bytes>", len(x))
			default:
				cells[i] = fmt.Sprint(x)
			}
		}
		reply.Rows = append(reply.Rows, cells)
	}
	return reply, nil
}

// RemoteStation is a typed client for a Node.
type RemoteStation struct {
	c *transport.Client
}

// DialStation connects to a station daemon.
func DialStation(addr string) (*RemoteStation, error) {
	c, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &RemoteStation{c: c}, nil
}

// Close releases the connection.
func (r *RemoteStation) Close() error { return r.c.Close() }

// Ping fetches station info.
func (r *RemoteStation) Ping() (PingReply, error) {
	var reply PingReply
	err := r.c.Call("Ping", struct{}{}, &reply)
	return reply, err
}

// FetchBundle pulls a document's closure from the station.
func (r *RemoteStation) FetchBundle(url string) (*docdb.Bundle, error) {
	var b docdb.Bundle
	if err := r.c.Call("Bundle", BundleRequest{URL: url}, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// Import pushes a bundle onto the station.
func (r *RemoteStation) Import(b *docdb.Bundle, persistent bool) (ImportReply, error) {
	var reply ImportReply
	err := r.c.Call("Import", ImportRequest{Bundle: *b, Persistent: persistent}, &reply)
	return reply, err
}

// SQL executes a minisql statement on the station.
func (r *RemoteStation) SQL(stmt string) (SQLReply, error) {
	var reply SQLReply
	err := r.c.Call("SQL", SQLRequest{Stmt: stmt}, &reply)
	return reply, err
}

// Checkpoint makes the station write a checkpoint generation now.
func (r *RemoteStation) Checkpoint() (CheckpointReply, error) {
	var reply CheckpointReply
	err := r.c.Call("Checkpoint", struct{}{}, &reply)
	return reply, err
}

// CheckOut opens a checkout of a course component on the station.
func (r *RemoteStation) CheckOut(kind, objectID, user string) (string, error) {
	var reply CheckOutReply
	err := r.c.Call("CheckOut", CheckOutRequest{Kind: kind, ObjectID: objectID, User: user}, &reply)
	return reply.CheckoutID, err
}

// CheckIn closes a checkout on the station.
func (r *RemoteStation) CheckIn(checkoutID, comment string) error {
	var reply struct{}
	return r.c.Call("CheckIn", CheckInRequest{CheckoutID: checkoutID, Comment: comment}, &reply)
}

// SearchLocal queries the station's own content index.
func (r *RemoteStation) SearchLocal(terms []string, phrase bool, topK int) ([]search.Hit, error) {
	var reply SearchLocalReply
	err := r.c.Call("SearchLocal", SearchLocalRequest{Terms: terms, Phrase: phrase, TopK: topK}, &reply)
	return reply.Hits, err
}
