package blob

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewStore()
	r1 := s.Put("a.gif", KindImage, []byte("image-bytes"))
	s.Put("b.gif", KindImage, []byte("image-bytes")) // shared content, refcount 2
	r2 := s.Put("c.wav", KindAudio, []byte("audio-bytes"))
	if err := s.Retain(r2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore()
	if err := s2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := s2.Stats(), s.Stats(); got.Objects != want.Objects ||
		got.PhysicalBytes != want.PhysicalBytes || got.LogicalBytes != want.LogicalBytes {
		t.Errorf("stats after restore = %+v, want %+v", got, want)
	}
	if s2.RefCount(r1) != 2 {
		t.Errorf("shared object refcount = %d, want 2", s2.RefCount(r1))
	}
	if s2.RefCount(r2) != 2 {
		t.Errorf("retained object refcount = %d, want 2", s2.RefCount(r2))
	}
	data, err := s2.Get(r1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("image-bytes")) {
		t.Error("content corrupted across snapshot")
	}
	names := s2.Names(r1)
	if len(names) != 2 || names[0] != "a.gif" || names[1] != "b.gif" {
		t.Errorf("names = %v", names)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	s := NewStore()
	if err := s.Restore(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestRestoreVerifiesContentHash(t *testing.T) {
	s := NewStore()
	s.Put("x", KindOther, []byte("payload"))
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt one content byte inside the gob stream.
	raw := buf.Bytes()
	idx := bytes.Index(raw, []byte("payload"))
	if idx < 0 {
		t.Fatal("payload not found in snapshot")
	}
	raw[idx] ^= 0xFF
	s2 := NewStore()
	if err := s2.Restore(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	s := NewStore()
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Stats().Objects != 0 {
		t.Error("empty snapshot produced objects")
	}
}

// TestLegacyGobSnapshotRestores: Restore must still load the sidecar
// the pre-binary gob encoder wrote, hash-verified as usual.
func TestLegacyGobSnapshotRestores(t *testing.T) {
	s := NewStore()
	r1 := s.Put("a.gif", KindImage, []byte("image-bytes"))
	r2 := s.Put("c.wav", KindAudio, []byte("audio-bytes"))
	entries := []snapshotEntry{
		{Hash: r1.Hash, Kind: KindImage, Refcount: 2, Names: []string{"a.gif", "b.gif"}, Data: []byte("image-bytes")},
		{Hash: r2.Hash, Kind: KindAudio, Refcount: 1, Names: []string{"c.wav"}, Data: []byte("audio-bytes")},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Restore(&buf); err != nil {
		t.Fatalf("legacy gob snapshot rejected: %v", err)
	}
	if s2.RefCount(r1) != 2 || s2.RefCount(r2) != 1 {
		t.Fatalf("refcounts = %d/%d, want 2/1", s2.RefCount(r1), s2.RefCount(r2))
	}
	data, err := s2.Get(r1)
	if err != nil || !bytes.Equal(data, []byte("image-bytes")) {
		t.Fatalf("content after legacy restore = %q err=%v", data, err)
	}
	if names := s2.Names(r1); len(names) != 2 || names[1] != "b.gif" {
		t.Fatalf("names = %v", names)
	}
}
