package fabric

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/docdb"
	"repro/internal/netsim"
	"repro/internal/search"
	"repro/internal/webtest"
)

// addLocalDoc authors a station-local page: the catalog scaffold plus
// one HTML file carrying a shared corpus term and a per-station unique
// term. This is the content only that station can answer for.
func addLocalDoc(t *testing.T, store *docdb.Store, pos int) string {
	t.Helper()
	script := fmt.Sprintf("local-%03d", pos)
	url := fmt.Sprintf("http://mmu/local-%03d/v1", pos)
	if _, err := store.Database("mmu"); err != nil {
		if err := store.CreateDatabase(docdb.Database{Name: "mmu"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.CreateScript(docdb.Script{
		Name: script, DBName: "mmu", Author: fmt.Sprintf("author%d", pos),
		Description: fmt.Sprintf("Station %d shard", pos),
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.AddImplementation(docdb.Implementation{StartingURL: url, ScriptName: script}); err != nil {
		t.Fatal(err)
	}
	page := fmt.Sprintf("<html><title>shard %d</title><body>federated corpus shardterm%04d</body></html>", pos, pos)
	if err := store.PutHTML(url, "index.html", []byte(page)); err != nil {
		t.Fatal(err)
	}
	return url
}

// comparable projection of a hit: everything content-derived. Station
// is excluded — the fabric credits the lowest-positioned replica, the
// merged baseline has no stations at all.
type hitView struct {
	Key     string
	Kind    string
	Score   int64
	Snippet string
}

func views(hits []search.Hit) []hitView {
	out := make([]hitView, len(hits))
	for i, h := range hits {
		out[i] = hitView{Key: h.Key, Kind: h.Kind, Score: h.Score, Snippet: h.Snippet}
	}
	return out
}

func diffHits(t *testing.T, label string, got, want []search.Hit) {
	t.Helper()
	g, w := views(got), views(want)
	if len(g) != len(w) {
		t.Errorf("%s: %d hits, want %d\n got %v\nwant %v", label, len(g), len(w), g, w)
		return
	}
	for i := range g {
		if g[i] != w[i] {
			t.Errorf("%s: hit %d = %+v, want %+v", label, i, g[i], w[i])
		}
	}
}

// TestFederatedSearchMatchesBaselineAndSimulator is the acceptance
// run: a 13-station m=3 fabric answers a full-text query issued at a
// leaf with exactly the hits a single merged-catalog scan baseline
// predicts, pinned against the netsim scatter-gather model — including
// after an interior station is killed mid-run.
func TestFederatedSearchMatchesBaselineAndSimulator(t *testing.T) {
	const (
		n         = 13
		m         = 3
		watermark = 0
	)
	spec := smallCourse(1)
	query := search.Query{Terms: []string{"corpus", "lecture"}, TopK: 1 << 16}

	// --- Live fabric: root authors and broadcasts a course, every
	// station adds a local-only shard document.
	stations := newFabric(t, n, m, watermark)
	root := stations[0]
	authorCourse(t, root, 1)
	res, err := root.Broadcast(spec.URL, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res.Stations {
		if sr.Err != "" {
			t.Fatalf("broadcast to station %d: %s", sr.Pos, sr.Err)
		}
	}
	for i, st := range stations {
		addLocalDoc(t, st.Store(), i+1)
	}

	// --- Merged-catalog baseline: one store holding the union of every
	// station's documents, scanned linearly (no inverted index on the
	// query path).
	base := newTestStore(t)
	bundle, err := root.Store().ExportBundle(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.ImportBundle(bundle, 1, true); err != nil {
		t.Fatal(err)
	}
	for pos := 1; pos <= n; pos++ {
		addLocalDoc(t, base, pos)
	}
	baseline := base.ContentIndex().(*search.Index)
	want := baseline.ScanSearch(query)
	if len(want) < n+1 {
		t.Fatalf("baseline found only %d hits — corpus premise broken", len(want))
	}
	// The scan baseline and the indexed path agree before anything
	// distributed is trusted.
	diffHits(t, "baseline scan vs index", baseline.Search(query), want)

	// --- Simulator: same corpus, same schedule, discrete-event time.
	sim, err := cluster.New(cluster.Config{
		Stations: n, M: m, UplinkBps: 1.25e6, Latency: 5 * time.Millisecond,
		Watermark: watermark, Mode: netsim.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.AuthorCourse(spec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.PreBroadcast(spec.URL); err != nil {
		t.Fatal(err)
	}
	for pos := 1; pos <= n; pos++ {
		st, err := sim.Station(pos)
		if err != nil {
			t.Fatal(err)
		}
		addLocalDoc(t, st.Store, pos)
	}

	// --- Healthy run: the leaf's answer equals the baseline and the
	// simulator, station for station.
	leaf := stations[n-1]
	reply, err := leaf.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	diffHits(t, "fabric vs baseline", reply.Hits, want)
	for _, sr := range reply.Stations {
		if sr.Err != "" {
			t.Errorf("healthy scatter reported station %d: %s", sr.Pos, sr.Err)
		}
	}
	if len(reply.Stations) != n {
		t.Errorf("scatter covered %d stations, want %d", len(reply.Stations), n)
	}
	simRep, err := sim.SearchFederated(n, query)
	if err != nil {
		t.Fatal(err)
	}
	diffHits(t, "simulator vs baseline", simRep.Hits, want)
	if simRep.Answered != n || simRep.Latency <= 0 {
		t.Errorf("simulator report = answered %d, latency %v", simRep.Answered, simRep.Latency)
	}

	// --- Interior failure: station 2 (children 5,6,7) dies without a
	// word. The scatter grafts its subtree onto the root; only station
	// 2's own shard drops out of the answer.
	stations[1].Close()
	deadKey := search.Key(search.KindHTML, "http://mmu/local-002/v1", "index.html")
	deadScript := search.Key(search.KindScript, "", "local-002")
	var wantDead []search.Hit
	for _, h := range want {
		if h.Key != deadKey && h.Key != deadScript {
			wantDead = append(wantDead, h)
		}
	}
	reply, err = leaf.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	diffHits(t, "fabric with dead interior station", reply.Hits, wantDead)
	byPos := map[int]StationResult{}
	for _, sr := range reply.Stations {
		byPos[sr.Pos] = sr
	}
	if byPos[2].Err == "" {
		t.Error("dead station 2 not reported in the scatter results")
	}
	for _, pos := range []int{5, 6, 7} {
		if byPos[pos].Err != "" {
			t.Errorf("grafted child %d reported dead: %s", pos, byPos[pos].Err)
		}
	}

	if err := sim.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	simRep, err = sim.SearchFederated(n, query)
	if err != nil {
		t.Fatal(err)
	}
	diffHits(t, "simulator with dead interior station", simRep.Hits, wantDead)
	if simRep.Answered != n-1 {
		t.Errorf("simulator answered = %d, want %d", simRep.Answered, n-1)
	}
}

// TestSearchTopKBoundsEveryReply: the per-hop merge keeps replies
// bounded, and the bounded answer is exactly the baseline's head.
func TestSearchTopKBoundsEveryReply(t *testing.T) {
	stations := newFabric(t, 5, 2, 0)
	for i, st := range stations {
		addLocalDoc(t, st.Store(), i+1)
	}
	base := newTestStore(t)
	for pos := 1; pos <= 5; pos++ {
		addLocalDoc(t, base, pos)
	}
	want := base.ContentIndex().(*search.Index).ScanSearch(search.Query{Terms: []string{"corpus"}, TopK: 3})
	reply, err := stations[4].Search(search.Query{Terms: []string{"corpus"}, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Hits) != 3 {
		t.Fatalf("topK=3 returned %d hits", len(reply.Hits))
	}
	diffHits(t, "bounded reply", reply.Hits, want)
}

// TestSearchDedupsBroadcastReplicas: a document broadcast to every
// station appears once in the federation answer, credited to the
// lowest-positioned holder (the root).
func TestSearchDedupsBroadcastReplicas(t *testing.T) {
	stations := newFabric(t, 5, 2, 0)
	root := stations[0]
	spec := authorCourse(t, root, 1)
	if _, err := root.Broadcast(spec.URL, false); err != nil {
		t.Fatal(err)
	}
	reply, err := stations[3].Search(search.Query{Terms: []string{"lecture"}, TopK: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, h := range reply.Hits {
		seen[h.Key]++
		if h.Station != 1 {
			t.Errorf("replicated hit %s credited to station %d, want 1", h.Key, h.Station)
		}
	}
	for key, count := range seen {
		if count > 1 {
			t.Errorf("hit %s appeared %d times", key, count)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no hits for broadcast content")
	}
}

// TestReferenceOnlyStationAnswersWithoutBlobs: after a reference-only
// broadcast, a leaf query still finds the course through the catalog
// metadata in every station's index, and answering materializes no
// content anywhere — reference stations never touch the BLOB layer.
func TestReferenceOnlyStationAnswersWithoutBlobs(t *testing.T) {
	stations := newFabric(t, 5, 2, 0)
	root := stations[0]
	spec := authorCourse(t, root, 1)
	if _, err := root.Broadcast(spec.URL, true); err != nil {
		t.Fatal(err)
	}
	reply, err := stations[4].Search(search.Query{Terms: []string{spec.Keywords[0]}, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range reply.Hits {
		if h.Kind == search.KindScript && h.Path == spec.ScriptName {
			found = true
		}
	}
	if !found {
		t.Fatalf("catalog metadata hit missing from reference-only fabric: %+v", reply.Hits)
	}
	for i, st := range stations[1:] {
		if got := st.Store().Blobs().Stats().PhysicalBytes; got != 0 {
			t.Errorf("station %d materialized %d BLOB bytes answering a search", i+2, got)
		}
	}
}

// TestSearchFromEveryStationAgrees: the answer is position-independent
// — any station's round trip to the root yields the same hits.
func TestSearchFromEveryStationAgrees(t *testing.T) {
	stations := newFabric(t, 5, 2, 0)
	for i, st := range stations {
		addLocalDoc(t, st.Store(), i+1)
	}
	query := search.Query{Terms: []string{"corpus"}, TopK: 1 << 16}
	first, err := stations[0].Search(query)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range stations[1:] {
		reply, err := st.Search(query)
		if err != nil {
			t.Fatalf("station %d: %v", i+2, err)
		}
		diffHits(t, fmt.Sprintf("station %d vs root", i+2), reply.Hits, first.Hits)
	}
}

// TestAdminSearchVerb drives the webdocctl path: the typed admin
// client queries through an arbitrary station.
func TestAdminSearchVerb(t *testing.T) {
	stations := newFabric(t, 3, 2, 0)
	for i, st := range stations {
		addLocalDoc(t, st.Store(), i+1)
	}
	admin := DialAdmin(stations[2].Addr())
	defer admin.Close()
	reply, err := admin.Search([]string{"shardterm0002"}, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Hits) != 1 || reply.Hits[0].Station != 2 {
		t.Fatalf("admin search hits = %+v", reply.Hits)
	}
	// Phrase flag travels end to end.
	phrase, err := admin.Search([]string{"federated", "corpus"}, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(phrase.Hits) != 3 {
		t.Errorf("phrase hits = %+v", phrase.Hits)
	}
	none, err := admin.Search([]string{"corpus", "federated"}, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(none.Hits) != 0 {
		t.Errorf("reversed phrase matched: %+v", none.Hits)
	}
}

// TestSearchWaitsOutRepairedStation: killing a station and letting the
// heartbeat declare it dead must leave searches working through the
// grafted tree (the known-down path, as opposed to the in-flight
// discovery the acceptance test covers).
func TestSearchWaitsOutRepairedStation(t *testing.T) {
	stations := newFabric(t, 7, 2, 0)
	root := stations[0]
	for i, st := range stations {
		addLocalDoc(t, st.Store(), i+1)
	}
	if err := root.StartHeartbeat(50*time.Millisecond, 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stations[1].Close()
	webtest.Eventually(t, 10*time.Second, "root to declare station 2 dead", func() bool {
		return root.Down(2)
	})
	reply, err := stations[6].Search(search.Query{Terms: []string{"corpus"}, TopK: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	// One shard page per live station; the dead station's is the only
	// loss.
	if len(reply.Hits) != 6 {
		t.Errorf("hits after repair = %d, want 6", len(reply.Hits))
	}
}
