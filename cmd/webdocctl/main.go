// Command webdocctl is the administrative client for webdocd stations:
// the class administrator front end of the paper's three-tier
// architecture, speaking the station RPC protocol.
//
// Usage:
//
//	webdocctl -addr 127.0.0.1:7070 ping
//	webdocctl -addr 127.0.0.1:7070 sql "SELECT * FROM scripts"
//	webdocctl -addr 127.0.0.1:7070 tables
//	webdocctl -addr 127.0.0.1:7070 pull http://mmu/course-001/v1 127.0.0.1:7071
//
// "pull URL TARGET" copies a document bundle from the -addr station to
// the TARGET station (pre-broadcast of a single document by hand).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "station address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	rs, err := cluster.DialStation(*addr)
	if err != nil {
		fail("dial %s: %v", *addr, err)
	}
	defer rs.Close()

	switch args[0] {
	case "ping":
		info, err := rs.Ping()
		if err != nil {
			fail("ping: %v", err)
		}
		fmt.Printf("station %d: %d tables, %d document objects\n", info.Pos, len(info.Tables), info.Objects)
	case "tables":
		info, err := rs.Ping()
		if err != nil {
			fail("ping: %v", err)
		}
		for _, t := range info.Tables {
			fmt.Println(t)
		}
	case "sql":
		if len(args) < 2 {
			usage()
		}
		reply, err := rs.SQL(strings.Join(args[1:], " "))
		if err != nil {
			fail("sql: %v", err)
		}
		printSQL(reply)
	case "pull":
		if len(args) != 3 {
			usage()
		}
		url, target := args[1], args[2]
		bundle, err := rs.FetchBundle(url)
		if err != nil {
			fail("fetch bundle: %v", err)
		}
		dst, err := cluster.DialStation(target)
		if err != nil {
			fail("dial target %s: %v", target, err)
		}
		defer dst.Close()
		reply, err := dst.Import(bundle, false)
		if err != nil {
			fail("import: %v", err)
		}
		fmt.Printf("pulled %s to %s: object %s (%s), %d bytes\n",
			url, target, reply.ObjectID, reply.Form, bundle.TotalBytes())
	default:
		usage()
	}
}

func printSQL(reply cluster.SQLReply) {
	if reply.Msg != "" {
		fmt.Println(reply.Msg)
		return
	}
	if reply.Columns == nil {
		fmt.Printf("%d row(s) affected\n", reply.Affected)
		return
	}
	widths := make([]int, len(reply.Columns))
	for i, c := range reply.Columns {
		widths[i] = len(c)
	}
	for _, row := range reply.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, c := range reply.Columns {
		fmt.Printf("%-*s  ", widths[i], c)
	}
	fmt.Println()
	for i := range reply.Columns {
		fmt.Print(strings.Repeat("-", widths[i]), "  ")
	}
	fmt.Println()
	for _, row := range reply.Rows {
		for i, cell := range row {
			fmt.Printf("%-*s  ", widths[i], cell)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(reply.Rows))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: webdocctl [-addr host:port] COMMAND
commands:
  ping                 station status
  tables               list relational tables
  sql "STATEMENT"      run a minisql statement
  pull URL TARGET      copy a document bundle to another station`)
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "webdocctl: "+format+"\n", args...)
	os.Exit(1)
}
