// Quickstart walks the whole system end to end, the way the paper's
// virtual university uses it: an instructor authors a course on station
// 1, publishes it to the virtual library, pre-broadcasts it to the
// student stations before the lecture, students play it back and check
// materials out of the library, and the buffers migrate back to
// references after class.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/library"
	"repro/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Stations = 7
	u, err := core.NewUniversity(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Author and publish a 12-page course with scaled-down media.
	spec := workload.DefaultSpec(1)
	spec.ScriptName = "intro-cs"
	spec.URL = "http://mmu/intro-cs/v1"
	spec.Author = "Shih"
	spec.Pages = 12
	spec.MediaScaleDown = 2048
	course, err := u.PublishCourse(spec, "CS-101", "Shih")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %s: %d pages, %d media objects, %.2f MiB\n",
		spec.ScriptName, course.PageCount, course.MediaCount, float64(course.MediaBytes)/(1<<20))

	// The course is searchable in the Web-savvy virtual library.
	hits := u.Search(library.Query{Keywords: []string{"virtual"}})
	fmt.Printf("library search for 'virtual': %d hit(s); first = %s\n", len(hits), hits[0].Entry.ScriptName)

	// Pre-broadcast the lecture down the m-ary tree.
	slowest, size, err := u.Distribute(spec.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed %.2f MiB to %d stations (m=%d); slowest station ready after %v\n",
		float64(size)/(1<<20), u.Cluster.Size()-1, u.Cluster.M(), slowest.Round(time.Millisecond))

	// A student at station 5 plays the lecture: no stalls after the
	// pre-broadcast.
	rep, err := u.Cluster.Playback(5, spec.URL, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("playback at station 5: %d pages, %d stalls\n", rep.Pages, rep.Stalls)

	// The student checks lecture notes out of the library; the ledger
	// feeds assessment.
	co, err := u.StudentCheckOut(spec.ScriptName, "alice")
	if err != nil {
		log.Fatal(err)
	}
	if err := u.StudentCheckIn(co); err != nil {
		log.Fatal(err)
	}
	assessment, err := u.Assess("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assessment for alice: %d checkouts, %d distinct documents, score %.1f\n",
		assessment.Checkouts, assessment.DistinctDocs, assessment.Score)

	// After the lecture the duplicated instances migrate to references.
	freed, err := u.EndLecture(spec.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lecture ended: %.2f MiB of buffer space reclaimed\n", float64(freed)/(1<<20))

	// Run the testing subsystem over the course.
	testName, bugName, err := u.TestCourse(spec.URL, "Huang", 1)
	if err != nil {
		log.Fatal(err)
	}
	if bugName == "" {
		fmt.Printf("white-box test %s: course is clean\n", testName)
	} else {
		fmt.Printf("white-box test %s filed bug %s\n", testName, bugName)
	}
	cx, err := u.Complexity(spec.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("course complexity: %d pages, %d links, cyclomatic %d\n", cx.Pages, cx.Links, cx.Cyclomatic)
}
