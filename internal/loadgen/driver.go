package loadgen

import (
	"fmt"
	"sync"
	"time"
)

// The paced executor. Each phase gets its own worker group; a phase's
// ops are dealt round-robin to its clients, and every worker sleeps
// until an op's wall-clock slot (simulated time divided by the
// time-scale) before firing it. Workers never skip ops — when the
// target can't keep up they fall behind schedule and the lag is
// recorded, so a run always executes the plan's exact op multiset and
// only the latency numbers reflect the stress.

// CourseURL is the implementation URL of the i-th seeded course —
// shared by the host (authoring) and the driver (traffic).
func CourseURL(i int) string {
	return fmt.Sprintf("http://mmu/load-%03d/v1", i)
}

// CourseScript is the script name of the i-th seeded course.
func CourseScript(i int) string {
	return fmt.Sprintf("load-%03d", i)
}

// Logf is the driver's progress callback (nil = silent).
type Logf func(format string, args ...any)

// Run replays the plan against the target and returns the collector
// plus the measured wall duration.
func Run(p *Profile, plan *Plan, tgt Target, logf Logf) (*Collector, time.Duration, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if tgt.Stations() < p.Fabric.Stations {
		return nil, 0, fmt.Errorf("loadgen: profile wants %d stations, target has %d",
			p.Fabric.Stations, tgt.Stations())
	}
	col := NewCollector()
	start := time.Now()
	var wg sync.WaitGroup
	for pi := range plan.Ops {
		ph := plan.Phases[pi]
		ops := plan.Ops[pi]
		logf("phase %-18s %s+%s sim  %4d %s ops, %d client(s)",
			ph.Name, ph.Start, ph.Duration, len(ops), ph.Op, ph.Clients)
		for c := 0; c < ph.Clients; c++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for i := worker; i < len(ops); i += ph.Clients {
					runOp(p, tgt, col, start, ops[i])
				}
			}(c)
		}
	}
	wg.Wait()
	wall := time.Since(start)
	logf("replayed %d ops: %s simulated in %s wall (scale %gx)",
		plan.Total, p.SimDuration().Round(time.Millisecond), wall.Round(time.Millisecond), p.TimeScale)
	return col, wall, nil
}

// runOp waits for the op's wall slot, fires it and records the result.
func runOp(p *Profile, tgt Target, col *Collector, start time.Time, op Op) {
	slot := start.Add(time.Duration(float64(op.At) / p.TimeScale))
	lag := time.Duration(0)
	if d := time.Until(slot); d > 0 {
		time.Sleep(d)
	} else {
		lag = -d
	}
	began := time.Now()
	var (
		bytes int64
		trace uint64
		err   error
	)
	switch op.Kind {
	case "broadcast":
		bytes, trace, err = tgt.Broadcast(CourseURL(op.Course), op.RefsOnly)
	case "migrate":
		trace, err = tgt.Migrate(CourseURL(op.Course))
	case "resolve":
		bytes, trace, err = tgt.Resolve(op.Station, CourseURL(op.Course))
	case "search":
		_, trace, err = tgt.Search(op.Station, op.Terms, op.Phrase, op.TopK)
	case "checkout":
		err = tgt.Checkout(op.Station, "script", op.ObjectID, op.User)
	default:
		err = fmt.Errorf("loadgen: unknown op kind %q", op.Kind)
	}
	conflict := op.Kind == "checkout" && IsConflict(err)
	col.Record(op.Kind, op.Phase, time.Since(began), bytes, lag, trace, err, conflict)
}
