// Command webdoclint runs the project's static analyzers — the build-
// time guard for the fabric's cross-cutting invariants (durable writes
// through atomicio, sorted lock declarations, errors.Is on sentinels,
// trace propagation in handler scopes, wire-tag codec exhaustiveness).
// It is stdlib-only: packages are parsed with go/parser and
// type-checked with go/types against source, no x/tools.
//
// Usage:
//
//	webdoclint [-json] [-list] [dir ... | ./...]
//
// With no arguments (or "./...") it lints every non-test package of
// the enclosing module. Diagnostics print one per line as
// file:line:col: message (analyzer); -json switches to an indented
// JSON array of typed diagnostics, the same machine-readable
// convention as webdocctl -json. Exit status is 1 when diagnostics
// were reported, 2 when a package failed to load or type-check.
//
// A finding that is a deliberate exception carries a written waiver in
// the code: //lint:ignore <analyzer> <reason> on the flagged line or
// the line above it. Reasons are mandatory and unused waivers are
// diagnosed, so the exception list can never silently rot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "print diagnostics as an indented JSON array")
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fail("webdoclint: %v", err)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fail("webdoclint: %v", err)
	}

	var dirs []string
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			all, err := analysis.PackageDirs(loader.ModRoot)
			if err != nil {
				fail("webdoclint: walking %s: %v", loader.ModRoot, err)
			}
			dirs = append(dirs, all...)
			continue
		}
		dirs = append(dirs, strings.TrimSuffix(arg, "/"))
	}

	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fail("webdoclint: %v", err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags := analysis.Run(pkgs, analyzers)
	for i := range diags {
		if rel, err := filepath.Rel(loader.ModRoot, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fail("webdoclint: encoding json: %v", err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "webdoclint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
