package cluster

import (
	"testing"
)

func TestCollectTraceGathersWholeTree(t *testing.T) {
	c := newSearchCluster(t, 13, 3)
	// One span per station — the footprint of a full broadcast.
	rep, err := c.CollectTrace(7, func(int) int { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spans != 13 || rep.Covered != 13 {
		t.Fatalf("spans=%d covered=%d, want 13/13", rep.Spans, rep.Covered)
	}
	if rep.Latency <= 0 || rep.WireBytes <= 0 {
		t.Errorf("report = %+v", rep)
	}
}

// TestCollectTraceCostGrowsWithFootprint: unlike search's bounded
// top-k merge, span sets concatenate on the way up, so the wire cost
// must scale with the traced operation's footprint.
func TestCollectTraceCostGrowsWithFootprint(t *testing.T) {
	bytesFor := func(perStation int) int64 {
		c := newSearchCluster(t, 13, 3)
		rep, err := c.CollectTrace(1, func(int) int { return perStation })
		if err != nil {
			t.Fatal(err)
		}
		return rep.WireBytes
	}
	small, large := bytesFor(1), bytesFor(10)
	if large <= small {
		t.Fatalf("10-span collection moved %d bytes, 1-span moved %d; want growth", large, small)
	}
}

func TestCollectTraceGraftsAroundDownStation(t *testing.T) {
	c := newSearchCluster(t, 13, 3)
	if err := c.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	rep, err := c.CollectTrace(5, func(int) int { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	// Station 2's spans are lost, but its subtree (5, 6, 7) stays
	// covered through the graft.
	if rep.Spans != 12 || rep.Covered != 12 {
		t.Fatalf("spans=%d covered=%d, want 12/12 (dead station skipped, subtree covered)", rep.Spans, rep.Covered)
	}

	// A down station cannot issue the collection.
	if _, err := c.CollectTrace(2, func(int) int { return 1 }); err == nil {
		t.Fatal("down station issued a trace collection")
	}
}
