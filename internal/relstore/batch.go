package relstore

import "sort"

// Batch collects writes to apply as one transaction: one lock
// acquisition over the touched tables and one WAL append at commit,
// amortizing both costs over all operations. A Batch is built without
// holding any lock, so producers can assemble large batches while the
// engine serves other traffic, then pay for locking once in Apply.
//
// The zero Batch is ready to use. A Batch is not safe for concurrent
// mutation; build it in one goroutine, then Apply it.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	op    string // insert | update | delete
	table string
	row   Row
	pk    any
}

// Insert queues a row insertion.
func (b *Batch) Insert(table string, r Row) {
	b.ops = append(b.ops, batchOp{op: "insert", table: table, row: r})
}

// Update queues a merge of column changes into the row with the given
// primary key.
func (b *Batch) Update(table string, pkVal any, changes Row) {
	b.ops = append(b.ops, batchOp{op: "update", table: table, row: changes, pk: pkVal})
}

// Delete queues a row deletion.
func (b *Batch) Delete(table string, pkVal any) {
	b.ops = append(b.ops, batchOp{op: "delete", table: table, pk: pkVal})
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset empties the batch for reuse, keeping its capacity.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Tables returns the sorted distinct tables the batch touches.
func (b *Batch) Tables() []string {
	seen := make(map[string]bool, 4)
	var names []string
	for _, op := range b.ops {
		if !seen[op.table] {
			seen[op.table] = true
			names = append(names, op.table)
		}
	}
	sort.Strings(names)
	return names
}

// Apply runs the batch as one transaction declared over every touched
// table: all locks are taken up front in sorted order, the operations
// run in queue order, and the commit appends a single WAL record. On
// the first failing operation the whole batch rolls back and nothing is
// applied. An empty batch is a no-op.
func (db *DB) Apply(b *Batch) error {
	return db.ApplyThen(b, nil)
}

// ApplyThen is Apply with a post-commit hook running before the
// transaction's locks release (see Tx.CommitThen): fn runs exactly
// when the batch committed, atomically with respect to checkpoints
// and other writers of the touched tables. An empty batch runs fn
// directly.
func (db *DB) ApplyThen(b *Batch, fn func()) error {
	if b == nil || len(b.ops) == 0 {
		if fn != nil {
			fn()
		}
		return nil
	}
	tx, err := db.Begin(b.Tables()...)
	if err != nil {
		return err
	}
	for _, op := range b.ops {
		switch op.op {
		case "insert":
			err = tx.Insert(op.table, op.row)
		case "update":
			err = tx.Update(op.table, op.pk, op.row)
		case "delete":
			err = tx.Delete(op.table, op.pk)
		}
		if err != nil {
			tx.Rollback()
			return err
		}
	}
	return tx.CommitThen(fn)
}
