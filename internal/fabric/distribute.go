package fabric

import (
	"fmt"
	"strings"

	"repro/internal/docdb"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/transport"
)

// PushRequest carries one broadcast hop: the bundles, the install
// policy and the epoch-numbered topology snapshot (roster plus the
// root's down-set) the receiving station fans out under. RefOnly
// bundles hold just the script and implementation rows (the metadata
// closure of a document reference).
//
// Bundles is the coalesced form: one hop frame delivers every
// document of a batched broadcast, so distributing k documents costs
// one RPC per tree edge instead of k. Bundle is the legacy
// single-document field, still decoded so a push from a pre-batching
// peer installs correctly.
type PushRequest struct {
	Bundle    docdb.Bundle
	Bundles   []docdb.Bundle
	RefOnly   bool
	M         int
	N         int
	Watermark int
	Epoch     int
	Roster    map[int]string
	Down      map[int]bool
}

// allBundles returns the documents this push carries, accepting both
// the coalesced Bundles form and the legacy single-Bundle form.
func (r *PushRequest) allBundles() []docdb.Bundle {
	if len(r.Bundles) > 0 {
		return r.Bundles
	}
	if r.Bundle.Impl.StartingURL != "" {
		return []docdb.Bundle{r.Bundle}
	}
	return nil
}

// StationResult reports the outcome of a broadcast or migration on one
// station. URL names the document for batched broadcasts (one entry
// per station per document); single-document operations leave it set
// too, for uniformity.
type StationResult struct {
	Pos   int
	URL   string
	Form  string // resulting object form ("" when Err is set)
	Freed int64  // migration only: physical bytes reclaimed
	Err   string
}

// PushReply aggregates the results of a station and its whole subtree.
type PushReply struct {
	Results []StationResult
}

// BroadcastResult summarizes one tree-wide broadcast. TraceID names
// the distributed trace the traversal recorded (retrieve the hop tree
// with the Trace RPC / `webdocctl trace`); zero when the root runs
// with observability disabled. A batched broadcast (BroadcastAll)
// lists every document in URLs and leaves URL on the first one.
type BroadcastResult struct {
	URL      string
	URLs     []string
	RefOnly  bool
	Bytes    int64 // transfer size of one copy of every bundle
	TraceID  uint64
	Stations []StationResult
}

// ResolveRequest walks one hop up the parent route.
type ResolveRequest struct {
	URL string
	TTL int // remaining hops; guards against roster corruption loops
}

// ResolveReply carries the bundle back down the route.
type ResolveReply struct {
	Bundle   docdb.Bundle
	ServedBy int
}

// MigrateRequest propagates an end-of-lecture migration down the tree.
type MigrateRequest struct {
	URL       string
	M         int
	N         int
	Watermark int
	Epoch     int
	Roster    map[int]string
	Down      map[int]bool
}

// MigrateReply aggregates a subtree's migration outcome. TraceID (set
// on the top-level reply only) names the traversal's distributed
// trace.
type MigrateReply struct {
	Freed    int64
	TraceID  uint64
	Stations []StationResult
}

// FetchResult reports one on-demand retrieval, mirroring the
// simulator's cluster.FetchResult. TraceID names the resolve's
// distributed trace.
type FetchResult struct {
	URL        string
	ServedBy   int  // position of the station that supplied the data
	Local      bool // the document was already resident
	Replicated bool // this fetch crossed the watermark and materialized a copy
	Fetches    int  // remote retrievals so far, including this one
	Bytes      int64
	TraceID    uint64
}

// Broadcast pushes a document from the root down the m-ary tree,
// hop-by-hop with store-and-forward relaying and parallel fan-out to
// children. With refOnly the stations install document references (the
// paper's broadcast-of-references when an instance is created);
// otherwise they import full instances (pre-broadcast before a
// lecture). Dead hops are routed around — their children graft onto
// the nearest live ancestor — and unreachable stations are reported
// per station in the result, not as a call failure.
func (s *Station) Broadcast(url string, refOnly bool) (*BroadcastResult, error) {
	// An in-process broadcast roots its own trace; the RPC path
	// (handleBroadcast) reuses the span the transport already opened.
	span := s.observer().BeginLocal(methodBroadcast)
	res, err := s.broadcastSpanned(url, refOnly, span)
	span.End(err)
	return res, err
}

// BroadcastAll distributes several documents in ONE tree traversal:
// each hop ships a single coalesced frame carrying every bundle, so
// pushing k documents costs one RPC per tree edge instead of k — the
// framing, topology snapshot and round trip are paid once per hop.
// The per-station, per-document outcomes land in Stations with URL
// set.
func (s *Station) BroadcastAll(urls []string, refOnly bool) (*BroadcastResult, error) {
	span := s.observer().BeginLocal(methodBroadcast)
	res, err := s.broadcastAllSpanned(urls, refOnly, span)
	span.End(err)
	return res, err
}

func (s *Station) broadcastSpanned(url string, refOnly bool, span *obs.ActiveSpan) (*BroadcastResult, error) {
	return s.broadcastAllSpanned([]string{url}, refOnly, span)
}

func (s *Station) broadcastAllSpanned(urls []string, refOnly bool, span *obs.ActiveSpan) (*BroadcastResult, error) {
	if !s.isRoot {
		return nil, fmt.Errorf("%w: broadcast", ErrNotRoot)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("fabric: broadcast of zero documents")
	}
	bundles := make([]docdb.Bundle, 0, len(urls))
	var total int64
	for _, url := range urls {
		bundle, err := s.bundleFor(url, refOnly)
		if err != nil {
			return nil, err
		}
		total += bundle.TotalBytes()
		bundles = append(bundles, *bundle)
	}
	v := s.view()
	req := PushRequest{
		Bundles: bundles, RefOnly: refOnly,
		M: v.m, N: v.n, Watermark: v.watermark,
		Epoch: v.epoch, Roster: v.roster, Down: v.down,
	}
	// The catalog entries land before the fan-out: a station rejoining
	// while this broadcast is still in flight must see the documents in
	// its catch-up catalog — the root holds the bundles either way.
	for _, url := range urls {
		s.recordBroadcast(url, refOnly)
	}
	results := s.fanOut(v.pos, req, span)
	sortResults(results)
	return &BroadcastResult{
		URL: urls[0], URLs: urls, RefOnly: refOnly, Bytes: total,
		TraceID: span.Context().TraceID, Stations: results,
	}, nil
}

// bundleFor builds one document's transfer closure: the metadata rows
// alone for a reference broadcast, the full bundle otherwise.
func (s *Station) bundleFor(url string, refOnly bool) (*docdb.Bundle, error) {
	if refOnly {
		impl, err := s.store.Implementation(url)
		if err != nil {
			return nil, err
		}
		script, err := s.store.Script(impl.ScriptName)
		if err != nil {
			return nil, err
		}
		return &docdb.Bundle{Script: script, Impl: impl}, nil
	}
	return s.store.ExportBundle(url)
}

// handlePush installs the pushed document locally (store), then
// relays it to this station's children (forward) and aggregates the
// subtree results. The hop's span (opened by the transport when the
// push is traced) rides down to the children, so the whole traversal
// shares one TraceID.
func (s *Station) handlePush(ctx *transport.Ctx, decode func(any) error) (any, error) {
	var req PushRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.applyTopology(req.M, req.N, req.Watermark, req.Epoch, req.Roster, req.Down)
	pos := s.pos
	s.mu.Unlock()
	if pos == 0 {
		return nil, ErrNotJoined
	}
	bundles := req.allBundles()
	local := make([]StationResult, 0, len(bundles))
	s.importMu.Lock()
	for i := range bundles {
		bundle := &bundles[i]
		res := StationResult{Pos: pos, URL: bundle.Impl.StartingURL}
		if req.RefOnly {
			obj, err := s.store.ImportReference(bundle.Script, bundle.Impl, pos, 1)
			if err != nil {
				res.Err = err.Error()
			} else {
				res.Form = obj.Form
			}
		} else {
			obj, err := s.store.ImportBundle(bundle, pos, false)
			if err != nil {
				res.Err = err.Error()
			} else {
				res.Form = obj.Form
			}
		}
		local = append(local, res)
	}
	s.importMu.Unlock()
	sub := s.fanOut(pos, req, ctx.Span())
	return PushReply{Results: append(local, sub...)}, nil
}

// Resolve retrieves a document for this station: served locally when
// an instance is resident, otherwise pulled via the parent route (each
// ancestor serves from a local instance or relays upward), skipping
// dead ancestors on the way. Crossing the watermark frequency imports
// the bundle, materializing local BLOBs.
func (s *Station) Resolve(url string) (FetchResult, error) {
	span := s.observer().BeginLocal(methodFetch)
	res, err := s.resolveSpanned(url, span)
	span.End(err)
	return res, err
}

func (s *Station) resolveSpanned(url string, span *obs.ActiveSpan) (FetchResult, error) {
	s.mu.Lock()
	pos, n := s.pos, s.n
	wm := s.watermark
	s.mu.Unlock()
	if pos == 0 {
		return FetchResult{}, ErrNotJoined
	}
	trace := span.Context().TraceID
	if obj, err := s.store.ObjectByURL(url); err == nil && obj.Form != schema.FormReference {
		return FetchResult{URL: url, Local: true, ServedBy: pos, TraceID: trace}, nil
	}
	if pos == 1 {
		return FetchResult{}, fmt.Errorf("%w: %s", ErrNoInstance, url)
	}
	reply, err := s.resolveViaAncestors(url, n+1, span)
	if err != nil {
		return FetchResult{}, err
	}
	s.mu.Lock()
	s.fetches[url]++
	fetches := s.fetches[url]
	s.mu.Unlock()
	res := FetchResult{
		URL:      url,
		ServedBy: reply.ServedBy,
		Fetches:  fetches,
		Bytes:    reply.Bundle.TotalBytes(),
		TraceID:  trace,
	}
	if wm >= 0 && fetches > wm {
		span.Annotate("watermark pull: materializing after %d fetches", fetches)
		s.importMu.Lock()
		_, err := s.store.ImportBundle(&reply.Bundle, pos, false)
		s.importMu.Unlock()
		if err != nil {
			return res, err
		}
		res.Replicated = true
	}
	return res, nil
}

// handleResolve serves a bundle from a local instance or relays the
// request further up the parent route, skipping dead ancestors. The
// hop's span context relays with the request, so a traced resolve
// records every ancestor it crossed.
func (s *Station) handleResolve(ctx *transport.Ctx, decode func(any) error) (any, error) {
	var req ResolveRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	if req.TTL <= 0 {
		return nil, ErrRouteLoop
	}
	s.mu.Lock()
	pos := s.pos
	s.mu.Unlock()
	if pos == 0 {
		return nil, ErrNotJoined
	}
	if obj, err := s.store.ObjectByURL(req.URL); err == nil && obj.Form != schema.FormReference {
		bundle, err := s.store.ExportBundle(req.URL)
		if err != nil {
			return nil, err
		}
		ctx.Annotate("served from local instance")
		return ResolveReply{Bundle: *bundle, ServedBy: pos}, nil
	}
	if pos == 1 {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, req.URL)
	}
	reply, err := s.resolveViaAncestors(req.URL, req.TTL-1, ctx.Span())
	if err != nil {
		return nil, err
	}
	return *reply, nil
}

// EndLecture migrates every non-persistent instance of the document in
// the tree back to a reference, reclaiming the buffer space — "after a
// lecture is presented, duplicated document instances migrate to
// document references." Dead stations are routed around; their copies
// are reconciled at rejoin, when catch-up rebuilds the document as a
// reference.
func (s *Station) EndLecture(url string) (*MigrateReply, error) {
	span := s.observer().BeginLocal(methodEndLecture)
	res, err := s.endLectureSpanned(url, span)
	span.End(err)
	return res, err
}

func (s *Station) endLectureSpanned(url string, span *obs.ActiveSpan) (*MigrateReply, error) {
	if !s.isRoot {
		return nil, fmt.Errorf("%w: end-lecture migration", ErrNotRoot)
	}
	v := s.view()
	req := MigrateRequest{
		URL: url, M: v.m, N: v.n, Watermark: v.watermark,
		Epoch: v.epoch, Roster: v.roster, Down: v.down,
	}
	// Flip the catalog before the fan-out, as in Broadcast: a rejoin
	// racing this migration should rebuild a reference, which is where
	// the whole tree is headed anyway.
	s.markMigrated(url)
	reply := s.migrateSubtree(v.pos, req, s.migrateLocal(url, v.pos), span)
	reply.TraceID = span.Context().TraceID
	sortResults(reply.Stations)
	return &reply, nil
}

// migrateLocal migrates this station's own copy if it is a
// non-persistent instance, reporting the physical bytes reclaimed.
func (s *Station) migrateLocal(url string, pos int) *StationResult {
	obj, err := s.store.ObjectByURL(url)
	if err != nil || obj.Form != schema.FormInstance || obj.Persistent {
		return nil
	}
	res := StationResult{Pos: pos}
	before := s.store.Blobs().Stats().PhysicalBytes
	if err := s.store.MigrateToReference(obj.ID, 1); err != nil {
		res.Err = err.Error()
	} else {
		res.Form = schema.FormReference
		res.Freed = before - s.store.Blobs().Stats().PhysicalBytes
		s.mu.Lock()
		delete(s.fetches, url)
		s.mu.Unlock()
	}
	return &res
}

// migrateSubtree fans the migration out to the children of pos
// (routing around dead hops) and folds the local result (if any) into
// the aggregate.
func (s *Station) migrateSubtree(pos int, req MigrateRequest, local *StationResult, span *obs.ActiveSpan) MigrateReply {
	out := s.migrateFanOut(pos, req, span)
	if local != nil {
		out.Stations = append(out.Stations, *local)
		out.Freed += local.Freed
	}
	return out
}

// handleMigrate migrates the local copy and relays down the subtree.
func (s *Station) handleMigrate(ctx *transport.Ctx, decode func(any) error) (any, error) {
	var req MigrateRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.applyTopology(req.M, req.N, req.Watermark, req.Epoch, req.Roster, req.Down)
	pos := s.pos
	s.mu.Unlock()
	if pos == 0 {
		return nil, ErrNotJoined
	}
	return s.migrateSubtree(pos, req, s.migrateLocal(req.URL, pos), ctx.Span()), nil
}

// IsNoInstance reports whether an error (possibly a transport-carried
// string) means no station on the route held an instance.
func IsNoInstance(err error) bool {
	return err != nil && strings.Contains(err.Error(), ErrNoInstance.Error())
}
