package loadgen

import (
	"fmt"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/fabric"
	"repro/internal/relstore"
	"repro/internal/search"
	"repro/internal/workload"
)

// Self-hosting: when webdocload is not pointed at a running fabric it
// stands one up in-process — real TCP sockets, a root plus joiners in
// the m-ary tree, content indexes attached — seeds the course corpus
// on the root and broadcasts the references, exactly the state a
// semester day starts from.

// Host is a self-hosted fabric plus its seeded corpus.
type Host struct {
	stations []*fabric.Station
}

// StartHost builds the profile's fabric on loopback and seeds the
// course corpus.
func StartHost(p *Profile, logf Logf) (*Host, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	h := &Host{}
	store, err := hostStore()
	if err != nil {
		return nil, err
	}
	root, err := fabric.NewRoot(store, "127.0.0.1:0", p.Fabric.M, p.Fabric.Watermark)
	if err != nil {
		return nil, err
	}
	h.stations = append(h.stations, root)
	for i := 1; i < p.Fabric.Stations; i++ {
		st, err := hostStore()
		if err != nil {
			h.Close()
			return nil, err
		}
		joined, err := fabric.Join(st, "127.0.0.1:0", root.Addr())
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("join station %d: %w", i+1, err)
		}
		h.stations = append(h.stations, joined)
	}
	logf("fabric up: %d stations, m=%d, watermark=%d, root %s",
		p.Fabric.Stations, p.Fabric.M, p.Fabric.Watermark, root.Addr())

	// Author the corpus on the root and announce each course with a
	// broadcast of references — the paper's instance-creation step —
	// so every station can resolve, search and check out from the
	// first simulated minute.
	began := time.Now()
	var bytes int64
	for i := 0; i < p.Courses.Count; i++ {
		spec := workload.CourseSpec{
			DBName:         "mmu",
			ScriptName:     CourseScript(i),
			URL:            CourseURL(i),
			Author:         fmt.Sprintf("instructor-%d", i%8),
			Keywords:       []string{"virtual", "university", fmt.Sprintf("topic%d", i%7)},
			Pages:          p.Courses.Pages,
			ExtraLinks:     p.Courses.ExtraLinks,
			ImagesPerPage:  p.Courses.ImagesPerPage,
			MediaScaleDown: 4096,
			Seed:           p.Seed + int64(i),
		}
		course, _, err := workload.AuthorCourse(root.Store(), spec)
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("author course %d: %w", i, err)
		}
		res, err := root.Broadcast(spec.URL, true)
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("announce course %d: %w", i, err)
		}
		bytes += course.MediaBytes
		_ = res
	}
	logf("seeded %d courses (%d pages each, %s media total) in %s",
		p.Courses.Count, p.Courses.Pages, sizeOf(bytes), time.Since(began).Round(time.Millisecond))
	return h, nil
}

// RootAddr is the root station's bound address.
func (h *Host) RootAddr() string { return h.stations[0].Addr() }

// Close tears the fabric down, root last.
func (h *Host) Close() {
	for i := len(h.stations) - 1; i >= 0; i-- {
		h.stations[i].Close()
	}
}

// hostStore opens one station's store with a content index attached,
// as webdocd does.
func hostStore() (*docdb.Store, error) {
	store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		return nil, err
	}
	if _, err := search.Attach(store); err != nil {
		return nil, err
	}
	return store, nil
}

func sizeOf(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
