package relstore

import (
	"fmt"
	"sort"
)

// The engine's locks form a strict hierarchy, always acquired downward:
//
//  1. DB.metaMu — the schema lock. Every reader and every transaction
//     holds it shared for its whole duration; DDL (CreateTable,
//     DropTable, index creation, Restore, WAL attach/detach) holds it
//     exclusively. While any operation runs, the table set and every
//     schema are frozen, so DDL needs no per-table locks at all.
//  2. table.mu — one reader/writer lock per table, acquired in
//     ascending table-name order. A transaction takes exclusive locks
//     on the tables it writes and shared locks on their foreign-key
//     neighbours; plain queries take a single shared lock.
//  3. Leaf mutexes (table.cacheMu, WAL.mu), never held while acquiring
//     anything above them.
//
// Blocking waits on table locks only ever happen for names greater than
// every name the waiter already holds, so a wait-for cycle would need
// strictly increasing names all the way around — impossible. Lock
// acquisitions that would violate the order fail fast with ErrLockOrder
// instead of risking a deadlock; declaring the tables at Begin acquires
// the whole set up front in sorted order and never hits that error.

// lockMode is the strength of a per-table lock held by a transaction.
type lockMode int

const (
	lockRead lockMode = iota + 1
	lockWrite
)

// heldLock records one per-table lock a transaction holds.
type heldLock struct {
	name string
	t    *table
	mode lockMode
}

// writeNeeds returns the lock set one write to a table requires: the
// table itself exclusively, plus shared locks on its foreign-key
// neighbours — tables it references (read during FK checks) and tables
// referencing it (read during delete restrict checks). Caller holds
// metaMu.
func (db *DB) writeNeeds(name string) map[string]lockMode {
	needs := map[string]lockMode{name: lockWrite}
	t := db.tables[name]
	if t == nil {
		return needs
	}
	for _, fk := range t.schema.ForeignKeys {
		if _, ok := db.tables[fk.RefTable]; ok && needs[fk.RefTable] == 0 {
			needs[fk.RefTable] = lockRead
		}
	}
	for other, ot := range db.tables {
		if other == name {
			continue
		}
		for _, fk := range ot.schema.ForeignKeys {
			if fk.RefTable == name && needs[other] == 0 {
				needs[other] = lockRead
			}
		}
	}
	return needs
}

// acquire takes the needed per-table locks, skipping any the
// transaction already holds with sufficient strength. Newly needed
// locks must all sort after every lock already held, keeping blocking
// waits in ascending name order; needs violating that (or upgrading a
// shared lock to exclusive) fail with ErrLockOrder.
func (tx *Tx) acquire(needs map[string]lockMode) error {
	names := make([]string, 0, len(needs))
	for name, mode := range needs {
		if held, ok := tx.modes[name]; ok {
			if held >= mode {
				continue
			}
			return fmt.Errorf("%w: cannot upgrade the read lock on %s; declare it at Begin", ErrLockOrder, name)
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	if tx.top != "" && names[0] <= tx.top {
		return fmt.Errorf("%w: %s sorts before already-locked %s; declare tables at Begin", ErrLockOrder, names[0], tx.top)
	}
	for _, name := range names {
		t, ok := tx.db.tables[name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoTable, name)
		}
		mode := needs[name]
		if mode == lockWrite {
			t.mu.Lock()
		} else {
			t.mu.RLock()
		}
		tx.held = append(tx.held, heldLock{name: name, t: t, mode: mode})
		tx.modes[name] = mode
		tx.top = name
	}
	return nil
}

// acquireWrite ensures the transaction holds the write lock on the
// table and read locks on its foreign-key neighbours. Holding the
// write lock already implies the neighbour locks (they were taken by
// the same writeNeeds set), so the common repeated-write case skips the
// need-set computation entirely.
func (tx *Tx) acquireWrite(name string) error {
	if tx.modes[name] == lockWrite {
		return nil
	}
	return tx.acquire(tx.db.writeNeeds(name))
}

// release drops every held table lock in reverse acquisition order and
// then the shared schema lock, ending the transaction's footprint.
func (tx *Tx) release() {
	for i := len(tx.held) - 1; i >= 0; i-- {
		h := tx.held[i]
		if h.mode == lockWrite {
			h.t.mu.Unlock()
		} else {
			h.t.mu.RUnlock()
		}
	}
	tx.held = nil
	tx.db.metaMu.RUnlock()
}
