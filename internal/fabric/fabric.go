// Package fabric is the live distribution subsystem of the paper's
// section 4: N webdocd stations joined in linear order form a full
// m-ary distribution tree over real TCP sockets and move real document
// bundles along its edges. It is the deployed counterpart of the
// internal/cluster discrete-event simulation — the same placement
// arithmetic (internal/mtree), the same bundle closure
// (docdb.Bundle/ImportBundle) and the same watermark policy, but with
// live peers instead of simulated time.
//
// The subsystem has four moving parts:
//
//   - a join/topology protocol: a station contacts the root with its
//     listen address, is assigned the next linear position, and learns
//     the tree degree, the watermark frequency and the roster
//     (position -> address) from which it derives its parent route;
//   - Broadcast: the instructor station (the root) pushes a course's
//     bundle down the tree hop-by-hop with store-and-forward relaying;
//     each station imports, then fans out to its children in parallel.
//     A reference-only broadcast carries just the metadata closure and
//     installs document references instead of instances;
//   - Resolve: a station missing a document walks its parent route —
//     each ancestor either serves the bundle from a local instance or
//     relays the request to its own parent. Crossing the watermark
//     frequency materializes a local instance (copies the BLOBs);
//   - Migrate: after the lecture window, every non-persistent instance
//     in the tree migrates back to a document reference, reclaiming
//     the buffer space.
//
// Stations keep serving the base station RPCs (Ping, Bundle, Import,
// SQL) — the fabric methods ride on the same cluster.Node server.
//
// # Failure handling
//
// A deployed fabric loses stations mid-semester, so every layer routes
// around them with the same grafting arithmetic the netsim simulator
// models (internal/mtree's live-tree helpers):
//
//   - Failure detection: the root heartbeats every joined station
//     (StartHeartbeat); a station that misses consecutive probes — or
//     whose cluster.Node liveness check reports unhealthy — is marked
//     down. Rosters are epoch-numbered: the root bumps the epoch on
//     every membership or liveness change and pushes the roster plus
//     its down-set on every tree RPC, so stations converge on the
//     newest view without a separate gossip channel. Relays that fail
//     to reach a peer mid-operation report it to the root
//     (Fabric.ReportDown), which confirms with one probe before
//     declaring it dead; operators can force the matter with
//     webdocctl evict.
//
//   - Tree repair: a broadcast or migration reaching a dead child
//     retries once (store-and-forward retry), then grafts the dead
//     station's children onto the sender — the subtree is served
//     directly, and the dead hop is reported per station in the
//     result instead of stalling the fan-out.
//
//   - Resolve: the parent route skips dead ancestors — the request
//     goes to the nearest live ancestor (falling back to suspected
//     ones as a last resort), so one dead interior station cannot cut
//     its descendants off from the instructor's copy.
//
//   - Rejoin: a restarted webdocd re-contacts the root (Rejoin) and is
//     re-assigned its old position — or a fresh one — then catches up
//     (CatchUp): the root's broadcast catalog tells it what it
//     missed; it installs reference scaffolds and re-pulls full
//     broadcasts up the parent route under the watermark policy. A
//     station far behind the catalog instead pulls the root's state
//     snapshot in one chunked transport stream (see statesync.go), so
//     catching up costs O(state), not O(missed broadcasts).
package fabric

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/docdb"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Fabric errors.
var (
	ErrNotRoot    = errors.New("fabric: operation requires the root station")
	ErrNotJoined  = errors.New("fabric: station has not joined a fabric")
	ErrNoInstance = errors.New("fabric: no station on the parent route holds an instance")
	ErrBadDegree  = errors.New("fabric: tree degree must be >= 1")
	ErrRouteLoop  = errors.New("fabric: resolve exceeded the route length")
	ErrNoRoute    = errors.New("fabric: no live ancestor reachable")
)

// Tuning knobs for the per-peer connection pools, the join handshake
// and the failure-handling machinery.
const (
	peerPoolSize = 4
	callTimeout  = 2 * time.Minute
	joinAttempts = 20
	joinBackoff  = 150 * time.Millisecond

	// pushAttempts and pushRetryDelay are the store-and-forward retry
	// a relay gives an unreachable child before grafting its subtree.
	pushAttempts   = 2
	pushRetryDelay = 25 * time.Millisecond

	// hbFailThreshold consecutive failed probes declare a station
	// dead; DefaultHeartbeatInterval/Timeout are the daemon defaults.
	hbFailThreshold          = 2
	DefaultHeartbeatInterval = 2 * time.Second
	DefaultHeartbeatTimeout  = 1500 * time.Millisecond
)

// RPC method names. They live beside the base station methods on the
// same transport server.
const (
	methodJoin       = "Fabric.Join"
	methodTopology   = "Fabric.Topology"
	methodPush       = "Fabric.Push"
	methodResolve    = "Fabric.Resolve"
	methodMigrate    = "Fabric.Migrate"
	methodBroadcast  = "Fabric.Broadcast"
	methodFetch      = "Fabric.Fetch"
	methodEndLecture = "Fabric.EndLecture"
	methodHeartbeat  = "Fabric.Heartbeat"
	methodHealth     = "Fabric.Health"
	methodEvict      = "Fabric.Evict"
	methodReportDown = "Fabric.ReportDown"
	methodCatalog    = "Fabric.Catalog"
	methodRefs       = "Fabric.Refs"
	methodState      = "Fabric.State"
	methodSearch     = "Fabric.Search"
	methodTrace      = "Fabric.Trace"
	methodEvents     = "Fabric.Events"
)

// JoinRequest announces a new station's listen address to the root.
// A rejoining station sets Rejoin and its previous position so the
// root can graft it back into the tree where it used to sit.
type JoinRequest struct {
	Addr   string
	OldPos int
	Rejoin bool
}

// JoinReply assigns the joiner its linear position and hands it the
// policy and the epoch-numbered roster it derives its parent route
// from.
type JoinReply struct {
	Pos       int
	M         int
	N         int
	Watermark int
	Epoch     int
	Roster    map[int]string
	Down      map[int]bool
}

// TopologyReply describes a station's view of the fabric.
type TopologyReply struct {
	Pos       int
	M         int
	N         int
	Watermark int
	Epoch     int
	IsRoot    bool
	Roster    map[int]string
	Down      map[int]bool
}

// Station is one live fabric member: a cluster.Node (the base station
// RPC service) plus the distribution state — position, roster, fetch
// counters and the connection pools to its peers.
type Station struct {
	node   *cluster.Node
	store  *docdb.Store
	isRoot bool
	addr   string

	mu        sync.Mutex
	closed    bool
	pos       int
	m         int
	n         int
	watermark int
	epoch     int
	roster    map[int]string
	down      map[int]bool // root-declared failures (epoch-stamped)
	suspect   map[int]bool // locally observed failures, pending root confirmation
	fetches   map[string]int
	pools     map[string]*transport.Pool
	hbPools   map[string]*transport.Pool // size-1 probe pools, isolated from bundle traffic
	catalog   []CatalogEntry             // root only: every broadcast, for rejoin catch-up

	// heartbeat state (root only).
	hbStop  chan struct{}
	hbFails map[int]int

	// importMu serializes bundle installs on this station: a broadcast
	// push racing an on-demand materialization of the same URL would
	// otherwise both pass ImportBundle's residency check and collide on
	// the file rows.
	importMu sync.Mutex

	// evSink, when set, receives structured one-line records for the
	// otherwise-silent fault paths (suspicion, confirmation, grafts,
	// rejoin grants). Quiet by default.
	evSink atomic.Value // obs.EventSink
}

// SetEventSink installs a consumer for the station's fault-path event
// lines (webdocd's -log-events wires it to the process log). Safe to
// call while serving; nil-tolerant call sites stay silent without one.
func (s *Station) SetEventSink(sink obs.EventSink) {
	s.evSink.Store(sink)
}

// event emits one structured fault-path record, outside any traced
// scope: it lands in the station's event journal (queryable over the
// Events RPC) and, when a sink is attached, on the log tail.
func (s *Station) event(name string, kv ...any) {
	s.eventTrace(0, name, kv...)
}

// eventSpan emits a record correlated to the span's trace, so the
// event shows up both in the fabric timeline and beside the trace's
// hop tree. A nil span degrades to an uncorrelated event.
func (s *Station) eventSpan(span *obs.ActiveSpan, name string, kv ...any) {
	s.eventTrace(span.Context().TraceID, name, kv...)
}

// eventTrace builds the structured event, stamps the trace ID, admits
// it to the journal (always on when the node has an observer), and
// renders the legacy one-line form for the sink if one is attached.
func (s *Station) eventTrace(trace uint64, name string, kv ...any) {
	e := obs.NewEvent(name, kv...)
	e.TraceID = trace
	e = s.observer().Emit(e)
	if sink, _ := s.evSink.Load().(obs.EventSink); sink != nil {
		sink(e.Line())
	}
}

// observer returns the station's observability state (nil-safe to use
// when the node runs with observability disabled).
func (s *Station) observer() *obs.Observer { return s.node.Observer() }

func newStation(store *docdb.Store, isRoot bool, m, watermark int) *Station {
	s := &Station{
		store:     store,
		isRoot:    isRoot,
		m:         m,
		watermark: watermark,
		roster:    make(map[int]string),
		down:      make(map[int]bool),
		suspect:   make(map[int]bool),
		fetches:   make(map[string]int),
		pools:     make(map[string]*transport.Pool),
		hbPools:   make(map[string]*transport.Pool),
		hbFails:   make(map[int]int),
	}
	s.node = cluster.NewNode(0, store)
	s.node.Handle(methodJoin, s.handleJoin)
	s.node.Handle(methodTopology, s.handleTopology)
	// Tree operations register trace-aware: the transport opens a span
	// per traced request and the handler threads its context down the
	// tree, so one TraceID stitches a whole traversal.
	s.node.HandleCtx(methodPush, s.handlePush)
	s.node.HandleCtx(methodResolve, s.handleResolve)
	s.node.HandleCtx(methodMigrate, s.handleMigrate)
	s.node.HandleCtx(methodBroadcast, s.handleBroadcast)
	s.node.HandleCtx(methodFetch, s.handleFetch)
	s.node.HandleCtx(methodEndLecture, s.handleEndLecture)
	s.node.Handle(methodHeartbeat, s.handleHeartbeat)
	s.node.Handle(methodHealth, s.handleHealth)
	s.node.Handle(methodEvict, s.handleEvict)
	s.node.Handle(methodReportDown, s.handleReportDown)
	s.node.Handle(methodCatalog, s.handleCatalog)
	s.node.Handle(methodRefs, s.handleRefs)
	s.node.Handle(methodState, s.handleState)
	s.node.HandleCtx(methodSearch, s.handleSearch)
	s.node.Handle(methodTrace, s.handleTrace)
	s.node.Handle(methodEvents, s.handleEvents)
	return s
}

// NewRoot starts the instructor station: position 1, the root of the
// m-ary distribution tree, and the authority for join requests. A
// negative watermark means on-demand pulls never replicate.
func NewRoot(store *docdb.Store, addr string, m, watermark int) (*Station, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadDegree, m)
	}
	s := newStation(store, true, m, watermark)
	// The root's own position is fixed before the socket opens; until
	// its bound address lands in the roster, handleJoin turns joiners
	// away with a retryable not-ready error.
	s.mu.Lock()
	s.pos = 1
	s.n = 1
	s.epoch = 1
	s.mu.Unlock()
	s.node.SetPos(1)
	bound, err := s.node.Start(addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.addr = bound
	s.roster[1] = bound
	s.mu.Unlock()
	return s, nil
}

// Join starts a station and registers it with the fabric root at
// rootAddr: the station begins serving on addr first (so the root can
// reach it), then asks the root for its linear position, the degree,
// the watermark policy and the roster. The handshake retries with
// backoff, so joiners may start concurrently with (or slightly before)
// their root.
func Join(store *docdb.Store, addr, rootAddr string) (*Station, error) {
	return join(store, addr, rootAddr, 0)
}

// Rejoin is Join for a restarted station: it asks the root for its
// previous position back. The root grants it when that position is
// marked down — or, for a restart that beat the failure detector, when
// a confirmation probe of the position's old address fails — and
// assigns a fresh position otherwise. The caller follows up with
// CatchUp to pull whatever was broadcast while the station was dark.
func Rejoin(store *docdb.Store, addr, rootAddr string, oldPos int) (*Station, error) {
	return join(store, addr, rootAddr, oldPos)
}

func join(store *docdb.Store, addr, rootAddr string, oldPos int) (*Station, error) {
	s := newStation(store, false, 0, 0)
	bound, err := s.node.Start(addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.addr = bound
	s.mu.Unlock()
	req := JoinRequest{Addr: bound, OldPos: oldPos, Rejoin: oldPos > 0}
	var reply JoinReply
	for attempt := 0; ; attempt++ {
		err = s.pool(rootAddr).Call(methodJoin, req, &reply)
		if err == nil {
			break
		}
		if attempt+1 >= joinAttempts {
			s.Close()
			return nil, fmt.Errorf("fabric: joining via %s: %w", rootAddr, err)
		}
		time.Sleep(joinBackoff)
	}
	s.mu.Lock()
	s.applyTopology(reply.M, reply.N, reply.Watermark, reply.Epoch, reply.Roster, reply.Down)
	s.mu.Unlock()
	return s, nil
}

// Addr returns the station's bound listen address.
func (s *Station) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Pos returns the station's linear position (0 before a join
// completes).
func (s *Station) Pos() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

// Store exposes the station's document database.
func (s *Station) Store() *docdb.Store { return s.store }

// Node exposes the underlying base station service.
func (s *Station) Node() *cluster.Node { return s.node }

// Fetches returns how many times this station has pulled the document
// from a remote holder since the last migration.
func (s *Station) Fetches(url string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetches[url]
}

// Close stops serving, halts the heartbeat loop and releases every
// peer connection.
func (s *Station) Close() error {
	s.StopHeartbeat()
	err := s.node.Close()
	s.mu.Lock()
	s.closed = true
	pools := s.pools
	s.pools = make(map[string]*transport.Pool)
	hbPools := s.hbPools
	s.hbPools = make(map[string]*transport.Pool)
	s.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
	for _, p := range hbPools {
		p.Close()
	}
	return err
}

// pool returns the connection pool for a peer address, creating it
// lazily. After Close it hands out an already-closed pool, so an
// in-flight handler's late fan-out fails fast with ErrClosed instead
// of leaking an untracked pool.
func (s *Station) pool(addr string) *transport.Pool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pools[addr]
	if !ok {
		p = transport.NewPool(addr, peerPoolSize, callTimeout)
		if s.closed {
			p.Close()
			return p
		}
		s.pools[addr] = p
	}
	return p
}

// hbPool returns the liveness-probe pool for a peer address: a single
// connection apart from the bundle-transfer pool, so probes never
// queue behind multi-minute transfers — a fabric under broadcast load
// must not lose its failure detector.
func (s *Station) hbPool(addr string) *transport.Pool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.hbPools[addr]
	if !ok {
		p = transport.NewPool(addr, 1, DefaultHeartbeatTimeout)
		if s.closed {
			p.Close()
			return p
		}
		s.hbPools[addr] = p
	}
	return p
}

// pruneStalePoolsLocked drops the pools of addresses that left the
// roster (mu held). Rejoins put restarted stations on fresh sockets,
// so without pruning a long-lived fabric leaks one pool per crash.
// The closes run off-thread: a pool close touches sockets, and the
// caller holds the station lock.
func (s *Station) pruneStalePoolsLocked() {
	live := make(map[string]bool, len(s.roster))
	for _, addr := range s.roster {
		live[addr] = true
	}
	var stale []*transport.Pool
	for addr, p := range s.pools {
		if !live[addr] {
			stale = append(stale, p)
			delete(s.pools, addr)
		}
	}
	for addr, p := range s.hbPools {
		if !live[addr] {
			stale = append(stale, p)
			delete(s.hbPools, addr)
		}
	}
	if len(stale) > 0 {
		go func() {
			for _, p := range stale {
				p.Close()
			}
		}()
	}
}

// applyTopology folds a roster snapshot and the root's policy into the
// station's state (mu held). Snapshots originate at the root and are
// epoch-numbered — the root bumps the epoch on every membership or
// liveness change, so a higher epoch always wins and stale snapshots
// riding on slow RPCs are ignored. The station derives its own
// position by finding its address, which also covers the race where a
// broadcast reaches a joiner before its JoinReply does — carrying the
// watermark here means that station also runs the configured
// replication policy, not the zero value. Applying a snapshot also
// clears local suspicions — the root has spoken: a same-epoch snapshot
// means the root refuted (or never heard) the suspicion, a newer one
// supersedes it either way — so a transiently unreachable peer is
// retried on the next tree operation instead of being shunned forever.
func (s *Station) applyTopology(m, n, watermark, epoch int, roster map[int]string, down map[int]bool) {
	if epoch < s.epoch || len(roster) == 0 {
		return
	}
	if epoch == s.epoch {
		s.suspect = make(map[int]bool)
		return
	}
	s.m = m
	s.n = n
	s.watermark = watermark
	s.epoch = epoch
	s.roster = make(map[int]string, len(roster))
	for pos, addr := range roster {
		s.roster[pos] = addr
	}
	s.down = make(map[int]bool, len(down))
	for pos := range down {
		s.down[pos] = true
	}
	s.suspect = make(map[int]bool)
	for pos, addr := range roster {
		if addr == s.addr {
			s.pos = pos
			s.node.SetPos(pos)
			break
		}
	}
	s.pruneStalePoolsLocked()
}

// view is a consistent copy of the station's topology state for use
// outside the lock.
type view struct {
	pos, m, n, watermark, epoch int

	isRoot  bool
	addr    string
	roster  map[int]string
	down    map[int]bool
	suspect map[int]bool
}

// dead reports whether a position is either root-declared down or
// locally suspected.
func (v view) dead(pos int) bool { return v.down[pos] || v.suspect[pos] }

func (s *Station) view() view {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := view{
		pos: s.pos, m: s.m, n: s.n, watermark: s.watermark, epoch: s.epoch,
		isRoot:  s.isRoot,
		addr:    s.addr,
		roster:  make(map[int]string, len(s.roster)),
		down:    make(map[int]bool, len(s.down)),
		suspect: make(map[int]bool, len(s.suspect)),
	}
	for p, a := range s.roster {
		v.roster[p] = a
	}
	for p := range s.down {
		v.down[p] = true
	}
	for p := range s.suspect {
		v.suspect[p] = true
	}
	return v
}

// handleJoin assigns the next linear position. Only the root holds the
// authoritative roster. Joining is idempotent per address: a joiner
// whose reply was lost retries and gets its original position back
// instead of a duplicate roster entry. A rejoin request takes its old
// position back (with the new address) when that position is marked
// down — or, if the failure detector has not caught up with the crash
// yet, when a confirmation probe of the old address fails; anything
// else falls through to a fresh assignment.
func (s *Station) handleJoin(decode func(any) error) (any, error) {
	var req JoinRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	if !s.isRoot {
		return nil, fmt.Errorf("%w: join", ErrNotRoot)
	}
	if req.Addr == "" {
		return nil, errors.New("fabric: join without a listen address")
	}
	// A supervisor restart can beat the failure detector to the punch:
	// the rejoiner asks for a position the root still believes is
	// alive. Confirm with a probe (outside the lock) before handing
	// the position over.
	takeoverAddr := ""
	if req.Rejoin && req.OldPos >= 2 {
		s.mu.Lock()
		oldAddr, held := s.roster[req.OldPos]
		down := s.down[req.OldPos]
		s.mu.Unlock()
		if held && oldAddr != req.Addr {
			// probeDirect, not the pooled probe: a takeover decided on
			// a breaker-cached failure could hand the position to the
			// rejoiner while the old process still serves it.
			if down || s.probeDirect(req.OldPos, oldAddr, DefaultHeartbeatTimeout) != nil {
				takeoverAddr = oldAddr
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.roster[1] == "" {
		return nil, errors.New("fabric: root is still starting, retry")
	}
	pos := 0
	for p, a := range s.roster {
		if a == req.Addr {
			pos = p
			break
		}
	}
	changed := false
	// The probed address must still hold the position: a concurrent
	// rejoiner may have claimed it while the lock was released.
	if pos == 0 && takeoverAddr != "" && s.roster[req.OldPos] == takeoverAddr {
		pos = req.OldPos
		s.roster[pos] = req.Addr
		changed = true
		s.event("rejoin-grant", "pos", pos, "addr", req.Addr, "old-addr", takeoverAddr)
	}
	if pos == 0 {
		s.n++
		pos = s.n
		s.roster[pos] = req.Addr
		changed = true
	}
	if s.down[pos] || s.suspect[pos] {
		delete(s.down, pos)
		delete(s.suspect, pos)
		s.hbFails[pos] = 0
		changed = true
		if req.Rejoin {
			s.event("rejoin-grant", "pos", pos, "addr", req.Addr)
		}
	}
	if changed {
		s.epoch++
		s.pruneStalePoolsLocked()
	}
	roster := make(map[int]string, len(s.roster))
	for p, a := range s.roster {
		roster[p] = a
	}
	down := make(map[int]bool, len(s.down))
	for p := range s.down {
		down[p] = true
	}
	return JoinReply{
		Pos: pos, M: s.m, N: s.n, Watermark: s.watermark,
		Epoch: s.epoch, Roster: roster, Down: down,
	}, nil
}

// handleTopology reports the station's current view of the fabric.
func (s *Station) handleTopology(decode func(any) error) (any, error) {
	var req struct{}
	if err := decode(&req); err != nil {
		return nil, err
	}
	v := s.view()
	return TopologyReply{
		Pos: v.pos, M: v.m, N: v.n, Watermark: v.watermark,
		Epoch: v.epoch, IsRoot: v.isRoot, Roster: v.roster, Down: v.down,
	}, nil
}

// sortResults orders per-station results by linear position, then by
// document URL so batched broadcasts report deterministically.
func sortResults(rs []StationResult) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Pos != rs[j].Pos {
			return rs[i].Pos < rs[j].Pos
		}
		return rs[i].URL < rs[j].URL
	})
}
