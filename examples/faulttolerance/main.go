// Faulttolerance demonstrates the failure-handling extension of the
// distribution layer: when student stations fail mid-semester, the
// pre-broadcast grafts their children onto the nearest live ancestor
// and on-demand pulls skip dead holders on the parent route. It also
// shows the chunked-relay ablation (E11): cutting the lecture bundle
// into blocks removes the store-and-forward depth penalty.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/workload"
)

func build() (*cluster.Cluster, workload.CourseSpec) {
	c, err := cluster.New(cluster.Config{
		Stations:  15,
		M:         2,
		UplinkBps: 1.25e6, // 10 Mb/s
		Latency:   5 * time.Millisecond,
		Watermark: 0,
		Mode:      netsim.Sequential,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.DefaultSpec(1)
	spec.Pages = 12
	spec.MediaScaleDown = 64
	if _, _, err := c.AuthorCourse(spec); err != nil {
		log.Fatal(err)
	}
	if err := c.BroadcastReferences(spec.URL); err != nil {
		log.Fatal(err)
	}
	return c, spec
}

func slowest(times []time.Duration) time.Duration {
	var max time.Duration
	for _, t := range times {
		if t > max {
			max = t
		}
	}
	return max
}

func main() {
	// Baseline store-and-forward broadcast over the healthy tree.
	c, spec := build()
	times, size, err := c.PreBroadcast(spec.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy tree (m=2, 15 stations): %.2f MiB everywhere after %v\n",
		float64(size)/(1<<20), slowest(times).Round(time.Millisecond))

	// Chunked relay removes the depth penalty.
	c, spec = build()
	times, _, err = c.PreBroadcastChunked(spec.URL, size/16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chunked relay (16 blocks):        everywhere after %v\n",
		slowest(times).Round(time.Millisecond))

	// A student under a failed subtree still pulls on demand: on a
	// fresh deployment, station 5's parent (2) is dead, so the root
	// serves it over the live ancestor route.
	c, spec = build()
	for _, down := range []int{2, 6} {
		if err := c.MarkDown(down); err != nil {
			log.Fatal(err)
		}
	}
	res, err := c.FetchOnDemandResilient(5, spec.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstations 2 and 6 down; station 5 (child of 2) pulled from station %d in %v\n",
		res.ServedBy, res.Latency.Round(time.Millisecond))

	// The resilient broadcast routes around the failures.
	times, _, err = c.PreBroadcastResilient(spec.URL)
	if err != nil {
		log.Fatal(err)
	}
	delivered := 0
	for pos := 2; pos <= c.Size(); pos++ {
		if times[pos-1] > 0 {
			delivered++
		}
	}
	fmt.Printf("resilient broadcast reached %d of %d live student stations after %v\n",
		delivered, c.Size()-3, slowest(times).Round(time.Millisecond))

	// Recovery: station 2 comes back and reviews the lecture; the pull
	// route works again with the parent as first candidate.
	if err := c.MarkUp(2); err != nil {
		log.Fatal(err)
	}
	res, err = c.FetchOnDemandResilient(2, spec.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered station 2 pulled from station %d in %v\n",
		res.ServedBy, res.Latency.Round(time.Millisecond))
}
