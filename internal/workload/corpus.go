package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/library"
	"repro/internal/relstore"
	"repro/internal/schema"
)

// Shared corpus builders: every bench entry point (mmubench's
// experiment tables, the webdocload harness, the unit benchmarks)
// builds its synthetic stores through these, so "10k-script catalog"
// or "20-script QA corpus" means the same bytes everywhere and cross-
// tool numbers stay comparable.

// BaseTime is the canonical experiment clock: generated rows carry it
// instead of wall time, so corpora are bit-identical across runs.
var BaseTime = time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC)

// NewStore opens a fresh in-memory document store pinned to BaseTime,
// the starting point of every synthetic corpus.
func NewStore() (*docdb.Store, error) {
	store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		return nil, err
	}
	store.Now = func() time.Time { return BaseTime }
	return store, nil
}

// AuthorCourse builds a course and records it the way the instructor
// station does: the content via BuildCourse, a persistent instance
// object, and the reusable class declaration.
func AuthorCourse(store *docdb.Store, spec CourseSpec) (Course, docdb.DocObject, error) {
	course, err := BuildCourse(store, spec)
	if err != nil {
		return Course{}, docdb.DocObject{}, err
	}
	inst, err := store.NewInstance(spec.URL, 1, true)
	if err != nil {
		return Course{}, docdb.DocObject{}, err
	}
	if _, err := store.DeclareClass(inst.ID); err != nil {
		return Course{}, docdb.DocObject{}, err
	}
	return course, inst, nil
}

// CatalogSpec parameterizes a virtual-library catalog: Size scripts
// with Zipf-weighted keywords drawn from a VocabSize-word vocabulary,
// authored by a rotating AuthorPool and shelved under the librarian's
// name.
type CatalogSpec struct {
	DBName      string
	Size        int
	VocabSize   int
	KeywordsPer int
	AuthorPool  int
	Librarian   string
	Seed        int64
}

// DefaultCatalogSpec is the catalog shape the experiments report.
func DefaultCatalogSpec(size int) CatalogSpec {
	return CatalogSpec{
		DBName:      "mmu",
		Size:        size,
		VocabSize:   5000,
		KeywordsPer: 4,
		AuthorPool:  50,
		Librarian:   "Shih",
		Seed:        5,
	}
}

// BuildCatalog fills a store (and, when lib is non-nil, its virtual
// library) with the catalog. The returned rand source has consumed
// exactly the catalog's draws, so callers can keep drawing queries
// from the same deterministic stream.
func BuildCatalog(store *docdb.Store, lib *library.Library, spec CatalogSpec) (*rand.Rand, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	vocab := Vocabulary(spec.VocabSize)
	if _, err := store.Database(spec.DBName); err != nil {
		if err := store.CreateDatabase(docdb.Database{Name: spec.DBName}); err != nil {
			return nil, err
		}
	}
	if lib != nil {
		lib.RegisterInstructor(spec.Librarian)
	}
	for d := 0; d < spec.Size; d++ {
		script := fmt.Sprintf("course-%05d", d)
		err := store.CreateScript(docdb.Script{
			Name:     script,
			DBName:   spec.DBName,
			Author:   fmt.Sprintf("instructor-%d", d%spec.AuthorPool),
			Keywords: PickKeywords(rng, vocab, spec.KeywordsPer),
		})
		if err != nil {
			return nil, err
		}
		if lib != nil {
			if err := lib.Add(script, fmt.Sprintf("C-%05d", d), spec.Librarian); err != nil {
				return nil, err
			}
		}
	}
	return rng, nil
}

// CatalogQueries draws n keyword queries from the catalog's
// vocabulary, continuing the given deterministic stream.
func CatalogQueries(rng *rand.Rand, spec CatalogSpec, n, keywordsPer int) []library.Query {
	vocab := Vocabulary(spec.VocabSize)
	qs := make([]library.Query, n)
	for i := range qs {
		qs[i] = library.Query{Keywords: PickKeywords(rng, vocab, keywordsPer)}
	}
	return qs
}

// QACorpusSpec parameterizes a quality-assurance corpus: scripts with
// several implementations each, every implementation carrying pages,
// one program, one media resource, a test record, a bug report and an
// annotation — the full referential web the integrity subsystem
// propagates alerts through.
type QACorpusSpec struct {
	DBName   string
	Scripts  int
	ImplsPer int
	PagesPer int
}

// DefaultQACorpusSpec is the QA corpus shape the experiments report.
func DefaultQACorpusSpec(scripts, implsPer int) QACorpusSpec {
	return QACorpusSpec{DBName: "mmu", Scripts: scripts, ImplsPer: implsPer, PagesPer: 4}
}

// BuildQACorpus fills a store with the QA corpus. Identifiers are
// deterministic (script-%03d and friends), so alert fan-outs and row
// counts are reproducible across entry points.
func BuildQACorpus(store *docdb.Store, spec QACorpusSpec) error {
	if _, err := store.Database(spec.DBName); err != nil {
		if err := store.CreateDatabase(docdb.Database{Name: spec.DBName}); err != nil {
			return err
		}
	}
	for s := 0; s < spec.Scripts; s++ {
		script := fmt.Sprintf("script-%03d", s)
		if err := store.CreateScript(docdb.Script{Name: script, DBName: spec.DBName}); err != nil {
			return err
		}
		for i := 0; i < spec.ImplsPer; i++ {
			url := fmt.Sprintf("http://mmu/%s/v%d", script, i)
			if err := store.AddImplementation(docdb.Implementation{StartingURL: url, ScriptName: script}); err != nil {
				return err
			}
			for p := 0; p < spec.PagesPer; p++ {
				if err := store.PutHTML(url, PagePath(p), []byte("<html><title>p</title></html>")); err != nil {
					return err
				}
			}
			if err := store.PutProgram(url, "quiz.java", "java", []byte("x")); err != nil {
				return err
			}
			if _, err := store.AttachImplMedia(url, fmt.Sprintf("m-%s-%d.gif", script, i), blob.KindImage, []byte(url)); err != nil {
				return err
			}
			test := fmt.Sprintf("test-%s-%d", script, i)
			if err := store.RecordTest(docdb.TestRecord{Name: test, ScriptName: script, StartingURL: url, Scope: "local"}); err != nil {
				return err
			}
			if err := store.FileBugReport(docdb.BugReport{Name: "bug-" + test, TestName: test}); err != nil {
				return err
			}
			if err := store.SaveAnnotation(docdb.Annotation{Name: "ann-" + test, ScriptName: script, StartingURL: url}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Schema kinds the QA corpus seeds, re-exported for corpus consumers
// that probe integrity propagation.
var QAProbeKinds = []string{schema.KindScript, schema.KindImplementation, schema.KindTestRecord}
