package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/integrity"
	"repro/internal/library"
	"repro/internal/locking"
	"repro/internal/mtree"
	"repro/internal/schema"
	"repro/internal/workload"
)

// E6Locking compares collaborative throughput under the paper's
// hierarchical compatibility table against a single exclusive lock over
// the whole course database. Critical sections sleep rather than spin,
// so the measured difference is blocking structure, not CPU count.
func E6Locking(scale Scale) (*Table, error) {
	opsPerUser := 30
	if scale == Full {
		opsPerUser = 120
	}
	const users = 8
	const components = 16
	const hold = 500 * time.Microsecond
	t := &Table{
		ID:     "E6",
		Title:  "collaborative editing throughput: hierarchical locks vs one global lock",
		Header: []string{"scheme", "users", "ops", "elapsed (s)", "ops/sec"},
		Notes:  []string{"90/10 read/write mix over 16 components, 0.5 ms hold time per op"},
	}

	run := func(scheme string, global bool) error {
		m := locking.NewManager()
		var wg sync.WaitGroup
		start := time.Now()
		for u := 0; u < users; u++ {
			user := fmt.Sprintf("instr%d", u)
			rng := rand.New(rand.NewSource(int64(100 + u)))
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < opsPerUser; i++ {
					mode := locking.Read
					if rng.Intn(10) == 0 {
						mode = locking.Write
					}
					var path locking.Path
					if global {
						// The baseline write-locks the whole database
						// for every operation.
						path = locking.Path{"mmu"}
						mode = locking.Write
					} else {
						path = locking.Path{"mmu", "course", fmt.Sprintf("part%02d", rng.Intn(components))}
					}
					lk, err := m.Acquire(context.Background(), user, path, mode)
					if err != nil {
						return
					}
					time.Sleep(hold)
					lk.Release()
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		total := users * opsPerUser
		t.Rows = append(t.Rows, []string{
			scheme, fmt.Sprint(users), fmt.Sprint(total), seconds(elapsed),
			fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()),
		})
		return nil
	}
	if err := run("hierarchical (paper)", false); err != nil {
		return nil, err
	}
	if err := run("single global lock", true); err != nil {
		return nil, err
	}
	return t, nil
}

// E7Integrity seeds a populated document database and counts the alert
// fan-out the referential integrity diagram produces for updates at
// each layer of the hierarchy.
func E7Integrity(scale Scale) (*Table, error) {
	scripts := 6
	implsPer := 2
	if scale == Full {
		scripts = 20
		implsPer = 3
	}
	t := &Table{
		ID:     "E7",
		Title:  "referential-integrity alert fan-out by updated object kind",
		Header: []string{"updated kind", "alerts", "max depth"},
		Notes:  []string{fmt.Sprintf("%d scripts x %d implementations, each with pages, media, tests, bugs, annotations", scripts, implsPer)},
	}
	// The corpus comes from the shared workload generator, so the QA
	// web measured here is byte-identical to the one other bench entry
	// points (webdocload, the unit benchmarks) construct.
	store, err := workload.NewStore()
	if err != nil {
		return nil, err
	}
	if err := workload.BuildQACorpus(store, workload.DefaultQACorpusSpec(scripts, implsPer)); err != nil {
		return nil, err
	}
	d := integrity.Default()
	r := integrity.DocResolver{Store: store}
	cases := []struct {
		kind string
		id   string
	}{
		{schema.KindScript, "script-000"},
		{schema.KindImplementation, "http://mmu/script-000/v0"},
		{schema.KindTestRecord, "test-script-000-0"},
	}
	for _, cse := range cases {
		alerts, err := d.Propagate(r, cse.kind, cse.id)
		if err != nil {
			return nil, err
		}
		maxDepth := 0
		for _, a := range alerts {
			if a.Depth > maxDepth {
				maxDepth = a.Depth
			}
		}
		t.Rows = append(t.Rows, []string{cse.kind, fmt.Sprint(len(alerts)), fmt.Sprint(maxDepth)})
	}
	return t, nil
}

// E8Search measures virtual-library retrieval: the inverted keyword
// index against the linear catalog scan, across catalog sizes.
func E8Search(scale Scale) (*Table, error) {
	sizes := []int{500, 2000}
	queries := 200
	if scale == Full {
		sizes = []int{1000, 10000}
		queries = 500
	}
	t := &Table{
		ID:     "E8",
		Title:  "virtual library search: inverted index vs catalog scan",
		Header: []string{"catalog", "queries", "indexed (ms)", "scan (ms)", "speedup"},
		Notes:  []string{"2-keyword Zipf queries over a 5000-word vocabulary"},
	}
	for _, size := range sizes {
		// Catalog and query stream both come from the shared workload
		// generator: one deterministic draw sequence, identical across
		// bench entry points.
		store, err := workload.NewStore()
		if err != nil {
			return nil, err
		}
		lib := library.New(store)
		spec := workload.DefaultCatalogSpec(size)
		rng, err := workload.BuildCatalog(store, lib, spec)
		if err != nil {
			return nil, err
		}
		qs := workload.CatalogQueries(rng, spec, queries, 2)
		start := time.Now()
		var hits int
		for _, q := range qs {
			hits += len(lib.Search(q))
		}
		indexed := time.Since(start)
		start = time.Now()
		var scanHits int
		for _, q := range qs {
			scanHits += len(lib.ScanSearch(q))
		}
		scanned := time.Since(start)
		if hits != scanHits {
			return nil, fmt.Errorf("experiments: E8 disagreement: indexed %d vs scan %d hits", hits, scanHits)
		}
		speedup := float64(scanned) / float64(indexed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(size), fmt.Sprint(queries),
			fmt.Sprintf("%.2f", indexed.Seconds()*1e3),
			fmt.Sprintf("%.2f", scanned.Seconds()*1e3),
			fmt.Sprintf("%.1fx", speedup),
		})
	}
	return t, nil
}

// E9Formulas regenerates the paper's placement equations: a sample of
// child/parent positions plus an exhaustive mutual-consistency check.
func E9Formulas(scale Scale) (*Table, error) {
	limit := 10000
	if scale == Full {
		limit = 100000
	}
	t := &Table{
		ID:     "E9",
		Title:  "m-ary placement equations (paper section 4)",
		Header: []string{"m", "station n", "children", "parent of n"},
		Notes:  []string{fmt.Sprintf("Validate(N=%d) confirms Parent(Child(n,i)) == n for every m in [1,16]", limit)},
	}
	for _, m := range []int{2, 3, 4} {
		for _, n := range []int{1, 2, 3, 5, 13} {
			kids, err := mtree.Children(n, m, 1000)
			if err != nil {
				return nil, err
			}
			parent := "-"
			if n > 1 {
				p, err := mtree.Parent(n, m)
				if err != nil {
					return nil, err
				}
				parent = fmt.Sprint(p)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(m), fmt.Sprint(n), fmt.Sprint(kids), parent,
			})
		}
	}
	for m := 1; m <= 16; m++ {
		if err := mtree.Validate(limit, m); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "validation passed")
	return t, nil
}
