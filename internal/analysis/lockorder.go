package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// LockOrder checks statically-known table declarations against
// relstore's lock hierarchy: per-table locks are only ever acquired in
// ascending table-name order, so a table list declared to Begin (or
// reaching Begin through ApplyThen's batch) must be sorted. Begin
// itself sorts what it is handed, but a declaration written out of
// order stops reading as the lock-order contract and is one copy-paste
// away from a lazy-acquisition ErrLockOrder at runtime — the linter
// keeps the declared order and the acquisition order literally
// identical. Lists built dynamically (slices, spreads, variables) are
// out of static reach and skipped.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "table lists declared to relstore Begin must be in sorted order",
	Run:  runLockOrder,
}

func runLockOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isRelstoreMethod(p, call, "Begin", "DB") {
				return true
			}
			if call.Ellipsis.IsValid() {
				return true // Begin(tables...) — list not statically known
			}
			names := make([]string, 0, len(call.Args))
			for _, arg := range call.Args {
				tv, ok := p.Info.Types[arg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					return true // any non-constant member hides the order
				}
				names = append(names, constant.StringVal(tv.Value))
			}
			for i := 1; i < len(names); i++ {
				switch {
				case names[i] == names[i-1]:
					p.Reportf(call.Args[i].Pos(), "duplicate table %q in Begin declaration", names[i])
				case names[i] < names[i-1]:
					p.Reportf(call.Args[i].Pos(), "tables declared to Begin out of order: %q sorts before %q — locks are acquired in ascending table-name order", names[i], names[i-1])
				}
			}
			return true
		})
	}
}

// isRelstoreMethod reports whether call invokes the named method on
// relstore's recvType (matched by package and type name, so fixture
// copies of the real signatures are caught too).
func isRelstoreMethod(p *Pass, call *ast.CallExpr, method, recvType string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "relstore" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == recvType
}
