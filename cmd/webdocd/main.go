// Command webdocd runs one Web document database station as a network
// daemon: the deployed form of a station in the paper's three-tier
// architecture. It hosts the embedded relational engine, the BLOB store
// and the document layer, and serves the station RPC protocol (Ping,
// Bundle, Import, SQL) over TCP.
//
// Usage:
//
//	webdocd -addr 127.0.0.1:7070 -pos 1
//	webdocd -addr 127.0.0.1:7071 -pos 2 -seed-course 1
//	webdocd -wal station1.wal   # persist committed transactions
//
// With -seed-course N the daemon authors a synthetic N-page course on
// startup so a fresh deployment has something to serve.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/docdb"
	"repro/internal/library"
	"repro/internal/relstore"
	"repro/internal/webui"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		httpAddr   = flag.String("http", "", "serve the Web-savvy virtual library UI on this address (empty disables)")
		pos        = flag.Int("pos", 1, "station position in the linear joining order")
		walPath    = flag.String("wal", "", "write-ahead log path (empty disables persistence)")
		seedCourse = flag.Int("seed-course", 0, "author a synthetic course with this many pages on startup")
	)
	flag.Parse()

	rel := relstore.NewDB()
	blobs := blob.NewStore()
	store, err := docdb.Open(rel, blobs)
	if err != nil {
		log.Fatalf("webdocd: opening store: %v", err)
	}
	blobSnapPath := *walPath + ".blobs"
	if *walPath != "" {
		// BLOB bytes are not in the WAL; they come back from the
		// sidecar snapshot written at shutdown.
		if f, err := os.Open(blobSnapPath); err == nil {
			if err := blobs.Restore(f); err != nil {
				log.Fatalf("webdocd: restoring BLOB snapshot: %v", err)
			}
			f.Close()
		}
		if f, err := os.Open(*walPath); err == nil {
			// Replay an existing log into the live engine (its schema is
			// already installed by docdb.Open) before attaching the log
			// for appends, so a restarted station serves its old data.
			if n, err := rel.ReplayWAL(f); err != nil {
				log.Fatalf("webdocd: replaying WAL: %v", err)
			} else if n > 0 {
				log.Printf("webdocd: replayed %d committed transactions", n)
			}
			f.Close()
		}
		// Restored rows carry generated IDs; move the counter past them
		// so new IDs cannot collide.
		if err := store.SyncIDs(); err != nil {
			log.Fatalf("webdocd: syncing ID counter: %v", err)
		}
		if err := rel.OpenWAL(*walPath); err != nil {
			log.Fatalf("webdocd: opening WAL: %v", err)
		}
		defer rel.CloseWAL()
	}

	lib := library.New(store)
	lib.RegisterInstructor("instructor")
	if *seedCourse > 0 {
		spec := workload.DefaultSpec(*pos)
		spec.Pages = *seedCourse
		spec.MediaScaleDown = 4096
		if _, err := store.Script(spec.ScriptName); err == nil {
			// The course came back with the WAL replay; re-seeding
			// would collide with the restored rows.
			log.Printf("webdocd: %s already present, skipping seed", spec.ScriptName)
			if err := lib.Add(spec.ScriptName, fmt.Sprintf("MMU-%03d", *pos), "instructor"); err != nil {
				log.Fatalf("webdocd: cataloging course: %v", err)
			}
		} else {
			course, err := workload.BuildCourse(store, spec)
			if err != nil {
				log.Fatalf("webdocd: seeding course: %v", err)
			}
			if _, err := store.NewInstance(spec.URL, *pos, true); err != nil {
				log.Fatalf("webdocd: recording instance: %v", err)
			}
			if err := lib.Add(spec.ScriptName, fmt.Sprintf("MMU-%03d", *pos), "instructor"); err != nil {
				log.Fatalf("webdocd: cataloging course: %v", err)
			}
			log.Printf("webdocd: seeded %s (%d pages, %d media, %d bytes)",
				spec.ScriptName, course.PageCount, course.MediaCount, course.MediaBytes)
		}
	}

	if *httpAddr != "" {
		ui := webui.New(lib, store)
		go func() {
			log.Printf("webdocd: virtual library UI on http://%s/", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, ui); err != nil {
				log.Fatalf("webdocd: http: %v", err)
			}
		}()
	}

	node := cluster.NewNode(*pos, store)
	bound, err := node.Start(*addr)
	if err != nil {
		log.Fatalf("webdocd: listen: %v", err)
	}
	fmt.Printf("webdocd: station %d serving on %s\n", *pos, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("webdocd: shutting down")
	node.Close()
	if *walPath != "" {
		f, err := os.Create(blobSnapPath)
		if err != nil {
			log.Printf("webdocd: writing BLOB snapshot: %v", err)
			return
		}
		if err := blobs.Snapshot(f); err != nil {
			log.Printf("webdocd: writing BLOB snapshot: %v", err)
		}
		f.Close()
	}
}
