package relstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func orderedFixture(t *testing.T, n int) *DB {
	t.Helper()
	db := NewDB()
	err := db.CreateTable(Schema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: TInt, NotNull: true},
			{Name: "score", Type: TFloat},
			{Name: "name", Type: TText},
		},
		Key: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateOrderedIndex("t", "score"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := Row{"id": int64(i), "name": fmt.Sprintf("r%d", i)}
		if i%10 != 9 { // every tenth row has a NULL score
			row["score"] = float64(i % 25)
		}
		if err := db.Insert("t", row); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestOrderedIndexRangeOperators(t *testing.T) {
	db := orderedFixture(t, 100)
	cases := []struct {
		op  CmpOp
		val float64
	}{
		{OpLt, 5}, {OpLe, 5}, {OpGt, 20}, {OpGe, 20}, {OpEq, 7},
	}
	for _, c := range cases {
		// The planner result must match a manual filter of all rows.
		got, err := db.Select(Query{Table: "t", Conds: []Cond{{Col: "score", Op: c.op, Val: c.val}}})
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		db.Scan("t", func(r Row) bool {
			cond := Cond{Col: "score", Op: c.op, Val: c.val}
			if cond.matches(r["score"], c.val) {
				want++
			}
			return true
		})
		if len(got) != want {
			t.Errorf("op %v %v: got %d rows, want %d", c.op, c.val, len(got), want)
		}
		// NULL scores never appear in range results.
		for _, r := range got {
			if r["score"] == nil {
				t.Errorf("op %v returned a NULL score row", c.op)
			}
		}
	}
}

func TestOrderedIndexBackfill(t *testing.T) {
	db := NewDB()
	err := db.CreateTable(Schema{
		Name:    "t",
		Columns: []Column{{Name: "id", Type: TInt, NotNull: true}, {Name: "v", Type: TInt}},
		Key:     "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Insert("t", Row{"id": int64(i), "v": int64(50 - i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Index created after the rows exist.
	if err := db.CreateOrderedIndex("t", "v"); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Select(Query{Table: "t", Conds: []Cond{{Col: "v", Op: OpLe, Val: 10}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("rows = %d, want 10", len(rows))
	}
	// Idempotent re-create.
	if err := db.CreateOrderedIndex("t", "v"); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedIndexValidation(t *testing.T) {
	db := orderedFixture(t, 1)
	if err := db.CreateOrderedIndex("nope", "x"); !errors.Is(err, ErrNoTable) {
		t.Errorf("err = %v", err)
	}
	if err := db.CreateOrderedIndex("t", "nope"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("err = %v", err)
	}
}

func TestOrderedIndexSurvivesSnapshot(t *testing.T) {
	db := orderedFixture(t, 30)
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	if err := db2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	// The restored engine still has the ordered index (observable only
	// through correct range results; plan equivalence is checked by the
	// property test below).
	rows, err := db2.Select(Query{Table: "t", Conds: []Cond{{Col: "score", Op: OpGe, Val: 20}}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Select(Query{Table: "t", Conds: []Cond{{Col: "score", Op: OpGe, Val: 20}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Errorf("restored rows = %d, want %d", len(rows), len(want))
	}
}

// Property: after arbitrary insert/update/delete interleavings, the
// ordered index plan returns exactly what an unindexed scan returns,
// under transactions including rollbacks.
func TestQuickOrderedIndexMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		indexed := NewDB()
		plain := NewDB()
		schema := Schema{
			Name:    "t",
			Columns: []Column{{Name: "id", Type: TInt, NotNull: true}, {Name: "v", Type: TInt}},
			Key:     "id",
		}
		if err := indexed.CreateTable(schema); err != nil {
			return false
		}
		if err := plain.CreateTable(schema); err != nil {
			return false
		}
		if err := indexed.CreateOrderedIndex("t", "v"); err != nil {
			return false
		}
		for op := 0; op < 200; op++ {
			id := int64(rng.Intn(40))
			v := int64(rng.Intn(20))
			switch rng.Intn(4) {
			case 0:
				indexed.Insert("t", Row{"id": id, "v": v})
				plain.Insert("t", Row{"id": id, "v": v})
			case 1:
				indexed.Update("t", id, Row{"v": v})
				plain.Update("t", id, Row{"v": v})
			case 2:
				indexed.Delete("t", id)
				plain.Delete("t", id)
			case 3:
				// A rolled-back transaction must leave the index intact.
				tx, _ := indexed.Begin()
				tx.Insert("t", Row{"id": id + 1000, "v": v})
				tx.Rollback()
			}
		}
		for _, op := range []CmpOp{OpLt, OpLe, OpGt, OpGe, OpEq} {
			val := int64(rng.Intn(20))
			a, err1 := indexed.Select(Query{Table: "t", Conds: []Cond{{Col: "v", Op: op, Val: val}}, OrderBy: "id"})
			b, err2 := plain.Select(Query{Table: "t", Conds: []Cond{{Col: "v", Op: op, Val: val}}, OrderBy: "id"})
			if err1 != nil || err2 != nil || len(a) != len(b) {
				return false
			}
			for i := range a {
				if compareValues(a[i]["id"], b[i]["id"]) != 0 || compareValues(a[i]["v"], b[i]["v"]) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
