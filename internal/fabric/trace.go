package fabric

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// Fabric-wide trace collection. Every station keeps its own bounded
// span ring (internal/obs); reconstructing one distributed operation
// means asking every live station for its spans with the operation's
// TraceID and concatenating. The collection reuses the search
// scatter-gather shape exactly: a client entry is forwarded to the
// root, which stamps the topology and scatters down the distribution
// tree, each hop contributing its local spans and relaying to its
// children with the shared grafting rule (dead subtrees are covered
// directly by their grandparent). Collection is read-only and
// idempotent, so — like search — even timed-out hops are safe to graft
// around: re-collecting a subtree at worst re-returns spans the caller
// deduplicates by SpanID.
//
// The collection RPCs are deliberately untraced (no trace context on
// the wire, plain handler registration): collecting a trace must not
// pollute the rings it is reading.

// TraceRequest asks for every span recorded under one TraceID. Client
// entries leave Scatter false; scatter hops carry the epoch-numbered
// roster like every other tree RPC.
type TraceRequest struct {
	ID        uint64
	Scatter   bool
	M         int
	N         int
	Watermark int
	Epoch     int
	Roster    map[int]string
	Down      map[int]bool
}

// TraceReply aggregates a subtree's spans for the requested TraceID,
// plus one result entry per station covered (Err set for dead hops).
type TraceReply struct {
	ID       uint64
	Spans    []obs.Span
	Stations []StationResult
}

// Trace collects the fabric-wide span set for one TraceID from this
// station: forwarded to the root, which scatters the collection over
// the distribution tree.
func (s *Station) Trace(id uint64) (*TraceReply, error) {
	v := s.view()
	if v.pos == 0 {
		return nil, ErrNotJoined
	}
	if v.isRoot {
		reply := s.scatterTrace(v, id)
		return &reply, nil
	}
	rootAddr := v.roster[1]
	if rootAddr == "" {
		return nil, fmt.Errorf("fabric: no root address in roster")
	}
	var reply TraceReply
	//lint:ignore tracecall trace collection is deliberately untraced so reading the span rings never writes new spans into them (see scatterTrace)
	if err := s.pool(rootAddr).Call(methodTrace, TraceRequest{ID: id}, &reply); err != nil {
		return nil, fmt.Errorf("fabric: forwarding trace collection to root: %w", err)
	}
	return &reply, nil
}

// handleTrace serves both roles of the collection RPC: a client entry
// is forwarded via Station.Trace's protocol, a scatter hop folds the
// carried topology in and gathers its subtree.
func (s *Station) handleTrace(decode func(any) error) (any, error) {
	var req TraceRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	if !req.Scatter {
		reply, err := s.Trace(req.ID)
		if err != nil {
			return nil, err
		}
		return *reply, nil
	}
	s.mu.Lock()
	s.applyTopology(req.M, req.N, req.Watermark, req.Epoch, req.Roster, req.Down)
	pos := s.pos
	s.mu.Unlock()
	if pos == 0 {
		return nil, ErrNotJoined
	}
	return s.gatherTraceSubtree(pos, req), nil
}

// scatterTrace runs the root's side of a collection: stamp the
// topology into the scatter request, gather the whole tree and put the
// result in wire order (spans by start time, stations by position).
func (s *Station) scatterTrace(v view, id uint64) TraceReply {
	req := TraceRequest{
		ID: id, Scatter: true,
		M: v.m, N: v.n, Watermark: v.watermark,
		Epoch: v.epoch, Roster: v.roster, Down: v.down,
	}
	reply := s.gatherTraceSubtree(v.pos, req)
	reply.Spans = dedupeSpans(reply.Spans)
	obs.SortSpans(reply.Spans)
	sortResults(reply.Stations)
	return reply
}

// dedupeSpans drops repeated SpanIDs: a grafted or retried collection
// hop may cover a subtree twice, and the ring contents it re-reads are
// identical.
func dedupeSpans(spans []obs.Span) []obs.Span {
	seen := make(map[uint64]bool, len(spans))
	out := spans[:0]
	for _, sp := range spans {
		if seen[sp.SpanID] {
			continue
		}
		seen[sp.SpanID] = true
		out = append(out, sp)
	}
	return out
}

// gatherTraceSubtree answers for one station and everything below it:
// the local ring's spans for the TraceID plus the children's,
// collected through the repairing fan-out. Unlike search there is no
// per-hop truncation — a trace is bounded by the rings themselves
// (each station contributes at most its ring capacity, in practice a
// handful of spans per traversal).
func (s *Station) gatherTraceSubtree(pos int, req TraceRequest) TraceReply {
	var local []obs.Span
	if o := s.observer(); o != nil {
		local = o.ForTrace(req.ID)
	}
	agg := s.traceFanOut(pos, req)
	return TraceReply{
		ID:       req.ID,
		Spans:    append(local, agg.Spans...),
		Stations: append([]StationResult{{Pos: pos}}, agg.Stations...),
	}
}

// traceFanOut relays the collection to every child subtree. Like
// search (and unlike pushes), timed-out children are grafted around
// too: the read is idempotent, and a wedged station must not hold a
// diagnostic query hostage. The fan-out itself runs unspanned — see
// the package comment above.
func (s *Station) traceFanOut(pos int, req TraceRequest) treeAgg {
	return s.fanOutTree(nil, pos, req.M, req.N, req.Roster, transport.Unreachable, func(addr string) (treeAgg, error) {
		var reply TraceReply
		if err := s.callTraceCollect(addr, req, &reply); err != nil {
			return treeAgg{}, err
		}
		return treeAgg{Stations: reply.Stations, Spans: reply.Spans}, nil
	})
}

// callTraceCollect is callWithRetry with the search rules: the short
// per-hop timeout and retries for every unreachable classification.
func (s *Station) callTraceCollect(addr string, req TraceRequest, reply *TraceReply) error {
	var err error
	for attempt := 0; attempt < pushAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(pushRetryDelay)
		}
		//lint:ignore tracecall trace collection is deliberately untraced so reading the span rings never writes new spans into them (see scatterTrace)
		err = s.pool(addr).CallWithTimeout(methodTrace, req, reply, searchCallTimeout)
		if err == nil || !transport.Unreachable(err) {
			return err
		}
	}
	return err
}
