package library

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/relstore"
)

// newLibrary builds a library with three catalogued courses and a
// ticking deterministic clock (one minute per Now call).
func newLibrary(t *testing.T) (*Library, *docdb.Store) {
	t.Helper()
	s, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(1999, 4, 21, 8, 0, 0, 0, time.UTC)
	tick := 0
	s.Now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Minute)
	}
	if err := s.CreateDatabase(docdb.Database{Name: "mmu"}); err != nil {
		t.Fatal(err)
	}
	courses := []docdb.Script{
		{Name: "cs101", DBName: "mmu", Author: "Shih", Keywords: []string{"computer", "engineering"},
			Description: "Introduction to Computer Engineering"},
		{Name: "mm201", DBName: "mmu", Author: "Ma", Keywords: []string{"multimedia", "computing"},
			Description: "Introduction to Multimedia Computing"},
		{Name: "ed110", DBName: "mmu", Author: "Huang", Keywords: []string{"engineering", "drawing"},
			Description: "Introduction to Engineering Drawing"},
	}
	for _, c := range courses {
		if err := s.CreateScript(c); err != nil {
			t.Fatal(err)
		}
	}
	l := New(s)
	l.RegisterInstructor("Shih")
	for i, c := range courses {
		num := []string{"CS-101", "MM-201", "ED-110"}[i]
		if err := l.Add(c.Name, num, "Shih"); err != nil {
			t.Fatal(err)
		}
	}
	return l, s
}

func TestAddRequiresInstructor(t *testing.T) {
	l, s := newLibrary(t)
	if err := s.CreateScript(docdb.Script{Name: "x1", DBName: "mmu"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Add("x1", "X-1", "student-bob"); !errors.Is(err, ErrNotInstructor) {
		t.Fatalf("err = %v", err)
	}
	if err := l.Add("x1", "X-1", "Shih"); err != nil {
		t.Fatal(err)
	}
}

func TestAddUnknownScript(t *testing.T) {
	l, _ := newLibrary(t)
	if err := l.Add("ghost", "G-1", "Shih"); !errors.Is(err, relstore.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddDuplicate(t *testing.T) {
	l, _ := newLibrary(t)
	if err := l.Add("cs101", "CS-101", "Shih"); !errors.Is(err, ErrAlreadyAdded) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	l, _ := newLibrary(t)
	if err := l.Remove("cs101", "student"); !errors.Is(err, ErrNotInstructor) {
		t.Fatalf("err = %v", err)
	}
	if err := l.Remove("cs101", "Shih"); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove("cs101", "Shih"); !errors.Is(err, ErrNotInLibrary) {
		t.Fatalf("double remove: %v", err)
	}
	// Removed document no longer searchable.
	if hits := l.Search(Query{Keywords: []string{"computer"}}); len(hits) != 0 {
		t.Errorf("hits after remove = %+v", hits)
	}
}

func TestSearchByKeyword(t *testing.T) {
	l, _ := newLibrary(t)
	hits := l.Search(Query{Keywords: []string{"engineering"}})
	if len(hits) != 2 {
		t.Fatalf("hits = %d", len(hits))
	}
	// Both courses mention engineering once in keywords; order by name.
	if hits[0].Entry.ScriptName != "cs101" || hits[1].Entry.ScriptName != "ed110" {
		t.Errorf("order = %s, %s", hits[0].Entry.ScriptName, hits[1].Entry.ScriptName)
	}
}

func TestSearchRankingByMatchedTerms(t *testing.T) {
	l, _ := newLibrary(t)
	hits := l.Search(Query{Keywords: []string{"engineering", "drawing"}})
	if len(hits) != 2 {
		t.Fatalf("hits = %d", len(hits))
	}
	if hits[0].Entry.ScriptName != "ed110" || hits[0].Score != 2 {
		t.Errorf("top hit = %+v", hits[0])
	}
}

func TestSearchByInstructor(t *testing.T) {
	l, _ := newLibrary(t)
	hits := l.Search(Query{Instructor: "ma"})
	if len(hits) != 1 || hits[0].Entry.ScriptName != "mm201" {
		t.Errorf("hits = %+v", hits)
	}
}

func TestSearchByCourseNumberAndTitle(t *testing.T) {
	l, _ := newLibrary(t)
	hits := l.Search(Query{Course: "cs-101"})
	if len(hits) != 1 || hits[0].Entry.ScriptName != "cs101" {
		t.Errorf("by number: %+v", hits)
	}
	hits = l.Search(Query{Course: "multimedia"})
	if len(hits) != 1 || hits[0].Entry.ScriptName != "mm201" {
		t.Errorf("by title: %+v", hits)
	}
}

func TestSearchConjunction(t *testing.T) {
	l, _ := newLibrary(t)
	hits := l.Search(Query{Keywords: []string{"engineering"}, Instructor: "Huang"})
	if len(hits) != 1 || hits[0].Entry.ScriptName != "ed110" {
		t.Errorf("hits = %+v", hits)
	}
	if hits := l.Search(Query{Keywords: []string{"engineering"}, Instructor: "Ma"}); len(hits) != 0 {
		t.Errorf("contradictory query hits = %+v", hits)
	}
}

func TestSearchEmptyQueryReturnsAll(t *testing.T) {
	l, _ := newLibrary(t)
	hits := l.Search(Query{})
	if len(hits) != 3 {
		t.Errorf("hits = %d", len(hits))
	}
}

func TestScanSearchAgreesWithIndexed(t *testing.T) {
	l, _ := newLibrary(t)
	queries := []Query{
		{},
		{Keywords: []string{"engineering"}},
		{Keywords: []string{"engineering", "drawing"}},
		{Instructor: "Shih"},
		{Course: "intro"},
		{Keywords: []string{"multimedia"}, Instructor: "Ma", Course: "MM"},
	}
	for _, q := range queries {
		a := l.Search(q)
		b := l.ScanSearch(q)
		if len(a) != len(b) {
			t.Errorf("query %+v: indexed %d vs scan %d", q, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i].Entry.ScriptName != b[i].Entry.ScriptName || a[i].Score != b[i].Score {
				t.Errorf("query %+v: row %d differs: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}

func TestCatalogSorted(t *testing.T) {
	l, _ := newLibrary(t)
	cat := l.Catalog()
	if len(cat) != 3 || cat[0].ScriptName != "cs101" || cat[2].ScriptName != "mm201" {
		t.Errorf("catalog = %+v", cat)
	}
}

func TestCheckOutInFlow(t *testing.T) {
	l, _ := newLibrary(t)
	co1, err := l.CheckOut("cs101", "alice")
	if err != nil {
		t.Fatal(err)
	}
	// Another student may hold the same document concurrently.
	co2, err := l.CheckOut("cs101", "bob")
	if err != nil {
		t.Fatalf("concurrent library checkout refused: %v", err)
	}
	// A student may hold many documents.
	if _, err := l.CheckOut("mm201", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckIn(co1); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckIn(co1); !errors.Is(err, ErrNotOut) {
		t.Fatalf("double checkin: %v", err)
	}
	if err := l.CheckIn(co2); err != nil {
		t.Fatal(err)
	}
}

func TestCheckOutUnknownDoc(t *testing.T) {
	l, _ := newLibrary(t)
	if _, err := l.CheckOut("ghost", "alice"); !errors.Is(err, ErrNotInLibrary) {
		t.Fatalf("err = %v", err)
	}
}

func TestAssessment(t *testing.T) {
	l, _ := newLibrary(t)
	co1, _ := l.CheckOut("cs101", "alice") // out at t, in at t+1min
	if err := l.CheckIn(co1); err != nil {
		t.Fatal(err)
	}
	co2, _ := l.CheckOut("mm201", "alice")
	if err := l.CheckIn(co2); err != nil {
		t.Fatal(err)
	}
	if _, err := l.CheckOut("cs101", "alice"); err != nil { // left open
		t.Fatal(err)
	}
	a, err := l.Assess("alice")
	if err != nil {
		t.Fatal(err)
	}
	if a.Checkouts != 3 || a.DistinctDocs != 2 || a.Open != 1 {
		t.Errorf("assessment = %+v", a)
	}
	if a.TotalDuration != 2*time.Minute {
		t.Errorf("duration = %v", a.TotalDuration)
	}
	if a.Score <= 0 {
		t.Errorf("score = %v", a.Score)
	}
	// A student with no activity assesses to zero.
	zero, err := l.Assess("nobody")
	if err != nil {
		t.Fatal(err)
	}
	if zero.Checkouts != 0 || zero.Score != 0 {
		t.Errorf("zero = %+v", zero)
	}
}

func TestLibraryLedgerSeparateFromSCM(t *testing.T) {
	l, s := newLibrary(t)
	// An SCM checkout of the same script does not interfere with
	// library circulation.
	if _, err := s.CheckOut("script", "cs101", "Shih"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.CheckOut("cs101", "alice"); err != nil {
		t.Fatalf("library checkout blocked by SCM checkout: %v", err)
	}
	a, err := l.Assess("Shih")
	if err != nil {
		t.Fatal(err)
	}
	if a.Checkouts != 0 {
		t.Errorf("SCM rows leaked into library assessment: %+v", a)
	}
}

// TestSearchScanSearchDifferentialProperty is the randomized parity
// harness: over randomized catalogs and queries, the indexed Search
// and the linear ScanSearch must agree on the exact hit set AND the
// exact ranking. The content index (internal/search) reuses the same
// harness shape for its own differential test.
func TestSearchScanSearchDifferentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1999))
	vocab := []string{"web", "document", "database", "multimedia", "engineering",
		"drawing", "computer", "virtual", "university", "network"}
	instructors := []string{"Shih", "Ma", "Huang", "Wang"}
	pick := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = vocab[rng.Intn(len(vocab))]
		}
		return out
	}
	for trial := 0; trial < 40; trial++ {
		s, err := docdb.Open(relstore.NewDB(), blob.NewStore())
		if err != nil {
			t.Fatal(err)
		}
		s.Now = func() time.Time { return time.Date(1999, 4, 21, 8, 0, 0, 0, time.UTC) }
		if err := s.CreateDatabase(docdb.Database{Name: "mmu"}); err != nil {
			t.Fatal(err)
		}
		l := New(s)
		l.RegisterInstructor("admin")
		nCourses := 1 + rng.Intn(20)
		for c := 0; c < nCourses; c++ {
			name := fmt.Sprintf("course%03d", c)
			err := s.CreateScript(docdb.Script{
				Name: name, DBName: "mmu",
				Author:      instructors[rng.Intn(len(instructors))],
				Keywords:    pick(1 + rng.Intn(4)),
				Description: strings.Join(pick(1+rng.Intn(5)), " "),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Add(name, fmt.Sprintf("N-%d", rng.Intn(5)), "admin"); err != nil {
				t.Fatal(err)
			}
		}
		for q := 0; q < 25; q++ {
			query := Query{}
			if rng.Intn(4) > 0 {
				query.Keywords = pick(1 + rng.Intn(3))
			}
			if rng.Intn(3) == 0 {
				query.Instructor = instructors[rng.Intn(len(instructors))]
			}
			if rng.Intn(3) == 0 {
				query.Course = []string{"N-1", "N-2", "web", "cour"}[rng.Intn(4)]
			}
			fast := l.Search(query)
			slow := l.ScanSearch(query)
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("trial %d query %+v:\nSearch     = %+v\nScanSearch = %+v",
					trial, query, fast, slow)
			}
		}
	}
}
