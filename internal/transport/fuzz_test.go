package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// frameBytes encodes one envelope the way writeFrame puts it on the
// wire, for building seed inputs.
func frameBytes(t testing.TB, env *envelope) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame feeds the wire decoder arbitrary bytes: hostile input
// must produce an error — truncated headers, lying length prefixes,
// corrupt CRC trailers, corrupt gob bodies — and must never panic or
// allocate the claimed (rather than the delivered) body size.
func FuzzReadFrame(f *testing.F) {
	// Well-formed binary frames.
	f.Add(frameBytes(f, &envelope{ID: 1, Method: "Ping"}))
	f.Add(frameBytes(f, &envelope{ID: 7, Method: "Fabric.Push", Body: bytes.Repeat([]byte{0xAB}, 512)}))
	f.Add(frameBytes(f, &envelope{ID: 9, IsResp: true, Err: "no such method"}))
	f.Add(frameBytes(f, &envelope{ID: 3, Method: "Fabric.Search", TraceID: 0xDEADBEEF, Parent: 42}))
	f.Add(frameBytes(f, &envelope{ID: 4, IsResp: true, More: true, Body: []byte("chunk")}))
	// A pre-overhaul gob frame: the read-side fallback must keep
	// accepting these.
	f.Add(legacyFrameBytes(f, &envelope{ID: 11, Method: "Fabric.Resolve", Body: []byte("legacy"), TraceID: 5}))
	// Hostile shapes.
	f.Add([]byte{})                             // empty stream
	f.Add([]byte{0x00})                         // truncated header
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})       // zero-length body
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})       // length way beyond MaxFrame
	f.Add([]byte{0x7F, 0xFF, 0xFF, 0xFF})       // length just beyond MaxFrame
	f.Add([]byte{0x00, 0x00, 0x00, 0x10, 1, 2}) // claims 16 bytes, delivers 2
	corrupt := frameBytes(f, &envelope{ID: 3, Method: "SQL", Body: []byte("x")})
	corrupt[len(corrupt)-1] ^= 0xFF // breaks the CRC trailer
	f.Add(corrupt)
	badCRC := frameBytes(f, &envelope{ID: 8, Method: "Fabric.Push", Body: bytes.Repeat([]byte{0x33}, 64)})
	badCRC[len(badCRC)/2] ^= 0x01 // flips a body byte under the CRC
	f.Add(badCRC)
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return // rejection is the expected outcome for hostile bytes
		}
		if env == nil {
			t.Fatal("readFrame returned neither an envelope nor an error")
		}
		// A frame the decoder accepted must survive a write/read cycle
		// intact — otherwise the codec silently mangles traffic.
		back, err := readFrame(bytes.NewReader(frameBytes(t, env)))
		if err != nil {
			t.Fatalf("re-reading an accepted frame failed: %v", err)
		}
		if !sameEnvelope(env, back) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", env, back)
		}
	})
}

// FuzzFrameRoundTrip builds envelopes from arbitrary field values —
// trace context and stream chunks included — and asserts the codec is
// lossless for everything writeFrame accepts.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), "Ping", false, "", []byte(nil), uint64(0), uint64(0), false)
	f.Add(uint64(1<<63), "Fabric.Resolve", true, "fabric: no station on the parent route holds an instance", []byte("bundle"), uint64(0), uint64(0), false)
	f.Add(uint64(0), "", false, "", bytes.Repeat([]byte{0}, 4096), uint64(0), uint64(0), true)
	f.Add(uint64(42), "a method name with spaces \x00 and bytes", true, "err", []byte{0xDE, 0xAD}, uint64(7), uint64(3), false)
	f.Add(uint64(5), "Fabric.Search", false, "", []byte("q"), uint64(1<<62), uint64(1<<61), true)
	f.Fuzz(func(t *testing.T, id uint64, method string, isResp bool, errStr string, body []byte, traceID, parent uint64, more bool) {
		in := &envelope{ID: id, Method: method, IsResp: isResp, Err: errStr, Body: body,
			TraceID: traceID, Parent: parent, More: more}
		var buf bytes.Buffer
		if err := writeFrame(&buf, in); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		// The length prefix must match the payload exactly.
		if n := binary.BigEndian.Uint32(buf.Bytes()[:4]); int(n) != buf.Len()-4 {
			t.Fatalf("header claims %d bytes, frame carries %d", n, buf.Len()-4)
		}
		out, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if !sameEnvelope(in, out) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", in, out)
		}
		// A truncated frame must error, never hang or panic.
		if buf2 := frameBytes(t, in); len(buf2) > 4 {
			if _, err := readFrame(bytes.NewReader(buf2[:len(buf2)-1])); err == nil {
				t.Fatal("truncated frame accepted")
			}
			if _, err := readFrame(io.LimitReader(bytes.NewReader(buf2), 4)); err == nil {
				t.Fatal("header-only frame accepted")
			}
		}
	})
}
