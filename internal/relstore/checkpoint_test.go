package relstore

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// newDurableCourseDB opens a fresh durable database in dir with the
// course schema installed (the DDL lands in the generation-0 tail).
func newDurableCourseDB(t testing.TB, dir string) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.OpenDurable(dir); err != nil {
		t.Fatal(err)
	}
	s, i := courseSchemas()
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(i); err != nil {
		t.Fatal(err)
	}
	return db
}

func insertScripts(t testing.TB, db *DB, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := db.Insert("scripts", Row{"script_name": fmt.Sprintf("s%05d", i), "version": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func countScripts(t testing.TB, db *DB) int {
	t.Helper()
	n, err := db.Count("scripts")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// walSeqs parses the Seq values of every record in a WAL file, in
// order.
func walSeqs(t *testing.T, path string) []uint64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var seqs []uint64
	br := bufio.NewReader(f)
	for {
		line, done, err := readWalLine(br)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		seqs = append(seqs, line.Seq)
	}
	return seqs
}

func TestCheckpointRestartReplaysOnlyTail(t *testing.T) {
	dir := t.TempDir()
	db := newDurableCourseDB(t, dir)
	insertScripts(t, db, 0, 50)
	info, err := db.Checkpoint("")
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 1 {
		t.Fatalf("first checkpoint generation = %d", info.Gen)
	}
	const tailWrites = 7
	insertScripts(t, db, 50, tailWrites)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	db2 := NewDB()
	rec, err := db2.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The whole point of the checkpoint: restart applies exactly the
	// post-checkpoint tail, not the 50-row history before it.
	if rec.Applied != tailWrites {
		t.Errorf("restart applied %d transactions, want the %d tail writes", rec.Applied, tailWrites)
	}
	if rec.Gen != 1 {
		t.Errorf("restart loaded generation %d, want 1", rec.Gen)
	}
	if got := countScripts(t, db2); got != 57 {
		t.Errorf("restored rows = %d, want 57", got)
	}
	// FK enforcement and further checkpoints work on the recovered DB.
	if err := db2.Insert("impls", Row{"starting_url": "u", "script_name": "s00001"}); err != nil {
		t.Fatal(err)
	}
	info2, err := db2.Checkpoint("")
	if err != nil {
		t.Fatal(err)
	}
	if info2.Gen != 2 {
		t.Errorf("second checkpoint generation = %d, want 2", info2.Gen)
	}
	db2.CloseWAL()
}

func TestCheckpointPrunesOldGenerations(t *testing.T) {
	dir := t.TempDir()
	db := newDurableCourseDB(t, dir)
	insertScripts(t, db, 0, 10)
	if _, err := db.Checkpoint(""); err != nil {
		t.Fatal(err)
	}
	insertScripts(t, db, 10, 10)
	if _, err := db.Checkpoint(""); err != nil {
		t.Fatal(err)
	}
	db.CloseWAL()
	snaps, tails, err := scanGenerations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0] != 2 {
		t.Errorf("snapshots after prune = %v, want [2]", snaps)
	}
	if len(tails) != 1 || tails[0] != 2 {
		t.Errorf("tails after prune = %v, want [2]", tails)
	}
}

// TestKillMidCheckpointKeepsOldGeneration models a crash between the
// WAL rotation and the snapshot rename: the fresh (empty) tail exists,
// the snapshot survives only as a temp file, and the previous
// generation is intact. Recovery must land on the exact pre-kill
// state.
func TestKillMidCheckpointKeepsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	db := newDurableCourseDB(t, dir)
	insertScripts(t, db, 0, 20)
	if _, err := db.Checkpoint(""); err != nil {
		t.Fatal(err)
	}
	insertScripts(t, db, 20, 5)
	db.CloseWAL()

	// The crashed second checkpoint: rotated tail present and empty,
	// snapshot stranded as a temp file, old generation untouched.
	if err := os.WriteFile(filepath.Join(dir, walFileName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapFileName(2)+".tmp-123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := NewDB()
	rec, err := db2.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Gen != 1 || rec.Applied != 5 {
		t.Errorf("recovery = %+v, want gen 1 with the 5 tail writes", rec)
	}
	if got := countScripts(t, db2); got != 25 {
		t.Errorf("restored rows = %d, want 25", got)
	}
	// The stranded temp is cleared, and the next checkpoint skips past
	// the burnt generation number.
	if _, err := os.Stat(filepath.Join(dir, snapFileName(2)+".tmp-123")); !os.IsNotExist(err) {
		t.Error("recovery kept the stranded checkpoint temp file")
	}
	info, err := db2.Checkpoint("")
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 3 {
		t.Errorf("checkpoint after crashed generation 2 got gen %d, want 3", info.Gen)
	}
	db2.CloseWAL()
}

// TestRecoverFallsBackPastCorruptSnapshot hand-crafts a directory
// whose newest snapshot is garbage while the older generation and the
// full tail chain survive: recovery must fall back and chain-replay
// every tail at or above the loaded generation.
func TestRecoverFallsBackPastCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	db := newDurableCourseDB(t, dir)
	insertScripts(t, db, 0, 10)
	if _, err := db.Checkpoint(""); err != nil { // snap-1, tail wal-1
		t.Fatal(err)
	}
	insertScripts(t, db, 10, 4) // into wal-1
	db.CloseWAL()
	// A corrupt newer snapshot beside an empty newer tail.
	if err := os.WriteFile(filepath.Join(dir, snapFileName(2)), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFileName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := NewDB()
	rec, err := db2.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Gen != 1 {
		t.Errorf("recovery generation = %d, want fallback to 1", rec.Gen)
	}
	if got := countScripts(t, db2); got != 14 {
		t.Errorf("restored rows = %d, want 14", got)
	}
	db2.CloseWAL()
}

func TestRecoverFailsWhenNoSnapshotLoads(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapFileName(1)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	if _, err := db.OpenDurable(dir); err == nil {
		t.Fatal("recovery over nothing but a corrupt snapshot succeeded")
	}
}

// TestCheckpointSeqContinuity: the WAL sequence runs monotonically
// across rotations and restarts — never restarting at 1, never
// duplicating within a file.
func TestCheckpointSeqContinuity(t *testing.T) {
	dir := t.TempDir()
	db := newDurableCourseDB(t, dir)
	insertScripts(t, db, 0, 3) // seqs 3,4,5 after the two DDL records
	if _, err := db.Checkpoint(""); err != nil {
		t.Fatal(err)
	}
	insertScripts(t, db, 3, 2)
	before := db.LastSeq()
	db.CloseWAL()

	db2 := NewDB()
	if _, err := db2.OpenDurable(dir); err != nil {
		t.Fatal(err)
	}
	insertScripts(t, db2, 5, 2)
	db2.CloseWAL()

	seqs := walSeqs(t, filepath.Join(dir, walFileName(1)))
	if len(seqs) != 4 {
		t.Fatalf("tail holds %d records, want 4 (2 pre-restart + 2 post)", len(seqs))
	}
	last := seqs[0]
	if last <= 3 {
		t.Errorf("first post-checkpoint seq = %d, want continuation past the snapshot's high-water", last)
	}
	for _, s := range seqs[1:] {
		if s <= last {
			t.Fatalf("WAL seqs not strictly increasing across restart: %v", seqs)
		}
		last = s
	}
	if seqs[2] <= before {
		t.Errorf("restarted DB appended seq %d, want > pre-restart high-water %d", seqs[2], before)
	}
}

// TestCheckpointParityWithFullReplay: recovering from checkpoint plus
// tail produces exactly the state a full-history replay produces.
func TestCheckpointParityWithFullReplay(t *testing.T) {
	full := filepath.Join(t.TempDir(), "full.wal")
	ref := NewDB()
	if err := ref.OpenWAL(full); err != nil {
		t.Fatal(err)
	}
	s, i := courseSchemas()
	if err := ref.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := ref.CreateTable(i); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	db := newDurableCourseDB(t, dir)
	apply := func(op func(d *DB) error) {
		if err := op(ref); err != nil {
			t.Fatal(err)
		}
		if err := op(db); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		i := i
		apply(func(d *DB) error {
			return d.Insert("scripts", Row{"script_name": fmt.Sprintf("s%03d", i), "version": int64(i)})
		})
		if i%7 == 0 {
			apply(func(d *DB) error {
				return d.Update("scripts", fmt.Sprintf("s%03d", i), Row{"version": int64(i * 10)})
			})
		}
		if i == 15 || i == 30 {
			if _, err := db.Checkpoint(""); err != nil {
				t.Fatal(err)
			}
		}
	}
	apply(func(d *DB) error { return d.Delete("scripts", "s002") })
	ref.CloseWAL()
	db.CloseWAL()

	fromCkpt := NewDB()
	if _, err := fromCkpt.OpenDurable(dir); err != nil {
		t.Fatal(err)
	}
	fromFull := NewDB()
	f, err := os.Open(full)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := fromFull.ReplayWAL(f); err != nil {
		t.Fatal(err)
	}
	a, err := fromCkpt.Select(Query{Table: "scripts"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fromFull.Select(Query{Table: "scripts"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: checkpoint+tail %d, full replay %d", len(a), len(b))
	}
	for r := range a {
		for _, col := range []string{"script_name", "version"} {
			if compareValues(a[r][col], b[r][col]) != 0 {
				t.Fatalf("row %d %s: checkpoint+tail %v, full replay %v", r, col, a[r][col], b[r][col])
			}
		}
	}
	fromCkpt.CloseWAL()
}

func TestCheckpointWithoutDirFails(t *testing.T) {
	db := NewDB()
	if _, err := db.Checkpoint(""); err == nil {
		t.Fatal("checkpoint with no attached durability directory succeeded")
	}
}

func TestOpenDurableRefusesAttachedWAL(t *testing.T) {
	db := NewDB()
	if err := db.OpenWAL(filepath.Join(t.TempDir(), "w.wal")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.OpenDurable(t.TempDir()); !errors.Is(err, ErrWALOpen) {
		t.Fatalf("err = %v, want ErrWALOpen", err)
	}
	db.CloseWAL()
}

// BenchmarkRestart compares the two restart paths over the same ≥10k
// transaction history: replaying the full WAL versus loading the
// latest checkpoint and replaying only the tail. The checkpoint path's
// cost is bounded by the tail, so it must win by a wide margin.
func BenchmarkRestart(b *testing.B) {
	const history = 10000
	const tail = 100

	fullPath := filepath.Join(b.TempDir(), "full.wal")
	{
		db := NewDB()
		if err := db.OpenWAL(fullPath); err != nil {
			b.Fatal(err)
		}
		s, i := courseSchemas()
		if err := db.CreateTable(s); err != nil {
			b.Fatal(err)
		}
		if err := db.CreateTable(i); err != nil {
			b.Fatal(err)
		}
		insertScripts(b, db, 0, history)
		if err := db.CloseWAL(); err != nil {
			b.Fatal(err)
		}
	}

	ckptDir := b.TempDir()
	{
		db := newDurableCourseDB(b, ckptDir)
		insertScripts(b, db, 0, history-tail)
		if _, err := db.Checkpoint(""); err != nil {
			b.Fatal(err)
		}
		insertScripts(b, db, history-tail, tail)
		if err := db.CloseWAL(); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("wal-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := NewDB()
			f, err := os.Open(fullPath)
			if err != nil {
				b.Fatal(err)
			}
			applied, _, err := db.ReplayWAL(f)
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			if applied < history {
				b.Fatalf("replayed %d transactions, want >= %d", applied, history)
			}
		}
	})

	b.Run("checkpoint-tail", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := NewDB()
			rec, err := db.OpenDurable(ckptDir)
			if err != nil {
				b.Fatal(err)
			}
			if rec.Applied != tail {
				b.Fatalf("restart applied %d transactions, want only the %d tail writes", rec.Applied, tail)
			}
			db.CloseWAL()
		}
	})
}
