// Lecturecast demonstrates the course distribution mechanism of section
// 4 of the paper on a 31-station deployment: the m-ary pre-broadcast at
// several degrees, on-demand pulls with watermark replication, and the
// instance-to-reference migration after the lecture.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/workload"
)

func broadcastAt(m int) (time.Duration, int64) {
	c, err := cluster.New(cluster.Config{
		Stations:  31,
		M:         m,
		UplinkBps: 1.25e6, // 10 Mb/s
		Latency:   5 * time.Millisecond,
		Watermark: 1,
		Mode:      netsim.Sequential,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.DefaultSpec(1)
	spec.Pages = 16
	spec.MediaScaleDown = 1024
	if _, _, err := c.AuthorCourse(spec); err != nil {
		log.Fatal(err)
	}
	if err := c.BroadcastReferences(spec.URL); err != nil {
		log.Fatal(err)
	}
	times, size, err := c.PreBroadcast(spec.URL)
	if err != nil {
		log.Fatal(err)
	}
	var slowest time.Duration
	for _, t := range times {
		if t > slowest {
			slowest = t
		}
	}
	return slowest, size
}

func main() {
	fmt.Println("pre-broadcast of one lecture to 31 stations, 10 Mb/s uplinks:")
	for _, m := range []int{1, 2, 3, 4, 8, 30} {
		slowest, size := broadcastAt(m)
		fmt.Printf("  m = %2d: %.2f MiB everywhere after %v\n",
			m, float64(size)/(1<<20), slowest.Round(time.Millisecond))
	}

	// Watermark replication: station 10 reviews the same lecture three
	// times; the second fetch (watermark 1) replicates it locally.
	c, err := cluster.New(cluster.Config{
		Stations:  31,
		M:         3,
		UplinkBps: 1.25e6,
		Latency:   5 * time.Millisecond,
		Watermark: 1,
		Mode:      netsim.Sequential,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.DefaultSpec(2)
	spec.Pages = 16
	spec.MediaScaleDown = 1024
	if _, _, err := c.AuthorCourse(spec); err != nil {
		log.Fatal(err)
	}
	if err := c.BroadcastReferences(spec.URL); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstation 10 reviews the lecture repeatedly (watermark = 1):")
	for i := 1; i <= 3; i++ {
		res, err := c.FetchOnDemand(10, spec.URL)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.Local:
			fmt.Printf("  review %d: served locally (replica)\n", i)
		case res.Replicated:
			fmt.Printf("  review %d: pulled from station %d in %v; watermark crossed, replica created\n",
				i, res.ServedBy, res.Latency.Round(time.Millisecond))
		default:
			fmt.Printf("  review %d: pulled from station %d in %v\n",
				i, res.ServedBy, res.Latency.Round(time.Millisecond))
		}
	}

	// A descendant of station 10 is now served by the nearer replica.
	child := 10*3 - 1 // first child of 10 under m=3: 3*(10-1)+1+1 = 29
	res, err := c.FetchOnDemand(child, spec.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstation %d (child of 10) pulls the lecture: served by station %d\n", child, res.ServedBy)

	freed, err := c.EndLecture(spec.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlecture over: %.2f MiB of student buffers migrated back to references\n",
		float64(freed)/(1<<20))
}
