package search

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! pipelined-broadcast 42x")
	want := []string{"hello", "world", "pipelined", "broadcast", "42x"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if toks := Tokenize("  ...  "); toks != nil {
		t.Errorf("Tokenize(punctuation) = %v", toks)
	}
}

func TestSearchRanksMatchedTermsOverFrequency(t *testing.T) {
	ix := NewIndex()
	ix.IndexHTML("u1", "a.html", []byte("<html><body>alpha alpha alpha alpha</body></html>"))
	ix.IndexHTML("u1", "b.html", []byte("<html><body>alpha beta</body></html>"))
	hits := ix.Search(Query{Terms: []string{"alpha", "beta"}})
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	// b.html matches both terms; the four-fold alpha in a.html must not
	// outrank it.
	if hits[0].Path != "b.html" || hits[1].Path != "a.html" {
		t.Errorf("ranking = %s, %s", hits[0].Path, hits[1].Path)
	}
	if hits[0].Score <= hits[1].Score {
		t.Errorf("scores = %d, %d", hits[0].Score, hits[1].Score)
	}
}

func TestSearchIgnoresMarkupAndScripts(t *testing.T) {
	ix := NewIndex()
	page := []byte(`<html><head><title>Lecture</title><script>var hiddenword = 1;</script></head>` +
		`<body><p>visibleword</p></body></html>`)
	ix.IndexHTML("u1", "p.html", page)
	if hits := ix.Search(Query{Terms: []string{"visibleword"}}); len(hits) != 1 {
		t.Errorf("visible text not indexed: %v", hits)
	}
	if hits := ix.Search(Query{Terms: []string{"hiddenword"}}); len(hits) != 0 {
		t.Errorf("script body leaked into the index: %v", hits)
	}
	if hits := ix.Search(Query{Terms: []string{"lecture"}}); len(hits) != 1 {
		t.Errorf("title not indexed: %v", hits)
	}
}

func TestPhraseSearch(t *testing.T) {
	ix := NewIndex()
	ix.IndexHTML("u1", "a.html", []byte("<body>store and forward relaying</body>"))
	ix.IndexHTML("u1", "b.html", []byte("<body>forward the store</body>"))
	loose := ix.Search(Query{Terms: []string{"store", "forward"}})
	if len(loose) != 2 {
		t.Fatalf("loose hits = %v", loose)
	}
	phrase := ix.Search(Query{Terms: []string{"store", "and", "forward"}, Phrase: true})
	if len(phrase) != 1 || phrase[0].Path != "a.html" {
		t.Errorf("phrase hits = %v", phrase)
	}
}

func TestSnippetSurroundsFirstMatch(t *testing.T) {
	ix := NewIndex()
	ix.IndexHTML("u1", "a.html", []byte("<body>one two three four five six TARGET eight nine ten eleven twelve thirteen</body>"))
	hits := ix.Search(Query{Terms: []string{"target"}})
	if len(hits) != 1 {
		t.Fatal(hits)
	}
	want := "two three four five six target eight nine ten eleven twelve"
	if hits[0].Snippet != want {
		t.Errorf("snippet = %q, want %q", hits[0].Snippet, want)
	}
}

func TestProgramAndScriptDocs(t *testing.T) {
	ix := NewIndex()
	ix.IndexProgram("u1", "quiz.js", "javascript", []byte("function gradeQuiz() { return score; }"))
	ix.IndexScript("cs101", "Introduction to Computer Engineering", "Shih", []string{"computer", "engineering"})
	if hits := ix.Search(Query{Terms: []string{"gradequiz"}}); len(hits) != 1 || hits[0].Kind != KindProgram {
		t.Errorf("program hits = %v", hits)
	}
	if hits := ix.Search(Query{Terms: []string{"javascript"}}); len(hits) != 1 {
		t.Errorf("language token missing: %v", hits)
	}
	hits := ix.Search(Query{Terms: []string{"engineering"}})
	if len(hits) != 1 || hits[0].Kind != KindScript || hits[0].Path != "cs101" {
		t.Errorf("script hits = %v", hits)
	}
}

func TestReindexReplacesOldTokens(t *testing.T) {
	ix := NewIndex()
	ix.IndexHTML("u1", "a.html", []byte("<body>oldword</body>"))
	ix.IndexHTML("u1", "a.html", []byte("<body>newword</body>"))
	if hits := ix.Search(Query{Terms: []string{"oldword"}}); len(hits) != 0 {
		t.Errorf("stale tokens survived re-index: %v", hits)
	}
	if hits := ix.Search(Query{Terms: []string{"newword"}}); len(hits) != 1 {
		t.Errorf("re-indexed tokens missing: %v", hits)
	}
	if ix.Docs() != 1 {
		t.Errorf("docs = %d", ix.Docs())
	}
}

func TestRemoveContentKeepsScriptMetadata(t *testing.T) {
	ix := NewIndex()
	ix.IndexScript("cs101", "Intro", "Shih", nil)
	ix.IndexHTML("u1", "a.html", []byte("<body>bodyword</body>"))
	ix.IndexProgram("u1", "x.js", "", []byte("progword"))
	ix.RemoveContent("u1")
	if hits := ix.Search(Query{Terms: []string{"bodyword"}}); len(hits) != 0 {
		t.Errorf("html survived RemoveContent: %v", hits)
	}
	if hits := ix.Search(Query{Terms: []string{"progword"}}); len(hits) != 0 {
		t.Errorf("program survived RemoveContent: %v", hits)
	}
	if hits := ix.Search(Query{Terms: []string{"intro"}}); len(hits) != 1 {
		t.Errorf("script metadata lost with the content: %v", hits)
	}
	ix.RemoveScript("cs101")
	if hits := ix.Search(Query{Terms: []string{"intro"}}); len(hits) != 0 {
		t.Errorf("script survived RemoveScript: %v", hits)
	}
	if ix.Docs() != 0 {
		t.Errorf("docs = %d", ix.Docs())
	}
}

func TestRankTrimsToTopK(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 30; i++ {
		ix.IndexHTML("u1", fmt.Sprintf("p%02d.html", i), []byte("<body>common</body>"))
	}
	if hits := ix.Search(Query{Terms: []string{"common"}, TopK: 7}); len(hits) != 7 {
		t.Errorf("topK=7 returned %d hits", len(hits))
	}
	if hits := ix.Search(Query{Terms: []string{"common"}}); len(hits) != DefaultTopK {
		t.Errorf("default topK returned %d hits", len(hits))
	}
}

func TestMergeDedupsReplicasKeepingLowestStation(t *testing.T) {
	a := []Hit{{Key: "html:u#p", Score: 10, Station: 5}}
	b := []Hit{{Key: "html:u#p", Score: 10, Station: 2}, {Key: "html:u#q", Score: 4, Station: 7}}
	merged := Merge(10, a, b)
	if len(merged) != 2 {
		t.Fatalf("merged = %v", merged)
	}
	if merged[0].Key != "html:u#p" || merged[0].Station != 2 {
		t.Errorf("replica dedup = %+v", merged[0])
	}
	if merged[1].Key != "html:u#q" {
		t.Errorf("merged[1] = %+v", merged[1])
	}
}

// TestScanSearchAgreesWithIndexed is the content-layer differential
// property test: over randomized corpora and queries (including
// phrases), the inverted index and the linear scan must produce
// bit-identical ranked results.
func TestScanSearchAgreesWithIndexed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%02d", i)
	}
	for trial := 0; trial < 50; trial++ {
		ix := NewIndex()
		nDocs := 1 + rng.Intn(40)
		for d := 0; d < nDocs; d++ {
			nTok := 1 + rng.Intn(30)
			text := ""
			for w := 0; w < nTok; w++ {
				text += vocab[rng.Intn(len(vocab))] + " "
			}
			switch d % 3 {
			case 0:
				ix.IndexHTML(fmt.Sprintf("u%d", d%4), fmt.Sprintf("p%d.html", d), []byte("<body>"+text+"</body>"))
			case 1:
				ix.IndexProgram(fmt.Sprintf("u%d", d%4), fmt.Sprintf("p%d.js", d), "js", []byte(text))
			default:
				ix.IndexScript(fmt.Sprintf("s%d", d), text, "author", nil)
			}
		}
		for q := 0; q < 20; q++ {
			nTerms := 1 + rng.Intn(3)
			terms := make([]string, nTerms)
			for i := range terms {
				terms[i] = vocab[rng.Intn(len(vocab))]
			}
			query := Query{Terms: terms, Phrase: rng.Intn(3) == 0, TopK: 1 + rng.Intn(50)}
			fast := ix.Search(query)
			slow := ix.ScanSearch(query)
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("trial %d query %+v:\nindex = %v\nscan  = %v", trial, query, fast, slow)
			}
		}
	}
}

// TestConcurrentIndexAndSearch exercises the index mutex under the
// race detector: writers re-indexing while readers query.
func TestConcurrentIndexAndSearch(t *testing.T) {
	ix := NewIndex()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ix.IndexHTML(fmt.Sprintf("u%d", w), fmt.Sprintf("p%d.html", i%10),
					[]byte(fmt.Sprintf("<body>common token%d round%d</body>", w, i)))
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ix.Search(Query{Terms: []string{"common"}})
			}
		}()
	}
	wg.Wait()
	if hits := ix.Search(Query{Terms: []string{"common"}, TopK: 100}); len(hits) != 40 {
		t.Errorf("final corpus = %d docs in hits, want 40", len(hits))
	}
}
