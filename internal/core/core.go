// Package core is the integrated Web document database of Shih, Ma &
// Huang (ICPP 1999): the public facade a virtual-university deployment
// programs against. It wires together the substrates —
//
//   - the relational engine and SQL front end (relstore, minisql)
//   - the BLOB layer with content sharing (blob)
//   - the document layer with scripts, implementations, test records,
//     bug reports, annotations and SCM (docdb, schema)
//   - the referential integrity diagram with alert propagation
//     (integrity)
//   - the hierarchical object-locking table for collaborative editing
//     (locking)
//   - the m-ary tree distribution layer with pre-broadcast, on-demand
//     pull, watermark replication and instance-to-reference migration
//     (mtree, netsim, cluster)
//   - the Web document virtual library with search, check-in/out and
//     assessment (library)
//   - the white-box/black-box course testing subsystem (webtest)
//   - the annotation model (annotate)
//
// into one University value offering the workflows the paper describes:
// author a course, publish it to the library, distribute it to student
// stations before a lecture, collaborate under locks with integrity
// alerts, test it, and assess students from their library activity.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/annotate"
	"repro/internal/cluster"
	"repro/internal/docdb"
	"repro/internal/integrity"
	"repro/internal/library"
	"repro/internal/locking"
	"repro/internal/netsim"
	"repro/internal/schema"
	"repro/internal/webtest"
	"repro/internal/workload"
)

// Config sizes a University deployment.
type Config struct {
	// Stations is the number of workstations including the instructor
	// station (station 1).
	Stations int
	// M is the distribution tree degree; 0 picks a sensible default.
	M int
	// Watermark is the replication watermark frequency (see cluster).
	Watermark int
	// UplinkBps and Latency describe the modeled network.
	UplinkBps float64
	Latency   time.Duration
}

// DefaultConfig models a department LAN of 16 stations at 10 Mb/s.
func DefaultConfig() Config {
	return Config{
		Stations:  16,
		M:         3,
		Watermark: 1,
		UplinkBps: 1.25e6,
		Latency:   5 * time.Millisecond,
	}
}

// University is the assembled system.
type University struct {
	Cluster *cluster.Cluster
	Library *library.Library
	Locks   *locking.Manager
	Diagram *integrity.Diagram
	Alerts  *integrity.Queue

	instructor *docdb.Store // station 1's document store
}

// NewUniversity builds the system.
func NewUniversity(cfg Config) (*University, error) {
	if cfg.Stations == 0 {
		cfg = DefaultConfig()
	}
	if cfg.M == 0 {
		cfg.M = 3
	}
	cl, err := cluster.New(cluster.Config{
		Stations:  cfg.Stations,
		M:         cfg.M,
		UplinkBps: cfg.UplinkBps,
		Latency:   cfg.Latency,
		Watermark: cfg.Watermark,
		Mode:      netsim.Sequential,
	})
	if err != nil {
		return nil, err
	}
	root, err := cl.Station(1)
	if err != nil {
		return nil, err
	}
	return &University{
		Cluster:    cl,
		Library:    library.New(root.Store),
		Locks:      locking.NewManager(),
		Diagram:    integrity.Default(),
		Alerts:     integrity.NewQueue(),
		instructor: root.Store,
	}, nil
}

// InstructorStore exposes the instructor station's document database.
func (u *University) InstructorStore() *docdb.Store { return u.instructor }

// PublishCourse authors a synthetic course on the instructor station,
// mirrors references to every student station, and catalogs it in the
// virtual library under the course number.
func (u *University) PublishCourse(spec workload.CourseSpec, courseNumber, instructor string) (workload.Course, error) {
	u.Library.RegisterInstructor(instructor)
	course, _, err := u.Cluster.AuthorCourse(spec)
	if err != nil {
		return workload.Course{}, err
	}
	if err := u.Cluster.BroadcastReferences(spec.URL); err != nil {
		return workload.Course{}, err
	}
	if err := u.Library.Add(spec.ScriptName, courseNumber, instructor); err != nil {
		return workload.Course{}, err
	}
	return course, nil
}

// Distribute pre-broadcasts the lecture bundle to every station and
// returns the slowest station's completion time and the bundle size.
func (u *University) Distribute(url string) (time.Duration, int64, error) {
	times, size, err := u.Cluster.PreBroadcast(url)
	if err != nil {
		return 0, 0, err
	}
	var max time.Duration
	for _, t := range times {
		if t > max {
			max = t
		}
	}
	return max, size, nil
}

// EndLecture migrates student-station copies back to references,
// returning the reclaimed buffer bytes.
func (u *University) EndLecture(url string) (int64, error) {
	return u.Cluster.EndLecture(url)
}

// EditScript performs one collaborative edit of a script on the
// instructor station: write-lock the script subtree, check it out,
// apply fn, check it in, release the lock, then propagate referential
// integrity alerts to the editing instructor's queue. It returns the
// number of alerts raised.
func (u *University) EditScript(ctx context.Context, instructor, scriptName string, fn func(*docdb.Store) error) (int, error) {
	sc, err := u.instructor.Script(scriptName)
	if err != nil {
		return 0, err
	}
	path := locking.Path{sc.DBName, scriptName}
	lock, err := u.Locks.Acquire(ctx, instructor, path, locking.Write)
	if err != nil {
		return 0, err
	}
	defer lock.Release()

	co, err := u.instructor.CheckOut(schema.KindScript, scriptName, instructor)
	if err != nil {
		return 0, err
	}
	if err := fn(u.instructor); err != nil {
		return 0, err
	}
	if err := u.instructor.CheckIn(co, "edit by "+instructor); err != nil {
		return 0, err
	}
	alerts, err := u.Diagram.Propagate(integrity.DocResolver{Store: u.instructor}, schema.KindScript, scriptName)
	if err != nil {
		return 0, err
	}
	u.Alerts.Push(instructor, alerts)
	return len(alerts), nil
}

// Annotate stores one instructor's annotation document over an
// implementation, validating and encoding it.
func (u *University) Annotate(instructor, url string, doc *annotate.Document) error {
	if err := doc.Validate(); err != nil {
		return err
	}
	impl, err := u.instructor.Implementation(url)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("ann-%s-%s", impl.ScriptName, instructor)
	return u.instructor.SaveAnnotation(docdb.Annotation{
		Name:        name,
		ScriptName:  impl.ScriptName,
		StartingURL: url,
		Author:      instructor,
		File:        doc.Encode(),
	})
}

// Annotations decodes every annotation stored over an implementation.
func (u *University) Annotations(url string) ([]*annotate.Document, error) {
	rows, err := u.instructor.Annotations(url)
	if err != nil {
		return nil, err
	}
	out := make([]*annotate.Document, 0, len(rows))
	for _, a := range rows {
		doc, err := annotate.Decode(a.File)
		if err != nil {
			return nil, fmt.Errorf("annotation %s: %w", a.Name, err)
		}
		out = append(out, doc)
	}
	return out, nil
}

// TestCourse runs the white-box testing subsystem against an
// implementation on the instructor station, persisting the test record
// and any bug report.
func (u *University) TestCourse(url, qaEngineer string, seq int) (testName, bugName string, err error) {
	suite := &webtest.Suite{Store: u.instructor}
	return suite.Report(url, qaEngineer, seq)
}

// Complexity estimates the course complexity of an implementation.
func (u *University) Complexity(url string) (webtest.Complexity, error) {
	suite := &webtest.Suite{Store: u.instructor}
	return suite.Complexity(url)
}

// Search queries the virtual library.
func (u *University) Search(q library.Query) []library.Result {
	return u.Library.Search(q)
}

// StudentCheckOut opens a library checkout for a student.
func (u *University) StudentCheckOut(scriptName, student string) (string, error) {
	return u.Library.CheckOut(scriptName, student)
}

// StudentCheckIn closes a library checkout.
func (u *University) StudentCheckIn(checkoutID string) error {
	return u.Library.CheckIn(checkoutID)
}

// Assess summarizes a student's library activity.
func (u *University) Assess(student string) (library.Assessment, error) {
	return u.Library.Assess(student)
}
