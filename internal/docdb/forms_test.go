package docdb

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blob"

	"repro/internal/relstore"
	"repro/internal/schema"
)

func TestInstanceAndReferenceForms(t *testing.T) {
	s := newStore(t)
	_, url := seedCourse(t, s)
	inst, err := s.NewInstance(url, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Form != schema.FormInstance || inst.Station != 1 || !inst.Persistent {
		t.Errorf("inst = %+v", inst)
	}
	got, err := s.ObjectByURL(url)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != inst.ID {
		t.Errorf("ObjectByURL = %+v", got)
	}
	ref, err := s.MakeReference(url, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Form != schema.FormReference || ref.Origin != 1 {
		t.Errorf("ref = %+v", ref)
	}
	refs, err := s.ObjectsByForm(schema.FormReference)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 {
		t.Errorf("references = %d", len(refs))
	}
}

func TestDeclareClassAndInstantiateSharesBLOBs(t *testing.T) {
	s := newStore(t)
	_, url := seedCourse(t, s)
	inst, err := s.NewInstance(url, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Blobs().Stats()

	class, err := s.DeclareClass(inst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if class.Form != schema.FormClass {
		t.Fatalf("class = %+v", class)
	}
	// The instance now points at its class.
	inst2, _ := s.Object(inst.ID)
	if inst2.ClassID != class.ID {
		t.Errorf("instance class_id = %q, want %q", inst2.ClassID, class.ID)
	}

	newObj, err := s.Instantiate(class.ID, "http://mmu/intro-cs/v2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if newObj.ClassID != class.ID {
		t.Errorf("new instance class = %q", newObj.ClassID)
	}
	// Structure copied: same HTML and program files under the new URL.
	html, err := s.HTMLFiles("http://mmu/intro-cs/v2")
	if err != nil {
		t.Fatal(err)
	}
	if len(html) != 2 {
		t.Errorf("copied html = %d", len(html))
	}
	media, err := s.ImplMedia("http://mmu/intro-cs/v2")
	if err != nil {
		t.Fatal(err)
	}
	if len(media) != 2 {
		t.Errorf("shared media = %d", len(media))
	}
	// No BLOB bytes were duplicated: physical bytes unchanged.
	after := s.Blobs().Stats()
	if after.PhysicalBytes != before.PhysicalBytes {
		t.Errorf("physical bytes grew from %d to %d during Instantiate", before.PhysicalBytes, after.PhysicalBytes)
	}
	if after.LogicalBytes <= before.LogicalBytes {
		t.Errorf("logical bytes should grow with sharing: %d -> %d", before.LogicalBytes, after.LogicalBytes)
	}
}

func TestDeclareClassRequiresInstance(t *testing.T) {
	s := newStore(t)
	_, url := seedCourse(t, s)
	ref, err := s.MakeReference(url, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeclareClass(ref.ID); !errors.Is(err, ErrWrongForm) {
		t.Fatalf("err = %v", err)
	}
}

func TestInstantiateRequiresClass(t *testing.T) {
	s := newStore(t)
	_, url := seedCourse(t, s)
	inst, _ := s.NewInstance(url, 1, true)
	if _, err := s.Instantiate(inst.ID, "http://x", 1); !errors.Is(err, ErrWrongForm) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateComponentCopiesSmallSharesBig(t *testing.T) {
	s := newStore(t)
	_, url := seedCourse(t, s)
	before := s.Blobs().Stats()
	if err := s.DuplicateComponent(url, "http://mmu/copy", "Ma"); err != nil {
		t.Fatal(err)
	}
	// HTML is physically copied (mutating the copy leaves the original).
	if err := s.PutHTML("http://mmu/copy", "index.html", []byte("<html>changed</html>")); err != nil {
		t.Fatal(err)
	}
	orig, _ := s.HTML(url, "index.html")
	if bytes.Equal(orig, []byte("<html>changed</html>")) {
		t.Error("editing the duplicate changed the original HTML")
	}
	// BLOBs are shared, not copied.
	after := s.Blobs().Stats()
	if after.PhysicalBytes != before.PhysicalBytes {
		t.Errorf("duplicate copied BLOB bytes: %d -> %d", before.PhysicalBytes, after.PhysicalBytes)
	}
}

func TestMigrateToReferenceFreesContent(t *testing.T) {
	s := newStore(t)
	_, url := seedCourse(t, s)
	inst, err := s.NewInstance(url, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	resident, err := s.ResidentBytes(url)
	if err != nil {
		t.Fatal(err)
	}
	if resident == 0 {
		t.Fatal("expected resident content")
	}
	if err := s.MigrateToReference(inst.ID, 1); err != nil {
		t.Fatal(err)
	}
	obj, _ := s.Object(inst.ID)
	if obj.Form != schema.FormReference || obj.Origin != 1 {
		t.Errorf("after migrate = %+v", obj)
	}
	resident, _ = s.ResidentBytes(url)
	if resident != 0 {
		t.Errorf("resident after migrate = %d, want 0", resident)
	}
	if st := s.Blobs().Stats(); st.PhysicalBytes != 0 {
		t.Errorf("blob bytes after migrate = %d, want 0 (buffer space reclaimed)", st.PhysicalBytes)
	}
	// The implementation row survives (references still resolve).
	if _, err := s.Implementation(url); err != nil {
		t.Errorf("implementation row lost: %v", err)
	}
}

func TestMigratePersistentRefused(t *testing.T) {
	s := newStore(t)
	_, url := seedCourse(t, s)
	inst, _ := s.NewInstance(url, 1, true)
	if err := s.MigrateToReference(inst.ID, 1); !errors.Is(err, ErrWrongForm) {
		t.Fatalf("err = %v", err)
	}
}

func TestExportImportBundleRoundTrip(t *testing.T) {
	src := newStore(t)
	_, url := seedCourse(t, src)
	if _, err := src.NewInstance(url, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := src.SaveAnnotation(Annotation{Name: "a1", ScriptName: "intro-cs", StartingURL: url, Author: "Shih", File: []byte("enc")}); err != nil {
		t.Fatal(err)
	}
	b, err := src.ExportBundle(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.HTML) != 2 || len(b.Programs) != 1 || len(b.Media) != 2 || len(b.Annotations) != 1 {
		t.Fatalf("bundle = %d html, %d prog, %d media, %d ann",
			len(b.HTML), len(b.Programs), len(b.Media), len(b.Annotations))
	}
	if b.TotalBytes() <= 0 {
		t.Error("bundle size must be positive")
	}

	dst := newStore(t)
	obj, err := dst.ImportBundle(b, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Form != schema.FormInstance || obj.Station != 7 || obj.Persistent {
		t.Errorf("imported obj = %+v", obj)
	}
	html, err := dst.HTML(url, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	srcHTML, _ := src.HTML(url, "index.html")
	if !bytes.Equal(html, srcHTML) {
		t.Error("HTML content differs after import")
	}
	media, _ := dst.ImplMedia(url)
	if len(media) != 2 {
		t.Errorf("imported media = %d", len(media))
	}
	anns, _ := dst.Annotations(url)
	if len(anns) != 1 {
		t.Errorf("imported annotations = %d", len(anns))
	}
}

func TestImportBundleIdempotent(t *testing.T) {
	src := newStore(t)
	_, url := seedCourse(t, src)
	b, err := src.ExportBundle(url)
	if err != nil {
		t.Fatal(err)
	}
	dst := newStore(t)
	if _, err := dst.ImportBundle(b, 2, false); err != nil {
		t.Fatal(err)
	}
	st1 := dst.Blobs().Stats()
	if _, err := dst.ImportBundle(b, 2, false); err != nil {
		t.Fatal(err)
	}
	st2 := dst.Blobs().Stats()
	if st1 != st2 {
		t.Errorf("double import changed accounting: %+v -> %+v", st1, st2)
	}
	media, _ := dst.ImplMedia(url)
	if len(media) != 2 {
		t.Errorf("media rows after double import = %d, want 2", len(media))
	}
}

func TestImportUpgradesReferenceToInstance(t *testing.T) {
	src := newStore(t)
	_, url := seedCourse(t, src)
	b, err := src.ExportBundle(url)
	if err != nil {
		t.Fatal(err)
	}
	dst := newStore(t)
	// The station first learns about the document via a broadcast
	// reference; it needs the impl row for the FK, which ImportBundle
	// would create — simulate the reference-only state.
	if err := dst.CreateDatabase(Database{Name: "mmu"}); err != nil {
		t.Fatal(err)
	}
	if err := dst.CreateScript(Script{Name: "intro-cs", DBName: "mmu"}); err != nil {
		t.Fatal(err)
	}
	if err := dst.AddImplementation(Implementation{StartingURL: url, ScriptName: "intro-cs"}); err != nil {
		t.Fatal(err)
	}
	ref, err := dst.MakeReference(url, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dst.ImportBundle(b, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if obj.ID != ref.ID {
		t.Errorf("import created a new object %s instead of upgrading %s", obj.ID, ref.ID)
	}
	if obj.Form != schema.FormInstance {
		t.Errorf("form = %s", obj.Form)
	}
}

func TestExportBundleMissingImpl(t *testing.T) {
	s := newStore(t)
	if _, err := s.ExportBundle("http://nope"); !errors.Is(err, relstore.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestResidentBytesCountsAllLayers(t *testing.T) {
	s := newStore(t)
	_, url := seedCourse(t, s)
	got, err := s.ResidentBytes(url)
	if err != nil {
		t.Fatal(err)
	}
	// 2 html files + 1 program + 2 media (1000 + 400 bytes).
	want := int64(len("<html><a href=page2.html>next</a></html>")+len("<html>two</html>")+len("class Quiz {}")) + 1000 + 400
	if got != want {
		t.Errorf("resident = %d, want %d", got, want)
	}
}

func TestMigrateNonInstanceRefused(t *testing.T) {
	s := newStore(t)
	_, url := seedCourse(t, s)
	ref, _ := s.MakeReference(url, 2, 1)
	if err := s.MigrateToReference(ref.ID, 1); !errors.Is(err, ErrWrongForm) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteImplementationCascades(t *testing.T) {
	s := newStore(t)
	script, url := seedCourse(t, s)
	if _, err := s.NewInstance(url, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordTest(TestRecord{Name: "t1", ScriptName: script, StartingURL: url, Scope: "global"}); err != nil {
		t.Fatal(err)
	}
	if err := s.FileBugReport(BugReport{Name: "b1", TestName: "t1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveAnnotation(Annotation{Name: "a1", ScriptName: script, StartingURL: url}); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteImplementation(url); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Implementation(url); !errors.Is(err, relstore.ErrNotFound) {
		t.Errorf("impl survives: %v", err)
	}
	if st := s.Blobs().Stats(); st.PhysicalBytes != 0 {
		t.Errorf("blob bytes = %d after delete", st.PhysicalBytes)
	}
	if recs, _ := s.TestRecords(script); len(recs) != 0 {
		t.Errorf("test records survive: %+v", recs)
	}
	if _, err := s.ObjectByURL(url); err == nil {
		t.Error("doc object survives")
	}
	// The script itself survives.
	if _, err := s.Script(script); err != nil {
		t.Errorf("script lost: %v", err)
	}
}

func TestDeleteImplementationUnknown(t *testing.T) {
	s := newStore(t)
	if err := s.DeleteImplementation("http://ghost"); !errors.Is(err, relstore.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteScriptCascades(t *testing.T) {
	s := newStore(t)
	script, url := seedCourse(t, s)
	if _, err := s.AttachScriptMedia(script, "verbal.wav", blob.KindAudio, []byte("narration")); err != nil {
		t.Fatal(err)
	}
	// A second implementation of the same script.
	if err := s.DuplicateComponent(url, "http://mmu/second", "Ma"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteScript(script); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Script(script); !errors.Is(err, relstore.ErrNotFound) {
		t.Errorf("script survives: %v", err)
	}
	if st := s.Blobs().Stats(); st.PhysicalBytes != 0 {
		t.Errorf("blob bytes = %d after script delete", st.PhysicalBytes)
	}
	// The database row survives and can host new scripts.
	if err := s.CreateScript(Script{Name: "fresh", DBName: "mmu"}); err != nil {
		t.Errorf("database unusable after delete: %v", err)
	}
}
