// Package htmlmini is a tolerant scanner for the HTML subset appearing
// in Web course documents. It substitutes for the browser-side traversal
// of the paper's testing subsystem: given a page's bytes it extracts the
// title, outgoing hyperlinks (a href) and embedded asset references
// (img/embed/script/audio/video src), which the webtest package walks to
// find bad URLs, missing objects and redundant files.
package htmlmini

import (
	"strings"
)

// Doc is the scan result for one HTML page.
type Doc struct {
	Title  string
	Links  []string // href targets of <a> elements
	Assets []string // src targets of img/embed/script/audio/video
}

// Parse scans a page. It never fails: malformed markup yields whatever
// could be recovered, the way 90s browsers behaved.
func Parse(data []byte) Doc {
	var doc Doc
	s := string(data)
	i := 0
	for i < len(s) {
		lt := strings.IndexByte(s[i:], '<')
		if lt < 0 {
			break
		}
		i += lt
		gt := strings.IndexByte(s[i:], '>')
		if gt < 0 {
			break
		}
		tag := s[i+1 : i+gt]
		inner := i + gt + 1
		i += gt + 1
		name, attrs := splitTag(tag)
		switch name {
		case "a":
			if href, ok := attrs["href"]; ok && href != "" {
				doc.Links = append(doc.Links, href)
			}
		case "img", "embed", "script", "audio", "video", "bgsound":
			if src, ok := attrs["src"]; ok && src != "" {
				doc.Assets = append(doc.Assets, src)
			}
		case "title":
			end := strings.Index(strings.ToLower(s[inner:]), "</title>")
			if end >= 0 {
				doc.Title = strings.TrimSpace(s[inner : inner+end])
			}
		}
	}
	return doc
}

// splitTag separates the tag name from its attributes. Closing tags,
// comments and directives return an empty attribute map.
func splitTag(tag string) (string, map[string]string) {
	tag = strings.TrimSpace(tag)
	if tag == "" || tag[0] == '/' || tag[0] == '!' || tag[0] == '?' {
		return "", nil
	}
	nameEnd := len(tag)
	for j := 0; j < len(tag); j++ {
		if tag[j] == ' ' || tag[j] == '\t' || tag[j] == '\n' || tag[j] == '\r' {
			nameEnd = j
			break
		}
	}
	name := strings.ToLower(tag[:nameEnd])
	attrs := make(map[string]string)
	rest := tag[nameEnd:]
	for {
		rest = strings.TrimLeft(rest, " \t\r\n")
		if rest == "" || rest == "/" {
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			break
		}
		key := strings.ToLower(strings.TrimSpace(rest[:eq]))
		rest = rest[eq+1:]
		rest = strings.TrimLeft(rest, " \t\r\n")
		var val string
		if rest != "" && (rest[0] == '"' || rest[0] == '\'') {
			quote := rest[0]
			end := strings.IndexByte(rest[1:], quote)
			if end < 0 {
				val = rest[1:]
				rest = ""
			} else {
				val = rest[1 : 1+end]
				rest = rest[end+2:]
			}
		} else {
			end := strings.IndexAny(rest, " \t\r\n")
			if end < 0 {
				val = rest
				rest = ""
			} else {
				val = rest[:end]
				rest = rest[end:]
			}
		}
		if key != "" {
			attrs[key] = val
		}
	}
	return name, attrs
}

// IsExternal reports whether a link target leaves the document set
// (absolute http/https/ftp/mailto URLs are external; relative paths and
// fragments are internal).
func IsExternal(target string) bool {
	lower := strings.ToLower(target)
	for _, scheme := range []string{"http://", "https://", "ftp://", "mailto:"} {
		if strings.HasPrefix(lower, scheme) {
			return true
		}
	}
	return false
}

// Normalize strips fragments and leading "./" from an internal link so
// it can be matched against stored file paths.
func Normalize(target string) string {
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	target = strings.TrimPrefix(target, "./")
	return target
}

// Text extracts the visible text of a page — the title and everything
// between tags, with script and style contents skipped — for full-text
// indexing. Like Parse it never fails; malformed markup yields whatever
// text could be recovered.
func Text(data []byte) string {
	var sb strings.Builder
	s := string(data)
	i := 0
	skipUntil := "" // closing tag that ends a non-visible element
	for i < len(s) {
		lt := strings.IndexByte(s[i:], '<')
		if lt < 0 {
			if skipUntil == "" {
				appendText(&sb, s[i:])
			}
			break
		}
		if skipUntil == "" {
			appendText(&sb, s[i:i+lt])
		}
		i += lt
		gt := strings.IndexByte(s[i:], '>')
		if gt < 0 {
			break
		}
		tag := strings.TrimSpace(s[i+1 : i+gt])
		i += gt + 1
		name := tagName(tag)
		switch {
		case skipUntil != "":
			if name == "/"+skipUntil {
				skipUntil = ""
			}
		case name == "script" || name == "style":
			// Self-closing forms (<script src="x"/>) have no element
			// body to skip.
			if !strings.HasSuffix(tag, "/") {
				skipUntil = name
			}
		}
	}
	return strings.TrimSpace(sb.String())
}

// tagName extracts the lower-cased element name of a raw tag body,
// keeping a leading '/' so closing tags compare as "/name". A
// malformed or directive tag yields whatever its first token is —
// harmless, since callers compare against known names.
func tagName(tag string) string {
	end := len(tag)
	for j := 0; j < len(tag); j++ {
		if c := tag[j]; c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '>' {
			end = j
			break
		}
	}
	return strings.ToLower(strings.TrimSuffix(tag[:end], "/"))
}

// appendText adds a text run to the builder, collapsing the boundary to
// a single space.
func appendText(sb *strings.Builder, run string) {
	run = strings.TrimSpace(run)
	if run == "" {
		return
	}
	if sb.Len() > 0 {
		sb.WriteByte(' ')
	}
	sb.WriteString(run)
}

// Page builds a minimal well-formed course page, used by the workload
// generator and tests.
func Page(title string, links, assets []string, body string) []byte {
	var sb strings.Builder
	sb.WriteString("<html><head><title>")
	sb.WriteString(title)
	sb.WriteString("</title></head><body>\n")
	sb.WriteString(body)
	sb.WriteString("\n")
	for _, l := range links {
		sb.WriteString(`<a href="`)
		sb.WriteString(l)
		sb.WriteString(`">`)
		sb.WriteString(l)
		sb.WriteString("</a>\n")
	}
	for _, a := range assets {
		sb.WriteString(`<img src="`)
		sb.WriteString(a)
		sb.WriteString(`">`)
		sb.WriteString("\n")
	}
	sb.WriteString("</body></html>\n")
	return []byte(sb.String())
}
