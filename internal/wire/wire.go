// Package wire is the compact binary encoding shared by the hot
// persistence and transport paths: a length-prefixed, CRC32C-checked
// framing for transport envelopes and WAL records, and a varint-tagged
// value codec covering the relational engine's scalar set (nil, int64,
// float64, string, []byte, bool, time.Time). It replaces gob on the
// wire (which re-sends type descriptors on every frame) and JSON in
// the WAL (which base64-wraps every []byte), and recycles its encode
// buffers through a sync.Pool so steady-state traffic allocates
// nothing for framing.
//
// Every magic byte lives in [0x80, 0xF7]: a gob stream always starts
// with a segment length encoded either as one byte < 0x80 or as a
// negated byte count in [0xF8, 0xFF], and a JSON record starts with
// '{' (0x7B), so one-byte sniffing cleanly separates the new format
// from both legacy encodings. That is what lets every decoder keep a
// read-side fallback: old gob snapshots, gob sidecars and JSON WAL
// tails are recognized and recovered one last time, and the next
// checkpoint rewrites them in the binary format.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
	"time"
)

// Format magic bytes. All chosen from [0x80, 0xF7], the range no gob
// stream or JSON document can start with (see the package comment).
const (
	FrameMagic  = 0xB7 // transport envelope payload
	RecordMagic = 0xB9 // one WAL record
	SnapMagic   = 0xBA // relstore checkpoint image
	BlobMagic   = 0xBB // BLOB store sidecar
	SearchMagic = 0xBC // content-index sidecar

	// Version is the current format version, encoded after every
	// magic byte. Decoders reject versions they do not know.
	Version = 1
)

// Codec errors.
var (
	// ErrCorrupt reports a structural decoding failure: a bad magic or
	// version byte, a truncated field, a length that overruns the
	// input.
	ErrCorrupt = errors.New("wire: corrupt encoding")
	// ErrChecksum reports that a frame or record decoded structurally
	// but its CRC32C trailer does not match its payload.
	ErrChecksum = errors.New("wire: checksum mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C (Castagnoli) checksum of p — the
// polynomial with hardware support on both amd64 and arm64, so a
// trailer costs a table lookup loop at worst.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// maxPooledBuf bounds the buffers the pool retains: a one-off giant
// frame (a full-media bundle) should not pin its backing array for
// the life of the process.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a zero-length scratch buffer from the pool.
func GetBuf() []byte { return (*bufPool.Get().(*[]byte))[:0] }

// PutBuf recycles a buffer obtained from GetBuf (pass the final,
// possibly reallocated slice). Oversized buffers are dropped.
func PutBuf(b []byte) {
	if cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// AppendUvarint appends v in unsigned LEB128.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendVarint appends v zigzag-encoded, so small negatives stay
// small.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// AppendUint32 appends v as 4 fixed little-endian bytes.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Value type tags.
const (
	tagNil   = 0
	tagInt   = 1
	tagFloat = 2
	tagStr   = 3
	tagBytes = 4
	tagFalse = 5
	tagTrue  = 6
	tagTime  = 7
)

// AppendValue appends one tagged scalar. The accepted dynamic types
// are exactly the relational engine's canonical set: nil, int64,
// float64, string, []byte, bool, time.Time. Anything else is an
// error — callers hold already-coerced values, so hitting it means a
// bug upstream, not bad user input.
func AppendValue(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, tagNil), nil
	case int64:
		return AppendVarint(append(dst, tagInt), x), nil
	case float64:
		dst = append(dst, tagFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(x)), nil
	case string:
		return AppendString(append(dst, tagStr), x), nil
	case []byte:
		return AppendBytes(append(dst, tagBytes), x), nil
	case bool:
		if x {
			return append(dst, tagTrue), nil
		}
		return append(dst, tagFalse), nil
	case time.Time:
		// Seconds + nanos cover the full time.Time range (UnixNano
		// alone saturates outside 1678-2262). The zone is normalized
		// to UTC, matching what every legacy decode path produced.
		dst = append(dst, tagTime)
		dst = AppendVarint(dst, x.Unix())
		return AppendUvarint(dst, uint64(x.Nanosecond())), nil
	default:
		return dst, fmt.Errorf("%w: unencodable value type %T", ErrCorrupt, v)
	}
}

// Reader decodes wire primitives from a byte slice with a sticky
// error: after the first failure every further read returns zero
// values, so decode sequences need a single Err check at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a buffer for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding failure, nil if none.
func (r *Reader) Err() error { return r.err }

// Len reports the bytes not yet consumed.
func (r *Reader) Len() int { return len(r.buf) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, r.off)
	}
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uvarint reads an unsigned LEB128 integer.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag-encoded signed integer.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Uint32 reads 4 fixed little-endian bytes.
func (r *Reader) Uint32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *Reader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// String reads a length-prefixed string (an owning copy).
func (r *Reader) String() string {
	return string(r.take(r.Uvarint()))
}

// Bytes reads a length-prefixed byte slice as an owning copy, safe to
// retain after the underlying buffer is recycled. A zero length
// decodes as nil.
func (r *Reader) Bytes() []byte {
	b := r.take(r.Uvarint())
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Value reads one tagged scalar written by AppendValue.
func (r *Reader) Value() any {
	switch tag := r.Byte(); tag {
	case tagNil:
		return nil
	case tagInt:
		return r.Varint()
	case tagFloat:
		if r.err != nil || r.off+8 > len(r.buf) {
			r.fail()
			return nil
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
		r.off += 8
		return v
	case tagStr:
		return r.String()
	case tagBytes:
		return r.Bytes()
	case tagFalse:
		return false
	case tagTrue:
		return true
	case tagTime:
		sec := r.Varint()
		nsec := r.Uvarint()
		if r.err != nil || nsec >= 1e9 {
			r.fail()
			return nil
		}
		return time.Unix(sec, int64(nsec)).UTC()
	default:
		if r.err == nil {
			r.err = fmt.Errorf("%w: unknown value tag %d", ErrCorrupt, tag)
		}
		return nil
	}
}

// AppendRecord frames one record payload for an append-only log:
//
//	[RecordMagic][version][uvarint len(payload)][payload][crc32c(payload)]
//
// The CRC trailer makes half-written tails and bit rot detectable;
// the magic byte lets a replay distinguish binary records from legacy
// JSON lines in the same file.
func AppendRecord(dst []byte, payload []byte) []byte {
	dst = append(dst, RecordMagic, Version)
	dst = AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return AppendUint32(dst, Checksum(payload))
}

// ReadRecord reads one record written by AppendRecord from br. It
// returns io.EOF at a clean record boundary, io.ErrUnexpectedEOF when
// the stream ends inside a record (the torn tail a crash mid-append
// leaves), ErrChecksum when a fully present record fails its CRC, and
// ErrCorrupt for structural garbage. max bounds the accepted payload
// size (<= 0 means no bound). The returned payload is an owning copy.
func ReadRecord(br *bufio.Reader, max int) ([]byte, error) {
	magic, err := br.ReadByte()
	if err != nil {
		return nil, io.EOF
	}
	if magic != RecordMagic {
		return nil, fmt.Errorf("%w: record magic 0x%02x", ErrCorrupt, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: record version %d", ErrCorrupt, ver)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if max > 0 && n > uint64(max) {
		return nil, fmt.Errorf("%w: record claims %d bytes", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if binary.LittleEndian.Uint32(crc[:]) != Checksum(payload) {
		return nil, fmt.Errorf("%w: record of %d bytes", ErrChecksum, n)
	}
	return payload, nil
}

// SealImage frames a whole-file image (a checkpoint snapshot or
// sidecar): [magic][version][payload][crc32c(payload)]. The payload
// slice is appended to a fresh buffer; the caller owns the result.
func SealImage(magic byte, payload []byte) []byte {
	out := make([]byte, 0, len(payload)+6)
	out = append(out, magic, Version)
	out = append(out, payload...)
	return AppendUint32(out, Checksum(payload))
}

// OpenImage validates a sealed image and returns its payload (a
// subslice of data — it stays valid only as long as data does).
// ErrCorrupt covers a wrong magic or version or a short file;
// ErrChecksum a payload that fails its trailer.
func OpenImage(magic byte, data []byte) ([]byte, error) {
	if len(data) < 6 || data[0] != magic {
		return nil, fmt.Errorf("%w: not a wire image (magic 0x%02x)", ErrCorrupt, magic)
	}
	if data[1] != Version {
		return nil, fmt.Errorf("%w: image version %d", ErrCorrupt, data[1])
	}
	payload := data[2 : len(data)-4]
	if binary.LittleEndian.Uint32(data[len(data)-4:]) != Checksum(payload) {
		return nil, fmt.Errorf("%w: image of %d bytes", ErrChecksum, len(data))
	}
	return payload, nil
}

// IsImage reports whether data plausibly starts a sealed image with
// the given magic — the one-byte sniff decoders use to pick between
// the binary format and their legacy gob/JSON fallback.
func IsImage(magic byte, data []byte) bool {
	return len(data) > 0 && data[0] == magic
}
