// Package fabric is the live distribution subsystem of the paper's
// section 4: N webdocd stations joined in linear order form a full
// m-ary distribution tree over real TCP sockets and move real document
// bundles along its edges. It is the deployed counterpart of the
// internal/cluster discrete-event simulation — the same placement
// arithmetic (internal/mtree), the same bundle closure
// (docdb.Bundle/ImportBundle) and the same watermark policy, but with
// live peers instead of simulated time.
//
// The subsystem has four moving parts:
//
//   - a join/topology protocol: a station contacts the root with its
//     listen address, is assigned the next linear position, and learns
//     the tree degree, the watermark frequency and the roster
//     (position -> address) from which it derives its parent route;
//   - Broadcast: the instructor station (the root) pushes a course's
//     bundle down the tree hop-by-hop with store-and-forward relaying;
//     each station imports, then fans out to its children in parallel.
//     A reference-only broadcast carries just the metadata closure and
//     installs document references instead of instances;
//   - Resolve: a station missing a document walks its parent route —
//     each ancestor either serves the bundle from a local instance or
//     relays the request to its own parent. Crossing the watermark
//     frequency materializes a local instance (copies the BLOBs);
//   - Migrate: after the lecture window, every non-persistent instance
//     in the tree migrates back to a document reference, reclaiming
//     the buffer space.
//
// Stations keep serving the base station RPCs (Ping, Bundle, Import,
// SQL) — the fabric methods ride on the same cluster.Node server.
package fabric

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/docdb"
	"repro/internal/mtree"
	"repro/internal/transport"
)

// Fabric errors.
var (
	ErrNotRoot    = errors.New("fabric: operation requires the root station")
	ErrNotJoined  = errors.New("fabric: station has not joined a fabric")
	ErrNoInstance = errors.New("fabric: no station on the parent route holds an instance")
	ErrBadDegree  = errors.New("fabric: tree degree must be >= 1")
	ErrRouteLoop  = errors.New("fabric: resolve exceeded the route length")
)

// Tuning knobs for the per-peer connection pools and the join
// handshake.
const (
	peerPoolSize = 4
	callTimeout  = 2 * time.Minute
	joinAttempts = 10
	joinBackoff  = 150 * time.Millisecond
)

// RPC method names. They live beside the base station methods on the
// same transport server.
const (
	methodJoin       = "Fabric.Join"
	methodTopology   = "Fabric.Topology"
	methodPush       = "Fabric.Push"
	methodResolve    = "Fabric.Resolve"
	methodMigrate    = "Fabric.Migrate"
	methodBroadcast  = "Fabric.Broadcast"
	methodFetch      = "Fabric.Fetch"
	methodEndLecture = "Fabric.EndLecture"
)

// JoinRequest announces a new station's listen address to the root.
type JoinRequest struct {
	Addr string
}

// JoinReply assigns the joiner its linear position and hands it the
// policy and the roster it derives its parent route from.
type JoinReply struct {
	Pos       int
	M         int
	N         int
	Watermark int
	Roster    map[int]string
}

// TopologyReply describes a station's view of the fabric.
type TopologyReply struct {
	Pos       int
	M         int
	N         int
	Watermark int
	IsRoot    bool
	Roster    map[int]string
}

// Station is one live fabric member: a cluster.Node (the base station
// RPC service) plus the distribution state — position, roster, fetch
// counters and the connection pools to its peers.
type Station struct {
	node   *cluster.Node
	store  *docdb.Store
	isRoot bool
	addr   string

	mu        sync.Mutex
	closed    bool
	pos       int
	m         int
	n         int
	watermark int
	roster    map[int]string
	fetches   map[string]int
	pools     map[string]*transport.Pool

	// importMu serializes bundle installs on this station: a broadcast
	// push racing an on-demand materialization of the same URL would
	// otherwise both pass ImportBundle's residency check and collide on
	// the file rows.
	importMu sync.Mutex
}

func newStation(store *docdb.Store, isRoot bool, m, watermark int) *Station {
	s := &Station{
		store:     store,
		isRoot:    isRoot,
		m:         m,
		watermark: watermark,
		roster:    make(map[int]string),
		fetches:   make(map[string]int),
		pools:     make(map[string]*transport.Pool),
	}
	s.node = cluster.NewNode(0, store)
	s.node.Handle(methodJoin, s.handleJoin)
	s.node.Handle(methodTopology, s.handleTopology)
	s.node.Handle(methodPush, s.handlePush)
	s.node.Handle(methodResolve, s.handleResolve)
	s.node.Handle(methodMigrate, s.handleMigrate)
	s.node.Handle(methodBroadcast, s.handleBroadcast)
	s.node.Handle(methodFetch, s.handleFetch)
	s.node.Handle(methodEndLecture, s.handleEndLecture)
	return s
}

// NewRoot starts the instructor station: position 1, the root of the
// m-ary distribution tree, and the authority for join requests. A
// negative watermark means on-demand pulls never replicate.
func NewRoot(store *docdb.Store, addr string, m, watermark int) (*Station, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadDegree, m)
	}
	s := newStation(store, true, m, watermark)
	// The root's own position is fixed before the socket opens; until
	// its bound address lands in the roster, handleJoin turns joiners
	// away with a retryable not-ready error.
	s.mu.Lock()
	s.pos = 1
	s.n = 1
	s.mu.Unlock()
	s.node.SetPos(1)
	bound, err := s.node.Start(addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.addr = bound
	s.roster[1] = bound
	s.mu.Unlock()
	return s, nil
}

// Join starts a station and registers it with the fabric root at
// rootAddr: the station begins serving on addr first (so the root can
// reach it), then asks the root for its linear position, the degree,
// the watermark policy and the roster. The handshake retries with
// backoff, so joiners may start concurrently with (or slightly before)
// their root.
func Join(store *docdb.Store, addr, rootAddr string) (*Station, error) {
	s := newStation(store, false, 0, 0)
	bound, err := s.node.Start(addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.addr = bound
	s.mu.Unlock()
	var reply JoinReply
	for attempt := 0; ; attempt++ {
		err = s.pool(rootAddr).Call(methodJoin, JoinRequest{Addr: bound}, &reply)
		if err == nil {
			break
		}
		if attempt+1 >= joinAttempts {
			s.Close()
			return nil, fmt.Errorf("fabric: joining via %s: %w", rootAddr, err)
		}
		time.Sleep(joinBackoff)
	}
	s.mu.Lock()
	s.applyTopology(reply.M, reply.N, reply.Watermark, reply.Roster)
	s.mu.Unlock()
	return s, nil
}

// Addr returns the station's bound listen address.
func (s *Station) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Pos returns the station's linear position (0 before a join
// completes).
func (s *Station) Pos() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

// Store exposes the station's document database.
func (s *Station) Store() *docdb.Store { return s.store }

// Node exposes the underlying base station service.
func (s *Station) Node() *cluster.Node { return s.node }

// Fetches returns how many times this station has pulled the document
// from a remote holder since the last migration.
func (s *Station) Fetches(url string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetches[url]
}

// Close stops serving and releases every peer connection.
func (s *Station) Close() error {
	err := s.node.Close()
	s.mu.Lock()
	s.closed = true
	pools := s.pools
	s.pools = make(map[string]*transport.Pool)
	s.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
	return err
}

// pool returns the connection pool for a peer address, creating it
// lazily. After Close it hands out an already-closed pool, so an
// in-flight handler's late fan-out fails fast with ErrClosed instead
// of leaking an untracked pool.
func (s *Station) pool(addr string) *transport.Pool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pools[addr]
	if !ok {
		p = transport.NewPool(addr, peerPoolSize, callTimeout)
		if s.closed {
			p.Close()
			return p
		}
		s.pools[addr] = p
	}
	return p
}

// applyTopology folds a roster snapshot and the root's policy into the
// station's state (mu held). Snapshots originate at the root, so a
// larger station count means a newer view; the station derives its own
// position by finding its address, which also covers the race where a
// broadcast reaches a joiner before its JoinReply does — carrying the
// watermark here means that station also runs the configured
// replication policy, not the zero value.
func (s *Station) applyTopology(m, n, watermark int, roster map[int]string) {
	if n < s.n || len(roster) == 0 {
		return
	}
	s.m = m
	s.n = n
	s.watermark = watermark
	s.roster = make(map[int]string, len(roster))
	for pos, addr := range roster {
		s.roster[pos] = addr
	}
	for pos, addr := range roster {
		if addr == s.addr {
			s.pos = pos
			s.node.SetPos(pos)
			break
		}
	}
}

// snapshot returns the station's topology view (position, degree,
// size, watermark, roster copy) for use outside the lock.
func (s *Station) snapshot() (pos, m, n, watermark int, roster map[int]string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	roster = make(map[int]string, len(s.roster))
	for p, a := range s.roster {
		roster[p] = a
	}
	return s.pos, s.m, s.n, s.watermark, roster
}

// handleJoin assigns the next linear position. Only the root holds the
// authoritative roster. Joining is idempotent per address: a joiner
// whose reply was lost retries and gets its original position back
// instead of a duplicate roster entry.
func (s *Station) handleJoin(decode func(any) error) (any, error) {
	var req JoinRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	if !s.isRoot {
		return nil, fmt.Errorf("%w: join", ErrNotRoot)
	}
	if req.Addr == "" {
		return nil, errors.New("fabric: join without a listen address")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.roster[1] == "" {
		return nil, errors.New("fabric: root is still starting, retry")
	}
	pos := 0
	for p, a := range s.roster {
		if a == req.Addr {
			pos = p
			break
		}
	}
	if pos == 0 {
		s.n++
		pos = s.n
		s.roster[pos] = req.Addr
	}
	roster := make(map[int]string, len(s.roster))
	for p, a := range s.roster {
		roster[p] = a
	}
	return JoinReply{Pos: pos, M: s.m, N: s.n, Watermark: s.watermark, Roster: roster}, nil
}

// handleTopology reports the station's current view of the fabric.
func (s *Station) handleTopology(decode func(any) error) (any, error) {
	var req struct{}
	if err := decode(&req); err != nil {
		return nil, err
	}
	pos, m, n, wm, roster := s.snapshot()
	return TopologyReply{Pos: pos, M: m, N: n, Watermark: wm, IsRoot: s.isRoot, Roster: roster}, nil
}

// eachChild runs fn concurrently for every existing child of pos under
// the request's topology snapshot — the parallel fan-out of one
// broadcast hop.
func eachChild(pos, m, n int, roster map[int]string, fn func(kid int, addr string)) error {
	kids, err := mtree.Children(pos, m, n)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	for _, kid := range kids {
		kid := kid
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(kid, roster[kid])
		}()
	}
	wg.Wait()
	return nil
}

// sortResults orders per-station results by linear position.
func sortResults(rs []StationResult) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Pos < rs[j].Pos })
}
