package loadgen

import (
	"sort"
	"sync"
	"time"
)

// The collector keeps every successful-op latency sample per op class
// rather than bucketed histograms: a compressed day issues thousands
// of ops, not millions, and exact percentiles make SLO verdicts
// reproducible to the nanosecond for the determinism tests.

// Collector aggregates op outcomes across all phase workers.
type Collector struct {
	mu      sync.Mutex
	classes map[string]*opClass
}

type opClass struct {
	count     int64
	errors    int64
	conflicts int64
	bytes     int64
	lag       time.Duration // total start lag behind the paced schedule
	samples   []time.Duration
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{classes: map[string]*opClass{}}
}

func (c *Collector) class(op string) *opClass {
	cl := c.classes[op]
	if cl == nil {
		cl = &opClass{}
		c.classes[op] = cl
	}
	return cl
}

// Record notes one completed op. Conflicts (checkout contention) are a
// workload outcome, not a failure, so they are tallied separately and
// excluded from the error rate. Latency samples only cover successes —
// a fast error must not improve a percentile.
func (c *Collector) Record(op string, latency time.Duration, bytes int64, lag time.Duration, err error, conflict bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.class(op)
	cl.count++
	cl.lag += lag
	switch {
	case conflict:
		cl.conflicts++
	case err != nil:
		cl.errors++
	default:
		cl.bytes += bytes
		cl.samples = append(cl.samples, latency)
	}
}

// OpSummary is one op class's aggregate, JSON-shaped for the report.
type OpSummary struct {
	Count     int64 `json:"count"`
	Errors    int64 `json:"errors"`
	Conflicts int64 `json:"conflicts,omitempty"`
	Bytes     int64 `json:"bytes"`

	ErrorRate     float64 `json:"error_rate"`
	WallOpsPerSec float64 `json:"throughput_wall_ops_per_sec"`
	SimOpsPerSec  float64 `json:"throughput_sim_ops_per_sec"`

	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`

	// MeanLagMs is how far behind the paced schedule ops started on
	// average — the harness's own health signal: a large lag means the
	// driver could not sustain the profile's rate and latency numbers
	// describe a slower effective load.
	MeanLagMs float64 `json:"mean_sched_lag_ms"`
}

// Summarize folds the samples into per-class aggregates. wall is the
// measured run time, sim the profile's simulated span.
func (c *Collector) Summarize(wall, sim time.Duration) map[string]OpSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]OpSummary, len(c.classes))
	for op, cl := range c.classes {
		s := OpSummary{
			Count:     cl.count,
			Errors:    cl.errors,
			Conflicts: cl.conflicts,
			Bytes:     cl.bytes,
		}
		if cl.count > 0 {
			s.ErrorRate = float64(cl.errors) / float64(cl.count)
			s.MeanLagMs = ms(cl.lag / time.Duration(cl.count))
		}
		if wall > 0 {
			s.WallOpsPerSec = float64(cl.count) / wall.Seconds()
		}
		if sim > 0 {
			s.SimOpsPerSec = float64(cl.count) / sim.Seconds()
		}
		if n := len(cl.samples); n > 0 {
			sorted := make([]time.Duration, n)
			copy(sorted, cl.samples)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			var total time.Duration
			for _, d := range sorted {
				total += d
			}
			s.P50Ms = ms(percentile(sorted, 0.50))
			s.P95Ms = ms(percentile(sorted, 0.95))
			s.P99Ms = ms(percentile(sorted, 0.99))
			s.MaxMs = ms(sorted[n-1])
			s.MeanMs = ms(total / time.Duration(n))
		}
		out[op] = s
	}
	return out
}

// percentile is the nearest-rank percentile of a sorted sample set.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
