// Package blob implements the BLOB layer of the paper's three-layer
// database hierarchy: large multimedia resources (video, audio, still
// image, animation, MIDI) stored once per workstation and shared by
// every document-layer object that uses them. Storage is
// content-addressed so that "BLOB objects in the same station are shared
// as much as possible among different documents" (section 4), with
// reference counting to know when a resource may be evicted.
package blob

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Kind classifies a multimedia resource, following the BLOB-layer list
// in section 3 of the paper.
type Kind int

// Multimedia resource kinds.
const (
	KindVideo Kind = iota + 1
	KindAudio
	KindImage
	KindAnimation
	KindMIDI
	KindOther
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindVideo:
		return "video"
	case KindAudio:
		return "audio"
	case KindImage:
		return "image"
	case KindAnimation:
		return "animation"
	case KindMIDI:
		return "midi"
	case KindOther:
		return "other"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Ref identifies a stored BLOB. Refs are value objects: two resources
// with identical content share one Ref (and one copy on the station).
type Ref struct {
	Hash string // hex SHA-256 of the content
	Size int64
	Kind Kind
}

// Zero reports whether the ref is the zero value.
func (r Ref) Zero() bool { return r.Hash == "" }

// Store errors.
var (
	ErrNotFound    = errors.New("blob: no such object")
	ErrZeroRef     = errors.New("blob: zero reference")
	ErrOverRelease = errors.New("blob: release of unreferenced object")
)

type entry struct {
	data     []byte
	kind     Kind
	refcount int
	names    map[string]struct{} // logical names attached to the object
}

// Store is one workstation's BLOB store. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	objects map[string]*entry

	logicalBytes  int64 // Σ size × refcount: what duplication would cost
	physicalBytes int64 // Σ size of distinct objects actually held
	putCount      int64
	dedupHits     int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{objects: make(map[string]*entry)}
}

// Put stores content under a logical name and returns its Ref with one
// reference held by the caller. Identical content is stored once; the
// second Put of the same bytes is a dedup hit that only bumps the
// refcount.
func (s *Store) Put(name string, kind Kind, data []byte) Ref {
	sum := sha256.Sum256(data)
	h := hex.EncodeToString(sum[:])
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putCount++
	e, ok := s.objects[h]
	if !ok {
		owned := make([]byte, len(data))
		copy(owned, data)
		e = &entry{data: owned, kind: kind, names: make(map[string]struct{})}
		s.objects[h] = e
		s.physicalBytes += int64(len(data))
	} else {
		s.dedupHits++
	}
	e.refcount++
	if name != "" {
		e.names[name] = struct{}{}
	}
	s.logicalBytes += int64(len(data))
	return Ref{Hash: h, Size: int64(len(data)), Kind: e.kind}
}

// Get returns the content of a stored object. The returned slice is a
// copy; callers may mutate it freely.
func (s *Store) Get(ref Ref) ([]byte, error) {
	if ref.Zero() {
		return nil, ErrZeroRef
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.objects[ref.Hash]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, ref.Hash[:12])
	}
	out := make([]byte, len(e.data))
	copy(out, e.data)
	return out, nil
}

// Has reports whether the object is resident on this station.
func (s *Store) Has(ref Ref) bool {
	if ref.Zero() {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objects[ref.Hash]
	return ok
}

// Retain adds a reference to an existing object, as when a new document
// instance starts sharing a resident BLOB.
func (s *Store) Retain(ref Ref) error {
	if ref.Zero() {
		return ErrZeroRef
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[ref.Hash]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, ref.Hash[:12])
	}
	e.refcount++
	s.logicalBytes += int64(len(e.data))
	return nil
}

// Release drops a reference. When the last reference goes away the
// object is evicted and its disk space reclaimed (the paper's
// buffer-space semantics for duplicated lecture material).
func (s *Store) Release(ref Ref) error {
	if ref.Zero() {
		return ErrZeroRef
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[ref.Hash]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, ref.Hash[:12])
	}
	if e.refcount <= 0 {
		return fmt.Errorf("%w: %s", ErrOverRelease, ref.Hash[:12])
	}
	e.refcount--
	s.logicalBytes -= int64(len(e.data))
	if e.refcount == 0 {
		s.physicalBytes -= int64(len(e.data))
		delete(s.objects, ref.Hash)
	}
	return nil
}

// RefCount returns the current reference count of an object, zero when
// absent.
func (s *Store) RefCount(ref Ref) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.objects[ref.Hash]; ok {
		return e.refcount
	}
	return 0
}

// Stats is a point-in-time accounting snapshot of the store.
type Stats struct {
	Objects       int   // distinct resident objects
	PhysicalBytes int64 // disk actually used
	LogicalBytes  int64 // disk that per-document duplication would use
	Puts          int64 // total Put calls
	DedupHits     int64 // Puts served by an already-resident object
}

// SharingFactor is logical/physical bytes: 1.0 means no sharing, higher
// means the station is avoiding that multiple of disk usage.
func (st Stats) SharingFactor() float64 {
	if st.PhysicalBytes == 0 {
		return 1
	}
	return float64(st.LogicalBytes) / float64(st.PhysicalBytes)
}

// Stats returns the current accounting snapshot.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Objects:       len(s.objects),
		PhysicalBytes: s.physicalBytes,
		LogicalBytes:  s.logicalBytes,
		Puts:          s.putCount,
		DedupHits:     s.dedupHits,
	}
}

// List returns the refs of all resident objects sorted by hash, for
// deterministic iteration in tests and replication.
func (s *Store) List() []Ref {
	s.mu.RLock()
	defer s.mu.RUnlock()
	refs := make([]Ref, 0, len(s.objects))
	for h, e := range s.objects {
		refs = append(refs, Ref{Hash: h, Size: int64(len(e.data)), Kind: e.kind})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Hash < refs[j].Hash })
	return refs
}

// Names returns the logical names attached to an object, sorted.
func (s *Store) Names(ref Ref) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.objects[ref.Hash]
	if !ok {
		return nil
	}
	names := make([]string, 0, len(e.names))
	for n := range e.names {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
