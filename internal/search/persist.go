package search

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/docdb"
	"repro/internal/relstore"
	"repro/internal/schema"
)

// Checkpoint coupling and recovery. The index is a cache over the
// relational content tables, so persistence is best-effort: a
// checkpoint captures the token streams as a search-<gen> sidecar
// (docdb writes the file beside its BLOB sidecar), and recovery loads
// it only when it provably matches the restored relational state —
// otherwise the index rebuilds from the tables, which is always
// correct and costs one scan of the content rows.

// sidecarImage is the gob payload of a search-<gen> sidecar.
type sidecarImage struct {
	Docs map[string]*doc
}

// CaptureCheckpoint snapshots the index for the checkpoint sidecar.
// docdb calls it inside the write-quiescent window — and content
// writes index through commit-atomic hooks (relstore.ApplyThen), so
// the captured token streams describe exactly the history cut of the
// relational snapshot. Only a shallow map copy happens in the window
// (documents are immutable once installed); the returned closure does
// the gob encoding after the window closes, off the writers' path.
func (ix *Index) CaptureCheckpoint() func() ([]byte, error) {
	ix.mu.RLock()
	docs := make(map[string]*doc, len(ix.docs))
	for k, d := range ix.docs {
		docs[k] = d
	}
	ix.mu.RUnlock()
	return func() ([]byte, error) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(sidecarImage{Docs: docs}); err != nil {
			return nil, fmt.Errorf("search: encoding sidecar: %w", err)
		}
		return buf.Bytes(), nil
	}
}

// RecoverCheckpoint restores the index after a relational recovery.
// The sidecar is trusted only when it exists, decodes, no WAL tail
// transactions were replayed on top of the snapshot it was captured
// with, and its document count matches the restored content rows;
// any mismatch falls back to a full rebuild from the relational
// tables. A missing sidecar (nil) — the disk state a crash between
// the snapshot install and the sidecar install leaves behind — always
// rebuilds. Every index maintenance path runs as a commit-atomic hook
// (relstore.ApplyThen/CommitThen), so a capture can never observe a
// committed-but-unindexed write; the count check is defense in depth
// against sidecars from foreign or hand-edited directories.
func (ix *Index) RecoverCheckpoint(sidecar []byte, rel *relstore.DB, tailApplied int) error {
	if sidecar != nil && tailApplied == 0 {
		var img sidecarImage
		if err := gob.NewDecoder(bytes.NewReader(sidecar)).Decode(&img); err == nil {
			if len(img.Docs) == contentRows(rel) {
				ix.install(img.Docs)
				return nil
			}
		}
	}
	return ix.Rebuild(rel)
}

// contentRows counts the relational rows the index mirrors (-1 on a
// store without the schema, which never matches a sidecar).
func contentRows(rel *relstore.DB) int {
	total := 0
	for _, table := range []string{schema.TableScripts, schema.TableHTMLFiles, schema.TableProgFiles} {
		n, err := rel.Count(table)
		if err != nil {
			return -1
		}
		total += n
	}
	return total
}

// install replaces the index contents with restored documents,
// re-deriving the postings from the token streams.
func (ix *Index) install(docs map[string]*doc) {
	ix.mu.Lock()
	ix.docs = make(map[string]*doc)
	ix.post = make(map[string]map[string][]int32)
	ix.byURL = make(map[string]map[string]bool)
	ix.mu.Unlock()
	for _, d := range docs {
		ix.add(d.Kind, d.URL, d.Path, d.Tokens)
	}
}

// Rebuild re-derives the whole index from the relational content
// tables: every script's catalog metadata, every HTML file's visible
// text and every program source.
func (ix *Index) Rebuild(rel *relstore.DB) error {
	ix.install(nil)
	err := rel.Scan(schema.TableScripts, func(r relstore.Row) bool {
		name, _ := r["script_name"].(string)
		desc, _ := r["description"].(string)
		author, _ := r["author"].(string)
		kw, _ := r["keywords"].(string)
		ix.IndexScript(name, desc, author, schema.SplitList(kw))
		return true
	})
	if err != nil {
		return fmt.Errorf("search: rebuilding from scripts: %w", err)
	}
	err = rel.Scan(schema.TableHTMLFiles, func(r relstore.Row) bool {
		url, _ := r["starting_url"].(string)
		path, _ := r["path"].(string)
		content, _ := r["content"].([]byte)
		ix.IndexHTML(url, path, content)
		return true
	})
	if err != nil {
		return fmt.Errorf("search: rebuilding from html files: %w", err)
	}
	err = rel.Scan(schema.TableProgFiles, func(r relstore.Row) bool {
		url, _ := r["starting_url"].(string)
		path, _ := r["path"].(string)
		lang, _ := r["language"].(string)
		content, _ := r["content"].([]byte)
		ix.IndexProgram(url, path, lang, content)
		return true
	})
	if err != nil {
		return fmt.Errorf("search: rebuilding from program files: %w", err)
	}
	return nil
}

// Attach builds a content index over a document store: the index is
// seeded from whatever content the store already holds, then docdb
// keeps it current through its write hooks, persists it beside every
// checkpoint and recovers it (sidecar or rebuild) on restart. Attach
// before the store serves traffic and before Recover, so a recovery
// can restore the index alongside the rows.
func Attach(store *docdb.Store) (*Index, error) {
	ix := NewIndex()
	if err := ix.Rebuild(store.Rel()); err != nil {
		return nil, err
	}
	if err := store.SetContentIndex(ix); err != nil {
		return nil, err
	}
	return ix, nil
}
