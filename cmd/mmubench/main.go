// Command mmubench regenerates the evaluation tables (E1–E11 in
// DESIGN.md) of the distributed Web document database reproduction.
//
// Usage:
//
//	mmubench              # run every experiment at full scale
//	mmubench -e e4        # run one experiment (e1..e11)
//	mmubench -scale small # the fast sizes used by the unit tests
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("e", "", "experiment id (e1..e11); empty runs all")
		scale = flag.String("scale", "full", "experiment scale: small or full")
	)
	flag.Parse()

	sc := experiments.Full
	switch *scale {
	case "full":
	case "small":
		sc = experiments.Small
	default:
		fmt.Fprintf(os.Stderr, "mmubench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *exp != "" {
		run, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mmubench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		table, err := run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmubench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(table.Render())
		return
	}

	tables, err := experiments.All(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmubench: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
}
