package transport

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startGated serves a handler that records the peak number of
// simultaneously executing calls.
func startGated(t *testing.T, hold time.Duration) (string, *atomic.Int64) {
	t.Helper()
	var inflight, peak atomic.Int64
	s := NewServer()
	s.Handle("gated", func(decode func(any) error) (any, error) {
		var req echoReq
		if err := decode(&req); err != nil {
			return nil, err
		}
		n := inflight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(hold)
		inflight.Add(-1)
		return echoResp{Text: req.Text}, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return addr, &peak
}

func TestPoolCallAndReuse(t *testing.T) {
	addr, _ := startEcho(t)
	p := NewPool(addr, 2, time.Second)
	defer p.Close()
	for i := 0; i < 5; i++ {
		var resp echoResp
		if err := p.Call("echo", echoReq{Text: "hi", N: i}, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Twice != i*2 {
			t.Errorf("resp = %+v", resp)
		}
	}
	// Sequential calls reuse one parked connection.
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	if idle != 1 {
		t.Errorf("idle connections = %d, want 1", idle)
	}
}

func TestPoolServerErrorKeepsConnection(t *testing.T) {
	addr, _ := startEcho(t)
	p := NewPool(addr, 1, time.Second)
	defer p.Close()
	if err := p.Call("fail", echoReq{}, nil); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("err = %v", err)
	}
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	if idle != 1 {
		t.Errorf("idle connections after app error = %d, want 1", idle)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	addr, peak := startGated(t, 30*time.Millisecond)
	p := NewPool(addr, 2, 5*time.Second)
	defer p.Close()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp echoResp
			if err := p.Call("gated", echoReq{Text: "x"}, &resp); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Errorf("peak concurrent calls = %d, want <= 2", got)
	}
}

func TestPoolPerCallTimeout(t *testing.T) {
	addr, _ := startGated(t, 2*time.Second)
	p := NewPool(addr, 1, 50*time.Millisecond)
	defer p.Close()
	start := time.Now()
	err := p.Call("gated", echoReq{Text: "x"}, &echoResp{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > time.Second {
		t.Errorf("timeout took %v", time.Since(start))
	}
}

func TestPoolLazyReconnectWithBackoff(t *testing.T) {
	// First listener tells us the address, then goes away.
	s1 := NewServer()
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	p := NewPool(addr, 2, time.Second)
	defer p.Close()
	// The peer is down: the dial retries with backoff, then fails.
	start := time.Now()
	if err := p.Call("echo", echoReq{}, nil); err == nil {
		t.Fatal("call to downed peer succeeded")
	}
	if elapsed := time.Since(start); elapsed < dialBackoff {
		t.Errorf("no backoff observed (%v)", elapsed)
	}

	// The peer restarts on the same address: the next call dials afresh.
	s2 := NewServer()
	s2.Handle("echo", func(decode func(any) error) (any, error) {
		var req echoReq
		if err := decode(&req); err != nil {
			return nil, err
		}
		return echoResp{Text: req.Text, Twice: req.N * 2}, nil
	})
	if _, err := s2.Listen(addr); err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer s2.Close()
	var resp echoResp
	if err := p.Call("echo", echoReq{Text: "back", N: 2}, &resp); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if resp.Twice != 4 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestPoolRetriesStaleParkedConnection(t *testing.T) {
	s1 := NewServer()
	s1.Handle("echo", func(decode func(any) error) (any, error) {
		var req echoReq
		if err := decode(&req); err != nil {
			return nil, err
		}
		return echoResp{Text: req.Text, Twice: req.N * 2}, nil
	})
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(addr, 2, time.Second)
	defer p.Close()
	// Park a connection, then restart the server behind the pool's
	// back: the parked connection is now stale.
	if err := p.Call("echo", echoReq{N: 1}, &echoResp{}); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	s2 := NewServer()
	s2.Handle("echo", func(decode func(any) error) (any, error) {
		var req echoReq
		if err := decode(&req); err != nil {
			return nil, err
		}
		return echoResp{Text: req.Text, Twice: req.N * 2}, nil
	})
	if _, err := s2.Listen(addr); err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer s2.Close()
	// The call pops the stale connection, fails at the transport
	// level, and must transparently retry on a fresh dial.
	var resp echoResp
	if err := p.Call("echo", echoReq{Text: "again", N: 3}, &resp); err != nil {
		t.Fatalf("call across peer restart: %v", err)
	}
	if resp.Twice != 6 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestPoolClose(t *testing.T) {
	addr, _ := startEcho(t)
	p := NewPool(addr, 1, time.Second)
	if err := p.Call("echo", echoReq{N: 1}, &echoResp{}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := p.Call("echo", echoReq{N: 1}, &echoResp{}); !errors.Is(err, ErrClosed) {
		t.Errorf("err after close = %v", err)
	}
}

func TestPoolFastFailAfterRepeatedDialFailure(t *testing.T) {
	// Learn a dead address.
	s := NewServer()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	p := NewPool(addr, 2, time.Second)
	defer p.Close()
	p.SetFailFast(2, time.Minute)
	// The first threshold calls pay the full dial-with-backoff cost...
	for i := 0; i < 2; i++ {
		if err := p.Call("echo", echoReq{}, nil); err == nil {
			t.Fatal("call to dead peer succeeded")
		}
	}
	if !p.Down() {
		t.Fatal("breaker did not open after repeated dial failure")
	}
	// ...after which the breaker fails calls fast without dialing.
	start := time.Now()
	err = p.Call("echo", echoReq{}, nil)
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("err = %v, want ErrPeerDown", err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("fast-fail took %v", d)
	}
	if !Unreachable(err) {
		t.Error("ErrPeerDown not classified as unreachable")
	}
}

func TestPoolBreakerRecoversAfterCooldown(t *testing.T) {
	s := NewServer()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	p := NewPool(addr, 2, time.Second)
	defer p.Close()
	p.SetFailFast(1, 20*time.Millisecond)
	if err := p.Call("echo", echoReq{}, nil); err == nil {
		t.Fatal("call to dead peer succeeded")
	}
	if !p.Down() {
		t.Fatal("breaker did not open")
	}

	// The peer comes back; once the cooldown elapses the pool dials
	// again and the breaker resets.
	s2 := NewServer()
	s2.Handle("echo", func(decode func(any) error) (any, error) {
		var req echoReq
		if err := decode(&req); err != nil {
			return nil, err
		}
		return echoResp{Text: req.Text, Twice: req.N * 2}, nil
	})
	if _, err := s2.Listen(addr); err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer s2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var resp echoResp
		if err := p.Call("echo", echoReq{Text: "back", N: 2}, &resp); err == nil {
			if resp.Twice != 4 {
				t.Errorf("resp = %+v", resp)
			}
			break
		} else if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("unexpected err through cooldown: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after cooldown")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p.Down() {
		t.Error("breaker still open after successful dial")
	}
}

func TestPoolBreakerEvictsIdleConnections(t *testing.T) {
	s1 := NewServer()
	s1.Handle("echo", func(decode func(any) error) (any, error) {
		var req echoReq
		if err := decode(&req); err != nil {
			return nil, err
		}
		return echoResp{Text: req.Text}, nil
	})
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(addr, 4, time.Second)
	defer p.Close()
	p.SetFailFast(1, time.Minute)
	// Park two connections.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Call("echo", echoReq{N: 1}, &echoResp{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	s1.Close()
	// Concurrent calls beyond the idle count force a dial, which fails
	// and trips the breaker; the parked (now stale) connections must be
	// evicted with it.
	for i := 0; i < 3; i++ {
		p.Call("echo", echoReq{}, nil)
		if p.Down() {
			break
		}
	}
	if !p.Down() {
		t.Fatal("breaker did not open")
	}
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	if idle != 0 {
		t.Errorf("idle connections after breaker opened = %d, want 0", idle)
	}
}

func TestClientCallTimeoutDirect(t *testing.T) {
	addr, _ := startGated(t, 2*time.Second)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CallTimeout("gated", echoReq{}, &echoResp{}, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}
