package htmlmini

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestParseLinksAndAssets(t *testing.T) {
	page := []byte(`<html><head><title>Lecture 1</title></head><body>
<a href="page2.html">next</a>
<a href="http://outside.example/x">external</a>
<img src="figure.gif">
<embed src="clip.mpg">
<script src="quiz.js"></script>
<audio src="narration.wav">
</body></html>`)
	doc := Parse(page)
	if doc.Title != "Lecture 1" {
		t.Errorf("title = %q", doc.Title)
	}
	if len(doc.Links) != 2 || doc.Links[0] != "page2.html" {
		t.Errorf("links = %v", doc.Links)
	}
	if len(doc.Assets) != 4 {
		t.Errorf("assets = %v", doc.Assets)
	}
}

func TestParseQuoteStyles(t *testing.T) {
	doc := Parse([]byte(`<a href='single.html'>x</a><a href=bare.html>y</a><a href="double.html">z</a>`))
	if len(doc.Links) != 3 {
		t.Fatalf("links = %v", doc.Links)
	}
	want := map[string]bool{"single.html": true, "bare.html": true, "double.html": true}
	for _, l := range doc.Links {
		if !want[l] {
			t.Errorf("unexpected link %q", l)
		}
	}
}

func TestParseToleratesMalformed(t *testing.T) {
	cases := []string{
		"",
		"<",
		"<a",
		"<a href=",
		`<a href="unterminated`,
		"no tags at all",
		"<>><<>",
		`<a href="ok.html"`,
		"<!doctype html><!-- comment --><?xml?>",
	}
	for _, c := range cases {
		_ = Parse([]byte(c)) // must not panic
	}
	doc := Parse([]byte(`<a href="good.html">x</a><a href="broken`))
	if len(doc.Links) != 1 || doc.Links[0] != "good.html" {
		t.Errorf("links = %v", doc.Links)
	}
}

func TestParseCaseInsensitiveTags(t *testing.T) {
	doc := Parse([]byte(`<A HREF="up.html">x</A><IMG SRC="i.gif">`))
	if len(doc.Links) != 1 || len(doc.Assets) != 1 {
		t.Errorf("doc = %+v", doc)
	}
}

func TestParseEmptyHrefIgnored(t *testing.T) {
	doc := Parse([]byte(`<a href="">x</a><a name="anchor">y</a>`))
	if len(doc.Links) != 0 {
		t.Errorf("links = %v", doc.Links)
	}
}

func TestIsExternal(t *testing.T) {
	cases := map[string]bool{
		"http://example.com":  true,
		"HTTPS://example.com": true,
		"ftp://files":         true,
		"mailto:x@y":          true,
		"page2.html":          false,
		"./page2.html":        false,
		"sub/dir/page.html":   false,
		"#fragment":           false,
	}
	for target, want := range cases {
		if got := IsExternal(target); got != want {
			t.Errorf("IsExternal(%q) = %v", target, got)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"page.html#sec2": "page.html",
		"./page.html":    "page.html",
		"#top":           "",
		"dir/page.html":  "dir/page.html",
		"./a/b.html#x":   "a/b.html",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPageRoundTrip(t *testing.T) {
	page := Page("T", []string{"a.html", "b.html"}, []string{"x.gif"}, "hello")
	doc := Parse(page)
	if doc.Title != "T" {
		t.Errorf("title = %q", doc.Title)
	}
	if len(doc.Links) != 2 || len(doc.Assets) != 1 {
		t.Errorf("doc = %+v", doc)
	}
}

func TestTitleUnterminated(t *testing.T) {
	doc := Parse([]byte("<title>never closed"))
	if doc.Title != "" {
		t.Errorf("title = %q", doc.Title)
	}
}

// Property: Parse never panics and never fabricates links on arbitrary
// byte soup (the tolerant-browser requirement).
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		doc := Parse(data)
		for _, l := range doc.Links {
			if l == "" {
				return false // empty hrefs must be dropped
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Page always round-trips its links and assets through Parse.
func TestQuickPageParseRoundTrip(t *testing.T) {
	f := func(nLinks, nAssets uint8) bool {
		links := make([]string, int(nLinks%8))
		for i := range links {
			links[i] = fmt.Sprintf("l%d.html", i)
		}
		assets := make([]string, int(nAssets%8))
		for i := range assets {
			assets[i] = fmt.Sprintf("a%d.gif", i)
		}
		doc := Parse(Page("T", links, assets, "body"))
		return len(doc.Links) == len(links) && len(doc.Assets) == len(assets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTextExtractsVisibleProse(t *testing.T) {
	page := []byte(`<html><head><title>Lecture 4</title>
<style>body { color: red }</style>
<script>var secret = "hiddenvalue";</script>
</head><body><h1>Pipelines</h1><p>Store and <b>forward</b> relaying.</p></body></html>`)
	got := Text(page)
	want := "Lecture 4 Pipelines Store and forward relaying."
	if got != want {
		t.Errorf("Text = %q, want %q", got, want)
	}
}

func TestTextToleratesMalformedMarkup(t *testing.T) {
	cases := map[string]string{
		"no markup at all":           "no markup at all",
		"<b>unclosed":                "unclosed",
		"trailing angle <":           "trailing angle",
		"<script>never closed":       "",
		"<style>a{}</style>after":    "after",
		"<p>a</p><script>x</script>": "a",
		// Self-closing script/style tags have no body: the rest of the
		// page must still be indexed.
		`<script src="app.js"/>after the include`: "after the include",
		"<script/>visible":                        "visible",
		// Only exact element names enter skip mode.
		"<scripted>not a script</scripted>":     "not a script",
		"<SCRIPT>upper</SCRIPT>lower":           "lower",
		"<script>a</script><script>b</script>c": "c",
	}
	for in, want := range cases {
		if got := Text([]byte(in)); got != want {
			t.Errorf("Text(%q) = %q, want %q", in, got, want)
		}
	}
}
