package cluster

import (
	"fmt"
	"time"
)

// Simulated fabric-wide event collection: the discrete-event model of
// fabric.Station.Events's scatter-gather, so the live journal
// collection's cost can be pinned against controlled simulated time
// the same way trace, search, broadcast and resolve are. The shape is
// trace collection's — ride to the root, scatter one small filter
// request per tree edge, gather replies up the live-grafted tree —
// and shares its structural property: event sets concatenate instead
// of merging to a bounded top-k, so an edge near the root carries its
// whole subtree's matching events. Collection traffic grows with the
// incident's footprint, which is why journals are bounded rings and
// requests carry a since-seq cursor.

// Cost model of one collection hop: a request carries a filter
// (cursor, category, severity, trace ID — small, fixed); a reply
// costs a fixed overhead plus a per-event share (name, category,
// timing, key/value pairs).
const (
	eventRequestBytes = 96
	eventRecordBytes  = 160
)

// eventReplyBytes sizes a reply message carrying n events.
func eventReplyBytes(n int) int64 {
	return eventRequestBytes + int64(n)*eventRecordBytes
}

// EventCollectReport summarizes one simulated collection.
type EventCollectReport struct {
	// Events is the total number of journal events gathered (down
	// stations' journals are unreadable until they rejoin).
	Events int
	// Covered counts the stations that answered the scatter.
	Covered int
	// Latency is the simulated time from issuing the collection at the
	// requesting station to the merged timeline arriving back.
	Latency time.Duration
	// WireBytes is the total traffic the collection moved.
	WireBytes int64
}

// CollectEvents models collecting the filtered journal timeline
// fabric-wide from a requesting station. eventCount reports how many
// events each station's journal contributes under the filter (the
// simulator has no real journals; the caller supplies the incident's
// footprint). The requesting station must be live; the root cannot
// fail.
func (c *Cluster) CollectEvents(pos int, eventCount func(p int) int) (*EventCollectReport, error) {
	st, err := c.Station(pos)
	if err != nil {
		return nil, err
	}
	if c.down[pos] {
		return nil, fmt.Errorf("%w: station %d is down", ErrNoStation, pos)
	}
	start := c.sim.Now()
	bytesBefore := c.sim.Stats().TotalBytes
	rep := &EventCollectReport{}
	var failure error

	// gather collects one station's events and its (live-grafted)
	// subtree's, delivering the concatenated count and completion time.
	var gather func(p int, done func(events int, at time.Duration))
	gather = func(p int, done func(int, time.Duration)) {
		local := eventCount(p)
		rep.Covered++
		kids, err := c.liveChildren(p)
		if err != nil {
			failure = err
			done(0, c.sim.Now())
			return
		}
		if len(kids) == 0 {
			done(local, c.sim.Now())
			return
		}
		total := local
		pending := len(kids)
		var latest time.Duration
		for _, kid := range kids {
			kid := kid
			err := c.sim.Transfer(c.ids[p-1], c.ids[kid-1], eventRequestBytes, func(time.Duration) {
				gather(kid, func(kidEvents int, _ time.Duration) {
					err := c.sim.Transfer(c.ids[kid-1], c.ids[p-1], eventReplyBytes(kidEvents), func(at time.Duration) {
						total += kidEvents
						if at > latest {
							latest = at
						}
						pending--
						if pending == 0 {
							done(total, latest)
						}
					})
					if err != nil {
						failure = err
					}
				})
			})
			if err != nil {
				failure = err
				return
			}
		}
	}

	finish := func(events int, at time.Duration) {
		rep.Events = events
		rep.Latency = at - start
	}
	if pos == 1 {
		gather(1, finish)
	} else {
		// The collection rides to the root first, like every federation
		// query.
		err := c.sim.Transfer(c.ids[st.Pos-1], c.ids[0], eventRequestBytes, func(time.Duration) {
			gather(1, func(events int, _ time.Duration) {
				err := c.sim.Transfer(c.ids[0], c.ids[st.Pos-1], eventReplyBytes(events), func(at time.Duration) {
					finish(events, at)
				})
				if err != nil {
					failure = err
				}
			})
		})
		if err != nil {
			return nil, err
		}
	}
	c.sim.Run()
	if failure != nil {
		return nil, failure
	}
	rep.WireBytes = c.sim.Stats().TotalBytes - bytesBefore
	return rep, nil
}
