package repro

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/docdb"
	"repro/internal/library"
	"repro/internal/minisql"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/workload"
)

// smallSpec is the shared course shape for integration tests.
func systemSpec(n int) workload.CourseSpec {
	spec := workload.DefaultSpec(n)
	spec.Pages = 8
	spec.ExtraLinks = 4
	spec.ImagesPerPage = 1
	spec.VideoEvery = 4
	spec.AudioEvery = 0
	spec.MediaScaleDown = 16384
	return spec
}

// TestFullSemesterScenario drives the whole system through a realistic
// sequence: publish three courses, distribute them, run lectures with
// playback, collaborate on edits, circulate library materials for a
// cohort of students, test the courses, and verify buffers reclaim.
func TestFullSemesterScenario(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Stations = 13
	u, err := core.NewUniversity(cfg)
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]workload.CourseSpec, 3)
	for i := range specs {
		specs[i] = systemSpec(i + 1)
		if _, err := u.PublishCourse(specs[i], []string{"CS-101", "MM-201", "ED-110"}[i], "Shih"); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	// All three courses are searchable.
	if hits := u.Search(library.Query{}); len(hits) != 3 {
		t.Fatalf("catalog = %d", len(hits))
	}

	for li, spec := range specs {
		if _, _, err := u.Distribute(spec.URL); err != nil {
			t.Fatalf("distribute %d: %v", li, err)
		}
		// Every student station plays without stalls.
		for pos := 2; pos <= u.Cluster.Size(); pos += 4 {
			rep, err := u.Cluster.Playback(pos, spec.URL, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Stalls != 0 {
				t.Errorf("lecture %d station %d stalled %d times", li, pos, rep.Stalls)
			}
		}
		// Mid-semester edit with alerts.
		alerts, err := u.EditScript(context.Background(), "Ma", spec.ScriptName, func(s *docdb.Store) error {
			return s.SetProgress(spec.ScriptName, float64(60+li*10))
		})
		if err != nil {
			t.Fatal(err)
		}
		if alerts == 0 {
			t.Error("edit raised no alerts")
		}
		// Students check out the notes.
		for _, student := range []string{"alice", "bob"} {
			co, err := u.StudentCheckOut(spec.ScriptName, student)
			if err != nil {
				t.Fatal(err)
			}
			if err := u.StudentCheckIn(co); err != nil {
				t.Fatal(err)
			}
		}
		// Lecture ends; student buffers return to references.
		freed, err := u.EndLecture(spec.URL)
		if err != nil {
			t.Fatal(err)
		}
		if freed <= 0 {
			t.Errorf("lecture %d freed %d bytes", li, freed)
		}
		// The testing subsystem finds generated courses clean.
		if _, bug, err := u.TestCourse(spec.URL, "Huang", li+1); err != nil {
			t.Fatal(err)
		} else if bug != "" {
			t.Errorf("course %d has bug %s", li, bug)
		}
	}

	// After three lectures, only the instructor station holds bytes.
	usage := u.Cluster.DiskUsage()
	for pos := 2; pos <= u.Cluster.Size(); pos++ {
		if usage[pos-1] != 0 {
			t.Errorf("station %d holds %d bytes after semester end", pos, usage[pos-1])
		}
	}
	if usage[0] == 0 {
		t.Error("instructor station lost its courses")
	}

	// Assessment reflects six checkouts each semester for both students.
	for _, student := range []string{"alice", "bob"} {
		a, err := u.Assess(student)
		if err != nil {
			t.Fatal(err)
		}
		if a.Checkouts != 3 || a.DistinctDocs != 3 {
			t.Errorf("%s assessment = %+v", student, a)
		}
	}
}

// TestStationPersistenceAcrossRestart snapshots a station (relational +
// BLOB layers), rebuilds it from disk and verifies the document layer
// is intact, including a bundle export.
func TestStationPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	relPath := filepath.Join(dir, "rel.snap")
	blobPath := filepath.Join(dir, "blob.snap")

	store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	store.Now = func() time.Time { return time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC) }
	spec := systemSpec(1)
	course, err := workload.BuildCourse(store, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.NewInstance(spec.URL, 1, true); err != nil {
		t.Fatal(err)
	}
	wantBundle, err := store.ExportBundle(spec.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Persist both layers.
	relFile, err := os.Create(relPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Rel().Snapshot(relFile); err != nil {
		t.Fatal(err)
	}
	relFile.Close()
	blobFile, err := os.Create(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Blobs().Snapshot(blobFile); err != nil {
		t.Fatal(err)
	}
	blobFile.Close()

	// "Restart": rebuild from disk.
	rel2 := relstore.NewDB()
	relIn, err := os.Open(relPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel2.Restore(relIn); err != nil {
		t.Fatal(err)
	}
	relIn.Close()
	blobs2 := blob.NewStore()
	blobIn, err := os.Open(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := blobs2.Restore(blobIn); err != nil {
		t.Fatal(err)
	}
	blobIn.Close()
	store2, err := docdb.Open(rel2, blobs2)
	if err != nil {
		t.Fatal(err)
	}

	// Everything is back: scripts, pages, media bytes, object forms.
	sc, err := store2.Script(spec.ScriptName)
	if err != nil {
		t.Fatal(err)
	}
	if sc.DBName != spec.DBName {
		t.Errorf("script = %+v", sc)
	}
	gotBundle, err := store2.ExportBundle(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if gotBundle.TotalBytes() != wantBundle.TotalBytes() {
		t.Errorf("bundle bytes = %d, want %d", gotBundle.TotalBytes(), wantBundle.TotalBytes())
	}
	if len(gotBundle.Media) != course.MediaCount {
		t.Errorf("media = %d, want %d", len(gotBundle.Media), course.MediaCount)
	}
	obj, err := store2.ObjectByURL(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Form != schema.FormInstance || !obj.Persistent {
		t.Errorf("object = %+v", obj)
	}
}

// TestTCPDistributionScenario moves a course between three real TCP
// stations: author on 1, pull to 2, then 3 pulls from 2 — the on-demand
// parent route over real sockets.
func TestTCPDistributionScenario(t *testing.T) {
	stores := make([]*docdb.Store, 3)
	nodes := make([]*cluster.Node, 3)
	addrs := make([]string, 3)
	for i := range stores {
		s, err := docdb.Open(relstore.NewDB(), blob.NewStore())
		if err != nil {
			t.Fatal(err)
		}
		s.Now = func() time.Time { return time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC) }
		stores[i] = s
		nodes[i] = cluster.NewNode(i+1, s)
		addr, err := nodes[i].Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer nodes[i].Close()
		addrs[i] = addr
	}
	spec := systemSpec(2)
	if _, err := workload.BuildCourse(stores[0], spec); err != nil {
		t.Fatal(err)
	}
	if _, err := stores[0].NewInstance(spec.URL, 1, true); err != nil {
		t.Fatal(err)
	}

	// Station 2 pulls from station 1.
	c1, err := cluster.DialStation(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	bundle, err := c1.FetchBundle(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cluster.DialStation(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Import(bundle, false); err != nil {
		t.Fatal(err)
	}

	// Station 3 pulls from station 2 (its parent under m=2).
	bundle2, err := c2.FetchBundle(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := cluster.DialStation(addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if _, err := c3.Import(bundle2, false); err != nil {
		t.Fatal(err)
	}

	// Byte-identical content end to end.
	orig, err := stores[0].HTML(spec.URL, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	final, err := stores[2].HTML(spec.URL, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, final) {
		t.Error("content corrupted across two TCP hops")
	}
	// All three stations report the instance over SQL.
	for i, addr := range addrs {
		rs, err := cluster.DialStation(addr)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := rs.SQL("SELECT COUNT(*) FROM doc_objects WHERE form = 'instance'")
		rs.Close()
		if err != nil {
			t.Fatal(err)
		}
		if reply.Rows[0][0] != "1" {
			t.Errorf("station %d instances = %s", i+1, reply.Rows[0][0])
		}
	}
}

// TestSQLOverDocumentStore verifies the administrative SQL path sees
// the document layer's tables directly.
func TestSQLOverDocumentStore(t *testing.T) {
	store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	store.Now = func() time.Time { return time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC) }
	spec := systemSpec(3)
	if _, err := workload.BuildCourse(store, spec); err != nil {
		t.Fatal(err)
	}
	sess := minisql.NewSession(store.Rel())
	res, err := sess.Exec("SELECT COUNT(*) FROM html_files")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(8) {
		t.Errorf("html_files = %v", res.Rows[0][0])
	}
	res, err = sess.Exec("SELECT script_name FROM scripts WHERE author = 'instructor'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != spec.ScriptName {
		t.Errorf("scripts = %v", res.Rows)
	}
	// The FK chain protects the document layer through SQL too.
	if _, err := sess.Exec("DELETE FROM scripts WHERE script_name = '" + spec.ScriptName + "'"); err == nil {
		t.Error("SQL deleted a script that implementations still reference")
	}
}
