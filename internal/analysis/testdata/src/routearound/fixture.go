// Fixture for the routearound analyzer: every classifier handed to a
// fanOutTree call must be grounded in transport.Unreachable — passed
// directly, via a named predicate that consults it, or as a
// pass-through parameter whose own call sites are checked.
package ra

import "repro/internal/transport"

type agg struct{}

type station struct{}

func (s *station) fanOutTree(pos int, routeAround func(error) bool, send func(addr string) (agg, error)) agg {
	if routeAround(nil) {
		a, _ := send("x")
		return a
	}
	return agg{}
}

func send(addr string) (agg, error) { return agg{}, nil }

// canRouteAround consults transport.Unreachable: accepted as a named
// classifier.
func canRouteAround(err error) bool {
	return transport.Unreachable(err)
}

// anyError grafts on every failure without classifying
// unreachability.
func anyError(err error) bool { return err != nil }

func (s *station) pushes() {
	s.fanOutTree(1, canRouteAround, send)
	s.fanOutTree(1, transport.Unreachable, send)
	s.fanOutTree(1, func(err error) bool { return transport.Unreachable(err) }, send)
	s.fanOutTree(1, anyError, send)                             // want `route-around classifier never consults transport\.Unreachable`
	s.fanOutTree(1, func(err error) bool { return true }, send) // want `route-around classifier never consults transport\.Unreachable`
}

// relay passes its parameter through: the classifier was chosen (and
// checked) at relay's own call sites.
func (s *station) relay(routeAround func(error) bool) agg {
	return s.fanOutTree(1, routeAround, send)
}

// neverGraft is a deliberately different policy with a reasoned
// waiver: suppressed, and the suppression counts as used.
func (s *station) neverGraft() agg {
	//lint:ignore routearound this fan-out must surface every failure to the operator instead of repairing around it
	return s.fanOutTree(1, func(err error) bool { return false }, send)
}
