package relstore

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"strconv"
	"time"
)

// encodeKey renders a canonical primary-key or index-key string for a
// coerced value. Keys are only compared for equality, so the encoding
// needs to be injective, not order-preserving.
func encodeKey(v any) string {
	switch x := v.(type) {
	case nil:
		return "n:"
	case int64:
		return "i:" + strconv.FormatInt(x, 10)
	case float64:
		return "f:" + strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return "s:" + x
	case []byte:
		return "b:" + base64.StdEncoding.EncodeToString(x)
	case bool:
		if x {
			return "t:1"
		}
		return "t:0"
	case time.Time:
		return "d:" + strconv.FormatInt(x.UnixNano(), 10)
	default:
		return fmt.Sprintf("x:%v", x)
	}
}

// compareValues orders two coerced values of the same column type.
// NULL sorts before every non-NULL value. The result follows the usual
// -1/0/+1 convention.
func compareValues(a, b any) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	switch x := a.(type) {
	case int64:
		y, ok := b.(int64)
		if !ok {
			return mixedTypeOrder(a, b)
		}
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case float64:
		y, ok := b.(float64)
		if !ok {
			return mixedTypeOrder(a, b)
		}
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case string:
		y, ok := b.(string)
		if !ok {
			return mixedTypeOrder(a, b)
		}
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case []byte:
		y, ok := b.([]byte)
		if !ok {
			return mixedTypeOrder(a, b)
		}
		return bytes.Compare(x, y)
	case bool:
		y, ok := b.(bool)
		if !ok {
			return mixedTypeOrder(a, b)
		}
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
		return 0
	case time.Time:
		y, ok := b.(time.Time)
		if !ok {
			return mixedTypeOrder(a, b)
		}
		switch {
		case x.Before(y):
			return -1
		case x.After(y):
			return 1
		}
		return 0
	}
	return mixedTypeOrder(a, b)
}

// mixedTypeOrder gives a stable (if arbitrary) order across values of
// different dynamic types, so sorting never panics on corrupt input.
func mixedTypeOrder(a, b any) int {
	sa, sb := fmt.Sprintf("%T%v", a, a), fmt.Sprintf("%T%v", b, b)
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	}
	return 0
}
