package docdb

import (
	"fmt"
	"time"

	"repro/internal/blob"
	"repro/internal/relstore"
	"repro/internal/schema"
)

// DocObject is one Web Document object form of section 4: a class (a
// reusable template owning the physical BLOBs), an instance (a physical
// element of a Web document), or a reference to an instance held on
// another station.
type DocObject struct {
	ID          string
	Form        string // schema.FormClass | FormInstance | FormReference
	StartingURL string
	Station     int64 // station holding this object
	Origin      int64 // for references: station holding the instance
	ClassID     string
	Persistent  bool // instructor-station objects persist; student copies are buffers
	Created     time.Time
}

func objectFromRow(r relstore.Row) DocObject {
	return DocObject{
		ID:          rowString(r, "obj_id"),
		Form:        rowString(r, "form"),
		StartingURL: rowString(r, "starting_url"),
		Station:     rowInt(r, "station"),
		Origin:      rowInt(r, "origin"),
		ClassID:     rowString(r, "class_id"),
		Persistent:  rowBool(r, "persistent"),
		Created:     rowTime(r, "created"),
	}
}

// NewInstance records that this station holds a physical instance of
// the implementation.
func (s *Store) NewInstance(url string, station int, persistent bool) (DocObject, error) {
	obj := DocObject{
		ID:          s.nextID("obj"),
		Form:        schema.FormInstance,
		StartingURL: url,
		Station:     int64(station),
		Origin:      int64(station),
		Persistent:  persistent,
	}
	return obj, s.insertObject(obj)
}

// MakeReference records a reference-to-instance: a mirror entry telling
// this station where the physical instance lives. References are what
// the paper broadcasts to remote stations when an instance is created.
func (s *Store) MakeReference(url string, station, origin int) (DocObject, error) {
	obj := DocObject{
		ID:          s.nextID("obj"),
		Form:        schema.FormReference,
		StartingURL: url,
		Station:     int64(station),
		Origin:      int64(origin),
	}
	return obj, s.insertObject(obj)
}

func (s *Store) insertObject(o DocObject) error {
	return s.rel.Insert(schema.TableDocObjects, relstore.Row{
		"obj_id":       o.ID,
		"form":         o.Form,
		"starting_url": o.StartingURL,
		"station":      o.Station,
		"origin":       o.Origin,
		"class_id":     o.ClassID,
		"persistent":   o.Persistent,
		"created":      s.Now(),
	})
}

// Object fetches one document object by id.
func (s *Store) Object(id string) (DocObject, error) {
	row, err := s.rel.Get(schema.TableDocObjects, id)
	if err != nil {
		return DocObject{}, err
	}
	return objectFromRow(row), nil
}

// ObjectsByForm lists document objects of one form.
func (s *Store) ObjectsByForm(form string) ([]DocObject, error) {
	rows, err := s.rel.Lookup(schema.TableDocObjects, "form", form)
	if err != nil {
		return nil, err
	}
	out := make([]DocObject, len(rows))
	for i, r := range rows {
		out[i] = objectFromRow(r)
	}
	return out, nil
}

// ObjectByURL returns the document object recorded for an
// implementation on this station, if any.
func (s *Store) ObjectByURL(url string) (DocObject, error) {
	rows, err := s.rel.Lookup(schema.TableDocObjects, "starting_url", url)
	if err != nil {
		return DocObject{}, err
	}
	if len(rows) == 0 {
		return DocObject{}, fmt.Errorf("%w: no object for %s", relstore.ErrNotFound, url)
	}
	return objectFromRow(rows[0]), nil
}

// DeclareClass turns an instance into a reusable class: the class
// object now owns the document structure and the physical BLOBs, while
// the original instance keeps its structure with pointers into the
// class (section 4). In the content-addressed BLOB layer the bytes were
// already shared; the class row transfers logical ownership.
func (s *Store) DeclareClass(instanceID string) (DocObject, error) {
	inst, err := s.Object(instanceID)
	if err != nil {
		return DocObject{}, err
	}
	if inst.Form != schema.FormInstance {
		return DocObject{}, fmt.Errorf("%w: %s is a %s", ErrWrongForm, instanceID, inst.Form)
	}
	class := DocObject{
		ID:          s.nextID("obj"),
		Form:        schema.FormClass,
		StartingURL: inst.StartingURL,
		Station:     inst.Station,
		Origin:      inst.Station,
		Persistent:  true,
	}
	if err := s.insertObject(class); err != nil {
		return DocObject{}, err
	}
	if err := s.rel.Update(schema.TableDocObjects, instanceID, relstore.Row{"class_id": class.ID}); err != nil {
		return DocObject{}, err
	}
	return class, nil
}

// Instantiate creates a new document instance from a class: the class's
// structure (HTML and program files) is copied to the new starting URL
// and pointers to the class's multimedia data are created — no BLOB
// bytes are duplicated (prototype reuse of section 4).
func (s *Store) Instantiate(classID, newURL string, station int) (DocObject, error) {
	class, err := s.Object(classID)
	if err != nil {
		return DocObject{}, err
	}
	if class.Form != schema.FormClass {
		return DocObject{}, fmt.Errorf("%w: %s is a %s", ErrWrongForm, classID, class.Form)
	}
	srcImpl, err := s.Implementation(class.StartingURL)
	if err != nil {
		return DocObject{}, err
	}
	if err := s.copyStructure(class.StartingURL, newURL, srcImpl.ScriptName, srcImpl.Author); err != nil {
		return DocObject{}, err
	}
	obj := DocObject{
		ID:          s.nextID("obj"),
		Form:        schema.FormInstance,
		StartingURL: newURL,
		Station:     int64(station),
		Origin:      int64(station),
		ClassID:     classID,
	}
	return obj, s.insertObject(obj)
}

// DuplicateComponent duplicates a reusable compound object to a new
// starting URL with the document-layer files copied (they are
// "relatively smaller sizes, such as HTML files") and the BLOBs shared,
// exactly as section 3 prescribes.
func (s *Store) DuplicateComponent(url, newURL, author string) error {
	srcImpl, err := s.Implementation(url)
	if err != nil {
		return err
	}
	return s.copyStructure(url, newURL, srcImpl.ScriptName, author)
}

// copyStructure clones the implementation row, its HTML and program
// files, and shares its media refs under a new starting URL. The file
// copies go through one batched transaction.
func (s *Store) copyStructure(srcURL, dstURL, scriptName, author string) error {
	if err := s.AddImplementation(Implementation{StartingURL: dstURL, ScriptName: scriptName, Author: author}); err != nil {
		return err
	}
	html, err := s.HTMLFiles(srcURL)
	if err != nil {
		return err
	}
	var files relstore.Batch
	for _, f := range html {
		content := make([]byte, len(f.Content))
		copy(content, f.Content)
		s.queueHTML(&files, dstURL, f.Path, content)
	}
	progs, err := s.ProgramFiles(srcURL)
	if err != nil {
		return err
	}
	for _, f := range progs {
		content := make([]byte, len(f.Content))
		copy(content, f.Content)
		s.queueProgram(&files, dstURL, f.Path, f.Language, content)
	}
	err = s.rel.ApplyThen(&files, func() {
		ix := s.ContentIndex()
		if ix == nil {
			return
		}
		for _, f := range html {
			ix.IndexHTML(dstURL, f.Path, f.Content)
		}
		for _, f := range progs {
			ix.IndexProgram(dstURL, f.Path, f.Language, f.Content)
		}
	})
	if err != nil {
		return err
	}
	media, err := s.ImplMedia(srcURL)
	if err != nil {
		return err
	}
	for _, m := range media {
		if _, err := s.ShareImplMedia(dstURL, m.Name, m.Ref); err != nil {
			return err
		}
	}
	return nil
}

// ensureScaffold installs the metadata a document hangs off — the
// database, script and implementation rows — when missing. Both
// import paths (full bundles and bare references) share it.
func (s *Store) ensureScaffold(script Script, impl Implementation) error {
	if !s.rel.Exists(schema.TableDatabases, script.DBName) {
		if err := s.CreateDatabase(Database{Name: script.DBName}); err != nil {
			return err
		}
	}
	if !s.rel.Exists(schema.TableScripts, script.Name) {
		if err := s.CreateScript(script); err != nil {
			return err
		}
	}
	if !s.rel.Exists(schema.TableImpls, impl.StartingURL) {
		if err := s.AddImplementation(impl); err != nil {
			return err
		}
	}
	return nil
}

// ImportReference installs the metadata scaffolding for a document
// whose physical instance lives on another station, plus a reference
// object pointing at the origin. This is what the paper broadcasts to
// remote stations when an instance is created — "references to the
// instance are broadcasted and stored in many remote stations". An
// existing object for the URL (any form) is returned unchanged.
func (s *Store) ImportReference(script Script, impl Implementation, station, origin int) (DocObject, error) {
	if err := s.ensureScaffold(script, impl); err != nil {
		return DocObject{}, err
	}
	if obj, err := s.ObjectByURL(impl.StartingURL); err == nil {
		return obj, nil
	}
	return s.MakeReference(impl.StartingURL, station, origin)
}

// MigrateToReference converts a non-persistent local instance into a
// reference, freeing the document content and releasing the BLOBs it
// held: "after a lecture is presented, duplicated document instances
// migrate to document references. Essentially, buffer spaces are used
// only" (section 4). Persistent (instructor-station) instances refuse
// to migrate.
func (s *Store) MigrateToReference(objID string, origin int) error {
	obj, err := s.Object(objID)
	if err != nil {
		return err
	}
	if obj.Form != schema.FormInstance {
		return fmt.Errorf("%w: %s is a %s", ErrWrongForm, objID, obj.Form)
	}
	if obj.Persistent {
		return fmt.Errorf("%w: %s is persistent", ErrWrongForm, objID)
	}
	if err := s.dropContent(obj.StartingURL); err != nil {
		return err
	}
	return s.rel.Update(schema.TableDocObjects, objID, relstore.Row{
		"form":   schema.FormReference,
		"origin": int64(origin),
	})
}

// dropContent deletes the document-layer files of an implementation and
// releases its BLOB references. The implementation row itself survives
// (it is small metadata a reference still needs). The row deletes land
// as one batch whose commit also drops the content from the index, so
// a checkpoint capture sees either all of it or none of it.
func (s *Store) dropContent(url string) error {
	html, err := s.HTMLFiles(url)
	if err != nil {
		return err
	}
	progs, err := s.ProgramFiles(url)
	if err != nil {
		return err
	}
	media, err := s.ImplMedia(url)
	if err != nil {
		return err
	}
	var b relstore.Batch
	for _, f := range html {
		b.Delete(schema.TableHTMLFiles, f.ID)
	}
	for _, f := range progs {
		b.Delete(schema.TableProgFiles, f.ID)
	}
	for _, m := range media {
		b.Delete(schema.TableImplMedia, m.ResID)
	}
	err = s.rel.ApplyThen(&b, func() {
		if ix := s.ContentIndex(); ix != nil {
			ix.RemoveContent(url)
		}
	})
	if err != nil {
		return err
	}
	for _, m := range media {
		if err := s.blobs.Release(m.Ref); err != nil {
			return err
		}
	}
	return nil
}

// DeleteImplementation removes an implementation and everything hanging
// off it — files, media descriptors (releasing the BLOBs), annotations,
// test records with their bug reports, and document objects — in
// FK-safe order. The script survives.
func (s *Store) DeleteImplementation(url string) error {
	if _, err := s.Implementation(url); err != nil {
		return err
	}
	// Bug reports -> test records referencing this implementation.
	tests, err := s.rel.Lookup(schema.TableTestRecords, "starting_url", url)
	if err != nil {
		return err
	}
	for _, tr := range tests {
		name := rowString(tr, "test_name")
		bugs, err := s.BugReports(name)
		if err != nil {
			return err
		}
		for _, b := range bugs {
			if err := s.rel.Delete(schema.TableBugReports, b.Name); err != nil {
				return err
			}
		}
		if err := s.rel.Delete(schema.TableTestRecords, name); err != nil {
			return err
		}
	}
	anns, err := s.Annotations(url)
	if err != nil {
		return err
	}
	for _, a := range anns {
		if err := s.rel.Delete(schema.TableAnnotations, a.Name); err != nil {
			return err
		}
	}
	objs, err := s.rel.Lookup(schema.TableDocObjects, "starting_url", url)
	if err != nil {
		return err
	}
	for _, o := range objs {
		if err := s.rel.Delete(schema.TableDocObjects, rowString(o, "obj_id")); err != nil {
			return err
		}
	}
	if err := s.dropContent(url); err != nil {
		return err
	}
	return s.rel.Delete(schema.TableImpls, url)
}

// DeleteScript removes a script and all of its implementations (the
// instructor's delete privilege of section 5). Script-level media is
// released from the BLOB layer.
func (s *Store) DeleteScript(name string) error {
	impls, err := s.Implementations(name)
	if err != nil {
		return err
	}
	for _, im := range impls {
		if err := s.DeleteImplementation(im.StartingURL); err != nil {
			return err
		}
	}
	// Test records attached to the script without an implementation.
	tests, err := s.TestRecords(name)
	if err != nil {
		return err
	}
	for _, tr := range tests {
		bugs, err := s.BugReports(tr.Name)
		if err != nil {
			return err
		}
		for _, b := range bugs {
			if err := s.rel.Delete(schema.TableBugReports, b.Name); err != nil {
				return err
			}
		}
		if err := s.rel.Delete(schema.TableTestRecords, tr.Name); err != nil {
			return err
		}
	}
	// Script-only annotations.
	anns, err := s.rel.Lookup(schema.TableAnnotations, "script_name", name)
	if err != nil {
		return err
	}
	for _, a := range anns {
		if err := s.rel.Delete(schema.TableAnnotations, rowString(a, "ann_name")); err != nil {
			return err
		}
	}
	media, err := s.ScriptMedia(name)
	if err != nil {
		return err
	}
	for _, m := range media {
		if err := s.rel.Delete(schema.TableScriptMedia, m.ResID); err != nil {
			return err
		}
		if err := s.blobs.Release(m.Ref); err != nil {
			return err
		}
	}
	var b relstore.Batch
	b.Delete(schema.TableScripts, name)
	return s.rel.ApplyThen(&b, func() {
		if ix := s.ContentIndex(); ix != nil {
			ix.RemoveScript(name)
		}
	})
}

// ResidentBytes reports the document-layer and BLOB-layer bytes this
// station holds for one implementation. Shared BLOBs count once per
// reference here; physical disk use is the blob store's business.
func (s *Store) ResidentBytes(url string) (int64, error) {
	var total int64
	html, err := s.HTMLFiles(url)
	if err != nil {
		return 0, err
	}
	for _, f := range html {
		total += int64(len(f.Content))
	}
	progs, err := s.ProgramFiles(url)
	if err != nil {
		return 0, err
	}
	for _, f := range progs {
		total += int64(len(f.Content))
	}
	media, err := s.ImplMedia(url)
	if err != nil {
		return 0, err
	}
	for _, m := range media {
		total += m.Ref.Size
	}
	return total, nil
}

// BundleMedia is one multimedia resource carried inside a bundle.
type BundleMedia struct {
	Name string
	Kind blob.Kind
	Data []byte
}

// Bundle is the transferable closure of one Web document: the script,
// one implementation, its files, its media bytes and its annotations.
// Bundles are what the distribution layer pre-broadcasts down the m-ary
// tree and what on-demand pulls return. The zero Bundle is empty; all
// fields are exported so encoding/gob can move bundles between
// stations.
type Bundle struct {
	Script      Script
	Impl        Implementation
	HTML        []File
	Programs    []File
	Media       []BundleMedia
	Annotations []Annotation
}

// TotalBytes is the transfer size of the bundle: file contents plus
// media bytes plus a small metadata overhead per object.
func (b *Bundle) TotalBytes() int64 {
	const perObjectOverhead = 256
	var total int64
	for _, f := range b.HTML {
		total += int64(len(f.Content)) + perObjectOverhead
	}
	for _, f := range b.Programs {
		total += int64(len(f.Content)) + perObjectOverhead
	}
	for _, m := range b.Media {
		total += int64(len(m.Data)) + perObjectOverhead
	}
	for _, a := range b.Annotations {
		total += int64(len(a.File)) + perObjectOverhead
	}
	return total + perObjectOverhead
}

// ExportBundle assembles the transferable closure of an implementation
// resident on this station.
func (s *Store) ExportBundle(url string) (*Bundle, error) {
	impl, err := s.Implementation(url)
	if err != nil {
		return nil, err
	}
	script, err := s.Script(impl.ScriptName)
	if err != nil {
		return nil, err
	}
	html, err := s.HTMLFiles(url)
	if err != nil {
		return nil, err
	}
	progs, err := s.ProgramFiles(url)
	if err != nil {
		return nil, err
	}
	mediaRefs, err := s.ImplMedia(url)
	if err != nil {
		return nil, err
	}
	var media []BundleMedia
	for _, m := range mediaRefs {
		data, err := s.blobs.Get(m.Ref)
		if err != nil {
			return nil, fmt.Errorf("%w: media %s of %s", ErrNotResident, m.Name, url)
		}
		media = append(media, BundleMedia{Name: m.Name, Kind: m.Kind, Data: data})
	}
	anns, err := s.Annotations(url)
	if err != nil {
		return nil, err
	}
	return &Bundle{
		Script:      script,
		Impl:        impl,
		HTML:        html,
		Programs:    progs,
		Media:       media,
		Annotations: anns,
	}, nil
}

// ImportBundle installs a received bundle on this station, creating the
// database, script and implementation when missing, and returns the
// local instance object. Media bytes go through the BLOB layer, so
// resources already resident are shared, not duplicated.
func (s *Store) ImportBundle(b *Bundle, station int, persistent bool) (DocObject, error) {
	// Re-importing a resident instance is a no-op: the content is
	// already here and duplicating the media descriptors would distort
	// the disk accounting.
	if obj, err := s.ObjectByURL(b.Impl.StartingURL); err == nil && obj.Form == schema.FormInstance {
		return obj, nil
	}
	if err := s.ensureScaffold(b.Script, b.Impl); err != nil {
		return DocObject{}, err
	}
	// The document-layer files land in one batch: one lock acquisition
	// over the two file tables and one WAL append for the whole bundle,
	// so a broadcast of N pages costs the same locking as one page.
	var files relstore.Batch
	for _, f := range b.HTML {
		s.queueHTML(&files, b.Impl.StartingURL, f.Path, f.Content)
	}
	for _, f := range b.Programs {
		s.queueProgram(&files, b.Impl.StartingURL, f.Path, f.Language, f.Content)
	}
	err := s.rel.ApplyThen(&files, func() {
		ix := s.ContentIndex()
		if ix == nil {
			return
		}
		for _, f := range b.HTML {
			ix.IndexHTML(b.Impl.StartingURL, f.Path, f.Content)
		}
		for _, f := range b.Programs {
			ix.IndexProgram(b.Impl.StartingURL, f.Path, f.Language, f.Content)
		}
	})
	if err != nil {
		return DocObject{}, err
	}
	for _, m := range b.Media {
		if _, err := s.AttachImplMedia(b.Impl.StartingURL, m.Name, m.Kind, m.Data); err != nil {
			return DocObject{}, err
		}
	}
	for _, a := range b.Annotations {
		if !s.rel.Exists(schema.TableAnnotations, a.Name) {
			if err := s.SaveAnnotation(a); err != nil {
				return DocObject{}, err
			}
		}
	}
	// An existing reference for this URL upgrades to an instance;
	// otherwise a fresh instance object is recorded.
	if obj, err := s.ObjectByURL(b.Impl.StartingURL); err == nil {
		if obj.Form == schema.FormReference {
			err := s.rel.Update(schema.TableDocObjects, obj.ID, relstore.Row{
				"form":       schema.FormInstance,
				"persistent": persistent,
				"station":    int64(station),
			})
			if err != nil {
				return DocObject{}, err
			}
			return s.Object(obj.ID)
		}
		return obj, nil
	}
	return s.NewInstance(b.Impl.StartingURL, station, persistent)
}
