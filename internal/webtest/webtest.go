// Package webtest implements the Web document testing subsystem the
// paper attaches to every implementation: white-box testing (exhaustive
// traversal of the page graph) and black-box testing (a random walk
// driven by recorded windowing messages), producing the TestRecord and
// BugReport rows of section 3 — bad URLs, missing objects, redundant
// objects and inconsistencies — plus the course-complexity estimate the
// introduction raises as a research question.
package webtest

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/docdb"
	"repro/internal/htmlmini"
)

// Findings is the raw outcome of one analysis pass over an
// implementation.
type Findings struct {
	StartingURL string
	// VisitedPages are the page paths reachable from index.html.
	VisitedPages []string
	// BadURLs are internal link targets that resolve to no stored page.
	BadURLs []string
	// MissingObjects are asset references with no stored media resource
	// or page behind them.
	MissingObjects []string
	// RedundantObjects are stored pages and media never referenced by
	// any reachable page.
	RedundantObjects []string
	// Inconsistencies are structural defects: pages without titles,
	// duplicate titles, or an entry page that is absent.
	Inconsistencies []string
	// Messages is the traversal transcript (the "Web traversal
	// messages" of the TestRecord table).
	Messages []string
}

// Clean reports whether the findings contain no defects.
func (f *Findings) Clean() bool {
	return len(f.BadURLs) == 0 && len(f.MissingObjects) == 0 &&
		len(f.RedundantObjects) == 0 && len(f.Inconsistencies) == 0
}

// Complexity is the course-complexity estimate for an implementation:
// the paper asks "how do we estimate the complexity of a course"; we
// answer with graph and media metrics, including the cyclomatic number
// E - N + 2P of the page graph.
type Complexity struct {
	Pages      int
	Links      int
	AssetRefs  int
	MediaBytes int64
	MaxDepth   int // BFS depth of the deepest reachable page
	Components int // weakly-connected components among stored pages
	Cyclomatic int // E - N + 2P over the reachable page graph
}

// Suite runs tests over one document store.
type Suite struct {
	Store *docdb.Store
	// Entry is the path of the entry page; defaults to index.html.
	Entry string
}

func (s *Suite) entry() string {
	if s.Entry != "" {
		return s.Entry
	}
	return "index.html"
}

// pageGraph loads the implementation's pages, parsed.
func (s *Suite) pageGraph(url string) (map[string]htmlmini.Doc, error) {
	files, err := s.Store.HTMLFiles(url)
	if err != nil {
		return nil, err
	}
	pages := make(map[string]htmlmini.Doc, len(files))
	for _, f := range files {
		pages[f.Path] = htmlmini.Parse(f.Content)
	}
	return pages, nil
}

// WhiteBox exhaustively traverses the implementation's page graph from
// the entry page, validating every link and asset reference against the
// stored document objects.
func (s *Suite) WhiteBox(url string) (*Findings, error) {
	pages, err := s.pageGraph(url)
	if err != nil {
		return nil, err
	}
	mediaRefs, err := s.Store.ImplMedia(url)
	if err != nil {
		return nil, err
	}
	mediaByName := make(map[string]bool, len(mediaRefs))
	for _, m := range mediaRefs {
		mediaByName[m.Name] = true
	}
	progs, err := s.Store.ProgramFiles(url)
	if err != nil {
		return nil, err
	}
	progByPath := make(map[string]bool, len(progs))
	for _, p := range progs {
		progByPath[p.Path] = true
	}

	f := &Findings{StartingURL: url}
	entry := s.entry()
	if _, ok := pages[entry]; !ok {
		f.Inconsistencies = append(f.Inconsistencies, fmt.Sprintf("entry page %s is absent", entry))
		return f, nil
	}

	visited := map[string]bool{}
	usedAssets := map[string]bool{}
	badURLs := map[string]bool{}
	missing := map[string]bool{}
	queue := []string{entry}
	visited[entry] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		f.Messages = append(f.Messages, "open "+cur)
		doc := pages[cur]
		for _, link := range doc.Links {
			if htmlmini.IsExternal(link) {
				f.Messages = append(f.Messages, "skip external "+link)
				continue
			}
			target := htmlmini.Normalize(link)
			if target == "" {
				continue
			}
			if _, ok := pages[target]; ok {
				if !visited[target] {
					visited[target] = true
					queue = append(queue, target)
					f.Messages = append(f.Messages, "follow "+target)
				}
				continue
			}
			badURLs[target] = true
		}
		for _, asset := range doc.Assets {
			name := htmlmini.Normalize(asset)
			usedAssets[name] = true
			if !mediaByName[name] && !progByPath[name] {
				missing[name] = true
			}
		}
	}

	// Redundant objects: stored pages never reached and media never
	// referenced by a reachable page.
	for path := range pages {
		if !visited[path] {
			f.RedundantObjects = append(f.RedundantObjects, path)
		}
	}
	for _, m := range mediaRefs {
		if !usedAssets[m.Name] {
			f.RedundantObjects = append(f.RedundantObjects, m.Name)
		}
	}

	// Inconsistencies: untitled and duplicate-titled reachable pages.
	titles := map[string][]string{}
	for path := range visited {
		doc := pages[path]
		if doc.Title == "" {
			f.Inconsistencies = append(f.Inconsistencies, "page "+path+" has no title")
			continue
		}
		titles[doc.Title] = append(titles[doc.Title], path)
	}
	for title, paths := range titles {
		if len(paths) > 1 {
			sort.Strings(paths)
			f.Inconsistencies = append(f.Inconsistencies,
				fmt.Sprintf("title %q duplicated across %v", title, paths))
		}
	}

	f.VisitedPages = sortedKeys(visited)
	f.BadURLs = sortedKeys(badURLs)
	f.MissingObjects = sortedKeys(missing)
	sort.Strings(f.RedundantObjects)
	sort.Strings(f.Inconsistencies)
	return f, nil
}

// Local validates a single page — the "local" testing scope of the
// TestRecord table — checking only that page's links and asset
// references without traversing the rest of the course.
func (s *Suite) Local(url, path string) (*Findings, error) {
	pages, err := s.pageGraph(url)
	if err != nil {
		return nil, err
	}
	f := &Findings{StartingURL: url}
	doc, ok := pages[path]
	if !ok {
		f.Inconsistencies = append(f.Inconsistencies, fmt.Sprintf("page %s is absent", path))
		return f, nil
	}
	mediaRefs, err := s.Store.ImplMedia(url)
	if err != nil {
		return nil, err
	}
	mediaByName := make(map[string]bool, len(mediaRefs))
	for _, m := range mediaRefs {
		mediaByName[m.Name] = true
	}
	f.Messages = append(f.Messages, "open "+path)
	f.VisitedPages = []string{path}
	badURLs := map[string]bool{}
	missing := map[string]bool{}
	for _, link := range doc.Links {
		if htmlmini.IsExternal(link) {
			continue
		}
		target := htmlmini.Normalize(link)
		if target == "" {
			continue
		}
		if _, ok := pages[target]; !ok {
			badURLs[target] = true
		} else {
			f.Messages = append(f.Messages, "check "+target)
		}
	}
	for _, asset := range doc.Assets {
		name := htmlmini.Normalize(asset)
		if !mediaByName[name] {
			missing[name] = true
		}
	}
	if doc.Title == "" {
		f.Inconsistencies = append(f.Inconsistencies, "page "+path+" has no title")
	}
	f.BadURLs = sortedKeys(badURLs)
	f.MissingObjects = sortedKeys(missing)
	return f, nil
}

// BlackBox performs a random walk of the given number of steps from the
// entry page, the way a student clicking through the course would,
// recording the windowing messages and any bad URL encountered. The
// walk restarts from the entry page at dead ends.
func (s *Suite) BlackBox(url string, steps int, seed int64) (*Findings, error) {
	pages, err := s.pageGraph(url)
	if err != nil {
		return nil, err
	}
	f := &Findings{StartingURL: url}
	entry := s.entry()
	if _, ok := pages[entry]; !ok {
		f.Inconsistencies = append(f.Inconsistencies, fmt.Sprintf("entry page %s is absent", entry))
		return f, nil
	}
	rng := rand.New(rand.NewSource(seed))
	visited := map[string]bool{entry: true}
	badURLs := map[string]bool{}
	cur := entry
	f.Messages = append(f.Messages, "open "+entry)
	for i := 0; i < steps; i++ {
		var internal []string
		for _, link := range pages[cur].Links {
			if !htmlmini.IsExternal(link) {
				if t := htmlmini.Normalize(link); t != "" {
					internal = append(internal, t)
				}
			}
		}
		if len(internal) == 0 {
			cur = entry
			f.Messages = append(f.Messages, "restart "+entry)
			continue
		}
		next := internal[rng.Intn(len(internal))]
		if _, ok := pages[next]; !ok {
			badURLs[next] = true
			f.Messages = append(f.Messages, "dead link "+next)
			cur = entry
			continue
		}
		cur = next
		visited[cur] = true
		f.Messages = append(f.Messages, "click "+cur)
	}
	f.VisitedPages = sortedKeys(visited)
	f.BadURLs = sortedKeys(badURLs)
	return f, nil
}

// Coverage is the fraction of stored pages a findings set visited.
func (s *Suite) Coverage(url string, f *Findings) (float64, error) {
	files, err := s.Store.HTMLFiles(url)
	if err != nil {
		return 0, err
	}
	if len(files) == 0 {
		return 0, nil
	}
	return float64(len(f.VisitedPages)) / float64(len(files)), nil
}

// Complexity computes the course-complexity metrics of an
// implementation.
func (s *Suite) Complexity(url string) (Complexity, error) {
	pages, err := s.pageGraph(url)
	if err != nil {
		return Complexity{}, err
	}
	mediaRefs, err := s.Store.ImplMedia(url)
	if err != nil {
		return Complexity{}, err
	}
	var c Complexity
	c.Pages = len(pages)
	for _, m := range mediaRefs {
		c.MediaBytes += m.Ref.Size
	}
	// Build the internal link graph among stored pages.
	adj := make(map[string][]string, len(pages))
	for path, doc := range pages {
		c.AssetRefs += len(doc.Assets)
		for _, link := range doc.Links {
			if htmlmini.IsExternal(link) {
				continue
			}
			t := htmlmini.Normalize(link)
			if _, ok := pages[t]; ok {
				adj[path] = append(adj[path], t)
				c.Links++
			}
		}
	}
	// BFS depth from the entry.
	entry := s.entry()
	if _, ok := pages[entry]; ok {
		depth := map[string]int{entry: 0}
		queue := []string{entry}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if depth[cur] > c.MaxDepth {
				c.MaxDepth = depth[cur]
			}
			for _, next := range adj[cur] {
				if _, seen := depth[next]; !seen {
					depth[next] = depth[cur] + 1
					queue = append(queue, next)
				}
			}
		}
	}
	// Weakly-connected components over all stored pages.
	undirected := make(map[string][]string, len(pages))
	for from, tos := range adj {
		for _, to := range tos {
			undirected[from] = append(undirected[from], to)
			undirected[to] = append(undirected[to], from)
		}
	}
	seen := map[string]bool{}
	for path := range pages {
		if seen[path] {
			continue
		}
		c.Components++
		stack := []string{path}
		seen[path] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range undirected[cur] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
	}
	c.Cyclomatic = c.Links - c.Pages + 2*c.Components
	return c, nil
}

// Report runs a white-box pass and persists its TestRecord (scope
// "global") plus, when defects were found, a BugReport, returning both
// names. The bug name is empty for a clean course.
func (s *Suite) Report(url, qaEngineer string, seq int) (testName, bugName string, err error) {
	impl, err := s.Store.Implementation(url)
	if err != nil {
		return "", "", err
	}
	f, err := s.WhiteBox(url)
	if err != nil {
		return "", "", err
	}
	testName = fmt.Sprintf("test-%s-%04d", impl.ScriptName, seq)
	err = s.Store.RecordTest(docdb.TestRecord{
		Name:        testName,
		ScriptName:  impl.ScriptName,
		StartingURL: url,
		Scope:       "global",
		Messages:    f.Messages,
	})
	if err != nil {
		return "", "", err
	}
	if f.Clean() {
		return testName, "", nil
	}
	bugName = fmt.Sprintf("bug-%s-%04d", impl.ScriptName, seq)
	inconsistency := ""
	if len(f.Inconsistencies) > 0 {
		inconsistency = f.Inconsistencies[0]
		if len(f.Inconsistencies) > 1 {
			inconsistency = fmt.Sprintf("%s (+%d more)", inconsistency, len(f.Inconsistencies)-1)
		}
	}
	err = s.Store.FileBugReport(docdb.BugReport{
		Name:             bugName,
		TestName:         testName,
		QAEngineer:       qaEngineer,
		Procedure:        "white-box traversal from " + s.entry(),
		Description:      fmt.Sprintf("%d bad URLs, %d missing objects, %d redundant objects", len(f.BadURLs), len(f.MissingObjects), len(f.RedundantObjects)),
		BadURLs:          f.BadURLs,
		MissingObjects:   f.MissingObjects,
		Inconsistency:    inconsistency,
		RedundantObjects: f.RedundantObjects,
	})
	if err != nil {
		return "", "", err
	}
	return testName, bugName, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
