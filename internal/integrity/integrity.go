// Package integrity maintains the paper's referential integrity diagram
// (section 3): a labeled graph over the Web document object kinds where
// each link carries a reference multiplicity — "+" for one-or-more, "*"
// for zero-or-more. When a source object is updated the system triggers
// alert messages along every outgoing link so the user revisits the
// dependent objects: "if a script SCI is updated, its corresponding
// implementations should be updated, which further triggers the changes
// of one or more HTML programs, zero or more multimedia resources, and
// some control programs."
package integrity

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Multiplicity is the reference multiplicity on a diagram link.
type Multiplicity int

// Multiplicities: One is an implicit single reference, Plus is the
// paper's "+" (one or more), Star is the paper's "*" (zero or more).
const (
	One Multiplicity = iota + 1
	Plus
	Star
)

// String renders the superscript notation used in the paper.
func (m Multiplicity) String() string {
	switch m {
	case One:
		return "1"
	case Plus:
		return "+"
	case Star:
		return "*"
	default:
		return fmt.Sprintf("Multiplicity(%d)", int(m))
	}
}

// Link is one labeled edge of the diagram.
type Link struct {
	From    string // source object kind
	To      string // destination object kind
	Label   string
	Mult    Multiplicity
	Message string // alert message template (fmt with source id, target id)
}

// Diagram errors.
var (
	ErrUnknownKind = errors.New("integrity: unknown object kind")
	ErrDupLink     = errors.New("integrity: duplicate link")
)

// Diagram is the referential integrity diagram. It is safe for
// concurrent reads after construction.
type Diagram struct {
	nodes map[string]bool
	links map[string][]Link // keyed by From
}

// NewDiagram returns an empty diagram.
func NewDiagram() *Diagram {
	return &Diagram{nodes: make(map[string]bool), links: make(map[string][]Link)}
}

// AddNode registers an object kind.
func (d *Diagram) AddNode(kind string) {
	d.nodes[kind] = true
}

// AddLink registers a labeled edge between two known kinds.
func (d *Diagram) AddLink(l Link) error {
	if !d.nodes[l.From] {
		return fmt.Errorf("%w: %s", ErrUnknownKind, l.From)
	}
	if !d.nodes[l.To] {
		return fmt.Errorf("%w: %s", ErrUnknownKind, l.To)
	}
	for _, existing := range d.links[l.From] {
		if existing.To == l.To && existing.Label == l.Label {
			return fmt.Errorf("%w: %s -[%s]-> %s", ErrDupLink, l.From, l.Label, l.To)
		}
	}
	if l.Message == "" {
		l.Message = fmt.Sprintf("%s %%s changed; review %s %%s", l.From, l.To)
	}
	d.links[l.From] = append(d.links[l.From], l)
	return nil
}

// Links returns the outgoing links of a kind.
func (d *Diagram) Links(kind string) []Link {
	out := make([]Link, len(d.links[kind]))
	copy(out, d.links[kind])
	return out
}

// Kinds returns the registered kinds, sorted.
func (d *Diagram) Kinds() []string {
	out := make([]string, 0, len(d.nodes))
	for k := range d.nodes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Resolver finds the concrete dependent objects of a given object along
// one kind of link. Implementations query the document database.
type Resolver interface {
	// Dependents returns the ids of targetKind objects that reference
	// the (kind, id) object.
	Dependents(kind, id, targetKind string) ([]string, error)
}

// Alert is one update notice produced by propagation.
type Alert struct {
	ID         int
	SourceKind string
	SourceID   string
	TargetKind string
	TargetID   string
	Label      string
	Mult       Multiplicity
	Message    string
	Depth      int // 1 = direct dependent, 2 = dependent of dependent, ...
}

// Propagate walks the diagram breadth-first from an updated object and
// returns one alert per affected dependent object. Each (kind, id) pair
// is visited once, so diagrams with converging or cyclic links
// terminate.
func (d *Diagram) Propagate(r Resolver, kind, id string) ([]Alert, error) {
	if !d.nodes[kind] {
		return nil, fmt.Errorf("%w: %s", ErrUnknownKind, kind)
	}
	type item struct {
		kind, id string
		depth    int
	}
	var alerts []Alert
	visited := map[string]bool{kind + "\x00" + id: true}
	queue := []item{{kind: kind, id: id}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range d.links[cur.kind] {
			deps, err := r.Dependents(cur.kind, cur.id, l.To)
			if err != nil {
				return nil, err
			}
			for _, depID := range deps {
				key := l.To + "\x00" + depID
				if visited[key] {
					continue
				}
				visited[key] = true
				alerts = append(alerts, Alert{
					SourceKind: cur.kind,
					SourceID:   cur.id,
					TargetKind: l.To,
					TargetID:   depID,
					Label:      l.Label,
					Mult:       l.Mult,
					Message:    fmt.Sprintf(l.Message, cur.id, depID),
					Depth:      cur.depth + 1,
				})
				queue = append(queue, item{kind: l.To, id: depID, depth: cur.depth + 1})
			}
		}
	}
	return alerts, nil
}

// Violation is a multiplicity constraint failure found by Verify.
type Violation struct {
	Kind  string
	ID    string
	Link  Link
	Count int
}

func (v Violation) String() string {
	return fmt.Sprintf("%s %s has %d %s dependents via %q, multiplicity %s requires at least one",
		v.Kind, v.ID, v.Count, v.Link.To, v.Link.Label, v.Link.Mult)
}

// Verify checks the "+" multiplicity constraints for one object: every
// Plus link must resolve to at least one dependent.
func (d *Diagram) Verify(r Resolver, kind, id string) ([]Violation, error) {
	if !d.nodes[kind] {
		return nil, fmt.Errorf("%w: %s", ErrUnknownKind, kind)
	}
	var out []Violation
	for _, l := range d.links[kind] {
		if l.Mult != Plus {
			continue
		}
		deps, err := r.Dependents(kind, id, l.To)
		if err != nil {
			return nil, err
		}
		if len(deps) == 0 {
			out = append(out, Violation{Kind: kind, ID: id, Link: l, Count: 0})
		}
	}
	return out, nil
}

// Queue buffers pending alerts per user until acknowledged, the way the
// paper's system "triggers a message which alerts the user to update
// the destination object".
type Queue struct {
	mu      sync.Mutex
	nextID  int
	pending map[string][]Alert // user -> alerts
}

// NewQueue returns an empty alert queue.
func NewQueue() *Queue {
	return &Queue{pending: make(map[string][]Alert)}
}

// Push delivers alerts to a user's queue, assigning ids.
func (q *Queue) Push(user string, alerts []Alert) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, a := range alerts {
		q.nextID++
		a.ID = q.nextID
		q.pending[user] = append(q.pending[user], a)
	}
}

// Pending lists a user's unacknowledged alerts in delivery order.
func (q *Queue) Pending(user string) []Alert {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Alert, len(q.pending[user]))
	copy(out, q.pending[user])
	return out
}

// Ack removes one alert from a user's queue by id, reporting whether it
// was present.
func (q *Queue) Ack(user string, id int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	alerts := q.pending[user]
	for i, a := range alerts {
		if a.ID == id {
			q.pending[user] = append(alerts[:i], alerts[i+1:]...)
			return true
		}
	}
	return false
}

// AckAll clears a user's queue, returning how many alerts were dropped.
func (q *Queue) AckAll(user string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.pending[user])
	delete(q.pending, user)
	return n
}
