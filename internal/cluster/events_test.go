package cluster

import (
	"testing"
)

func TestCollectEventsGathersWholeTree(t *testing.T) {
	c := newSearchCluster(t, 13, 3)
	// Two events per station — the footprint of a small incident.
	rep, err := c.CollectEvents(7, func(int) int { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 26 || rep.Covered != 13 {
		t.Fatalf("events=%d covered=%d, want 26/13", rep.Events, rep.Covered)
	}
	if rep.Latency <= 0 || rep.WireBytes <= 0 {
		t.Errorf("report = %+v", rep)
	}
}

// TestCollectEventsCostGrowsWithFootprint: like trace collection (and
// unlike search's bounded top-k merge), event sets concatenate on the
// way up, so the wire cost must scale with the incident's footprint.
func TestCollectEventsCostGrowsWithFootprint(t *testing.T) {
	bytesFor := func(perStation int) int64 {
		c := newSearchCluster(t, 13, 3)
		rep, err := c.CollectEvents(1, func(int) int { return perStation })
		if err != nil {
			t.Fatal(err)
		}
		return rep.WireBytes
	}
	small, large := bytesFor(1), bytesFor(10)
	if large <= small {
		t.Fatalf("10-event collection moved %d bytes, 1-event moved %d; want growth", large, small)
	}
}

func TestCollectEventsGraftsAroundDownStation(t *testing.T) {
	c := newSearchCluster(t, 13, 3)
	if err := c.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	rep, err := c.CollectEvents(5, func(int) int { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	// Station 2's journal is unreadable, but its subtree (5, 6, 7)
	// stays covered through the graft.
	if rep.Events != 12 || rep.Covered != 12 {
		t.Fatalf("events=%d covered=%d, want 12/12 (dead station skipped, subtree covered)", rep.Events, rep.Covered)
	}

	// A down station cannot issue the collection.
	if _, err := c.CollectEvents(2, func(int) int { return 1 }); err == nil {
		t.Fatal("down station issued an event collection")
	}
}
