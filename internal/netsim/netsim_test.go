package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mtree"
)

const mbps10 = 1.25e6 // 10 Mb/s in bytes per second

func TestSingleTransferTiming(t *testing.T) {
	s := New(Sequential)
	a := s.AddNode(1e6, 10*time.Millisecond) // 1 MB/s
	b := s.AddNode(1e6, 10*time.Millisecond)
	var at time.Duration
	if err := s.Transfer(a, b, 1e6, func(now time.Duration) { at = now }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	want := time.Second + 10*time.Millisecond
	if at != want {
		t.Errorf("completion at %v, want %v", at, want)
	}
	if s.BytesSent(a) != 1e6 || s.BytesReceived(b) != 1e6 {
		t.Errorf("accounting: sent=%d recv=%d", s.BytesSent(a), s.BytesReceived(b))
	}
}

func TestSequentialQueueing(t *testing.T) {
	s := New(Sequential)
	a := s.AddNode(1e6, 0)
	b := s.AddNode(1e6, 0)
	c := s.AddNode(1e6, 0)
	var tb, tc time.Duration
	s.Transfer(a, b, 1e6, func(now time.Duration) { tb = now })
	s.Transfer(a, c, 1e6, func(now time.Duration) { tc = now })
	s.Run()
	if tb != time.Second {
		t.Errorf("first transfer at %v, want 1s", tb)
	}
	if tc != 2*time.Second {
		t.Errorf("second transfer at %v, want 2s (queued behind first)", tc)
	}
}

func TestFairShareSplitsUplink(t *testing.T) {
	s := New(FairShare)
	a := s.AddNode(1e6, 0)
	b := s.AddNode(1e6, 0)
	c := s.AddNode(1e6, 0)
	var tb, tc time.Duration
	s.Transfer(a, b, 1e6, func(now time.Duration) { tb = now })
	s.Transfer(a, c, 1e6, func(now time.Duration) { tc = now })
	s.Run()
	// Both flows share the 1 MB/s uplink, so both finish around 2s.
	if tb < 1900*time.Millisecond || tb > 2100*time.Millisecond {
		t.Errorf("flow b at %v, want ~2s", tb)
	}
	if tc < 1900*time.Millisecond || tc > 2100*time.Millisecond {
		t.Errorf("flow c at %v, want ~2s", tc)
	}
}

func TestFairShareLateJoinerSlowsFirstFlow(t *testing.T) {
	s := New(FairShare)
	a := s.AddNode(1e6, 0)
	b := s.AddNode(1e6, 0)
	c := s.AddNode(1e6, 0)
	var tb time.Duration
	s.Transfer(a, b, 1e6, func(now time.Duration) { tb = now })
	// Second flow starts at t=0.5s: first flow has 0.5 MB left, now at
	// 0.5 MB/s -> finishes at 1.5s.
	s.After(500*time.Millisecond, func() {
		s.Transfer(a, c, 1e6, nil)
	})
	s.Run()
	if tb < 1400*time.Millisecond || tb > 1600*time.Millisecond {
		t.Errorf("flow b at %v, want ~1.5s", tb)
	}
}

func TestSelfTransferImmediate(t *testing.T) {
	s := New(Sequential)
	a := s.AddNode(1e6, time.Second)
	fired := false
	s.Transfer(a, a, 1e9, func(now time.Duration) {
		fired = true
		if now != 0 {
			t.Errorf("self transfer at %v, want 0", now)
		}
	})
	s.Run()
	if !fired {
		t.Fatal("self transfer never completed")
	}
}

func TestUnknownNodesRejected(t *testing.T) {
	s := New(Sequential)
	a := s.AddNode(1, 0)
	if err := s.Transfer(a, 99, 1, nil); err == nil {
		t.Error("unknown receiver accepted")
	}
	if err := s.Transfer(99, a, 1, nil); err == nil {
		t.Error("unknown sender accepted")
	}
}

func TestAtAndAfterOrdering(t *testing.T) {
	s := New(Sequential)
	var order []int
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.At(time.Second, func() { order = append(order, 1) })
	s.At(time.Second, func() { order = append(order, 11) }) // FIFO at same instant
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 11 || order[2] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	s := New(Sequential)
	fired := 0
	s.At(time.Second, func() { fired++ })
	s.At(3*time.Second, func() { fired++ })
	now := s.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if now != 2*time.Second {
		t.Errorf("now = %v", now)
	}
	s.Run()
	if fired != 2 {
		t.Errorf("fired after Run = %d", fired)
	}
}

// simulateTreeBroadcast performs a store-and-forward broadcast of one
// bundle down the m-ary tree and returns the completion time.
func simulateTreeBroadcast(t *testing.T, total, m int, bundle int64) time.Duration {
	t.Helper()
	s := New(Sequential)
	ids := s.AddNodes(total, mbps10, 5*time.Millisecond)
	var last time.Duration
	var forward func(station int)
	forward = func(station int) {
		kids, err := mtree.Children(station, m, total)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range kids {
			k := k
			s.Transfer(ids[station-1], ids[k-1], bundle, func(now time.Duration) {
				if now > last {
					last = now
				}
				forward(k)
			})
		}
	}
	forward(1)
	s.Run()
	return last
}

func TestTreeBroadcastMatchesAnalyticModel(t *testing.T) {
	const total, m = 63, 2
	const bundle = 4 << 20
	got := simulateTreeBroadcast(t, total, m, bundle)
	lm := mtree.LinkModel{Latency: 5 * time.Millisecond, BytesPerSecond: mbps10}
	want, err := mtree.BroadcastTime(total, m, bundle, lm)
	if err != nil {
		t.Fatal(err)
	}
	// The analytic model counts rounds; the simulation pipelines rounds
	// across subtrees, so it can only be equal or slightly faster, and
	// never slower.
	if got > want {
		t.Errorf("simulated %v slower than analytic bound %v", got, want)
	}
	if got < want/2 {
		t.Errorf("simulated %v implausibly fast vs %v", got, want)
	}
}

func TestTreeBroadcastBeatsChainAndStar(t *testing.T) {
	const total = 31
	const bundle = 1 << 20
	chain := simulateTreeBroadcast(t, total, 1, bundle)
	tree := simulateTreeBroadcast(t, total, 3, bundle)
	star := simulateTreeBroadcast(t, total, total-1, bundle)
	if tree >= chain {
		t.Errorf("tree %v not faster than chain %v", tree, chain)
	}
	if tree >= star {
		t.Errorf("tree %v not faster than star %v", tree, star)
	}
}

func TestBroadcastDeliversEveryStationOnce(t *testing.T) {
	const total, m = 40, 3
	s := New(Sequential)
	ids := s.AddNodes(total, mbps10, 0)
	got := make(map[int]int)
	var forward func(station int)
	forward = func(station int) {
		kids, _ := mtree.Children(station, m, total)
		for _, k := range kids {
			k := k
			s.Transfer(ids[station-1], ids[k-1], 1000, func(time.Duration) {
				got[k]++
				forward(k)
			})
		}
	}
	forward(1)
	s.Run()
	if len(got) != total-1 {
		t.Fatalf("delivered to %d stations, want %d", len(got), total-1)
	}
	for k, n := range got {
		if n != 1 {
			t.Errorf("station %d received %d copies", k, n)
		}
	}
	if s.Stats().TotalBytes != int64(1000*(total-1)) {
		t.Errorf("total bytes = %d", s.Stats().TotalBytes)
	}
}

func TestZeroSizeTransferCompletes(t *testing.T) {
	s := New(Sequential)
	a := s.AddNode(1e6, time.Hour)
	b := s.AddNode(1e6, time.Hour)
	fired := false
	s.Transfer(a, b, 0, func(time.Duration) { fired = true })
	s.Run()
	if !fired {
		t.Error("zero-size transfer never completed")
	}
}

// Property: completion callbacks always fire in non-decreasing
// simulated time, whatever the transfer sizes.
func TestQuickEventTimeMonotonic(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := New(Sequential)
		ids := s.AddNodes(4, 1e6, time.Millisecond)
		var last time.Duration
		ok := true
		for i, sz := range sizes {
			if i >= 50 {
				break
			}
			from := ids[i%3]
			to := ids[(i+1)%4]
			s.Transfer(from, to, int64(sz)+1, func(at time.Duration) {
				if at < last {
					ok = false
				}
				last = at
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
