package docdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/relstore"
)

// newConcStore builds a store whose clock is safe for concurrent use
// (the newStore helper's counting clock is not).
func newConcStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	fixed := time.Date(1999, 4, 21, 9, 0, 0, 0, time.UTC)
	s.Now = func() time.Time { return fixed }
	return s
}

// TestConcurrentCheckOutSingleWinner races many users for one component:
// the transactional CheckOut must admit exactly one of them.
func TestConcurrentCheckOutSingleWinner(t *testing.T) {
	s := newConcStore(t)
	const racers = 8
	var wg sync.WaitGroup
	var won, lost sync.Map
	for r := 0; r < racers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", r)
			id, err := s.CheckOut("script", "intro-cs", user)
			switch {
			case err == nil:
				won.Store(user, id)
			case errors.Is(err, ErrCheckedOut):
				lost.Store(user, true)
			default:
				t.Errorf("%s: unexpected error %v", user, err)
			}
		}(r)
	}
	wg.Wait()
	winners := 0
	won.Range(func(_, _ any) bool { winners++; return true })
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1", winners)
	}
}

// TestConcurrentCheckInVersions closes many checkouts of distinct
// components in parallel; every history must end up with version 1..n
// with no duplicates, proving the version bump is race-free.
func TestConcurrentCheckInVersions(t *testing.T) {
	s := newConcStore(t)
	const rounds = 5
	const objects = 4
	for round := 0; round < rounds; round++ {
		ids := make([]string, objects)
		for o := 0; o < objects; o++ {
			id, err := s.CheckOut("script", fmt.Sprintf("obj%d", o), fmt.Sprintf("u%d", o))
			if err != nil {
				t.Fatal(err)
			}
			ids[o] = id
		}
		var wg sync.WaitGroup
		for o := 0; o < objects; o++ {
			wg.Add(1)
			go func(o int) {
				defer wg.Done()
				if err := s.CheckIn(ids[o], "done"); err != nil {
					t.Error(err)
				}
			}(o)
		}
		wg.Wait()
	}
	for o := 0; o < objects; o++ {
		hist, err := s.History("script", fmt.Sprintf("obj%d", o))
		if err != nil {
			t.Fatal(err)
		}
		if len(hist) != rounds {
			t.Fatalf("obj%d history = %d entries, want %d", o, len(hist), rounds)
		}
		for i, v := range hist {
			if v.Version != int64(i+1) {
				t.Errorf("obj%d version[%d] = %d, want %d", o, i, v.Version, i+1)
			}
		}
	}
}

// TestSyncIDsAfterRestore simulates a process restart over restored
// state: a second Store opened over the same engine starts its ID
// counter at zero, and without SyncIDs its first checkout would collide
// with the restored co-000001 row.
func TestSyncIDsAfterRestore(t *testing.T) {
	first := newConcStore(t)
	if _, err := first.CheckOut("script", "obj-a", "alice"); err != nil {
		t.Fatal(err)
	}
	restarted, err := Open(first.Rel(), first.Blobs())
	if err != nil {
		t.Fatal(err)
	}
	restarted.Now = first.Now
	if err := restarted.SyncIDs(); err != nil {
		t.Fatal(err)
	}
	id, err := restarted.CheckOut("script", "obj-b", "bob")
	if err != nil {
		t.Fatalf("checkout after restore: %v", err)
	}
	if id != "co-000002" {
		t.Errorf("id = %s, want co-000002", id)
	}
}

// TestConcurrentBundleImportAndReaders imports many bundles in parallel
// (each import lands its files through one relstore Batch) while
// readers walk the catalog, and checks every import arrived whole. Run
// with -race.
func TestConcurrentBundleImportAndReaders(t *testing.T) {
	src := newConcStore(t)
	if err := src.CreateDatabase(Database{Name: "mmu"}); err != nil {
		t.Fatal(err)
	}
	const courses = 8
	bundles := make([]*Bundle, courses)
	for i := 0; i < courses; i++ {
		name := fmt.Sprintf("course%d", i)
		url := fmt.Sprintf("http://mmu/%s/v1", name)
		if err := src.CreateScript(Script{Name: name, DBName: "mmu", Author: "Shih"}); err != nil {
			t.Fatal(err)
		}
		if err := src.AddImplementation(Implementation{StartingURL: url, ScriptName: name, Author: "Shih"}); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 4; p++ {
			page := fmt.Sprintf("page%d.html", p)
			if err := src.PutHTML(url, page, []byte(fmt.Sprintf("<html>%s/%s</html>", name, page))); err != nil {
				t.Fatal(err)
			}
		}
		if err := src.PutProgram(url, "quiz.java", "java", []byte("class Quiz {}")); err != nil {
			t.Fatal(err)
		}
		b, err := src.ExportBundle(url)
		if err != nil {
			t.Fatal(err)
		}
		bundles[i] = b
	}

	dst := newConcStore(t)
	var wg sync.WaitGroup
	for i := 0; i < courses; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := dst.ImportBundle(bundles[i], 2, false); err != nil {
				t.Errorf("import %d: %v", i, err)
			}
		}(i)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := dst.Scripts("mmu"); err != nil && !errors.Is(err, relstore.ErrNoTable) {
					t.Errorf("reader: %v", err)
					return
				}
				url := fmt.Sprintf("http://mmu/course%d/v1", (r+i)%courses)
				if _, err := dst.HTMLFiles(url); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	for i := 0; i < courses; i++ {
		url := fmt.Sprintf("http://mmu/course%d/v1", i)
		html, err := dst.HTMLFiles(url)
		if err != nil {
			t.Fatal(err)
		}
		if len(html) != 4 {
			t.Errorf("course%d: %d HTML files, want 4", i, len(html))
		}
		progs, err := dst.ProgramFiles(url)
		if err != nil {
			t.Fatal(err)
		}
		if len(progs) != 1 {
			t.Errorf("course%d: %d program files, want 1", i, len(progs))
		}
	}
}
