package media

import (
	"bytes"
	"testing"

	"repro/internal/blob"
)

func TestDeterministicBySeed(t *testing.T) {
	g1 := NewGenerator(42)
	g2 := NewGenerator(42)
	for i := 0; i < 5; i++ {
		r1 := g1.Generate(blob.KindImage)
		r2 := g2.Generate(blob.KindImage)
		if r1.Name != r2.Name || !bytes.Equal(r1.Data, r2.Data) {
			t.Fatalf("iteration %d differs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	r1 := NewGenerator(1).Generate(blob.KindAudio)
	r2 := NewGenerator(2).Generate(blob.KindAudio)
	if bytes.Equal(r1.Data, r2.Data) {
		t.Fatal("different seeds produced identical content")
	}
}

func TestSizesWithinProfileBounds(t *testing.T) {
	g := NewGenerator(7)
	bounds := map[blob.Kind][2]int64{
		blob.KindVideo:     {512 << 10, 64 << 20},
		blob.KindAudio:     {64 << 10, 8 << 20},
		blob.KindImage:     {4 << 10, 2 << 20},
		blob.KindAnimation: {32 << 10, 8 << 20},
		blob.KindMIDI:      {1 << 10, 256 << 10},
	}
	for kind, b := range bounds {
		for i := 0; i < 50; i++ {
			s := g.Size(kind)
			if s < b[0] || s > b[1] {
				t.Fatalf("%v size %d out of [%d, %d]", kind, s, b[0], b[1])
			}
		}
	}
}

func TestVideoLargerThanMIDIOnAverage(t *testing.T) {
	g := NewGenerator(11)
	var video, midi int64
	for i := 0; i < 50; i++ {
		video += g.Size(blob.KindVideo)
		midi += g.Size(blob.KindMIDI)
	}
	if video <= midi*10 {
		t.Errorf("video total %d not ≫ midi total %d", video, midi)
	}
}

func TestScaleDown(t *testing.T) {
	full := NewGenerator(3)
	scaled := NewGenerator(3)
	scaled.ScaleDown = 1024
	s1 := full.Size(blob.KindVideo)
	s2 := scaled.Size(blob.KindVideo)
	if s2 >= s1 {
		t.Errorf("scaled size %d not smaller than %d", s2, s1)
	}
	if s2 < 16 {
		t.Errorf("scaled size %d below floor", s2)
	}
}

func TestMagicHeaders(t *testing.T) {
	g := NewGenerator(5)
	g.ScaleDown = 4096
	r := g.Generate(blob.KindVideo)
	if !bytes.HasPrefix(r.Data, []byte("SVID")) {
		t.Errorf("video magic missing: % x", r.Data[:8])
	}
	r = g.Generate(blob.KindMIDI)
	if !bytes.HasPrefix(r.Data, []byte("SMID")) {
		t.Errorf("midi magic missing: % x", r.Data[:8])
	}
}

func TestGenerateMixCountsAndNames(t *testing.T) {
	g := NewGenerator(9)
	g.ScaleDown = 65536
	mix := g.GenerateMix(1, 2, 3, 0, 1)
	if len(mix) != 7 {
		t.Fatalf("len = %d", len(mix))
	}
	counts := map[blob.Kind]int{}
	names := map[string]bool{}
	for _, r := range mix {
		counts[r.Kind]++
		if names[r.Name] {
			t.Fatalf("duplicate name %s", r.Name)
		}
		names[r.Name] = true
	}
	if counts[blob.KindVideo] != 1 || counts[blob.KindAudio] != 2 ||
		counts[blob.KindImage] != 3 || counts[blob.KindMIDI] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestUnknownKindUsesOtherProfile(t *testing.T) {
	g := NewGenerator(13)
	g.ScaleDown = 1024
	r := g.Generate(blob.Kind(77))
	if len(r.Data) == 0 {
		t.Fatal("no data for unknown kind")
	}
	if !bytes.HasPrefix(r.Data, []byte("SOTH")) {
		t.Errorf("unknown kind should use other magic: % x", r.Data[:8])
	}
}
