package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/atomicio"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// The run report: everything a CI artifact needs to judge a load run
// without re-running it — per-op-class latency/throughput aggregates,
// per-station accounting scraped over the Stats RPC, and a pass/fail
// verdict per SLO. Written as BENCH_load_<profile>.json next to the
// other BENCH_* artifacts.

// Report is the harness's JSON output.
type Report struct {
	Profile   string  `json:"profile"`
	Seed      int64   `json:"seed"`
	TimeScale float64 `json:"time_scale"`
	Stations  int     `json:"stations"`
	M         int     `json:"m"`
	Watermark int     `json:"watermark"`
	Courses   int     `json:"courses"`

	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`

	Ops map[string]OpSummary `json:"ops"`

	// SlowTraces are each phase's slowest successful ops with their
	// distributed trace IDs — feed one to `webdocctl trace` while the
	// fabric is still up to reconstruct the hop tree.
	SlowTraces []SlowTrace `json:"slow_traces,omitempty"`

	// ResolvedTraces are the slow exemplars' hop trees and correlated
	// journal events, collected fabric-wide before teardown when the
	// run failed an SLO — a failed p99 ships with its slowest
	// traversals pre-resolved instead of trace IDs that died with the
	// fabric.
	ResolvedTraces []ResolvedTrace `json:"resolved_traces,omitempty"`

	SLOs []SLOResult `json:"slos"`
	Pass bool        `json:"pass"`

	StationStats []StationStat `json:"station_stats,omitempty"`
}

// SLOResult is one objective's verdict. Threshold and Actual share the
// metric's unit: milliseconds for percentiles, a fraction for
// error-rate, ops per simulated second for throughput.
type SLOResult struct {
	Op        string  `json:"op"`
	Metric    string  `json:"metric"`
	Threshold float64 `json:"threshold"`
	Actual    float64 `json:"actual"`
	Pass      bool    `json:"pass"`
}

// ResolvedTrace is one slow exemplar with its reconstruction: the
// fabric-wide span set (hop tree) and the journal events correlated to
// the trace (grafts mid-traversal, mostly).
type ResolvedTrace struct {
	Phase     string      `json:"phase"`
	Op        string      `json:"op"`
	TraceID   string      `json:"trace_id"`
	LatencyMs float64     `json:"latency_ms"`
	Spans     []obs.Span  `json:"spans,omitempty"`
	Events    []obs.Event `json:"events,omitempty"`
	Err       string      `json:"err,omitempty"`
}

// ResolveSlowTraces collects each slow exemplar's hop tree and
// correlated events from a still-live target. A collection failure is
// recorded on the row, not fatal: a partially resolved report beats
// none, and the run already failed.
func ResolveSlowTraces(t Target, slow []SlowTrace) []ResolvedTrace {
	var out []ResolvedTrace
	for _, st := range slow {
		rt := ResolvedTrace{Phase: st.Phase, Op: st.Op, TraceID: st.TraceID, LatencyMs: st.LatencyMs}
		id, err := strconv.ParseUint(st.TraceID, 16, 64)
		if err != nil || id == 0 {
			rt.Err = fmt.Sprintf("bad trace ID %q", st.TraceID)
		} else if spans, events, err := t.CollectTrace(id); err != nil {
			rt.Err = err.Error()
		} else {
			rt.Spans, rt.Events = spans, events
		}
		out = append(out, rt)
	}
	return out
}

// StationStat is one station's Stats snapshot after the run.
type StationStat struct {
	Pos           int              `json:"pos"`
	Ops           map[string]int64 `json:"ops,omitempty"`
	BytesIn       int64            `json:"bytes_in"`
	BytesOut      int64            `json:"bytes_out"`
	Objects       int64            `json:"objects"`
	BlobObjects   int              `json:"blob_objects"`
	PhysicalBytes int64            `json:"physical_bytes"`
	LogicalBytes  int64            `json:"logical_bytes"`
	IndexDocs     int              `json:"index_docs"`
	IndexPostings int              `json:"index_postings"`
}

// stationStat flattens a Stats RPC reply into the report row.
func stationStat(s cluster.StatsReply) StationStat {
	return StationStat{
		Pos:           s.Pos,
		Ops:           s.Ops,
		BytesIn:       s.BytesIn,
		BytesOut:      s.BytesOut,
		Objects:       s.Objects,
		BlobObjects:   s.BlobObjects,
		PhysicalBytes: s.PhysicalBytes,
		LogicalBytes:  s.LogicalBytes,
		IndexDocs:     s.IndexDocs,
		IndexPostings: s.IndexPostings,
	}
}

// EvaluateSLOs judges summaries against the profile's objectives.
// Unchecked thresholds produce no row; an op with an SLO but no
// recorded traffic fails (the profile promised load that never ran).
func EvaluateSLOs(slos []SLO, ops map[string]OpSummary) (results []SLOResult, pass bool) {
	pass = true
	for _, s := range slos {
		sum, ok := ops[s.Op]
		check := func(metric string, threshold, actual float64, good bool) {
			r := SLOResult{Op: s.Op, Metric: metric, Threshold: threshold, Actual: actual, Pass: good && ok && sum.Count > 0}
			if !r.Pass {
				pass = false
			}
			results = append(results, r)
		}
		if s.P50 > 0 {
			check("p50_ms", ms(s.P50), sum.P50Ms, sum.P50Ms <= ms(s.P50))
		}
		if s.P95 > 0 {
			check("p95_ms", ms(s.P95), sum.P95Ms, sum.P95Ms <= ms(s.P95))
		}
		if s.P99 > 0 {
			check("p99_ms", ms(s.P99), sum.P99Ms, sum.P99Ms <= ms(s.P99))
		}
		if s.MaxErrorRate >= 0 {
			check("error_rate", s.MaxErrorRate, sum.ErrorRate, sum.ErrorRate <= s.MaxErrorRate)
		}
		if s.MinThroughput > 0 {
			check("min_sim_ops_per_sec", s.MinThroughput, sum.SimOpsPerSec, sum.SimOpsPerSec >= s.MinThroughput)
		}
	}
	return results, pass
}

// BuildReport assembles the report from a finished run.
func BuildReport(p *Profile, col *Collector, wall time.Duration, stats []cluster.StatsReply) *Report {
	sim := p.SimDuration()
	ops := col.Summarize(wall, sim)
	slos, pass := EvaluateSLOs(p.SLOs, ops)
	r := &Report{
		Profile:     p.Name,
		Seed:        p.Seed,
		TimeScale:   p.TimeScale,
		Stations:    p.Fabric.Stations,
		M:           p.Fabric.M,
		Watermark:   p.Fabric.Watermark,
		Courses:     p.Courses.Count,
		SimSeconds:  sim.Seconds(),
		WallSeconds: wall.Seconds(),
		Ops:         ops,
		SlowTraces:  col.SlowTraces(),
		SLOs:        slos,
		Pass:        pass,
	}
	for _, s := range stats {
		r.StationStats = append(r.StationStats, stationStat(s))
	}
	sort.Slice(r.StationStats, func(i, j int) bool { return r.StationStats[i].Pos < r.StationStats[j].Pos })
	return r
}

// ReportFileName is the artifact name for a profile, matching the
// BENCH_* convention the CI uploads.
func ReportFileName(profileName string) string {
	return fmt.Sprintf("BENCH_load_%s.json", profileName)
}

// WriteReport marshals the report to path (indent + trailing newline,
// like the other BENCH artifacts). The write is temp-then-rename so a
// run killed mid-report never leaves a torn JSON artifact for CI to
// upload — readers see the previous complete report or the new one.
func WriteReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	})
}
