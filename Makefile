GO ?= go

# The targets below are exactly what .github/workflows/ci.yml runs, so a
# green `make ci` locally means a green CI run.

.PHONY: build vet fmt-check test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/relstore/... ./internal/docdb/...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

ci: build vet fmt-check test race
