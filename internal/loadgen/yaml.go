package loadgen

import (
	"fmt"
	"sort"
	"strings"
)

// A minimal YAML subset, hand-rolled because the repo takes no
// dependencies: block mappings, block sequences, scalars, `#`
// comments, optional single/double quotes around scalars. That covers
// every load profile this package reads while keeping the grammar
// small enough to specify exactly:
//
//   - indentation is spaces only, a block's lines share one indent
//   - `key: value` is a mapping entry; bare `key:` opens a nested
//     block (deeper indent) or holds an empty scalar
//   - `- value` is a sequence item; `- key: value` starts a mapping
//     item whose further keys sit two columns past the dash
//
// Anchors, aliases, flow syntax, multi-line scalars and tabs are
// rejected with line-numbered errors rather than half-supported.

type yamlKind int

const (
	yamlScalar yamlKind = iota
	yamlMap
	yamlList
)

// yamlNode is one parsed value. Mapping keys keep document order so an
// encode/parse round trip is stable.
type yamlNode struct {
	kind   yamlKind
	scalar string
	keys   []string
	fields map[string]*yamlNode
	items  []*yamlNode
	line   int
}

type yamlLine struct {
	indent int
	text   string // content with indent stripped, comments removed
	num    int    // 1-based source line
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses one document into its root node (a mapping for
// every profile, but any block value is accepted).
func parseYAML(src []byte) (*yamlNode, error) {
	p := &yamlParser{}
	for i, raw := range strings.Split(string(src), "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed, indent with spaces", i+1)
		}
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" || trimmed == "---" {
			continue
		}
		indent := len(text) - len(strings.TrimLeft(text, " "))
		p.lines = append(p.lines, yamlLine{indent: indent, text: trimmed, num: i + 1})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	root, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yaml line %d: unexpected indent %d", l.num, l.indent)
	}
	return root, nil
}

// stripComment removes a trailing `# ...` comment, respecting quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ') {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the run of lines indented exactly at indent.
func (p *yamlParser) parseBlock(indent int) (*yamlNode, error) {
	first := p.lines[p.pos]
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

func (p *yamlParser) parseMap(indent int) (*yamlNode, error) {
	n := &yamlNode{kind: yamlMap, fields: map[string]*yamlNode{}, line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, fmt.Errorf("yaml line %d: unexpected indent %d (block is at %d)", l.num, l.indent, indent)
			}
			break
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("yaml line %d: sequence item inside a mapping block", l.num)
		}
		key, rest, err := splitKey(l.text, l.num)
		if err != nil {
			return nil, err
		}
		if _, dup := n.fields[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		var val *yamlNode
		if rest != "" {
			val = &yamlNode{kind: yamlScalar, scalar: unquote(rest), line: l.num}
		} else if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			val, err = p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
		} else {
			val = &yamlNode{kind: yamlScalar, scalar: "", line: l.num}
		}
		n.keys = append(n.keys, key)
		n.fields[key] = val
	}
	return n, nil
}

func (p *yamlParser) parseList(indent int) (*yamlNode, error) {
	n := &yamlNode{kind: yamlList, line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, fmt.Errorf("yaml line %d: unexpected indent %d (sequence is at %d)", l.num, l.indent, indent)
			}
			break
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		switch {
		case rest == "":
			// `-` alone: the item is the nested block below.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("yaml line %d: empty sequence item", l.num)
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, item)
		case isMapEntry(rest):
			// `- key: value`: a mapping item whose remaining keys are
			// indented two past the dash. Rewrite the current line as
			// that first entry and parse the mapping at the deeper
			// indent.
			p.lines[p.pos] = yamlLine{indent: indent + 2, text: rest, num: l.num}
			item, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, item)
		default:
			p.pos++
			n.items = append(n.items, &yamlNode{kind: yamlScalar, scalar: unquote(rest), line: l.num})
		}
	}
	return n, nil
}

// splitKey splits "key: value" / "key:"; the key must look like an
// identifier so arbitrary scalars containing colons fail loudly.
func splitKey(s string, num int) (key, rest string, err error) {
	i := strings.Index(s, ":")
	if i < 0 {
		return "", "", fmt.Errorf("yaml line %d: expected 'key: value', got %q", num, s)
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return "", "", fmt.Errorf("yaml line %d: missing space after ':' in %q", num, s)
	}
	key = strings.TrimSpace(s[:i])
	if key == "" || strings.ContainsAny(key, " \"'") {
		return "", "", fmt.Errorf("yaml line %d: bad mapping key %q", num, key)
	}
	return key, strings.TrimSpace(s[i+1:]), nil
}

// isMapEntry reports whether a sequence item's text begins a mapping
// entry rather than a plain scalar.
func isMapEntry(s string) bool {
	if strings.HasPrefix(s, "'") || strings.HasPrefix(s, "\"") {
		return false
	}
	i := strings.Index(s, ":")
	if i <= 0 {
		return false
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return false
	}
	return !strings.ContainsAny(s[:i], " \"'")
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return s[1 : len(s)-1]
		}
	}
	return s
}

// --- accessors -------------------------------------------------------

func (n *yamlNode) get(key string) *yamlNode {
	if n == nil || n.kind != yamlMap {
		return nil
	}
	return n.fields[key]
}

// checkKeys errors on mapping keys outside the allowed set — load
// profiles are config, and a typoed SLO key silently not enforcing is
// worse than a parse failure.
func (n *yamlNode) checkKeys(ctx string, allowed ...string) error {
	if n == nil || n.kind != yamlMap {
		return nil
	}
	ok := map[string]bool{}
	for _, k := range allowed {
		ok[k] = true
	}
	var bad []string
	for _, k := range n.keys {
		if !ok[k] {
			bad = append(bad, k)
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("yaml line %d: unknown %s key(s) %s (allowed: %s)",
			n.line, ctx, strings.Join(bad, ", "), strings.Join(allowed, ", "))
	}
	return nil
}

// --- encoder ---------------------------------------------------------

// encodeYAML renders a node back to the same subset the parser reads,
// completing the round trip the profile tests exercise.
func encodeYAML(n *yamlNode) []byte {
	var b strings.Builder
	encodeNode(&b, n, 0)
	return []byte(b.String())
}

func encodeNode(b *strings.Builder, n *yamlNode, indent int) {
	pad := strings.Repeat(" ", indent)
	switch n.kind {
	case yamlMap:
		for _, k := range n.keys {
			v := n.fields[k]
			if v.kind == yamlScalar {
				fmt.Fprintf(b, "%s%s:%s\n", pad, k, scalarOut(v.scalar))
			} else {
				fmt.Fprintf(b, "%s%s:\n", pad, k)
				encodeNode(b, v, indent+2)
			}
		}
	case yamlList:
		for _, item := range n.items {
			switch item.kind {
			case yamlScalar:
				fmt.Fprintf(b, "%s-%s\n", pad, scalarOut(item.scalar))
			case yamlMap:
				// First key inline after the dash, the rest two deeper.
				for i, k := range item.keys {
					v := item.fields[k]
					lead := pad + "  "
					if i == 0 {
						lead = pad + "- "
					}
					if v.kind == yamlScalar {
						fmt.Fprintf(b, "%s%s:%s\n", lead, k, scalarOut(v.scalar))
					} else {
						fmt.Fprintf(b, "%s%s:\n", lead, k)
						encodeNode(b, v, indent+4)
					}
				}
			default:
				fmt.Fprintf(b, "%s-\n", pad)
				encodeNode(b, item, indent+2)
			}
		}
	case yamlScalar:
		fmt.Fprintf(b, "%s%s\n", pad, strings.TrimPrefix(scalarOut(n.scalar), " "))
	}
}

func scalarOut(s string) string {
	if s == "" {
		return ""
	}
	if strings.ContainsAny(s, "#:'\"") || s != strings.TrimSpace(s) {
		return " \"" + s + "\""
	}
	return " " + s
}
