// Package transport is a length-prefixed gob-over-TCP request/response
// layer: the wire protocol between the paper's three tiers (Web client
// front ends, the class administrator middle tier, and the database
// stations). It offers named-method dispatch on the server and
// concurrent-safe calls with response correlation on the client — the
// slice of ODBC/HTTP plumbing the 1999 system obtained from its
// platform.
package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Protocol limits.
const (
	// MaxFrame bounds a single message; bundles with full-size video
	// fit comfortably.
	MaxFrame = 256 << 20

	// StreamChunk is the body size of one streamed-response frame. A
	// handler that returns an io.Reader has its bytes relayed in
	// chunks of this size (see Client.CallStream), so arbitrarily
	// large payloads — checkpoint images crossing the wire during
	// rejoin catch-up — never need a single arbitrarily large frame.
	StreamChunk = 1 << 20
)

// Transport errors. ErrBadHeader and ErrChecksum are distinct on
// purpose: the first means a frame's structure could not be parsed
// (bad magic, version, or field layout), the second that a
// structurally complete frame failed integrity verification (CRC32C
// mismatch on a binary frame, or an undecodable legacy gob body).
// Neither means the peer is unreachable — see Unreachable.
var (
	ErrClosed    = errors.New("transport: connection closed")
	ErrTooLarge  = errors.New("transport: frame exceeds limit")
	ErrNoMethod  = errors.New("transport: no such method")
	ErrBadHeader = errors.New("transport: corrupt frame header")
	ErrChecksum  = errors.New("transport: frame failed checksum")
	ErrTimeout   = errors.New("transport: call timed out")
	ErrPeerDown  = errors.New("transport: peer marked down")
)

// Unreachable reports whether an error means the peer could not be
// reached at the transport level (dead connection, dial failure,
// timeout, tripped breaker) as opposed to a server-side error the peer
// answered with. Failure-aware callers — the distribution fabric's
// tree repair — use it to decide between routing around a station and
// surfacing the peer's own answer.
func Unreachable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrTimeout) || errors.Is(err, ErrPeerDown) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// envelope is the wire message (see frame.go for the binary frame
// layout). More marks a streamed-response chunk: the response
// continues in further frames with the same ID, and the stream ends
// with a frame whose More is false (or whose Err reports a mid-stream
// failure). TraceID/Parent carry the distributed-tracing context
// hop-by-hop: a non-zero TraceID makes the serving hop record a span
// whose parent is the caller's span (Parent).
type envelope struct {
	ID      uint64
	Method  string
	IsResp  bool
	More    bool
	Err     string
	Body    []byte
	TraceID uint64
	Parent  uint64
}

// Marshal encodes a payload value for an envelope body.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes an envelope body into the caller's value.
func Unmarshal(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// Handler serves one method: decode the request with the provided
// function, return the response value (gob-encoded for the caller) or
// an error.
type Handler func(decode func(any) error) (any, error)

// Ctx carries per-request observability state into handlers registered
// with HandleCtx: the span the server opened for a traced request (nil
// for untraced ones — every method tolerates that).
type Ctx struct {
	span *obs.ActiveSpan
}

// Span returns the request's span, nil when the request is untraced.
func (c *Ctx) Span() *obs.ActiveSpan {
	if c == nil {
		return nil
	}
	return c.span
}

// Trace returns the context downstream calls should propagate: this
// hop's span as parent. Zero when untraced.
func (c *Ctx) Trace() obs.TraceContext { return c.Span().Context() }

// Annotate appends a note to the request's span, if any.
func (c *Ctx) Annotate(format string, args ...any) { c.Span().Annotate(format, args...) }

// CtxHandler is a Handler that also receives the request Ctx. Only
// methods that propagate traces downstream need it; everything else
// registers a plain Handler and still gets histograms and a span for
// the hop itself.
type CtxHandler func(ctx *Ctx, decode func(any) error) (any, error)

// Server dispatches requests to named handlers. Each connection gets a
// reader goroutine; each request runs in its own goroutine, so slow
// handlers do not stall the connection.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]CtxHandler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool

	// observer, when set, receives a latency-histogram observation for
	// every dispatched request and a span for every traced one. An
	// atomic pointer so benchmarks can toggle observability on a live
	// server and measure its overhead.
	observer atomic.Pointer[obs.Observer]

	// Wire accounting, scraped by the Stats RPC of the station layer:
	// every byte read from or written to an accepted connection, and
	// the number of requests dispatched per method. The byte counters
	// are atomics (they tick on every frame); the per-method map has
	// its own mutex so counting a call never contends with the
	// handler-table RLock on the hot dispatch path.
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
	statMu   sync.Mutex
	calls    map[string]int64
}

// ServerStats is a point-in-time accounting snapshot of a server's
// wire activity.
type ServerStats struct {
	BytesIn  int64            // bytes read from accepted connections
	BytesOut int64            // bytes written to accepted connections
	Calls    map[string]int64 // requests dispatched, per method
}

// NewServer returns a server with no handlers.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]CtxHandler),
		conns:    make(map[net.Conn]struct{}),
		calls:    make(map[string]int64),
	}
}

// SetObserver installs (or, with nil, removes) the server's observer.
func (s *Server) SetObserver(o *obs.Observer) { s.observer.Store(o) }

// Observer returns the installed observer, nil when none.
func (s *Server) Observer() *obs.Observer { return s.observer.Load() }

// Stats returns the server's wire accounting so far. The Calls map is
// a copy, safe to retain.
func (s *Server) Stats() ServerStats {
	st := ServerStats{BytesIn: s.bytesIn.Load(), BytesOut: s.bytesOut.Load()}
	s.statMu.Lock()
	st.Calls = make(map[string]int64, len(s.calls))
	for m, n := range s.calls {
		st.Calls[m] = n
	}
	s.statMu.Unlock()
	return st
}

func (s *Server) noteCall(method string) {
	s.statMu.Lock()
	s.calls[method]++
	s.statMu.Unlock()
}

// countingConn threads the server's byte counters under every read
// and write of an accepted connection.
type countingConn struct {
	net.Conn
	srv *Server
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.srv.bytesIn.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.srv.bytesOut.Add(int64(n))
	return n, err
}

// Handle registers a method handler; it panics on duplicate names
// (registration is static wiring).
func (s *Server) Handle(method string, h Handler) {
	s.HandleCtx(method, func(_ *Ctx, decode func(any) error) (any, error) {
		return h(decode)
	})
}

// HandleCtx registers a context-aware handler (see CtxHandler); it
// panics on duplicate names.
func (s *Server) HandleCtx(method string, h CtxHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.handlers[method]; ok {
		panic("transport: duplicate handler for " + method)
	}
	s.handlers[method] = h
}

// Listen starts accepting on the address (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	cc := &countingConn{Conn: conn, srv: s}
	var writeMu sync.Mutex
	for {
		env, err := readFrame(cc)
		if err != nil {
			return
		}
		s.noteCall(env.Method)
		s.mu.RLock()
		h, ok := s.handlers[env.Method]
		s.mu.RUnlock()
		go func(env *envelope) {
			// Per-request observability: every dispatch lands in the
			// method's latency histogram; a traced request (non-zero
			// TraceID) additionally records a span parented to the
			// caller's hop.
			o := s.Observer()
			span := o.Begin(obs.TraceContext{TraceID: env.TraceID, SpanID: env.Parent}, env.Method)
			start := time.Now()
			resp := &envelope{ID: env.ID, Method: env.Method, IsResp: true}
			if !ok {
				resp.Err = ErrNoMethod.Error() + ": " + env.Method
			} else {
				out, err := h(&Ctx{span: span}, func(v any) error { return Unmarshal(env.Body, v) })
				if err != nil {
					resp.Err = err.Error()
				} else if r, streamed := out.(io.Reader); streamed {
					// A handler returning a reader streams its bytes
					// in StreamChunk frames; the caller receives them
					// through CallStream.
					span.Annotate("streamed response")
					n := streamResponse(cc, &writeMu, env, r)
					o.Observe(env.Method, time.Since(start), false)
					span.AddBytes(int64(len(env.Body)) + n)
					span.End(nil)
					return
				} else if out != nil {
					body, err := Marshal(out)
					if err != nil {
						resp.Err = err.Error()
					} else {
						resp.Body = body
					}
				}
			}
			o.Observe(env.Method, time.Since(start), resp.Err != "")
			span.AddBytes(int64(len(env.Body) + len(resp.Body)))
			if resp.Err != "" {
				span.End(errors.New(resp.Err))
			} else {
				span.End(nil)
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			writeFrame(cc, resp) // a write failure also ends the reader
		}(env)
	}
}

// streamResponse relays a handler's reader to the caller as a chunk
// sequence: zero or more More-flagged frames followed by a bare final
// frame (or an Err frame on a mid-stream read failure). The reader is
// closed when it implements io.Closer. Each chunk is encoded under the
// connection's write lock, so chunks from concurrent handlers
// interleave at frame granularity without corruption. Returns the
// body bytes relayed, for span accounting.
func streamResponse(conn net.Conn, writeMu *sync.Mutex, env *envelope, r io.Reader) int64 {
	if c, ok := r.(io.Closer); ok {
		defer c.Close()
	}
	send := func(resp *envelope) bool {
		writeMu.Lock()
		defer writeMu.Unlock()
		return writeFrame(conn, resp) == nil
	}
	var total int64
	buf := make([]byte, StreamChunk)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			total += int64(n)
			if !send(&envelope{ID: env.ID, Method: env.Method, IsResp: true, More: true, Body: buf[:n]}) {
				return total
			}
		}
		switch {
		case errors.Is(err, io.EOF):
			send(&envelope{ID: env.ID, Method: env.Method, IsResp: true})
			return total
		case err != nil:
			send(&envelope{ID: env.ID, Method: env.Method, IsResp: true, Err: err.Error()})
			return total
		}
	}
}

// Close stops accepting and closes every live connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is one connection to a server; Call is safe for concurrent
// use.
type Client struct {
	conn    net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *envelope
	closed  bool
	readErr error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, pending: make(map[uint64]chan *envelope)}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		env, err := readFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.closed = true
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[env.ID]
		if ok && !env.More {
			// A More chunk keeps the correlation entry alive; the
			// stream's final (or error) frame retires it.
			delete(c.pending, env.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- env
		}
	}
}

// Call invokes a method: req is gob-encoded, the response decoded into
// resp (which may be nil for fire-and-forget semantics with an
// acknowledgment).
func (c *Client) Call(method string, req, resp any) error {
	err, _ := c.do(method, req, resp, 0, obs.TraceContext{})
	return err
}

// CallTimeout is Call with a deadline: if the response has not arrived
// within d the call fails with ErrTimeout (a zero or negative d means no
// deadline). A late response is discarded by the correlation table.
func (c *Client) CallTimeout(method string, req, resp any, d time.Duration) error {
	err, _ := c.do(method, req, resp, d, obs.TraceContext{})
	return err
}

// CallTrace is CallTimeout carrying a trace context: the serving hop
// records a span for tc's trace, parented to tc's span. A zero tc is
// an ordinary untraced call.
func (c *Client) CallTrace(method string, req, resp any, tc obs.TraceContext, d time.Duration) error {
	err, _ := c.do(method, req, resp, d, tc)
	return err
}

// do runs one call and additionally reports whether the connection is
// still trustworthy for reuse: true when the call completed with a
// server response (even an error response), false on any
// transport-level failure. The pool uses the flag to decide between
// parking and discarding the connection.
func (c *Client) do(method string, req, resp any, d time.Duration, tc obs.TraceContext) (error, bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed, false
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *envelope, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	body, err := Marshal(req)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err, true
	}
	env := &envelope{ID: id, Method: method, Body: body, TraceID: tc.TraceID, Parent: tc.SpanID}
	c.writeMu.Lock()
	err = writeFrame(c.conn, env)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err, false
	}

	var timeout <-chan time.Time
	if d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case got, ok := <-ch:
		if !ok {
			return fmt.Errorf("%w: %v", ErrClosed, c.err()), false
		}
		if got.Err != "" {
			return errors.New(got.Err), true
		}
		if resp != nil {
			return Unmarshal(got.Body, resp), true
		}
		return nil, true
	case <-timeout:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("%w: %s after %v", ErrTimeout, method, d), false
	}
}

// CallStream invokes a method whose response is a byte stream (the
// server handler returned an io.Reader): chunks are written to w as
// they arrive and the total byte count returned. d bounds the wait for
// each frame, not the whole transfer (zero or negative means no
// deadline). The consumer applies backpressure to the connection —
// start large pulls on their own pooled connection, as Pool.CallStream
// does.
func (c *Client) CallStream(method string, req any, w io.Writer, d time.Duration) (int64, error) {
	n, err, _ := c.doStream(method, req, w, d)
	return n, err
}

// doStream runs one streamed call, additionally reporting whether the
// connection remains trustworthy for reuse (the stream ended with the
// server's final frame, even an error frame).
func (c *Client) doStream(method string, req any, w io.Writer, d time.Duration) (int64, error, bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed, false
	}
	c.nextID++
	id := c.nextID
	// Chunks buffer ahead of the consumer; a full buffer blocks the
	// read loop, which is the backpressure.
	ch := make(chan *envelope, 16)
	c.pending[id] = ch
	c.mu.Unlock()
	drop := func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}
	// abandon gives up on a stream that is still arriving (consumer
	// write failure, inactivity timeout). The correlation entry stays
	// registered and a drainer consumes the remaining chunks: the read
	// loop may already be blocked sending into the full buffer, and
	// deleting the entry would strand that send — wedging every call
	// on this connection — so the entry is only retired by the
	// stream's own final frame or by connection teardown (which closes
	// the channel).
	abandon := func() {
		go func() {
			for env := range ch {
				if !env.More {
					return
				}
			}
		}()
	}

	body, err := Marshal(req)
	if err != nil {
		drop()
		return 0, err, true
	}
	env := &envelope{ID: id, Method: method, Body: body}
	c.writeMu.Lock()
	err = writeFrame(c.conn, env)
	c.writeMu.Unlock()
	if err != nil {
		drop()
		return 0, err, false
	}

	var timer *time.Timer
	var timeout <-chan time.Time
	if d > 0 {
		timer = time.NewTimer(d)
		defer timer.Stop()
		timeout = timer.C
	}
	var total int64
	for {
		select {
		case got, ok := <-ch:
			if !ok {
				return total, fmt.Errorf("%w: %v", ErrClosed, c.err()), false
			}
			if got.Err != "" {
				return total, errors.New(got.Err), true
			}
			if len(got.Body) > 0 {
				n, werr := w.Write(got.Body)
				total += int64(n)
				if werr != nil {
					if got.More {
						abandon()
					}
					return total, werr, false
				}
			}
			if !got.More {
				return total, nil, true
			}
			if timer != nil {
				if !timer.Stop() {
					<-timer.C
				}
				timer.Reset(d)
			}
		case <-timeout:
			abandon()
			return total, fmt.Errorf("%w: %s after %v of stream silence", ErrTimeout, method, d), false
		}
	}
}

func (c *Client) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// Close terminates the connection; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}
