package cluster

import (
	"testing"
)

// TestStatsRPC exercises the unified snapshot over the wire: the
// counters must reflect the RPCs that were just served, and the
// store-level numbers must match the seeded course.
func TestStatsRPC(t *testing.T) {
	_, addr, _ := startNode(t, 3, true)
	rs, err := DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	// Generate some accounted traffic before the scrape.
	if _, err := rs.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.SQL("SELECT script_name FROM scripts"); err != nil {
		t.Fatal(err)
	}

	stats, err := rs.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pos != 3 {
		t.Errorf("Pos = %d", stats.Pos)
	}
	if stats.Ops["Ping"] != 1 || stats.Ops["SQL"] != 1 || stats.Ops["Stats"] != 1 {
		t.Errorf("Ops = %v", stats.Ops)
	}
	if stats.BytesIn == 0 || stats.BytesOut == 0 {
		t.Errorf("byte counters = %d in / %d out", stats.BytesIn, stats.BytesOut)
	}
	if stats.Tables == 0 || stats.Objects != 1 {
		t.Errorf("tables/objects = %d/%d", stats.Tables, stats.Objects)
	}
	if stats.BlobObjects == 0 || stats.PhysicalBytes == 0 {
		t.Errorf("blob stats = %d objects, %d bytes", stats.BlobObjects, stats.PhysicalBytes)
	}
	if stats.Durable {
		t.Error("in-memory station reports Durable")
	}
	if stats.Indexed {
		t.Error("station without an index reports Indexed")
	}

	// A second scrape sees the first one in the counters — the RPC
	// accounts for itself.
	again, err := rs.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if again.Ops["Stats"] != 2 {
		t.Errorf("second scrape Ops[Stats] = %d", again.Ops["Stats"])
	}
	if again.BytesOut <= stats.BytesOut {
		t.Errorf("BytesOut did not grow: %d -> %d", stats.BytesOut, again.BytesOut)
	}
}

// TestStatsNowMatchesRPC: the in-process accessor and the wire reply
// agree on the store-level numbers (wire counters naturally differ).
func TestStatsNowMatchesRPC(t *testing.T) {
	n, addr, _ := startNode(t, 1, true)
	rs, err := DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	viaRPC, err := rs.Stats()
	if err != nil {
		t.Fatal(err)
	}
	local := n.StatsNow()
	if local.Objects != viaRPC.Objects || local.Tables != viaRPC.Tables ||
		local.BlobObjects != viaRPC.BlobObjects || local.PhysicalBytes != viaRPC.PhysicalBytes {
		t.Errorf("local %+v disagrees with wire %+v", local, viaRPC)
	}
}
