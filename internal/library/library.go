// Package library implements the Web document virtual library of
// section 5: instructors add or delete document instances (lecture
// notes as Web pages); students browse and retrieve course materials by
// matching keywords, instructor names and course numbers/titles, and
// check pages out and in. The check-in/check-out ledger feeds the
// assessment of student study performance.
package library

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/docdb"
	"repro/internal/relstore"
	"repro/internal/schema"
)

// Library errors.
var (
	ErrNotInstructor = errors.New("library: operation requires instructor privilege")
	ErrNotInLibrary  = errors.New("library: document is not in the library")
	ErrAlreadyAdded  = errors.New("library: document is already in the library")
	ErrNotOut        = errors.New("library: checkout not open")
)

// kindLibrary tags library checkout rows in the shared ledger table.
const kindLibrary = "library_checkout"

// Entry is one catalog record.
type Entry struct {
	ScriptName   string
	Title        string
	CourseNumber string
	Instructor   string
	Keywords     []string
	AddedBy      string
	Added        time.Time
}

// Library is the Web-savvy virtual library over one document store.
type Library struct {
	store *docdb.Store

	mu          sync.RWMutex
	instructors map[string]bool
	entries     map[string]Entry           // script name -> entry
	index       map[string]map[string]bool // token -> script names
}

// New returns an empty library over the store.
func New(store *docdb.Store) *Library {
	return &Library{
		store:       store,
		instructors: make(map[string]bool),
		entries:     make(map[string]Entry),
		index:       make(map[string]map[string]bool),
	}
}

// RegisterInstructor grants instructor privilege (add/delete documents).
func (l *Library) RegisterInstructor(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.instructors[name] = true
}

// IsInstructor reports whether the user holds instructor privilege.
func (l *Library) IsInstructor(name string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.instructors[name]
}

// Add places a script's document instance into the library catalog.
func (l *Library) Add(scriptName, courseNumber, instructor string) error {
	if !l.IsInstructor(instructor) {
		return fmt.Errorf("%w: %s", ErrNotInstructor, instructor)
	}
	sc, err := l.store.Script(scriptName)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.entries[scriptName]; ok {
		return fmt.Errorf("%w: %s", ErrAlreadyAdded, scriptName)
	}
	e := Entry{
		ScriptName:   scriptName,
		Title:        sc.Description,
		CourseNumber: courseNumber,
		Instructor:   sc.Author,
		Keywords:     sc.Keywords,
		AddedBy:      instructor,
		Added:        l.store.Now(),
	}
	l.entries[scriptName] = e
	for _, tok := range entryTokens(e) {
		set := l.index[tok]
		if set == nil {
			set = make(map[string]bool)
			l.index[tok] = set
		}
		set[scriptName] = true
	}
	return nil
}

// Remove deletes a document from the catalog (instructor privilege).
func (l *Library) Remove(scriptName, instructor string) error {
	if !l.IsInstructor(instructor) {
		return fmt.Errorf("%w: %s", ErrNotInstructor, instructor)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[scriptName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotInLibrary, scriptName)
	}
	delete(l.entries, scriptName)
	for _, tok := range entryTokens(e) {
		if set := l.index[tok]; set != nil {
			delete(set, scriptName)
			if len(set) == 0 {
				delete(l.index, tok)
			}
		}
	}
	return nil
}

// Catalog lists the library contents sorted by script name.
func (l *Library) Catalog() []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Entry, 0, len(l.entries))
	for _, e := range l.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ScriptName < out[j].ScriptName })
	return out
}

// Query is a browsing request: any combination of keywords, an
// instructor name, and a course number or title fragment.
type Query struct {
	Keywords   []string
	Instructor string
	Course     string // matches course number or title substring
}

// Result is one ranked hit.
type Result struct {
	Entry Entry
	Score int // number of matched query terms
}

// Search returns catalog entries matching every given criterion, ranked
// by the number of matching keywords. Keyword lookup runs on the
// inverted index; instructor and course filters then narrow the
// candidates.
func (l *Library) Search(q Query) []Result {
	l.mu.RLock()
	defer l.mu.RUnlock()

	// Candidate set from the keyword index (nil = all entries when no
	// keywords were given).
	var scores map[string]int
	if len(q.Keywords) > 0 {
		scores = make(map[string]int)
		for _, kw := range q.Keywords {
			for name := range l.index[normalizeToken(kw)] {
				scores[name]++
			}
		}
	} else {
		scores = make(map[string]int, len(l.entries))
		for name := range l.entries {
			scores[name] = 0
		}
	}

	var out []Result
	for name, score := range scores {
		if len(q.Keywords) > 0 && score == 0 {
			continue
		}
		e := l.entries[name]
		if q.Instructor != "" && !strings.EqualFold(e.Instructor, q.Instructor) {
			continue
		}
		if q.Course != "" {
			c := strings.ToLower(q.Course)
			if !strings.Contains(strings.ToLower(e.CourseNumber), c) &&
				!strings.Contains(strings.ToLower(e.Title), c) {
				continue
			}
		}
		out = append(out, Result{Entry: e, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entry.ScriptName < out[j].Entry.ScriptName
	})
	return out
}

// ScanSearch is the unindexed baseline used by the search benchmarks:
// it filters the catalog by substring scanning every entry.
func (l *Library) ScanSearch(q Query) []Result {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Result
	for _, e := range l.entries {
		score := 0
		for _, kw := range q.Keywords {
			want := normalizeToken(kw)
			for _, have := range entryTokens(e) {
				if have == want {
					score++
					break
				}
			}
		}
		if len(q.Keywords) > 0 && score == 0 {
			continue
		}
		if q.Instructor != "" && !strings.EqualFold(e.Instructor, q.Instructor) {
			continue
		}
		if q.Course != "" {
			c := strings.ToLower(q.Course)
			if !strings.Contains(strings.ToLower(e.CourseNumber), c) &&
				!strings.Contains(strings.ToLower(e.Title), c) {
				continue
			}
		}
		out = append(out, Result{Entry: e, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entry.ScriptName < out[j].Entry.ScriptName
	})
	return out
}

// CheckOut opens a library checkout of a document for a student. Any
// number of students may hold the same document, and a student may hold
// any number of documents ("there is no limitation of the number of Web
// pages to be checked out").
func (l *Library) CheckOut(scriptName, student string) (string, error) {
	l.mu.RLock()
	_, ok := l.entries[scriptName]
	l.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotInLibrary, scriptName)
	}
	id := l.store.NewID("lco")
	err := l.store.Rel().Insert(schema.TableCheckouts, relstore.Row{
		"co_id":       id,
		"object_kind": kindLibrary,
		"object_id":   scriptName,
		"user":        student,
		"out_time":    l.store.Now(),
	})
	if err != nil {
		return "", err
	}
	return id, nil
}

// CheckIn closes a library checkout. The validity check and the close
// run in one relstore transaction on the ledger table, so a checkout
// can be closed exactly once even when students race.
func (l *Library) CheckIn(checkoutID string) error {
	tx, err := l.store.Rel().Begin(schema.TableCheckouts)
	if err != nil {
		return err
	}
	row, err := tx.Get(schema.TableCheckouts, checkoutID)
	if err != nil {
		tx.Rollback()
		return err
	}
	if kind, _ := row["object_kind"].(string); kind != kindLibrary {
		tx.Rollback()
		return fmt.Errorf("%w: %s", ErrNotOut, checkoutID)
	}
	if _, closed := row["in_time"].(time.Time); closed {
		tx.Rollback()
		return fmt.Errorf("%w: %s", ErrNotOut, checkoutID)
	}
	if err := tx.Update(schema.TableCheckouts, checkoutID, relstore.Row{"in_time": l.store.Now()}); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Assessment summarizes one student's library activity as the paper's
// study-performance criterion.
type Assessment struct {
	Student       string
	Checkouts     int
	DistinctDocs  int
	Open          int
	TotalDuration time.Duration
	Score         float64
}

// Assess computes a student's assessment from the ledger. The score
// rewards breadth (distinct documents) over raw volume, plus study time
// in hours.
func (l *Library) Assess(student string) (Assessment, error) {
	rows, err := l.store.Rel().Lookup(schema.TableCheckouts, "user", student)
	if err != nil {
		return Assessment{}, err
	}
	a := Assessment{Student: student}
	docs := make(map[string]bool)
	for _, r := range rows {
		if kind, _ := r["object_kind"].(string); kind != kindLibrary {
			continue
		}
		a.Checkouts++
		if doc, ok := r["object_id"].(string); ok {
			docs[doc] = true
		}
		out, _ := r["out_time"].(time.Time)
		if in, closed := r["in_time"].(time.Time); closed {
			a.TotalDuration += in.Sub(out)
		} else {
			a.Open++
		}
	}
	a.DistinctDocs = len(docs)
	a.Score = float64(a.DistinctDocs)*10 + float64(a.Checkouts) + a.TotalDuration.Hours()
	return a, nil
}

// entryTokens derives the index tokens of an entry from its keywords,
// title words, course number, instructor and script name.
func entryTokens(e Entry) []string {
	var toks []string
	add := func(s string) {
		if t := normalizeToken(s); t != "" {
			toks = append(toks, t)
		}
	}
	for _, k := range e.Keywords {
		add(k)
	}
	for _, w := range strings.FieldsFunc(e.Title, isSeparator) {
		add(w)
	}
	add(e.CourseNumber)
	add(e.Instructor)
	add(e.ScriptName)
	return toks
}

func normalizeToken(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

func isSeparator(r rune) bool {
	return !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
}
