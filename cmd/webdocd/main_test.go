package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/docdb"
	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/webtest"
	"repro/internal/workload"
)

var (
	buildBin string
	buildErr error
)

// TestMain builds the webdocd binary once for every subprocess test.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "webdocd-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	buildBin = filepath.Join(dir, "webdocd")
	if out, err := exec.Command("go", "build", "-o", buildBin, ".").CombinedOutput(); err != nil {
		buildErr = fmt.Errorf("building webdocd: %v\n%s", err, out)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// daemonBinary returns the binary built by TestMain.
func daemonBinary(t *testing.T) string {
	t.Helper()
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// startDaemon launches webdocd and parses the bound address from its
// "serving on" banner.
func startDaemon(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "serving on "); i >= 0 {
				rest := line[i+len("serving on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr, cmd
	case <-time.After(10 * time.Second):
		t.Fatal("webdocd did not report a listen address")
		return "", nil
	}
}

// stopDaemon delivers SIGTERM and waits for the orderly shutdown that
// flushes the BLOB snapshot and closes the WAL.
func stopDaemon(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("webdocd did not exit on SIGTERM")
	}
}

// countMedia returns the impl_media rows visible over the station RPC.
func countMedia(t *testing.T, rs *cluster.RemoteStation) int {
	t.Helper()
	reply, err := rs.SQL("SELECT res_id FROM impl_media")
	if err != nil {
		t.Fatal(err)
	}
	return len(reply.Rows)
}

// TestKillRestartPreservesMedia seeds a persistent station, SIGTERMs
// it, restarts it on the same WAL, and checks that both the relational
// rows and the physical media bytes (BLOB sidecar snapshot) survived.
func TestKillRestartPreservesMedia(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := daemonBinary(t)
	wal := filepath.Join(t.TempDir(), "station1.wal")
	spec := workload.DefaultSpec(1)

	addr, cmd := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-pos", "1", "-wal", wal, "-seed-course", "3")
	rs, err := cluster.DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	mediaBefore := countMedia(t, rs)
	if mediaBefore == 0 {
		t.Fatal("seeded station has no media")
	}
	bundleBefore, err := rs.FetchBundle(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	rs.Close()
	stopDaemon(t, cmd)

	// Restart on the same WAL, without reseeding.
	addr2, cmd2 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-pos", "1", "-wal", wal)
	rs2, err := cluster.DialStation(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	if got := countMedia(t, rs2); got != mediaBefore {
		t.Errorf("media rows after restart = %d, want %d", got, mediaBefore)
	}
	// Exporting the bundle walks the BLOB store: it only succeeds when
	// the sidecar snapshot brought the physical bytes back.
	bundleAfter, err := rs2.FetchBundle(spec.URL)
	if err != nil {
		t.Fatalf("bundle after restart: %v", err)
	}
	if got, want := bundleAfter.TotalBytes(), bundleBefore.TotalBytes(); got != want {
		t.Errorf("bundle bytes after restart = %d, want %d", got, want)
	}
	if len(bundleAfter.Media) != len(bundleBefore.Media) {
		t.Errorf("bundle media after restart = %d, want %d", len(bundleAfter.Media), len(bundleBefore.Media))
	}
	for i, m := range bundleAfter.Media {
		if len(m.Data) == 0 {
			t.Errorf("media %d (%s) came back empty", i, m.Name)
		}
	}
	stopDaemon(t, cmd2)
}

// TestSIGKILLAfterCheckpointPreservesState is the no-mercy leg of the
// crash matrix: the daemon is checkpointed over RPC (the webdocctl
// checkpoint verb) and then SIGKILLed — no SIGTERM, no sidecar flush.
// The restart must serve the complete course from the checkpoint
// generation: relational rows AND physical BLOB bytes, which the old
// write-sidecar-only-on-SIGTERM scheme lost on every hard kill.
func TestSIGKILLAfterCheckpointPreservesState(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := daemonBinary(t)
	dataDir := filepath.Join(t.TempDir(), "station1.d")
	spec := workload.DefaultSpec(1)

	addr, cmd := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-pos", "1", "-data", dataDir, "-seed-course", "3")
	rs, err := cluster.DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	mediaBefore := countMedia(t, rs)
	if mediaBefore == 0 {
		t.Fatal("seeded station has no media")
	}
	bundleBefore, err := rs.FetchBundle(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := rs.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint RPC: %v", err)
	}
	if ck.Gen == 0 || ck.Bytes == 0 {
		t.Fatalf("checkpoint reply = %+v", ck)
	}
	rs.Close()
	// SIGKILL: no shutdown path runs at all.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	addr2, cmd2 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-pos", "1", "-data", dataDir)
	rs2, err := cluster.DialStation(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	if got := countMedia(t, rs2); got != mediaBefore {
		t.Errorf("media rows after SIGKILL restart = %d, want %d", got, mediaBefore)
	}
	bundleAfter, err := rs2.FetchBundle(spec.URL)
	if err != nil {
		t.Fatalf("bundle after SIGKILL restart: %v", err)
	}
	if got, want := bundleAfter.TotalBytes(), bundleBefore.TotalBytes(); got != want {
		t.Errorf("bundle bytes after SIGKILL restart = %d, want %d", got, want)
	}
	for i, m := range bundleAfter.Media {
		if len(m.Data) == 0 {
			t.Errorf("media %d (%s) lost its bytes across the SIGKILL", i, m.Name)
		}
	}
	stopDaemon(t, cmd2)
}

// TestLegacyWALMigratesIntoCheckpointStore: a station that last ran
// the old single-file layout restarts under the new binary and keeps
// serving its data, now from the checkpointed directory; the legacy
// files are renamed aside so a further restart cannot double-apply
// them.
func TestLegacyWALMigratesIntoCheckpointStore(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := daemonBinary(t)
	wal := filepath.Join(t.TempDir(), "station1.wal")
	spec := workload.DefaultSpec(1)

	// Fabricate the legacy layout the way the old daemon did: a bare
	// WAL file plus a .blobs sidecar.
	rel := relstore.NewDB()
	blobs := blob.NewStore()
	store, err := docdb.Open(rel, blobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.OpenWAL(wal); err != nil {
		t.Fatal(err)
	}
	legacySpec := workload.DefaultSpec(1)
	legacySpec.Pages = 3
	legacySpec.MediaScaleDown = 4096
	if _, err := workload.BuildCourse(store, legacySpec); err != nil {
		t.Fatal(err)
	}
	if _, err := store.NewInstance(legacySpec.URL, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := rel.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	sidecar, err := os.Create(wal + ".blobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := blobs.Snapshot(sidecar); err != nil {
		t.Fatal(err)
	}
	sidecar.Close()

	addr, cmd := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-pos", "1", "-wal", wal)
	rs, err := cluster.DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := countMedia(t, rs); got == 0 {
		t.Error("migrated station serves no media rows")
	}
	if _, err := rs.FetchBundle(spec.URL); err != nil {
		t.Errorf("bundle after legacy migration: %v", err)
	}
	rs.Close()
	stopDaemon(t, cmd)
	if _, err := os.Stat(wal); !os.IsNotExist(err) {
		t.Error("legacy WAL still in place after migration")
	}
	if _, err := os.Stat(wal + ".migrated"); err != nil {
		t.Errorf("migrated WAL not renamed aside: %v", err)
	}

	// Restart on the same flags: state now comes from the directory.
	addr2, cmd2 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-pos", "1", "-wal", wal)
	rs2, err := cluster.DialStation(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	if got := countMedia(t, rs2); got == 0 {
		t.Error("post-migration restart serves no media rows")
	}
	stopDaemon(t, cmd2)
}

// stationHasPages reports whether the station at addr answers SQL and
// holds at least one html_files row — the readiness probe for
// broadcast delivery, polled via webtest instead of slept on.
func stationHasPages(addr string) bool {
	rs, err := cluster.DialStation(addr)
	if err != nil {
		return false
	}
	defer rs.Close()
	reply, err := rs.SQL("SELECT file_id FROM html_files")
	return err == nil && len(reply.Rows) > 0
}

// stationForm returns the doc_objects form the station records for the
// URL ("" when absent or unreachable).
func stationForm(t *testing.T, addr, url string) string {
	t.Helper()
	rs, err := cluster.DialStation(addr)
	if err != nil {
		return ""
	}
	defer rs.Close()
	reply, err := rs.SQL("SELECT form FROM doc_objects WHERE starting_url = '" + url + "'")
	if err != nil || len(reply.Rows) == 0 || len(reply.Rows[0]) == 0 {
		return ""
	}
	return reply.Rows[0][0]
}

// healthShows polls the root's health view for an exact down-set.
func healthShows(admin *fabric.Admin, want ...int) func() bool {
	return func() bool {
		h, err := admin.Health()
		if err != nil || len(h.Down) != len(want) {
			return false
		}
		for i, pos := range want {
			if h.Down[i] != pos {
				return false
			}
		}
		return true
	}
}

// TestChaosKilledStationsMidBroadcastRejoin is the chaos run: a
// seven-station live fabric loses two non-root daemons to SIGKILL
// while a broadcast is in flight, repairs the tree around them,
// restarts them with -rejoin, and converges on the end-state the
// netsim simulator predicts for the same failure schedule.
func TestChaosKilledStationsMidBroadcastRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := daemonBinary(t)
	spec := workload.DefaultSpec(1)

	rootAddr, _ := startDaemon(t, bin,
		"-addr", "127.0.0.1:0", "-root", "-m", "2", "-watermark", "0",
		"-seed-course", "3", "-heartbeat", "100ms")
	// Joins are sequential (the banner appears only after the
	// handshake), so joiner i holds position i+2.
	type joiner struct {
		addr string
		cmd  *exec.Cmd
	}
	joiners := make([]joiner, 6)
	for i := range joiners {
		addr, cmd := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-join", rootAddr)
		joiners[i] = joiner{addr, cmd}
	}
	admin := fabric.DialAdmin(rootAddr)
	defer admin.Close()
	webtest.Eventually(t, 30*time.Second, "all seven stations in the roster", func() bool {
		top, err := admin.Topology()
		return err == nil && top.N == 7
	})

	// SIGKILL positions 2 and 5 while the broadcast fans out. The
	// exact interleaving is the chaos under test: whichever hop the
	// deaths land on, the broadcast must complete and every surviving
	// station must end up with the course.
	done := make(chan error, 1)
	go func() {
		_, err := admin.Broadcast(spec.URL, false)
		done <- err
	}()
	for _, pos := range []int{2, 5} {
		if err := joiners[pos-2].cmd.Process.Kill(); err != nil {
			t.Error(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("broadcast during kills: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("broadcast hung across the kills")
	}

	// Repair: every live station holds the pages; the heartbeat
	// declares exactly the killed stations dead.
	for _, pos := range []int{3, 4, 6, 7} {
		addr := joiners[pos-2].addr
		webtest.Eventually(t, 30*time.Second,
			fmt.Sprintf("station %d to hold the broadcast pages", pos),
			func() bool { return stationHasPages(addr) })
	}
	webtest.Eventually(t, 30*time.Second, "root health to declare stations 2 and 5 dead",
		healthShows(admin, 2, 5))

	// An orphaned station (4, child of dead 2) keeps serving: its
	// health view answers, and a resolve through the dead parent still
	// succeeds via the grafted route to the root.
	st4 := fabric.DialAdmin(joiners[2].addr)
	h4, err := st4.Health()
	if err != nil {
		st4.Close()
		t.Fatal(err)
	}
	if h4.IsRoot {
		st4.Close()
		t.Fatalf("station 4 health claims root: %+v", h4)
	}
	fetch, err := st4.Fetch(spec.URL)
	st4.Close()
	if err != nil {
		t.Fatalf("orphan resolve across dead parent: %v", err)
	}
	if !fetch.Local && fetch.ServedBy == 2 {
		t.Errorf("orphan resolve served by the dead parent: %+v", fetch)
	}

	// Rejoin: both victims restart on fresh sockets, reclaim their old
	// positions, and catch up before announcing readiness.
	for _, pos := range []int{2, 5} {
		addr, cmd := startDaemon(t, bin,
			"-addr", "127.0.0.1:0", "-join", rootAddr, "-rejoin", "-pos", strconv.Itoa(pos))
		joiners[pos-2] = joiner{addr, cmd}
	}
	webtest.Eventually(t, 30*time.Second, "root health to show every station up",
		healthShows(admin))
	top, err := admin.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if top.N != 7 {
		t.Fatalf("topology after rejoin = %+v", top)
	}
	for _, pos := range []int{2, 5} {
		if top.Roster[pos] != joiners[pos-2].addr {
			t.Errorf("roster[%d] = %s, want the rejoined address %s", pos, top.Roster[pos], joiners[pos-2].addr)
		}
		webtest.Eventually(t, 30*time.Second,
			fmt.Sprintf("rejoined station %d to finish catch-up", pos),
			func() bool { return stationHasPages(joiners[pos-2].addr) })
	}

	// End-state parity: the netsim simulator run with the same failure
	// schedule (2 and 5 dark through the broadcast, revived, caught
	// up) predicts the per-station object form; the live fabric must
	// agree for every student station.
	sim, err := cluster.New(cluster.Config{
		Stations:  7,
		M:         2,
		UplinkBps: 1.25e6,
		Latency:   5 * time.Millisecond,
		Watermark: 0,
		Mode:      netsim.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	simSpec := workload.DefaultSpec(1)
	simSpec.Pages = 3
	simSpec.MediaScaleDown = 4096
	if _, _, err := sim.AuthorCourse(simSpec); err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{2, 5} {
		if err := sim.MarkDown(pos); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := sim.PreBroadcastResilient(simSpec.URL); err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{2, 5} {
		if err := sim.MarkUp(pos); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.FetchOnDemandResilient(pos, simSpec.URL); err != nil {
			t.Fatal(err)
		}
	}
	for pos := 2; pos <= 7; pos++ {
		simSt, err := sim.Station(pos)
		if err != nil {
			t.Fatal(err)
		}
		simObj, err := simSt.Store.ObjectByURL(simSpec.URL)
		if err != nil {
			t.Fatalf("simulator station %d: %v", pos, err)
		}
		if got := stationForm(t, joiners[pos-2].addr, spec.URL); got != simObj.Form {
			t.Errorf("station %d: form fabric=%q sim=%q", pos, got, simObj.Form)
		}
	}
}

// TestChaosEventJournalNarratesKillRejoinCheckpoint kills a real
// daemon with SIGKILL and reads the incident back through the Events
// RPC: the fabric-wide journal must narrate the whole lifecycle —
// suspicion on the hop that discovered the corpse, the graft around
// it, the root's down confirmation, the rejoin grant, and the revived
// station's first checkpoint — in causal order, queryable from a
// station that observed none of it firsthand.
func TestChaosEventJournalNarratesKillRejoinCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := daemonBinary(t)
	spec := workload.DefaultSpec(1)

	// -heartbeat 0: no background sweep, so every journal entry below
	// is attributable to the suspicion path the broadcast triggers —
	// the narrative under test — not to a racing prober.
	rootAddr, _ := startDaemon(t, bin,
		"-addr", "127.0.0.1:0", "-root", "-m", "2", "-watermark", "0",
		"-seed-course", "3", "-heartbeat", "0")
	dataDir := filepath.Join(t.TempDir(), "station2.d")
	_, victimCmd := startDaemon(t, bin,
		"-addr", "127.0.0.1:0", "-join", rootAddr, "-data", dataDir)
	// Positions 3..5 (joins are sequential; the victim took 2).
	bystanders := make([]string, 3)
	for i := range bystanders {
		addr, _ := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-join", rootAddr)
		bystanders[i] = addr
	}
	admin := fabric.DialAdmin(rootAddr)
	defer admin.Close()
	webtest.Eventually(t, 30*time.Second, "all five stations in the roster", func() bool {
		top, err := admin.Topology()
		return err == nil && top.N == 5
	})

	// SIGKILL the interior station (position 2, children 4 and 5), then
	// broadcast: the root's fan-out discovers the corpse live.
	if err := victimCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victimCmd.Wait()
	if _, err := admin.Broadcast(spec.URL, false); err != nil {
		t.Fatalf("broadcast across the kill: %v", err)
	}
	webtest.Eventually(t, 30*time.Second, "root health to confirm station 2 dead",
		healthShows(admin, 2))

	// Query through a bystander: the Events entry forwards to the root
	// and scatters tree-wide, so the narrative must be visible from a
	// station that observed none of it firsthand.
	relay := fabric.DialAdmin(bystanders[0])
	defer relay.Close()
	waitForEvent := func(name string) {
		t.Helper()
		webtest.Eventually(t, 30*time.Second, fmt.Sprintf("journal to record %q", name), func() bool {
			reply, err := relay.Events(obs.EventFilter{})
			if err != nil {
				return false
			}
			for _, e := range reply.Events {
				if e.Name == name {
					return true
				}
			}
			return false
		})
	}
	for _, name := range []string{"suspect", "graft", "down-confirmed"} {
		waitForEvent(name)
	}

	// Rejoin: the victim restarts on a fresh socket, reclaims position
	// 2 and checkpoints on a timer; the grant (root journal) and the
	// install (the rejoined station's own journal) both surface.
	startDaemon(t, bin,
		"-addr", "127.0.0.1:0", "-join", rootAddr, "-rejoin", "-pos", "2",
		"-data", dataDir, "-checkpoint-every", "300ms")
	waitForEvent("rejoin-grant")
	waitForEvent("checkpoint-install")

	// One merged snapshot carries the lifecycle in causal order: the
	// root's entries share one journal, so their sequence numbers are
	// the order things actually happened.
	reply, err := relay.Events(obs.EventFilter{})
	if err != nil {
		t.Fatal(err)
	}
	firstAtRoot := map[string]uint64{}
	checkpointStation := 0
	for _, e := range reply.Events {
		if e.Station == 1 {
			if _, ok := firstAtRoot[e.Name]; !ok {
				firstAtRoot[e.Name] = e.Seq
			}
		}
		if e.Name == "checkpoint-install" {
			checkpointStation = e.Station
		}
	}
	order := []string{"suspect", "graft", "down-confirmed", "rejoin-grant"}
	for i := 1; i < len(order); i++ {
		prev, ok1 := firstAtRoot[order[i-1]]
		next, ok2 := firstAtRoot[order[i]]
		if !ok1 || !ok2 || prev >= next {
			t.Errorf("root journal out of causal order: %s seq %d (present %v) vs %s seq %d (present %v)",
				order[i-1], prev, ok1, order[i], next, ok2)
		}
	}
	if checkpointStation != 2 {
		t.Errorf("checkpoint-install journaled at station %d, want the rejoined station 2", checkpointStation)
	}

	// Netsim parity on the same snapshot: the simulated collection over
	// the healed 5-station tree with the live journals' footprint
	// gathers the same totals.
	perStation := make(map[int]int)
	for _, e := range reply.Events {
		perStation[e.Station]++
	}
	sim, err := cluster.New(cluster.Config{
		Stations: 5, M: 2, UplinkBps: 1.25e6, Latency: 5 * time.Millisecond,
		Watermark: 0, Mode: netsim.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	simRep, err := sim.CollectEvents(3, func(p int) int { return perStation[p] })
	if err != nil {
		t.Fatal(err)
	}
	if simRep.Events != len(reply.Events) {
		t.Errorf("simulator gathered %d events, live collection %d", simRep.Events, len(reply.Events))
	}
	if simRep.Covered != 5 {
		t.Errorf("simulator covered %d stations, want 5", simRep.Covered)
	}
}

// TestDaemonFabricWalkthrough runs the README's three-station
// deployment end to end through real processes: a root, two joiners, a
// broadcast, a resolve and a migration.
// TestSIGKILLBeforeSearchSidecarRebuildsIdenticalIndex extends the
// crash matrix to the content index: the checkpoint protocol installs
// search-<gen> only AFTER the relational snapshot renames, so a
// SIGKILL between the two leaves a generation whose index sidecar is
// missing. The restart must rebuild the index from the recovered rows
// and answer full-text queries exactly as the pre-kill daemon did.
func TestSIGKILLBeforeSearchSidecarRebuildsIdenticalIndex(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := daemonBinary(t)
	dir := filepath.Join(t.TempDir(), "station.d")

	addr, cmd := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-data", dir, "-seed-course", "4")
	rs, err := cluster.DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	before, err := rs.SearchLocal([]string{"lecture", "material"}, false, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("seeded daemon answers no full-text hits")
	}
	ckpt, err := rs.Checkpoint()
	rs.Close()
	if err != nil {
		t.Fatal(err)
	}

	// SIGKILL, then reproduce the crash point on disk: the snapshot
	// installed, the search sidecar did not.
	cmd.Process.Kill()
	cmd.Wait()
	sidecar := filepath.Join(dir, fmt.Sprintf("search-%010d", ckpt.Gen))
	if err := os.Remove(sidecar); err != nil {
		t.Fatalf("removing search sidecar: %v", err)
	}

	addr2, _ := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-data", dir, "-seed-course", "4")
	rs2, err := cluster.DialStation(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	after, err := rs2.SearchLocal([]string{"lecture", "material"}, false, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("rebuilt index answers %d hits, want %d", len(after), len(before))
	}
	for i := range after {
		if after[i].Key != before[i].Key || after[i].Score != before[i].Score || after[i].Snippet != before[i].Snippet {
			t.Errorf("hit %d differs after rebuild: %+v vs %+v", i, after[i], before[i])
		}
	}
}

func TestDaemonFabricWalkthrough(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := daemonBinary(t)
	spec := workload.DefaultSpec(1)

	rootAddr, _ := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-root", "-m", "2", "-watermark", "0", "-seed-course", "3")
	addr2, _ := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-join", rootAddr)
	addr3, _ := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-join", rootAddr)

	admin := fabric.DialAdmin(rootAddr)
	defer admin.Close()
	top, err := admin.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if top.N != 3 || !top.IsRoot {
		t.Fatalf("topology = %+v", top)
	}
	res, err := admin.Broadcast(spec.URL, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stations) != 2 {
		t.Fatalf("broadcast = %+v", res)
	}
	for _, sr := range res.Stations {
		if sr.Err != "" {
			t.Errorf("station %d: %s", sr.Pos, sr.Err)
		}
	}
	// Both joiners hold the pages now.
	for _, a := range []string{addr2, addr3} {
		rs, err := cluster.DialStation(a)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := rs.SQL("SELECT file_id FROM html_files")
		rs.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(reply.Rows) == 0 {
			t.Errorf("station %s holds no pages after broadcast", a)
		}
	}
	// A federation-wide full-text query issued at a leaf daemon answers
	// with the course pages, deduplicated across the three replicas and
	// credited to the lowest-positioned holder.
	leaf := fabric.DialAdmin(addr2)
	defer leaf.Close()
	found, err := leaf.Search([]string{"lecture", "material"}, false, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(found.Hits) != 3 {
		t.Errorf("federated search hits = %+v", found.Hits)
	}
	for _, h := range found.Hits {
		if h.Station != 1 {
			t.Errorf("hit %s credited to station %d, want 1", h.Key, h.Station)
		}
		if h.Snippet == "" {
			t.Errorf("hit %s carries no snippet", h.Key)
		}
	}
	mig, err := admin.EndLecture(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Freed == 0 || len(mig.Stations) != 2 {
		t.Errorf("migration = %+v", mig)
	}
	// After migration station 3 resolves the course again via its
	// parent route; watermark 0 materializes immediately.
	st3 := fabric.DialAdmin(addr3)
	defer st3.Close()
	fetch, err := st3.Fetch(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !fetch.Replicated {
		t.Errorf("fetch = %+v", fetch)
	}
}
