package search_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/relstore"
	"repro/internal/search"
)

func newStore(t *testing.T) *docdb.Store {
	t.Helper()
	s, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	s.Now = func() time.Time { return time.Date(1999, 4, 21, 8, 0, 0, 0, time.UTC) }
	return s
}

// scaffold installs the database/script/implementation rows content
// hangs off.
func scaffold(t *testing.T, s *docdb.Store, script, url string) {
	t.Helper()
	if _, err := s.Database("mmu"); err != nil {
		if err := s.CreateDatabase(docdb.Database{Name: "mmu"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CreateScript(docdb.Script{
		Name: script, DBName: "mmu", Author: "Shih",
		Description: "Lecture notes for " + script,
		Keywords:    []string{"lecture", script},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddImplementation(docdb.Implementation{StartingURL: url, ScriptName: script, Author: "Shih"}); err != nil {
		t.Fatal(err)
	}
}

func keysOf(hits []search.Hit) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.Key
	}
	return out
}

func TestAttachSeedsFromExistingContent(t *testing.T) {
	s := newStore(t)
	scaffold(t, s, "cs101", "http://mmu/cs101/v1")
	if err := s.PutHTML("http://mmu/cs101/v1", "index.html", []byte("<body>preexisting content</body>")); err != nil {
		t.Fatal(err)
	}
	ix, err := search.Attach(s)
	if err != nil {
		t.Fatal(err)
	}
	if hits := ix.Search(search.Query{Terms: []string{"preexisting"}}); len(hits) != 1 {
		t.Errorf("attach did not seed existing content: %v", hits)
	}
	if _, err := search.Attach(s); err == nil {
		t.Error("double attach succeeded")
	}
}

func TestWriteHooksKeepIndexCurrent(t *testing.T) {
	s := newStore(t)
	ix, err := search.Attach(s)
	if err != nil {
		t.Fatal(err)
	}
	scaffold(t, s, "cs101", "http://mmu/cs101/v1")
	url := "http://mmu/cs101/v1"
	if err := s.PutHTML(url, "index.html", []byte("<body>pipelined broadcast</body>")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutProgram(url, "quiz.asp", "asp", []byte("gradebook logic")); err != nil {
		t.Fatal(err)
	}
	for _, term := range []string{"pipelined", "gradebook", "lecture"} {
		if hits := ix.Search(search.Query{Terms: []string{term}}); len(hits) == 0 {
			t.Errorf("no hits for %q after write hooks", term)
		}
	}

	// A bundle import on a second station indexes the carried content.
	inst, err := s.NewInstance(url, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := s.ExportBundle(url)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newStore(t)
	ix2, err := search.Attach(s2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ImportBundle(bundle, 2, false); err != nil {
		t.Fatal(err)
	}
	if hits := ix2.Search(search.Query{Terms: []string{"pipelined"}}); len(hits) != 1 {
		t.Errorf("import bundle not indexed: %v", hits)
	}

	// A reference import indexes only the catalog metadata.
	s3 := newStore(t)
	ix3, err := search.Attach(s3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.ImportReference(bundle.Script, bundle.Impl, 3, 1); err != nil {
		t.Fatal(err)
	}
	if hits := ix3.Search(search.Query{Terms: []string{"pipelined"}}); len(hits) != 0 {
		t.Errorf("reference import indexed content it does not hold: %v", hits)
	}
	if hits := ix3.Search(search.Query{Terms: []string{"lecture"}}); len(hits) != 1 {
		t.Errorf("reference import lost the catalog metadata: %v", hits)
	}

	// Migration to reference drops the content hits, keeps the script.
	if err := s.MigrateToReference(inst.ID, 1); err != nil {
		t.Fatal(err)
	}
	if hits := ix.Search(search.Query{Terms: []string{"pipelined"}}); len(hits) != 0 {
		t.Errorf("content hits survived migration to reference: %v", hits)
	}
	if hits := ix.Search(search.Query{Terms: []string{"lecture"}}); len(hits) == 0 {
		t.Error("script metadata lost in migration")
	}

	// Deleting the script removes the last trace.
	if err := s.DeleteScript("cs101"); err != nil {
		t.Fatal(err)
	}
	if hits := ix.Search(search.Query{Terms: []string{"lecture"}}); len(hits) != 0 {
		t.Errorf("hits survived script delete: %v", hits)
	}
}

func TestInstantiateIndexesCopiedStructure(t *testing.T) {
	s := newStore(t)
	ix, err := search.Attach(s)
	if err != nil {
		t.Fatal(err)
	}
	scaffold(t, s, "cs101", "http://mmu/cs101/v1")
	if err := s.PutHTML("http://mmu/cs101/v1", "index.html", []byte("<body>prototype reuse text</body>")); err != nil {
		t.Fatal(err)
	}
	inst, err := s.NewInstance("http://mmu/cs101/v1", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	class, err := s.DeclareClass(inst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Instantiate(class.ID, "http://mmu/cs101/v2", 1); err != nil {
		t.Fatal(err)
	}
	hits := ix.Search(search.Query{Terms: []string{"prototype"}, TopK: 10})
	if len(hits) != 2 {
		t.Errorf("instantiated copy not indexed: %v", keysOf(hits))
	}
}

// durableStore opens a store with an attached index over a durability
// directory, in webdocd's order: open, attach, recover.
func durableStore(t *testing.T, dir string) (*docdb.Store, *search.Index, *relstore.RecoverInfo) {
	t.Helper()
	s := newStore(t)
	ix, err := search.Attach(s)
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s, ix, info
}

func seedContent(t *testing.T, s *docdb.Store, docs int) string {
	t.Helper()
	url := "http://mmu/cs101/v1"
	scaffold(t, s, "cs101", url)
	for i := 0; i < docs; i++ {
		page := fmt.Sprintf("<body>shared corpus page%d unique%04d</body>", i, i)
		if err := s.PutHTML(url, fmt.Sprintf("p%04d.html", i), []byte(page)); err != nil {
			t.Fatal(err)
		}
	}
	return url
}

// dump captures the full ranked answer for a distinctive query — the
// equality witness the recovery tests compare.
func dump(ix *search.Index) []search.Hit {
	return ix.Search(search.Query{Terms: []string{"corpus"}, TopK: 1 << 20})
}

func TestCheckpointSidecarRestoresIndex(t *testing.T) {
	dir := t.TempDir()
	s, ix, _ := durableStore(t, dir)
	seedContent(t, s, 8)
	before := dump(ix)
	info, err := s.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("search-%010d", info.Gen))); err != nil {
		t.Fatalf("search sidecar missing after checkpoint: %v", err)
	}

	_, ix2, rec := durableStore(t, dir)
	if rec.Gen != info.Gen || rec.Applied != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if got := dump(ix2); !reflect.DeepEqual(got, before) {
		t.Errorf("sidecar-restored index differs:\n got %v\nwant %v", keysOf(got), keysOf(before))
	}
}

// TestRecoveryRebuildsWhenSidecarMissing is the crash-matrix entry the
// checkpoint ordering promises: the search sidecar installs AFTER the
// relational snapshot, so a SIGKILL between the two leaves snap-<gen>
// (and blobs-<gen>) on disk with no search-<gen> beside them. Recovery
// must fall back to rebuilding the index from the restored rows and
// produce exactly the index a clean restart would have.
func TestRecoveryRebuildsWhenSidecarMissing(t *testing.T) {
	dir := t.TempDir()
	s, ix, _ := durableStore(t, dir)
	seedContent(t, s, 8)
	before := dump(ix)
	info, err := s.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}
	// SIGKILL between the snapshot rename and the search sidecar
	// install: the post-crash disk state is the checkpoint minus the
	// search file.
	if err := os.Remove(filepath.Join(dir, fmt.Sprintf("search-%010d", info.Gen))); err != nil {
		t.Fatal(err)
	}

	_, ix2, rec := durableStore(t, dir)
	if rec.Gen != info.Gen {
		t.Fatalf("recovered generation = %d, want %d", rec.Gen, info.Gen)
	}
	if got := dump(ix2); !reflect.DeepEqual(got, before) {
		t.Errorf("rebuilt index differs from the pre-crash one:\n got %v\nwant %v", keysOf(got), keysOf(before))
	}
}

// TestRecoveryRebuildsOverStaleSidecar: writes after the checkpoint
// land in the WAL tail; the sidecar describes the older cut, so a
// post-SIGKILL recovery (snapshot + tail replay) must rebuild instead
// of silently serving the stale index.
func TestRecoveryRebuildsOverStaleSidecar(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := durableStore(t, dir)
	url := seedContent(t, s, 4)
	if _, err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint content: WAL tail only, never in the sidecar.
	if err := s.PutHTML(url, "late.html", []byte("<body>corpus latecomer</body>")); err != nil {
		t.Fatal(err)
	}
	// SIGKILL: no shutdown checkpoint.

	_, ix2, rec := durableStore(t, dir)
	if rec.Applied == 0 {
		t.Fatal("no tail transactions replayed — test premise broken")
	}
	hits := ix2.Search(search.Query{Terms: []string{"latecomer"}})
	if len(hits) != 1 {
		t.Errorf("post-checkpoint page missing from the recovered index: %v", hits)
	}
}

// TestRecoveryRebuildsOverCorruptSidecar: a torn search-<gen> file must
// never poison recovery.
func TestRecoveryRebuildsOverCorruptSidecar(t *testing.T) {
	dir := t.TempDir()
	s, ix, _ := durableStore(t, dir)
	seedContent(t, s, 4)
	before := dump(ix)
	info, err := s.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("search-%010d", info.Gen))
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ix2, _ := durableStore(t, dir)
	if got := dump(ix2); !reflect.DeepEqual(got, before) {
		t.Errorf("recovery over a corrupt sidecar differs:\n got %v\nwant %v", keysOf(got), keysOf(before))
	}
}

func TestCheckpointPrunesSearchSidecars(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := durableStore(t, dir)
	seedContent(t, s, 2)
	if _, err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "search-0000000001")); !os.IsNotExist(err) {
		t.Error("generation-1 search sidecar survived the generation-2 checkpoint")
	}
	if _, err := os.Stat(filepath.Join(dir, "search-0000000002")); err != nil {
		t.Errorf("generation-2 search sidecar missing: %v", err)
	}
}
