package mtree

import (
	"testing"
	"testing/quick"
	"time"
)

func TestChildMatchesPaperEquation(t *testing.T) {
	// Hand-checked positions for m = 3 (paper's equation m(n-1)+i+1).
	cases := []struct{ n, i, m, want int }{
		{1, 1, 3, 2},
		{1, 2, 3, 3},
		{1, 3, 3, 4},
		{2, 1, 3, 5},
		{2, 2, 3, 6},
		{2, 3, 3, 7},
		{3, 1, 3, 8},
		{4, 3, 3, 13},
		{1, 1, 1, 2}, // degenerate chain
		{2, 1, 1, 3},
		{1, 2, 2, 3},
		{5, 2, 2, 11},
	}
	for _, c := range cases {
		got, err := Child(c.n, c.i, c.m)
		if err != nil {
			t.Fatalf("Child(%d,%d,%d): %v", c.n, c.i, c.m, err)
		}
		if got != c.want {
			t.Errorf("Child(%d,%d,%d) = %d, want %d", c.n, c.i, c.m, got, c.want)
		}
	}
}

func TestParentMatchesPaperEquation(t *testing.T) {
	cases := []struct{ k, m, want int }{
		{2, 3, 1},
		{3, 3, 1},
		{4, 3, 1},
		{5, 3, 2},
		{7, 3, 2},
		{8, 3, 3},
		{13, 3, 4},
		{2, 1, 1},
		{3, 1, 2},
		{11, 2, 5},
	}
	for _, c := range cases {
		got, err := Parent(c.k, c.m)
		if err != nil {
			t.Fatalf("Parent(%d,%d): %v", c.k, c.m, err)
		}
		if got != c.want {
			t.Errorf("Parent(%d,%d) = %d, want %d", c.k, c.m, got, c.want)
		}
	}
}

func TestParentOfRootFails(t *testing.T) {
	if _, err := Parent(1, 4); err != ErrRootParent {
		t.Fatalf("Parent(1,4) err = %v, want ErrRootParent", err)
	}
}

func TestArgumentValidation(t *testing.T) {
	if _, err := Child(1, 1, 0); err != ErrBadDegree {
		t.Errorf("Child degree 0: err = %v", err)
	}
	if _, err := Child(0, 1, 2); err != ErrBadStation {
		t.Errorf("Child station 0: err = %v", err)
	}
	if _, err := Child(1, 3, 2); err != ErrBadChildIdx {
		t.Errorf("Child index 3 of degree 2: err = %v", err)
	}
	if _, err := Parent(2, 0); err != ErrBadDegree {
		t.Errorf("Parent degree 0: err = %v", err)
	}
	if _, err := Depth(0, 2); err != ErrBadStation {
		t.Errorf("Depth station 0: err = %v", err)
	}
	if _, err := Children(5, 2, 4); err != ErrBadStation {
		t.Errorf("Children beyond N: err = %v", err)
	}
	if _, _, err := ChooseM(10, 1, LinkModel{}, 0); err != ErrBadDegree {
		t.Errorf("ChooseM maxM 0: err = %v", err)
	}
}

// Property: Parent(Child(n, i)) == n and ChildIndex round-trips, for all
// degrees and stations drawn by testing/quick.
func TestQuickParentChildInverse(t *testing.T) {
	f := func(nRaw, iRaw, mRaw uint16) bool {
		m := int(mRaw%16) + 1
		n := int(nRaw%10000) + 1
		i := int(iRaw%uint16(m)) + 1
		c, err := Child(n, i, m)
		if err != nil {
			return false
		}
		p, err := Parent(c, m)
		if err != nil {
			return false
		}
		idx, err := ChildIndex(c, m)
		if err != nil {
			return false
		}
		return p == n && idx == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every station 2..N is the child of exactly one parent, i.e.
// the children lists partition [2..N].
func TestQuickChildrenPartitionStations(t *testing.T) {
	f := func(nRaw, mRaw uint16) bool {
		m := int(mRaw%8) + 1
		total := int(nRaw%500) + 2
		seen := make(map[int]int)
		for n := 1; n <= total; n++ {
			kids, err := Children(n, m, total)
			if err != nil {
				return false
			}
			for _, k := range kids {
				seen[k]++
			}
		}
		if len(seen) != total-1 {
			return false
		}
		for k := 2; k <= total; k++ {
			if seen[k] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: depths along the parent chain decrease by exactly one.
func TestQuickDepthDecreasesAlongPath(t *testing.T) {
	f := func(kRaw, mRaw uint16) bool {
		m := int(mRaw%8) + 1
		k := int(kRaw%5000) + 2
		path, err := AncestorPath(k, m)
		if err != nil {
			return false
		}
		for j := 0; j+1 < len(path); j++ {
			d0, err0 := Depth(path[j], m)
			d1, err1 := Depth(path[j+1], m)
			if err0 != nil || err1 != nil || d0 != d1+1 {
				return false
			}
		}
		return path[len(path)-1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthExactValuesBinaryTree(t *testing.T) {
	// For m = 2 the levels are 1 | 2 3 | 4..7 | 8..15 ...
	wantDepths := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 15: 3, 16: 4}
	for k, want := range wantDepths {
		got, err := Depth(k, 2)
		if err != nil {
			t.Fatalf("Depth(%d,2): %v", k, err)
		}
		if got != want {
			t.Errorf("Depth(%d,2) = %d, want %d", k, got, want)
		}
	}
}

func TestEdgesBFSOrderAndCount(t *testing.T) {
	edges, err := Edges(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 9 {
		t.Fatalf("len(edges) = %d, want 9", len(edges))
	}
	want := []Edge{{1, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}, {2, 7}, {3, 8}, {3, 9}, {3, 10}}
	for i, e := range edges {
		if e != want[i] {
			t.Errorf("edges[%d] = %+v, want %+v", i, e, want[i])
		}
	}
}

func TestAncestorPathChain(t *testing.T) {
	path, err := AncestorPath(13, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{13, 4, 1}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestRoundsSequentialUplink(t *testing.T) {
	// m = 2, N = 7: completion rounds are sums of child indices on the
	// root path: station 2 -> 1, 3 -> 2, 4 -> 2, 5 -> 3, 6 -> 3, 7 -> 4.
	rounds, err := Rounds(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 2, 3, 3, 4}
	for i, w := range want {
		if rounds[i] != w {
			t.Errorf("rounds[%d] = %d, want %d (all %v)", i, rounds[i], w, rounds)
		}
	}
}

func TestMaxRoundChainEqualsN(t *testing.T) {
	// Degenerate chain (m = 1): station k completes at round k-1.
	got, err := MaxRound(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Errorf("MaxRound(9,1) = %d, want 8", got)
	}
}

func TestMaxRoundStarEqualsNMinusOne(t *testing.T) {
	// Root-unicast (m = N-1): root serves each station in turn.
	got, err := MaxRound(9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Errorf("MaxRound(9,8) = %d, want 8", got)
	}
}

func TestTreeBeatsChainAndStar(t *testing.T) {
	for _, total := range []int{15, 63, 255} {
		chain, err := MaxRound(total, 1)
		if err != nil {
			t.Fatal(err)
		}
		star, err := MaxRound(total, total-1)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := MaxRound(total, 3)
		if err != nil {
			t.Fatal(err)
		}
		if tree >= chain || tree >= star {
			t.Errorf("N=%d: tree rounds %d should beat chain %d and star %d", total, tree, chain, star)
		}
	}
}

func TestChooseMPrefersInteriorDegree(t *testing.T) {
	lm := LinkModel{Latency: 5 * time.Millisecond, BytesPerSecond: 1.25e6}
	m, _, err := ChooseM(255, 48<<20, lm, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m <= 1 || m >= 16 {
		t.Errorf("ChooseM picked boundary degree %d; expected an interior optimum", m)
	}
}

func TestHopTimeZeroBandwidth(t *testing.T) {
	lm := LinkModel{Latency: time.Second}
	if got := lm.HopTime(1 << 30); got != time.Second {
		t.Errorf("HopTime with zero bandwidth = %v, want latency only", got)
	}
}

func TestBroadcastTimeScalesWithRounds(t *testing.T) {
	lm := LinkModel{Latency: 0, BytesPerSecond: 1e6}
	t1, err := BroadcastTime(63, 2, 1e6, lm)
	if err != nil {
		t.Fatal(err)
	}
	maxRound, err := MaxRound(63, 2)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != time.Duration(maxRound)*time.Second {
		t.Errorf("BroadcastTime = %v, want %v", t1, time.Duration(maxRound)*time.Second)
	}
}

func TestValidateAllSmallConfigs(t *testing.T) {
	for m := 1; m <= 12; m++ {
		for total := 1; total <= 300; total++ {
			if err := Validate(total, m); err != nil {
				t.Fatalf("Validate(%d,%d): %v", total, m, err)
			}
		}
	}
}

func TestValidateLarge(t *testing.T) {
	for _, m := range []int{2, 3, 7, 16} {
		if err := Validate(100000, m); err != nil {
			t.Fatalf("Validate(1e5,%d): %v", m, err)
		}
	}
}

func TestChildrenClipsAtTotal(t *testing.T) {
	kids, err := Children(4, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Children of station 4 under m=3 are 11, 12, 13; 13 is clipped.
	if len(kids) != 2 || kids[0] != 11 || kids[1] != 12 {
		t.Fatalf("Children(4,3,12) = %v, want [11 12]", kids)
	}
}

func TestFanoutTimeLatencyVsBandwidth(t *testing.T) {
	lm := mtree_testLM()
	// Tiny payload: latency dominates, so a shallower (larger-m) tree wins.
	mSmall, _, err := ChooseMFanout(63, 1<<10, lm, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Huge payload: bandwidth dominates, so a small interior degree wins.
	mBig, _, err := ChooseMFanout(63, 256<<20, lm, 16)
	if err != nil {
		t.Fatal(err)
	}
	if mSmall <= mBig {
		t.Errorf("fan-out degree for tiny payload %d should exceed huge payload %d", mSmall, mBig)
	}
	if mBig < 2 || mBig > 4 {
		t.Errorf("bandwidth-bound optimum %d should be a small interior degree", mBig)
	}
}

func mtree_testLM() LinkModel {
	return LinkModel{Latency: 5 * time.Millisecond, BytesPerSecond: 1.25e6}
}

func TestFanoutTimeChainVsStar(t *testing.T) {
	lm := mtree_testLM()
	// For one station there is nothing to send.
	d, err := FanoutTime(1, 3, 1<<20, lm)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("single station fanout time = %v", d)
	}
	chain, err := FanoutTime(16, 1, 1<<20, lm)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := FanoutTime(16, 3, 1<<20, lm)
	if err != nil {
		t.Fatal(err)
	}
	if tree >= chain {
		t.Errorf("fan-out tree %v not faster than chain %v", tree, chain)
	}
}

func TestChooseMFanoutValidation(t *testing.T) {
	lm := mtree_testLM()
	if _, _, err := ChooseMFanout(0, 1, lm, 4); err != ErrBadStation {
		t.Errorf("err = %v", err)
	}
	if _, _, err := ChooseMFanout(5, 1, lm, 0); err != ErrBadDegree {
		t.Errorf("err = %v", err)
	}
	if _, err := FanoutTime(0, 2, 1, lm); err != ErrBadStation {
		t.Errorf("err = %v", err)
	}
}
