package docdb

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/relstore"
	"repro/internal/schema"
)

// newStore builds a store with a deterministic clock.
func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(1999, 4, 21, 9, 0, 0, 0, time.UTC)
	n := 0
	s.Now = func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Second)
	}
	return s
}

// seedCourse creates db -> script -> implementation with two HTML pages,
// one program and two media files.
func seedCourse(t *testing.T, s *Store) (scriptName, url string) {
	t.Helper()
	if err := s.CreateDatabase(Database{Name: "mmu", Keywords: []string{"virtual", "university"}, Author: "Shih"}); err != nil {
		t.Fatal(err)
	}
	sc := Script{
		Name:        "intro-cs",
		DBName:      "mmu",
		Keywords:    []string{"computer", "science"},
		Author:      "Shih",
		Description: "Introduction to computer science",
		PctComplete: 40,
	}
	if err := s.CreateScript(sc); err != nil {
		t.Fatal(err)
	}
	url = "http://mmu/intro-cs/v1"
	if err := s.AddImplementation(Implementation{StartingURL: url, ScriptName: "intro-cs", Author: "Shih"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutHTML(url, "index.html", []byte("<html><a href=page2.html>next</a></html>")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutHTML(url, "page2.html", []byte("<html>two</html>")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutProgram(url, "quiz.java", "java", []byte("class Quiz {}")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttachImplMedia(url, "lecture.wav", blob.KindAudio, bytes.Repeat([]byte("au"), 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttachImplMedia(url, "diagram.gif", blob.KindImage, bytes.Repeat([]byte("im"), 200)); err != nil {
		t.Fatal(err)
	}
	return "intro-cs", url
}

func TestOpenInstallsSchemaOnce(t *testing.T) {
	rel := relstore.NewDB()
	if _, err := Open(rel, blob.NewStore()); err != nil {
		t.Fatal(err)
	}
	// A second Open over the same engine must not fail.
	if _, err := Open(rel, blob.NewStore()); err != nil {
		t.Fatal(err)
	}
}

func TestDatabaseRoundTrip(t *testing.T) {
	s := newStore(t)
	if err := s.CreateDatabase(Database{Name: "d", Keywords: []string{"k1", "k2"}, Author: "a"}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Database("d")
	if err != nil {
		t.Fatal(err)
	}
	if got.Author != "a" || len(got.Keywords) != 2 || got.Version != 1 || got.Created.IsZero() {
		t.Errorf("got = %+v", got)
	}
}

func TestScriptRoundTripAndListing(t *testing.T) {
	s := newStore(t)
	seedCourse(t, s)
	sc, err := s.Script("intro-cs")
	if err != nil {
		t.Fatal(err)
	}
	if sc.DBName != "mmu" || sc.PctComplete != 40 || len(sc.Keywords) != 2 {
		t.Errorf("script = %+v", sc)
	}
	list, err := s.Scripts("mmu")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "intro-cs" {
		t.Errorf("list = %+v", list)
	}
	if err := s.SetProgress("intro-cs", 80); err != nil {
		t.Fatal(err)
	}
	sc, _ = s.Script("intro-cs")
	if sc.PctComplete != 80 {
		t.Errorf("pct = %v", sc.PctComplete)
	}
}

func TestScriptRequiresDatabase(t *testing.T) {
	s := newStore(t)
	err := s.CreateScript(Script{Name: "x", DBName: "ghost"})
	if !errors.Is(err, relstore.ErrFK) {
		t.Fatalf("err = %v", err)
	}
}

func TestFilesRoundTrip(t *testing.T) {
	s := newStore(t)
	_, url := seedCourse(t, s)
	got, err := s.HTML(url, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(got, []byte("page2.html")) {
		t.Errorf("content = %q", got)
	}
	files, err := s.HTMLFiles(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Errorf("html files = %d", len(files))
	}
	progs, err := s.ProgramFiles(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 1 || progs[0].Language != "java" {
		t.Errorf("programs = %+v", progs)
	}
	// PutHTML replaces on the same path.
	if err := s.PutHTML(url, "index.html", []byte("<html>new</html>")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.HTML(url, "index.html")
	if !bytes.Equal(got, []byte("<html>new</html>")) {
		t.Errorf("replaced content = %q", got)
	}
	files, _ = s.HTMLFiles(url)
	if len(files) != 2 {
		t.Errorf("replace created a new row: %d files", len(files))
	}
}

func TestMediaAttachAndShare(t *testing.T) {
	s := newStore(t)
	_, url := seedCourse(t, s)
	media, err := s.ImplMedia(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(media) != 2 {
		t.Fatalf("media = %d", len(media))
	}
	// Attaching identical content to another impl shares the BLOB.
	if err := s.AddImplementation(Implementation{StartingURL: "http://mmu/other", ScriptName: "intro-cs"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttachImplMedia("http://mmu/other", "lecture.wav", blob.KindAudio, bytes.Repeat([]byte("au"), 500)); err != nil {
		t.Fatal(err)
	}
	st := s.Blobs().Stats()
	if st.DedupHits != 1 {
		t.Errorf("dedup hits = %d, want 1", st.DedupHits)
	}
	if st.Objects != 2 {
		t.Errorf("distinct objects = %d, want 2", st.Objects)
	}
}

func TestTestRecordAndBugReportChain(t *testing.T) {
	s := newStore(t)
	script, url := seedCourse(t, s)
	tr := TestRecord{
		Name:        "t1",
		ScriptName:  script,
		StartingURL: url,
		Scope:       "global",
		Messages:    []string{"open index.html", "click page2.html"},
	}
	if err := s.RecordTest(tr); err != nil {
		t.Fatal(err)
	}
	br := BugReport{
		Name:           "b1",
		TestName:       "t1",
		QAEngineer:     "Huang",
		BadURLs:        []string{"http://mmu/missing"},
		MissingObjects: []string{"ghost.gif"},
	}
	if err := s.FileBugReport(br); err != nil {
		t.Fatal(err)
	}
	recs, err := s.TestRecords(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Messages) != 2 {
		t.Fatalf("records = %+v", recs)
	}
	bugs, err := s.BugReports("t1")
	if err != nil {
		t.Fatal(err)
	}
	if len(bugs) != 1 || bugs[0].BadURLs[0] != "http://mmu/missing" {
		t.Fatalf("bugs = %+v", bugs)
	}
	// Bug reports require their test record.
	err = s.FileBugReport(BugReport{Name: "b2", TestName: "ghost"})
	if !errors.Is(err, relstore.ErrFK) {
		t.Errorf("err = %v", err)
	}
}

func TestAnnotationsPerInstructor(t *testing.T) {
	s := newStore(t)
	script, url := seedCourse(t, s)
	for _, author := range []string{"Shih", "Ma", "Huang"} {
		a := Annotation{
			Name:        "ann-" + author,
			ScriptName:  script,
			StartingURL: url,
			Author:      author,
			File:        []byte("encoded-" + author),
		}
		if err := s.SaveAnnotation(a); err != nil {
			t.Fatal(err)
		}
	}
	anns, err := s.Annotations(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 3 {
		t.Fatalf("annotations = %d, want 3 (different instructors annotate the same course)", len(anns))
	}
}

func TestCheckOutExclusive(t *testing.T) {
	s := newStore(t)
	script, _ := seedCourse(t, s)
	co, err := s.CheckOut(schema.KindScript, script, "shih")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckOut(schema.KindScript, script, "ma"); !errors.Is(err, ErrCheckedOut) {
		t.Fatalf("second checkout: err = %v", err)
	}
	if err := s.CheckIn(co, "revised section 2"); err != nil {
		t.Fatal(err)
	}
	// After check-in another user may check out.
	if _, err := s.CheckOut(schema.KindScript, script, "ma"); err != nil {
		t.Fatalf("checkout after checkin: %v", err)
	}
}

func TestCheckInBumpsVersions(t *testing.T) {
	s := newStore(t)
	script, _ := seedCourse(t, s)
	for i := 0; i < 3; i++ {
		co, err := s.CheckOut(schema.KindScript, script, "shih")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CheckIn(co, "edit"); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := s.History(schema.KindScript, script)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history = %d", len(hist))
	}
	for i, v := range hist {
		if v.Version != int64(i+1) {
			t.Errorf("version[%d] = %d", i, v.Version)
		}
	}
}

func TestCheckInTwiceFails(t *testing.T) {
	s := newStore(t)
	script, _ := seedCourse(t, s)
	co, _ := s.CheckOut(schema.KindScript, script, "shih")
	if err := s.CheckIn(co, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckIn(co, "y"); !errors.Is(err, ErrNotCheckedOut) {
		t.Fatalf("err = %v", err)
	}
}

func TestOutstandingAndCheckoutsOf(t *testing.T) {
	s := newStore(t)
	script, url := seedCourse(t, s)
	if _, err := s.CheckOut(schema.KindScript, script, "shih"); err != nil {
		t.Fatal(err)
	}
	co2, err := s.CheckOut(schema.KindImplementation, url, "shih")
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Outstanding("shih")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("outstanding = %d", len(out))
	}
	if err := s.CheckIn(co2, "done"); err != nil {
		t.Fatal(err)
	}
	out, _ = s.Outstanding("shih")
	if len(out) != 1 {
		t.Fatalf("outstanding after checkin = %d", len(out))
	}
	all, err := s.CheckoutsOf(schema.KindImplementation, url)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].InTime.IsZero() {
		t.Errorf("checkouts of impl = %+v", all)
	}
}

func TestReplaceAnnotationBumpsVersion(t *testing.T) {
	s := newStore(t)
	script, url := seedCourse(t, s)
	a := Annotation{Name: "ann-1", ScriptName: script, StartingURL: url, Author: "Shih", File: []byte("v1")}
	if err := s.SaveAnnotation(a); err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceAnnotation("ann-1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	anns, err := s.Annotations(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 1 || anns[0].Version != 2 || string(anns[0].File) != "v2" {
		t.Errorf("annotation = %+v", anns[0])
	}
	if err := s.ReplaceAnnotation("ghost", []byte("x")); !errors.Is(err, relstore.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}
