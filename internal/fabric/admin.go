package fabric

import (
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// BroadcastRequest asks the root to run a tree-wide broadcast. URLs
// (when set) selects the batched form: every document rides one
// coalesced frame per tree edge; URL is the single-document form.
type BroadcastRequest struct {
	URL     string
	URLs    []string
	RefOnly bool
}

// FetchRequest asks a station to resolve a document for itself.
type FetchRequest struct {
	URL string
}

// EndLectureRequest asks the root to run a tree-wide migration.
type EndLectureRequest struct {
	URL string
}

// handleBroadcast lets an administrative client trigger Broadcast on
// the root station. The client's trace context (ctx.Span) becomes the
// root span of the whole tree traversal.
func (s *Station) handleBroadcast(ctx *transport.Ctx, decode func(any) error) (any, error) {
	var req BroadcastRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	urls := req.URLs
	if len(urls) == 0 {
		urls = []string{req.URL}
	}
	res, err := s.broadcastAllSpanned(urls, req.RefOnly, ctx.Span())
	if err != nil {
		return nil, err
	}
	return *res, nil
}

// handleFetch lets an administrative client make a station resolve a
// document for itself, applying its watermark policy.
func (s *Station) handleFetch(ctx *transport.Ctx, decode func(any) error) (any, error) {
	var req FetchRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	return s.resolveSpanned(req.URL, ctx.Span())
}

// handleEndLecture lets an administrative client trigger the
// end-of-lecture migration on the root station.
func (s *Station) handleEndLecture(ctx *transport.Ctx, decode func(any) error) (any, error) {
	var req EndLectureRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	res, err := s.endLectureSpanned(req.URL, ctx.Span())
	if err != nil {
		return nil, err
	}
	return *res, nil
}

// Admin is a typed administrative client for fabric stations — the
// class administrator front end of the distribution layer, used by
// webdocctl.
type Admin struct {
	pool *transport.Pool
}

// DialAdmin builds an administrative client for one station address.
// Connections open lazily on first use.
func DialAdmin(addr string) *Admin {
	return &Admin{pool: transport.NewPool(addr, 2, 5*time.Minute)}
}

// Close releases the client's connections.
func (a *Admin) Close() { a.pool.Close() }

// Topology fetches the station's view of the fabric.
func (a *Admin) Topology() (TopologyReply, error) {
	var reply TopologyReply
	err := a.pool.Call(methodTopology, struct{}{}, &reply)
	return reply, err
}

// adminTrace mints a fresh trace context for one administrative
// operation, so every tree traversal an Admin triggers is traceable by
// a single ID even though the client itself keeps no span ring.
func adminTrace() obs.TraceContext {
	return obs.TraceContext{TraceID: obs.NewTraceID()}
}

// Broadcast runs a tree-wide broadcast from the root station.
func (a *Admin) Broadcast(url string, refOnly bool) (BroadcastResult, error) {
	var reply BroadcastResult
	err := a.pool.CallTrace(methodBroadcast, BroadcastRequest{URL: url, RefOnly: refOnly}, &reply, adminTrace(), 0)
	return reply, err
}

// BroadcastAll runs one batched tree-wide broadcast of several
// documents from the root station (one coalesced frame per tree edge).
func (a *Admin) BroadcastAll(urls []string, refOnly bool) (BroadcastResult, error) {
	var reply BroadcastResult
	err := a.pool.CallTrace(methodBroadcast, BroadcastRequest{URLs: urls, RefOnly: refOnly}, &reply, adminTrace(), 0)
	return reply, err
}

// Fetch makes the dialed station resolve a document for itself via its
// parent route.
func (a *Admin) Fetch(url string) (FetchResult, error) {
	var reply FetchResult
	err := a.pool.CallTrace(methodFetch, FetchRequest{URL: url}, &reply, adminTrace(), 0)
	return reply, err
}

// EndLecture runs the post-lecture migration from the root station.
func (a *Admin) EndLecture(url string) (MigrateReply, error) {
	var reply MigrateReply
	err := a.pool.CallTrace(methodEndLecture, EndLectureRequest{URL: url}, &reply, adminTrace(), 0)
	return reply, err
}

// Search runs a federation-wide full-text query through the dialed
// station: the station forwards to the root, which scatters the query
// down the distribution tree and merges the top-k hits per hop.
func (a *Admin) Search(terms []string, phrase bool, topK int) (SearchReply, error) {
	var reply SearchReply
	err := a.pool.CallTrace(methodSearch, SearchRequest{Terms: terms, Phrase: phrase, TopK: topK}, &reply, adminTrace(), 0)
	return reply, err
}

// Trace collects every span recorded fabric-wide for one trace ID: the
// dialed station forwards to the root, which scatters the collection
// down the distribution tree and concatenates each hop's contribution.
func (a *Admin) Trace(id uint64) (TraceReply, error) {
	var reply TraceReply
	err := a.pool.Call(methodTrace, TraceRequest{ID: id}, &reply)
	return reply, err
}

// Events collects the fabric-wide journal timeline matching the
// filter: the dialed station forwards to the root, which scatters the
// collection down the distribution tree and merges each hop's journal.
func (a *Admin) Events(f obs.EventFilter) (EventsReply, error) {
	var reply EventsReply
	err := a.pool.Call(methodEvents, EventsRequest{Filter: f}, &reply)
	return reply, err
}

// Health fetches the station's liveness view of the fabric (the
// root's view is authoritative).
func (a *Admin) Health() (HealthReply, error) {
	var reply HealthReply
	err := a.pool.Call(methodHealth, struct{}{}, &reply)
	return reply, err
}

// Evict force-marks a station dead on the root, returning the
// resulting health view. Probes remain ground truth: a station that
// still answers heartbeats is revived on the root's next sweep, so
// eviction is for stations the prober has not caught up with, not for
// banishing healthy ones.
func (a *Admin) Evict(pos int) (HealthReply, error) {
	var reply HealthReply
	err := a.pool.Call(methodEvict, EvictRequest{Pos: pos}, &reply)
	return reply, err
}
