package wire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"testing"
	"time"
)

func TestValueRoundTrip(t *testing.T) {
	values := []any{
		nil,
		int64(0), int64(1), int64(-1), int64(math.MaxInt64), int64(math.MinInt64),
		float64(0), 3.14159, math.Inf(1), math.Inf(-1), -0.0,
		"", "hello", "héllo wörld \x00 with bytes",
		[]byte(nil), []byte{0xDE, 0xAD, 0xBE, 0xEF}, bytes.Repeat([]byte{7}, 4096),
		true, false,
		time.Unix(0, 0).UTC(),
		time.Date(1999, 9, 21, 12, 30, 45, 123456789, time.UTC),
		time.Date(1600, 1, 1, 0, 0, 0, 999999999, time.UTC), // pre-Unix, beyond UnixNano range is fine too
		time.Date(2400, 6, 15, 8, 0, 0, 1, time.UTC),
	}
	var buf []byte
	for _, v := range values {
		var err error
		buf, err = AppendValue(buf, v)
		if err != nil {
			t.Fatalf("AppendValue(%#v): %v", v, err)
		}
	}
	r := NewReader(buf)
	for _, want := range values {
		got := r.Value()
		if r.Err() != nil {
			t.Fatalf("decoding %#v: %v", want, r.Err())
		}
		switch w := want.(type) {
		case []byte:
			if !bytes.Equal(got.([]byte), w) && !(len(w) == 0 && got == nil) {
				t.Fatalf("bytes round trip: got %v want %v", got, w)
			}
		case time.Time:
			if !got.(time.Time).Equal(w) {
				t.Fatalf("time round trip: got %v want %v", got, w)
			}
		default:
			if got != want {
				t.Fatalf("round trip: got %#v want %#v", got, want)
			}
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left over", r.Len())
	}
}

func TestValueRejectsUnknownType(t *testing.T) {
	if _, err := AppendValue(nil, struct{ X int }{1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	full, err := AppendValue(nil, "a string long enough to truncate")
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail with ErrCorrupt, never panic.
	for i := 0; i < len(full); i++ {
		r := NewReader(full[:i])
		r.Value()
		if r.Err() == nil {
			t.Fatalf("prefix of %d bytes decoded without error", i)
		}
		if !errors.Is(r.Err(), ErrCorrupt) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrCorrupt", i, r.Err())
		}
	}
}

func TestReaderLyingLength(t *testing.T) {
	// A string claiming far more bytes than the buffer holds must not
	// allocate the claimed size or read out of bounds.
	buf := AppendUvarint([]byte{tagStr}[:1], 1<<40)
	r := NewReader(buf)
	r.Value()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", r.Err())
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var log []byte
	payloads := [][]byte{
		[]byte("first"),
		{},
		bytes.Repeat([]byte{0xAB}, 1000),
		[]byte("{looks like JSON but is binary payload}"),
	}
	for _, p := range payloads {
		log = AppendRecord(log, p)
	}
	br := bufio.NewReader(bytes.NewReader(log))
	for i, want := range payloads {
		got, err := ReadRecord(br, 0)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadRecord(br, 0); err != io.EOF {
		t.Fatalf("after last record: err = %v, want io.EOF", err)
	}
}

// TestRecordTornTail pins the crash contract: a log truncated at any
// byte offset yields every record fully contained in the prefix, then
// exactly io.EOF (clean boundary) or io.ErrUnexpectedEOF (torn
// record) — never a hang, a panic, or a phantom record.
func TestRecordTornTail(t *testing.T) {
	var log []byte
	var boundaries []int
	for i := 0; i < 5; i++ {
		log = AppendRecord(log, bytes.Repeat([]byte{byte(i)}, 10+i*7))
		boundaries = append(boundaries, len(log))
	}
	complete := func(n int) int {
		c := 0
		for _, b := range boundaries {
			if b <= n {
				c++
			}
		}
		return c
	}
	for cut := 0; cut <= len(log); cut++ {
		br := bufio.NewReader(bytes.NewReader(log[:cut]))
		read := 0
		for {
			_, err := ReadRecord(br, 0)
			if err == io.EOF {
				break
			}
			if err == io.ErrUnexpectedEOF {
				break
			}
			if err != nil {
				t.Fatalf("cut %d: unexpected error %v", cut, err)
			}
			read++
		}
		if want := complete(cut); read != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, read, want)
		}
	}
}

func TestRecordChecksumMismatch(t *testing.T) {
	log := AppendRecord(nil, []byte("payload under protection"))
	// Flip one payload byte; the frame is fully present, so this must
	// surface as ErrChecksum, not as a torn tail.
	log[5] ^= 0x01
	_, err := ReadRecord(bufio.NewReader(bytes.NewReader(log)), 0)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestRecordRejectsForeignBytes(t *testing.T) {
	for _, junk := range [][]byte{
		[]byte(`{"seq":1,"commit":true}` + "\n"), // legacy JSON line
		{0x00, 0x01, 0x02},
		{0xFF, 0x82},
	} {
		_, err := ReadRecord(bufio.NewReader(bytes.NewReader(junk)), 0)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("junk %v: err = %v, want ErrCorrupt", junk, err)
		}
	}
}

func TestRecordSizeBound(t *testing.T) {
	log := AppendRecord(nil, bytes.Repeat([]byte{1}, 100))
	if _, err := ReadRecord(bufio.NewReader(bytes.NewReader(log)), 10); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt for an over-limit record", err)
	}
}

func TestImageRoundTrip(t *testing.T) {
	payload := []byte("the whole checkpoint image body")
	img := SealImage(SnapMagic, payload)
	if !IsImage(SnapMagic, img) {
		t.Fatal("sealed image not recognized by sniff")
	}
	if IsImage(BlobMagic, img) {
		t.Fatal("sniff matched the wrong magic")
	}
	got, err := OpenImage(SnapMagic, img)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("image payload mismatch")
	}
	// Corruption anywhere in the payload must be caught by the CRC.
	img[4] ^= 0x40
	if _, err := OpenImage(SnapMagic, img); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	// A gob stream must never sniff as an image.
	if IsImage(SnapMagic, []byte{0x1F, 0x8B, 0x00}) {
		t.Fatal("gob-ish bytes sniffed as image")
	}
}

func TestBufPool(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatal("pooled buffer not empty")
	}
	b = append(b, "scratch"...)
	PutBuf(b)
	// Oversized buffers must be dropped, not retained.
	PutBuf(make([]byte, 0, maxPooledBuf*2))
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: the codec against the encodings it replaces. These
// ride in the CI benchtime=1x compile check with every other package's
// benchmarks.
// ---------------------------------------------------------------------------

func benchRow() map[string]any {
	return map[string]any{
		"script_name": "course-101/lecture-07",
		"author":      "prof",
		"position":    int64(7),
		"ratio":       0.625,
		"persistent":  true,
		"created":     time.Date(1999, 3, 1, 9, 0, 0, 0, time.UTC),
		"content":     bytes.Repeat([]byte{0x5A}, 1024),
	}
}

func BenchmarkAppendValueRow(b *testing.B) {
	row := benchRow()
	keys := make([]string, 0, len(row))
	for k := range row {
		keys = append(keys, k)
	}
	buf := GetBuf()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for _, k := range keys {
			buf = AppendString(buf, k)
			var err error
			buf, err = AppendValue(buf, row[k])
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkReadValueRow(b *testing.B) {
	row := benchRow()
	var buf []byte
	for k, v := range row {
		buf = AppendString(buf, k)
		var err error
		buf, err = AppendValue(buf, v)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		for j := 0; j < len(row); j++ {
			_ = r.String() // vet reads a String() method as fmt.Stringer
			r.Value()
		}
		if r.Err() != nil || r.Len() != 0 {
			b.Fatalf("decode: %v (%d left)", r.Err(), r.Len())
		}
	}
}

func BenchmarkRecordRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte{0xC3}, 4096)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetBuf()
		buf = AppendRecord(buf, payload)
		got, err := ReadRecord(bufio.NewReader(bytes.NewReader(buf)), 0)
		if err != nil || len(got) != len(payload) {
			b.Fatalf("round trip: %v", err)
		}
		PutBuf(buf)
	}
}

func ExampleAppendValue() {
	buf, _ := AppendValue(nil, int64(-42))
	buf, _ = AppendValue(buf, "doc")
	r := NewReader(buf)
	fmt.Println(r.Value(), r.Value(), r.Err())
	// Output: -42 doc <nil>
}
