// Command webdocctl is the administrative client for webdocd stations:
// the class administrator front end of the paper's three-tier
// architecture, speaking the station RPC protocol.
//
// Usage:
//
//	webdocctl -addr 127.0.0.1:7070 ping
//	webdocctl -addr 127.0.0.1:7070 stats
//	webdocctl -addr 127.0.0.1:7070 sql "SELECT * FROM scripts"
//	webdocctl -addr 127.0.0.1:7070 tables
//	webdocctl -addr 127.0.0.1:7070 checkpoint
//	webdocctl -addr 127.0.0.1:7070 pull http://mmu/course-001/v1 127.0.0.1:7071
//	webdocctl -addr 127.0.0.1:7070 topology
//	webdocctl -addr 127.0.0.1:7070 broadcast http://mmu/course-001/v1
//	webdocctl -addr 127.0.0.1:7072 resolve http://mmu/course-001/v1
//	webdocctl -addr 127.0.0.1:7070 migrate http://mmu/course-001/v1
//	webdocctl -addr 127.0.0.1:7070 health
//	webdocctl -addr 127.0.0.1:7070 evict 3
//	webdocctl -addr 127.0.0.1:7072 -k 5 search watermark frequency
//
// Every verb takes the station through the global -addr flag and
// supports -json, which prints the station's raw typed reply as
// indented JSON — the machine-readable surface scripts and the load
// harness build on. Field names match the RPC reply structs.
//
// "pull URL TARGET" copies a document bundle from the -addr station to
// the TARGET station (pre-broadcast of a single document by hand). The
// topology/broadcast/resolve/migrate verbs drive a live distribution
// fabric: broadcast and migrate address the root station, resolve makes
// the addressed station pull the document up its parent route.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/mtree"
)

// jsonOut switches every verb from human rendering to indented JSON.
var jsonOut bool

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "station address")
	refsOnly := flag.Bool("refs", false, "broadcast: push document references instead of full instances")
	topK := flag.Int("k", 10, "search: maximum hits to return")
	phrase := flag.Bool("phrase", false, "search: require the terms as a consecutive phrase")
	flag.BoolVar(&jsonOut, "json", false, "print the raw typed reply as indented JSON")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// The fabric verbs use the typed administrative client; everything
	// else speaks the base station protocol.
	switch args[0] {
	case "topology", "broadcast", "resolve", "migrate", "health", "evict", "search":
		runFabric(*addr, args, *refsOnly, *topK, *phrase)
		return
	}

	rs, err := cluster.DialStation(*addr)
	if err != nil {
		fail("dial %s: %v", *addr, err)
	}
	defer rs.Close()

	switch args[0] {
	case "ping":
		info, err := rs.Ping()
		if err != nil {
			fail("ping: %v", err)
		}
		if emit(info) {
			return
		}
		fmt.Printf("station %d: %d tables, %d document objects\n", info.Pos, len(info.Tables), info.Objects)
	case "stats":
		reply, err := rs.Stats()
		if err != nil {
			fail("stats: %v", err)
		}
		if emit(reply) {
			return
		}
		printStats(reply)
	case "tables":
		info, err := rs.Ping()
		if err != nil {
			fail("ping: %v", err)
		}
		if emit(info.Tables) {
			return
		}
		for _, t := range info.Tables {
			fmt.Println(t)
		}
	case "sql":
		if len(args) < 2 {
			usage()
		}
		reply, err := rs.SQL(strings.Join(args[1:], " "))
		if err != nil {
			fail("sql: %v", err)
		}
		if emit(reply) {
			return
		}
		printSQL(reply)
	case "checkpoint":
		reply, err := rs.Checkpoint()
		if err != nil {
			fail("checkpoint: %v", err)
		}
		if emit(reply) {
			return
		}
		fmt.Printf("checkpoint generation %d: %d snapshot bytes, wal seq %d\n", reply.Gen, reply.Bytes, reply.Seq)
	case "pull":
		if len(args) != 3 {
			usage()
		}
		url, target := args[1], args[2]
		bundle, err := rs.FetchBundle(url)
		if err != nil {
			fail("fetch bundle: %v", err)
		}
		dst, err := cluster.DialStation(target)
		if err != nil {
			fail("dial target %s: %v", target, err)
		}
		defer dst.Close()
		reply, err := dst.Import(bundle, false)
		if err != nil {
			fail("import: %v", err)
		}
		if emit(struct {
			URL      string
			Target   string
			ObjectID string
			Form     string
			Bytes    int64
		}{url, target, reply.ObjectID, reply.Form, bundle.TotalBytes()}) {
			return
		}
		fmt.Printf("pulled %s to %s: object %s (%s), %d bytes\n",
			url, target, reply.ObjectID, reply.Form, bundle.TotalBytes())
	default:
		usage()
	}
}

// runFabric executes one distribution-fabric verb against a station.
func runFabric(addr string, args []string, refsOnly bool, topK int, phrase bool) {
	admin := fabric.DialAdmin(addr)
	defer admin.Close()
	switch args[0] {
	case "search":
		if len(args) < 2 {
			usage()
		}
		res, err := admin.Search(args[1:], phrase, topK)
		if err != nil {
			fail("search: %v", err)
		}
		if emit(res) {
			return
		}
		dead := 0
		for _, sr := range res.Stations {
			if sr.Err != "" {
				dead++
			}
		}
		fmt.Printf("%d hit(s) from %d station(s), %d unreachable\n",
			len(res.Hits), len(res.Stations)-dead, dead)
		for _, h := range res.Hits {
			switch h.Kind {
			case "script":
				fmt.Printf("  %-8d catalog  %s @station %d\n", h.Score, h.Path, h.Station)
			default:
				fmt.Printf("  %-8d %-8s %s %s @station %d\n", h.Score, h.Kind, h.URL, h.Path, h.Station)
			}
			if h.Snippet != "" {
				fmt.Printf("           ... %s ...\n", h.Snippet)
			}
		}
		for _, sr := range res.Stations {
			if sr.Err != "" {
				fmt.Printf("  station %-3d UNREACHABLE %s\n", sr.Pos, sr.Err)
			}
		}
	case "topology":
		top, err := admin.Topology()
		if err != nil {
			fail("topology: %v", err)
		}
		if emit(top) {
			return
		}
		role := "station"
		if top.IsRoot {
			role = "root"
		}
		fmt.Printf("%s %d of %d, m=%d, watermark=%d\n", role, top.Pos, top.N, top.M, top.Watermark)
		positions := make([]int, 0, len(top.Roster))
		for pos := range top.Roster {
			positions = append(positions, pos)
		}
		sort.Ints(positions)
		for _, pos := range positions {
			parent := "-"
			if p, err := mtree.Parent(pos, top.M); err == nil {
				parent = fmt.Sprint(p)
			}
			fmt.Printf("  station %-3d %-21s parent %s\n", pos, top.Roster[pos], parent)
		}
	case "broadcast":
		if len(args) != 2 {
			usage()
		}
		res, err := admin.Broadcast(args[1], refsOnly)
		if err != nil {
			fail("broadcast: %v", err)
		}
		if emit(res) {
			return
		}
		what := "instances"
		if res.RefOnly {
			what = "references"
		}
		fmt.Printf("broadcast %s: %d bytes/copy as %s\n", res.URL, res.Bytes, what)
		for _, sr := range res.Stations {
			if sr.Err != "" {
				fmt.Printf("  station %-3d ERROR %s\n", sr.Pos, sr.Err)
				continue
			}
			fmt.Printf("  station %-3d %s\n", sr.Pos, sr.Form)
		}
	case "resolve":
		if len(args) != 2 {
			usage()
		}
		res, err := admin.Fetch(args[1])
		if err != nil {
			fail("resolve: %v", err)
		}
		if emit(res) {
			return
		}
		switch {
		case res.Local:
			fmt.Printf("resolved %s locally\n", res.URL)
		case res.Replicated:
			fmt.Printf("resolved %s via station %d: %d bytes, fetch %d crossed the watermark, instance materialized\n",
				res.URL, res.ServedBy, res.Bytes, res.Fetches)
		default:
			fmt.Printf("resolved %s via station %d: %d bytes, fetch %d below the watermark\n",
				res.URL, res.ServedBy, res.Bytes, res.Fetches)
		}
	case "migrate":
		if len(args) != 2 {
			usage()
		}
		res, err := admin.EndLecture(args[1])
		if err != nil {
			fail("migrate: %v", err)
		}
		if emit(res) {
			return
		}
		fmt.Printf("migrated %d station(s), reclaimed %d bytes\n", len(res.Stations), res.Freed)
		for _, sr := range res.Stations {
			if sr.Err != "" {
				fmt.Printf("  station %-3d ERROR %s\n", sr.Pos, sr.Err)
				continue
			}
			fmt.Printf("  station %-3d -> %s (%d bytes freed)\n", sr.Pos, sr.Form, sr.Freed)
		}
	case "health":
		health, err := admin.Health()
		if err != nil {
			fail("health: %v", err)
		}
		if emit(health) {
			return
		}
		printHealth(health)
	case "evict":
		if len(args) != 2 {
			usage()
		}
		pos, err := strconv.Atoi(args[1])
		if err != nil {
			fail("evict: bad position %q", args[1])
		}
		health, err := admin.Evict(pos)
		if err != nil {
			fail("evict: %v", err)
		}
		if emit(health) {
			return
		}
		fmt.Printf("station %d evicted\n", pos)
		printHealth(health)
	}
}

// emit prints v as indented JSON when -json is set, reporting whether
// it handled the output.
func emit(v any) bool {
	if !jsonOut {
		return false
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail("encoding json: %v", err)
	}
	return true
}

// printStats renders the unified station snapshot.
func printStats(s cluster.StatsReply) {
	fmt.Printf("station %d: %d tables, %d document objects\n", s.Pos, s.Tables, s.Objects)
	fmt.Printf("  wire      %d bytes in, %d bytes out\n", s.BytesIn, s.BytesOut)
	if len(s.Ops) > 0 {
		methods := make([]string, 0, len(s.Ops))
		for m := range s.Ops {
			methods = append(methods, m)
		}
		sort.Strings(methods)
		fmt.Printf("  ops       ")
		for i, m := range methods {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s=%d", m, s.Ops[m])
		}
		fmt.Println()
	}
	if s.Durable {
		fmt.Printf("  wal       checkpoint gen %d, seq %d, %d tail bytes\n", s.CheckpointGen, s.WALSeq, s.WALTailBytes)
	} else {
		fmt.Printf("  wal       in-memory (no durability directory)\n")
	}
	fmt.Printf("  blobs     %d objects, %d physical bytes (%d logical)\n", s.BlobObjects, s.PhysicalBytes, s.LogicalBytes)
	if s.Indexed {
		fmt.Printf("  index     %d docs, %d terms, %d postings\n", s.IndexDocs, s.IndexTerms, s.IndexPostings)
	} else {
		fmt.Printf("  index     none attached\n")
	}
}

// printHealth renders a liveness view: one line per roster entry with
// its up/down/suspect state.
func printHealth(h fabric.HealthReply) {
	role := "station"
	if h.IsRoot {
		role = "root"
	}
	fmt.Printf("%s %d of %d, epoch %d, %d down\n", role, h.Pos, h.N, h.Epoch, len(h.Down))
	down := make(map[int]bool, len(h.Down))
	for _, pos := range h.Down {
		down[pos] = true
	}
	suspect := make(map[int]bool, len(h.Suspect))
	for _, pos := range h.Suspect {
		suspect[pos] = true
	}
	positions := make([]int, 0, len(h.Roster))
	for pos := range h.Roster {
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	for _, pos := range positions {
		state := "up"
		switch {
		case down[pos]:
			state = "DOWN"
		case suspect[pos]:
			state = "suspect"
		}
		fmt.Printf("  station %-3d %-21s %s\n", pos, h.Roster[pos], state)
	}
}

func printSQL(reply cluster.SQLReply) {
	if reply.Msg != "" {
		fmt.Println(reply.Msg)
		return
	}
	if reply.Columns == nil {
		fmt.Printf("%d row(s) affected\n", reply.Affected)
		return
	}
	widths := make([]int, len(reply.Columns))
	for i, c := range reply.Columns {
		widths[i] = len(c)
	}
	for _, row := range reply.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, c := range reply.Columns {
		fmt.Printf("%-*s  ", widths[i], c)
	}
	fmt.Println()
	for i := range reply.Columns {
		fmt.Print(strings.Repeat("-", widths[i]), "  ")
	}
	fmt.Println()
	for _, row := range reply.Rows {
		for i, cell := range row {
			fmt.Printf("%-*s  ", widths[i], cell)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(reply.Rows))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: webdocctl [-addr host:port] [-json] [-refs] [-k N] [-phrase] COMMAND
commands:
  ping                 station status
  stats                unified station accounting (ops, bytes, WAL, blobs, index)
  tables               list relational tables
  sql "STATEMENT"      run a minisql statement
  checkpoint           write a checkpoint generation now (compacts the WAL tail)
  pull URL TARGET      copy a document bundle to another station
  topology             show the distribution fabric (any joined station)
  broadcast URL        push a course down the m-ary tree (root; -refs for references)
  resolve URL          make the station pull the document up its parent route
  migrate URL          post-lecture migration back to references (root)
  health               show per-station liveness (root view is authoritative)
  evict POS            force-mark a station dead on the root (heartbeats revive it if it still answers)
  search TERM...       federation-wide full-text query ([-k N] hits, [-phrase] exact phrase)
flags apply to every command; -json prints the raw typed reply as indented JSON`)
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "webdocctl: "+format+"\n", args...)
	os.Exit(1)
}
