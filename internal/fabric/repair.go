package fabric

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/docdb"
	"repro/internal/mtree"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/transport"
)

// Tree repair. A broadcast or migration hop that cannot reach a child
// retries once (store-and-forward retry), then grafts the dead child's
// children onto itself — the same rule mtree.LiveChildren expresses
// and the netsim simulator models — so a dead interior station costs
// its own copy, never its subtree's. Resolve applies the dual rule:
// the parent route skips dead ancestors (mtree.LiveAncestors) and
// falls back to suspects only when nothing else answers.

// CatalogEntry is one broadcast the root remembers for rejoin
// catch-up: the document URL and whether the tree currently holds it
// as references (a reference broadcast, or a full one that has since
// migrated) or as full instances.
type CatalogEntry struct {
	URL     string
	RefOnly bool
}

// CatalogReply lists the root's broadcast history, most recent form
// per URL.
type CatalogReply struct {
	Entries []CatalogEntry
}

// RefsRequest asks a station for a document's metadata closure (script
// and implementation rows only) — the payload of a reference import.
type RefsRequest struct {
	URL string
}

// RefsReply carries the metadata closure.
type RefsReply struct {
	Bundle docdb.Bundle
}

// CatchUpResult summarizes a rejoin catch-up.
type CatchUpResult struct {
	// References counts the reference scaffolds installed for
	// documents the station had never seen.
	References int
	// Migrated counts stale local instances (restored from the WAL
	// across a crash) reclaimed because the tree migrated the document
	// while this station was dark.
	Migrated int
	// Resolved holds the per-document outcome of re-pulling missed
	// full broadcasts under the watermark policy.
	Resolved []FetchResult
	// Streamed reports that the missing documents arrived as one
	// checkpoint stream from the root (the far-behind path) instead of
	// per-entry pulls; StreamedBytes is the stream's transfer size.
	Streamed      bool
	StreamedBytes int64
}

// recordBroadcast notes a tree-wide broadcast in the root's catalog so
// rejoining stations can catch up on it. The latest form per URL wins:
// a full broadcast that later migrated is remembered as references.
func (s *Station) recordBroadcast(url string, refOnly bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.catalog {
		if s.catalog[i].URL == url {
			s.catalog[i].RefOnly = refOnly
			return
		}
	}
	s.catalog = append(s.catalog, CatalogEntry{URL: url, RefOnly: refOnly})
}

// markMigrated flips an existing catalog entry to reference form after
// an end-of-lecture migration; a rejoiner should rebuild the reference,
// not re-materialize a reclaimed instance.
func (s *Station) markMigrated(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.catalog {
		if s.catalog[i].URL == url {
			s.catalog[i].RefOnly = true
			return
		}
	}
}

// treeAgg is what one subtree's fan-out returns: the per-station
// results plus whatever payload the operation aggregates — freed bytes
// for migrations, ranked hits for scatter-gather searches, collected
// spans for trace gathers, journal events for event gathers. Pushes
// use the results alone.
type treeAgg struct {
	Stations []StationResult
	Freed    int64
	Hits     []search.Hit
	Spans    []obs.Span
	Events   []obs.Event
}

// fanOutTree delivers one tree operation (push, migrate, search or
// trace gather) to every child of pos in parallel and collects the
// subtree aggregates, routing around dead hops: a known-down child is
// skipped outright, an unreachable one gets the store-and-forward
// retry, and either way the dead station's children are served
// directly by this station via a recursive fan-out from the dead
// position (grafting). The dead hop itself is reported per station in
// the result, never as a call failure. send delivers to one child
// address and returns that subtree's aggregate; routeAround classifies
// which send errors are safe to repair by grafting (canRouteAround for
// one-shot deliveries, a looser rule for idempotent reads — see
// searchFanOut). span, when the operation is traced, collects graft
// annotations for this hop (nil is fine).
func (s *Station) fanOutTree(span *obs.ActiveSpan, pos, m, n int, roster map[int]string, routeAround func(error) bool, send func(addr string) (treeAgg, error)) treeAgg {
	kids, err := mtree.Children(pos, m, n)
	if err != nil {
		return treeAgg{Stations: []StationResult{{Pos: pos, Err: err.Error()}}}
	}
	var mu sync.Mutex
	var agg treeAgg
	var wg sync.WaitGroup
	for _, kid := range kids {
		kid := kid
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := s.childSubtree(span, kid, m, n, roster, routeAround, send)
			mu.Lock()
			agg.Stations = append(agg.Stations, sub.Stations...)
			agg.Freed += sub.Freed
			agg.Hits = append(agg.Hits, sub.Hits...)
			agg.Spans = append(agg.Spans, sub.Spans...)
			agg.Events = append(agg.Events, sub.Events...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return agg
}

// childSubtree covers one child's subtree for fanOutTree: a reachable
// child relays onward itself; a dead one is reported and its children
// grafted onto this station — annotated on the hop's span and emitted
// as a graft event so repairs are visible in traces and logs.
func (s *Station) childSubtree(span *obs.ActiveSpan, kid, m, n int, roster map[int]string, routeAround func(error) bool, send func(addr string) (treeAgg, error)) treeAgg {
	s.mu.Lock()
	dead := s.down[kid] || s.suspect[kid]
	s.mu.Unlock()
	failure := "station down"
	fresh := false // a live delivery attempt failed just now
	if !dead {
		fresh = true
		addr := roster[kid]
		if addr == "" {
			failure = "no address in roster"
		} else {
			agg, err := send(addr)
			if err == nil {
				return agg
			}
			if !routeAround(err) {
				// The station answered (it is alive, the operation
				// just failed there) or the call timed out (it may
				// still be executing and fanning out). No grafting —
				// doubling the delivery would be worse than reporting
				// the hop.
				return treeAgg{Stations: []StationResult{{Pos: kid, Err: err.Error()}}}
			}
			// Suspicion is recorded only for hard unreachability
			// (canRouteAround), never for timeouts: an idempotent
			// search may graft around a merely slow station, but
			// marking it suspect would make the next one-shot
			// broadcast skip delivering to it outright.
			if canRouteAround(err) {
				s.noteSuspect(kid)
			}
			failure = err.Error()
		}
	}
	span.Annotate("grafted dead child %d: %s", kid, failure)
	if fresh {
		// Journal the discovery, not every traversal that recalls it:
		// routing around a child the roster already declares down is
		// policy, and journaling it would make each Events collection
		// around a dead station write its own scatter into the ring it
		// is reading.
		s.eventSpan(span, "graft", "station", s.Pos(), "child", kid, "cause", failure)
	}
	sub := s.fanOutTree(span, kid, m, n, roster, routeAround, send)
	sub.Stations = append([]StationResult{{Pos: kid, Err: failure}}, sub.Stations...)
	return sub
}

// fanOut relays a push to every child of pos, grafting around dead
// hops. Every failure mode lands as a per-station result entry, never
// as a call failure. The hop's span context rides on each child call.
func (s *Station) fanOut(pos int, req PushRequest, span *obs.ActiveSpan) []StationResult {
	tc := span.Context()
	agg := s.fanOutTree(span, pos, req.M, req.N, req.Roster, canRouteAround, func(addr string) (treeAgg, error) {
		var reply PushReply
		if err := s.callWithRetry(addr, methodPush, req, &reply, tc); err != nil {
			return treeAgg{}, err
		}
		return treeAgg{Stations: reply.Results}, nil
	})
	return agg.Stations
}

// canRouteAround reports whether a failed tree call is safe to repair
// by grafting: the peer must have been unreachable at the transport
// level, and NOT by timeout — a timed-out peer may still be executing
// the call (and relaying to its own subtree), so re-delivering its
// work would duplicate it. Timed-out stations are left to the
// heartbeat prober, whose probes carry no side effects.
func canRouteAround(err error) bool {
	return transport.Unreachable(err) && !errors.Is(err, transport.ErrTimeout)
}

// callWithRetry is one store-and-forward delivery attempt cycle: an
// unreachable peer gets pushAttempts tries a short delay apart before
// the caller routes around it. Timed-out calls are never re-sent (the
// transport layer's own rule: the server may still be executing them).
// tc carries the operation's trace context to the peer.
func (s *Station) callWithRetry(addr, method string, req, reply any, tc obs.TraceContext) error {
	var err error
	for attempt := 0; attempt < pushAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(pushRetryDelay)
		}
		err = s.pool(addr).CallTrace(method, req, reply, tc, 0)
		if err == nil || !canRouteAround(err) {
			return err
		}
	}
	return err
}

// migrateFanOut is fanOut for end-of-lecture migrations: the same
// grafting, aggregating freed bytes beside the per-station results. A
// dead station's own copy cannot be reclaimed now; it is reported and
// reconciled when the station rejoins (its catch-up rebuilds the
// document as a reference).
func (s *Station) migrateFanOut(pos int, req MigrateRequest, span *obs.ActiveSpan) MigrateReply {
	tc := span.Context()
	agg := s.fanOutTree(span, pos, req.M, req.N, req.Roster, canRouteAround, func(addr string) (treeAgg, error) {
		var reply MigrateReply
		if err := s.callWithRetry(addr, methodMigrate, req, &reply, tc); err != nil {
			return treeAgg{}, err
		}
		return treeAgg{Stations: reply.Stations, Freed: reply.Freed}, nil
	})
	return MigrateReply{Freed: agg.Freed, Stations: agg.Stations}
}

// resolveViaAncestors walks the parent route for a missing document,
// skipping dead ancestors: the request goes to the nearest live
// ancestor (which relays further up itself), and only if every live
// candidate proves unreachable are the suspected ones tried as a last
// resort — they may have recovered since the last epoch reached this
// station. span, when the resolve is traced, records skipped ancestors
// and carries the trace context up the route.
func (s *Station) resolveViaAncestors(url string, ttl int, span *obs.ActiveSpan) (*ResolveReply, error) {
	v := s.view()
	tc := span.Context()
	live, err := mtree.LiveAncestors(v.pos, v.m, v.dead)
	if err != nil {
		return nil, err
	}
	skipped, err := mtree.LiveAncestors(v.pos, v.m, func(p int) bool { return !v.dead(p) })
	if err != nil {
		return nil, err
	}
	var lastErr error
	for _, p := range append(live, skipped...) {
		addr := v.roster[p]
		if addr == "" {
			continue
		}
		var reply ResolveReply
		err := s.pool(addr).CallTrace(methodResolve, ResolveRequest{URL: url, TTL: ttl}, &reply, tc, 0)
		if err == nil {
			return &reply, nil
		}
		if !transport.Unreachable(err) {
			// A live ancestor answered with a definitive error (for
			// example: no instance anywhere on its own route).
			return nil, err
		}
		span.Annotate("skipped unreachable ancestor %d", p)
		s.noteSuspect(p)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: %s", ErrNoInstance, url)
	}
	return nil, fmt.Errorf("%w from station %d: %v", ErrNoRoute, v.pos, lastErr)
}

// CatchUp reconciles a (re)joined station with the broadcasts it
// missed: the root's catalog lists every tree-wide distribution; for
// each document the station lacks it installs the reference scaffold
// (metadata closure from the root), and for full broadcasts it
// re-pulls the bundle under the watermark policy — so a watermark-0
// fabric rematerializes immediately while a conservative one defers
// the bytes until students actually ask.
//
// A station missing only a document or two walks the catalog entry by
// entry (Refs RPC plus parent-route resolve). One that is far behind —
// catchUpStreamThreshold or more missed documents — pulls the root's
// state snapshot in a single chunked stream instead, so the cost of
// coming back is proportional to the state, not to the number of
// broadcasts that happened while it was dark.
func (s *Station) CatchUp() (*CatchUpResult, error) {
	v := s.view()
	if v.pos == 0 {
		return nil, ErrNotJoined
	}
	out := &CatchUpResult{}
	if v.isRoot {
		return out, nil // the root authored everything it broadcast
	}
	rootAddr := v.roster[1]
	if rootAddr == "" {
		return nil, fmt.Errorf("fabric: no root address in roster")
	}
	var cat CatalogReply
	//lint:ignore tracecall rejoin catch-up runs before the station serves traced traffic; it is its own root operation, not a hop in some caller's traversal
	if err := s.pool(rootAddr).Call(methodCatalog, struct{}{}, &cat); err != nil {
		return nil, fmt.Errorf("fabric: fetching catch-up catalog: %w", err)
	}
	// Sort the catalog into what this station already holds and what
	// it lacks entirely.
	var missing, refHeld []CatalogEntry
	for _, e := range cat.Entries {
		obj, err := s.store.ObjectByURL(e.URL)
		if err != nil {
			missing = append(missing, e)
			continue
		}
		if obj.Form != schema.FormReference {
			// Resident as an instance (or the class). If the tree
			// migrated this document while the station was dark, a
			// WAL-restored copy is the one straggler the migration
			// could not reach — reclaim it now, as EndLecture's dead
			// hop report promised.
			if e.RefOnly && obj.Form == schema.FormInstance && !obj.Persistent {
				s.importMu.Lock()
				merr := s.store.MigrateToReference(obj.ID, 1)
				s.importMu.Unlock()
				if merr != nil {
					return out, merr
				}
				s.mu.Lock()
				delete(s.fetches, e.URL)
				s.mu.Unlock()
				out.Migrated++
			}
			continue
		}
		// Holds the reference already; a full broadcast still owes a
		// re-pull.
		if !e.RefOnly {
			refHeld = append(refHeld, e)
		}
	}
	if len(missing) >= catchUpStreamThreshold {
		if err := s.catchUpStreamed(v, rootAddr, missing, out); err != nil {
			return out, err
		}
	} else {
		for _, e := range missing {
			var refs RefsReply
			//lint:ignore tracecall rejoin catch-up runs before the station serves traced traffic; it is its own root operation, not a hop in some caller's traversal
			if err := s.pool(rootAddr).Call(methodRefs, RefsRequest{URL: e.URL}, &refs); err != nil {
				return out, fmt.Errorf("fabric: pulling reference closure for %s: %w", e.URL, err)
			}
			s.importMu.Lock()
			_, ierr := s.store.ImportReference(refs.Bundle.Script, refs.Bundle.Impl, v.pos, 1)
			s.importMu.Unlock()
			if ierr != nil {
				return out, ierr
			}
			out.References++
			if !e.RefOnly {
				res, err := s.Resolve(e.URL)
				if err != nil {
					return out, err
				}
				out.Resolved = append(out.Resolved, res)
			}
		}
	}
	for _, e := range refHeld {
		res, err := s.Resolve(e.URL)
		if err != nil {
			return out, err
		}
		out.Resolved = append(out.Resolved, res)
	}
	return out, nil
}

// handleCatalog serves the root's broadcast history for catch-up.
func (s *Station) handleCatalog(decode func(any) error) (any, error) {
	var req struct{}
	if err := decode(&req); err != nil {
		return nil, err
	}
	if !s.isRoot {
		return nil, fmt.Errorf("%w: catalog", ErrNotRoot)
	}
	s.mu.Lock()
	entries := make([]CatalogEntry, len(s.catalog))
	copy(entries, s.catalog)
	s.mu.Unlock()
	return CatalogReply{Entries: entries}, nil
}

// handleRefs serves a document's metadata closure from the local
// store.
func (s *Station) handleRefs(decode func(any) error) (any, error) {
	var req RefsRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	impl, err := s.store.Implementation(req.URL)
	if err != nil {
		return nil, err
	}
	script, err := s.store.Script(impl.ScriptName)
	if err != nil {
		return nil, err
	}
	return RefsReply{Bundle: docdb.Bundle{Script: script, Impl: impl}}, nil
}
