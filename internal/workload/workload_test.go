package workload

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/relstore"
)

func newStore(t *testing.T) *docdb.Store {
	t.Helper()
	s, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	s.Now = func() time.Time { return time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC) }
	return s
}

func smallSpec(n int) CourseSpec {
	spec := DefaultSpec(n)
	spec.Pages = 8
	spec.ExtraLinks = 4
	spec.ImagesPerPage = 1
	spec.VideoEvery = 4
	spec.AudioEvery = 0
	spec.MediaScaleDown = 65536
	return spec
}

func TestBuildCourseShape(t *testing.T) {
	s := newStore(t)
	c, err := BuildCourse(s, smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.PageCount != 8 {
		t.Errorf("pages = %d", c.PageCount)
	}
	// 8 images + 2 videos (pages 0 and 4).
	if c.MediaCount != 10 {
		t.Errorf("media = %d", c.MediaCount)
	}
	files, err := s.HTMLFiles(c.Spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 8 {
		t.Errorf("html files = %d", len(files))
	}
	media, err := s.ImplMedia(c.Spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(media) != 10 {
		t.Errorf("media rows = %d", len(media))
	}
	if _, err := s.HTML(c.Spec.URL, "index.html"); err != nil {
		t.Errorf("index.html missing: %v", err)
	}
}

func TestBuildCourseDeterministic(t *testing.T) {
	s1 := newStore(t)
	s2 := newStore(t)
	spec := smallSpec(2)
	c1, err := BuildCourse(s1, spec)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildCourse(s2, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c1.MediaBytes != c2.MediaBytes || c1.MediaCount != c2.MediaCount {
		t.Errorf("non-deterministic generation: %+v vs %+v", c1, c2)
	}
	h1, _ := s1.HTML(spec.URL, "page-0003.html")
	h2, _ := s2.HTML(spec.URL, "page-0003.html")
	if string(h1) != string(h2) {
		t.Error("page content differs across runs")
	}
}

func TestBuildCourseSharedDatabase(t *testing.T) {
	s := newStore(t)
	if _, err := BuildCourse(s, smallSpec(1)); err != nil {
		t.Fatal(err)
	}
	// A second course in the same database must not recreate it.
	if _, err := BuildCourse(s, smallSpec(2)); err != nil {
		t.Fatal(err)
	}
	scripts, err := s.Scripts("mmu")
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) != 2 {
		t.Errorf("scripts = %d", len(scripts))
	}
}

func TestPagePath(t *testing.T) {
	if PagePath(0) != "index.html" {
		t.Errorf("page 0 = %s", PagePath(0))
	}
	if PagePath(12) != "page-0012.html" {
		t.Errorf("page 12 = %s", PagePath(12))
	}
}

func TestAccessPatternZipfSkew(t *testing.T) {
	accesses := AccessPattern(50, 20, 40, 10000, 7)
	if len(accesses) != 10000 {
		t.Fatalf("len = %d", len(accesses))
	}
	counts := make([]int, 20)
	for _, a := range accesses {
		if a.Doc < 0 || a.Doc >= 20 || a.Student < 0 || a.Student >= 50 || a.Page < 0 || a.Page >= 40 {
			t.Fatalf("out of range access %+v", a)
		}
		counts[a.Doc]++
	}
	// Zipf: the most popular course dominates the tail.
	if counts[0] <= counts[10]*2 {
		t.Errorf("no skew: counts[0]=%d counts[10]=%d", counts[0], counts[10])
	}
}

func TestAccessPatternDeterministic(t *testing.T) {
	a := AccessPattern(10, 5, 10, 100, 3)
	b := AccessPattern(10, 5, 10, 100, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestVocabularyAndPickKeywords(t *testing.T) {
	vocab := Vocabulary(100)
	if len(vocab) != 100 || vocab[5] != "kw0005" {
		t.Fatalf("vocab = %v...", vocab[:6])
	}
	rng := rand.New(rand.NewSource(1))
	kws := PickKeywords(rng, vocab, 5)
	if len(kws) != 5 {
		t.Fatalf("kws = %v", kws)
	}
	seen := map[string]bool{}
	for _, k := range kws {
		if seen[k] {
			t.Fatalf("duplicate keyword %s", k)
		}
		seen[k] = true
	}
	// Asking for more than the vocabulary clips.
	kws = PickKeywords(rng, Vocabulary(3), 10)
	if len(kws) != 3 {
		t.Errorf("clipped kws = %v", kws)
	}
}
