package repro

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/annotate"
	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/docdb"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/library"
	"repro/internal/locking"
	"repro/internal/minisql"
	"repro/internal/mtree"
	"repro/internal/netsim"
	"repro/internal/relstore"
	"repro/internal/search"
	"repro/internal/transport"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// One benchmark per evaluation experiment (E1–E10 of DESIGN.md). Each
// iteration regenerates the experiment's table at test scale; run
// cmd/mmubench for the full-scale tables recorded in EXPERIMENTS.md.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, run func(experiments.Scale) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := run(experiments.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1BroadcastTree(b *testing.B) { benchExperiment(b, experiments.E1BroadcastTree) }
func BenchmarkE2Preload(b *testing.B)       { benchExperiment(b, experiments.E2Preload) }
func BenchmarkE3BlobSharing(b *testing.B)   { benchExperiment(b, experiments.E3BlobSharing) }
func BenchmarkE4Watermark(b *testing.B)     { benchExperiment(b, experiments.E4Watermark) }
func BenchmarkE5Migration(b *testing.B)     { benchExperiment(b, experiments.E5Migration) }
func BenchmarkE6Locking(b *testing.B)       { benchExperiment(b, experiments.E6Locking) }
func BenchmarkE7Integrity(b *testing.B)     { benchExperiment(b, experiments.E7Integrity) }
func BenchmarkE8Search(b *testing.B)        { benchExperiment(b, experiments.E8Search) }
func BenchmarkE9Formulas(b *testing.B)      { benchExperiment(b, experiments.E9Formulas) }
func BenchmarkE10AdaptiveM(b *testing.B)    { benchExperiment(b, experiments.E10AdaptiveM) }
func BenchmarkE11Pipelining(b *testing.B)   { benchExperiment(b, experiments.E11Pipelining) }

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

func benchSchema() relstore.Schema {
	return relstore.Schema{
		Name: "t",
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.TInt, NotNull: true},
			{Name: "grp", Type: relstore.TInt},
			{Name: "name", Type: relstore.TText},
		},
		Key: "id",
	}
}

func BenchmarkRelstoreInsert(b *testing.B) {
	db := relstore.NewDB()
	if err := db.CreateTable(benchSchema()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Insert("t", relstore.Row{"id": int64(i), "grp": int64(i % 100), "name": "row"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelstoreGet(b *testing.B) {
	db := relstore.NewDB()
	if err := db.CreateTable(benchSchema()); err != nil {
		b.Fatal(err)
	}
	const rows = 10000
	for i := 0; i < rows; i++ {
		if err := db.Insert("t", relstore.Row{"id": int64(i), "grp": int64(i % 100)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get("t", int64(i%rows)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelstoreIndexedSelect(b *testing.B) {
	db := relstore.NewDB()
	if err := db.CreateTable(benchSchema()); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("t", "grp"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := db.Insert("t", relstore.Row{"id": int64(i), "grp": int64(i % 100)}); err != nil {
			b.Fatal(err)
		}
	}
	q := relstore.Query{Table: "t", Conds: []relstore.Cond{{Col: "grp", Op: relstore.OpEq, Val: int64(7)}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelstoreScanSelect(b *testing.B) {
	db := relstore.NewDB()
	if err := db.CreateTable(benchSchema()); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := db.Insert("t", relstore.Row{"id": int64(i), "grp": int64(i % 100)}); err != nil {
			b.Fatal(err)
		}
	}
	q := relstore.Query{Table: "t", Conds: []relstore.Cond{{Col: "grp", Op: relstore.OpEq, Val: int64(7)}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinisqlParse(b *testing.B) {
	const stmt = `SELECT script_name, author FROM scripts WHERE author = 'Shih' AND version >= 2 ORDER BY script_name LIMIT 10`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minisql.Parse(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinisqlSelect(b *testing.B) {
	db := relstore.NewDB()
	s := minisql.NewSession(db)
	if _, err := s.Exec(`CREATE TABLE t (id INT NOT NULL, grp INT, PRIMARY KEY (id))`); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Exec(`CREATE INDEX ON t (grp)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		stmt := fmt.Sprintf("INSERT INTO t (id, grp) VALUES (%d, %d)", i, i%50)
		if _, err := s.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(`SELECT id FROM t WHERE grp = 7`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlobPutDedup(b *testing.B) {
	store := blob.NewStore()
	contents := make([][]byte, 10)
	for i := range contents {
		contents[i] = []byte(fmt.Sprintf("media-object-%d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Put("n", blob.KindImage, contents[i%len(contents)])
	}
}

func BenchmarkMtreeRounds(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mtree.MaxRound(4095, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetsimTreeBroadcast(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := netsim.New(netsim.Sequential)
		ids := sim.AddNodes(255, 1.25e6, 5*time.Millisecond)
		var forward func(pos int)
		forward = func(pos int) {
			kids, err := mtree.Children(pos, 3, 255)
			if err != nil {
				b.Fatal(err)
			}
			for _, kid := range kids {
				kid := kid
				sim.Transfer(ids[pos-1], ids[kid-1], 1<<20, func(time.Duration) { forward(kid) })
			}
		}
		forward(1)
		sim.Run()
	}
}

func BenchmarkAnnotateEncodeDecode(b *testing.B) {
	doc := &annotate.Document{
		Author:  "Shih",
		PageURL: "http://mmu/x",
	}
	for i := 0; i < 50; i++ {
		doc.Primitives = append(doc.Primitives, annotate.Primitive{
			Kind:   annotate.PrimFreehand,
			At:     time.Duration(i) * time.Second,
			Points: []annotate.Point{{X: int32(i), Y: 0}, {X: 0, Y: int32(i)}, {X: int32(i), Y: int32(i)}},
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := doc.Encode()
		if _, err := annotate.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransportRoundTrip(b *testing.B) {
	srv := transport.NewServer()
	srv.Handle("echo", func(decode func(any) error) (any, error) {
		var req struct{ N int }
		if err := decode(&req); err != nil {
			return nil, err
		}
		return req, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := transport.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var resp struct{ N int }
		if err := c.Call("echo", struct{ N int }{N: i}, &resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBundleExportImport(b *testing.B) {
	src, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		b.Fatal(err)
	}
	src.Now = func() time.Time { return time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC) }
	spec := workload.DefaultSpec(1)
	spec.Pages = 10
	spec.MediaScaleDown = 16384
	if _, err := workload.BuildCourse(src, spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bundle, err := src.ExportBundle(spec.URL)
		if err != nil {
			b.Fatal(err)
		}
		dst, err := docdb.Open(relstore.NewDB(), blob.NewStore())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dst.ImportBundle(bundle, 2, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLibrarySearchIndexed(b *testing.B) {
	lib, queries := benchLibrary(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lib.Search(queries[i%len(queries)])
	}
}

func BenchmarkLibrarySearchScan(b *testing.B) {
	lib, queries := benchLibrary(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lib.ScanSearch(queries[i%len(queries)])
	}
}

func benchLibrary(b *testing.B, size int) (*library.Library, []library.Query) {
	b.Helper()
	store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		b.Fatal(err)
	}
	store.Now = func() time.Time { return time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC) }
	if err := store.CreateDatabase(docdb.Database{Name: "mmu"}); err != nil {
		b.Fatal(err)
	}
	lib := library.New(store)
	lib.RegisterInstructor("Shih")
	vocab := workload.Vocabulary(2000)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < size; i++ {
		name := fmt.Sprintf("c%05d", i)
		err := store.CreateScript(docdb.Script{
			Name: name, DBName: "mmu",
			Author:   fmt.Sprintf("instr%d", i%20),
			Keywords: workload.PickKeywords(rng, vocab, 4),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := lib.Add(name, fmt.Sprintf("N-%d", i), "Shih"); err != nil {
			b.Fatal(err)
		}
	}
	queries := make([]library.Query, 64)
	for i := range queries {
		queries[i] = library.Query{Keywords: workload.PickKeywords(rng, vocab, 2)}
	}
	return lib, queries
}

// ---------------------------------------------------------------------------
// Full-text search benchmarks: the positional inverted index against
// the linear scan baseline on a 10k-document corpus, and the
// federation-wide scatter-gather across fabric sizes and tree degrees.
// ---------------------------------------------------------------------------

// benchSearchCorpus builds a 2000-word-vocabulary corpus of HTML pages
// and a deterministic query mix.
func benchSearchCorpus(b *testing.B, docs int) (*search.Index, []search.Query) {
	b.Helper()
	ix := search.NewIndex()
	vocab := workload.Vocabulary(2000)
	rng := rand.New(rand.NewSource(11))
	var sb strings.Builder
	for i := 0; i < docs; i++ {
		sb.Reset()
		sb.WriteString("<html><body>")
		for w := 0; w < 40; w++ {
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		sb.WriteString("</body></html>")
		ix.IndexHTML(fmt.Sprintf("http://mmu/c%05d/v1", i), "index.html", []byte(sb.String()))
	}
	queries := make([]search.Query, 64)
	for i := range queries {
		queries[i] = search.Query{
			Terms: []string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]},
			TopK:  20,
		}
	}
	return ix, queries
}

// BenchmarkSearchLocal pins the inverted index against the scan
// baseline at 10k documents — the acceptance floor is a 10x gap.
func BenchmarkSearchLocal(b *testing.B) {
	ix, queries := benchSearchCorpus(b, 10000)
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.Search(queries[i%len(queries)])
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.ScanSearch(queries[i%len(queries)])
		}
	})
}

// BenchmarkSearchFabric measures one federation-wide query issued at
// the deepest station across fabric sizes and tree degrees: forward to
// the root, scatter down the m-ary tree, per-hop top-k merge back up.
func BenchmarkSearchFabric(b *testing.B) {
	for _, cfg := range []struct{ stations, m int }{
		{5, 2}, {9, 3}, {13, 3},
	} {
		b.Run(fmt.Sprintf("stations=%d/m=%d", cfg.stations, cfg.m), func(b *testing.B) {
			newStore := func() *docdb.Store {
				store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := search.Attach(store); err != nil {
					b.Fatal(err)
				}
				return store
			}
			seed := func(store *docdb.Store, pos int) {
				if err := store.CreateDatabase(docdb.Database{Name: "mmu"}); err != nil {
					b.Fatal(err)
				}
				script := fmt.Sprintf("local-%03d", pos)
				url := fmt.Sprintf("http://mmu/local-%03d/v1", pos)
				if err := store.CreateScript(docdb.Script{Name: script, DBName: "mmu"}); err != nil {
					b.Fatal(err)
				}
				if err := store.AddImplementation(docdb.Implementation{StartingURL: url, ScriptName: script}); err != nil {
					b.Fatal(err)
				}
				page := fmt.Sprintf("<body>federated corpus shard %d</body>", pos)
				if err := store.PutHTML(url, "index.html", []byte(page)); err != nil {
					b.Fatal(err)
				}
			}
			rootStore := newStore()
			seed(rootStore, 1)
			root, err := fabric.NewRoot(rootStore, "127.0.0.1:0", cfg.m, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer root.Close()
			var leaf *fabric.Station
			for i := 2; i <= cfg.stations; i++ {
				store := newStore()
				seed(store, i)
				st, err := fabric.Join(store, "127.0.0.1:0", root.Addr())
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				leaf = st
			}
			query := search.Query{Terms: []string{"corpus"}, TopK: 10}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reply, err := leaf.Search(query)
				if err != nil {
					b.Fatal(err)
				}
				if len(reply.Hits) == 0 {
					b.Fatal("no hits")
				}
			}
		})
	}
}

func BenchmarkLockingHierarchical(b *testing.B) {
	m := locking.NewManager()
	paths := make([]locking.Path, 16)
	for i := range paths {
		paths[i] = locking.Path{"db", "course", fmt.Sprintf("part%d", i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lk, err := m.Acquire(context.Background(), "u", paths[i%len(paths)], locking.Read)
		if err != nil {
			b.Fatal(err)
		}
		lk.Release()
	}
}

func BenchmarkClusterPreBroadcast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Config{
			Stations: 15, M: 3, UplinkBps: 1.25e6, Latency: 5 * time.Millisecond,
			Watermark: 1, Mode: netsim.Sequential,
		})
		if err != nil {
			b.Fatal(err)
		}
		spec := workload.DefaultSpec(1)
		spec.Pages = 8
		spec.MediaScaleDown = 16384
		if _, _, err := c.AuthorCourse(spec); err != nil {
			b.Fatal(err)
		}
		if err := c.BroadcastReferences(spec.URL); err != nil {
			b.Fatal(err)
		}
		if _, _, err := c.PreBroadcast(spec.URL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricBroadcast measures the live distribution layer: one
// full lecture cycle — root broadcasts the bundle down the m-ary tree
// over real sockets, then the post-lecture migration reclaims every
// copy — across station counts and tree degrees. The reported
// bytes/sec is bundle bytes delivered per broadcast (copies × size).
func BenchmarkFabricBroadcast(b *testing.B) {
	for _, cfg := range []struct{ stations, m int }{
		{5, 2}, {9, 2}, {9, 3}, {13, 3},
	} {
		b.Run(fmt.Sprintf("stations=%d/m=%d", cfg.stations, cfg.m), func(b *testing.B) {
			newStore := func() *docdb.Store {
				store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
				if err != nil {
					b.Fatal(err)
				}
				return store
			}
			root, err := fabric.NewRoot(newStore(), "127.0.0.1:0", cfg.m, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer root.Close()
			for i := 2; i <= cfg.stations; i++ {
				st, err := fabric.Join(newStore(), "127.0.0.1:0", root.Addr())
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
			}
			spec := workload.DefaultSpec(1)
			spec.Pages = 6
			spec.MediaScaleDown = 16384
			if _, err := workload.BuildCourse(root.Store(), spec); err != nil {
				b.Fatal(err)
			}
			if _, err := root.Store().NewInstance(spec.URL, 1, true); err != nil {
				b.Fatal(err)
			}
			bundle, err := root.Store().ExportBundle(spec.URL)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(bundle.TotalBytes() * int64(cfg.stations-1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := root.Broadcast(spec.URL, false)
				if err != nil {
					b.Fatal(err)
				}
				for _, sr := range res.Stations {
					if sr.Err != "" {
						b.Fatalf("station %d: %s", sr.Pos, sr.Err)
					}
				}
				if _, err := root.EndLecture(spec.URL); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchObsFabric runs one broadcast+migrate lecture cycle on a
// 13-station m=3 fabric with tracing either left on (the default) or
// disabled on every station. The CI overhead gate compiles and runs
// both at -benchtime 1x; the two bodies must stay identical so the
// only variable is the observer.
func benchObsFabric(b *testing.B, obsOn bool) {
	newStore := func() *docdb.Store {
		store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
		if err != nil {
			b.Fatal(err)
		}
		return store
	}
	root, err := fabric.NewRoot(newStore(), "127.0.0.1:0", 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer root.Close()
	stations := []*fabric.Station{root}
	for i := 2; i <= 13; i++ {
		st, err := fabric.Join(newStore(), "127.0.0.1:0", root.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		stations = append(stations, st)
	}
	if !obsOn {
		for _, st := range stations {
			st.Node().SetObserver(nil)
		}
	}
	spec := workload.DefaultSpec(1)
	spec.Pages = 6
	spec.MediaScaleDown = 16384
	if _, err := workload.BuildCourse(root.Store(), spec); err != nil {
		b.Fatal(err)
	}
	if _, err := root.Store().NewInstance(spec.URL, 1, true); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := root.Broadcast(spec.URL, false)
		if err != nil {
			b.Fatal(err)
		}
		for _, sr := range res.Stations {
			if sr.Err != "" {
				b.Fatalf("station %d: %s", sr.Pos, sr.Err)
			}
		}
		if _, err := root.EndLecture(spec.URL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFabricBroadcastObsOn(b *testing.B)  { benchObsFabric(b, true) }
func BenchmarkFabricBroadcastObsOff(b *testing.B) { benchObsFabric(b, false) }

// benchEventsFabric is benchObsFabric's sibling for the event
// journal: tracing stays on in both variants, and the only variable
// is whether each station's bounded event ring admits records.
// The CI overhead gate runs the pair beside the Obs pair under the
// same 5% budget.
func benchEventsFabric(b *testing.B, eventsOn bool) {
	newStore := func() *docdb.Store {
		store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
		if err != nil {
			b.Fatal(err)
		}
		return store
	}
	root, err := fabric.NewRoot(newStore(), "127.0.0.1:0", 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer root.Close()
	stations := []*fabric.Station{root}
	for i := 2; i <= 13; i++ {
		st, err := fabric.Join(newStore(), "127.0.0.1:0", root.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		stations = append(stations, st)
	}
	if !eventsOn {
		for _, st := range stations {
			st.Node().Observer().DisableEventJournal()
		}
	}
	spec := workload.DefaultSpec(1)
	spec.Pages = 6
	spec.MediaScaleDown = 16384
	if _, err := workload.BuildCourse(root.Store(), spec); err != nil {
		b.Fatal(err)
	}
	if _, err := root.Store().NewInstance(spec.URL, 1, true); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := root.Broadcast(spec.URL, false)
		if err != nil {
			b.Fatal(err)
		}
		for _, sr := range res.Stations {
			if sr.Err != "" {
				b.Fatalf("station %d: %s", sr.Pos, sr.Err)
			}
		}
		if _, err := root.EndLecture(spec.URL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFabricBroadcastEventsOn(b *testing.B)  { benchEventsFabric(b, true) }
func BenchmarkFabricBroadcastEventsOff(b *testing.B) { benchEventsFabric(b, false) }

// ---------------------------------------------------------------------------
// Relstore concurrency benchmarks: the per-table engine against an
// emulation of the seed's single database-wide lock, over parallel
// mixed read/write workloads on two tables.
// ---------------------------------------------------------------------------

func benchTwoTableDB(b *testing.B) *relstore.DB {
	b.Helper()
	db := relstore.NewDB()
	for _, name := range []string{"ta", "tb"} {
		err := db.CreateTable(relstore.Schema{
			Name: name,
			Columns: []relstore.Column{
				{Name: "id", Type: relstore.TInt, NotNull: true},
				{Name: "grp", Type: relstore.TInt},
				{Name: "name", Type: relstore.TText},
			},
			Key: "id",
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			if err := db.Insert(name, relstore.Row{"id": int64(i), "grp": int64(i % 100)}); err != nil {
				b.Fatal(err)
			}
		}
	}
	return db
}

// globalLockDB emulates the seed engine's concurrency model: one
// database-wide mutex, exclusive for every write and shared for every
// read, no matter which table is touched. The per-table engine runs
// underneath in both benchmarks, so the comparison isolates the locking
// strategy.
type globalLockDB struct {
	mu sync.RWMutex
	db *relstore.DB
}

func (g *globalLockDB) insert(table string, r relstore.Row) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.db.Insert(table, r)
}

func (g *globalLockDB) get(table string, pk any) (relstore.Row, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.db.Get(table, pk)
}

// benchMixedWorkload drives a 50/50 read/write mix spread evenly over
// the two tables from every available core.
func benchMixedWorkload(b *testing.B, insert func(string, relstore.Row) error, get func(string, any) (relstore.Row, error)) {
	b.Helper()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			table := "ta"
			if i%2 == 0 {
				table = "tb"
			}
			if i%4 < 2 {
				if err := insert(table, relstore.Row{"id": int64(1_000_000 + i), "grp": int64(i % 100)}); err != nil {
					b.Error(err)
					return
				}
			} else {
				if _, err := get(table, int64(i%5000)); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
}

func BenchmarkRelstoreMixed2TableGlobalLock(b *testing.B) {
	g := &globalLockDB{db: benchTwoTableDB(b)}
	benchMixedWorkload(b, g.insert, g.get)
}

func BenchmarkRelstoreMixed2TablePerTable(b *testing.B) {
	db := benchTwoTableDB(b)
	benchMixedWorkload(b, db.Insert, db.Get)
}

// ---------------------------------------------------------------------------
// Durable mixed workload: write transactions hold their locks across a
// simulated commit-time device flush (the seed engine flushed its WAL
// while holding the single database-wide lock, stalling every other
// table; the per-table engine stalls only the written table). This is
// the workload where the global lock hurts most, and the speedup shows
// even on a single-core runner because the stall is off-CPU time.
// ---------------------------------------------------------------------------

const benchCommitDelay = 100 * time.Microsecond

// benchTx is the slice of relstore.Tx the durable benchmark drives.
type benchTx interface {
	Insert(table string, r relstore.Row) error
	Commit() error
	Rollback() error
}

// globalTx holds the emulated database-wide lock until the transaction
// finishes, as the seed's Begin/Commit did.
type globalTx struct {
	g  *globalLockDB
	tx *relstore.Tx
}

func (t *globalTx) Insert(table string, r relstore.Row) error { return t.tx.Insert(table, r) }
func (t *globalTx) Commit() error {
	defer t.g.mu.Unlock()
	return t.tx.Commit()
}
func (t *globalTx) Rollback() error {
	defer t.g.mu.Unlock()
	return t.tx.Rollback()
}

func (g *globalLockDB) begin(table string) (benchTx, error) {
	g.mu.Lock()
	tx, err := g.db.Begin(table)
	if err != nil {
		g.mu.Unlock()
		return nil, err
	}
	return &globalTx{g: g, tx: tx}, nil
}

func benchMixedDurable(b *testing.B, begin func(string) (benchTx, error), get func(string, any) (relstore.Row, error)) {
	b.Helper()
	var ctr atomic.Int64
	b.SetParallelism(8) // contention even on a single-core runner
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			// 25% durable writes, split across both tables so their
			// commit flushes can overlap under per-table locking; the
			// remaining reads split across both tables too.
			switch i % 8 {
			case 1, 5:
				table := "ta"
				if i%8 == 5 {
					table = "tb"
				}
				tx, err := begin(table)
				if err != nil {
					b.Error(err)
					return
				}
				if err := tx.Insert(table, relstore.Row{"id": int64(1_000_000 + i)}); err != nil {
					tx.Rollback()
					b.Error(err)
					return
				}
				time.Sleep(benchCommitDelay)
				if err := tx.Commit(); err != nil {
					b.Error(err)
					return
				}
			default:
				table := "ta"
				if i%2 == 0 {
					table = "tb"
				}
				if _, err := get(table, int64(i%5000)); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
}

func BenchmarkRelstoreDurableMixedGlobalLock(b *testing.B) {
	g := &globalLockDB{db: benchTwoTableDB(b)}
	benchMixedDurable(b, g.begin,
		func(table string, pk any) (relstore.Row, error) { return g.get(table, pk) })
}

func BenchmarkRelstoreDurableMixedPerTable(b *testing.B) {
	db := benchTwoTableDB(b)
	benchMixedDurable(b,
		func(table string) (benchTx, error) { return db.Begin(table) },
		db.Get)
}

// benchReadBesideWriter measures the headline claim of the per-table
// engine: point reads of one table while a writer stream commits
// durable transactions to the other. Under the global lock every read
// waits out the in-flight commit flush; under per-table locking the
// readers never block, so aggregate throughput is read-speed instead of
// flush-speed.
func benchReadBesideWriter(b *testing.B, begin func(string) (benchTx, error), get func(string, any) (relstore.Row, error)) {
	b.Helper()
	var workers atomic.Int64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := workers.Add(1)
		if id%4 == 1 { // writer role: durable appends to ta
			seq := id << 32
			for pb.Next() {
				seq++
				tx, err := begin("ta")
				if err != nil {
					b.Error(err)
					return
				}
				if err := tx.Insert("ta", relstore.Row{"id": seq}); err != nil {
					tx.Rollback()
					b.Error(err)
					return
				}
				time.Sleep(benchCommitDelay)
				if err := tx.Commit(); err != nil {
					b.Error(err)
					return
				}
			}
			return
		}
		// reader role: point reads on tb
		i := id
		for pb.Next() {
			i++
			if _, err := get("tb", int64(i*7%5000)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkRelstoreReadBesideWriterGlobalLock(b *testing.B) {
	g := &globalLockDB{db: benchTwoTableDB(b)}
	benchReadBesideWriter(b, g.begin,
		func(table string, pk any) (relstore.Row, error) { return g.get(table, pk) })
}

func BenchmarkRelstoreReadBesideWriterPerTable(b *testing.B) {
	db := benchTwoTableDB(b)
	benchReadBesideWriter(b,
		func(table string) (benchTx, error) { return db.Begin(table) },
		db.Get)
}

// BenchmarkRelstoreParallelGet measures read scalability: all cores
// issuing point lookups over two tables with no writers.
func BenchmarkRelstoreParallelGet(b *testing.B) {
	db := benchTwoTableDB(b)
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			table := "ta"
			if i%2 == 0 {
				table = "tb"
			}
			if _, err := db.Get(table, int64(i%5000)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkRelstoreParallelInsert2Table measures writer scalability:
// all cores inserting, split across two tables so the engine's
// per-table locks can run two write streams at once.
func BenchmarkRelstoreParallelInsert2Table(b *testing.B) {
	db := benchTwoTableDB(b)
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			table := "ta"
			if i%2 == 0 {
				table = "tb"
			}
			if err := db.Insert(table, relstore.Row{"id": int64(1_000_000 + i), "grp": int64(i % 100)}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkRelstoreBatchInsert100 measures the amortized per-row cost
// of the Batch API (one lock acquisition + one WAL-ready commit per 100
// rows); compare against BenchmarkRelstoreInsert's per-row autocommit.
func BenchmarkRelstoreBatchInsert100(b *testing.B) {
	db := relstore.NewDB()
	if err := db.CreateTable(benchSchema()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var batch relstore.Batch
		for j := 0; j < 100; j++ {
			batch.Insert("t", relstore.Row{"id": int64(i*100 + j), "grp": int64(j), "name": "row"})
		}
		if err := db.Apply(&batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelstoreOrderedRangeSelect(b *testing.B) {
	db := relstore.NewDB()
	if err := db.CreateTable(benchSchema()); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateOrderedIndex("t", "grp"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := db.Insert("t", relstore.Row{"id": int64(i), "grp": int64(i % 100)}); err != nil {
			b.Fatal(err)
		}
	}
	q := relstore.Query{Table: "t", Conds: []relstore.Cond{{Col: "grp", Op: relstore.OpLt, Val: int64(5)}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}
