package fabric

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/docdb"
	"repro/internal/mtree"
	"repro/internal/netsim"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/transport"
	"repro/internal/workload"
)

func newTestStore(t *testing.T) *docdb.Store {
	t.Helper()
	store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	store.Now = func() time.Time { return time.Date(1999, 4, 21, 8, 0, 0, 0, time.UTC) }
	// Every test station carries a content index, as deployed stations
	// do — the write hooks then run under the race detector beside the
	// fabric traffic.
	if _, err := search.Attach(store); err != nil {
		t.Fatal(err)
	}
	return store
}

// newFabric builds an in-process fabric of n stations (root plus n-1
// joiners), each with its own document database and listen socket.
func newFabric(t *testing.T, n, m, watermark int) []*Station {
	t.Helper()
	root, err := NewRoot(newTestStore(t), "127.0.0.1:0", m, watermark)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { root.Close() })
	stations := []*Station{root}
	for i := 2; i <= n; i++ {
		st, err := Join(newTestStore(t), "127.0.0.1:0", root.Addr())
		if err != nil {
			t.Fatalf("station %d join: %v", i, err)
		}
		t.Cleanup(func() { st.Close() })
		stations = append(stations, st)
	}
	return stations
}

func smallCourse(n int) workload.CourseSpec {
	spec := workload.DefaultSpec(n)
	spec.Pages = 6
	spec.ExtraLinks = 3
	spec.ImagesPerPage = 1
	spec.VideoEvery = 3
	spec.AudioEvery = 0
	spec.MediaScaleDown = 16384
	return spec
}

// authorCourse builds a course on the root station and records the
// persistent instance plus its reusable class, as the instructor
// station does.
func authorCourse(t *testing.T, root *Station, n int) workload.CourseSpec {
	t.Helper()
	spec := smallCourse(n)
	if _, err := workload.BuildCourse(root.Store(), spec); err != nil {
		t.Fatal(err)
	}
	inst, err := root.Store().NewInstance(spec.URL, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.Store().DeclareClass(inst.ID); err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestJoinAssignsLinearPositionsAndRoutes(t *testing.T) {
	stations := newFabric(t, 5, 2, 1)
	for i, st := range stations {
		if got := st.Pos(); got != i+1 {
			t.Errorf("station %d: pos = %d", i+1, got)
		}
	}
	// Every station can answer a topology query; the root view is
	// authoritative and complete.
	admin := DialAdmin(stations[0].Addr())
	defer admin.Close()
	top, err := admin.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if !top.IsRoot || top.N != 5 || top.M != 2 || len(top.Roster) != 5 {
		t.Fatalf("root topology = %+v", top)
	}
	// The roster addresses match the stations' bound sockets.
	for i, st := range stations {
		if top.Roster[i+1] != st.Addr() {
			t.Errorf("roster[%d] = %s, want %s", i+1, top.Roster[i+1], st.Addr())
		}
	}
	// A joiner knows at least its ancestors (its join-time roster) and
	// its own position.
	leaf := DialAdmin(stations[4].Addr())
	defer leaf.Close()
	ltop, err := leaf.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if ltop.Pos != 5 || ltop.IsRoot {
		t.Fatalf("leaf topology = %+v", ltop)
	}
	parent, err := mtree.Parent(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ltop.Roster[parent]; !ok {
		t.Errorf("leaf roster lacks its parent %d: %v", parent, ltop.Roster)
	}
}

func TestJoinRequiresRoot(t *testing.T) {
	stations := newFabric(t, 3, 2, 1)
	if _, err := Join(newTestStore(t), "127.0.0.1:0", stations[1].Addr()); err == nil {
		t.Fatal("joining via a non-root station succeeded")
	}
}

func TestBroadcastPlacesInstancesEverywhere(t *testing.T) {
	stations := newFabric(t, 5, 2, 1)
	spec := authorCourse(t, stations[0], 1)
	res, err := stations[0].Broadcast(spec.URL, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stations) != 4 {
		t.Fatalf("results = %+v", res.Stations)
	}
	for _, sr := range res.Stations {
		if sr.Err != "" || sr.Form != schema.FormInstance {
			t.Errorf("station %d: form=%q err=%q", sr.Pos, sr.Form, sr.Err)
		}
	}
	if res.Bytes == 0 {
		t.Error("broadcast reported zero bundle bytes")
	}
	// Every station now holds a physical instance with identical pages
	// and resident media bytes.
	want, err := stations[0].Store().HTML(spec.URL, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range stations[1:] {
		obj, err := st.Store().ObjectByURL(spec.URL)
		if err != nil || obj.Form != schema.FormInstance {
			t.Fatalf("station %d: obj=%+v err=%v", i+2, obj, err)
		}
		got, err := st.Store().HTML(spec.URL, "index.html")
		if err != nil || string(got) != string(want) {
			t.Errorf("station %d: page mismatch (err=%v)", i+2, err)
		}
		if st.Store().Blobs().Stats().PhysicalBytes == 0 {
			t.Errorf("station %d: no physical BLOB bytes after full broadcast", i+2)
		}
	}
}

func TestBroadcastReferencesCarryNoBlobs(t *testing.T) {
	stations := newFabric(t, 5, 2, 1)
	spec := authorCourse(t, stations[0], 1)
	res, err := stations[0].Broadcast(spec.URL, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res.Stations {
		if sr.Err != "" || sr.Form != schema.FormReference {
			t.Errorf("station %d: form=%q err=%q", sr.Pos, sr.Form, sr.Err)
		}
	}
	// A reference-only bundle is tiny compared to the full closure.
	full, err := stations[0].Store().ExportBundle(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes >= full.TotalBytes() {
		t.Errorf("ref bundle %d bytes >= full bundle %d bytes", res.Bytes, full.TotalBytes())
	}
	for i, st := range stations[1:] {
		obj, err := st.Store().ObjectByURL(spec.URL)
		if err != nil || obj.Form != schema.FormReference {
			t.Fatalf("station %d: obj=%+v err=%v", i+2, obj, err)
		}
		if phys := st.Store().Blobs().Stats().PhysicalBytes; phys != 0 {
			t.Errorf("station %d: %d physical bytes after reference broadcast", i+2, phys)
		}
	}
}

// TestBroadcastAllBatchesDocuments: several documents ride one batched
// traversal, landing everywhere with per-station per-document results.
func TestBroadcastAllBatchesDocuments(t *testing.T) {
	stations := newFabric(t, 5, 2, 1)
	specA := authorCourse(t, stations[0], 1)
	specB := authorCourse(t, stations[0], 2)
	if specA.URL == specB.URL {
		t.Fatalf("course specs share URL %q", specA.URL)
	}
	urls := []string{specA.URL, specB.URL}

	admin := DialAdmin(stations[0].Addr())
	defer admin.Close()
	res, err := admin.BroadcastAll(urls, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.URL != urls[0] || len(res.URLs) != 2 {
		t.Fatalf("result names %q / %v", res.URL, res.URLs)
	}
	// One result per station per document, each labeled with its URL.
	seen := make(map[string]int)
	for _, sr := range res.Stations {
		if sr.Err != "" || sr.Form != schema.FormInstance {
			t.Errorf("station %d %s: form=%q err=%q", sr.Pos, sr.URL, sr.Form, sr.Err)
		}
		seen[fmt.Sprintf("%d/%s", sr.Pos, sr.URL)]++
	}
	if len(seen) != 8 || len(res.Stations) != 8 {
		t.Fatalf("results = %+v", res.Stations)
	}
	for key, n := range seen {
		if n != 1 {
			t.Errorf("result %s reported %d times", key, n)
		}
	}
	// Both documents are physically resident on every station.
	for i, st := range stations[1:] {
		for _, url := range urls {
			obj, err := st.Store().ObjectByURL(url)
			if err != nil || obj.Form != schema.FormInstance {
				t.Fatalf("station %d %s: obj=%+v err=%v", i+2, url, obj, err)
			}
		}
	}
}

// TestLegacyPushRequestStillInstalls: a push from a pre-batching peer
// (single Bundle field, no Bundles) must install as before.
func TestLegacyPushRequestStillInstalls(t *testing.T) {
	stations := newFabric(t, 3, 2, 1)
	spec := authorCourse(t, stations[0], 1)
	bundle, err := stations[0].Store().ExportBundle(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	v := stations[0].view()
	req := PushRequest{
		Bundle: *bundle, RefOnly: false,
		M: v.m, N: v.n, Watermark: v.watermark,
		Epoch: v.epoch, Roster: v.roster, Down: v.down,
	}
	leaf := stations[2] // position 3: no children, so no fan-out
	pool := transport.NewPool(leaf.Addr(), 1, time.Minute)
	defer pool.Close()
	var reply PushReply
	if err := pool.Call(methodPush, req, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Results) != 1 {
		t.Fatalf("results = %+v", reply.Results)
	}
	got := reply.Results[0]
	if got.Pos != 3 || got.Err != "" || got.Form != schema.FormInstance || got.URL != spec.URL {
		t.Fatalf("legacy push result = %+v", got)
	}
	if obj, err := leaf.Store().ObjectByURL(spec.URL); err != nil || obj.Form != schema.FormInstance {
		t.Fatalf("leaf store: obj=%+v err=%v", obj, err)
	}
}

func TestResolveWalksParentRouteAndWatermarks(t *testing.T) {
	stations := newFabric(t, 5, 2, 1)
	spec := authorCourse(t, stations[0], 1)
	// The course was never broadcast: the leaf must pull it up the
	// parent route from the root.
	leaf := stations[4] // position 5, route 5 -> 2 -> 1
	res, err := leaf.Resolve(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Local || res.ServedBy != 1 || res.Replicated || res.Fetches != 1 {
		t.Fatalf("first resolve = %+v", res)
	}
	if phys := leaf.Store().Blobs().Stats().PhysicalBytes; phys != 0 {
		t.Fatalf("leaf materialized below the watermark: %d bytes", phys)
	}
	// Crossing the watermark (fetches > 1) materializes local BLOBs.
	res, err = leaf.Resolve(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replicated || res.Fetches != 2 {
		t.Fatalf("second resolve = %+v", res)
	}
	obj, err := leaf.Store().ObjectByURL(spec.URL)
	if err != nil || obj.Form != schema.FormInstance {
		t.Fatalf("leaf object after watermark = %+v (err=%v)", obj, err)
	}
	if leaf.Store().Blobs().Stats().PhysicalBytes == 0 {
		t.Fatal("no physical BLOB bytes after crossing the watermark")
	}
	// A later resolve is served locally.
	res, err = leaf.Resolve(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Local {
		t.Fatalf("post-materialization resolve = %+v", res)
	}
}

func TestResolveServedByNearestHolder(t *testing.T) {
	stations := newFabric(t, 5, 2, 1)
	spec := authorCourse(t, stations[0], 1)
	// Station 2 crosses the watermark and materializes an instance.
	mid := stations[1]
	for i := 0; i < 2; i++ {
		if _, err := mid.Resolve(spec.URL); err != nil {
			t.Fatal(err)
		}
	}
	// Station 5's parent is station 2; the pull should now be served
	// one hop away instead of by the root.
	res, err := stations[4].Resolve(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != 2 {
		t.Errorf("served by %d, want 2 (nearest holder)", res.ServedBy)
	}
}

func TestResolveMissingEverywhere(t *testing.T) {
	stations := newFabric(t, 3, 2, 1)
	if _, err := stations[2].Resolve("http://mmu/ghost/v1"); !IsNoInstance(err) {
		t.Fatalf("err = %v, want no-instance", err)
	}
}

func TestEndLectureMigratesAndReclaims(t *testing.T) {
	stations := newFabric(t, 5, 2, 1)
	spec := authorCourse(t, stations[0], 1)
	if _, err := stations[0].Broadcast(spec.URL, false); err != nil {
		t.Fatal(err)
	}
	var held int64
	for _, st := range stations[1:] {
		held += st.Store().Blobs().Stats().PhysicalBytes
	}
	if held == 0 {
		t.Fatal("nothing materialized by the broadcast")
	}
	reply, err := stations[0].EndLecture(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Freed != held {
		t.Errorf("freed %d bytes, want %d", reply.Freed, held)
	}
	if len(reply.Stations) != 4 {
		t.Errorf("migrated stations = %+v", reply.Stations)
	}
	for i, st := range stations {
		obj, err := st.Store().ObjectByURL(spec.URL)
		if err != nil {
			t.Fatalf("station %d: %v", i+1, err)
		}
		wantForm := schema.FormReference
		if i == 0 {
			wantForm = schema.FormInstance // persistent instructor copy survives
			if obj.Form == schema.FormClass {
				wantForm = schema.FormClass
			}
		}
		if obj.Form != wantForm {
			t.Errorf("station %d: form = %s, want %s", i+1, obj.Form, wantForm)
		}
		if i > 0 {
			if phys := st.Store().Blobs().Stats().PhysicalBytes; phys != 0 {
				t.Errorf("station %d: %d physical bytes after migration", i+1, phys)
			}
		}
	}
	// The lecture can run again: a fresh broadcast re-materializes.
	if _, err := stations[0].Broadcast(spec.URL, false); err != nil {
		t.Fatal(err)
	}
	if stations[4].Store().Blobs().Stats().PhysicalBytes == 0 {
		t.Error("re-broadcast did not materialize the leaf")
	}
}

func TestThirteenStationsDegreeThree(t *testing.T) {
	stations := newFabric(t, 13, 3, 0)
	spec := authorCourse(t, stations[0], 1)
	res, err := stations[0].Broadcast(spec.URL, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stations) != 12 {
		t.Fatalf("reached %d stations, want 12", len(res.Stations))
	}
	for _, sr := range res.Stations {
		if sr.Err != "" || sr.Form != schema.FormInstance {
			t.Errorf("station %d: form=%q err=%q", sr.Pos, sr.Form, sr.Err)
		}
	}
	// An un-broadcast course resolves from the deepest leaf across
	// multiple hops (13 -> 4 -> 1 under m=3).
	spec2 := authorCourse(t, stations[0], 2)
	got, err := stations[12].Resolve(spec2.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got.ServedBy != 1 {
		t.Errorf("served by %d, want 1", got.ServedBy)
	}
	// Watermark 0: the very first fetch materializes.
	if !got.Replicated {
		t.Errorf("resolve under watermark 0 = %+v", got)
	}
}

func TestConcurrentResolvesAcrossStations(t *testing.T) {
	stations := newFabric(t, 9, 2, 0)
	spec := authorCourse(t, stations[0], 1)
	var wg sync.WaitGroup
	errs := make(chan error, len(stations)*2)
	for _, st := range stations[1:] {
		st := st
		for k := 0; k < 2; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := st.Resolve(spec.URL); err != nil {
					errs <- fmt.Errorf("station %d: %w", st.Pos(), err)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for i, st := range stations[1:] {
		obj, err := st.Store().ObjectByURL(spec.URL)
		if err != nil || obj.Form != schema.FormInstance {
			t.Errorf("station %d after concurrent resolves: obj=%+v err=%v", i+2, obj, err)
		}
	}
}

// TestFabricMatchesSimulator runs the same lecture scenario through
// the netsim cluster and the live fabric and asserts both reach the
// same end-state: per-station object forms and physical BLOB usage.
func TestFabricMatchesSimulator(t *testing.T) {
	const (
		n         = 5
		m         = 2
		watermark = 1
	)
	specA := smallCourse(1)
	specB := smallCourse(2)

	// --- Simulated run.
	sim, err := cluster.New(cluster.Config{
		Stations:  n,
		M:         m,
		UplinkBps: 1.25e6,
		Latency:   5 * time.Millisecond,
		Watermark: watermark,
		Mode:      netsim.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.AuthorCourse(specA); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.AuthorCourse(specB); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.PreBroadcast(specA.URL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sim.FetchOnDemand(n, specB.URL); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sim.EndLecture(specA.URL); err != nil {
		t.Fatal(err)
	}

	// --- Live run, same script.
	stations := newFabric(t, n, m, watermark)
	authorCourse(t, stations[0], 1)
	authorCourse(t, stations[0], 2)
	if _, err := stations[0].Broadcast(specA.URL, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := stations[n-1].Resolve(specB.URL); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := stations[0].EndLecture(specA.URL); err != nil {
		t.Fatal(err)
	}

	// --- Same end-state, station by station.
	simUsage := sim.DiskUsage()
	for pos := 1; pos <= n; pos++ {
		live := stations[pos-1].Store()
		simSt, err := sim.Station(pos)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := live.Blobs().Stats().PhysicalBytes, simUsage[pos-1]; got != want {
			t.Errorf("station %d: physical bytes fabric=%d sim=%d", pos, got, want)
		}
		for _, url := range []string{specA.URL, specB.URL} {
			liveObj, liveErr := live.ObjectByURL(url)
			simObj, simErr := simSt.Store.ObjectByURL(url)
			if (liveErr == nil) != (simErr == nil) {
				t.Errorf("station %d %s: presence fabric=%v sim=%v", pos, url, liveErr, simErr)
				continue
			}
			if liveErr == nil && liveObj.Form != simObj.Form {
				t.Errorf("station %d %s: form fabric=%s sim=%s", pos, url, liveObj.Form, simObj.Form)
			}
		}
	}
}

// TestAdminVerbs drives the fabric through the administrative client,
// the way webdocctl does.
func TestAdminVerbs(t *testing.T) {
	stations := newFabric(t, 5, 2, 0)
	spec := authorCourse(t, stations[0], 1)

	root := DialAdmin(stations[0].Addr())
	defer root.Close()
	res, err := root.Broadcast(spec.URL, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stations) != 4 {
		t.Fatalf("broadcast = %+v", res)
	}
	// Broadcast via a non-root station fails.
	leafAdmin := DialAdmin(stations[4].Addr())
	defer leafAdmin.Close()
	if _, err := leafAdmin.Broadcast(spec.URL, false); err == nil {
		t.Error("broadcast via non-root station succeeded")
	}

	spec2 := authorCourse(t, stations[0], 2)
	fetch, err := leafAdmin.Fetch(spec2.URL)
	if err != nil {
		t.Fatal(err)
	}
	if fetch.ServedBy != 1 || !fetch.Replicated {
		t.Errorf("fetch = %+v", fetch)
	}

	mig, err := root.EndLecture(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Freed == 0 || len(mig.Stations) != 4 {
		t.Errorf("migration = %+v", mig)
	}
}
