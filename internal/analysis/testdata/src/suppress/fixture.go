// Fixture for the suppression mechanism: a reasoned lint:ignore
// silences exactly one analyzer on its own line or the next, and a
// suppression that suppresses nothing is itself diagnosed.
package sup

import "os"

func standalone(path string, data []byte) error {
	//lint:ignore atomicwrite fixture: scratch file no recovery path ever reads
	return os.WriteFile(path, data, 0o644)
}

func trailing(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) //lint:ignore atomicwrite fixture: scratch file no recovery path ever reads
}

func wrongAnalyzer(path string, data []byte) error {
	//lint:ignore lockorder fixture: names the wrong analyzer, so the write below still fires // want `unused suppression for lockorder`
	return os.WriteFile(path, data, 0o644) // want `os\.WriteFile truncates the destination`
}

func unused() {} //lint:ignore atomicwrite fixture: suppresses nothing at all // want `unused suppression for atomicwrite: no diagnostic on this or the next line`
