package relstore

import (
	"fmt"

	"repro/internal/wire"
)

// Binary checkpoint image payload, sealed under wire.SnapMagic:
//
//	[uvarint Gen][uvarint Seq][uvarint nschemas]
//	  per schema: [schema][uvarint nrows rows][indexed strs][ordered strs]
//
// Rows carry tagged wire values, so a checkpoint of BLOB-bearing
// tables is a flat byte copy instead of a gob reflection walk. Legacy
// gob images remain readable: a gob stream's first byte can never be
// SnapMagic, so readers sniff one byte and fall back.

// appendCkptImage encodes img after dst.
func appendCkptImage(dst []byte, img *ckptImage) ([]byte, error) {
	dst = wire.AppendUvarint(dst, img.Gen)
	dst = wire.AppendUvarint(dst, img.Seq)
	dst = wire.AppendUvarint(dst, uint64(len(img.Snap.Schemas)))
	for _, s := range img.Snap.Schemas {
		dst = appendSchema(dst, &s)
		rows := img.Snap.Rows[s.Name]
		dst = wire.AppendUvarint(dst, uint64(len(rows)))
		for _, row := range rows {
			dst = wire.AppendUvarint(dst, uint64(len(row)))
			cols := make([]string, 0, len(row))
			for k := range row {
				cols = append(cols, k)
			}
			sortStrings(cols)
			for _, k := range cols {
				dst = wire.AppendString(dst, k)
				var err error
				if dst, err = wire.AppendValue(dst, row[k]); err != nil {
					return nil, fmt.Errorf("relstore: snapshot %s.%s: %w", s.Name, k, err)
				}
			}
		}
		dst = appendStrings(dst, img.Snap.Indexed[s.Name])
		dst = appendStrings(dst, img.Snap.Ordered[s.Name])
	}
	return dst, nil
}

// decodeCkptImage reverses appendCkptImage.
func decodeCkptImage(payload []byte) (*ckptImage, error) {
	r := wire.NewReader(payload)
	img := &ckptImage{Gen: r.Uvarint(), Seq: r.Uvarint()}
	img.Snap = snapshot{
		Rows:    map[string][]Row{},
		Indexed: map[string][]string{},
		Ordered: map[string][]string{},
	}
	nschemas := int(r.Uvarint())
	if r.Err() == nil && nschemas > r.Len() {
		return nil, fmt.Errorf("relstore: corrupt snapshot: %d schemas in %d bytes", nschemas, r.Len())
	}
	for i := 0; i < nschemas && r.Err() == nil; i++ {
		s := readSchema(r)
		img.Snap.Schemas = append(img.Snap.Schemas, s)
		nrows := int(r.Uvarint())
		if r.Err() == nil && nrows > r.Len() {
			return nil, fmt.Errorf("relstore: corrupt snapshot: %d rows in %d bytes", nrows, r.Len())
		}
		rows := make([]Row, 0, nrows)
		for j := 0; j < nrows && r.Err() == nil; j++ {
			ncol := int(r.Uvarint())
			if r.Err() == nil && ncol > r.Len() {
				return nil, fmt.Errorf("relstore: corrupt snapshot: %d columns in %d bytes", ncol, r.Len())
			}
			row := make(Row, ncol)
			for k := 0; k < ncol && r.Err() == nil; k++ {
				row[r.String()] = r.Value()
			}
			rows = append(rows, row)
		}
		img.Snap.Rows[s.Name] = rows
		if idx := readStrings(r); len(idx) > 0 {
			img.Snap.Indexed[s.Name] = idx
		}
		if ord := readStrings(r); len(ord) > 0 {
			img.Snap.Ordered[s.Name] = ord
		}
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("relstore: corrupt snapshot: %w", r.Err())
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("relstore: corrupt snapshot: %d trailing bytes", r.Len())
	}
	return img, nil
}

func appendStrings(dst []byte, ss []string) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = wire.AppendString(dst, s)
	}
	return dst
}

func readStrings(r *wire.Reader) []string {
	n := int(r.Uvarint())
	var ss []string
	for i := 0; i < n && r.Err() == nil; i++ {
		ss = append(ss, r.String())
	}
	return ss
}
