package relstore

import (
	"fmt"
	"sort"
	"strings"
)

// CmpOp is a comparison operator usable in a Cond.
type CmpOp int

// Comparison operators. OpContains and OpPrefix apply to TEXT columns
// only and support the virtual library's keyword matching.
const (
	OpEq CmpOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains
	OpPrefix
	OpIsNull
	OpNotNull
)

// String returns the SQL-ish spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpContains:
		return "CONTAINS"
	case OpPrefix:
		return "PREFIX"
	case OpIsNull:
		return "IS NULL"
	case OpNotNull:
		return "IS NOT NULL"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Cond is one conjunct of a WHERE clause.
type Cond struct {
	Col string
	Op  CmpOp
	Val any
}

// Query describes a single-table selection. Conds are ANDed. A zero
// Limit means no limit.
type Query struct {
	Table   string
	Conds   []Cond
	OrderBy string
	Desc    bool
	Limit   int
}

// matches evaluates one condition against a coerced row value.
func (c *Cond) matches(rowVal, condVal any) bool {
	switch c.Op {
	case OpEq:
		return rowVal != nil && compareValues(rowVal, condVal) == 0
	case OpNe:
		return rowVal != nil && compareValues(rowVal, condVal) != 0
	case OpLt:
		return rowVal != nil && compareValues(rowVal, condVal) < 0
	case OpLe:
		return rowVal != nil && compareValues(rowVal, condVal) <= 0
	case OpGt:
		return rowVal != nil && compareValues(rowVal, condVal) > 0
	case OpGe:
		return rowVal != nil && compareValues(rowVal, condVal) >= 0
	case OpContains:
		s, ok1 := rowVal.(string)
		sub, ok2 := condVal.(string)
		return ok1 && ok2 && strings.Contains(s, sub)
	case OpPrefix:
		s, ok1 := rowVal.(string)
		pre, ok2 := condVal.(string)
		return ok1 && ok2 && strings.HasPrefix(s, pre)
	case OpIsNull:
		return rowVal == nil
	case OpNotNull:
		return rowVal != nil
	default:
		return false
	}
}

// Select runs a query and returns cloned result rows. Equality
// conditions on indexed columns are served from the hash index; other
// queries scan the table in deterministic primary-key order. Queries
// run concurrently with each other and with writes to other tables.
func (db *DB) Select(q Query) ([]Row, error) {
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	t, ok := db.tables[q.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, q.Table)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.selectLocked(q)
}

// selectLocked evaluates the query. Caller holds the table lock in
// either mode.
func (t *table) selectLocked(q Query) ([]Row, error) {
	// Validate and coerce condition values against column types.
	conds := make([]Cond, len(q.Conds))
	for i, c := range q.Conds {
		col, ok := t.schema.column(c.Col)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, q.Table, c.Col)
		}
		cv := c.Val
		if c.Op != OpContains && c.Op != OpPrefix && c.Op != OpIsNull && c.Op != OpNotNull {
			var err error
			cv, err = coerce(col.Type, c.Val)
			if err != nil {
				return nil, fmt.Errorf("condition on %s.%s: %w", q.Table, c.Col, err)
			}
		}
		conds[i] = Cond{Col: c.Col, Op: c.Op, Val: cv}
	}
	if q.OrderBy != "" {
		if _, ok := t.schema.column(q.OrderBy); !ok {
			return nil, fmt.Errorf("%w: ORDER BY %s.%s", ErrNoColumn, q.Table, q.OrderBy)
		}
	}

	// Plan: an indexed equality condition is the best access path; an
	// ordered index serving an equality or range condition comes next;
	// otherwise scan in primary-key order.
	var candidates []string
	planned := -1
	for i, c := range conds {
		if c.Op != OpEq {
			continue
		}
		if ix := t.indexes[c.Col]; ix != nil {
			candidates = ix.lookup(c.Val)
			planned = i
			break
		}
		if c.Col == t.schema.Key {
			pk := encodeKey(c.Val)
			if _, ok := t.rows[pk]; ok {
				candidates = []string{pk}
			}
			planned = i
			break
		}
	}
	if planned < 0 {
		for i, c := range conds {
			ix := t.ordered[c.Col]
			if ix == nil {
				continue
			}
			switch c.Op {
			case OpEq, OpLt, OpLe, OpGt, OpGe:
				candidates = ix.rangePKs(c.Op, c.Val)
				planned = i
			}
			if planned >= 0 {
				break
			}
		}
	}
	if planned < 0 {
		candidates = t.sortedKeysLocked()
	}

	var out []Row
	for _, pk := range candidates {
		row, ok := t.rows[pk]
		if !ok {
			continue
		}
		match := true
		for i, c := range conds {
			if i == planned {
				continue // already satisfied by the access path
			}
			if !c.matches(row[c.Col], c.Val) {
				match = false
				break
			}
		}
		if match {
			out = append(out, row.Clone())
		}
	}

	if q.OrderBy != "" {
		col := q.OrderBy
		sort.SliceStable(out, func(i, j int) bool {
			c := compareValues(out[i][col], out[j][col])
			if q.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, nil
}

// SelectOne returns the single row matching the query, ErrNotFound when
// none matches, or an error naming the table when several match.
func (db *DB) SelectOne(q Query) (Row, error) {
	q.Limit = 2
	rows, err := db.Select(q)
	if err != nil {
		return nil, err
	}
	switch len(rows) {
	case 0:
		return nil, fmt.Errorf("%w: %s", ErrNotFound, q.Table)
	case 1:
		return rows[0], nil
	default:
		return nil, fmt.Errorf("relstore: query on %s matched more than one row", q.Table)
	}
}

// Lookup is shorthand for an indexed equality select.
func (db *DB) Lookup(table, column string, val any) ([]Row, error) {
	return db.Select(Query{Table: table, Conds: []Cond{{Col: column, Op: OpEq, Val: val}}})
}

// Scan returns every row of the table in deterministic primary-key
// order, visiting each through fn until fn returns false. The table's
// read lock is held for the whole scan; fn must not call back into the
// database.
func (db *DB) Scan(table string, fn func(Row) bool) error {
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, pk := range t.sortedKeysLocked() {
		if !fn(t.rows[pk].Clone()) {
			return nil
		}
	}
	return nil
}
