package relstore

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// concDB builds three tables for the concurrency tests: an FK pair
// (authors <- docs) plus an unrelated notes table, so the stress mix
// exercises write locks, neighbour read locks and disjoint-table
// parallelism at once.
func concDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	for _, s := range []Schema{
		{
			Name: "authors",
			Columns: []Column{
				{Name: "name", Type: TText, NotNull: true},
				{Name: "rank", Type: TInt},
			},
			Key: "name",
		},
		{
			Name: "docs",
			Columns: []Column{
				{Name: "id", Type: TInt, NotNull: true},
				{Name: "author", Type: TText},
				{Name: "title", Type: TText},
			},
			Key:         "id",
			ForeignKeys: []ForeignKey{{Column: "author", RefTable: "authors"}},
		},
		{
			Name: "notes",
			Columns: []Column{
				{Name: "id", Type: TInt, NotNull: true},
				{Name: "body", Type: TText},
			},
			Key: "id",
		},
	} {
		if err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := db.Insert("authors", Row{"name": fmt.Sprintf("a%d", i), "rank": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestConcurrentMultiTableStress hammers the engine with parallel
// writers (inserts, updates, deletes, rollbacks) and readers across the
// three tables. Run with -race; the assertions then check that every
// committed row is consistent and referential integrity held.
func TestConcurrentMultiTableStress(t *testing.T) {
	db := concDB(t)
	const (
		writers = 4
		readers = 4
		iters   = 300
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := int64(w*iters + i)
				switch i % 5 {
				case 0, 1:
					err := db.Insert("docs", Row{"id": id, "author": fmt.Sprintf("a%d", i%10), "title": "doc"})
					if err != nil {
						errs <- err
						return
					}
				case 2:
					if err := db.Insert("notes", Row{"id": id, "body": "n"}); err != nil {
						errs <- err
						return
					}
				case 3:
					// Rolled-back transactions must leave no trace.
					tx, err := db.Begin("docs")
					if err != nil {
						errs <- err
						return
					}
					if err := tx.Insert("docs", Row{"id": id + 1_000_000, "author": "a0"}); err != nil {
						tx.Rollback()
						errs <- err
						return
					}
					if err := tx.Rollback(); err != nil {
						errs <- err
						return
					}
				case 4:
					// Insert and delete the same row so writers also
					// exercise the referencer read locks.
					if err := db.Insert("docs", Row{"id": id + 2_000_000}); err != nil {
						errs <- err
						return
					}
					if err := db.Delete("docs", id+2_000_000); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					if _, err := db.Get("authors", fmt.Sprintf("a%d", i%10)); err != nil {
						errs <- err
						return
					}
				case 1:
					_, err := db.Select(Query{Table: "docs", Conds: []Cond{{Col: "author", Op: OpEq, Val: fmt.Sprintf("a%d", i%10)}}})
					if err != nil {
						errs <- err
						return
					}
				case 2:
					if err := db.Scan("notes", func(Row) bool { return true }); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, err := db.Count("docs"); err != nil {
						errs <- err
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Committed inserts: per writer, iters worth of i%5 in {0,1} docs and
	// i%5==2 notes; the case-3 rollbacks and case-4 insert+delete pairs
	// must have vanished.
	wantDocs, wantNotes := 0, 0
	for i := 0; i < iters; i++ {
		switch i % 5 {
		case 0, 1:
			wantDocs++
		case 2:
			wantNotes++
		}
	}
	if n, _ := db.Count("docs"); n != writers*wantDocs {
		t.Errorf("docs count = %d, want %d", n, writers*wantDocs)
	}
	if n, _ := db.Count("notes"); n != writers*wantNotes {
		t.Errorf("notes count = %d, want %d", n, writers*wantNotes)
	}
	if err := db.verifyAllFKs(); err != nil {
		t.Errorf("referential integrity violated after stress: %v", err)
	}
}

// TestConcurrentTxDisjointTables checks that declared transactions on
// disjoint tables commit in parallel without interference.
func TestConcurrentTxDisjointTables(t *testing.T) {
	db := concDB(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			table := "notes"
			if g%2 == 0 {
				table = "docs"
			}
			tx, err := db.Begin(table)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 50; i++ {
				if err := tx.Insert(table, Row{"id": int64(g*1000 + i)}); err != nil {
					tx.Rollback()
					t.Error(err)
					return
				}
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if n, _ := db.Count("docs"); n != 4*50 {
		t.Errorf("docs = %d, want 200", n)
	}
	if n, _ := db.Count("notes"); n != 4*50 {
		t.Errorf("notes = %d, want 200", n)
	}
}

func TestLazyLockOrder(t *testing.T) {
	db := concDB(t)

	// Lazily touching tables in ascending name order works.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("docs", Row{"id": int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("notes", Row{"id": int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Touching a table that sorts before an already-locked one fails
	// fast instead of risking deadlock.
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("notes", Row{"id": int64(2)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("docs", Row{"id": int64(2)}); !errors.Is(err, ErrLockOrder) {
		t.Fatalf("out-of-order lazy lock: err = %v, want ErrLockOrder", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	// Writing a table the transaction only holds a read (neighbour)
	// lock on is an upgrade, also rejected.
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("docs", Row{"id": int64(3), "author": "a0"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("authors", Row{"name": "new"}); !errors.Is(err, ErrLockOrder) {
		t.Fatalf("read-to-write upgrade: err = %v, want ErrLockOrder", err)
	}
	tx.Rollback()

	// Declaring both tables at Begin permits any op order.
	tx, err = db.Begin("notes", "docs", "authors")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("notes", Row{"id": int64(4)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("authors", Row{"name": "declared"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("docs", Row{"id": int64(4), "author": "declared"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestBeginUnknownTable(t *testing.T) {
	db := concDB(t)
	if _, err := db.Begin("nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v, want ErrNoTable", err)
	}
}

func TestTxReadsSeeOwnWrites(t *testing.T) {
	db := concDB(t)
	tx, err := db.Begin("notes")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("notes", Row{"id": int64(7), "body": "draft"}); err != nil {
		t.Fatal(err)
	}
	row, err := tx.Get("notes", int64(7))
	if err != nil {
		t.Fatalf("tx.Get after tx.Insert: %v", err)
	}
	if row["body"] != "draft" {
		t.Errorf("row = %+v", row)
	}
	rows, err := tx.Select(Query{Table: "notes"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("tx.Select saw %d rows, want 1", len(rows))
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if db.Exists("notes", int64(7)) {
		t.Error("rolled-back insert visible after Rollback")
	}
}

func TestBatchAtomicity(t *testing.T) {
	db := concDB(t)
	var b Batch
	b.Insert("docs", Row{"id": int64(1), "author": "a0"})
	b.Insert("notes", Row{"id": int64(1)})
	b.Insert("docs", Row{"id": int64(2), "author": "ghost"}) // FK violation
	if err := db.Apply(&b); !errors.Is(err, ErrFK) {
		t.Fatalf("err = %v, want ErrFK", err)
	}
	if n, _ := db.Count("docs"); n != 0 {
		t.Errorf("docs = %d after failed batch, want 0", n)
	}
	if n, _ := db.Count("notes"); n != 0 {
		t.Errorf("notes = %d after failed batch, want 0", n)
	}

	b.Reset()
	b.Insert("docs", Row{"id": int64(1), "author": "a0"})
	b.Update("docs", int64(1), Row{"title": "batched"})
	b.Insert("notes", Row{"id": int64(1)})
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	row, err := db.Get("docs", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if row["title"] != "batched" {
		t.Errorf("row = %+v", row)
	}
	if err := db.Apply(nil); err != nil {
		t.Errorf("nil batch: %v", err)
	}
}

// TestBatchSingleWALAppend verifies the amortization claim: one applied
// batch appends exactly one committed WAL line regardless of size.
func TestBatchSingleWALAppend(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")
	db := NewDB()
	if err := db.CreateTable(Schema{
		Name:    "t",
		Columns: []Column{{Name: "id", Type: TInt, NotNull: true}},
		Key:     "id",
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	var b Batch
	for i := 0; i < 100; i++ {
		b.Insert("t", Row{"id": int64(i)})
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records := 0
	br := bufio.NewReader(f)
	for {
		_, done, err := readWalLine(br)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		records++
	}
	if records != 1 {
		t.Errorf("WAL records = %d for one batch, want 1", records)
	}

	// And the single line replays back to the full table.
	f2, err := os.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	db2 := NewDB()
	if err := db2.CreateTable(Schema{
		Name:    "t",
		Columns: []Column{{Name: "id", Type: TInt, NotNull: true}},
		Key:     "id",
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db2.ReplayWAL(f2); err != nil {
		t.Fatal(err)
	}
	if n, _ := db2.Count("t"); n != 100 {
		t.Errorf("replayed rows = %d, want 100", n)
	}
}

// TestConcurrentBatchesAndSnapshots mixes Apply with Snapshot to check
// the all-table read lock of Snapshot composes with batch commits.
func TestConcurrentBatchesAndSnapshots(t *testing.T) {
	db := concDB(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var b Batch
				for j := 0; j < 10; j++ {
					b.Insert("notes", Row{"id": int64(g*10_000 + i*10 + j)})
				}
				if err := db.Apply(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			var sink discardWriter
			if err := db.Snapshot(&sink); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if n, _ := db.Count("notes"); n != 4*20*10 {
		t.Errorf("notes = %d, want 800", n)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestReadNotStalledByUnrelatedWrite pins down the engine's headline
// guarantee: a query of one table completes while a transaction holds
// the write lock on an unrelated table. Under the seed's database-wide
// lock the read below would block until Commit.
func TestReadNotStalledByUnrelatedWrite(t *testing.T) {
	db := concDB(t)
	tx, err := db.Begin("docs")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("docs", Row{"id": int64(1), "author": "a0"}); err != nil {
		tx.Rollback()
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := db.Get("notes", int64(404)) // ErrNotFound is fine; completing is the point
		if errors.Is(err, ErrNotFound) {
			err = nil
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read of unrelated table stalled behind an open write transaction")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyThenHookRunsBeforeLocksRelease pins the contract derived
// caches rely on: the ApplyThen hook observes the committed state
// while the transaction's table locks are still held, so no reader —
// and in particular no checkpoint capture, which read-locks every
// table — can slip between a committed batch and its hook.
func TestApplyThenHookRunsBeforeLocksRelease(t *testing.T) {
	db := concDB(t)
	var b Batch
	b.Insert("notes", Row{"id": int64(1), "body": "x"})
	entered := make(chan struct{})
	unblock := make(chan struct{})
	applied := make(chan error, 1)
	go func() {
		applied <- db.ApplyThen(&b, func() {
			close(entered)
			<-unblock
		})
	}()
	<-entered
	// While the hook runs, the touched table is still write-locked.
	read := make(chan struct{})
	go func() {
		db.Get("notes", int64(1))
		close(read)
	}()
	select {
	case <-read:
		t.Fatal("reader got in while the commit hook was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(unblock)
	if err := <-applied; err != nil {
		t.Fatal(err)
	}
	<-read
	if _, err := db.Get("notes", int64(1)); err != nil {
		t.Errorf("committed row missing after ApplyThen: %v", err)
	}
}

// TestApplyThenHookSkippedOnFailure: a rolled-back batch must never
// reach the hook, and an empty batch runs it directly.
func TestApplyThenHookSkippedOnFailure(t *testing.T) {
	db := concDB(t)
	var b Batch
	b.Insert("docs", Row{"id": int64(1), "author": "ghost"}) // FK violation
	ran := false
	if err := db.ApplyThen(&b, func() { ran = true }); !errors.Is(err, ErrFK) {
		t.Fatalf("err = %v, want ErrFK", err)
	}
	if ran {
		t.Error("hook ran for a rolled-back batch")
	}
	var empty Batch
	if err := db.ApplyThen(&empty, func() { ran = true }); err != nil || !ran {
		t.Errorf("empty batch: err = %v, hook ran = %v", err, ran)
	}
}
