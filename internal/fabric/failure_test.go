package fabric

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/schema"
	"repro/internal/webtest"
)

// probeUntilDown sweeps the root's heartbeat until the given positions
// are declared dead (hbFailThreshold consecutive failures per
// station).
func probeUntilDown(t *testing.T, root *Station, positions ...int) {
	t.Helper()
	webtest.Eventually(t, 30*time.Second, "root to declare stations dead", func() bool {
		root.ProbeOnce(200 * time.Millisecond)
		for _, pos := range positions {
			if !root.Down(pos) {
				return false
			}
		}
		return true
	})
}

func TestHeartbeatDeclaresDeadStationAndRevives(t *testing.T) {
	stations := newFabric(t, 5, 2, 1)
	root := stations[0]
	epoch0 := root.Epoch()

	// A healthy sweep changes nothing.
	root.ProbeOnce(time.Second)
	if root.Epoch() != epoch0 {
		t.Fatalf("healthy sweep bumped epoch %d -> %d", epoch0, root.Epoch())
	}

	// Kill station 3; consecutive failed probes declare it dead and
	// bump the epoch.
	stations[2].Close()
	probeUntilDown(t, root, 3)
	if root.Epoch() <= epoch0 {
		t.Errorf("declaring a death did not advance the epoch (%d)", root.Epoch())
	}

	// The topology now reports the down-set.
	admin := DialAdmin(root.Addr())
	defer admin.Close()
	top, err := admin.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if !top.Down[3] {
		t.Errorf("topology down-set = %v, want station 3 dead", top.Down)
	}

	// The station restarts on its old address (in-process stand-in for
	// a daemon restart); probes revive it without an explicit rejoin.
	st, err := Rejoin(newTestStore(t), stations[2].Addr(), root.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if st.Pos() != 3 {
		t.Fatalf("rejoined at position %d, want 3", st.Pos())
	}
	if root.Down(3) {
		t.Error("station still marked down after rejoin")
	}
}

func TestHeartbeatHonorsLivenessCheck(t *testing.T) {
	stations := newFabric(t, 3, 2, 1)
	root := stations[0]
	// Station 2 is reachable but declares itself unhealthy: the root
	// must treat it like a dead station.
	stations[1].Node().SetLivenessCheck(func() error { return errors.New("wal stalled") })
	probeUntilDown(t, root, 2)

	// The check clears; probes revive the station.
	stations[1].Node().SetLivenessCheck(nil)
	webtest.Eventually(t, 30*time.Second, "root to revive the station", func() bool {
		root.ProbeOnce(time.Second)
		return !root.Down(2)
	})
}

func TestEvictAndHealthVerbs(t *testing.T) {
	stations := newFabric(t, 5, 2, 1)
	admin := DialAdmin(stations[0].Addr())
	defer admin.Close()

	health, err := admin.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !health.IsRoot || health.N != 5 || len(health.Down) != 0 {
		t.Fatalf("healthy fabric health = %+v", health)
	}

	health, err = admin.Evict(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(health.Down) != 1 || health.Down[0] != 4 {
		t.Fatalf("health after evict = %+v", health)
	}
	if !stations[0].Down(4) {
		t.Error("evict did not mark the station down on the root")
	}
	// Evicting the root is refused.
	if _, err := admin.Evict(1); err == nil {
		t.Error("evicting the root succeeded")
	}
}

func TestBroadcastGraftsAroundDeadStation(t *testing.T) {
	stations := newFabric(t, 5, 2, 0)
	spec := authorCourse(t, stations[0], 1)
	// Station 2 dies without the root knowing: the broadcast discovers
	// it in-flight, reports it, and still reaches its children 4 and 5
	// by grafting them onto the root.
	stations[1].Close()
	res, err := stations[0].Broadcast(spec.URL, false)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]StationResult{}
	for _, sr := range res.Stations {
		got[sr.Pos] = sr
	}
	if got[2].Err == "" {
		t.Errorf("dead station 2 not reported: %+v", got[2])
	}
	for _, pos := range []int{3, 4, 5} {
		if got[pos].Err != "" || got[pos].Form != schema.FormInstance {
			t.Errorf("station %d: %+v", pos, got[pos])
		}
	}
	for _, idx := range []int{2, 3, 4} {
		if stations[idx].Store().Blobs().Stats().PhysicalBytes == 0 {
			t.Errorf("station %d holds no bytes after grafted broadcast", idx+1)
		}
	}
	// The in-flight discovery escalates to the root's roster.
	webtest.Eventually(t, 30*time.Second, "root to confirm the death", func() bool {
		return stations[0].Down(2)
	})
}

func TestRefutedSuspicionClearsOnNextSnapshot(t *testing.T) {
	stations := newFabric(t, 5, 2, 0)
	root := stations[0]
	spec := authorCourse(t, root, 1)
	// First broadcast synchronizes every station onto the root's
	// current epoch.
	if _, err := root.Broadcast(spec.URL, false); err != nil {
		t.Fatal(err)
	}
	// Station 2 wrongly suspects its healthy child 4 (a transient
	// network blip it observed and the root refuted — no epoch bump).
	relay := stations[1]
	relay.mu.Lock()
	relay.suspect[4] = true
	relay.mu.Unlock()
	// The next broadcast rides on the same epoch; the push must clear
	// the stale suspicion so station 4 is delivered to, not shunned.
	spec2 := authorCourse(t, root, 2)
	res, err := root.Broadcast(spec2.URL, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res.Stations {
		if sr.Pos == 4 && (sr.Err != "" || sr.Form != schema.FormInstance) {
			t.Errorf("station 4 after refuted suspicion: %+v", sr)
		}
	}
	relay.mu.Lock()
	stillSuspect := relay.suspect[4]
	relay.mu.Unlock()
	if stillSuspect {
		t.Error("refuted suspicion survived a same-epoch snapshot")
	}
	obj, err := stations[3].Store().ObjectByURL(spec2.URL)
	if err != nil || obj.Form != schema.FormInstance {
		t.Errorf("station 4 store after broadcast: %+v (err=%v)", obj, err)
	}
}

func TestResolveSkipsDeadAncestor(t *testing.T) {
	stations := newFabric(t, 5, 2, 0)
	spec := authorCourse(t, stations[0], 1)
	// Station 5's parent route is 5 -> 2 -> 1; with 2 dead the resolve
	// must skip to the root instead of erroring.
	stations[1].Close()
	res, err := stations[4].Resolve(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != 1 || !res.Replicated {
		t.Errorf("resolve across dead parent = %+v", res)
	}
}

func TestRejoinCatchesUpOnMissedBroadcasts(t *testing.T) {
	stations := newFabric(t, 5, 2, 0)
	root := stations[0]
	specA := authorCourse(t, root, 1)
	specB := authorCourse(t, root, 2)

	// Station 3 dies; two broadcasts and a migration happen while it
	// is dark.
	stations[2].Close()
	if _, err := root.Broadcast(specA.URL, false); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Broadcast(specB.URL, false); err != nil {
		t.Fatal(err)
	}
	if _, err := root.EndLecture(specB.URL); err != nil {
		t.Fatal(err)
	}
	probeUntilDown(t, root, 3)

	// The station restarts on a fresh socket, reclaims position 3, and
	// catches up: specA (still a live broadcast) re-materializes via
	// the parent route, specB (migrated) comes back as a reference.
	st, err := Rejoin(newTestStore(t), "127.0.0.1:0", root.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if st.Pos() != 3 {
		t.Fatalf("rejoined at position %d, want 3", st.Pos())
	}
	res, err := st.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if res.References != 2 {
		t.Errorf("catch-up imported %d references, want 2", res.References)
	}
	if len(res.Resolved) != 1 || !res.Resolved[0].Replicated {
		t.Errorf("catch-up resolved = %+v", res.Resolved)
	}
	objA, err := st.Store().ObjectByURL(specA.URL)
	if err != nil || objA.Form != schema.FormInstance {
		t.Errorf("specA after catch-up: %+v (err=%v)", objA, err)
	}
	objB, err := st.Store().ObjectByURL(specB.URL)
	if err != nil || objB.Form != schema.FormReference {
		t.Errorf("specB after catch-up: %+v (err=%v)", objB, err)
	}
	if st.Store().Blobs().Stats().PhysicalBytes == 0 {
		t.Error("catch-up under watermark 0 materialized no bytes")
	}
}

func TestRejoinBeforeFailureDetectorNotices(t *testing.T) {
	stations := newFabric(t, 5, 2, 0)
	root := stations[0]
	spec := authorCourse(t, root, 1)
	if _, err := root.Broadcast(spec.URL, false); err != nil {
		t.Fatal(err)
	}
	// Station 4 crashes and a supervisor restarts it immediately — the
	// root has not declared it dead yet. The rejoin must still reclaim
	// position 4: the root confirms the old address is gone with a
	// probe of its own.
	stations[3].Close()
	if root.Down(4) {
		t.Fatal("test premise broken: root already declared the crash")
	}
	st, err := Rejoin(newTestStore(t), "127.0.0.1:0", root.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if st.Pos() != 4 {
		t.Fatalf("fast rejoin landed at position %d, want 4", st.Pos())
	}
	if _, err := st.CatchUp(); err != nil {
		t.Fatal(err)
	}
	obj, err := st.Store().ObjectByURL(spec.URL)
	if err != nil || obj.Form != schema.FormInstance {
		t.Errorf("object after fast rejoin catch-up: %+v (err=%v)", obj, err)
	}
}

func TestCatchUpReclaimsInstanceFromMissedMigration(t *testing.T) {
	stations := newFabric(t, 5, 2, 0)
	root := stations[0]
	spec := authorCourse(t, root, 1)
	if _, err := root.Broadcast(spec.URL, false); err != nil {
		t.Fatal(err)
	}
	// Station 3 crashes holding its instance, then the tree migrates
	// the document back to references; station 3 is the dead hop the
	// migration reports but cannot reach.
	durable := stations[2].Store() // stands in for the WAL-restored state
	stations[2].Close()
	probeUntilDown(t, root, 3)
	if _, err := root.EndLecture(spec.URL); err != nil {
		t.Fatal(err)
	}
	if durable.Blobs().Stats().PhysicalBytes == 0 {
		t.Fatal("test premise broken: the dead station lost its bytes without a catch-up")
	}

	// The station rejoins with its durable store intact: catch-up must
	// reclaim the straggler instance the migration missed.
	st, err := Rejoin(durable, "127.0.0.1:0", root.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	res, err := st.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated != 1 {
		t.Errorf("catch-up migrated %d stragglers, want 1", res.Migrated)
	}
	obj, err := durable.ObjectByURL(spec.URL)
	if err != nil || obj.Form != schema.FormReference {
		t.Errorf("object after reclaimed migration: %+v (err=%v)", obj, err)
	}
	if phys := durable.Blobs().Stats().PhysicalBytes; phys != 0 {
		t.Errorf("%d physical bytes survive the reclaimed migration", phys)
	}
}

func TestCatchUpDefersBytesAboveWatermark(t *testing.T) {
	stations := newFabric(t, 3, 2, 2)
	root := stations[0]
	spec := authorCourse(t, root, 1)
	stations[2].Close()
	if _, err := root.Broadcast(spec.URL, false); err != nil {
		t.Fatal(err)
	}
	probeUntilDown(t, root, 3)
	st, err := Rejoin(newTestStore(t), "127.0.0.1:0", root.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	res, err := st.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	// Watermark 2: the catch-up pull stays below it, so the station
	// holds the reference and no media bytes until demand crosses it.
	if len(res.Resolved) != 1 || res.Resolved[0].Replicated {
		t.Errorf("catch-up resolved = %+v", res.Resolved)
	}
	obj, err := st.Store().ObjectByURL(spec.URL)
	if err != nil || obj.Form != schema.FormReference {
		t.Errorf("object after deferred catch-up: %+v (err=%v)", obj, err)
	}
	if phys := st.Store().Blobs().Stats().PhysicalBytes; phys != 0 {
		t.Errorf("deferred catch-up materialized %d bytes", phys)
	}
}

// TestCatchUpStreamsWhenFarBehind: a rejoiner missing at least
// catchUpStreamThreshold documents pulls the root's state snapshot in
// one stream instead of walking the catalog entry by entry, and lands
// on the same end-state.
func TestCatchUpStreamsWhenFarBehind(t *testing.T) {
	stations := newFabric(t, 5, 2, 0)
	root := stations[0]
	specs := make([]string, 4)
	for i := range specs {
		specs[i] = authorCourse(t, root, i+1).URL
	}
	stations[2].Close()
	for _, url := range specs {
		if _, err := root.Broadcast(url, false); err != nil {
			t.Fatal(err)
		}
	}
	probeUntilDown(t, root, 3)

	st, err := Rejoin(newTestStore(t), "127.0.0.1:0", root.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	res, err := st.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Streamed || res.StreamedBytes == 0 {
		t.Errorf("catch-up did not stream: %+v", res)
	}
	if res.References != len(specs) {
		t.Errorf("catch-up installed %d documents, want %d", res.References, len(specs))
	}
	if len(res.Resolved) != len(specs) {
		t.Fatalf("catch-up resolved %d documents, want %d", len(res.Resolved), len(specs))
	}
	for _, r := range res.Resolved {
		if !r.Replicated || r.Fetches != 1 {
			t.Errorf("streamed resolve under watermark 0 = %+v", r)
		}
	}
	for _, url := range specs {
		obj, err := st.Store().ObjectByURL(url)
		if err != nil || obj.Form != schema.FormInstance {
			t.Errorf("%s after streamed catch-up: %+v (err=%v)", url, obj, err)
		}
	}
	if st.Store().Blobs().Stats().PhysicalBytes == 0 {
		t.Error("streamed catch-up under watermark 0 materialized no bytes")
	}
}

// TestCatchUpStreamDefersBytesAboveWatermark: the streamed path obeys
// the same watermark policy as per-entry catch-up — references only,
// one fetch recorded per document, so later demand crosses the
// watermark on the same schedule.
func TestCatchUpStreamDefersBytesAboveWatermark(t *testing.T) {
	stations := newFabric(t, 3, 2, 1)
	root := stations[0]
	specs := make([]string, 3)
	for i := range specs {
		specs[i] = authorCourse(t, root, i+1).URL
	}
	stations[2].Close()
	for _, url := range specs {
		if _, err := root.Broadcast(url, false); err != nil {
			t.Fatal(err)
		}
	}
	probeUntilDown(t, root, 3)
	st, err := Rejoin(newTestStore(t), "127.0.0.1:0", root.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	res, err := st.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Streamed {
		t.Fatalf("catch-up did not stream: %+v", res)
	}
	for _, r := range res.Resolved {
		if r.Replicated || r.Fetches != 1 {
			t.Errorf("streamed resolve above the watermark = %+v", r)
		}
	}
	if phys := st.Store().Blobs().Stats().PhysicalBytes; phys != 0 {
		t.Errorf("streamed catch-up above the watermark materialized %d bytes", phys)
	}
	// The streamed serve counted as fetch 1: the next resolve is fetch
	// 2 and crosses watermark 1, exactly as the per-entry path would.
	follow, err := st.Resolve(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if follow.Fetches != 2 || !follow.Replicated {
		t.Errorf("resolve after streamed catch-up = %+v, want fetch 2 crossing the watermark", follow)
	}
}

// TestStreamedCatchUpMatchesSimulator extends the fabric parity suite:
// a station dark through four broadcasts rejoins, catches up via the
// checkpoint stream, and the fabric lands on exactly the end-state the
// netsim simulator predicts for the same schedule.
func TestStreamedCatchUpMatchesSimulator(t *testing.T) {
	const (
		n         = 5
		m         = 2
		watermark = 0
		courses   = 4
	)

	// --- Simulated run.
	sim, err := cluster.New(cluster.Config{
		Stations:  n,
		M:         m,
		UplinkBps: 1.25e6,
		Latency:   5 * time.Millisecond,
		Watermark: watermark,
		Mode:      netsim.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	simSpecs := make([]string, courses)
	for i := 0; i < courses; i++ {
		spec := smallCourse(i + 1)
		simSpecs[i] = spec.URL
		if _, _, err := sim.AuthorCourse(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.MarkDown(3); err != nil {
		t.Fatal(err)
	}
	for _, url := range simSpecs {
		if _, _, err := sim.PreBroadcastResilient(url); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.MarkUp(3); err != nil {
		t.Fatal(err)
	}
	for _, url := range simSpecs {
		if _, err := sim.FetchOnDemandResilient(3, url); err != nil {
			t.Fatal(err)
		}
	}

	// --- Live run, same schedule, catch-up via the stream.
	stations := newFabric(t, n, m, watermark)
	root := stations[0]
	for i := 0; i < courses; i++ {
		authorCourse(t, root, i+1)
	}
	stations[2].Close()
	for _, url := range simSpecs {
		if _, err := root.Broadcast(url, false); err != nil {
			t.Fatal(err)
		}
	}
	probeUntilDown(t, root, 3)
	st, err := Rejoin(newTestStore(t), "127.0.0.1:0", root.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	res, err := st.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Streamed {
		t.Fatalf("far-behind rejoin did not stream: %+v", res)
	}
	stations[2] = st

	// --- Same end-state, station by station.
	simUsage := sim.DiskUsage()
	for pos := 1; pos <= n; pos++ {
		live := stations[pos-1].Store()
		simSt, err := sim.Station(pos)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := live.Blobs().Stats().PhysicalBytes, simUsage[pos-1]; got != want {
			t.Errorf("station %d: physical bytes fabric=%d sim=%d", pos, got, want)
		}
		for _, url := range simSpecs {
			liveObj, liveErr := live.ObjectByURL(url)
			simObj, simErr := simSt.Store.ObjectByURL(url)
			if (liveErr == nil) != (simErr == nil) {
				t.Errorf("station %d %s: presence fabric=%v sim=%v", pos, url, liveErr, simErr)
				continue
			}
			if liveErr == nil && liveObj.Form != simObj.Form {
				t.Errorf("station %d %s: form fabric=%s sim=%s", pos, url, liveObj.Form, simObj.Form)
			}
		}
	}
}

// TestThirteenStationFailureMatchesSimulator is the acceptance run: a
// 13-station m=3 fabric loses two non-root stations mid-broadcast,
// repairs the tree, serves an orphaned descendant, takes the stations
// back on rejoin with catch-up, and lands on exactly the end-state the
// netsim simulator predicts for the same failure schedule.
func TestThirteenStationFailureMatchesSimulator(t *testing.T) {
	const (
		n         = 13
		m         = 3
		watermark = 0
	)
	specA := smallCourse(1)
	specB := smallCourse(2)

	// --- Simulated failure run.
	sim, err := cluster.New(cluster.Config{
		Stations:  n,
		M:         m,
		UplinkBps: 1.25e6,
		Latency:   5 * time.Millisecond,
		Watermark: watermark,
		Mode:      netsim.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.AuthorCourse(specA); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.AuthorCourse(specB); err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{2, 6} {
		if err := sim.MarkDown(pos); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := sim.PreBroadcastResilient(specA.URL); err != nil {
		t.Fatal(err)
	}
	// The orphaned station 7 (child of dead 2) pulls an un-broadcast
	// course across the dead hop.
	if _, err := sim.FetchOnDemandResilient(7, specB.URL); err != nil {
		t.Fatal(err)
	}
	// Both stations come back and catch up on the missed broadcast.
	for _, pos := range []int{2, 6} {
		if err := sim.MarkUp(pos); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.FetchOnDemandResilient(pos, specA.URL); err != nil {
			t.Fatal(err)
		}
	}

	// --- Live run, same schedule.
	stations := newFabric(t, n, m, watermark)
	root := stations[0]
	authorCourse(t, root, 1)
	authorCourse(t, root, 2)

	// Stations 2 and 6 are SIGKILL stand-ins: their sockets vanish
	// without a word to the root, which discovers them only through
	// the broadcast's own fan-out failures.
	stations[1].Close()
	stations[5].Close()
	res, err := root.Broadcast(specA.URL, false)
	if err != nil {
		t.Fatal(err)
	}
	byPos := map[int]StationResult{}
	for _, sr := range res.Stations {
		byPos[sr.Pos] = sr
	}
	for pos := 2; pos <= n; pos++ {
		if pos == 2 || pos == 6 {
			if byPos[pos].Err == "" {
				t.Errorf("dead station %d not reported in broadcast results", pos)
			}
			continue
		}
		if byPos[pos].Err != "" || byPos[pos].Form != schema.FormInstance {
			t.Errorf("station %d after repaired broadcast: %+v", pos, byPos[pos])
		}
	}

	// The in-flight discovery reaches the root's roster.
	webtest.Eventually(t, 30*time.Second, "root to confirm both deaths", func() bool {
		return root.Down(2) && root.Down(6)
	})

	// An orphaned descendant (7, child of dead 2) resolves through the
	// grafted route to the root.
	fetch, err := stations[6].Resolve(specB.URL)
	if err != nil {
		t.Fatal(err)
	}
	if fetch.ServedBy != 1 || !fetch.Replicated {
		t.Errorf("orphan resolve = %+v", fetch)
	}

	// Both stations restart (fresh sockets and stores — a SIGKILL lost
	// nothing durable in this in-memory test), reclaim their
	// positions, and catch up.
	for _, pos := range []int{2, 6} {
		st, err := Rejoin(newTestStore(t), "127.0.0.1:0", root.Addr(), pos)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		if st.Pos() != pos {
			t.Fatalf("station rejoined at %d, want %d", st.Pos(), pos)
		}
		if _, err := st.CatchUp(); err != nil {
			t.Fatal(err)
		}
		if root.Down(pos) {
			t.Errorf("station %d still down after rejoin", pos)
		}
		stations[pos-1] = st
	}

	// --- Same end-state, station by station.
	simUsage := sim.DiskUsage()
	for pos := 1; pos <= n; pos++ {
		live := stations[pos-1].Store()
		simSt, err := sim.Station(pos)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := live.Blobs().Stats().PhysicalBytes, simUsage[pos-1]; got != want {
			t.Errorf("station %d: physical bytes fabric=%d sim=%d", pos, got, want)
		}
		for _, url := range []string{specA.URL, specB.URL} {
			liveObj, liveErr := live.ObjectByURL(url)
			simObj, simErr := simSt.Store.ObjectByURL(url)
			if (liveErr == nil) != (simErr == nil) {
				t.Errorf("station %d %s: presence fabric=%v sim=%v", pos, url, liveErr, simErr)
				continue
			}
			if liveErr == nil && liveObj.Form != simObj.Form {
				t.Errorf("station %d %s: form fabric=%s sim=%s", pos, url, liveObj.Form, simObj.Form)
			}
		}
	}
}
