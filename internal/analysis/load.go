package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the non-test files of
// one directory. Test files are deliberately excluded — the linter's
// invariants guard production code, and fixture packages under
// testdata stand in for the test-side cases.
type Package struct {
	Dir   string
	Path  string // import path within the module
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages using only the
// standard library: module-internal imports resolve straight to
// source directories under the module root, and everything else
// (the standard library) goes through the go/importer "source"
// importer. No x/tools, no export data, no go command.
type Loader struct {
	ModRoot string
	ModPath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from
	// GOROOT/src; with cgo enabled it would trip over `import "C"`
	// files in net and os/user, so force the pure-Go variants — type
	// identity is unaffected.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Fset returns the shared position set of every package this loader
// touched.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadDir loads the package in dir (absolute or relative to the
// working directory). Results are cached by import path, so loading
// the same directory twice is free.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModRoot)
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var terrs []string
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			if len(terrs) < 10 {
				terrs = append(terrs, err.Error())
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", path, strings.Join(terrs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Dir: dir, Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test .go files of dir in name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter routes module-internal import paths to source
// directories and delegates the rest to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := l.ModRoot
		if path != l.ModPath {
			dir = filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// PackageDirs walks the module tree under root and returns every
// directory holding at least one non-test Go file, skipping testdata
// trees (fixture packages violate invariants on purpose), vendor, and
// hidden directories.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		n := d.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		d = parent
	}
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}
