package blob

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/wire"
)

// snapshotEntry is the image of one stored object. On disk it is a
// binary record under wire.BlobMagic:
//
//	[uvarint nentries] per entry:
//	  [hash string][uvarint kind][uvarint refcount]
//	  [uvarint nnames names...][data bytes]
//
// Pre-overhaul gob sidecars restore one last time through the read
// fallback (a gob stream's first byte can never be BlobMagic).
type snapshotEntry struct {
	Hash     string
	Kind     Kind
	Refcount int
	Names    []string
	Data     []byte
}

// Snapshot writes a point-in-time image of the store, so a station can
// persist its BLOB layer alongside the relational snapshot. Object
// bytes land on disk as a flat copy under a CRC32C seal — no gob
// reflection walk over megabyte video bodies.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	payload := wire.GetBuf()
	payload = wire.AppendUvarint(payload, uint64(len(s.objects)))
	for _, ref := range s.listLocked() {
		e := s.objects[ref.Hash]
		names := make([]string, 0, len(e.names))
		for n := range e.names {
			names = append(names, n)
		}
		sortStrings(names)
		payload = wire.AppendString(payload, ref.Hash)
		payload = wire.AppendUvarint(payload, uint64(e.kind))
		payload = wire.AppendUvarint(payload, uint64(e.refcount))
		payload = wire.AppendUvarint(payload, uint64(len(names)))
		for _, n := range names {
			payload = wire.AppendString(payload, n)
		}
		payload = wire.AppendBytes(payload, e.data)
	}
	sealed := wire.SealImage(wire.BlobMagic, payload)
	wire.PutBuf(payload)
	_, err := w.Write(sealed)
	return err
}

// decodeSnapshot parses either sidecar format into entries.
func decodeSnapshot(data []byte) ([]snapshotEntry, error) {
	if !wire.IsImage(wire.BlobMagic, data) {
		var entries []snapshotEntry
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&entries); err != nil {
			return nil, fmt.Errorf("blob: decoding snapshot: %w", err)
		}
		return entries, nil
	}
	payload, err := wire.OpenImage(wire.BlobMagic, data)
	if err != nil {
		return nil, fmt.Errorf("blob: decoding snapshot: %w", err)
	}
	r := wire.NewReader(payload)
	n := int(r.Uvarint())
	if r.Err() == nil && n > r.Len() {
		return nil, fmt.Errorf("blob: corrupt snapshot: %d entries in %d bytes", n, r.Len())
	}
	entries := make([]snapshotEntry, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		e := snapshotEntry{
			Hash:     r.String(),
			Kind:     Kind(r.Uvarint()),
			Refcount: int(r.Uvarint()),
		}
		nn := int(r.Uvarint())
		for j := 0; j < nn && r.Err() == nil; j++ {
			e.Names = append(e.Names, r.String())
		}
		e.Data = r.Bytes()
		entries = append(entries, e)
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("blob: corrupt snapshot: %w", r.Err())
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("blob: corrupt snapshot: %d trailing bytes", r.Len())
	}
	return entries, nil
}

// Restore replaces the store contents with a snapshot previously
// written by Snapshot, verifying every object's content hash.
func (s *Store) Restore(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("blob: reading snapshot: %w", err)
	}
	entries, err := decodeSnapshot(data)
	if err != nil {
		return err
	}
	fresh := NewStore()
	for _, e := range entries {
		if e.Refcount <= 0 {
			return fmt.Errorf("blob: snapshot holds unreferenced object %s", e.Hash[:12])
		}
		name := ""
		if len(e.Names) > 0 {
			name = e.Names[0]
		}
		ref := fresh.Put(name, e.Kind, e.Data)
		if ref.Hash != e.Hash {
			return fmt.Errorf("blob: snapshot object %s fails content verification", e.Hash[:12])
		}
		for _, n := range e.Names[1:] {
			fresh.mu.Lock()
			fresh.objects[ref.Hash].names[n] = struct{}{}
			fresh.mu.Unlock()
		}
		for i := 1; i < e.Refcount; i++ {
			if err := fresh.Retain(ref); err != nil {
				return err
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh.mu.Lock()
	defer fresh.mu.Unlock()
	s.objects = fresh.objects
	s.logicalBytes = fresh.logicalBytes
	s.physicalBytes = fresh.physicalBytes
	return nil
}

// listLocked returns refs sorted by hash; caller holds at least the
// read lock.
func (s *Store) listLocked() []Ref {
	refs := make([]Ref, 0, len(s.objects))
	for h, e := range s.objects {
		refs = append(refs, Ref{Hash: h, Size: int64(len(e.data)), Kind: e.kind})
	}
	sortRefs(refs)
	return refs
}

func sortRefs(refs []Ref) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j].Hash < refs[j-1].Hash; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
