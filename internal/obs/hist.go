// Package obs is the federation's zero-dependency observability layer:
// per-RPC-method latency histograms with percentile summaries, and a
// bounded ring of trace spans stitched together by TraceIDs that ride
// the transport envelope hop-by-hop through the distribution tree. The
// paper's system had no visibility into its multi-hop operations; obs
// answers "which hop made this resolve slow?" without any external
// telemetry dependency.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Log-linear bucketing: each power-of-two octave of nanoseconds is cut
// into 1<<subBits sub-buckets, so a recorded value lands in a bucket
// whose width is at most 1/16th of its magnitude — quantile estimates
// carry a bounded ~6.25% relative error while the whole histogram stays
// a fixed array of atomic counters (no allocation on the record path).
const (
	subBits = 4
	numSub  = 1 << subBits

	// Values below numSub get exact unit buckets; above, each octave
	// contributes numSub buckets up to the top of the uint64 range.
	numBuckets = (64 - subBits + 1) * numSub
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < numSub {
		return int(v)
	}
	exp := bits.Len64(v) - subBits - 1
	return exp*numSub + int(v>>uint(exp))
}

// bucketLow returns the smallest value that maps to bucket i.
func bucketLow(i int) uint64 {
	if i < numSub {
		return uint64(i)
	}
	exp := i/numSub - 1
	return uint64(numSub+i%numSub) << uint(exp)
}

// bucketMid returns the midpoint of bucket i, the value reported for
// quantiles that land in it.
func bucketMid(i int) uint64 {
	if i < numSub {
		return uint64(i)
	}
	exp := i/numSub - 1
	return bucketLow(i) + uint64(1)<<uint(exp)/2
}

// Histogram is a concurrent-safe log-bucketed latency histogram. The
// zero value is NOT ready; use newHistogram (the bucket array is large
// enough that histograms are shared behind pointers, never copied).
type Histogram struct {
	counts []atomic.Uint64 // numBuckets entries
	count  atomic.Uint64
	errs   atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
	max    atomic.Uint64 // nanoseconds
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, numBuckets)}
}

// Record adds one observation. failed marks the operation as having
// returned an error; its latency still counts (a slow failure is still
// a slow call).
func (h *Histogram) Record(d time.Duration, failed bool) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	if failed {
		h.errs.Add(1)
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// BucketCount is one non-empty bucket in a histogram snapshot.
type BucketCount struct {
	Bucket int
	Count  uint64
}

// HistSnapshot is a point-in-time, gob-friendly copy of a histogram:
// only non-empty buckets travel, so a station that has served three
// methods does not ship kilobytes of zeros in every Stats reply.
type HistSnapshot struct {
	Count   uint64
	Errors  uint64
	SumNs   uint64
	MaxNs   uint64
	Buckets []BucketCount // ascending bucket index
}

// Snapshot copies the histogram. Concurrent Records may or may not be
// included; the copy is internally consistent enough for reporting
// (counts are re-summed from the buckets).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Errors: h.errs.Load(),
		SumNs:  h.sum.Load(),
		MaxNs:  h.max.Load(),
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Bucket: i, Count: n})
			s.Count += n
		}
	}
	return s
}

// Merge folds another snapshot into this one (federation-wide method
// totals are the merge of every station's snapshot).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Errors += o.Errors
	s.SumNs += o.SumNs
	if o.MaxNs > s.MaxNs {
		s.MaxNs = o.MaxNs
	}
	merged := make([]BucketCount, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Bucket < o.Buckets[j].Bucket):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Bucket < s.Buckets[i].Bucket:
			merged = append(merged, o.Buckets[j])
			j++
		default:
			merged = append(merged, BucketCount{Bucket: s.Buckets[i].Bucket, Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
}

// Quantile returns the nearest-rank q-quantile (0 < q <= 1) as a
// duration, reported at the midpoint of the bucket the rank lands in
// and clamped to the observed maximum. Zero observations yield zero.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) || rank == 0 {
		rank++ // ceil, and ranks are 1-based
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			v := bucketMid(b.Bucket)
			if s.MaxNs > 0 && v > s.MaxNs {
				v = s.MaxNs
			}
			return time.Duration(v)
		}
	}
	return time.Duration(s.MaxNs)
}

// Summary is the human-facing digest of one method's histogram, the
// form that travels in Stats replies and JSON reports.
type Summary struct {
	Count   uint64  `json:"count"`
	Errors  uint64  `json:"errors,omitempty"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
	MeanMs  float64 `json:"mean_ms"`
	TotalMs float64 `json:"total_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Summary digests the snapshot.
func (s *HistSnapshot) Summary() Summary {
	sum := Summary{
		Count:   s.Count,
		Errors:  s.Errors,
		P50Ms:   ms(s.Quantile(0.50)),
		P95Ms:   ms(s.Quantile(0.95)),
		P99Ms:   ms(s.Quantile(0.99)),
		MaxMs:   ms(time.Duration(s.MaxNs)),
		TotalMs: ms(time.Duration(s.SumNs)),
	}
	if s.Count > 0 {
		sum.MeanMs = sum.TotalMs / float64(s.Count)
	}
	return sum
}

// Metrics is a registry of per-method histograms. The zero value is
// ready to use.
type Metrics struct {
	mu    sync.RWMutex
	hists map[string]*Histogram
}

func (m *Metrics) hist(method string) *Histogram {
	m.mu.RLock()
	h := m.hists[method]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hists == nil {
		m.hists = make(map[string]*Histogram)
	}
	if h = m.hists[method]; h == nil {
		h = newHistogram()
		m.hists[method] = h
	}
	return h
}

// Observe records one call of a method.
func (m *Metrics) Observe(method string, d time.Duration, failed bool) {
	m.hist(method).Record(d, failed)
}

// Snapshot copies every method's histogram.
func (m *Metrics) Snapshot() map[string]HistSnapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]HistSnapshot, len(m.hists))
	for method, h := range m.hists {
		out[method] = h.Snapshot()
	}
	return out
}

// Summaries digests every method's histogram — the payload the Stats
// RPC carries.
func (m *Metrics) Summaries() map[string]Summary {
	snaps := m.Snapshot()
	out := make(map[string]Summary, len(snaps))
	for method, s := range snaps {
		out[method] = s.Summary()
	}
	return out
}

// MethodsByTotal orders a summary map hottest-first (total time spent,
// then count) — the sort behind `webdocctl top`.
func MethodsByTotal(sums map[string]Summary) []string {
	methods := make([]string, 0, len(sums))
	for m := range sums {
		methods = append(methods, m)
	}
	sort.Slice(methods, func(i, j int) bool {
		a, b := sums[methods[i]], sums[methods[j]]
		if a.TotalMs != b.TotalMs {
			return a.TotalMs > b.TotalMs
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return methods[i] < methods[j]
	})
	return methods
}
