package loadgen

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// A load profile scripts one compressed semester day against the
// distribution fabric: which fabric to stand up, how many courses to
// author, the traffic phases (broadcast bursts, lecture-hour resolve
// storms, evening federated search, background check-out/check-in) and
// the latency SLOs the run is judged against. Times in the profile are
// SIMULATED — `time-scale: 360` replays a six-hour day in one minute
// of wall clock.

// Profile is a parsed load profile.
type Profile struct {
	Name      string
	Seed      int64
	TimeScale float64 // simulated seconds per wall second
	Fabric    FabricSpec
	Courses   CourseLoad
	Phases    []Phase
	SLOs      []SLO
}

// FabricSpec shapes the self-hosted fabric (ignored when the harness
// targets an already-running one, except Stations which it verifies).
type FabricSpec struct {
	Stations  int
	M         int
	Watermark int
}

// CourseLoad shapes the synthetic course corpus seeded on the root.
type CourseLoad struct {
	Count         int
	Pages         int
	ExtraLinks    int
	ImagesPerPage int
}

// Phase is one traffic segment: Rate ops per simulated second of Op
// traffic across the simulated window [Start, Start+Duration), driven
// by Clients concurrent workers.
type Phase struct {
	Name     string
	Op       string // broadcast | resolve | search | checkout | migrate
	Start    time.Duration
	Duration time.Duration
	Rate     float64
	Clients  int
	RefsOnly bool // broadcast: push references instead of full bundles
	TopK     int  // search: hits requested
	Phrase   bool // search: phrase query
}

// SLO is one latency/throughput objective for an op class. Zero-valued
// thresholds are unchecked; MaxErrorRate is a fraction, -1 = unchecked.
type SLO struct {
	Op            string
	P50, P95, P99 time.Duration
	MaxErrorRate  float64
	MinThroughput float64 // ops per simulated second
}

// Ops the driver knows how to issue.
var knownOps = map[string]bool{
	"broadcast": true, "resolve": true, "search": true,
	"checkout": true, "migrate": true,
}

// LoadProfile reads and parses a profile file. A missing `name` field
// defaults to the file's base name without extension.
func LoadProfile(path string) (*Profile, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := ParseProfile(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if p.Name == "" {
		p.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return p, nil
}

// ParseProfile parses profile YAML and validates it.
func ParseProfile(src []byte) (*Profile, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	if root.kind != yamlMap {
		return nil, fmt.Errorf("profile: top level must be a mapping")
	}
	if err := root.checkKeys("profile",
		"name", "seed", "time-scale", "fabric", "courses", "phases", "slos"); err != nil {
		return nil, err
	}
	p := &Profile{
		// Defaults for a small single-station smoke run; profiles
		// normally set all of these.
		Seed:      1,
		TimeScale: 1,
		Fabric:    FabricSpec{Stations: 3, M: 3, Watermark: 2},
		Courses:   CourseLoad{Count: 4, Pages: 6, ExtraLinks: 2, ImagesPerPage: 1},
	}
	d := &decoder{}
	p.Name = d.str(root.get("name"), "name", "")
	p.Seed = d.i64(root.get("seed"), "seed", p.Seed)
	p.TimeScale = d.f64(root.get("time-scale"), "time-scale", p.TimeScale)

	if f := root.get("fabric"); f != nil {
		d.keys(f, "fabric", "stations", "m", "watermark")
		p.Fabric.Stations = d.num(f.get("stations"), "fabric.stations", p.Fabric.Stations)
		p.Fabric.M = d.num(f.get("m"), "fabric.m", p.Fabric.M)
		p.Fabric.Watermark = d.num(f.get("watermark"), "fabric.watermark", p.Fabric.Watermark)
	}
	if c := root.get("courses"); c != nil {
		d.keys(c, "courses", "count", "pages", "extra-links", "images-per-page")
		p.Courses.Count = d.num(c.get("count"), "courses.count", p.Courses.Count)
		p.Courses.Pages = d.num(c.get("pages"), "courses.pages", p.Courses.Pages)
		p.Courses.ExtraLinks = d.num(c.get("extra-links"), "courses.extra-links", p.Courses.ExtraLinks)
		p.Courses.ImagesPerPage = d.num(c.get("images-per-page"), "courses.images-per-page", p.Courses.ImagesPerPage)
	}
	if phases := root.get("phases"); phases != nil {
		if phases.kind != yamlList {
			d.errf("phases: must be a sequence")
		} else {
			for i, item := range phases.items {
				ctx := fmt.Sprintf("phases[%d]", i)
				d.keys(item, ctx, "name", "op", "start", "duration", "rate",
					"clients", "refs-only", "top-k", "phrase")
				ph := Phase{Clients: 1, TopK: 10}
				ph.Name = d.str(item.get("name"), ctx+".name", "")
				ph.Op = d.str(item.get("op"), ctx+".op", "")
				ph.Start = d.dur(item.get("start"), ctx+".start", 0)
				ph.Duration = d.dur(item.get("duration"), ctx+".duration", 0)
				ph.Rate = d.f64(item.get("rate"), ctx+".rate", 0)
				ph.Clients = d.num(item.get("clients"), ctx+".clients", ph.Clients)
				ph.RefsOnly = d.boolean(item.get("refs-only"), ctx+".refs-only", false)
				ph.TopK = d.num(item.get("top-k"), ctx+".top-k", ph.TopK)
				ph.Phrase = d.boolean(item.get("phrase"), ctx+".phrase", false)
				if ph.Name == "" {
					ph.Name = fmt.Sprintf("%s-%d", ph.Op, i)
				}
				p.Phases = append(p.Phases, ph)
			}
		}
	}
	if slos := root.get("slos"); slos != nil {
		if slos.kind != yamlList {
			d.errf("slos: must be a sequence")
		} else {
			for i, item := range slos.items {
				ctx := fmt.Sprintf("slos[%d]", i)
				d.keys(item, ctx, "op", "p50", "p95", "p99", "max-error-rate", "min-throughput")
				s := SLO{MaxErrorRate: -1}
				s.Op = d.str(item.get("op"), ctx+".op", "")
				s.P50 = d.dur(item.get("p50"), ctx+".p50", 0)
				s.P95 = d.dur(item.get("p95"), ctx+".p95", 0)
				s.P99 = d.dur(item.get("p99"), ctx+".p99", 0)
				s.MaxErrorRate = d.f64(item.get("max-error-rate"), ctx+".max-error-rate", s.MaxErrorRate)
				s.MinThroughput = d.f64(item.get("min-throughput"), ctx+".min-throughput", 0)
				p.SLOs = append(p.SLOs, s)
			}
		}
	}
	if err := d.err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks profile invariants beyond syntax.
func (p *Profile) Validate() error {
	var errs []string
	add := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }
	if p.TimeScale <= 0 {
		add("time-scale must be positive, got %g", p.TimeScale)
	}
	if p.Fabric.Stations < 1 {
		add("fabric.stations must be >= 1, got %d", p.Fabric.Stations)
	}
	if p.Fabric.M < 1 {
		add("fabric.m must be >= 1, got %d", p.Fabric.M)
	}
	if p.Courses.Count < 1 {
		add("courses.count must be >= 1, got %d", p.Courses.Count)
	}
	if len(p.Phases) == 0 {
		add("profile declares no phases")
	}
	phaseOps := map[string]bool{}
	for i, ph := range p.Phases {
		if !knownOps[ph.Op] {
			add("phases[%d] (%s): unknown op %q", i, ph.Name, ph.Op)
		}
		if ph.Duration <= 0 {
			add("phases[%d] (%s): duration must be positive", i, ph.Name)
		}
		if ph.Rate <= 0 {
			add("phases[%d] (%s): rate must be positive", i, ph.Name)
		}
		if ph.Clients < 1 {
			add("phases[%d] (%s): clients must be >= 1", i, ph.Name)
		}
		if (ph.Op == "resolve" || ph.Op == "search" || ph.Op == "checkout") && p.Fabric.Stations < 2 {
			add("phases[%d] (%s): %s traffic needs at least 2 stations", i, ph.Name, ph.Op)
		}
		phaseOps[ph.Op] = true
	}
	for i, s := range p.SLOs {
		if !phaseOps[s.Op] {
			add("slos[%d]: op %q has no traffic phase", i, s.Op)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("profile: %s", strings.Join(errs, "; "))
	}
	return nil
}

// SimDuration is the simulated end of the last phase.
func (p *Profile) SimDuration() time.Duration {
	var end time.Duration
	for _, ph := range p.Phases {
		if t := ph.Start + ph.Duration; t > end {
			end = t
		}
	}
	return end
}

// EncodeProfile renders the profile back to parseable YAML — the other
// half of the round trip the tests pin down, and what `webdocload
// -dump-profile` prints after applying defaults.
func EncodeProfile(p *Profile) []byte {
	root := &yamlNode{kind: yamlMap, fields: map[string]*yamlNode{}}
	set := func(m *yamlNode, key, val string) {
		m.keys = append(m.keys, key)
		m.fields[key] = &yamlNode{kind: yamlScalar, scalar: val}
	}
	sub := func(m *yamlNode, key string) *yamlNode {
		child := &yamlNode{kind: yamlMap, fields: map[string]*yamlNode{}}
		m.keys = append(m.keys, key)
		m.fields[key] = child
		return child
	}
	set(root, "name", p.Name)
	set(root, "seed", strconv.FormatInt(p.Seed, 10))
	set(root, "time-scale", trimFloat(p.TimeScale))
	f := sub(root, "fabric")
	set(f, "stations", strconv.Itoa(p.Fabric.Stations))
	set(f, "m", strconv.Itoa(p.Fabric.M))
	set(f, "watermark", strconv.Itoa(p.Fabric.Watermark))
	c := sub(root, "courses")
	set(c, "count", strconv.Itoa(p.Courses.Count))
	set(c, "pages", strconv.Itoa(p.Courses.Pages))
	set(c, "extra-links", strconv.Itoa(p.Courses.ExtraLinks))
	set(c, "images-per-page", strconv.Itoa(p.Courses.ImagesPerPage))
	phases := &yamlNode{kind: yamlList}
	root.keys = append(root.keys, "phases")
	root.fields["phases"] = phases
	for _, ph := range p.Phases {
		item := &yamlNode{kind: yamlMap, fields: map[string]*yamlNode{}}
		set(item, "name", ph.Name)
		set(item, "op", ph.Op)
		set(item, "start", ph.Start.String())
		set(item, "duration", ph.Duration.String())
		set(item, "rate", trimFloat(ph.Rate))
		set(item, "clients", strconv.Itoa(ph.Clients))
		if ph.Op == "broadcast" {
			set(item, "refs-only", strconv.FormatBool(ph.RefsOnly))
		}
		if ph.Op == "search" {
			set(item, "top-k", strconv.Itoa(ph.TopK))
			set(item, "phrase", strconv.FormatBool(ph.Phrase))
		}
		phases.items = append(phases.items, item)
	}
	if len(p.SLOs) > 0 {
		slos := &yamlNode{kind: yamlList}
		root.keys = append(root.keys, "slos")
		root.fields["slos"] = slos
		for _, s := range p.SLOs {
			item := &yamlNode{kind: yamlMap, fields: map[string]*yamlNode{}}
			set(item, "op", s.Op)
			if s.P50 > 0 {
				set(item, "p50", s.P50.String())
			}
			if s.P95 > 0 {
				set(item, "p95", s.P95.String())
			}
			if s.P99 > 0 {
				set(item, "p99", s.P99.String())
			}
			if s.MaxErrorRate >= 0 {
				set(item, "max-error-rate", trimFloat(s.MaxErrorRate))
			}
			if s.MinThroughput > 0 {
				set(item, "min-throughput", trimFloat(s.MinThroughput))
			}
			slos.items = append(slos.items, item)
		}
	}
	return encodeYAML(root)
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// --- scalar decoding -------------------------------------------------

// decoder accumulates errors so a bad profile reports every problem in
// one pass instead of one per run.
type decoder struct {
	errs []string
}

func (d *decoder) errf(format string, args ...any) {
	d.errs = append(d.errs, fmt.Sprintf(format, args...))
}

func (d *decoder) err() error {
	if len(d.errs) == 0 {
		return nil
	}
	return fmt.Errorf("profile: %s", strings.Join(d.errs, "; "))
}

func (d *decoder) keys(n *yamlNode, ctx string, allowed ...string) {
	if n == nil {
		return
	}
	if n.kind != yamlMap {
		d.errf("%s: must be a mapping", ctx)
		return
	}
	if err := n.checkKeys(ctx, allowed...); err != nil {
		d.errs = append(d.errs, err.Error())
	}
}

func (d *decoder) scalar(n *yamlNode, ctx string) (string, bool) {
	if n == nil {
		return "", false
	}
	if n.kind != yamlScalar {
		d.errf("%s: expected a scalar", ctx)
		return "", false
	}
	return n.scalar, true
}

func (d *decoder) str(n *yamlNode, ctx, def string) string {
	if s, ok := d.scalar(n, ctx); ok {
		return s
	}
	return def
}

func (d *decoder) num(n *yamlNode, ctx string, def int) int {
	s, ok := d.scalar(n, ctx)
	if !ok {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		d.errf("%s: bad integer %q", ctx, s)
		return def
	}
	return v
}

func (d *decoder) i64(n *yamlNode, ctx string, def int64) int64 {
	s, ok := d.scalar(n, ctx)
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		d.errf("%s: bad integer %q", ctx, s)
		return def
	}
	return v
}

func (d *decoder) f64(n *yamlNode, ctx string, def float64) float64 {
	s, ok := d.scalar(n, ctx)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.errf("%s: bad number %q", ctx, s)
		return def
	}
	return v
}

func (d *decoder) boolean(n *yamlNode, ctx string, def bool) bool {
	s, ok := d.scalar(n, ctx)
	if !ok {
		return def
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		d.errf("%s: bad boolean %q", ctx, s)
		return def
	}
	return v
}

// dur parses Go duration syntax ("90s", "1h30m").
func (d *decoder) dur(n *yamlNode, ctx string, def time.Duration) time.Duration {
	s, ok := d.scalar(n, ctx)
	if !ok {
		return def
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		d.errf("%s: bad duration %q", ctx, s)
		return def
	}
	return v
}
