package locking

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var (
	course = Path{"mmu", "intro-cs"}
	impl   = Path{"mmu", "intro-cs", "v1"}
	page   = Path{"mmu", "intro-cs", "v1", "index.html"}
	other  = Path{"mmu", "intro-mm"}
)

func mustTry(t *testing.T, m *Manager, user string, p Path, mode Mode) *Lock {
	t.Helper()
	lk, blockers, err := m.TryAcquire(user, p, mode)
	if err != nil {
		t.Fatal(err)
	}
	if lk == nil {
		t.Fatalf("%s could not lock %s %s; blocked by %v", user, mode, p, blockers)
	}
	return lk
}

func mustBlock(t *testing.T, m *Manager, user string, p Path, mode Mode) []string {
	t.Helper()
	lk, blockers, err := m.TryAcquire(user, p, mode)
	if err != nil {
		t.Fatal(err)
	}
	if lk != nil {
		t.Fatalf("%s unexpectedly locked %s %s", user, mode, p)
	}
	return blockers
}

func TestCompatibilityTablePerPaper(t *testing.T) {
	// Read-locked container: components readable, not writable; the
	// container itself readable, not writable; parents fully open.
	if !Compatible(Read, Read, Same) {
		t.Error("R/R same should be compatible")
	}
	if Compatible(Read, Write, Same) {
		t.Error("R/W same should conflict")
	}
	if !Compatible(Read, Read, HeldIsAncestor) {
		t.Error("component read under read-locked container should pass")
	}
	if Compatible(Read, Write, HeldIsAncestor) {
		t.Error("component write under read-locked container should conflict")
	}
	if !Compatible(Read, Read, HeldIsDescendant) || !Compatible(Read, Write, HeldIsDescendant) {
		t.Error("parents of a read-locked container must stay fully accessible")
	}
	// Write-locked container: everything at or below prohibited.
	if Compatible(Write, Read, Same) || Compatible(Write, Write, Same) {
		t.Error("write-locked container must be untouchable")
	}
	if Compatible(Write, Read, HeldIsAncestor) || Compatible(Write, Write, HeldIsAncestor) {
		t.Error("components of a write-locked container must be untouchable")
	}
	if !Compatible(Write, Read, HeldIsDescendant) || !Compatible(Write, Write, HeldIsDescendant) {
		t.Error("parents of a write-locked container must stay fully accessible")
	}
	// Disjoint subtrees never conflict.
	if !Compatible(Write, Write, Unrelated) {
		t.Error("unrelated objects must not conflict")
	}
}

func TestReadLockAllowsComponentReads(t *testing.T) {
	m := NewManager()
	lk := mustTry(t, m, "shih", course, Read)
	defer lk.Release()
	lk2 := mustTry(t, m, "ma", page, Read)
	lk2.Release()
}

func TestReadLockBlocksComponentWrites(t *testing.T) {
	m := NewManager()
	lk := mustTry(t, m, "shih", course, Read)
	defer lk.Release()
	blockers := mustBlock(t, m, "ma", page, Write)
	if len(blockers) != 1 || blockers[0] != "shih" {
		t.Errorf("blockers = %v", blockers)
	}
}

func TestReadLockLeavesParentsWritable(t *testing.T) {
	m := NewManager()
	lk := mustTry(t, m, "shih", impl, Read)
	defer lk.Release()
	// The parent course object stays readable and writable by others.
	lk2 := mustTry(t, m, "ma", course, Write)
	lk2.Release()
}

func TestWriteLockExcludesEverythingBelow(t *testing.T) {
	m := NewManager()
	lk := mustTry(t, m, "shih", course, Write)
	defer lk.Release()
	mustBlock(t, m, "ma", course, Read)
	mustBlock(t, m, "ma", course, Write)
	mustBlock(t, m, "ma", page, Read)
	mustBlock(t, m, "ma", page, Write)
	// Disjoint course: free.
	lk2 := mustTry(t, m, "ma", other, Write)
	lk2.Release()
}

func TestSameUserNeverSelfConflicts(t *testing.T) {
	m := NewManager()
	lk1 := mustTry(t, m, "shih", course, Write)
	lk2 := mustTry(t, m, "shih", page, Write)
	lk3 := mustTry(t, m, "shih", course, Read)
	for _, lk := range []*Lock{lk1, lk2, lk3} {
		if err := lk.Release(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSharedReadsAtSameNode(t *testing.T) {
	m := NewManager()
	var locks []*Lock
	for _, u := range []string{"a", "b", "c"} {
		locks = append(locks, mustTry(t, m, u, impl, Read))
	}
	mustBlock(t, m, "d", impl, Write)
	for _, lk := range locks {
		lk.Release()
	}
	lk := mustTry(t, m, "d", impl, Write)
	lk.Release()
}

func TestReleaseTwice(t *testing.T) {
	m := NewManager()
	lk := mustTry(t, m, "a", course, Read)
	if err := lk.Release(); err != nil {
		t.Fatal(err)
	}
	if err := lk.Release(); !errors.Is(err, ErrReleased) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyPathRejected(t *testing.T) {
	m := NewManager()
	if _, _, err := m.TryAcquire("a", nil, Read); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.Acquire(context.Background(), "a", Path{}, Read); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestAcquireBlocksUntilRelease(t *testing.T) {
	m := NewManager()
	lk := mustTry(t, m, "shih", course, Write)
	acquired := make(chan *Lock)
	go func() {
		lk2, err := m.Acquire(context.Background(), "ma", page, Read)
		if err != nil {
			t.Error(err)
			close(acquired)
			return
		}
		acquired <- lk2
	}()
	select {
	case <-acquired:
		t.Fatal("acquired while write lock held")
	case <-time.After(30 * time.Millisecond):
	}
	lk.Release()
	select {
	case lk2 := <-acquired:
		if lk2 != nil {
			lk2.Release()
		}
	case <-time.After(2 * time.Second):
		t.Fatal("never acquired after release")
	}
}

func TestAcquireContextCancel(t *testing.T) {
	m := NewManager()
	lk := mustTry(t, m, "shih", course, Write)
	defer lk.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := m.Acquire(ctx, "ma", course, Read)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	a := Path{"db", "a"}
	b := Path{"db", "b"}
	lkA := mustTry(t, m, "u1", a, Write)
	lkB := mustTry(t, m, "u2", b, Write)
	defer lkA.Release()
	defer lkB.Release()

	errs := make(chan error, 2)
	go func() {
		// u1 waits for b (held by u2).
		lk, err := m.Acquire(context.Background(), "u1", b, Write)
		if lk != nil {
			lk.Release()
		}
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond) // let u1 start waiting
	go func() {
		// u2 waits for a (held by u1) -> cycle.
		lk, err := m.Acquire(context.Background(), "u2", a, Write)
		if lk != nil {
			lk.Release()
		}
		errs <- err
	}()

	var sawDeadlock bool
	for i := 0; i < 1; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				sawDeadlock = true
			}
		case <-time.After(2 * time.Second):
			t.Fatal("deadlock not detected")
		}
	}
	if !sawDeadlock {
		t.Fatal("no deadlock error returned")
	}
	// Unblock the survivor.
	lkA.Release()
	lkB.Release()
	<-errs
}

func TestHeldListing(t *testing.T) {
	m := NewManager()
	mustTry(t, m, "b-user", impl, Read)
	mustTry(t, m, "a-user", impl, Read)
	mustTry(t, m, "c-user", other, Write)
	held := m.Held()
	if len(held) != 3 {
		t.Fatalf("held = %+v", held)
	}
	if held[0].Path != course.String()+"/v1" && held[0].Path != impl.String() {
		t.Errorf("held[0] = %+v", held[0])
	}
	if held[0].User != "a-user" || held[1].User != "b-user" {
		t.Errorf("user order: %+v", held)
	}
}

func TestTableStringShape(t *testing.T) {
	s := TableString()
	if !strings.Contains(s, "R on container") || !strings.Contains(s, "W on container") {
		t.Errorf("table:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestConcurrentCollaborationNoLostUpdates(t *testing.T) {
	// Eight instructors hammer four components under one course with
	// write locks (two instructors per component); per-component plain
	// counters guarded only by the lock manager must end exact.
	m := NewManager()
	counters := make([]int, 4)
	var wg sync.WaitGroup
	const perUser = 20
	for u := 0; u < 8; u++ {
		user := fmt.Sprintf("instr%d", u)
		part := u % 4
		component := Path{"mmu", "course", fmt.Sprintf("part%d", part)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perUser; i++ {
				lk, err := m.Acquire(context.Background(), user, component, Write)
				if err != nil {
					t.Error(err)
					return
				}
				counters[part]++
				if err := lk.Release(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for part, n := range counters {
		if n != 2*perUser {
			t.Errorf("component %d writes = %d, want %d", part, n, 2*perUser)
		}
	}
}

// Property: for random lock sets, TryAcquire's grant decision always
// matches a direct evaluation of the compatibility table against every
// held lock.
func TestQuickGrantMatchesTable(t *testing.T) {
	paths := []Path{
		{"db"},
		{"db", "s1"},
		{"db", "s1", "u1"},
		{"db", "s1", "u1", "f1"},
		{"db", "s2"},
	}
	relation := func(held, req Path) Relation {
		h, r := held.String(), req.String()
		switch {
		case h == r:
			return Same
		case strings.HasPrefix(r, h+"/"):
			return HeldIsAncestor
		case strings.HasPrefix(h, r+"/"):
			return HeldIsDescendant
		default:
			return Unrelated
		}
	}
	f := func(ops []uint8, reqRaw uint8) bool {
		m := NewManager()
		type heldRec struct {
			user string
			mode Mode
			path Path
		}
		var held []heldRec
		for _, op := range ops[:min(len(ops), 6)] {
			user := fmt.Sprintf("u%d", op%3)
			mode := Read
			if op%2 == 1 {
				mode = Write
			}
			p := paths[int(op/8)%len(paths)]
			if lk, _, err := m.TryAcquire(user, p, mode); err != nil {
				return false
			} else if lk != nil {
				held = append(held, heldRec{user, mode, p})
			}
		}
		reqUser := "u9" // never among the holders
		reqMode := Read
		if reqRaw%2 == 1 {
			reqMode = Write
		}
		reqPath := paths[int(reqRaw/2)%len(paths)]
		lk, _, err := m.TryAcquire(reqUser, reqPath, reqMode)
		if err != nil {
			return false
		}
		wantGrant := true
		for _, h := range held {
			if !Compatible(h.mode, reqMode, relation(h.path, reqPath)) {
				wantGrant = false
				break
			}
		}
		return (lk != nil) == wantGrant
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
