// Package repro is a from-scratch Go reproduction of "The Design and
// Implementation of a Distributed Web Document Database" (Timothy K.
// Shih, Jianhua Ma & Runhe Huang, ICPP 1999): the virtual-course
// database of the Multimedia Micro-University project, including its
// relational substrate, BLOB layer, document layer, referential
// integrity diagram, hierarchical locking, m-ary tree distribution
// with watermark replication, virtual library, testing subsystem and
// annotation model.
//
// The public facade is internal/core; see README.md for the tour and
// DESIGN.md for the system inventory. The benchmarks in this package
// (bench_test.go) regenerate the evaluation tables E1–E10 and measure
// the substrates.
package repro
