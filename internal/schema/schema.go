// Package schema defines the relational layout of the paper's Web
// document database: the three-layer hierarchy of section 3 mapped onto
// the tables of the underlying relational engine. The Database layer
// holds named course databases; the Document layer holds Script,
// Implementation, TestRecord, BugReport and Annotation objects plus
// their HTML and program files; the BLOB layer is managed by the blob
// package, with the document layer holding typed references.
package schema

import (
	"strings"

	"repro/internal/relstore"
)

// Table names used throughout the system.
const (
	TableDatabases   = "databases"
	TableScripts     = "scripts"
	TableImpls       = "implementations"
	TableHTMLFiles   = "html_files"
	TableProgFiles   = "program_files"
	TableScriptMedia = "script_media"
	TableImplMedia   = "impl_media"
	TableTestRecords = "test_records"
	TableBugReports  = "bug_reports"
	TableAnnotations = "annotations"
	TableDocObjects  = "doc_objects"
	TableVersions    = "versions"
	TableCheckouts   = "checkouts"
)

// All returns the schema of every table, in dependency order (parents
// before children), ready for relstore.CreateTable.
func All() []relstore.Schema {
	return []relstore.Schema{
		{
			// Database layer: "each database can have a number of
			// documents", identified by script names.
			Name: TableDatabases,
			Columns: []relstore.Column{
				{Name: "db_name", Type: relstore.TText, NotNull: true},
				{Name: "keywords", Type: relstore.TText},
				{Name: "author", Type: relstore.TText},
				{Name: "version", Type: relstore.TInt},
				{Name: "created", Type: relstore.TTime},
			},
			Key: "db_name",
		},
		{
			// Script table of section 3.
			Name: TableScripts,
			Columns: []relstore.Column{
				{Name: "script_name", Type: relstore.TText, NotNull: true},
				{Name: "db_name", Type: relstore.TText, NotNull: true},
				{Name: "keywords", Type: relstore.TText},
				{Name: "author", Type: relstore.TText},
				{Name: "version", Type: relstore.TInt},
				{Name: "created", Type: relstore.TTime},
				{Name: "description", Type: relstore.TText},
				{Name: "expected_completion", Type: relstore.TTime},
				{Name: "pct_complete", Type: relstore.TFloat},
			},
			Key:         "script_name",
			ForeignKeys: []relstore.ForeignKey{{Column: "db_name", RefTable: TableDatabases}},
		},
		{
			// Implementation table: one row per try of implementing a
			// script, keyed by its unique starting URL.
			Name: TableImpls,
			Columns: []relstore.Column{
				{Name: "starting_url", Type: relstore.TText, NotNull: true},
				{Name: "script_name", Type: relstore.TText, NotNull: true},
				{Name: "author", Type: relstore.TText},
				{Name: "created", Type: relstore.TTime},
			},
			Key:         "starting_url",
			ForeignKeys: []relstore.ForeignKey{{Column: "script_name", RefTable: TableScripts}},
		},
		{
			// HTML files of an implementation (small document-layer
			// objects, duplicated on reuse rather than shared).
			Name: TableHTMLFiles,
			Columns: []relstore.Column{
				{Name: "file_id", Type: relstore.TText, NotNull: true},
				{Name: "starting_url", Type: relstore.TText, NotNull: true},
				{Name: "path", Type: relstore.TText, NotNull: true},
				{Name: "content", Type: relstore.TBytes},
			},
			Key:         "file_id",
			ForeignKeys: []relstore.ForeignKey{{Column: "starting_url", RefTable: TableImpls}},
		},
		{
			// Add-on control program files (Java applets / ASP in the
			// paper).
			Name: TableProgFiles,
			Columns: []relstore.Column{
				{Name: "file_id", Type: relstore.TText, NotNull: true},
				{Name: "starting_url", Type: relstore.TText, NotNull: true},
				{Name: "path", Type: relstore.TText, NotNull: true},
				{Name: "language", Type: relstore.TText},
				{Name: "content", Type: relstore.TBytes},
			},
			Key:         "file_id",
			ForeignKeys: []relstore.ForeignKey{{Column: "starting_url", RefTable: TableImpls}},
		},
		{
			// Multimedia resources attached to a script (e.g. the verbal
			// description of section 3): file descriptors pointing into
			// the BLOB layer.
			Name: TableScriptMedia,
			Columns: []relstore.Column{
				{Name: "res_id", Type: relstore.TText, NotNull: true},
				{Name: "script_name", Type: relstore.TText, NotNull: true},
				{Name: "name", Type: relstore.TText},
				{Name: "kind", Type: relstore.TInt},
				{Name: "blob_hash", Type: relstore.TText, NotNull: true},
				{Name: "size", Type: relstore.TInt},
			},
			Key:         "res_id",
			ForeignKeys: []relstore.ForeignKey{{Column: "script_name", RefTable: TableScripts}},
		},
		{
			// Multimedia resources used by an implementation.
			Name: TableImplMedia,
			Columns: []relstore.Column{
				{Name: "res_id", Type: relstore.TText, NotNull: true},
				{Name: "starting_url", Type: relstore.TText, NotNull: true},
				{Name: "name", Type: relstore.TText},
				{Name: "kind", Type: relstore.TInt},
				{Name: "blob_hash", Type: relstore.TText, NotNull: true},
				{Name: "size", Type: relstore.TInt},
			},
			Key:         "res_id",
			ForeignKeys: []relstore.ForeignKey{{Column: "starting_url", RefTable: TableImpls}},
		},
		{
			// TestRecord table of section 3.
			Name: TableTestRecords,
			Columns: []relstore.Column{
				{Name: "test_name", Type: relstore.TText, NotNull: true},
				{Name: "script_name", Type: relstore.TText, NotNull: true},
				{Name: "starting_url", Type: relstore.TText},
				{Name: "scope", Type: relstore.TText}, // local | global
				{Name: "messages", Type: relstore.TText},
				{Name: "created", Type: relstore.TTime},
			},
			Key: "test_name",
			ForeignKeys: []relstore.ForeignKey{
				{Column: "script_name", RefTable: TableScripts},
				{Column: "starting_url", RefTable: TableImpls},
			},
		},
		{
			// BugReport table of section 3.
			Name: TableBugReports,
			Columns: []relstore.Column{
				{Name: "bug_name", Type: relstore.TText, NotNull: true},
				{Name: "test_name", Type: relstore.TText, NotNull: true},
				{Name: "qa_engineer", Type: relstore.TText},
				{Name: "procedure", Type: relstore.TText},
				{Name: "description", Type: relstore.TText},
				{Name: "bad_urls", Type: relstore.TText},
				{Name: "missing_objects", Type: relstore.TText},
				{Name: "inconsistency", Type: relstore.TText},
				{Name: "redundant_objects", Type: relstore.TText},
				{Name: "created", Type: relstore.TTime},
			},
			Key:         "bug_name",
			ForeignKeys: []relstore.ForeignKey{{Column: "test_name", RefTable: TableTestRecords}},
		},
		{
			// Annotation table of section 3: per-instructor overlays on
			// an implementation.
			Name: TableAnnotations,
			Columns: []relstore.Column{
				{Name: "ann_name", Type: relstore.TText, NotNull: true},
				{Name: "script_name", Type: relstore.TText, NotNull: true},
				{Name: "starting_url", Type: relstore.TText},
				{Name: "author", Type: relstore.TText},
				{Name: "version", Type: relstore.TInt},
				{Name: "created", Type: relstore.TTime},
				{Name: "file", Type: relstore.TBytes}, // encoded annotation document
			},
			Key: "ann_name",
			ForeignKeys: []relstore.ForeignKey{
				{Column: "script_name", RefTable: TableScripts},
				{Column: "starting_url", RefTable: TableImpls},
			},
		},
		{
			// Web Document object forms of section 4: class, instance or
			// reference-to-instance, each placed on a station.
			Name: TableDocObjects,
			Columns: []relstore.Column{
				{Name: "obj_id", Type: relstore.TText, NotNull: true},
				{Name: "form", Type: relstore.TText, NotNull: true}, // class | instance | reference
				{Name: "starting_url", Type: relstore.TText, NotNull: true},
				{Name: "station", Type: relstore.TInt},
				{Name: "origin", Type: relstore.TInt}, // station holding the referenced instance
				{Name: "class_id", Type: relstore.TText},
				{Name: "persistent", Type: relstore.TBool},
				{Name: "created", Type: relstore.TTime},
			},
			Key:         "obj_id",
			ForeignKeys: []relstore.ForeignKey{{Column: "starting_url", RefTable: TableImpls}},
		},
		{
			// Software-configuration-management version history.
			Name: TableVersions,
			Columns: []relstore.Column{
				{Name: "ver_id", Type: relstore.TText, NotNull: true},
				{Name: "object_kind", Type: relstore.TText, NotNull: true},
				{Name: "object_id", Type: relstore.TText, NotNull: true},
				{Name: "version", Type: relstore.TInt, NotNull: true},
				{Name: "author", Type: relstore.TText},
				{Name: "comment", Type: relstore.TText},
				{Name: "created", Type: relstore.TTime},
			},
			Key: "ver_id",
		},
		{
			// Check-in/check-out ledger for collaborative editing and
			// the virtual library.
			Name: TableCheckouts,
			Columns: []relstore.Column{
				{Name: "co_id", Type: relstore.TText, NotNull: true},
				{Name: "object_kind", Type: relstore.TText, NotNull: true},
				{Name: "object_id", Type: relstore.TText, NotNull: true},
				{Name: "user", Type: relstore.TText, NotNull: true},
				{Name: "out_time", Type: relstore.TTime},
				{Name: "in_time", Type: relstore.TTime},
			},
			Key: "co_id",
		},
	}
}

// Create installs every table into the engine and adds the secondary
// indexes the document layer queries through.
func Create(db *relstore.DB) error {
	for _, s := range All() {
		if err := db.CreateTable(s); err != nil {
			return err
		}
	}
	// Query-path indexes beyond the automatic FK indexes.
	for _, ix := range [][2]string{
		{TableScripts, "author"},
		{TableScripts, "keywords"},
		{TableCheckouts, "user"},
		{TableCheckouts, "object_id"},
		{TableVersions, "object_id"},
		{TableDocObjects, "station"},
		{TableDocObjects, "form"},
	} {
		if err := db.CreateIndex(ix[0], ix[1]); err != nil {
			return err
		}
	}
	return nil
}

// JoinList and SplitList encode multi-valued text attributes (keywords,
// bad URLs, missing objects) as newline-separated text, the flattening
// the paper's relational mapping implies.
func JoinList(items []string) string {
	return strings.Join(items, "\n")
}

// SplitList is the inverse of JoinList; empty text yields nil.
func SplitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// Object kinds used by the version/checkout tables and the lock
// hierarchy.
const (
	KindDatabase       = "database"
	KindScript         = "script"
	KindImplementation = "implementation"
	KindHTMLFile       = "html_file"
	KindProgramFile    = "program_file"
	KindTestRecord     = "test_record"
	KindBugReport      = "bug_report"
	KindAnnotation     = "annotation"
	KindMedia          = "media"
)

// Document object forms of section 4.
const (
	FormClass     = "class"
	FormInstance  = "instance"
	FormReference = "reference"
)
