// Fixture for malformed suppressions: missing analyzer, missing
// reason, unknown analyzer. Checked programmatically (not via want
// comments) in TestMalformedSuppressions.
package supbad

//lint:ignore
func missingBoth() {}

//lint:ignore atomicwrite
func missingReason() {}

//lint:ignore nosuchanalyzer because this analyzer does not exist
func unknownAnalyzer() {}
