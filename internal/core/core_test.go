package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/annotate"
	"repro/internal/docdb"
	"repro/internal/library"
	"repro/internal/workload"
)

func smallSpec(n int) workload.CourseSpec {
	spec := workload.DefaultSpec(n)
	spec.Pages = 6
	spec.ExtraLinks = 2
	spec.ImagesPerPage = 1
	spec.VideoEvery = 0
	spec.AudioEvery = 3
	spec.MediaScaleDown = 16384
	return spec
}

func newUniversity(t *testing.T) *University {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Stations = 7
	u, err := NewUniversity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestPublishDistributeLectureCycle(t *testing.T) {
	u := newUniversity(t)
	spec := smallSpec(1)
	course, err := u.PublishCourse(spec, "CS-101", "Shih")
	if err != nil {
		t.Fatal(err)
	}
	if course.PageCount != 6 {
		t.Errorf("course = %+v", course)
	}
	// Library knows the course.
	hits := u.Search(library.Query{Course: "CS-101"})
	if len(hits) != 1 || hits[0].Entry.ScriptName != spec.ScriptName {
		t.Fatalf("hits = %+v", hits)
	}
	// Distribute to all stations.
	slowest, size, err := u.Distribute(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if slowest <= 0 || size <= 0 {
		t.Errorf("distribute = %v, %d", slowest, size)
	}
	// Students play the lecture without stalls.
	rep, err := u.Cluster.Playback(5, spec.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalls != 0 {
		t.Errorf("stalls = %d after distribution", rep.Stalls)
	}
	// End of lecture reclaims buffers.
	freed, err := u.EndLecture(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if freed <= 0 {
		t.Errorf("freed = %d", freed)
	}
}

func TestEditScriptLocksAndAlerts(t *testing.T) {
	u := newUniversity(t)
	spec := smallSpec(2)
	if _, err := u.PublishCourse(spec, "MM-201", "Ma"); err != nil {
		t.Fatal(err)
	}
	n, err := u.EditScript(context.Background(), "Ma", spec.ScriptName, func(s *docdb.Store) error {
		return s.SetProgress(spec.ScriptName, 55)
	})
	if err != nil {
		t.Fatal(err)
	}
	// One implementation + its files and media + the catalog is clean of
	// test records, so alerts = impl + html(6) + media rows.
	if n == 0 {
		t.Fatal("no integrity alerts raised")
	}
	pending := u.Alerts.Pending("Ma")
	if len(pending) != n {
		t.Errorf("pending = %d, want %d", len(pending), n)
	}
	// The edit went through checkout: history has one version.
	hist, err := u.InstructorStore().History("script", spec.ScriptName)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 {
		t.Errorf("history = %+v", hist)
	}
	sc, _ := u.InstructorStore().Script(spec.ScriptName)
	if sc.PctComplete != 55 {
		t.Errorf("pct = %v", sc.PctComplete)
	}
}

func TestAnnotateRoundTrip(t *testing.T) {
	u := newUniversity(t)
	spec := smallSpec(3)
	if _, err := u.PublishCourse(spec, "ED-110", "Huang"); err != nil {
		t.Fatal(err)
	}
	doc := &annotate.Document{
		Author:  "Huang",
		PageURL: spec.URL + "/index.html",
		Primitives: []annotate.Primitive{
			{Kind: annotate.PrimLine, At: time.Second, Points: []annotate.Point{{X: 0, Y: 0}, {X: 5, Y: 5}}},
		},
	}
	if err := u.Annotate("Huang", spec.URL, doc); err != nil {
		t.Fatal(err)
	}
	docs, err := u.Annotations(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].Author != "Huang" || len(docs[0].Primitives) != 1 {
		t.Errorf("docs = %+v", docs)
	}
	// Invalid annotations are rejected before storage.
	bad := &annotate.Document{Primitives: []annotate.Primitive{{Kind: annotate.PrimLine}}}
	if err := u.Annotate("Huang", spec.URL, bad); err == nil {
		t.Error("invalid annotation accepted")
	}
}

func TestTestCourseAndComplexity(t *testing.T) {
	u := newUniversity(t)
	spec := smallSpec(4)
	if _, err := u.PublishCourse(spec, "CS-102", "Shih"); err != nil {
		t.Fatal(err)
	}
	testName, bugName, err := u.TestCourse(spec.URL, "Huang", 1)
	if err != nil {
		t.Fatal(err)
	}
	if testName == "" {
		t.Error("no test record")
	}
	if bugName != "" {
		t.Errorf("generated course has bug %s", bugName)
	}
	cx, err := u.Complexity(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if cx.Pages != 6 || cx.Links == 0 {
		t.Errorf("complexity = %+v", cx)
	}
}

func TestStudentLibraryFlow(t *testing.T) {
	u := newUniversity(t)
	spec := smallSpec(5)
	if _, err := u.PublishCourse(spec, "CS-103", "Shih"); err != nil {
		t.Fatal(err)
	}
	co, err := u.StudentCheckOut(spec.ScriptName, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := u.StudentCheckIn(co); err != nil {
		t.Fatal(err)
	}
	a, err := u.Assess("alice")
	if err != nil {
		t.Fatal(err)
	}
	if a.Checkouts != 1 || a.DistinctDocs != 1 {
		t.Errorf("assessment = %+v", a)
	}
}

func TestDefaultConfigFills(t *testing.T) {
	u, err := NewUniversity(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Cluster.Size() != 16 || u.Cluster.M() != 3 {
		t.Errorf("defaults: %d stations, m=%d", u.Cluster.Size(), u.Cluster.M())
	}
}
