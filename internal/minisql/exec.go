package minisql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relstore"
)

// Result carries the outcome of executing one statement. SELECT, SHOW
// and DESCRIBE fill Columns/Rows; mutations fill Affected; DDL fills
// Msg.
type Result struct {
	Columns  []string
	Rows     [][]any
	Affected int
	Msg      string
}

// Session executes minisql statements against one relstore database, the
// way the paper's front end holds one open database connection.
type Session struct {
	db *relstore.DB
}

// NewSession wraps a database.
func NewSession(db *relstore.DB) *Session {
	return &Session{db: db}
}

// Exec parses and runs one statement.
func (s *Session) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return s.Run(st)
}

// Run executes an already-parsed statement.
func (s *Session) Run(st Statement) (*Result, error) {
	switch st := st.(type) {
	case *CreateTableStmt:
		if err := s.db.CreateTable(st.Schema); err != nil {
			return nil, err
		}
		return &Result{Msg: fmt.Sprintf("table %s created", st.Schema.Name)}, nil
	case *CreateIndexStmt:
		if st.Ordered {
			if err := s.db.CreateOrderedIndex(st.Table, st.Column); err != nil {
				return nil, err
			}
			return &Result{Msg: fmt.Sprintf("ordered index on %s(%s) created", st.Table, st.Column)}, nil
		}
		if err := s.db.CreateIndex(st.Table, st.Column); err != nil {
			return nil, err
		}
		return &Result{Msg: fmt.Sprintf("index on %s(%s) created", st.Table, st.Column)}, nil
	case *DropTableStmt:
		if err := s.db.DropTable(st.Table); err != nil {
			return nil, err
		}
		return &Result{Msg: fmt.Sprintf("table %s dropped", st.Table)}, nil
	case *InsertStmt:
		return s.runInsert(st)
	case *SelectStmt:
		return s.runSelect(st)
	case *UpdateStmt:
		return s.runUpdate(st)
	case *DeleteStmt:
		return s.runDelete(st)
	case *ShowTablesStmt:
		var rows [][]any
		for _, name := range s.db.Tables() {
			rows = append(rows, []any{name})
		}
		return &Result{Columns: []string{"table"}, Rows: rows}, nil
	case *DescribeStmt:
		return s.runDescribe(st)
	default:
		return nil, fmt.Errorf("minisql: unsupported statement %T", st)
	}
}

func (s *Session) runInsert(st *InsertStmt) (*Result, error) {
	// Declaring the statement's table lets unrelated statements run in
	// parallel on the per-table engine.
	tx, err := s.db.Begin(st.Table)
	if err != nil {
		return nil, err
	}
	for _, vals := range st.Rows {
		row := make(relstore.Row, len(st.Columns))
		for i, col := range st.Columns {
			row[col] = vals[i]
		}
		if err := tx.Insert(st.Table, row); err != nil {
			tx.Rollback()
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return &Result{Affected: len(st.Rows)}, nil
}

func (s *Session) runSelect(st *SelectStmt) (*Result, error) {
	rows, err := s.db.Select(relstore.Query{
		Table:   st.Table,
		Conds:   st.Where,
		OrderBy: st.OrderBy,
		Desc:    st.Desc,
		Limit:   st.Limit,
	})
	if err != nil {
		return nil, err
	}
	if st.CountStar {
		return &Result{Columns: []string{"count"}, Rows: [][]any{{int64(len(rows))}}}, nil
	}
	cols := st.Columns
	if cols == nil {
		schema, err := s.db.SchemaOf(st.Table)
		if err != nil {
			return nil, err
		}
		for _, c := range schema.Columns {
			cols = append(cols, c.Name)
		}
	} else {
		schema, err := s.db.SchemaOf(st.Table)
		if err != nil {
			return nil, err
		}
		for _, c := range cols {
			found := false
			for _, sc := range schema.Columns {
				if sc.Name == c {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("%w: %s.%s", relstore.ErrNoColumn, st.Table, c)
			}
		}
	}
	out := make([][]any, len(rows))
	for i, r := range rows {
		vals := make([]any, len(cols))
		for j, c := range cols {
			vals[j] = r[c]
		}
		out[i] = vals
	}
	return &Result{Columns: cols, Rows: out}, nil
}

// matchingKeys returns the primary-key values of rows matching the
// conjunction, in deterministic order.
func (s *Session) matchingKeys(table string, where []relstore.Cond) ([]any, error) {
	schema, err := s.db.SchemaOf(table)
	if err != nil {
		return nil, err
	}
	rows, err := s.db.Select(relstore.Query{Table: table, Conds: where})
	if err != nil {
		return nil, err
	}
	keys := make([]any, len(rows))
	for i, r := range rows {
		keys[i] = r[schema.Key]
	}
	return keys, nil
}

func (s *Session) runUpdate(st *UpdateStmt) (*Result, error) {
	keys, err := s.matchingKeys(st.Table, st.Where)
	if err != nil {
		return nil, err
	}
	changes := relstore.Row(st.Set)
	tx, err := s.db.Begin(st.Table)
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		if err := tx.Update(st.Table, k, changes); err != nil {
			tx.Rollback()
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return &Result{Affected: len(keys)}, nil
}

func (s *Session) runDelete(st *DeleteStmt) (*Result, error) {
	keys, err := s.matchingKeys(st.Table, st.Where)
	if err != nil {
		return nil, err
	}
	tx, err := s.db.Begin(st.Table)
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		if err := tx.Delete(st.Table, k); err != nil {
			tx.Rollback()
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return &Result{Affected: len(keys)}, nil
}

func (s *Session) runDescribe(st *DescribeStmt) (*Result, error) {
	schema, err := s.db.SchemaOf(st.Table)
	if err != nil {
		return nil, err
	}
	fkByCol := make(map[string]string)
	for _, fk := range schema.ForeignKeys {
		fkByCol[fk.Column] = fk.RefTable
	}
	var rows [][]any
	for _, c := range schema.Columns {
		attrs := []string{}
		if c.Name == schema.Key {
			attrs = append(attrs, "PRIMARY KEY")
		}
		if c.NotNull {
			attrs = append(attrs, "NOT NULL")
		}
		if ref, ok := fkByCol[c.Name]; ok {
			attrs = append(attrs, "REFERENCES "+ref)
		}
		rows = append(rows, []any{c.Name, c.Type.String(), strings.Join(attrs, ", ")})
	}
	return &Result{Columns: []string{"column", "type", "attributes"}, Rows: rows}, nil
}

// Format renders a result as an aligned text table, used by the CLI and
// the station daemon's administrative interface.
func (r *Result) Format() string {
	var sb strings.Builder
	if r.Msg != "" {
		sb.WriteString(r.Msg)
		sb.WriteByte('\n')
		return sb.String()
	}
	if r.Columns == nil {
		fmt.Fprintf(&sb, "%d row(s) affected\n", r.Affected)
		return sb.String()
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := formatValue(v)
			cells[i][j] = s
			if j < len(widths) && len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	for i, c := range r.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	sb.WriteByte('\n')
	for i := range r.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]))
		sb.WriteString("  ")
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for j, s := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[j], s)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "(%d rows)\n", len(r.Rows))
	return sb.String()
}

func formatValue(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case []byte:
		return fmt.Sprintf("<%d bytes>", len(x))
	default:
		return fmt.Sprint(x)
	}
}

// SortRows orders result rows by the named column for stable display;
// used by tools that aggregate results from several stations.
func (r *Result) SortRows(col string) {
	idx := -1
	for i, c := range r.Columns {
		if c == col {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	sort.SliceStable(r.Rows, func(i, j int) bool {
		return formatValue(r.Rows[i][idx]) < formatValue(r.Rows[j][idx])
	})
}
